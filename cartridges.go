package extdb

import (
	"repro/internal/cartridge/chem"
	"repro/internal/cartridge/spatial"
	"repro/internal/cartridge/text"
	"repro/internal/cartridge/vir"
)

// InstallTextCartridge registers the interMedia-style full-text cartridge
// and creates its schema objects: the Contains operator, its Score
// ancillary operator, and TextIndexType. Domain indexes accept
// PARAMETERS directives :Language, :Ignore (stop words), :Scan
// precompute|lazy, and :Memory value|handle.
func InstallTextCartridge(db *DB, s *Session) error {
	if err := text.Register(db); err != nil {
		return err
	}
	return text.Setup(s)
}

// TextTwoStepQuery replays the pre-Oracle8i two-step text query execution
// (materialize matching rowids into a temporary result table, then join),
// the baseline the paper's §3.2.1 case study compares against.
var TextTwoStepQuery = text.TwoStepQuery

// InstallSpatialCartridge registers the spatial cartridge and creates its
// schema objects: the SDO_GEOMETRY object type, the Sdo_Relate and
// Sdo_Filter operators, the tile-index SpatialIndexType, and the
// external-R-tree SpatialRTreeType (PARAMETERS ':Events on' keeps the
// external tree transactional through database events).
func InstallSpatialCartridge(db *DB, s *Session) error {
	if err := spatial.Register(db); err != nil {
		return err
	}
	return spatial.Setup(s)
}

// InstallVIRCartridge registers the image-retrieval cartridge and creates
// its schema objects: the VIR_SIGNATURE object type, the VIRSimilar
// operator with its VIRScore ancillary, and VIRIndexType (three-phase
// evaluation).
func InstallVIRCartridge(db *DB, s *Session) error {
	if _, err := vir.Register(db); err != nil {
		return err
	}
	return vir.Setup(s)
}

// InstallChemCartridge registers the chemistry cartridge and creates its
// schema objects: the ChemExact / ChemContains / ChemSimilar /
// ChemTautomer operators, the ChemScore ancillary, and ChemIndexType.
// Domain indexes accept PARAMETERS ':Storage lob|file :Dir <path>
// [:Events on]'.
func InstallChemCartridge(db *DB, s *Session) error {
	if _, err := chem.Register(db); err != nil {
		return err
	}
	return chem.Setup(s)
}

// Geometry is a 2-D spatial geometry (point, rectangle or polygon) for
// use with the spatial cartridge; convert with ToValue for SQL binds.
type Geometry = spatial.Geometry

// Spatial geometry constructors.
var (
	// SpatialPoint builds a point geometry.
	SpatialPoint = spatial.NewPoint
	// SpatialRect builds a rectangle geometry.
	SpatialRect = spatial.NewRect
	// SpatialPolygon builds a polygon geometry.
	SpatialPolygon = spatial.NewPolygon
)

// Signature is a VIR image feature signature; convert with ToValue for
// SQL binds.
type Signature = vir.Signature
