package extdb

import (
	"fmt"

	"repro/internal/cartridge/chem"
	"repro/internal/cartridge/colls"
	"repro/internal/cartridge/spatial"
	"repro/internal/cartridge/text"
	"repro/internal/cartridge/vir"
)

// cartridgeObjects names the schema objects a cartridge's Setup creates.
// Install helpers use it to stay idempotent: a database reopened from
// durable media recovers its dictionary — cartridge DDL included — so
// re-running Setup would collide with the recovered objects. Register
// always runs (the Go-side method/function registry is per-process,
// like reloading cartridge libraries at instance startup); Setup runs
// only when the dictionary has none of the objects yet.
type cartridgeObjects struct {
	types      []string
	operators  []string
	indexTypes []string
}

// setupNeeded reports whether a cartridge's Setup DDL should run.
// All objects present means the dictionary already carries the schema
// (skip); none present means a fresh database (run). A partial install
// — possible only if the original Setup was interrupted between its
// DDL statements — is surfaced as an error rather than guessed at.
func setupNeeded(db *DB, want cartridgeObjects) (bool, error) {
	cat := db.Catalog()
	have, total := 0, 0
	for _, n := range want.types {
		total++
		if _, ok := cat.TypeDesc(n); ok {
			have++
		}
	}
	for _, n := range want.operators {
		total++
		if _, ok := cat.Operator(n); ok {
			have++
		}
	}
	for _, n := range want.indexTypes {
		total++
		if _, ok := cat.IndexType(n); ok {
			have++
		}
	}
	switch have {
	case 0:
		return true, nil
	case total:
		return false, nil
	default:
		return false, fmt.Errorf("cartridge schema partially installed (%d of %d objects present); drop the remnants before reinstalling", have, total)
	}
}

// InstallTextCartridge registers the interMedia-style full-text cartridge
// and creates its schema objects: the Contains operator, its Score
// ancillary operator, and TextIndexType. Domain indexes accept
// PARAMETERS directives :Language, :Ignore (stop words), :Scan
// precompute|lazy, and :Memory value|handle.
func InstallTextCartridge(db *DB, s *Session) error {
	if err := text.Register(db); err != nil {
		return err
	}
	need, err := setupNeeded(db, cartridgeObjects{
		operators:  []string{text.OpContains, text.OpScore},
		indexTypes: []string{text.IndexTypeName},
	})
	if err != nil || !need {
		return err
	}
	return text.Setup(s)
}

// TextTwoStepQuery replays the pre-Oracle8i two-step text query execution
// (materialize matching rowids into a temporary result table, then join),
// the baseline the paper's §3.2.1 case study compares against.
var TextTwoStepQuery = text.TwoStepQuery

// InstallSpatialCartridge registers the spatial cartridge and creates its
// schema objects: the SDO_GEOMETRY object type, the Sdo_Relate and
// Sdo_Filter operators, the tile-index SpatialIndexType, and the
// external-R-tree SpatialRTreeType (PARAMETERS ':Events on' keeps the
// external tree transactional through database events).
func InstallSpatialCartridge(db *DB, s *Session) error {
	if err := spatial.Register(db); err != nil {
		return err
	}
	need, err := setupNeeded(db, cartridgeObjects{
		types:      []string{spatial.TypeName},
		operators:  []string{spatial.OpRelate, spatial.OpFilter},
		indexTypes: []string{spatial.IndexTypeName, spatial.RTreeTypeName},
	})
	if err != nil || !need {
		return err
	}
	return spatial.Setup(s)
}

// InstallVIRCartridge registers the image-retrieval cartridge and creates
// its schema objects: the VIR_SIGNATURE object type, the VIRSimilar
// operator with its VIRScore ancillary, and VIRIndexType (three-phase
// evaluation).
func InstallVIRCartridge(db *DB, s *Session) error {
	if _, err := vir.Register(db); err != nil {
		return err
	}
	need, err := setupNeeded(db, cartridgeObjects{
		types:      []string{vir.TypeName},
		operators:  []string{vir.OpSimilar, vir.OpVIRScore},
		indexTypes: []string{vir.IndexTypeName},
	})
	if err != nil || !need {
		return err
	}
	return vir.Setup(s)
}

// InstallChemCartridge registers the chemistry cartridge and creates its
// schema objects: the ChemExact / ChemContains / ChemSimilar /
// ChemTautomer operators, the ChemScore ancillary, and ChemIndexType.
// Domain indexes accept PARAMETERS ':Storage lob|file :Dir <path>
// [:Events on]'.
func InstallChemCartridge(db *DB, s *Session) error {
	if _, err := chem.Register(db); err != nil {
		return err
	}
	need, err := setupNeeded(db, cartridgeObjects{
		operators:  []string{chem.OpExact, chem.OpContains, chem.OpSimilar, chem.OpTautomer, chem.OpChemScore},
		indexTypes: []string{chem.IndexTypeName},
	})
	if err != nil || !need {
		return err
	}
	return chem.Setup(s)
}

// InstallCollsCartridge registers the collection-membership cartridge
// (§3.1 of the paper) and creates its schema objects: the CollContains
// operator over VARRAY columns and CollIndexType, whose index data is an
// in-database element table with a B-tree on it.
func InstallCollsCartridge(db *DB, s *Session) error {
	if err := colls.Register(db); err != nil {
		return err
	}
	need, err := setupNeeded(db, cartridgeObjects{
		operators:  []string{colls.OpContains},
		indexTypes: []string{colls.IndexTypeName},
	})
	if err != nil || !need {
		return err
	}
	return colls.Setup(s)
}

// Geometry is a 2-D spatial geometry (point, rectangle or polygon) for
// use with the spatial cartridge; convert with ToValue for SQL binds.
type Geometry = spatial.Geometry

// Spatial geometry constructors.
var (
	// SpatialPoint builds a point geometry.
	SpatialPoint = spatial.NewPoint
	// SpatialRect builds a rectangle geometry.
	SpatialRect = spatial.NewRect
	// SpatialPolygon builds a polygon geometry.
	SpatialPolygon = spatial.NewPolygon
)

// Signature is a VIR image feature signature; convert with ToValue for
// SQL binds.
type Signature = vir.Signature
