// Quickstart walks through the paper's running example: the Employees
// table, a TextIndexType domain index on the resume column, and queries
// with the user-defined Contains operator — exercised through the public
// extdb API.
package main

import (
	"fmt"
	"log"

	extdb "repro"
)

func main() {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()

	// Install the text cartridge: registers TextIndexMethods and issues
	// CREATE OPERATOR Contains / CREATE INDEXTYPE TextIndexType.
	if err := extdb.InstallTextCartridge(db, s); err != nil {
		log.Fatal(err)
	}

	run := func(sql string, params ...extdb.Value) {
		if _, err := s.Exec(sql, params...); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	run(`CREATE TABLE Employees(name VARCHAR(128), id INTEGER, resume VARCHAR2(1024))`)
	run(`INSERT INTO Employees VALUES ('alice', 1, 'Ten years of Oracle and UNIX administration')`)
	run(`INSERT INTO Employees VALUES ('bob',   2, 'UNIX kernel development, device drivers')`)
	run(`INSERT INTO Employees VALUES ('carol', 3, 'Oracle DBA, PL/SQL, COBOL migration projects')`)
	run(`INSERT INTO Employees VALUES ('dave',  4, 'Java and web frontends')`)

	// Create the domain index exactly as in the paper, parameters and all.
	run(`CREATE INDEX ResumeTextIndex ON Employees(resume)
	     INDEXTYPE IS TextIndexType PARAMETERS (':Language English :Ignore the a an of')`)

	// The user-defined operator now works like any built-in operator.
	query := `SELECT name FROM Employees WHERE Contains(resume, 'Oracle AND UNIX')`
	rs, err := s.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q:", query)
	for _, row := range rs.Rows {
		fmt.Println("  ->", row[0])
	}

	// With four rows the cost-based optimizer rightly prefers a full
	// scan; force the domain index (an optimizer hint) to show the
	// pipelined ODCIIndexStart/Fetch/Close plan.
	s.SetForcedPath(extdb.ForceDomainScan)
	ex, err := s.Query(`EXPLAIN PLAN FOR ` + query)
	s.SetForcedPath(extdb.ForceAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Plan:")
	for _, row := range ex.Rows {
		fmt.Println("  ", row[0])
	}

	// DML maintains the index implicitly: ODCIIndexInsert/Update/Delete
	// run inside the same transaction as the base-table change.
	run(`UPDATE Employees SET resume = 'Retired from databases' WHERE name = 'carol'`)
	rs, _ = s.Query(`SELECT name FROM Employees WHERE Contains(resume, 'oracle') ORDER BY name`)
	fmt.Println("After update, 'oracle' matches:")
	for _, row := range rs.Rows {
		fmt.Println("  ->", row[0])
	}

	// Ancillary operators: Score(1) pairs with Contains(..., 1) and
	// surfaces the match score computed by the index scan.
	s.SetForcedPath(extdb.ForceDomainScan)
	rs, err = s.Query(`SELECT name, Score(1) FROM Employees
	                   WHERE Contains(resume, 'unix', 1) ORDER BY Score(1) DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scored matches for 'unix':")
	for _, row := range rs.Rows {
		fmt.Printf("  -> %-6s score=%s\n", row[0], row[1])
	}
}
