// Customindex walks through the cartridge-developer steps of §2.2 using
// the public API: define a functional implementation, create an operator,
// implement the ODCIIndex routines, create an indextype, and use a domain
// index — here a trigram index accelerating a substring-search operator
// MatchesSub(column, fragment).
package main

import (
	"fmt"
	"log"
	"strings"

	extdb "repro"
)

// trigrams returns the set of 3-grams of s (shorter strings index as one
// gram).
func trigrams(s string) []string {
	s = strings.ToLower(s)
	if len(s) < 3 {
		return []string{s}
	}
	seen := map[string]bool{}
	var out []string
	for i := 0; i+3 <= len(s); i++ {
		g := s[i : i+3]
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// trigramMethods implements extdb.IndexMethods (§2.2.3): index data lives
// in an engine table DR$<index> maintained through SQL server callbacks.
type trigramMethods struct{}

func dt(info extdb.IndexInfo) string { return info.DataTableName("TRG") }

func (trigramMethods) Create(s extdb.Server, info extdb.IndexInfo) error {
	if _, err := s.Exec(fmt.Sprintf(`CREATE TABLE %s(gram VARCHAR2, rid NUMBER)`, dt(info))); err != nil {
		return err
	}
	if _, err := s.Exec(fmt.Sprintf(`CREATE INDEX %s$G ON %s(gram)`, dt(info), dt(info))); err != nil {
		return err
	}
	rows, err := s.Query(fmt.Sprintf(`SELECT %s, ROWID FROM %s`, info.ColumnName, info.TableName))
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := indexRow(s, info, r[1].Int64(), r[0]); err != nil {
			return err
		}
	}
	return nil
}

func indexRow(s extdb.Server, info extdb.IndexInfo, rid int64, v extdb.Value) error {
	if v.IsNull() {
		return nil
	}
	for _, g := range trigrams(v.Text()) {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (?, ?)`, dt(info)),
			extdb.Str(g), extdb.Int(rid)); err != nil {
			return err
		}
	}
	return nil
}

func (trigramMethods) Alter(s extdb.Server, info extdb.IndexInfo, p string) error { return nil }
func (trigramMethods) Truncate(s extdb.Server, info extdb.IndexInfo) error {
	_, err := s.Exec(fmt.Sprintf(`DELETE FROM %s`, dt(info)))
	return err
}
func (trigramMethods) Drop(s extdb.Server, info extdb.IndexInfo) error {
	_, err := s.Exec(fmt.Sprintf(`DROP TABLE %s`, dt(info)))
	return err
}
func (trigramMethods) Insert(s extdb.Server, info extdb.IndexInfo, rid int64, v extdb.Value) error {
	return indexRow(s, info, rid, v)
}
func (trigramMethods) Delete(s extdb.Server, info extdb.IndexInfo, rid int64, v extdb.Value) error {
	_, err := s.Exec(fmt.Sprintf(`DELETE FROM %s WHERE rid = ?`, dt(info)), extdb.Int(rid))
	return err
}
func (m trigramMethods) Update(s extdb.Server, info extdb.IndexInfo, rid int64, oldV, newV extdb.Value) error {
	if err := m.Delete(s, info, rid, oldV); err != nil {
		return err
	}
	return m.Insert(s, info, rid, newV)
}

// Start intersects the posting lists of the fragment's trigrams, then
// re-checks candidates with the functional predicate (trigram matching
// over-approximates substring containment).
func (trigramMethods) Start(s extdb.Server, info extdb.IndexInfo, call extdb.OperatorCall) (extdb.ScanState, error) {
	frag := call.Args[0].Text()
	var result map[int64]bool
	for _, g := range trigrams(frag) {
		rows, err := s.Query(fmt.Sprintf(`SELECT rid FROM %s WHERE gram = ?`, dt(info)), extdb.Str(g))
		if err != nil {
			return nil, err
		}
		set := map[int64]bool{}
		for _, r := range rows {
			set[r[0].Int64()] = true
		}
		if result == nil {
			result = set
			continue
		}
		for rid := range result {
			if !set[rid] {
				delete(result, rid)
			}
		}
	}
	// Verify candidates against the real column value (queries only — we
	// run in scan mode).
	var rids []int64
	for rid := range result {
		rows, err := s.Query(fmt.Sprintf(`SELECT %s FROM %s WHERE ROWID = ?`,
			info.ColumnName, info.TableName), extdb.Int(rid))
		if err != nil {
			return nil, err
		}
		if len(rows) == 1 && strings.Contains(strings.ToLower(rows[0][0].Text()), strings.ToLower(frag)) {
			rids = append(rids, rid)
		}
	}
	return extdb.StateValue{V: &rids}, nil
}

func (trigramMethods) Fetch(s extdb.Server, st extdb.ScanState, maxRows int) (extdb.FetchResult, extdb.ScanState, error) {
	rids := st.(extdb.StateValue).V.(*[]int64)
	n := len(*rids)
	if maxRows > 0 && maxRows < n {
		n = maxRows
	}
	res := extdb.FetchResult{RIDs: (*rids)[:n], Done: n == len(*rids)}
	*rids = (*rids)[n:]
	return res, st, nil
}

func (trigramMethods) Close(s extdb.Server, st extdb.ScanState) error { return nil }

func main() {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()

	// Step 1 (§2.2.1): the functional implementation of the operator.
	err = db.Registry().RegisterFunction("SubstrMatch", func(args []extdb.Value) (extdb.Value, error) {
		if len(args) < 2 || args[0].IsNull() || args[1].IsNull() {
			return extdb.Num(0), nil
		}
		if strings.Contains(strings.ToLower(args[0].Text()), strings.ToLower(args[1].Text())) {
			return extdb.Num(1), nil
		}
		return extdb.Num(0), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 (§2.2.3): register the ODCIIndex implementation.
	if err := db.Registry().RegisterMethods("TrigramMethods", trigramMethods{}); err != nil {
		log.Fatal(err)
	}

	// Steps 2 and 4 (§2.2.2, §2.2.4): CREATE OPERATOR and CREATE INDEXTYPE.
	for _, ddl := range []string{
		`CREATE OPERATOR MatchesSub BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING SubstrMatch`,
		`CREATE INDEXTYPE TrigramIndexType FOR MatchesSub(VARCHAR2, VARCHAR2) USING TrigramMethods`,
		`CREATE TABLE products(id NUMBER, title VARCHAR2)`,
	} {
		if _, err := s.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	titles := []string{
		"industrial vacuum cleaner", "robot vacuum with dock", "vacuum flask 1l",
		"espresso machine", "machine learning handbook", "hand vacuum pump",
		"washing machine", "sewing machine oil",
	}
	for i, title := range titles {
		if _, err := s.Exec(`INSERT INTO products VALUES (?, ?)`,
			extdb.Int(int64(i+1)), extdb.Str(title)); err != nil {
			log.Fatal(err)
		}
	}

	// End-user steps (§2.3): create the domain index, then just use the
	// operator in SQL.
	if _, err := s.Exec(`CREATE INDEX title_trgm ON products(title) INDEXTYPE IS TrigramIndexType`); err != nil {
		log.Fatal(err)
	}
	s.SetForcedPath(extdb.ForceDomainScan)
	rs, err := s.Query(`SELECT id, title FROM products WHERE MatchesSub(title, 'vacuum') ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products matching 'vacuum':")
	for _, r := range rs.Rows {
		fmt.Printf("  #%s %s\n", r[0], r[1])
	}
	rs, err = s.Query(`SELECT id, title FROM products WHERE MatchesSub(title, 'machine') ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products matching 'machine':")
	for _, r := range rs.Rows {
		fmt.Printf("  #%s %s\n", r[0], r[1])
	}
}
