// Spatialquery reproduces the §3.2.2 scenario: road and park layers, the
// Sdo_Relate operator evaluated through a spatial domain index, and the
// contrast with the pre-8i formulation where the user had to join
// explicit _SDOINDEX tile tables by hand.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	extdb "repro"
)

func main() {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallSpatialCartridge(db, s); err != nil {
		log.Fatal(err)
	}

	for _, ddl := range []string{
		`CREATE TABLE roads(gid NUMBER, geometry SDO_GEOMETRY)`,
		`CREATE TABLE parks(gid NUMBER, geometry SDO_GEOMETRY)`,
	} {
		if _, err := s.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	const n = 300
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		road := extdb.SpatialRect(x, y, x+rng.Float64()*60, y+3)
		if _, err := s.Exec(`INSERT INTO roads VALUES (?, ?)`, extdb.Int(int64(i)), road.ToValue()); err != nil {
			log.Fatal(err)
		}
		x, y = rng.Float64()*950, rng.Float64()*950
		park := extdb.SpatialRect(x, y, x+rng.Float64()*40, y+rng.Float64()*40)
		if _, err := s.Exec(`INSERT INTO parks VALUES (?, ?)`, extdb.Int(int64(i)), park.ToValue()); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := s.Exec(`CREATE INDEX parks_sidx ON parks(geometry) INDEXTYPE IS SpatialIndexType`); err != nil {
		log.Fatal(err)
	}

	// The 8i query: one operator, domain index drives the join.
	modernSQL := `SELECT r.gid, p.gid FROM roads r, parks p
	              WHERE Sdo_Relate(p.geometry, r.geometry, 'mask=ANYINTERACT')`
	start := time.Now()
	modern, err := s.Query(modernSQL)
	if err != nil {
		log.Fatal(err)
	}
	modernTime := time.Since(start)

	fmt.Printf("8i operator join: %d intersecting (road, park) pairs in %.2fms\n",
		len(modern.Rows), float64(modernTime.Microseconds())/1000)
	ex, _ := s.Query(`EXPLAIN PLAN FOR ` + modernSQL)
	for _, r := range ex.Rows {
		fmt.Println("  plan:", r[0])
	}

	// A window query: parks interacting with a query rectangle.
	window := extdb.SpatialRect(100, 100, 260, 260)
	rs, err := s.Query(`SELECT gid FROM parks WHERE Sdo_Relate(geometry, ?, 'mask=ANYINTERACT') ORDER BY gid`,
		window.ToValue())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwindow query [100,100]-[260,260]: %d parks\n", len(rs.Rows))

	// INSIDE semantics differ from ANYINTERACT.
	inside, err := s.Query(`SELECT gid FROM parks WHERE Sdo_Relate(geometry, ?, 'mask=INSIDE')`, window.ToValue())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  of which fully inside: %d parks\n", len(inside.Rows))

	fmt.Println("\nThe same join, the pre-8i way (explicit tile tables, exposed storage):")
	fmt.Println(`  SELECT DISTINCT r.gid, p.gid FROM roads_SDOINDEX r, parks_SDOINDEX p
   WHERE (r.sdo_code BETWEEN p.sdo_code AND p.sdo_maxcode
       OR p.sdo_code BETWEEN r.sdo_code AND r.sdo_maxcode)
     AND GeomRelate(r.geom, p.geom, 'ANYINTERACT') = 1`)
}
