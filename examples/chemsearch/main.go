// Chemsearch reproduces the §3.2.4 scenario: the Daylight chemistry
// cartridge with full-structure, substructure, tautomer and similarity
// searching, and the file-based vs LOB-based index store comparison that
// motivated the migration into the database.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	extdb "repro"
)

var compounds = []struct {
	id  int64
	mol string
}{
	{1, "CCO"},                 // ethanol
	{2, "CC(=O)O"},             // acetic acid
	{3, "CC(=O)Nc1ccccc1"},     // acetanilide
	{4, "c1ccccc1"},            // benzene
	{5, "Cc1ccccc1"},           // toluene
	{6, "CC(C)CC(=O)O"},        // isovaleric acid
	{7, "NCCc1ccccc1"},         // phenethylamine
	{8, "CCCCCCCC"},            // octane
	{9, "OCC(O)C(O)C(O)C(O)C"}, // a sugar-ish polyol
	{10, "CC(=O)OC"},           // methyl acetate
}

func main() {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallChemCartridge(db, s); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Exec(`CREATE TABLE compounds(id NUMBER, mol VARCHAR2)`); err != nil {
		log.Fatal(err)
	}
	for _, c := range compounds {
		if _, err := s.Exec(`INSERT INTO compounds VALUES (?, ?)`, extdb.Int(c.id), extdb.Str(c.mol)); err != nil {
			log.Fatal(err)
		}
	}

	// LOB-resident index (the paper's migration target): index data lives
	// in database LOBs accessed through a file-like interface.
	start := time.Now()
	if _, err := s.Exec(`CREATE INDEX mol_idx ON compounds(mol) INDEXTYPE IS ChemIndexType`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built LOB-resident fingerprint index over %d compounds in %v\n\n",
		len(compounds), time.Since(start).Round(time.Microsecond))

	s.SetForcedPath(extdb.ForceDomainScan)
	defer s.SetForcedPath(extdb.ForceAuto)

	show := func(title, sql string, params ...extdb.Value) {
		rs, err := s.Query(sql, params...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(title)
		for _, r := range rs.Rows {
			mol := ""
			for _, c := range compounds {
				if c.id == r[0].Int64() {
					mol = c.mol
				}
			}
			line := fmt.Sprintf("  #%-3d %s", r[0].Int64(), mol)
			if len(r) > 1 {
				line += fmt.Sprintf("   similarity=%.2f", r[1].Float())
			}
			fmt.Println(line)
		}
		fmt.Println()
	}

	// Full structure lookup is notation-order independent.
	show("exact structure 'O=C(C)Nc1ccccc1' (acetanilide, rewritten):",
		`SELECT id FROM compounds WHERE ChemExact(mol, 'O=C(C)Nc1ccccc1')`)

	// Substructure selection: everything containing a benzene ring.
	show("substructure 'c1ccccc1' (benzene ring):",
		`SELECT id FROM compounds WHERE ChemContains(mol, 'c1ccccc1') ORDER BY id`)

	// Substructure: carboxyl-ish fragment C(=O)O.
	show("substructure 'C(=O)O' (ester/acid group):",
		`SELECT id FROM compounds WHERE ChemContains(mol, 'C(=O)O') ORDER BY id`)

	// Nearest neighbors by Tanimoto similarity, via the ancillary score.
	show("3 nearest neighbors of toluene (Tanimoto):",
		`SELECT id, ChemScore(1) FROM compounds WHERE ChemSimilar(mol, 'Cc1ccccc1', 0.1, 1) LIMIT 3`)

	// Tautomer lookup: skeleton match ignoring bond-order placement.
	show("tautomers of 'CC(O)=Nc1ccccc1' (acetanilide's iminol form):",
		`SELECT id FROM compounds WHERE ChemTautomer(mol, 'CC(O)=Nc1ccccc1')`)

	// The same cartridge can keep its index in OS files instead — one
	// PARAMETERS change, zero code changes (the loblib.Store interface).
	dir, err := os.MkdirTemp("", "chemidx")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := s.Exec(`CREATE TABLE compounds2(id NUMBER, mol VARCHAR2)`); err != nil {
		log.Fatal(err)
	}
	for _, c := range compounds {
		s.Exec(`INSERT INTO compounds2 VALUES (?, ?)`, extdb.Int(c.id), extdb.Str(c.mol))
	}
	if _, err := s.Exec(fmt.Sprintf(
		`CREATE INDEX mol_idx2 ON compounds2(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage file :Dir %s')`, dir)); err != nil {
		log.Fatal(err)
	}
	rs, err := s.Query(`SELECT id FROM compounds2 WHERE ChemContains(mol, 'c1ccccc1') ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file-backed index agrees: %d benzene-containing compounds\n", len(rs.Rows))
}
