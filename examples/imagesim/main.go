// Imagesim reproduces the §3.2.3 scenario: content-based image retrieval
// with the VIRSimilar operator, comparing the pre-8i model (signature
// comparison as a filter predicate for every row) with the domain index's
// three-phase multi-level filtering.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	extdb "repro"
)

const (
	nImages  = 3000
	clusters = 8
	weights  = "globalcolor=0.5,localcolor=0.0,texture=0.5,structure=0.0"
)

// makeSignature builds a synthetic 64-dim feature signature near one of
// the cluster centers.
func makeSignature(rng *rand.Rand, centers [][64]float64, c int) extdb.Signature {
	var sig extdb.Signature
	for i := range sig {
		sig[i] = centers[c][i] + rng.NormFloat64()*3
	}
	return sig
}

func main() {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallVIRCartridge(db, s); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Exec(`CREATE TABLE images(id NUMBER, sig VIR_SIGNATURE)`); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	centers := make([][64]float64, clusters)
	for c := range centers {
		for i := range centers[c] {
			centers[c][i] = rng.Float64() * 1000
		}
	}
	for i := 0; i < nImages; i++ {
		sig := makeSignature(rng, centers, i%clusters)
		if _, err := s.Exec(`INSERT INTO images VALUES (?, ?)`, extdb.Int(int64(i)), sig.ToValue()); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := s.Exec(`CREATE INDEX img_idx ON images(sig) INDEXTYPE IS VIRIndexType`); err != nil {
		log.Fatal(err)
	}

	query := makeSignature(rng, centers, 3)
	fmt.Printf("collection: %d images in %d visual clusters\n\n", nImages, clusters)

	// Pre-8i: the operator is a filter predicate for every row.
	s.SetForcedPath(extdb.ForceFullScan)
	start := time.Now()
	full, err := s.Query(`SELECT id FROM images WHERE VIRSimilar(sig, ?, ?, 10)`,
		query.ToValue(), extdb.Str(weights))
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	// 8i: three-phase evaluation through the domain index.
	s.SetForcedPath(extdb.ForceDomainScan)
	start = time.Now()
	idx, err := s.Query(`SELECT id FROM images WHERE VIRSimilar(sig, ?, ?, 10)`,
		query.ToValue(), extdb.Str(weights))
	if err != nil {
		log.Fatal(err)
	}
	idxTime := time.Since(start)
	s.SetForcedPath(extdb.ForceAuto)

	fmt.Printf("per-row signature compare (pre-8i): %8.2fms  (%d matches)\n",
		float64(fullTime.Microseconds())/1000, len(full.Rows))
	fmt.Printf("3-phase domain index (8i):          %8.2fms  (%d matches)\n",
		float64(idxTime.Microseconds())/1000, len(idx.Rows))
	fmt.Printf("speedup: %.1fx\n\n", float64(fullTime)/float64(idxTime))

	// Top-10 most similar, with the distance as ancillary data.
	s.SetForcedPath(extdb.ForceDomainScan)
	top, err := s.Query(`SELECT id, VIRScore(1) FROM images WHERE VIRSimilar(sig, ?, ?, 15, 1) LIMIT 10`,
		query.ToValue(), extdb.Str(weights))
	s.SetForcedPath(extdb.ForceAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-10 similar images (ascending distance):")
	for _, r := range top.Rows {
		fmt.Printf("  image %-5s distance %.3f\n", r[0], r[1].Float())
	}
}
