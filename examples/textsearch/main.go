// Textsearch builds a document corpus and contrasts the two execution
// models of §3.2.1: the pre-Oracle8i two-step plan (materialize matching
// rowids into a temporary result table, then join) against the pipelined
// domain-index scan of the extensible indexing framework.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	extdb "repro"
)

const nDocs = 4000

func main() {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallTextCartridge(db, s); err != nil {
		log.Fatal(err)
	}

	if _, err := s.Exec(`CREATE TABLE docs(id NUMBER, body VARCHAR2)`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"database", "index", "btree", "spatial", "image", "text",
		"query", "optimizer", "transaction", "storage", "buffer", "cache"}
	for i := 0; i < nDocs; i++ {
		var words []string
		for w := 0; w < 25; w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		if i%200 == 0 {
			words = append(words, "needle") // a rare term: ~0.5% of docs
		}
		if _, err := s.Exec(`INSERT INTO docs VALUES (?, ?)`,
			extdb.Int(int64(i)), extdb.Str(strings.Join(words, " "))); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := s.Exec(`CREATE INDEX doc_text ON docs(body) INDEXTYPE IS TextIndexType`); err != nil {
		log.Fatal(err)
	}

	query := "needle AND database"
	fmt.Printf("Corpus: %d documents; query: %q\n\n", nDocs, query)

	// Pre-8i: two-step evaluation with a temporary result table.
	start := time.Now()
	twoStep, err := extdb.TextTwoStepQuery(s.DB().NewSession(), "docs", "body", "doc_text", query, 0)
	if err != nil {
		log.Fatal(err)
	}
	twoStepTime := time.Since(start)

	// 8i: single pipelined statement; the kernel invokes the index scan
	// routines and streams rowids straight into the plan.
	s.SetForcedPath(extdb.ForceDomainScan)
	start = time.Now()
	rs, err := s.Query(`SELECT * FROM docs WHERE Contains(body, ?)`, extdb.Str(query))
	if err != nil {
		log.Fatal(err)
	}
	pipelinedTime := time.Since(start)

	// First-row latency with LIMIT 1: the pipelined model returns it
	// without computing the full result join.
	start = time.Now()
	if _, err := s.Query(`SELECT * FROM docs WHERE Contains(body, ?) LIMIT 1`, extdb.Str(query)); err != nil {
		log.Fatal(err)
	}
	firstRow := time.Since(start)
	s.SetForcedPath(extdb.ForceAuto)

	fmt.Printf("pre-8i two-step (temp table + join): %8.2fms  (%d rows)\n",
		float64(twoStepTime.Microseconds())/1000, len(twoStep))
	fmt.Printf("8i pipelined domain scan:            %8.2fms  (%d rows)\n",
		float64(pipelinedTime.Microseconds())/1000, len(rs.Rows))
	fmt.Printf("8i first row (LIMIT 1):              %8.2fms\n",
		float64(firstRow.Microseconds())/1000)
	if len(twoStep) != len(rs.Rows) {
		log.Fatalf("result mismatch: %d vs %d", len(twoStep), len(rs.Rows))
	}
	fmt.Printf("\nspeedup: %.1fx\n", float64(twoStepTime)/float64(pipelinedTime))
}
