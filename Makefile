GO ?= go

RACE_PKGS = repro/internal/txn repro/internal/storage repro/internal/engine repro/internal/extidx repro/internal/exec repro/internal/obs

.PHONY: build vet lint test race crash fuzz obs-smoke check bench bench-batch bench-parallel bench-writers bench-storage

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tags invariants ./...

## lint: run the codebase-specific static analyzers (cmd/vetx)
lint:
	$(GO) run ./cmd/vetx ./...

test:
	$(GO) test ./...

## race: race detector + runtime invariant checks on the concurrency-bearing packages
## (the engine suite alone runs ~10 minutes under -race on one core, so
## the per-package timeout is raised above the 600s default)
race:
	$(GO) test -race -tags invariants -timeout 1200s $(RACE_PKGS)
	$(GO) test -race -tags invariants -timeout 1200s -run 'Stress|CrashConcurrent' .

## crash: fault-injection crash-recovery matrix (every crash point, torn writes)
crash:
	$(GO) test -run Crash -tags invariants -v .

## fuzz: parser round-trip fuzz smoke (parse -> print -> parse identity)
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 20s ./internal/sql

## obs-smoke: run a reduced experiment sweep and fail if any required
## engine counter (pager, txn, planner, ODCI fetch, parallel exec,
## per-shard pager stats, background checkpoints) or wait-event class
## (AdmissionShared, WALGroupFsync, WALAppend, MutationWindow,
## ExchangeWorkerIdle, ODCICallback, PagerLatch,
## CheckpointBackpressure) stayed at zero — catches silently
## disconnected instrumentation
obs-smoke:
	$(GO) run ./cmd/benchrunner -quick -only E2,E6,E8,P1,W1,S1 -json -smoke > /dev/null

## check: everything CI runs
check: build vet lint test race crash obs-smoke

bench:
	$(GO) test -bench=. -benchmem .

## bench-batch: Fetch-batch-size sweep, row-at-a-time baseline vs
## batch-first executor, one JSON metrics snapshot per batch size
bench-batch:
	$(GO) run ./cmd/benchrunner -only B1 -json

## bench-parallel: parallel-degree sweep, morsel-driven scan/aggregate
## vs serial, one JSON metrics snapshot per degree
bench-parallel:
	$(GO) run ./cmd/benchrunner -only P1 -json

## bench-writers: group-commit writer sweep (commits/sec and
## commits-per-fsync at 1/4/16/64 writers), one JSON metrics snapshot
## per writer count; the experiment aborts on parity loss or a dead
## shared-sync path
bench-writers:
	$(GO) run ./cmd/benchrunner -only W1 -json

## bench-storage: sharded-buffer-pool sweep (pager-latch wait time at
## 1/4/16 shards under degree-8 parallel scans racing 16 writers, plus
## a deterministic checkpoint-backpressure phase), one JSON metrics
## snapshot per shard count; the experiment aborts on scan/writer
## parity loss and asserts 16 shards cut latch time to <= 50% of the
## single-latch baseline
bench-storage:
	$(GO) run ./cmd/benchrunner -only S1 -json
