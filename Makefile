GO ?= go

RACE_PKGS = repro/internal/txn repro/internal/storage repro/internal/engine repro/internal/extidx

.PHONY: build vet lint test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: run the codebase-specific static analyzers (cmd/vetx)
lint:
	$(GO) run ./cmd/vetx ./...

test:
	$(GO) test ./...

## race: race detector + runtime invariant checks on the concurrency-bearing packages
race:
	$(GO) test -race -tags invariants $(RACE_PKGS)

## check: everything CI runs
check: build vet lint test race

bench:
	$(GO) test -bench=. -benchmem .
