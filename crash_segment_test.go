package extdb_test

// Segmented-WAL slice of the crash matrix: the same scripted and
// concurrent workloads run over a segmented sink with a payload capacity
// smaller than one page record, so every log append spans segment
// boundaries, commits activate fresh segment headers mid-workload, and
// the checkpoint step retires and recycles a whole chain. Power-failing
// at every fault-eligible operation therefore lands crashes at segment
// boundaries, during header activation, and at recycle time — the fault
// points the flat single-file matrix cannot produce.

import (
	"errors"
	"fmt"
	"testing"

	extdb "repro"
	"repro/internal/storage"
	"repro/internal/storage/fault"
)

// crashSegBytes is far below one logged page image (~8.2 KiB), forcing
// every page record to straddle several segments.
const crashSegBytes = 1024

// TestCrashSegmentedBaseline is the control: the workload over segmented
// media with no fault must verify, and must actually have cycled
// segments (a chain longer than one segment and a recycle pool).
func TestCrashSegmentedBaseline(t *testing.T) {
	media, m, bounds := runPassive(t, crashSegBytes)
	if total := bounds[len(bounds)-1]; total < 30 {
		t.Fatalf("suspiciously few fault-eligible ops: %d", total)
	}
	seg := media.sink.(*storage.SegmentedSink)
	live, free := seg.Segments()
	if live+free < 2 {
		t.Fatalf("segmented workload never spanned a segment: live=%d free=%d", live, free)
	}
	if free == 0 {
		t.Fatalf("workload checkpoints never recycled a segment: live=%d free=%d", live, free)
	}
	verifyDurable(t, media, m, "segmented-baseline")
}

// TestCrashSegmentedMatrixEveryPoint power-fails the scripted workload
// over segmented media at every fault-eligible operation.
func TestCrashSegmentedMatrixEveryPoint(t *testing.T) {
	_, _, bounds := runPassive(t, crashSegBytes)
	total := bounds[len(bounds)-1]
	for point := 1; point <= total; point++ {
		runCrashPoint(t, crashSegBytes, point, fault.Crash, fmt.Sprintf("seg-crash@%d", point))
	}
}

// TestCrashSegmentedMatrixTornWrites repeats the sweep with torn power
// loss: half the pending log bytes reach the segmented chain — tearing
// inside a segment, or exactly at a boundary with the spill segment
// lost. Recovery must keep the intact record prefix and nothing else.
func TestCrashSegmentedMatrixTornWrites(t *testing.T) {
	_, _, bounds := runPassive(t, crashSegBytes)
	total := bounds[len(bounds)-1]
	for point := 1; point <= total; point++ {
		runCrashPoint(t, crashSegBytes, point, fault.CrashTorn, fmt.Sprintf("seg-torn@%d", point))
	}
}

// TestCrashSegmentedRecyclePoints aims power loss at every operation of
// the checkpoint step specifically — the flush, the page-file sync, and
// the log reset that retires the old chain and durably activates the
// next epoch's head segment. A crash between those sub-steps must leave
// either the old chain or the fresh empty one, never a replayable
// prefix of a superseded epoch.
func TestCrashSegmentedRecyclePoints(t *testing.T) {
	_, _, bounds := runPassive(t, crashSegBytes)
	ckpt := -1
	for i, st := range crashSteps() {
		if st.name == "checkpoint" {
			ckpt = i
		}
	}
	if ckpt <= 0 {
		t.Fatal("no checkpoint step in workload")
	}
	for point := bounds[ckpt-1] + 1; point <= bounds[ckpt]; point++ {
		for _, action := range []fault.Action{fault.Crash, fault.CrashTorn} {
			label := fmt.Sprintf("seg-recycle@%d/%v", point, action)
			media := newCrashMedia(crashSegBytes)
			inj := fault.NewInjector().Set(point, action)
			m, _, failed, err := runWorkload(t, media, inj)
			if failed >= 0 && !errors.Is(err, fault.ErrCrashed) && !errors.Is(err, extdb.ErrWALBroken) {
				t.Fatalf("%s: step %d failed with unexpected error: %v", label, failed, err)
			}
			if failed > ckpt {
				t.Fatalf("%s: crash landed in step %d, past the checkpoint step %d", label, failed, ckpt)
			}
			verifyDurable(t, media, m, label)
		}
	}
}

// TestCrashConcurrentSegmentedMatrix runs the concurrent-committer sweep
// over segmented media: group batches span segments, and a torn shared
// fsync can strand half a group across a segment boundary.
func TestCrashConcurrentSegmentedMatrix(t *testing.T) {
	media := newCrashMedia(crashSegBytes)
	_, total := runConcurrentWorkload(t, media, fault.NewInjector())
	for point := 1; point <= total; point++ {
		runConcurrentCrashPoint(t, crashSegBytes, point, fault.Crash, fmt.Sprintf("seg-concurrent-crash@%d", point))
		runConcurrentCrashPoint(t, crashSegBytes, point, fault.CrashTorn, fmt.Sprintf("seg-concurrent-torn@%d", point))
	}
}
