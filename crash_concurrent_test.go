package extdb_test

// Concurrent-committer crash matrix: N writer goroutines commit
// autocommit transactions over disjoint per-writer tables and one shared
// (overlapping) table while a fault-injecting WAL sink and backend
// power-fail the database at every fault-eligible operation — leader
// appends, the shared fsync, follower enqueues, page writes. After each
// simulated crash the durable media reopen and are checked against the
// per-writer acknowledgement record:
//
//   - every acknowledged statement's row is present with exactly the
//     content its writer wrote,
//   - every row present was written by exactly one statement (no torn or
//     cross-transaction frame leakage),
//   - statements that returned an error are atomically present-or-absent
//     (a torn group batch may have made an unacknowledged commit record
//     durable; it must then replay in full or not at all),
//   - statements never attempted are absent.
//
// Names carry the Crash prefix so `go test -run Crash` selects the whole
// durability harness, concurrent half included.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	extdb "repro"
	"repro/internal/storage/fault"
)

const (
	ccWriters       = 4
	ccRowsPerWriter = 3
)

// ccResult records, per row key "Table/id", what each writer observed:
// acked rows (Exec returned nil — the commit was acknowledged) and
// failed rows (Exec errored — the statement may or may not have reached
// the log before the power failure).
type ccResult struct {
	mu     sync.Mutex
	acked  map[string]string
	failed map[string]string
}

func (r *ccResult) record(key, val string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil {
		r.acked[key] = val
	} else {
		r.failed[key] = val
	}
}

func ccTables() []string {
	ts := make([]string, 0, ccWriters+1)
	for w := 0; w < ccWriters; w++ {
		ts = append(ts, fmt.Sprintf("W%d", w))
	}
	return append(ts, "Shared")
}

// runConcurrentWorkload opens a database over fault-wrapped media,
// creates the writer tables, then lets ccWriters goroutines race their
// inserts: each writer fills its own table (disjoint key ranges across
// writers) and interleaves inserts into the shared table (overlapping
// page ranges, serialized by the table lock but grouped with the other
// writers' fsyncs). Writers stop at their first error — after a crash or
// WAL poisoning nothing can commit anyway. Returns the acknowledgement
// record and the total fault-eligible ops consumed.
func runConcurrentWorkload(t *testing.T, media crashMedia, inj *fault.Injector) (*ccResult, int) {
	t.Helper()
	res := &ccResult{acked: map[string]string{}, failed: map[string]string{}}
	db, err := extdb.Open(extdb.Options{
		Backend:        fault.NewBackend(inj, media.backend),
		WALSink:        fault.NewSink(inj, media.sink),
		CacheSizePages: 64,
	})
	if err != nil {
		t.Fatalf("open over fault media: %v", err)
	}
	setup := db.NewSession()
	setupOK := true
	for _, tbl := range ccTables() {
		if _, err := setup.Exec(fmt.Sprintf(`CREATE TABLE %s(id NUMBER, val VARCHAR2)`, tbl)); err != nil {
			setupOK = false
			break
		}
	}
	if setupOK {
		var wg sync.WaitGroup
		for w := 0; w < ccWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := db.NewSession()
				for r := 0; r < ccRowsPerWriter; r++ {
					id := int64(w*100 + r)
					own := fmt.Sprintf("w%d-r%d-own", w, r)
					_, err := s.Exec(fmt.Sprintf(`INSERT INTO W%d VALUES (%d, '%s')`, w, id, own))
					res.record(fmt.Sprintf("W%d/%d", w, id), own, err)
					if err != nil {
						return
					}
					shared := fmt.Sprintf("w%d-r%d-shared", w, r)
					_, err = s.Exec(fmt.Sprintf(`INSERT INTO Shared VALUES (%d, '%s')`, id, shared))
					res.record(fmt.Sprintf("Shared/%d", id), shared, err)
					if err != nil {
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	_ = db.Close() // crashed media: a failing close is part of the scenario
	return res, inj.Ops()
}

// verifyConcurrentDurable reopens the durable media and checks the
// recovered state against the acknowledgement record.
func verifyConcurrentDurable(t *testing.T, media crashMedia, res *ccResult, label string) {
	t.Helper()
	db, err := extdb.Open(extdb.Options{Backend: media.backend, WALSink: media.sink})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", label, err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatalf("%s: close recovered database: %v", label, err)
		}
	}()
	s := db.NewSession()
	for _, tbl := range ccTables() {
		prefix := tbl + "/"
		rs, err := s.Query(fmt.Sprintf(`SELECT id, val FROM %s ORDER BY id`, tbl))
		if err != nil {
			// The table's CREATE was never acknowledged; no acknowledged
			// row may reference it (writers only start after full setup).
			for key := range res.acked {
				if strings.HasPrefix(key, prefix) {
					t.Fatalf("%s: table %s lost but row %s was acknowledged", label, tbl, key)
				}
			}
			continue
		}
		present := map[string]string{}
		for _, row := range rs.Rows {
			key := fmt.Sprintf("%s/%d", tbl, row[0].Int64())
			if _, dup := present[key]; dup {
				t.Fatalf("%s: row %s recovered twice", label, key)
			}
			present[key] = row[1].Text()
		}
		for key, want := range res.acked {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			got, ok := present[key]
			if !ok {
				t.Fatalf("%s: acknowledged row %s lost after recovery", label, key)
			}
			if got != want {
				t.Fatalf("%s: row %s = %q after recovery, want %q (cross-transaction frame leakage)",
					label, key, got, want)
			}
		}
		for key, got := range present {
			if want, ok := res.acked[key]; ok {
				if got != want {
					t.Fatalf("%s: row %s = %q, want %q", label, key, got, want)
				}
				continue
			}
			if want, ok := res.failed[key]; ok {
				// Unacknowledged but durable: legal only if the whole
				// statement replayed intact (atomic present-or-absent).
				if got != want {
					t.Fatalf("%s: unacknowledged row %s recovered torn: %q, want %q",
						label, key, got, want)
				}
				continue
			}
			t.Fatalf("%s: row %s present but never written by any writer", label, key)
		}
	}
}

// runConcurrentCrashPoint executes the concurrent workload with a power
// failure planned at fault-eligible operation `point` and verifies the
// durable state. Concurrent schedules are nondeterministic, so a late
// point may fall beyond the ops this particular run consumed — that run
// simply completed, and its durable state must still verify.
func runConcurrentCrashPoint(t *testing.T, segBytes int64, point int, action fault.Action, label string) {
	t.Helper()
	media := newCrashMedia(segBytes)
	inj := fault.NewInjector().Set(point, action)
	res, _ := runConcurrentWorkload(t, media, inj)
	verifyConcurrentDurable(t, media, res, label)
}

// TestCrashConcurrentBaseline is the control: no fault, every commit
// acknowledged, everything durable.
func TestCrashConcurrentBaseline(t *testing.T) {
	media := newCrashMedia(0)
	inj := fault.NewInjector()
	res, total := runConcurrentWorkload(t, media, inj)
	if len(res.failed) != 0 {
		t.Fatalf("baseline run had failures: %v", res.failed)
	}
	if want := ccWriters * ccRowsPerWriter * 2; len(res.acked) != want {
		t.Fatalf("baseline acknowledged %d rows, want %d", len(res.acked), want)
	}
	if total < 30 {
		t.Fatalf("suspiciously few fault-eligible ops in concurrent workload: %d", total)
	}
	verifyConcurrentDurable(t, media, res, "concurrent-baseline")
}

// TestCrashConcurrentMatrixEveryPoint power-fails the concurrent
// workload at every fault-eligible operation of a reference run and
// verifies recovery after each: committed transactions durable,
// uncommitted absent, no cross-transaction frame leakage.
func TestCrashConcurrentMatrixEveryPoint(t *testing.T) {
	media := newCrashMedia(0)
	_, total := runConcurrentWorkload(t, media, fault.NewInjector())
	for point := 1; point <= total; point++ {
		runConcurrentCrashPoint(t, 0, point, fault.Crash, fmt.Sprintf("concurrent-crash@%d", point))
	}
}

// TestCrashConcurrentMatrixTornWrites repeats the sweep with torn power
// loss: the operation in flight makes a prefix of its writes durable —
// for the shared fsync that means a prefix of the whole group batch, so
// one committer's complete commit record can become durable while the
// rest of its group is lost. Recovery must keep exactly the intact
// prefix's transactions.
func TestCrashConcurrentMatrixTornWrites(t *testing.T) {
	media := newCrashMedia(0)
	_, total := runConcurrentWorkload(t, media, fault.NewInjector())
	for point := 1; point <= total; point++ {
		runConcurrentCrashPoint(t, 0, point, fault.CrashTorn, fmt.Sprintf("concurrent-torn@%d", point))
	}
}

// TestCrashConcurrentFailedSyncPoisonsGroup injects a plain I/O failure
// (no power loss) into every fault-eligible operation in turn. When the
// failure lands in a shared fsync, every committer waiting on that sync
// epoch must observe the failure — none of them may acknowledge — and
// later commits must be refused while the log tail is suspect. The
// durable media must still verify: acknowledged commits survive, the
// poisoned batch is atomically present-or-absent per transaction.
func TestCrashConcurrentFailedSyncPoisonsGroup(t *testing.T) {
	media := newCrashMedia(0)
	_, total := runConcurrentWorkload(t, media, fault.NewInjector())
	for point := 1; point <= total; point++ {
		label := fmt.Sprintf("concurrent-fail@%d", point)
		media := newCrashMedia(0)
		inj := fault.NewInjector().Set(point, fault.Fail)
		res, _ := runConcurrentWorkload(t, media, inj)
		verifyConcurrentDurable(t, media, res, label)
	}
}
