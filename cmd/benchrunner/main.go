// Command benchrunner regenerates every experiment of EXPERIMENTS.md
// (E1–E10) at full size and prints the result tables, reproducing the
// evaluation section of the paper.
//
// Usage:
//
//	benchrunner [-quick] [-only E2,E4] [-json] [-smoke]
//
// With -json, each experiment is emitted as a JSON object carrying the
// table plus the engine metrics snapshot accumulated while it ran
// (pager hit rate, WAL activity, ODCI callback-time breakdowns). With
// -smoke, the run exits nonzero unless the aggregated metrics show real
// engine activity (pager fetches, ODCIIndexFetch calls, and — after the
// parallel/writer sweeps — live wait-event classes) — CI uses this to
// catch silently dead instrumentation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
)

// experimentJSON is one experiment's -json output record.
type experimentJSON struct {
	ID           string         `json:"id"`
	Title        string         `json:"title"`
	PaperClaim   string         `json:"paper_claim"`
	Headers      []string       `json:"headers"`
	Rows         [][]string     `json:"rows"`
	WallMS       float64        `json:"wall_ms"`
	PagerHitRate float64        `json:"pager_hit_rate"`
	Metrics      engine.Metrics `json:"metrics"`
}

func main() {
	quick := flag.Bool("quick", false, "run with reduced data sizes")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E2,E4); empty = all")
	jsonOut := flag.Bool("json", false, "emit one JSON object per experiment instead of text tables")
	smoke := flag.Bool("smoke", false, "fail unless required engine counters are nonzero (CI smoke check)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.ToUpper(strings.TrimSpace(id)); id != "" {
			want[id] = true
		}
	}

	cfg := bench.Config{Quick: *quick}
	experiments := []struct {
		id string
		f  func(bench.Config) bench.Table
	}{
		{"E1", bench.E1IndexVsFunctional},
		{"E2", bench.E2TextPre8iVs8i},
		{"E3", bench.E3SpatialTileJoinVsOperator},
		{"E4", bench.E4VIRPhases},
		{"E5", bench.E5ChemFileVsLOB},
		{"E6", bench.E6OptimizerChoice},
		{"E7", bench.E7ScanContext},
		{"E8", bench.E8BatchFetch},
		{"E9", bench.E9MaintenanceOverhead},
		{"E10", bench.E10CollectionIndex},
		{"A1", bench.A1CallbacksVsDirect},
		{"B1", bench.BatchSweep},
		{"P1", bench.ParallelSweep},
		{"W1", bench.WriterSweep},
		{"S1", bench.StorageSweep},
	}
	enc := json.NewEncoder(os.Stdout)
	var total engine.Metrics
	ran := map[string]bool{}
	totalStart := time.Now()
	bench.TakeMetrics() // discard anything accumulated before the sweep
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		ran[e.id] = true
		start := time.Now()
		t := e.f(cfg)
		wall := time.Since(start)
		m := bench.TakeMetrics()
		total.Merge(m)
		if *jsonOut {
			rec := experimentJSON{
				ID:           t.ID,
				Title:        t.Title,
				PaperClaim:   t.PaperClaim,
				Headers:      t.Headers,
				Rows:         t.Rows,
				WallMS:       float64(wall.Microseconds()) / 1000,
				PagerHitRate: m.Pager.HitRate(),
				Metrics:      m,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: encode:", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(t.Format())
		fmt.Printf("(%s completed in %v; pager hit rate %.1f%%, ODCI fetch calls %d)\n\n",
			e.id, wall.Round(time.Millisecond), m.Pager.HitRate()*100,
			m.ODCI.Callbacks["ODCIIndexFetch"].Calls)
	}
	if !*jsonOut {
		fmt.Printf("all experiments done in %v\n", time.Since(totalStart).Round(time.Millisecond))
	}
	if *smoke {
		if err := smokeCheck(total, ran["P1"], ran["W1"], ran["S1"]); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: smoke check FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchrunner: smoke check ok")
	}
}

// smokeCheck validates that the instrumented engine actually observed
// the activity the experiments must have generated. A zero here means a
// counter was disconnected, not that the workload was idle.
func smokeCheck(m engine.Metrics, ranParallel, ranWriters, ranStorage bool) error {
	if m.Pager.Fetches == 0 {
		return fmt.Errorf("pager fetches = 0 (buffer-pool counters disconnected)")
	}
	if m.Engine.Selects == 0 {
		return fmt.Errorf("selects = 0 (engine counters disconnected)")
	}
	if m.Txn.Commits == 0 {
		return fmt.Errorf("txn commits = 0 (txn counters disconnected)")
	}
	if m.Planner.Plans == 0 {
		return fmt.Errorf("planner plans = 0 (planner counters disconnected)")
	}
	fetch := m.ODCI.Callbacks["ODCIIndexFetch"]
	if fetch.Calls == 0 {
		return fmt.Errorf("ODCIIndexFetch calls = 0 (ODCI-boundary counters disconnected)")
	}
	if err := requireWait(m, "ODCICallback", false); err != nil {
		return err
	}
	if ranParallel {
		if m.Exec.Exchanges == 0 {
			return fmt.Errorf("exchanges = 0 (parallel-executor counters disconnected)")
		}
		if m.Exec.MorselsDispatched == 0 {
			return fmt.Errorf("morsels dispatched = 0 (morsel counters disconnected)")
		}
		if m.Exec.WorkerBusyNanos == 0 {
			return fmt.Errorf("worker busy time = 0 (worker counters disconnected)")
		}
		if err := requireWait(m, "ExchangeWorkerIdle", false); err != nil {
			return err
		}
	}
	if ranWriters {
		if m.Pager.WALSyncs == 0 {
			return fmt.Errorf("WAL syncs = 0 (fsync counters disconnected)")
		}
		if m.Pager.WALGroupedCommits == 0 || m.CommitGroups.Count == 0 {
			return fmt.Errorf("grouped commits = 0 (commits-per-fsync counters disconnected)")
		}
		for _, class := range []string{"AdmissionShared", "WALGroupFsync"} {
			if err := requireWait(m, class, true); err != nil {
				return err
			}
		}
		for _, class := range []string{"WALAppend", "MutationWindow"} {
			if err := requireWait(m, class, false); err != nil {
				return err
			}
		}
		if m.FlightEvents == 0 {
			return fmt.Errorf("flight recorder events = 0 (flight recorder disconnected)")
		}
	}
	if ranStorage {
		if len(m.PagerShards) == 0 {
			return fmt.Errorf("per-shard pager stats empty (shard counters disconnected)")
		}
		if m.Engine.BgCheckpoints == 0 {
			return fmt.Errorf("background checkpoints = 0 (checkpointer counters disconnected)")
		}
		if err := requireWait(m, "PagerLatch", true); err != nil {
			return err
		}
		if err := requireWait(m, "CheckpointBackpressure", false); err != nil {
			return err
		}
	}
	return nil
}

// requireWait checks that a wait-event class actually fired during the
// sweep; with needTime it additionally demands nonzero blocked time. A
// dead class means a recording point was disconnected (e.g. a lock
// acquisition reverted to a bare Lock() without StartWait), not that the
// workload was contention-free: the writer experiments are built to
// contend.
func requireWait(m engine.Metrics, class string, needTime bool) error {
	wc, ok := m.Waits.Classes[class]
	if !ok || wc.Count == 0 {
		return fmt.Errorf("wait class %s never fired (wait-event recording point disconnected)", class)
	}
	if needTime && wc.TotalNanos == 0 {
		return fmt.Errorf("wait class %s fired %d times with zero blocked time (wait timing disconnected)", class, wc.Count)
	}
	return nil
}
