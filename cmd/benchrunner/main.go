// Command benchrunner regenerates every experiment of EXPERIMENTS.md
// (E1–E10) at full size and prints the result tables, reproducing the
// evaluation section of the paper.
//
// Usage:
//
//	benchrunner [-quick] [-only E2,E4]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced data sizes")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E2,E4); empty = all")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.ToUpper(strings.TrimSpace(id)); id != "" {
			want[id] = true
		}
	}

	cfg := bench.Config{Quick: *quick}
	experiments := []struct {
		id string
		f  func(bench.Config) bench.Table
	}{
		{"E1", bench.E1IndexVsFunctional},
		{"E2", bench.E2TextPre8iVs8i},
		{"E3", bench.E3SpatialTileJoinVsOperator},
		{"E4", bench.E4VIRPhases},
		{"E5", bench.E5ChemFileVsLOB},
		{"E6", bench.E6OptimizerChoice},
		{"E7", bench.E7ScanContext},
		{"E8", bench.E8BatchFetch},
		{"E9", bench.E9MaintenanceOverhead},
		{"E10", bench.E10CollectionIndex},
		{"A1", bench.A1CallbacksVsDirect},
	}
	total := time.Now()
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		t := e.f(cfg)
		fmt.Println(t.Format())
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %v\n", time.Since(total).Round(time.Millisecond))
}
