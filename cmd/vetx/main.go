// Command vetx runs the repo's codebase-specific static analyzers (see
// internal/vetx): the per-function contract checks plus the
// interprocedural lock-order, callback-under-lock, chunk-aliasing and
// atomic-mixing analyses. Usage:
//
//	go run ./cmd/vetx ./...
//	go run ./cmd/vetx -list
//	go run ./cmd/vetx -json ./... > findings.json
//	go run ./cmd/vetx ./internal/storage ./internal/btree/...
//
// Exit status contract (CI and the Makefile `lint` target depend on it):
// 0 = clean, 1 = at least one finding survived suppression, 2 = the
// packages could not be loaded or type-checked.
//
// -json writes the findings as a JSON array of {file, line, col,
// analyzer, message} objects on stdout (an empty array when clean); the
// human summary still goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/vetx"
)

// jsonFinding is the machine-readable projection of a vetx.Finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON on stdout")
	flag.Parse()

	analyzers := vetx.DefaultAnalyzers()
	if *list {
		for _, an := range analyzers {
			fmt.Printf("%-18s %s\n", an.Name, an.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := vetx.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := vetx.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	findings := vetx.Run(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetx: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
