// Command vetx runs the repo's codebase-specific static analyzers (see
// internal/vetx): lockbalance, pinbalance, erraudit, callbackcontract and
// layering. Usage:
//
//	go run ./cmd/vetx ./...
//	go run ./cmd/vetx -list
//	go run ./cmd/vetx ./internal/storage ./internal/btree/...
//
// Exit status is 1 when any finding survives suppression, so the command
// slots directly into CI and the Makefile `lint` target.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/vetx"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := vetx.DefaultAnalyzers()
	if *list {
		for _, an := range analyzers {
			fmt.Printf("%-18s %s\n", an.Name, an.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := vetx.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := vetx.Load(root, patterns)
	if err != nil {
		fatal(err)
	}
	findings := vetx.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetx: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
