// Command extsql is an interactive SQL shell for the extdb engine with
// all four data cartridges pre-installed. Statements end with ';'.
//
// Usage:
//
//	extsql [-db path] [-f script.sql]
//
// Meta commands: \tables, \plan <query>, \stats, \waits, \flight,
// \batch [n], \parallel [n|auto], \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	extdb "repro"
)

func main() {
	dbPath := flag.String("db", "", "database file (empty = in-memory)")
	script := flag.String("f", "", "execute statements from file, then exit")
	flag.Parse()

	db, err := extdb.Open(extdb.Options{Path: *dbPath})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()
	s := db.NewSession()
	for _, install := range []func(*extdb.DB, *extdb.Session) error{
		extdb.InstallTextCartridge, extdb.InstallSpatialCartridge,
		extdb.InstallVIRCartridge, extdb.InstallChemCartridge,
	} {
		if err := install(db, s); err != nil {
			fmt.Fprintln(os.Stderr, "cartridge install:", err)
			os.Exit(1)
		}
	}

	var in io.Reader = os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}
	if interactive {
		fmt.Println("extsql — extensible-indexing SQL shell (cartridges: text, spatial, vir, chem)")
		fmt.Println(`end statements with ';'; \tables lists tables; \quit exits`)
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("SQL> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !meta(db, s, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			run(s, strings.TrimSpace(buf.String()))
			buf.Reset()
		}
		prompt()
	}
}

func meta(db *extdb.DB, s *extdb.Session, cmd string) bool {
	switch {
	case cmd == `\quit` || cmd == `\q`:
		return false
	case cmd == `\tables`:
		var names []string
		for _, t := range db.Catalog().Tables() {
			if !t.Hidden {
				names = append(names, fmt.Sprintf("%s (%d rows)", strings.ToUpper(t.Name), t.RowCount))
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(" ", n)
		}
	case strings.HasPrefix(cmd, `\plan `):
		run(s, "EXPLAIN PLAN FOR "+strings.TrimSuffix(strings.TrimPrefix(cmd, `\plan `), ";"))
	case cmd == `\batch`:
		if db.DefaultFetchBatch > 0 {
			fmt.Printf("fetch batch size: %d\n", db.DefaultFetchBatch)
		} else {
			fmt.Println("fetch batch size: auto (planner picks per scan; see EXPLAIN)")
		}
	case strings.HasPrefix(cmd, `\batch `):
		var n int
		if _, err := fmt.Sscanf(strings.TrimPrefix(cmd, `\batch `), "%d", &n); err != nil || n < 0 {
			fmt.Println(`usage: \batch [n]   (n > 0 fixes the ODCI Fetch batch size, 0 = planner picks)`)
			break
		}
		db.DefaultFetchBatch = n
	case cmd == `\parallel`:
		if n := s.Parallel(); n > 1 {
			fmt.Printf("parallel degree: %d\n", n)
		} else {
			fmt.Println("parallel degree: 1 (serial)")
		}
	case strings.HasPrefix(cmd, `\parallel `):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\parallel `))
		if arg == "auto" {
			s.SetParallel(0)
			fmt.Printf("parallel degree: %d (auto = GOMAXPROCS)\n", s.Parallel())
			break
		}
		var n int
		if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n < 0 {
			fmt.Println(`usage: \parallel [n|auto]   (n > 1 enables parallel scans, 1 = serial, auto = GOMAXPROCS)`)
			break
		}
		s.SetParallel(n)
	case cmd == `\stats`:
		fmt.Print(db.Metrics().String())
	case cmd == `\waits`:
		fmt.Println(db.Metrics().Waits.String())
	case cmd == `\flight`:
		lines := db.FlightRecorder().Dump()
		if len(lines) == 0 {
			fmt.Println("flight recorder: no events")
			break
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	default:
		fmt.Println("unknown meta command; try \\tables, \\stats, \\waits, \\flight, \\plan <query>, \\batch [n], \\parallel [n|auto], \\quit")
	}
	return true
}

func run(s *extdb.Session, stmt string) {
	start := time.Now()
	up := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(up, "SELECT") || strings.HasPrefix(up, "EXPLAIN") {
		rs, err := s.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(rs)
		fmt.Printf("%d row(s) in %v\n", len(rs.Rows), time.Since(start).Round(time.Microsecond))
		return
	}
	res, err := s.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok, %d row(s) affected in %v\n", res.RowsAffected, time.Since(start).Round(time.Microsecond))
}

func printResult(rs *extdb.ResultSet) {
	widths := make([]int, len(rs.Columns))
	for i, c := range rs.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rs.Rows))
	for r, row := range rs.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			cells[r][c] = v.String()
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	var sep strings.Builder
	for _, w := range widths {
		sep.WriteString("+" + strings.Repeat("-", w+2))
	}
	sep.WriteString("+")
	fmt.Println(sep.String())
	for i, c := range rs.Columns {
		fmt.Printf("| %-*s ", widths[i], c)
	}
	fmt.Println("|")
	fmt.Println(sep.String())
	for _, row := range cells {
		for c, v := range row {
			fmt.Printf("| %-*s ", widths[c], v)
		}
		fmt.Println("|")
	}
	fmt.Println(sep.String())
}
