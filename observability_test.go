package extdb_test

import (
	"fmt"
	"strings"
	"testing"

	extdb "repro"
)

// TestTextEstimatedVsActualSkew drives the text cartridge into a stale
// estimate: ODCIStatsSelectivity caches per-token document frequencies,
// so bulk-loading matching documents after the cache warms leaves the
// optimizer estimating from the old corpus. EXPLAIN ANALYZE must show
// the small estimate next to the large actual row count — the
// estimated-vs-actual feedback loop the observability layer exists for.
func TestTextEstimatedVsActualSkew(t *testing.T) {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallTextCartridge(db, s); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TABLE corpus(id NUMBER, body VARCHAR2)`)
	for i := 0; i < 3; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO corpus VALUES (%d, 'needle document %d')`, i, i))
	}
	// Enough filler that a full scan costs many pages, so the selective
	// domain path wins on cost.
	for i := 100; i < 1300; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO corpus VALUES (%d, 'ordinary filler text %d')`, i, i))
	}
	mustExec(t, s, `CREATE INDEX corpus_t ON corpus(body) INDEXTYPE IS TextIndexType`)

	// Warm the df cache: the optimizer now believes 'needle' matches 3
	// documents.
	mustQuery(t, s, `SELECT COUNT(*) FROM corpus WHERE Contains(body, 'needle')`)

	// Skew the data under the cached estimate.
	for i := 1000; i < 1200; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO corpus VALUES (%d, 'needle late arrival %d')`, i, i))
	}

	rs, tr, err := s.QueryTraced(`SELECT id FROM corpus WHERE Contains(body, 'needle')`)
	if err != nil {
		t.Fatal(err)
	}
	actual := int64(len(rs.Rows))
	if actual != 203 {
		t.Fatalf("actual rows = %d, want 203", actual)
	}

	c, ok := tr.ChosenCandidate()
	if !ok || c.Kind != "DOMAIN" {
		t.Fatalf("chosen candidate = %+v (ok=%v), want DOMAIN", c, ok)
	}
	if c.Selectivity <= 0 {
		t.Fatalf("domain candidate lost its ODCIStatsSelectivity value: %+v", c)
	}
	// Estimated rows come from the stale df: ~3 against 203 actual.
	if c.EstRows <= 0 || c.EstRows > float64(actual)/10 {
		t.Errorf("estimate not skewed: est=%.1f actual=%d", c.EstRows, actual)
	}
	scan := tr.Ops[0]
	if !strings.Contains(scan.Desc, "DOMAIN INDEX") {
		t.Fatalf("bottom operator is %q, want the domain scan", scan.Desc)
	}
	if scan.Rows != actual {
		t.Errorf("scan actual rows = %d, want %d", scan.Rows, actual)
	}
	if scan.EstRows != c.EstRows {
		t.Errorf("scan estimate %.1f != candidate estimate %.1f", scan.EstRows, c.EstRows)
	}

	// The same skew is visible through SQL.
	out := explainAnalyze(t, s, `EXPLAIN ANALYZE SELECT id FROM corpus WHERE Contains(body, 'needle')`)
	for _, want := range []string{"DOMAIN INDEX", "est=", "rows=203", "CANDIDATE ACCESS PATHS:", "sel="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestSpatialEstimatedVsActualSkew clusters every geometry inside a tiny
// window. The spatial cartridge estimates selectivity from query-area
// fraction of the domain (area-uniformity assumption), so a small window
// over the cluster estimates almost nothing yet matches everything.
func TestSpatialEstimatedVsActualSkew(t *testing.T) {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallSpatialCartridge(db, s); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TABLE sites(gid NUMBER, geometry SDO_GEOMETRY)`)
	// 150 points clustered in [0,32)², far below the 1024² domain.
	for i := 0; i < 150; i++ {
		x := float64(i%12) * 2.5
		y := float64(i/12) * 2.5
		if _, err := s.Exec(`INSERT INTO sites VALUES (?, ?)`,
			extdb.Int(int64(i)), extdb.SpatialPoint(x, y).ToValue()); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, s, `CREATE INDEX sites_s ON sites(geometry) INDEXTYPE IS SpatialIndexType`)

	win := extdb.SpatialRect(0, 0, 32, 32).ToValue()
	rs, tr, err := s.QueryTraced(
		`SELECT gid FROM sites WHERE Sdo_Relate(geometry, ?, 'mask=ANYINTERACT')`, win)
	if err != nil {
		t.Fatal(err)
	}
	actual := int64(len(rs.Rows))
	if actual != 150 {
		t.Fatalf("actual rows = %d, want 150", actual)
	}

	c, ok := tr.ChosenCandidate()
	if !ok || c.Kind != "DOMAIN" {
		t.Fatalf("chosen candidate = %+v (ok=%v), want DOMAIN", c, ok)
	}
	// Area-based selectivity: 32²/1024² ≈ 0.001 → estimate well under one
	// row, against 150 actual.
	if c.Selectivity <= 0 || c.Selectivity > 0.01 {
		t.Errorf("area selectivity = %v, want ~0.001", c.Selectivity)
	}
	if c.EstRows > float64(actual)/10 {
		t.Errorf("estimate not skewed: est=%.1f actual=%d", c.EstRows, actual)
	}
	scan := tr.Ops[0]
	if !strings.Contains(scan.Desc, "DOMAIN INDEX") || scan.Rows != actual {
		t.Errorf("domain scan node = %+v", scan)
	}

	out := explainAnalyze(t, s,
		`EXPLAIN ANALYZE SELECT gid FROM sites WHERE Sdo_Relate(geometry, ?, 'mask=ANYINTERACT')`, win)
	for _, want := range []string{"DOMAIN INDEX", "est=", "rows=150", "sel="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsThroughPublicAPI exercises DB.Metrics and the slow-query
// hook from outside the engine package.
func TestMetricsThroughPublicAPI(t *testing.T) {
	db, err := extdb.Open(extdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	if err := extdb.InstallTextCartridge(db, s); err != nil {
		t.Fatal(err)
	}
	var slow []*extdb.QueryTrace
	db.SetSlowQueryHook(0, func(tr *extdb.QueryTrace) { slow = append(slow, tr) })

	mustExec(t, s, `CREATE TABLE memos(body VARCHAR2)`)
	mustExec(t, s, `INSERT INTO memos VALUES ('observability memo')`)
	// Filler rows make the selective domain scan beat the full scan.
	for i := 0; i < 600; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO memos VALUES ('filler row %d')`, i))
	}
	mustExec(t, s, `CREATE INDEX memos_t ON memos(body) INDEXTYPE IS TextIndexType`)
	mustQuery(t, s, `SELECT COUNT(*) FROM memos WHERE Contains(body, 'memo')`)

	m := db.Metrics()
	if m.ODCI.Callbacks["ODCIIndexFetch"].Calls == 0 || m.Planner.Plans == 0 || m.Txn.Commits == 0 {
		t.Errorf("metrics incomplete: %+v", m)
	}
	if len(slow) == 0 {
		t.Fatal("slow-query hook never fired at threshold 0")
	}
	if !strings.Contains(m.String(), "odci callbacks:") {
		t.Errorf("Metrics.String():\n%s", m.String())
	}
}

func mustExec(t *testing.T, s *extdb.Session, stmt string, params ...extdb.Value) {
	t.Helper()
	if _, err := s.Exec(stmt, params...); err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
}

func mustQuery(t *testing.T, s *extdb.Session, stmt string, params ...extdb.Value) *extdb.ResultSet {
	t.Helper()
	rs, err := s.Query(stmt, params...)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return rs
}

func explainAnalyze(t *testing.T, s *extdb.Session, stmt string, params ...extdb.Value) string {
	t.Helper()
	rs, err := s.Query(stmt, params...)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	var b strings.Builder
	for _, r := range rs.Rows {
		b.WriteString(r[0].Text())
		b.WriteString("\n")
	}
	return b.String()
}
