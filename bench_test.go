package extdb

// The benchmark harness: one testing.B benchmark per experiment of
// EXPERIMENTS.md (E1–E10), each regenerating the corresponding
// table/claim of the paper's evaluation in quick mode. Run the full-size
// sweep with cmd/benchrunner.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/types"
)

func runExperiment(b *testing.B, f func(bench.Config) bench.Table) {
	b.Helper()
	cfg := bench.Config{Quick: true}
	var t bench.Table
	for i := 0; i < b.N; i++ {
		t = f(cfg)
	}
	b.StopTimer()
	if len(t.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	b.Log("\n" + t.Format())
}

func BenchmarkE1_IndexVsFunctional(b *testing.B) { runExperiment(b, bench.E1IndexVsFunctional) }

func BenchmarkE2_TextPre8iVs8i(b *testing.B) { runExperiment(b, bench.E2TextPre8iVs8i) }

func BenchmarkE3_SpatialTileJoinVsOperator(b *testing.B) {
	runExperiment(b, bench.E3SpatialTileJoinVsOperator)
}

func BenchmarkE4_VIRPhases(b *testing.B) { runExperiment(b, bench.E4VIRPhases) }

func BenchmarkE5_ChemFileVsLOB(b *testing.B) { runExperiment(b, bench.E5ChemFileVsLOB) }

func BenchmarkE6_OptimizerChoice(b *testing.B) { runExperiment(b, bench.E6OptimizerChoice) }

func BenchmarkE7_ScanContext(b *testing.B) { runExperiment(b, bench.E7ScanContext) }

func BenchmarkE8_BatchFetch(b *testing.B) { runExperiment(b, bench.E8BatchFetch) }

func BenchmarkE9_MaintenanceOverhead(b *testing.B) { runExperiment(b, bench.E9MaintenanceOverhead) }

func BenchmarkE10_CollectionIndex(b *testing.B) { runExperiment(b, bench.E10CollectionIndex) }

func BenchmarkA1_CallbacksVsDirect(b *testing.B) { runExperiment(b, bench.A1CallbacksVsDirect) }

func BenchmarkB1_BatchSweep(b *testing.B) { runExperiment(b, bench.BatchSweep) }

func BenchmarkP1_ParallelSweep(b *testing.B) { runExperiment(b, bench.ParallelSweep) }

func BenchmarkW1_WriterSweep(b *testing.B) { runExperiment(b, bench.WriterSweep) }

// parallelBenchDB builds the morsel-parallelism workload: a wide table
// whose page count gives the exchange real morsels to dispatch.
func parallelBenchDB(b *testing.B, nRows int) (*DB, *Session) {
	b.Helper()
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := db.NewSession()
	mustExec := func(q string, args ...types.Value) {
		if _, err := s.Exec(q, args...); err != nil {
			b.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE measures(id NUMBER, grp NUMBER, val NUMBER, pad VARCHAR2)`)
	pad := strings.Repeat("x", 120)
	mustExec(`BEGIN`)
	for i := 0; i < nRows; i++ {
		mustExec(`INSERT INTO measures VALUES (?, ?, ?, ?)`,
			types.Int(int64(i)), types.Int(int64(i%64)),
			types.Int(int64(i*2654435761%100000)), types.Str(pad))
	}
	mustExec(`COMMIT`)
	return db, s
}

// benchDegrees runs query at parallel degrees 1/2/4 as sub-benchmarks;
// speedups at degree d read directly off the ns/op ratios (and scale
// with available cores).
func benchDegrees(b *testing.B, query string) {
	nRows := 100000
	if testing.Short() {
		nRows = 20000
	}
	db, s := parallelBenchDB(b, nRows)
	defer db.Close()
	for _, d := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", d), func(b *testing.B) {
			s.SetParallel(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := s.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs.Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func BenchmarkParallelScan(b *testing.B) {
	benchDegrees(b, `SELECT id, val FROM measures WHERE val < 50000`)
}

func BenchmarkParallelAggregate(b *testing.B) {
	benchDegrees(b, `SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) FROM measures GROUP BY grp`)
}
