package extdb

// The benchmark harness: one testing.B benchmark per experiment of
// EXPERIMENTS.md (E1–E10), each regenerating the corresponding
// table/claim of the paper's evaluation in quick mode. Run the full-size
// sweep with cmd/benchrunner.

import (
	"testing"

	"repro/internal/bench"
)

func runExperiment(b *testing.B, f func(bench.Config) bench.Table) {
	b.Helper()
	cfg := bench.Config{Quick: true}
	var t bench.Table
	for i := 0; i < b.N; i++ {
		t = f(cfg)
	}
	b.StopTimer()
	if len(t.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	b.Log("\n" + t.Format())
}

func BenchmarkE1_IndexVsFunctional(b *testing.B) { runExperiment(b, bench.E1IndexVsFunctional) }

func BenchmarkE2_TextPre8iVs8i(b *testing.B) { runExperiment(b, bench.E2TextPre8iVs8i) }

func BenchmarkE3_SpatialTileJoinVsOperator(b *testing.B) {
	runExperiment(b, bench.E3SpatialTileJoinVsOperator)
}

func BenchmarkE4_VIRPhases(b *testing.B) { runExperiment(b, bench.E4VIRPhases) }

func BenchmarkE5_ChemFileVsLOB(b *testing.B) { runExperiment(b, bench.E5ChemFileVsLOB) }

func BenchmarkE6_OptimizerChoice(b *testing.B) { runExperiment(b, bench.E6OptimizerChoice) }

func BenchmarkE7_ScanContext(b *testing.B) { runExperiment(b, bench.E7ScanContext) }

func BenchmarkE8_BatchFetch(b *testing.B) { runExperiment(b, bench.E8BatchFetch) }

func BenchmarkE9_MaintenanceOverhead(b *testing.B) { runExperiment(b, bench.E9MaintenanceOverhead) }

func BenchmarkE10_CollectionIndex(b *testing.B) { runExperiment(b, bench.E10CollectionIndex) }

func BenchmarkA1_CallbacksVsDirect(b *testing.B) { runExperiment(b, bench.A1CallbacksVsDirect) }

func BenchmarkB1_BatchSweep(b *testing.B) { runExperiment(b, bench.BatchSweep) }
