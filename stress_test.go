package extdb_test

// Concurrent-writer stress: 64 goroutines race mixed DDL and DML over a
// WAL-governed database with two cartridges installed (text and colls),
// plain tables admitting shared (the group-commit fast path), domain-
// indexed tables admitting exclusive, throwaway DDL, and explicit
// transactions that interleave with autocommit writers far enough to
// trigger cross-transaction write conflicts. Run it under -race and
// under -tags invariants: the page-validation checks fire on every
// fetch/unpin and the pin-leak/ownership checks are asserted explicitly
// at the end (LeakCheck, Checkpoint, Close).

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	extdb "repro"
	"repro/internal/storage"
)

const (
	stressWriters    = 64
	stressIters      = 6
	stressPlainTabls = 8
)

// TestStressConcurrentWriters is the 64-writer mixed workload. Any error
// other than a write conflict (retryable by design) is fatal; after the
// storm the database must account for exactly the acknowledged rows,
// hold no leaked pins or orphan owners, keep heap/domain-index
// agreement, checkpoint cleanly, and reopen to the same state.
func TestStressConcurrentWriters(t *testing.T) {
	backend, sink := storage.NewMemBackend(), storage.NewMemWALSink()
	db, err := extdb.Open(extdb.Options{Backend: backend, WALSink: sink, CacheSizePages: 256})
	if err != nil {
		t.Fatal(err)
	}
	setup := db.NewSession()
	if err := extdb.InstallTextCartridge(db, setup); err != nil {
		t.Fatal(err)
	}
	if err := extdb.InstallCollsCartridge(db, setup); err != nil {
		t.Fatal(err)
	}
	mustExec := func(stmt string) {
		t.Helper()
		if _, err := setup.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	mustExec(`CREATE TABLE Docs(id NUMBER, body VARCHAR2)`)
	mustExec(`CREATE INDEX DocsIdx ON Docs(body) INDEXTYPE IS TextIndexType`)
	mustExec(`CREATE TABLE Bags(name VARCHAR2, tags VARRAY)`)
	mustExec(`CREATE INDEX BagsIdx ON Bags(tags) INDEXTYPE IS CollIndexType`)
	for p := 0; p < stressPlainTabls; p++ {
		mustExec(fmt.Sprintf(`CREATE TABLE P%d(id NUMBER, val VARCHAR2)`, p))
	}

	words := []string{"unix", "oracle", "btree", "spatial"}
	var nextID atomic.Int64
	plainRows := make([]atomic.Int64, stressPlainTabls) // net rows per P table
	var docRows, bagRows atomic.Int64
	var conflicts atomic.Int64

	// fatalErr collects the first non-conflict error; t.Fatalf must not be
	// called off the test goroutine.
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	conflictOK := func(err error) bool {
		if errors.Is(err, extdb.ErrWriteConflict) {
			conflicts.Add(1)
			return true
		}
		return false
	}

	var wg sync.WaitGroup
	for g := 0; g < stressWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < stressIters; i++ {
				p := g % stressPlainTabls
				switch (g + i) % 6 {
				case 0: // shared-admission autocommit insert
					id := nextID.Add(1)
					if _, err := s.Exec(fmt.Sprintf(`INSERT INTO P%d VALUES (%d, 'w%d')`, p, id, g)); err != nil {
						if !conflictOK(err) {
							fail(fmt.Errorf("insert P%d: %w", p, err))
							return
						}
					} else {
						plainRows[p].Add(1)
					}
				case 1: // explicit transaction, commit or roll back
					if err := s.Begin(); err != nil {
						fail(err)
						return
					}
					id1, id2 := nextID.Add(1), nextID.Add(1)
					q := (g + 1) % stressPlainTabls
					_, err1 := s.Exec(fmt.Sprintf(`INSERT INTO P%d VALUES (%d, 'tx%d')`, q, id1, g))
					var err2 error
					if err1 == nil {
						_, err2 = s.Exec(fmt.Sprintf(`INSERT INTO P%d VALUES (%d, 'tx%d')`, q, id2, g))
					}
					err := err1
					if err == nil {
						err = err2
					}
					if err != nil || g%2 == 1 {
						if err != nil && !conflictOK(err) {
							fail(fmt.Errorf("txn insert P%d: %w", q, err))
							return
						}
						if rbErr := s.Rollback(); rbErr != nil {
							fail(fmt.Errorf("rollback: %w", rbErr))
							return
						}
					} else {
						if cErr := s.Commit(); cErr != nil {
							if !conflictOK(cErr) {
								fail(fmt.Errorf("commit: %w", cErr))
								return
							}
						} else {
							plainRows[q].Add(2)
						}
					}
				case 2: // exclusive admission: text domain-index maintenance
					id := nextID.Add(1)
					body := words[g%len(words)] + " " + words[i%len(words)]
					if _, err := s.Exec(fmt.Sprintf(`INSERT INTO Docs VALUES (%d, '%s')`, id, body)); err != nil {
						fail(fmt.Errorf("insert Docs: %w", err))
						return
					}
					docRows.Add(1)
				case 3: // exclusive admission: colls domain-index maintenance
					id := nextID.Add(1)
					name := fmt.Sprintf("bag%d", id)
					tags := []extdb.Value{extdb.Str(words[g%len(words)]), extdb.Str(words[(g+i)%len(words)])}
					if err := s.InsertRow("Bags", []extdb.Value{extdb.Str(name), extdb.Arr(tags...)}); err != nil {
						fail(fmt.Errorf("insert Bags: %w", err))
						return
					}
					bagRows.Add(1)
				case 4: // throwaway DDL (exclusive admission, forced-durable commits)
					tmp := fmt.Sprintf("Tmp%d_%d", g, i)
					if _, err := s.Exec(fmt.Sprintf(`CREATE TABLE %s(id NUMBER)`, tmp)); err != nil {
						fail(fmt.Errorf("create %s: %w", tmp, err))
						return
					}
					if _, err := s.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (1)`, tmp)); err != nil && !conflictOK(err) {
						fail(fmt.Errorf("insert %s: %w", tmp, err))
						return
					}
					if _, err := s.Exec(fmt.Sprintf(`DROP TABLE %s`, tmp)); err != nil {
						fail(fmt.Errorf("drop %s: %w", tmp, err))
						return
					}
				case 5: // update own plain table (may conflict with in-flight txns)
					if _, err := s.Exec(fmt.Sprintf(`UPDATE P%d SET val = 'u%d' WHERE id >= 0`, p, g)); err != nil {
						if !conflictOK(err) {
							fail(fmt.Errorf("update P%d: %w", p, err))
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	// Accounting: every table holds exactly its acknowledged net rows.
	verify := func(s *extdb.Session, label string) {
		t.Helper()
		for p := 0; p < stressPlainTabls; p++ {
			rs, err := s.Query(fmt.Sprintf(`SELECT id FROM P%d`, p))
			if err != nil {
				t.Fatalf("%s: scan P%d: %v", label, p, err)
			}
			if int64(len(rs.Rows)) != plainRows[p].Load() {
				t.Fatalf("%s: P%d has %d rows, want %d acknowledged",
					label, p, len(rs.Rows), plainRows[p].Load())
			}
		}
		rs, err := s.Query(`SELECT id FROM Docs`)
		if err != nil || int64(len(rs.Rows)) != docRows.Load() {
			t.Fatalf("%s: Docs rows=%d err=%v, want %d", label, len(rs.Rows), err, docRows.Load())
		}
		rs, err = s.Query(`SELECT name FROM Bags`)
		if err != nil || int64(len(rs.Rows)) != bagRows.Load() {
			t.Fatalf("%s: Bags rows=%d err=%v, want %d", label, len(rs.Rows), err, bagRows.Load())
		}
		// Heap/domain-index agreement on both cartridges.
		for _, word := range words {
			full := queryDocIDs(t, s, extdb.ForceFullScan, word, label)
			dom := queryDocIDs(t, s, extdb.ForceDomainScan, word, label)
			if !reflect.DeepEqual(full, dom) {
				t.Fatalf("%s: Contains(%q): full %v != domain %v", label, word, full, dom)
			}
			fullB := queryBagNames(t, s, extdb.ForceFullScan, word, label)
			domB := queryBagNames(t, s, extdb.ForceDomainScan, word, label)
			if !reflect.DeepEqual(fullB, domB) {
				t.Fatalf("%s: CollContains(%q): full %v != domain %v", label, word, fullB, domB)
			}
		}
	}
	verify(setup, "post-storm")

	// Invariants at rest: no leaked pins, no orphan frame owners, and the
	// fsyncs were genuinely shared across the writer population.
	if err := db.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Pager.WALGroupedCommits == 0 || m.CommitGroups.Count == 0 {
		t.Fatalf("group-commit counters dead after %d writers: %+v", stressWriters, m.Pager)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after storm: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close after storm: %v", err)
	}

	// Reopen on the same media: the durable image must agree.
	db2, s2 := reopenDurable(t, crashMedia{backend: backend, sink: sink}, "stress-reopen")
	defer func() {
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	verify(s2, "reopened")
	t.Logf("stress: %d writers, %d conflicts, %.2f commits/fsync",
		stressWriters, conflicts.Load(),
		float64(m.Pager.WALGroupedCommits)/float64(max64(1, m.Pager.WALSyncs)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
