// Package extdb is an embedded relational database for Go whose defining
// feature is extensible indexing: the framework of the ICDE 2000 paper
// "Extensible Indexing: A Framework for Integrating Domain-Specific
// Indexing Schemes into Oracle8i", reproduced in full.
//
// Users register domain-specific operators and indexing schemes
// ("indextypes") whose implementation is a set of ODCIIndex-style
// callback routines, then use plain SQL:
//
//	db, _ := extdb.Open(extdb.Options{})
//	defer db.Close()
//	s := db.NewSession()
//	extdb.InstallTextCartridge(db, s)
//
//	s.Exec(`CREATE TABLE Employees(name VARCHAR2, id NUMBER, resume VARCHAR2)`)
//	s.Exec(`CREATE INDEX ResumeTextIndex ON Employees(resume)
//	        INDEXTYPE IS TextIndexType PARAMETERS (':Language English :Ignore the a an')`)
//	rs, _ := s.Query(`SELECT name FROM Employees WHERE Contains(resume, 'Oracle AND UNIX')`)
//
// The engine invokes the registered index routines implicitly: index DDL
// calls the definition routines, DML maintains every domain index on the
// table, and the cost-based optimizer — consulting user-supplied
// selectivity and cost callbacks — may evaluate operator predicates with
// a pipelined domain index scan instead of the operator's functional
// implementation.
//
// Four complete data cartridges ship with the library, mirroring the
// paper's case studies: full-text search (Contains/Score), spatial
// (Sdo_Relate/Sdo_Filter over a tile index or an external R-tree),
// content-based image retrieval (VIRSimilar, three-phase evaluation),
// and chemistry (substructure/similarity/tautomer search over LOB- or
// file-resident fingerprint indexes).
package extdb

import (
	"repro/internal/engine"
	"repro/internal/extidx"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/types"
)

// Options configures Open.
type Options = engine.Options

// DB is a database instance. See engine.DB for the full method set.
type DB = engine.DB

// Session is a client session; it executes SQL and carries transaction
// state. Sessions are not safe for concurrent use; open one per
// goroutine.
type Session = engine.Session

// Result is the outcome of a non-query statement.
type Result = engine.Result

// ResultSet is a materialized query result.
type ResultSet = engine.ResultSet

// Value is a SQL value (NULL, NUMBER, VARCHAR2, BOOLEAN, LOB locator,
// OBJECT, VARRAY).
type Value = types.Value

// Open creates or opens a database. An empty Path means in-memory.
func Open(opts Options) (*DB, error) { return engine.Open(opts) }

// ErrWALBroken is returned by commits after a write-ahead-log write has
// failed; the database refuses further commits (the log tail is suspect)
// until it is reopened, which recovers from the durable log prefix.
var ErrWALBroken = engine.ErrWALBroken

// ErrTxnOpen is returned by Checkpoint (and Close) while a write
// transaction is open: flushing uncommitted pages would durably commit
// them with no undo, so the checkpoint is refused.
var ErrTxnOpen = engine.ErrTxnOpen

// ErrWriteConflict is returned (wrapped) by a statement that dirtied a
// page frame another uncommitted transaction already modified. The
// statement has rolled back; the transaction remains usable and the
// statement can be retried after the other transaction finishes.
var ErrWriteConflict = storage.ErrWriteConflict

// Forced access paths for Session.SetForcedPath (optimizer hints).
const (
	ForceAuto       = engine.ForceAuto
	ForceFullScan   = engine.ForceFullScan
	ForceDomainScan = engine.ForceDomainScan
	ForceIndexScan  = engine.ForceIndexScan
)

// Value constructors.
var (
	// Null returns SQL NULL.
	Null = types.Null
	// Num returns a NUMBER value.
	Num = types.Num
	// Int returns an integral NUMBER value.
	Int = types.Int
	// Str returns a VARCHAR2 value.
	Str = types.Str
	// Bool returns a BOOLEAN value.
	Bool = types.Bool
	// Obj returns an OBJECT value.
	Obj = types.Obj
	// Arr returns a VARRAY value.
	Arr = types.Arr
)

// Extensible indexing framework types, for implementing new indextypes.
// An indextype author implements IndexMethods (and optionally
// StatsMethods), registers it with db.Registry(), and issues CREATE
// OPERATOR / CREATE INDEXTYPE DDL.
type (
	// IndexMethods is the ODCIIndex interface: index definition,
	// maintenance and scan routines.
	IndexMethods = extidx.IndexMethods
	// StatsMethods is the ODCIStats interface: optimizer selectivity and
	// cost callbacks.
	StatsMethods = extidx.StatsMethods
	// IndexInfo is the metadata handed to every index routine.
	IndexInfo = extidx.IndexInfo
	// OperatorCall describes the operator predicate a scan evaluates.
	OperatorCall = extidx.OperatorCall
	// Server is the restricted callback session index routines use to
	// store index data inside the database.
	Server = extidx.Server
	// ScanState is the scan context threaded through Start/Fetch/Close.
	ScanState = extidx.ScanState
	// StateValue is the pass-by-value scan context transport.
	StateValue = extidx.StateValue
	// StateHandle is the workspace-handle scan context transport.
	StateHandle = extidx.StateHandle
	// FetchResult is a batch of row identifiers from ODCIIndexFetch.
	FetchResult = extidx.FetchResult
	// Cost is an optimizer cost estimate.
	Cost = extidx.Cost
	// Function is a registered SQL-callable function.
	Function = extidx.Function
)

// PagerStats are buffer-pool I/O counters (logical and physical page
// traffic, plus WAL activity), exposed for instrumentation.
type PagerStats = storage.Stats

// Observability types (see DB.Metrics, DB.SetSlowQueryHook and
// Session.QueryTraced; EXPLAIN ANALYZE renders a QueryTrace as SQL
// output).
type (
	// Metrics is a full engine observability snapshot: pager/WAL, txn,
	// planner, ODCI-callback and engine counters in one inert struct.
	Metrics = engine.Metrics
	// QueryTrace is the per-query trace behind EXPLAIN ANALYZE and the
	// slow-query hook: candidate access paths with estimated cost and
	// selectivity, per-operator estimated vs actual rows and time, and
	// the query's pager/WAL footprint.
	QueryTrace = obs.QueryTrace
	// PlanCandidate is one costed access path inside a QueryTrace.
	PlanCandidate = obs.PlanCandidate
	// OpNode is one instrumented operator inside a QueryTrace.
	OpNode = obs.OpNode
	// WaitSnapshot is the wait-event table inside a Metrics snapshot:
	// per-class blocked-time counts, totals and maxima (see \waits in
	// cmd/extsql).
	WaitSnapshot = obs.WaitSnapshot
	// WaitCounts is one wait class's slice of a WaitSnapshot.
	WaitCounts = obs.WaitCounts
	// FlightRecorder is the always-on ring of recent engine events; read
	// it via DB.FlightRecorder.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one recorded engine event (commit, group fsync,
	// checkpoint, write-conflict abort, slow wait, DDL).
	FlightEvent = obs.FlightEvent
)
