package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/types"
)

// Serial-vs-parallel parity property. A random operator script is split
// at the exchange boundary: data-parallel operators (Filter, Project,
// optionally a Partial aggregate) run inside the worker pipelines over
// row morsels, everything else (Sort, Distinct, Join, the FromPartial
// merge) stays in the serial gather above the Exchange. The parallel
// plan at degrees 1, 2, and 8 must produce the same multiset of encoded
// rows as the plain serial plan over the whole base — row order across
// morsels is nondeterministic by design, so outputs are compared
// sorted. Limit is excluded: which rows survive a limit under a
// nondeterministic order is not a property either side can promise.

// splitMorsels chunks base into row slices of at most m rows — the
// test's stand-in for heap page ranges / index scan partitions.
func splitMorsels(base []Row, m int) [][]Row {
	if m < 1 {
		m = 1
	}
	var out [][]Row
	for len(base) > m {
		out = append(out, base[:m])
		base = base[m:]
	}
	if len(base) > 0 {
		out = append(out, base)
	}
	return out
}

// parityAggSpecs mirrors the scripted 'A' operator: COUNT(*) plus
// SUM(last column), grouped by column 0.
func parityAggSpecs() []AggSpec {
	return []AggSpec{
		{Kind: AggCountStar},
		{Kind: AggSum, Arg: func(r Row) (types.Value, error) { return r[len(r)-1], nil }},
	}
}

func parityGroupBy() []Compiled {
	return []Compiled{func(r Row) (types.Value, error) { return r[0], nil }}
}

// buildParallelPlan assembles: morsel pipelines (worker ops + optional
// partial aggregate) behind an Exchange, then the optional FromPartial
// merge and the above ops as the serial gather.
func buildParallelPlan(worker []planOp, pushAgg bool, above []planOp, base []Row, morsel, degree, batch int, stats *obs.ExecStats) Iterator {
	morsels := splitMorsels(base, morsel)
	src := NewMorselQueue(len(morsels), func(i int) (Iterator, error) {
		it := stackPlanOps(worker, &Slice{Rows: morsels[i]})
		if pushAgg {
			it = &HashAggregate{Child: it, GroupBy: parityGroupBy(), Specs: parityAggSpecs(), Partial: true}
		}
		return it, nil
	})
	var it Iterator = &Exchange{Source: src, Workers: degree, BatchSize: batch, Stats: stats}
	if pushAgg {
		it = &HashAggregate{Child: it, GroupBy: identityCol0(), Specs: parityAggSpecs(), FromPartial: true}
	}
	return stackPlanOps(above, it)
}

// identityCol0 projects the group-key column of a partial-state row —
// the FromPartial GroupBy contract.
func identityCol0() []Compiled {
	return []Compiled{func(r Row) (types.Value, error) { return r[0], nil }}
}

func sortedEncoded(rows []Row) []string {
	enc := encodeRows(rows)
	sort.Strings(enc)
	return enc
}

func parallelScript(worker []planOp, pushAgg bool, above []planOp) string {
	s := planScript(worker)
	if pushAgg {
		s += " |A|"
	} else {
		s += " ||"
	}
	return strings.TrimSpace(s + " " + planScript(above))
}

func checkParallelParity(t *testing.T, worker []planOp, pushAgg bool, above []planOp, base []Row, morsel int) bool {
	t.Helper()
	serialOps := append([]planOp{}, worker...)
	if pushAgg {
		serialOps = append(serialOps, planOp{kind: 'A'})
	}
	serialOps = append(serialOps, above...)
	want := sortedEncoded(modelApply(serialOps, base))
	script := parallelScript(worker, pushAgg, above)
	for _, degree := range []int{1, 2, 8} {
		for _, batch := range []int{1, DefaultChunkSize} {
			var stats obs.ExecStats
			it := buildParallelPlan(worker, pushAgg, above, base, morsel, degree, batch, &stats)
			rows, err := drainWith(it, batch)
			if err != nil {
				t.Errorf("script %q degree %d batch %d: %v", script, degree, batch, err)
				return false
			}
			got := sortedEncoded(rows)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("script %q degree %d batch %d: parallel %d rows != serial %d rows",
					script, degree, batch, len(got), len(want))
				return false
			}
			snap := stats.Snapshot()
			if wantMorsels := int64(len(splitMorsels(base, morsel))); snap.MorselsDispatched != wantMorsels {
				t.Errorf("script %q degree %d: %d morsels dispatched, want %d",
					script, degree, snap.MorselsDispatched, wantMorsels)
				return false
			}
		}
	}
	return true
}

// genWorkerOps draws the data-parallel prefix that runs inside morsel
// pipelines: filters and projections only.
func genWorkerOps(rng *rand.Rand) []planOp {
	kinds := []byte{'F', 'P'}
	n := rng.Intn(4)
	ops := make([]planOp, 0, n)
	for i := 0; i < n; i++ {
		op := planOp{kind: kinds[rng.Intn(len(kinds))]}
		if op.kind == 'F' {
			op.n = 1 + rng.Intn(4)
		}
		ops = append(ops, op)
	}
	return ops
}

// genAboveOps draws the serial gather above the exchange. Limit is
// excluded (order-dependent row selection); everything else is
// deterministic at the multiset level.
func genAboveOps(rng *rand.Rand) []planOp {
	kinds := []byte{'F', 'P', 'S', 'D', 'J', 'A'}
	n := rng.Intn(3)
	ops := make([]planOp, 0, n)
	for i := 0; i < n; i++ {
		op := planOp{kind: kinds[rng.Intn(len(kinds))]}
		switch op.kind {
		case 'F':
			op.n = 1 + rng.Intn(4)
		case 'S':
			op.n = rng.Intn(2)
		}
		ops = append(ops, op)
	}
	return ops
}

func TestParallelPlanProperty(t *testing.T) {
	iters := 80
	if testing.Short() {
		iters = 20
	}
	for seed := int64(1); seed <= int64(iters); seed++ {
		rng := rand.New(rand.NewSource(seed))
		worker := genWorkerOps(rng)
		pushAgg := rng.Intn(2) == 0
		above := genAboveOps(rng)
		base := genBaseRows(rng)
		morsel := 1 + rng.Intn(7)
		if !checkParallelParity(t, worker, pushAgg, above, base, morsel) {
			t.Fatalf("replay with: seed %d, script %q, morsel %d (%d base rows)",
				seed, parallelScript(worker, pushAgg, above), morsel, len(base))
		}
	}
}

// TestParallelPlanReplay pins the boundary shapes: empty base, a filter
// rejecting everything inside the workers, partial aggregation with and
// without downstream operators, and single-row morsels (maximal
// handoff traffic).
func TestParallelPlanReplay(t *testing.T) {
	base := []Row{
		{types.Int(0), types.Int(3)},
		{types.Int(1), types.Int(1)},
		{types.Int(2), types.Null()},
		{types.Int(0), types.Int(3)},
		{types.Int(4), types.Int(9)},
		{types.Int(1), types.Int(7)},
		{types.Int(3), types.Int(2)},
		{types.Int(2), types.Int(5)},
	}
	cases := []struct {
		worker  string
		pushAgg bool
		above   string
		base    []Row
		morsel  int
	}{
		{"", false, "", base, 1},
		{"F2 P", false, "S1 D", base, 2},
		{"F4 F3", false, "A", base, 1}, // workers emit almost nothing
		{"P", true, "S0", base, 3},     // partial agg over projected rows
		{"", true, "", base, 1},        // pure partitioned aggregate
		{"F2", true, "J", base, 2},
		{"", false, "", nil, 4}, // empty relation: zero morsels
		{"", true, "", nil, 4},  // empty relation, aggregate shape
	}
	for _, tc := range cases {
		checkParallelParity(t, parsePlanScript(t, tc.worker), tc.pushAgg,
			parsePlanScript(t, tc.above), tc.base, tc.morsel)
	}
}

// ---------------------------------------------------------------------------
// Exchange unit tests: error propagation, cancellation, cleanup.

// closeTrack wraps an iterator and counts Close calls.
type closeTrack struct {
	Iterator
	closes atomic.Int32
}

func (c *closeTrack) Close() error {
	c.closes.Add(1)
	return c.Iterator.Close()
}

// errAfter yields its rows one per batch, then fails.
type errAfter struct {
	rows []Row
	err  error
}

func (e *errAfter) NextBatch(c *Chunk) error {
	c.Reset()
	if len(e.rows) == 0 {
		return e.err
	}
	c.Rows = append(c.Rows, e.rows[0])
	e.rows = e.rows[1:]
	return nil
}

func (e *errAfter) Close() error { return nil }

func TestExchangeErrorPropagation(t *testing.T) {
	wantErr := errors.New("morsel exploded")
	src := NewMorselQueue(4, func(i int) (Iterator, error) {
		if i == 1 {
			return &errAfter{rows: []Row{{types.Int(int64(i))}}, err: wantErr}, nil
		}
		return &Slice{Rows: []Row{{types.Int(int64(i))}}}, nil
	})
	ex := &Exchange{Source: src, Workers: 2}
	c := NewChunk(4)
	var got error
	for {
		if err := ex.NextBatch(c); err != nil {
			got = err
			break
		}
		if c.Len() == 0 {
			break
		}
	}
	if !errors.Is(got, wantErr) {
		t.Fatalf("NextBatch error = %v, want %v", got, wantErr)
	}
	// Sticky: the same error on every subsequent call.
	if err := ex.NextBatch(c); !errors.Is(err, wantErr) {
		t.Fatalf("second NextBatch error = %v, want sticky %v", err, wantErr)
	}
	// Already surfaced to the consumer: Close does not re-report it.
	if err := ex.Close(); err != nil {
		t.Fatalf("Close after surfaced error = %v, want nil", err)
	}
}

func TestExchangeSourceError(t *testing.T) {
	wantErr := errors.New("source broke")
	var calls atomic.Int32
	src := func() (Iterator, error) {
		if calls.Add(1) == 1 {
			return nil, wantErr
		}
		return nil, nil
	}
	ex := &Exchange{Source: src, Workers: 2}
	c := NewChunk(4)
	var got error
	for {
		if err := ex.NextBatch(c); err != nil {
			got = err
			break
		}
		if c.Len() == 0 {
			break
		}
	}
	if !errors.Is(got, wantErr) {
		t.Fatalf("NextBatch error = %v, want %v", got, wantErr)
	}
	ex.Close()
}

// TestExchangeUnconsumedError: a worker error the consumer never
// observed (Close before draining) must surface from Close.
func TestExchangeUnconsumedError(t *testing.T) {
	wantErr := errors.New("late failure")
	big := make([]Row, 4*DefaultChunkSize)
	for i := range big {
		big[i] = Row{types.Int(int64(i))}
	}
	src := NewMorselQueue(2, func(i int) (Iterator, error) {
		if i == 0 {
			return &Slice{Rows: big}, nil
		}
		return &errAfter{err: wantErr}, nil
	})
	ex := &Exchange{Source: src, Workers: 2}
	c := NewChunk(DefaultChunkSize)
	if err := ex.NextBatch(c); err != nil && !errors.Is(err, wantErr) {
		t.Fatalf("first NextBatch: %v", err)
	}
	err := ex.Close()
	if ex.sticky == nil && !errors.Is(err, wantErr) {
		t.Fatalf("Close error = %v, want %v (error was never surfaced)", err, wantErr)
	}
}

func TestExchangeEarlyCloseReleasesMorsels(t *testing.T) {
	const n = 8
	big := make([]Row, 4*DefaultChunkSize)
	for i := range big {
		big[i] = Row{types.Int(int64(i))}
	}
	its := make([]Iterator, n)
	tracks := make([]*closeTrack, n)
	for i := range its {
		tracks[i] = &closeTrack{Iterator: &Slice{Rows: big}}
		its[i] = tracks[i]
	}
	src, cleanup := NewIteratorQueue(its)
	ex := &Exchange{Source: src, Workers: 3, OnClose: cleanup}
	c := NewChunk(DefaultChunkSize)
	if err := ex.NextBatch(c); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tr := range tracks {
		if tr.closes.Load() == 0 {
			t.Errorf("morsel %d never closed (pulled-or-cleanup invariant broken)", i)
		}
	}
	// Close is idempotent and must not re-run OnClose.
	before := tracks[0].closes.Load()
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if tracks[0].closes.Load() != before {
		t.Error("second Close re-closed morsels")
	}
}

// TestExchangeNeverStarted: a built-but-never-executed exchange (the
// EXPLAIN path) must still release pre-opened morsels through OnClose.
func TestExchangeNeverStarted(t *testing.T) {
	its := make([]Iterator, 3)
	tracks := make([]*closeTrack, 3)
	for i := range its {
		tracks[i] = &closeTrack{Iterator: &Slice{}}
		its[i] = tracks[i]
	}
	src, cleanup := NewIteratorQueue(its)
	ex := &Exchange{Source: src, Workers: 2, OnClose: cleanup}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tr := range tracks {
		if tr.closes.Load() != 1 {
			t.Errorf("morsel %d closed %d times, want 1", i, tr.closes.Load())
		}
	}
}

func TestExchangeWorkerNodeMerge(t *testing.T) {
	base := make([]Row, 100)
	for i := range base {
		base[i] = Row{types.Int(int64(i))}
	}
	node := &obs.OpNode{Desc: "SCAN"}
	src := NewMorselQueue(5, func(i int) (Iterator, error) {
		return &Slice{Rows: base[i*20 : (i+1)*20]}, nil
	})
	ex := &Exchange{Source: src, Workers: 4, Node: node}
	rows, err := Drain(ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("drained %d rows, want 100", len(rows))
	}
	if node.Parallel != 4 || len(node.Workers) != 4 {
		t.Fatalf("node parallel=%d workers=%d, want 4/4", node.Parallel, len(node.Workers))
	}
	var workerRows, morsels int64
	for _, w := range node.Workers {
		workerRows += w.Rows
		morsels += w.Morsels
	}
	if workerRows != 100 {
		t.Errorf("worker rows sum to %d, want 100", workerRows)
	}
	if morsels != 5 {
		t.Errorf("worker morsels sum to %d, want 5", morsels)
	}
}

func TestPageRanges(t *testing.T) {
	pages := make([]storage.PageID, 10)
	for i := range pages {
		pages[i] = storage.PageID(i + 1)
	}
	for _, per := range []int{-1, 0, 1, 3, 10, 99} {
		ranges := PageRanges(pages, per)
		eff := per
		if eff < 1 {
			eff = 1
		}
		var flat []storage.PageID
		for _, r := range ranges {
			if len(r) == 0 || len(r) > eff {
				t.Fatalf("per=%d: range size %d outside (0,%d]", per, len(r), eff)
			}
			flat = append(flat, r...)
		}
		if fmt.Sprint(flat) != fmt.Sprint(pages) {
			t.Fatalf("per=%d: ranges do not reassemble the page list: %v", per, flat)
		}
	}
	if got := PageRanges(nil, 4); len(got) != 0 {
		t.Fatalf("empty page list produced %d ranges", len(got))
	}
}
