package exec

import (
	"time"

	"repro/internal/obs"
)

// Instrument wraps an iterator and accumulates actual row/batch counts
// and wall time into an obs.OpNode for EXPLAIN ANALYZE. Time is measured
// around NextBatch, so it is inclusive of the operator's children (the
// pull model drives the whole subtree from the root), and the bookkeeping
// is paid once per chunk rather than once per row. The wrapper is used
// only when a query trace is active, so the untraced path pays nothing.
type Instrument struct {
	Child Iterator
	Node  *obs.OpNode
}

// NextBatch pulls one chunk from the child, timing the call and counting
// rows and non-empty batches.
func (it *Instrument) NextBatch(c *Chunk) error {
	start := time.Now()
	err := it.Child.NextBatch(c)
	it.Node.Nanos += time.Since(start).Nanoseconds()
	if err == nil {
		it.Node.Rows += int64(c.Len())
		if c.Len() > 0 {
			it.Node.Batches++
		}
	}
	return err
}

// Close closes the child.
func (it *Instrument) Close() error { return it.Child.Close() }
