package exec

import (
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// Instrument wraps an iterator and accumulates actual row count and
// wall time into an obs.OpNode for EXPLAIN ANALYZE. Time is measured
// around Next, so it is inclusive of the operator's children (the pull
// model drives the whole subtree from the root's Next). The wrapper is
// used only when a query trace is active, so the untraced path pays
// nothing.
type Instrument struct {
	Child Iterator
	Node  *obs.OpNode
}

// Next pulls one row from the child, timing the call and counting rows.
func (it *Instrument) Next() ([]types.Value, error) {
	start := time.Now()
	row, err := it.Child.Next()
	it.Node.Nanos += time.Since(start).Nanoseconds()
	if row != nil && err == nil {
		it.Node.Rows++
	}
	return row, err
}

// Close closes the child.
func (it *Instrument) Close() error { return it.Child.Close() }
