package exec

import "repro/internal/types"

// DefaultChunkSize is the row capacity operators aim for when the caller
// does not request a specific batch size.
const DefaultChunkSize = 256

// Chunk is the unit of data flow between operators: a bounded run of rows
// plus, when the producer is a scan, the parallel RIDs and per-row
// ancillary values of those rows. One ODCI Fetch batch becomes one chunk,
// so the cartridge's batch contract survives all the way up the plan tree
// instead of being re-serialized into per-row pulls.
//
// Protocol: a consumer calls NextBatch(c); the producer Resets c and
// appends rows. A chunk left empty after NextBatch returns means end of
// stream — producers must therefore loop internally over empty
// mid-stream batches (an index scan may legitimately return zero RIDs
// without being done). Chunks are never reused to alias row storage:
// rows appended to a chunk remain valid after subsequent NextBatch calls.
//
// Ancillary values ride from the scan through row-preserving operators
// (Filter, Limit, the outer side of a join) to the first
// expression-evaluating consumer, which must call PublishRow(i) before
// evaluating expressions over Rows[i] so ancillary operators (Score)
// observe the value belonging to that row.
type Chunk struct {
	Rows []Row
	// RIDs, when non-empty, parallels Rows with the packed RID each row
	// came from. Operators that reshape rows (Project, Sort, aggregates,
	// joins) drop it.
	RIDs []int64
	// Anc, when non-empty, parallels Rows with the ancillary value the
	// scan attached to each row, tagged by Label for Sink.
	Anc   []types.Value
	Label int64
	Sink  AncillarySink

	max int
}

// NewChunk returns an empty chunk with the given target capacity
// (<= 0 selects DefaultChunkSize).
func NewChunk(max int) *Chunk {
	if max <= 0 {
		max = DefaultChunkSize
	}
	return &Chunk{max: max}
}

// Max is the number of rows the producer should aim for per batch.
func (c *Chunk) Max() int {
	if c.max <= 0 {
		return DefaultChunkSize
	}
	return c.max
}

// Len is the number of rows currently in the chunk.
func (c *Chunk) Len() int { return len(c.Rows) }

// Full reports whether the chunk reached its target capacity.
func (c *Chunk) Full() bool { return len(c.Rows) >= c.Max() }

// Reset empties the chunk (keeping backing arrays) so a producer can
// refill it.
func (c *Chunk) Reset() {
	c.Rows = c.Rows[:0]
	c.RIDs = c.RIDs[:0]
	c.Anc = c.Anc[:0]
	c.Label = 0
	c.Sink = nil
}

// Append adds a plain row with no RID or ancillary value.
func (c *Chunk) Append(r Row) { c.Rows = append(c.Rows, r) }

// Truncate drops rows beyond n, keeping parallel slices in sync.
func (c *Chunk) Truncate(n int) {
	if n >= len(c.Rows) {
		return
	}
	c.Rows = c.Rows[:n]
	if len(c.RIDs) > n {
		c.RIDs = c.RIDs[:n]
	}
	if len(c.Anc) > n {
		c.Anc = c.Anc[:n]
	}
}

// CopyRowFrom appends row i of src, carrying its RID and ancillary value
// (and src's label/sink wiring) when present. Row-preserving operators
// use it so ancillary data survives them.
func (c *Chunk) CopyRowFrom(src *Chunk, i int) {
	c.Rows = append(c.Rows, src.Rows[i])
	if i < len(src.RIDs) {
		c.RIDs = append(c.RIDs, src.RIDs[i])
	}
	if i < len(src.Anc) {
		c.Anc = append(c.Anc, src.Anc[i])
		c.Label, c.Sink = src.Label, src.Sink
	}
}

// PublishRow pushes row i's ancillary value to the sink under the chunk's
// label. Expression-evaluating consumers call it before evaluating
// anything over Rows[i]; it is a no-op for chunks without ancillary data.
func (c *Chunk) PublishRow(i int) {
	if c.Sink == nil || c.Label == 0 || i >= len(c.Anc) {
		return
	}
	c.Sink.SetAncillary(c.Label, c.Anc[i])
}

// ---------------------------------------------------------------------------
// Row adapter

// RowAdapter exposes a batch iterator one row at a time for call sites
// that genuinely need single rows (result cursors in row mode, tests).
// It buffers one chunk and publishes each row's ancillary value as the
// row is handed out, which restores the volcano-era ordering guarantee:
// by the time a caller evaluates expressions over the returned row, the
// sink holds that row's ancillary value.
type RowAdapter struct {
	Child Iterator
	// BatchSize is the chunk size pulled from the child (<= 0 selects
	// DefaultChunkSize).
	BatchSize int

	buf  *Chunk
	pos  int
	done bool
}

// Next returns the next row, or (nil, nil) at end of stream.
func (a *RowAdapter) Next() (Row, error) {
	for {
		if a.buf != nil && a.pos < a.buf.Len() {
			a.buf.PublishRow(a.pos)
			r := a.buf.Rows[a.pos]
			a.pos++
			return r, nil
		}
		if a.done {
			return nil, nil
		}
		if a.buf == nil {
			a.buf = NewChunk(a.BatchSize)
		}
		if err := a.Child.NextBatch(a.buf); err != nil {
			return nil, err
		}
		a.pos = 0
		if a.buf.Len() == 0 {
			a.done = true
			return nil, nil
		}
	}
}

// NextBatch delegates to the child, so a RowAdapter still satisfies the
// batch Iterator contract (do not interleave it with Next on the same
// adapter: rows buffered for Next would be skipped).
func (a *RowAdapter) NextBatch(c *Chunk) error { return a.Child.NextBatch(c) }

// Close closes the underlying iterator.
func (a *RowAdapter) Close() error { return a.Child.Close() }

// Drain pulls every row out of a batch iterator chunk-wise and closes it.
func Drain(it Iterator) ([]Row, error) {
	defer it.Close()
	c := NewChunk(0)
	var out []Row
	for {
		if err := it.NextBatch(c); err != nil {
			return nil, err
		}
		if c.Len() == 0 {
			return out, nil
		}
		out = append(out, c.Rows...)
	}
}

// DrainRows pulls every row through a RowAdapter — the row-at-a-time
// path — and closes the iterator. Parity tests compare it against Drain.
func DrainRows(it Iterator) ([]Row, error) {
	a := &RowAdapter{Child: it}
	defer a.Close()
	var out []Row
	for {
		r, err := a.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}
