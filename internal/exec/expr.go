package exec

import (
	"fmt"

	"repro/internal/sql"
	"repro/internal/types"
)

// Env supplies the executor with everything expression evaluation needs
// beyond the row itself: registered functions, user-operator functional
// implementations, and ancillary data produced by a domain index scan in
// the same statement (the Score/Contains label mechanism).
type Env interface {
	// CallFunction invokes a registered function; found=false if the name
	// is not a function.
	CallFunction(name string, args []types.Value) (v types.Value, found bool, err error)
	// CallOperator invokes the functional implementation of a user-defined
	// operator; found=false if the name is not an operator.
	CallOperator(name string, args []types.Value) (v types.Value, found bool, err error)
	// AncillaryValue returns the ancillary value tagged with label for the
	// current row, when a domain scan produced one.
	AncillaryValue(label int64) (types.Value, bool)
	// IsAncillaryOp reports whether name is an ancillary operator (like
	// Score) and returns its primary operator.
	IsAncillaryOp(name string) (primary string, ok bool)
}

// Compiled is a compiled expression: evaluate against a row.
type Compiled func(row Row) (types.Value, error)

// Truthy converts a SQL value to a predicate outcome. Booleans are taken
// directly; numbers follow the paper's convention that operator predicates
// are written Contains(...) = 1, so non-zero is true. NULL is not true.
func Truthy(v types.Value) bool {
	switch v.Kind() {
	case types.KindBool:
		return v.Truth()
	case types.KindNumber:
		return v.Float() != 0
	default:
		return false
	}
}

// Compile translates an AST expression into a closure over rows of the
// given schema. Binds are resolved at compile time against params.
func Compile(e sql.Expr, schema *Schema, env Env, params []types.Value) (Compiled, error) {
	switch x := e.(type) {
	case sql.Literal:
		v := x.Value
		return func(Row) (types.Value, error) { return v, nil }, nil

	case sql.Bind:
		if x.Pos >= len(params) {
			return nil, fmt.Errorf("exec: bind %d out of range (%d params)", x.Pos, len(params))
		}
		v := params[x.Pos]
		return func(Row) (types.Value, error) { return v, nil }, nil

	case sql.ColumnRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return func(r Row) (types.Value, error) {
			if idx >= len(r) {
				return types.Null(), fmt.Errorf("exec: row too short for column %d", idx)
			}
			return r[idx], nil
		}, nil

	case sql.Unary:
		sub, err := Compile(x.X, schema, env, params)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(r Row) (types.Value, error) {
				v, err := sub(r)
				if err != nil {
					return types.Null(), err
				}
				if v.IsNull() {
					return types.Null(), nil
				}
				return types.Bool(!Truthy(v)), nil
			}, nil
		case "-":
			return func(r Row) (types.Value, error) {
				v, err := sub(r)
				if err != nil || v.IsNull() {
					return types.Null(), err
				}
				if v.Kind() != types.KindNumber {
					return types.Null(), fmt.Errorf("exec: unary minus on %s", v.Kind())
				}
				return types.Num(-v.Float()), nil
			}, nil
		}
		return nil, fmt.Errorf("exec: unknown unary op %q", x.Op)

	case sql.Binary:
		return compileBinary(x, schema, env, params)

	case sql.Between:
		sub, err := Compile(x.X, schema, env, params)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(x.Lo, schema, env, params)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(x.Hi, schema, env, params)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(r Row) (types.Value, error) {
			v, err := sub(r)
			if err != nil {
				return types.Null(), err
			}
			l, err := lo(r)
			if err != nil {
				return types.Null(), err
			}
			h, err := hi(r)
			if err != nil {
				return types.Null(), err
			}
			c1, ok1 := types.Compare(v, l)
			c2, ok2 := types.Compare(v, h)
			if !ok1 || !ok2 {
				return types.Null(), nil
			}
			in := c1 >= 0 && c2 <= 0
			if not {
				in = !in
			}
			return types.Bool(in), nil
		}, nil

	case sql.InList:
		sub, err := Compile(x.X, schema, env, params)
		if err != nil {
			return nil, err
		}
		items := make([]Compiled, len(x.List))
		for i, it := range x.List {
			c, err := Compile(it, schema, env, params)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		not := x.Not
		return func(r Row) (types.Value, error) {
			v, err := sub(r)
			if err != nil {
				return types.Null(), err
			}
			if v.IsNull() {
				return types.Null(), nil
			}
			for _, item := range items {
				iv, err := item(r)
				if err != nil {
					return types.Null(), err
				}
				if types.Equal(v, iv) {
					return types.Bool(!not), nil
				}
			}
			return types.Bool(not), nil
		}, nil

	case sql.IsNull:
		sub, err := Compile(x.X, schema, env, params)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(r Row) (types.Value, error) {
			v, err := sub(r)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(v.IsNull() != not), nil
		}, nil

	case sql.Call:
		return compileCall(x, schema, env, params)
	}
	return nil, fmt.Errorf("exec: cannot compile %T", e)
}

func compileBinary(x sql.Binary, schema *Schema, env Env, params []types.Value) (Compiled, error) {
	l, err := Compile(x.L, schema, env, params)
	if err != nil {
		return nil, err
	}
	r, err := Compile(x.R, schema, env, params)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		return func(row Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			if !lv.IsNull() && !Truthy(lv) {
				return types.Bool(false), nil // short circuit
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			if !rv.IsNull() && !Truthy(rv) {
				return types.Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.Bool(true), nil
		}, nil
	case "OR":
		return func(row Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			if Truthy(lv) {
				return types.Bool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			if Truthy(rv) {
				return types.Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.Bool(false), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		op := x.Op
		return func(row Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			c, ok := types.Compare(lv, rv)
			if !ok {
				// Bool-vs-number comparisons arise from predicates like
				// Contains(...) = 1; coerce booleans numerically.
				lv2, rv2 := coerceBoolNum(lv), coerceBoolNum(rv)
				c, ok = types.Compare(lv2, rv2)
				if !ok {
					return types.Null(), nil
				}
			}
			var out bool
			switch op {
			case "=":
				out = c == 0
			case "!=":
				out = c != 0
			case "<":
				out = c < 0
			case "<=":
				out = c <= 0
			case ">":
				out = c > 0
			case ">=":
				out = c >= 0
			}
			return types.Bool(out), nil
		}, nil
	case "+", "-", "*", "/":
		op := x.Op
		return func(row Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			if lv.Kind() != types.KindNumber || rv.Kind() != types.KindNumber {
				return types.Null(), fmt.Errorf("exec: arithmetic on %s and %s", lv.Kind(), rv.Kind())
			}
			a, b := lv.Float(), rv.Float()
			switch op {
			case "+":
				return types.Num(a + b), nil
			case "-":
				return types.Num(a - b), nil
			case "*":
				return types.Num(a * b), nil
			case "/":
				if b == 0 {
					return types.Null(), fmt.Errorf("exec: division by zero")
				}
				return types.Num(a / b), nil
			}
			return types.Null(), nil
		}, nil
	case "||":
		return func(row Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			return types.Str(lv.String() + rv.String()), nil
		}, nil
	case "LIKE":
		return func(row Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.Bool(likeMatch(lv.Text(), rv.Text())), nil
		}, nil
	}
	return nil, fmt.Errorf("exec: unknown binary op %q", x.Op)
}

func coerceBoolNum(v types.Value) types.Value {
	if v.Kind() == types.KindBool {
		if v.Truth() {
			return types.Num(1)
		}
		return types.Num(0)
	}
	return v
}

// likeMatch implements SQL LIKE with % and _ wildcards (no escape).
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on %.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, match = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func compileCall(x sql.Call, schema *Schema, env Env, params []types.Value) (Compiled, error) {
	if x.Star {
		return nil, fmt.Errorf("exec: %s(*) is only valid as an aggregate", x.Name)
	}
	// Ancillary operators (Score(label)) read the per-row ancillary value
	// produced by the domain scan that evaluated the primary operator.
	if env != nil {
		if _, ok := env.IsAncillaryOp(x.Name); ok {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("exec: ancillary operator %s takes exactly one label argument", x.Name)
			}
			labelC, err := Compile(x.Args[0], schema, env, params)
			if err != nil {
				return nil, err
			}
			return func(r Row) (types.Value, error) {
				lv, err := labelC(r)
				if err != nil {
					return types.Null(), err
				}
				if v, ok := env.AncillaryValue(lv.Int64()); ok {
					return v, nil
				}
				return types.Null(), nil
			}, nil
		}
	}
	args := make([]Compiled, len(x.Args))
	for i, a := range x.Args {
		c, err := Compile(a, schema, env, params)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	evalArgs := func(r Row) ([]types.Value, error) {
		vals := make([]types.Value, len(args))
		for i, a := range args {
			v, err := a(r)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	if env == nil {
		return nil, fmt.Errorf("exec: no environment to resolve call %s", x.Name)
	}
	fnName := x.Name
	return func(r Row) (types.Value, error) {
		vals, err := evalArgs(r)
		if err != nil {
			return types.Null(), err
		}
		// Operators take precedence (their functional implementation is a
		// function anyway), then plain functions.
		if v, found, err := env.CallOperator(fnName, vals); found {
			return v, err
		}
		if v, found, err := env.CallFunction(fnName, vals); found {
			return v, err
		}
		return types.Null(), fmt.Errorf("exec: unknown function or operator %q", fnName)
	}, nil
}
