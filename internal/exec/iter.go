package exec

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/extidx"
	"repro/internal/storage"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// Heap scan

// HeapScan yields every row of a heap, appending the RID pseudo-column.
type HeapScan struct {
	rows []Row
	pos  int
}

// NewHeapScan materializes the scan order up front (RIDs plus decoded
// rows). The heap is not safe against concurrent structural change, and
// statements hold table locks for their duration, so eager RID collection
// is safe and keeps the iterator simple.
func NewHeapScan(h *storage.Heap) (*HeapScan, error) {
	s := &HeapScan{}
	err := h.Scan(func(rid storage.RID, img []byte) (bool, error) {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return false, err
		}
		row = append(row, types.Int(rid.Int64()))
		s.rows = append(s.rows, row)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Next implements Iterator.
func (s *HeapScan) Next() (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Iterator.
func (s *HeapScan) Close() error { return nil }

// ---------------------------------------------------------------------------
// Basic combinators

// Filter yields child rows satisfying pred.
type Filter struct {
	Child Iterator
	Pred  Compiled
}

// Next implements Iterator.
func (f *Filter) Next() (Row, error) {
	for {
		r, err := f.Child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		v, err := f.Pred(r)
		if err != nil {
			return nil, err
		}
		if Truthy(v) {
			return r, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project maps child rows through compiled expressions.
type Project struct {
	Child Iterator
	Exprs []Compiled
}

// Next implements Iterator.
func (p *Project) Next() (Row, error) {
	r, err := p.Child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit stops after N rows.
type Limit struct {
	Child Iterator
	N     int
	seen  int
}

// Next implements Iterator.
func (l *Limit) Next() (Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	r, err := l.Child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	l.seen++
	return r, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// Slice replays a materialized row set.
type Slice struct {
	Rows []Row
	pos  int
}

// Next implements Iterator.
func (s *Slice) Next() (Row, error) {
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Iterator.
func (s *Slice) Close() error { return nil }

// Drain pulls every row out of an iterator and closes it.
func Drain(it Iterator) ([]Row, error) {
	defer it.Close()
	var out []Row
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}

// ---------------------------------------------------------------------------
// Sort / Distinct

// SortKey is one ORDER BY key over the child's output.
type SortKey struct {
	Expr Compiled
	Desc bool
}

// Sort materializes the child and yields rows ordered by the keys.
type Sort struct {
	Child Iterator
	Keys  []SortKey

	sorted []Row
	pos    int
	done   bool
}

// Next implements Iterator.
func (s *Sort) Next() (Row, error) {
	if !s.done {
		rows, err := Drain(s.Child)
		if err != nil {
			return nil, err
		}
		type keyed struct {
			row  Row
			keys []types.Value
		}
		ks := make([]keyed, len(rows))
		for i, r := range rows {
			kv := make([]types.Value, len(s.Keys))
			for j, k := range s.Keys {
				v, err := k.Expr(r)
				if err != nil {
					return nil, err
				}
				kv[j] = v
			}
			ks[i] = keyed{r, kv}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j, k := range s.Keys {
				av, bv := ks[a].keys[j], ks[b].keys[j]
				if types.Identical(av, bv) {
					continue
				}
				less := types.Less(av, bv)
				if k.Desc {
					return !less
				}
				return less
			}
			return false
		})
		s.sorted = make([]Row, len(ks))
		for i := range ks {
			s.sorted[i] = ks[i].row
		}
		s.done = true
	}
	if s.pos >= len(s.sorted) {
		return nil, nil
	}
	r := s.sorted[s.pos]
	s.pos++
	return r, nil
}

// Close implements Iterator.
func (s *Sort) Close() error { return s.Child.Close() }

// Distinct suppresses duplicate rows (by encoded image).
type Distinct struct {
	Child Iterator
	seen  map[string]bool
}

// Next implements Iterator.
func (d *Distinct) Next() (Row, error) {
	if d.seen == nil {
		d.seen = make(map[string]bool)
	}
	for {
		r, err := d.Child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		key := string(types.EncodeRow(nil, r))
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return r, nil
	}
}

// Close implements Iterator.
func (d *Distinct) Close() error { return d.Child.Close() }

// ---------------------------------------------------------------------------
// Joins

// NestedLoopJoin joins an outer iterator with a per-outer-row inner
// iterator factory, concatenating rows. Pushing an index lookup into the
// factory turns it into an index nested-loop join.
type NestedLoopJoin struct {
	Outer Iterator
	Inner func(outer Row) (Iterator, error)

	curOuter Row
	curInner Iterator
}

// Next implements Iterator.
func (j *NestedLoopJoin) Next() (Row, error) {
	for {
		if j.curInner == nil {
			o, err := j.Outer.Next()
			if err != nil || o == nil {
				return nil, err
			}
			j.curOuter = o
			inner, err := j.Inner(o)
			if err != nil {
				return nil, err
			}
			j.curInner = inner
		}
		ir, err := j.curInner.Next()
		if err != nil {
			return nil, err
		}
		if ir == nil {
			err := j.curInner.Close()
			j.curInner = nil
			if err != nil {
				return nil, err
			}
			continue
		}
		out := make(Row, 0, len(j.curOuter)+len(ir))
		out = append(out, j.curOuter...)
		out = append(out, ir...)
		return out, nil
	}
}

// Close implements Iterator.
func (j *NestedLoopJoin) Close() error {
	var err error
	if j.curInner != nil {
		err = j.curInner.Close()
		j.curInner = nil
	}
	if oerr := j.Outer.Close(); err == nil {
		err = oerr
	}
	return err
}

// ---------------------------------------------------------------------------
// RID fetch

// RIDFetch turns a stream of packed RIDs into full table rows (RID
// appended), fetching from the heap on demand. It is the table-access
// stage above index scans.
type RIDFetch struct {
	Heap *storage.Heap
	Src  func() (int64, bool, error) // next RID; ok=false at end
}

// Next implements Iterator.
func (f *RIDFetch) Next() (Row, error) {
	rid, ok, err := f.Src()
	if err != nil || !ok {
		return nil, err
	}
	img, err := f.Heap.Get(storage.RIDFromInt64(rid))
	if err != nil {
		return nil, err
	}
	row, _, err := types.DecodeRow(img)
	if err != nil {
		return nil, err
	}
	return append(row, types.Int(rid)), nil
}

// Close implements Iterator.
func (f *RIDFetch) Close() error { return nil }

// SliceRIDSource adapts a materialized RID list to a RIDFetch source.
func SliceRIDSource(rids []int64) func() (int64, bool, error) {
	i := 0
	return func() (int64, bool, error) {
		if i >= len(rids) {
			return 0, false, nil
		}
		r := rids[i]
		i++
		return r, true, nil
	}
}

// ---------------------------------------------------------------------------
// Domain index scan

// AncillarySink receives per-row ancillary values keyed by label while a
// domain scan advances; the Env implementation exposes them to ancillary
// operators (Score) evaluated higher in the plan.
type AncillarySink interface {
	SetAncillary(label int64, v types.Value)
}

// DomainScan drives a cartridge's ODCIIndex scan routines as a pipelined
// row source: Start on first Next, batched Fetch as the consumer pulls,
// Close on Close. This is the single-step execution model the paper
// credits for the text cartridge's 10× speedup: no temporary result
// table, row identifiers stream directly into the plan.
type DomainScan struct {
	Methods extidx.IndexMethods
	Server  extidx.Server
	Info    extidx.IndexInfo
	Call    extidx.OperatorCall
	Heap    *storage.Heap
	// BatchSize is passed to Fetch (<=0 lets the cartridge choose).
	BatchSize int
	// Label tags ancillary values for this operator invocation (0 = no
	// ancillary wiring).
	Label int64
	Sink  AncillarySink

	started bool
	state   extidx.ScanState
	buf     []int64
	anc     []types.Value
	pos     int
	done    bool
	// FetchCalls counts Fetch crossings (batching experiments read it).
	FetchCalls int
	// Counter, when set, accumulates Fetch crossings across scans
	// (atomically), so the engine can report interface-crossing counts
	// for whole statements.
	Counter *int64
}

// Next implements Iterator.
func (d *DomainScan) Next() (Row, error) {
	if !d.started {
		st, err := d.Methods.Start(d.Server, d.Info, d.Call)
		if err != nil {
			return nil, fmt.Errorf("ODCIIndexStart(%s): %w", d.Info.IndexName, err)
		}
		d.state = st
		d.started = true
	}
	for {
		if d.pos < len(d.buf) {
			rid := d.buf[d.pos]
			var av types.Value
			if d.anc != nil && d.pos < len(d.anc) {
				av = d.anc[d.pos]
			}
			d.pos++
			img, err := d.Heap.Get(storage.RIDFromInt64(rid))
			if err != nil {
				return nil, err
			}
			row, _, err := types.DecodeRow(img)
			if err != nil {
				return nil, err
			}
			if d.Sink != nil && d.Label != 0 {
				d.Sink.SetAncillary(d.Label, av)
			}
			return append(row, types.Int(rid)), nil
		}
		if d.done {
			return nil, nil
		}
		res, st, err := d.Methods.Fetch(d.Server, d.state, d.BatchSize)
		if err != nil {
			return nil, fmt.Errorf("ODCIIndexFetch(%s): %w", d.Info.IndexName, err)
		}
		d.state = st
		d.FetchCalls++
		if d.Counter != nil {
			atomic.AddInt64(d.Counter, 1)
		}
		d.buf = res.RIDs
		d.anc = res.Ancillary
		d.pos = 0
		d.done = res.Done
		if len(d.buf) == 0 && d.done {
			return nil, nil
		}
	}
}

// Close implements Iterator.
func (d *DomainScan) Close() error {
	if d.started {
		d.started = false
		if err := d.Methods.Close(d.Server, d.state); err != nil {
			return fmt.Errorf("ODCIIndexClose(%s): %w", d.Info.IndexName, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Aggregation

// AggKind enumerates supported aggregate functions.
type AggKind int

// Aggregates.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one aggregate in the select list.
type AggSpec struct {
	Kind AggKind
	Arg  Compiled // nil for COUNT(*)
}

// HashAggregate groups child rows by the group-key expressions and
// computes the aggregates; output rows are group keys followed by
// aggregate values, in specification order.
type HashAggregate struct {
	Child     Iterator
	GroupBy   []Compiled
	Specs     []AggSpec
	out       []Row
	pos       int
	evaluated bool
}

type aggState struct {
	keys   []types.Value
	count  []int64
	sum    []float64
	minv   []types.Value
	maxv   []types.Value
	filled []bool
}

// Next implements Iterator.
func (h *HashAggregate) Next() (Row, error) {
	if !h.evaluated {
		if err := h.evaluate(); err != nil {
			return nil, err
		}
		h.evaluated = true
	}
	if h.pos >= len(h.out) {
		return nil, nil
	}
	r := h.out[h.pos]
	h.pos++
	return r, nil
}

func (h *HashAggregate) evaluate() error {
	groups := map[string]*aggState{}
	var order []string
	for {
		r, err := h.Child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		keys := make([]types.Value, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g(r)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		gk := string(types.EncodeRow(nil, keys))
		st, ok := groups[gk]
		if !ok {
			st = &aggState{
				keys:   keys,
				count:  make([]int64, len(h.Specs)),
				sum:    make([]float64, len(h.Specs)),
				minv:   make([]types.Value, len(h.Specs)),
				maxv:   make([]types.Value, len(h.Specs)),
				filled: make([]bool, len(h.Specs)),
			}
			groups[gk] = st
			order = append(order, gk)
		}
		for i, spec := range h.Specs {
			if spec.Kind == AggCountStar {
				st.count[i]++
				continue
			}
			v, err := spec.Arg(r)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			st.count[i]++
			st.sum[i] += v.Float()
			if !st.filled[i] {
				st.minv[i], st.maxv[i] = v, v
				st.filled[i] = true
				continue
			}
			if types.Less(v, st.minv[i]) {
				st.minv[i] = v
			}
			if types.Less(st.maxv[i], v) {
				st.maxv[i] = v
			}
		}
	}
	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(order) == 0 && len(h.GroupBy) == 0 {
		st := &aggState{
			count:  make([]int64, len(h.Specs)),
			sum:    make([]float64, len(h.Specs)),
			minv:   make([]types.Value, len(h.Specs)),
			maxv:   make([]types.Value, len(h.Specs)),
			filled: make([]bool, len(h.Specs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	for _, gk := range order {
		st := groups[gk]
		row := make(Row, 0, len(st.keys)+len(h.Specs))
		row = append(row, st.keys...)
		for i, spec := range h.Specs {
			switch spec.Kind {
			case AggCount, AggCountStar:
				row = append(row, types.Int(st.count[i]))
			case AggSum:
				if st.count[i] == 0 {
					row = append(row, types.Null())
				} else {
					row = append(row, types.Num(st.sum[i]))
				}
			case AggAvg:
				if st.count[i] == 0 {
					row = append(row, types.Null())
				} else {
					row = append(row, types.Num(st.sum[i]/float64(st.count[i])))
				}
			case AggMin:
				if !st.filled[i] {
					row = append(row, types.Null())
				} else {
					row = append(row, st.minv[i])
				}
			case AggMax:
				if !st.filled[i] {
					row = append(row, types.Null())
				} else {
					row = append(row, st.maxv[i])
				}
			}
		}
		h.out = append(h.out, row)
	}
	return nil
}

// Close implements Iterator.
func (h *HashAggregate) Close() error { return h.Child.Close() }
