package exec

import (
	"fmt"
	"sort"

	"repro/internal/extidx"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// Heap scan

// HeapScan yields every row of a heap, appending the RID pseudo-column.
type HeapScan struct {
	rows []Row
	pos  int
}

// NewHeapScan materializes the scan order up front (RIDs plus decoded
// rows). The heap is not safe against concurrent structural change, and
// statements hold table locks for their duration, so eager RID collection
// is safe and keeps the iterator simple.
func NewHeapScan(h *storage.Heap) (*HeapScan, error) {
	s := &HeapScan{}
	err := h.Scan(func(rid storage.RID, img []byte) (bool, error) {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return false, err
		}
		row = append(row, types.Int(rid.Int64()))
		s.rows = append(s.rows, row)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NewHeapRangeScan is NewHeapScan restricted to one page range — the
// per-morsel row source of a parallel heap scan. Each morsel
// materializes only its own range, so memory stays bounded by morsel
// size times the worker count rather than by the table, and the decode
// work (the CPU part of a scan) lands on the worker goroutine.
func NewHeapRangeScan(h *storage.Heap, pages []storage.PageID) (*HeapScan, error) {
	s := &HeapScan{}
	err := h.ScanPages(pages, func(rid storage.RID, img []byte) (bool, error) {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return false, err
		}
		row = append(row, types.Int(rid.Int64()))
		s.rows = append(s.rows, row)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NextBatch implements Iterator.
func (s *HeapScan) NextBatch(c *Chunk) error {
	c.Reset()
	for s.pos < len(s.rows) && !c.Full() {
		c.Append(s.rows[s.pos])
		s.pos++
	}
	return nil
}

// Close implements Iterator.
func (s *HeapScan) Close() error { return nil }

// ---------------------------------------------------------------------------
// Basic combinators

// Filter yields child rows satisfying pred, carrying RIDs and ancillary
// values through for the survivors. The predicate may itself read
// ancillary values (Score in WHERE), so each row is published before
// evaluation.
type Filter struct {
	Child Iterator
	Pred  Compiled

	buf *Chunk
}

// NextBatch implements Iterator.
func (f *Filter) NextBatch(c *Chunk) error {
	c.Reset()
	if f.buf == nil {
		f.buf = NewChunk(c.Max())
	}
	for {
		if err := f.Child.NextBatch(f.buf); err != nil {
			return err
		}
		if f.buf.Len() == 0 {
			return nil
		}
		for i, r := range f.buf.Rows {
			f.buf.PublishRow(i)
			v, err := f.Pred(r)
			if err != nil {
				return err
			}
			if Truthy(v) {
				c.CopyRowFrom(f.buf, i)
			}
		}
		if c.Len() > 0 {
			return nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project maps child rows through compiled expressions. It is an
// expression-evaluating consumer: each input row's ancillary value is
// published before the expressions run, and output rows carry none.
type Project struct {
	Child Iterator
	Exprs []Compiled

	buf *Chunk
}

// NextBatch implements Iterator.
func (p *Project) NextBatch(c *Chunk) error {
	c.Reset()
	if p.buf == nil {
		p.buf = NewChunk(c.Max())
	}
	if err := p.Child.NextBatch(p.buf); err != nil {
		return err
	}
	for i, r := range p.buf.Rows {
		p.buf.PublishRow(i)
		out := make(Row, len(p.Exprs))
		for j, e := range p.Exprs {
			v, err := e(r)
			if err != nil {
				return err
			}
			out[j] = v
		}
		c.Append(out)
	}
	return nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit stops after N rows, truncating the chunk that crosses the bound.
type Limit struct {
	Child Iterator
	N     int
	seen  int
}

// NextBatch implements Iterator.
func (l *Limit) NextBatch(c *Chunk) error {
	c.Reset()
	if l.seen >= l.N {
		return nil
	}
	if err := l.Child.NextBatch(c); err != nil {
		return err
	}
	if rem := l.N - l.seen; c.Len() > rem {
		c.Truncate(rem)
	}
	l.seen += c.Len()
	return nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// Slice replays a materialized row set.
type Slice struct {
	Rows []Row
	pos  int
}

// NextBatch implements Iterator.
func (s *Slice) NextBatch(c *Chunk) error {
	c.Reset()
	for s.pos < len(s.Rows) && !c.Full() {
		c.Append(s.Rows[s.pos])
		s.pos++
	}
	return nil
}

// Close implements Iterator.
func (s *Slice) Close() error { return nil }

// ---------------------------------------------------------------------------
// Sort / Distinct

// SortKey is one ORDER BY key over the child's output.
type SortKey struct {
	Expr Compiled
	Desc bool
}

// Sort materializes the child and yields rows ordered by the keys. Sort
// keys are evaluated per row as chunks arrive (with the row's ancillary
// value published first); the sorted output carries no ancillary data.
type Sort struct {
	Child Iterator
	Keys  []SortKey

	sorted []Row
	pos    int
	done   bool
}

// NextBatch implements Iterator.
func (s *Sort) NextBatch(c *Chunk) error {
	c.Reset()
	if !s.done {
		if err := s.materialize(c.Max()); err != nil {
			return err
		}
		s.done = true
	}
	for s.pos < len(s.sorted) && !c.Full() {
		c.Append(s.sorted[s.pos])
		s.pos++
	}
	return nil
}

func (s *Sort) materialize(batch int) error {
	type keyed struct {
		row  Row
		keys []types.Value
	}
	var ks []keyed
	buf := NewChunk(batch)
	for {
		if err := s.Child.NextBatch(buf); err != nil {
			return err
		}
		if buf.Len() == 0 {
			break
		}
		for i, r := range buf.Rows {
			buf.PublishRow(i)
			kv := make([]types.Value, len(s.Keys))
			for j, k := range s.Keys {
				v, err := k.Expr(r)
				if err != nil {
					return err
				}
				kv[j] = v
			}
			ks = append(ks, keyed{r, kv})
		}
	}
	if err := s.Child.Close(); err != nil {
		return err
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, k := range s.Keys {
			av, bv := ks[a].keys[j], ks[b].keys[j]
			if types.Identical(av, bv) {
				continue
			}
			less := types.Less(av, bv)
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
	s.sorted = make([]Row, len(ks))
	for i := range ks {
		s.sorted[i] = ks[i].row
	}
	return nil
}

// Close implements Iterator.
func (s *Sort) Close() error { return s.Child.Close() }

// Distinct suppresses duplicate rows (by encoded image).
type Distinct struct {
	Child Iterator

	seen    map[string]bool
	buf     *Chunk
	scratch []byte
}

// NextBatch implements Iterator.
func (d *Distinct) NextBatch(c *Chunk) error {
	c.Reset()
	if d.seen == nil {
		d.seen = make(map[string]bool)
	}
	if d.buf == nil {
		d.buf = NewChunk(c.Max())
	}
	for {
		if err := d.Child.NextBatch(d.buf); err != nil {
			return err
		}
		if d.buf.Len() == 0 {
			return nil
		}
		for i, r := range d.buf.Rows {
			d.scratch = types.EncodeRow(d.scratch[:0], r)
			key := string(d.scratch)
			if d.seen[key] {
				continue
			}
			d.seen[key] = true
			c.CopyRowFrom(d.buf, i)
		}
		if c.Len() > 0 {
			return nil
		}
	}
}

// Close implements Iterator.
func (d *Distinct) Close() error { return d.Child.Close() }

// ---------------------------------------------------------------------------
// Joins

// NestedLoopJoin joins an outer iterator with a per-outer-row inner
// iterator factory, concatenating rows. Pushing an index lookup into the
// factory turns it into an index nested-loop join. Output rows replicate
// the outer row's ancillary value, so Score above a domain-scan-driven
// join keeps working.
type NestedLoopJoin struct {
	Outer Iterator
	Inner func(outer Row) (Iterator, error)

	outerBuf  *Chunk
	outerPos  int
	outerDone bool
	curInner  Iterator
	innerBuf  *Chunk
	innerPos  int
}

// NextBatch implements Iterator.
func (j *NestedLoopJoin) NextBatch(c *Chunk) error {
	c.Reset()
	for !c.Full() {
		if j.curInner != nil {
			if j.innerPos >= j.innerBuf.Len() {
				if err := j.curInner.NextBatch(j.innerBuf); err != nil {
					return err
				}
				j.innerPos = 0
				if j.innerBuf.Len() == 0 {
					err := j.curInner.Close()
					j.curInner = nil
					if err != nil {
						return err
					}
					j.outerPos++
					continue
				}
			}
			o := j.outerBuf.Rows[j.outerPos]
			for j.innerPos < j.innerBuf.Len() && !c.Full() {
				ir := j.innerBuf.Rows[j.innerPos]
				j.innerPos++
				out := make(Row, 0, len(o)+len(ir))
				out = append(out, o...)
				out = append(out, ir...)
				c.Append(out)
				if j.outerPos < len(j.outerBuf.Anc) {
					c.Anc = append(c.Anc, j.outerBuf.Anc[j.outerPos])
					c.Label, c.Sink = j.outerBuf.Label, j.outerBuf.Sink
				}
			}
			continue
		}
		if j.outerBuf == nil {
			j.outerBuf = NewChunk(c.Max())
		}
		if j.outerPos >= j.outerBuf.Len() {
			if j.outerDone {
				return nil
			}
			if err := j.Outer.NextBatch(j.outerBuf); err != nil {
				return err
			}
			j.outerPos = 0
			if j.outerBuf.Len() == 0 {
				j.outerDone = true
				return nil
			}
		}
		inner, err := j.Inner(j.outerBuf.Rows[j.outerPos])
		if err != nil {
			return err
		}
		j.curInner = inner
		if j.innerBuf == nil {
			j.innerBuf = NewChunk(c.Max())
		} else {
			j.innerBuf.Reset()
		}
		j.innerPos = 0
	}
	return nil
}

// Close implements Iterator.
func (j *NestedLoopJoin) Close() error {
	var err error
	if j.curInner != nil {
		err = j.curInner.Close()
		j.curInner = nil
	}
	if oerr := j.Outer.Close(); err == nil {
		err = oerr
	}
	return err
}

// ---------------------------------------------------------------------------
// RID fetch

// fetchRows appends the decoded rows for rids to c, in input order, with
// the ROWID pseudo-column appended. Row images come from one page-sorted
// batched heap read, so each page is pinned once per batch instead of
// once per row. Decoding copies all byte content, so rows never alias
// pinned pages.
func fetchRows(h *storage.Heap, rids []int64, c *Chunk) error {
	if len(rids) == 0 {
		return nil
	}
	srids := make([]storage.RID, len(rids))
	for i, r := range rids {
		srids[i] = storage.RIDFromInt64(r)
	}
	start := len(c.Rows)
	c.Rows = append(c.Rows, make([]Row, len(rids))...)
	if err := h.GetBatchFunc(srids, func(i int, img []byte) error {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return err
		}
		c.Rows[start+i] = append(row, types.Int(rids[i]))
		return nil
	}); err != nil {
		c.Rows = c.Rows[:start]
		return err
	}
	c.RIDs = append(c.RIDs, rids...)
	return nil
}

// RIDFetch turns a stream of packed RIDs into full table rows (RID
// appended), batching heap reads page-sorted. It is the table-access
// stage above index scans.
type RIDFetch struct {
	Heap *storage.Heap
	Src  func() (int64, bool, error) // next RID; ok=false at end
	// PerRow degrades to one heap read per batch — the row-at-a-time
	// baseline the batch-sweep benchmark compares against.
	PerRow bool

	rids []int64
}

// NextBatch implements Iterator.
func (f *RIDFetch) NextBatch(c *Chunk) error {
	c.Reset()
	if f.PerRow {
		return f.fetchOne(c)
	}
	f.rids = f.rids[:0]
	for len(f.rids) < c.Max() {
		rid, ok, err := f.Src()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		f.rids = append(f.rids, rid)
	}
	return fetchRows(f.Heap, f.rids, c)
}

// fetchOne emits a single row via the per-row heap path.
func (f *RIDFetch) fetchOne(c *Chunk) error {
	rid, ok, err := f.Src()
	if err != nil || !ok {
		return err
	}
	img, err := f.Heap.Get(storage.RIDFromInt64(rid))
	if err != nil {
		return err
	}
	row, _, err := types.DecodeRow(img)
	if err != nil {
		return err
	}
	c.Rows = append(c.Rows, append(row, types.Int(rid)))
	c.RIDs = append(c.RIDs, rid)
	return nil
}

// Close implements Iterator.
func (f *RIDFetch) Close() error { return nil }

// SliceRIDSource adapts a materialized RID list to a RIDFetch source.
func SliceRIDSource(rids []int64) func() (int64, bool, error) {
	i := 0
	return func() (int64, bool, error) {
		if i >= len(rids) {
			return 0, false, nil
		}
		r := rids[i]
		i++
		return r, true, nil
	}
}

// ---------------------------------------------------------------------------
// Domain index scan

// AncillarySink receives per-row ancillary values keyed by label while a
// domain scan's rows are consumed; the Env implementation exposes them to
// ancillary operators (Score) evaluated higher in the plan.
type AncillarySink interface {
	SetAncillary(label int64, v types.Value)
}

// DomainScan drives a cartridge's ODCIIndex scan routines as a pipelined
// row source: Start on first NextBatch, batched Fetch as the consumer
// pulls, Close on Close. Each ODCI Fetch batch becomes one chunk — the
// single-step execution model the paper credits for the text cartridge's
// 10× speedup, now preserved through the whole plan tree.
type DomainScan struct {
	Methods extidx.IndexMethods
	Server  extidx.Server
	Info    extidx.IndexInfo
	Call    extidx.OperatorCall
	Heap    *storage.Heap
	// BatchSize is passed to Fetch (<=0 lets the cartridge choose) and is
	// the chunk size this scan produces.
	BatchSize int
	// Label tags ancillary values for this operator invocation (0 = no
	// ancillary wiring).
	Label int64
	Sink  AncillarySink
	// PerRow degrades the scan to one row per batch with a per-row heap
	// read — the volcano baseline for the batch-sweep benchmark.
	PerRow bool
	// Fetches counts this scan's ODCIIndexFetch crossings: one atomic
	// per-scan counter replacing the former plain-int/shared-pointer
	// pair. Engine-wide totals come from the ODCI boundary observer
	// (obs.ODCIStats), not from threading a DB counter into every scan.
	Fetches obs.Counter
	// Pre, when PreStarted, is a scan partition opened up front by
	// ODCIIndexStartParallel (extidx.ParallelMethods): NextBatch skips
	// Start and fetches from it directly. Close still runs
	// ODCIIndexClose on the partition even if it was never fetched, so
	// an exchange draining unpulled morsels releases cartridge state.
	Pre        extidx.ScanState
	PreStarted bool

	started bool
	state   extidx.ScanState
	buf     []int64
	anc     []types.Value
	pos     int
	done    bool
}

// NextBatch implements Iterator.
func (d *DomainScan) NextBatch(c *Chunk) error {
	c.Reset()
	if !d.started {
		if d.PreStarted {
			d.state = d.Pre
		} else {
			st, err := d.Methods.Start(d.Server, d.Info, d.Call)
			if err != nil {
				return fmt.Errorf("ODCIIndexStart(%s): %w", d.Info.IndexName, err)
			}
			d.state = st
		}
		d.started = true
	}
	for {
		if d.pos < len(d.buf) {
			if d.PerRow {
				return d.emitOne(c)
			}
			return d.emitBatch(c)
		}
		if d.done {
			return nil
		}
		res, st, err := d.Methods.Fetch(d.Server, d.state, d.BatchSize)
		if err != nil {
			return fmt.Errorf("ODCIIndexFetch(%s): %w", d.Info.IndexName, err)
		}
		d.state = st
		d.Fetches.Inc()
		if err := res.Validate(); err != nil {
			return fmt.Errorf("ODCIIndexFetch(%s): %w", d.Info.IndexName, err)
		}
		d.buf, d.anc, d.pos, d.done = res.RIDs, res.Ancillary, 0, res.Done
	}
}

// emitBatch turns the rest of the buffered Fetch batch into one chunk via
// the page-sorted heap read.
func (d *DomainScan) emitBatch(c *Chunk) error {
	rids := d.buf[d.pos:]
	var anc []types.Value
	if d.anc != nil {
		anc = d.anc[d.pos:]
	}
	d.pos = len(d.buf)
	if err := fetchRows(d.Heap, rids, c); err != nil {
		return err
	}
	if d.Label != 0 && d.Sink != nil {
		c.Label, c.Sink = d.Label, d.Sink
		if anc != nil {
			c.Anc = append(c.Anc, anc...)
		} else {
			for range rids {
				c.Anc = append(c.Anc, types.Null())
			}
		}
	}
	return nil
}

// emitOne emits a single buffered row via the per-row heap path.
func (d *DomainScan) emitOne(c *Chunk) error {
	rid := d.buf[d.pos]
	av := types.Null()
	if d.anc != nil {
		av = d.anc[d.pos]
	}
	d.pos++
	img, err := d.Heap.Get(storage.RIDFromInt64(rid))
	if err != nil {
		return err
	}
	row, _, err := types.DecodeRow(img)
	if err != nil {
		return err
	}
	c.Rows = append(c.Rows, append(row, types.Int(rid)))
	c.RIDs = append(c.RIDs, rid)
	if d.Label != 0 && d.Sink != nil {
		c.Label, c.Sink = d.Label, d.Sink
		c.Anc = append(c.Anc, av)
	}
	return nil
}

// Close implements Iterator.
func (d *DomainScan) Close() error {
	st, open := d.state, d.started
	if !open && d.PreStarted {
		// Never fetched, but the partition was opened by StartParallel;
		// it still owes the cartridge an ODCIIndexClose.
		st, open = d.Pre, true
	}
	d.started, d.PreStarted = false, false
	if open {
		if err := d.Methods.Close(d.Server, st); err != nil {
			return fmt.Errorf("ODCIIndexClose(%s): %w", d.Info.IndexName, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Aggregation

// AggKind enumerates supported aggregate functions.
type AggKind int

// Aggregates.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one aggregate in the select list.
type AggSpec struct {
	Kind AggKind
	Arg  Compiled // nil for COUNT(*)
}

// HashAggregate groups child rows by the group-key expressions and
// computes the aggregates; output rows are group keys followed by
// aggregate values, in specification order.
//
// For partitioned (parallel) aggregation the operator splits into two
// halves. A Partial instance runs inside each exchange worker and emits
// raw group states instead of final values: each output row is the
// group keys followed by four columns per spec — count, sum, min, max
// (min/max NULL while unfilled). A FromPartial instance above the
// exchange re-groups those rows (its GroupBy must project the key
// columns) and merges the states — counts and sums add, min/max fold —
// before the usual finalization, so AVG and NULL-on-empty semantics
// come out identical to the serial operator.
type HashAggregate struct {
	Child   Iterator
	GroupBy []Compiled
	Specs   []AggSpec
	// Partial emits per-group partial states (see type comment).
	Partial bool
	// FromPartial merges partial-state child rows (see type comment).
	FromPartial bool
	out         []Row
	pos         int
	evaluated   bool
}

type aggState struct {
	keys   []types.Value
	count  []int64
	sum    []float64
	minv   []types.Value
	maxv   []types.Value
	filled []bool
}

// NextBatch implements Iterator.
func (h *HashAggregate) NextBatch(c *Chunk) error {
	c.Reset()
	if !h.evaluated {
		if err := h.evaluate(c.Max()); err != nil {
			return err
		}
		h.evaluated = true
	}
	for h.pos < len(h.out) && !c.Full() {
		c.Append(h.out[h.pos])
		h.pos++
	}
	return nil
}

func (h *HashAggregate) evaluate(batch int) error {
	groups := map[string]*aggState{}
	var order []string
	buf := NewChunk(batch)
	for {
		if err := h.Child.NextBatch(buf); err != nil {
			return err
		}
		if buf.Len() == 0 {
			break
		}
		for ri, r := range buf.Rows {
			buf.PublishRow(ri)
			keys := make([]types.Value, len(h.GroupBy))
			for i, g := range h.GroupBy {
				v, err := g(r)
				if err != nil {
					return err
				}
				keys[i] = v
			}
			gk := string(types.EncodeRow(nil, keys))
			st, ok := groups[gk]
			if !ok {
				st = &aggState{
					keys:   keys,
					count:  make([]int64, len(h.Specs)),
					sum:    make([]float64, len(h.Specs)),
					minv:   make([]types.Value, len(h.Specs)),
					maxv:   make([]types.Value, len(h.Specs)),
					filled: make([]bool, len(h.Specs)),
				}
				groups[gk] = st
				order = append(order, gk)
			}
			if h.FromPartial {
				h.mergePartial(st, r)
				continue
			}
			for i, spec := range h.Specs {
				if spec.Kind == AggCountStar {
					st.count[i]++
					continue
				}
				v, err := spec.Arg(r)
				if err != nil {
					return err
				}
				if v.IsNull() {
					continue
				}
				st.count[i]++
				st.sum[i] += v.Float()
				if !st.filled[i] {
					st.minv[i], st.maxv[i] = v, v
					st.filled[i] = true
					continue
				}
				if types.Less(v, st.minv[i]) {
					st.minv[i] = v
				}
				if types.Less(st.maxv[i], v) {
					st.maxv[i] = v
				}
			}
		}
	}
	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(order) == 0 && len(h.GroupBy) == 0 {
		st := &aggState{
			count:  make([]int64, len(h.Specs)),
			sum:    make([]float64, len(h.Specs)),
			minv:   make([]types.Value, len(h.Specs)),
			maxv:   make([]types.Value, len(h.Specs)),
			filled: make([]bool, len(h.Specs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	for _, gk := range order {
		st := groups[gk]
		if h.Partial {
			h.out = append(h.out, partialRow(st, len(h.Specs)))
			continue
		}
		row := make(Row, 0, len(st.keys)+len(h.Specs))
		row = append(row, st.keys...)
		for i, spec := range h.Specs {
			switch spec.Kind {
			case AggCount, AggCountStar:
				row = append(row, types.Int(st.count[i]))
			case AggSum:
				if st.count[i] == 0 {
					row = append(row, types.Null())
				} else {
					row = append(row, types.Num(st.sum[i]))
				}
			case AggAvg:
				if st.count[i] == 0 {
					row = append(row, types.Null())
				} else {
					row = append(row, types.Num(st.sum[i]/float64(st.count[i])))
				}
			case AggMin:
				if !st.filled[i] {
					row = append(row, types.Null())
				} else {
					row = append(row, st.minv[i])
				}
			case AggMax:
				if !st.filled[i] {
					row = append(row, types.Null())
				} else {
					row = append(row, st.maxv[i])
				}
			}
		}
		h.out = append(h.out, row)
	}
	return nil
}

// partialRow renders one group's raw state: keys, then per spec
// [count, sum, min, max] with min/max NULL while unfilled.
func partialRow(st *aggState, nSpecs int) Row {
	row := make(Row, 0, len(st.keys)+4*nSpecs)
	row = append(row, st.keys...)
	for i := 0; i < nSpecs; i++ {
		row = append(row, types.Int(st.count[i]), types.Num(st.sum[i]))
		if st.filled[i] {
			row = append(row, st.minv[i], st.maxv[i])
		} else {
			row = append(row, types.Null(), types.Null())
		}
	}
	return row
}

// mergePartial folds one partial-state row (keys at the front, four
// state columns per spec after them) into the group state.
func (h *HashAggregate) mergePartial(st *aggState, r Row) {
	for i := range h.Specs {
		base := len(h.GroupBy) + 4*i
		st.count[i] += r[base].Int64()
		st.sum[i] += r[base+1].Float()
		mn, mx := r[base+2], r[base+3]
		if mn.IsNull() {
			continue
		}
		if !st.filled[i] {
			st.minv[i], st.maxv[i] = mn, mx
			st.filled[i] = true
			continue
		}
		if types.Less(mn, st.minv[i]) {
			st.minv[i] = mn
		}
		if types.Less(st.maxv[i], mx) {
			st.maxv[i] = mx
		}
	}
}

// Close implements Iterator.
func (h *HashAggregate) Close() error { return h.Child.Close() }
