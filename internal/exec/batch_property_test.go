package exec

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/extidx"
	"repro/internal/storage"
	"repro/internal/types"
)

// Property/model test for the chunk protocol: random operator stacks are
// built over the same base rows three ways — a plain-Go model of each
// operator's semantics, the chunk path drained at several batch sizes
// (including 1, which forces maximal protocol traffic), and the
// row-at-a-time RowAdapter path — and all must agree byte-for-byte
// (encoded row images, in order).
//
// The expressions inside Filter/Project/Sort/Aggregate are shared Go
// closures, so the property isolates the operator and chunk machinery:
// EOS signalling, empty mid-stream batches, Full()-bounded refills, and
// state carried across NextBatch calls.
//
// Failures are replayable: the test prints the failing seed and the op
// script (e.g. "F2 P L5 S1 D J A"), which parsePlanScript and
// TestBatchPlanReplay re-run verbatim.

type planOp struct {
	kind byte // F=Filter P=Project L=Limit S=Sort D=Distinct J=Join A=Aggregate
	n    int  // F: modulus, L: limit, S: 1=desc
}

func (o planOp) String() string {
	switch o.kind {
	case 'F', 'L', 'S':
		return fmt.Sprintf("%c%d", o.kind, o.n)
	}
	return string(o.kind)
}

func planScript(ops []planOp) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

func parsePlanScript(t *testing.T, s string) []planOp {
	t.Helper()
	var ops []planOp
	for _, f := range strings.Fields(s) {
		op := planOp{kind: f[0]}
		if len(f) > 1 {
			n, err := strconv.Atoi(f[1:])
			if err != nil {
				t.Fatalf("bad op %q: %v", f, err)
			}
			op.n = n
		}
		ops = append(ops, op)
	}
	return ops
}

// Shared semantics: the same closures feed both the operators and the
// model, so any divergence is protocol machinery, not expression logic.

func keepRow(r Row, k int) bool { return r[0].Int64()%int64(k) == 0 }

func projectRow(r Row) Row {
	return Row{r[len(r)-1], types.Int(r[0].Int64() + 1)}
}

var joinInnerRows = []Row{{types.Int(100)}, {types.Int(200)}}

// buildPlan stacks the scripted operators over a fresh Slice source.
func buildPlan(ops []planOp, base []Row) Iterator {
	return stackPlanOps(ops, &Slice{Rows: base})
}

// stackPlanOps stacks the scripted operators over an arbitrary child —
// the parallel parity test reuses it to build per-morsel worker
// pipelines and the serial gather above an Exchange.
func stackPlanOps(ops []planOp, it Iterator) Iterator {
	for _, o := range ops {
		switch o.kind {
		case 'F':
			k := o.n
			it = &Filter{Child: it, Pred: func(r Row) (types.Value, error) {
				return types.Bool(keepRow(r, k)), nil
			}}
		case 'P':
			it = &Project{Child: it, Exprs: []Compiled{
				func(r Row) (types.Value, error) { return r[len(r)-1], nil },
				func(r Row) (types.Value, error) { return types.Int(r[0].Int64() + 1), nil },
			}}
		case 'L':
			it = &Limit{Child: it, N: o.n}
		case 'S':
			it = &Sort{Child: it, Keys: []SortKey{{
				Expr: func(r Row) (types.Value, error) { return r[0], nil },
				Desc: o.n == 1,
			}}}
		case 'D':
			it = &Distinct{Child: it}
		case 'J':
			it = &NestedLoopJoin{Outer: it, Inner: func(Row) (Iterator, error) {
				return &Slice{Rows: joinInnerRows}, nil
			}}
		case 'A':
			it = &HashAggregate{
				Child:   it,
				GroupBy: []Compiled{func(r Row) (types.Value, error) { return r[0], nil }},
				Specs: []AggSpec{
					{Kind: AggCountStar},
					{Kind: AggSum, Arg: func(r Row) (types.Value, error) { return r[len(r)-1], nil }},
				},
			}
		}
	}
	return it
}

// modelApply is the plain-Go oracle for the same operator stack.
func modelApply(ops []planOp, base []Row) []Row {
	rows := base
	for _, o := range ops {
		var next []Row
		switch o.kind {
		case 'F':
			for _, r := range rows {
				if keepRow(r, o.n) {
					next = append(next, r)
				}
			}
		case 'P':
			for _, r := range rows {
				next = append(next, projectRow(r))
			}
		case 'L':
			n := o.n
			if n > len(rows) {
				n = len(rows)
			}
			next = rows[:n]
		case 'S':
			next = modelSort(rows, o.n == 1)
		case 'D':
			seen := map[string]bool{}
			for _, r := range rows {
				key := string(types.EncodeRow(nil, r))
				if !seen[key] {
					seen[key] = true
					next = append(next, r)
				}
			}
		case 'J':
			for _, outer := range rows {
				for _, inner := range joinInnerRows {
					joined := make(Row, 0, len(outer)+len(inner))
					joined = append(joined, outer...)
					joined = append(joined, inner...)
					next = append(next, joined)
				}
			}
		case 'A':
			next = modelAggregate(rows)
		}
		rows = next
	}
	return rows
}

func modelSort(rows []Row, desc bool) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	// Insertion sort: stable, and mirrors the operator's
	// Identical/Less/Desc comparison exactly.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1][0], out[j][0]
			if types.Identical(a, b) {
				break
			}
			less := types.Less(b, a)
			if desc {
				less = !less
			}
			if !less {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func modelAggregate(rows []Row) []Row {
	type gstate struct {
		key   types.Value
		stars int64
		n     int64
		sum   float64
	}
	groups := map[string]*gstate{}
	var order []string
	for _, r := range rows {
		gk := string(types.EncodeRow(nil, []types.Value{r[0]}))
		st, ok := groups[gk]
		if !ok {
			st = &gstate{key: r[0]}
			groups[gk] = st
			order = append(order, gk)
		}
		st.stars++
		if v := r[len(r)-1]; !v.IsNull() {
			st.n++
			st.sum += v.Float()
		}
	}
	var out []Row
	for _, gk := range order {
		st := groups[gk]
		sum := types.Null()
		if st.n > 0 {
			sum = types.Num(st.sum)
		}
		out = append(out, Row{st.key, types.Int(st.stars), sum})
	}
	return out
}

// drainWith drains the iterator at the given chunk size, publishing each
// row's ancillary value as a real consumer would.
func drainWith(it Iterator, batch int) ([]Row, error) {
	defer it.Close()
	var out []Row
	c := NewChunk(batch)
	for {
		if err := it.NextBatch(c); err != nil {
			return nil, err
		}
		if c.Len() == 0 {
			return out, nil
		}
		for i, r := range c.Rows {
			c.PublishRow(i)
			out = append(out, r)
		}
	}
}

func encodeRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(types.EncodeRow(nil, r))
	}
	return out
}

func sameRows(a, b []Row) bool {
	ea, eb := encodeRows(a), encodeRows(b)
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// checkPlanParity runs the script through the model, the chunk path at
// several batch sizes, and the RowAdapter path, and requires identical
// encoded output everywhere.
func checkPlanParity(t *testing.T, ops []planOp, base []Row) bool {
	t.Helper()
	want := modelApply(ops, base)
	for _, batch := range []int{1, 3, DefaultChunkSize} {
		got, err := drainWith(buildPlan(ops, base), batch)
		if err != nil {
			t.Errorf("script %q batch %d: %v", planScript(ops), batch, err)
			return false
		}
		if !sameRows(want, got) {
			t.Errorf("script %q batch %d: chunk path %d rows != model %d rows",
				planScript(ops), batch, len(got), len(want))
			return false
		}
	}
	rows, err := DrainRows(buildPlan(ops, base))
	if err != nil {
		t.Errorf("script %q row path: %v", planScript(ops), err)
		return false
	}
	if !sameRows(want, rows) {
		t.Errorf("script %q: row path %d rows != model %d rows",
			planScript(ops), len(rows), len(want))
		return false
	}
	return true
}

func genPlanOps(rng *rand.Rand) []planOp {
	kinds := []byte{'F', 'P', 'L', 'S', 'D', 'J', 'A'}
	n := 1 + rng.Intn(5)
	ops := make([]planOp, 0, n)
	for i := 0; i < n; i++ {
		op := planOp{kind: kinds[rng.Intn(len(kinds))]}
		switch op.kind {
		case 'F':
			op.n = 1 + rng.Intn(4) // modulus 1 keeps all, 4 keeps few
		case 'L':
			op.n = rng.Intn(20) // limit 0 allowed: empty downstream
		case 'S':
			op.n = rng.Intn(2)
		}
		ops = append(ops, op)
	}
	return ops
}

func genBaseRows(rng *rand.Rand) []Row {
	n := rng.Intn(41) // 0 rows allowed: empty pipelines
	rows := make([]Row, n)
	for i := range rows {
		v := types.Null()
		if rng.Float64() >= 0.1 {
			v = types.Int(int64(rng.Intn(50)))
		}
		rows[i] = Row{types.Int(int64(rng.Intn(5))), v}
	}
	return rows
}

func TestBatchPlanProperty(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for seed := int64(1); seed <= int64(iters); seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genPlanOps(rng)
		base := genBaseRows(rng)
		if !checkPlanParity(t, ops, base) {
			t.Fatalf("replay with: seed %d, script %q (%d base rows)",
				seed, planScript(ops), len(base))
		}
	}
}

// TestBatchPlanReplay re-runs fixed scripts covering every operator and
// the boundary shapes: a filter that rejects everything (empty
// mid-stream batches), limit 0, aggregate over zero rows, and stacked
// order-sensitive operators.
func TestBatchPlanReplay(t *testing.T) {
	base := []Row{
		{types.Int(0), types.Int(3)},
		{types.Int(1), types.Int(1)},
		{types.Int(2), types.Null()},
		{types.Int(0), types.Int(3)},
		{types.Int(4), types.Int(9)},
		{types.Int(1), types.Int(7)},
	}
	scripts := []string{
		"F2 P L5 S1 D J A",
		"F4 F3", // second filter sees sparse upstream chunks
		"L0 A",  // global-shape aggregate over an empty stream
		"S0 S1 D",
		"J J L7",
		"A S1 P",
		"D F1 L3",
	}
	for _, s := range scripts {
		checkPlanParity(t, parsePlanScript(t, s), base)
	}
	// And the empty base relation through every single operator.
	for _, s := range []string{"F2", "P", "L3", "S0", "D", "J", "A"} {
		checkPlanParity(t, parsePlanScript(t, s), nil)
	}
}

// ---------------------------------------------------------------------------
// DomainScan edge cases via a scripted cartridge

// scriptedMethods replays a fixed sequence of FetchResults, so tests can
// force protocol shapes a real cartridge rarely produces: empty
// mid-stream batches, Done carried on a non-empty final batch, and
// exact-boundary batches.
type scriptedMethods struct {
	batches []extidx.FetchResult
	fetches int
	closes  int
}

func (m *scriptedMethods) Create(extidx.Server, extidx.IndexInfo) error          { return nil }
func (m *scriptedMethods) Alter(extidx.Server, extidx.IndexInfo, string) error   { return nil }
func (m *scriptedMethods) Truncate(extidx.Server, extidx.IndexInfo) error        { return nil }
func (m *scriptedMethods) Drop(extidx.Server, extidx.IndexInfo) error            { return nil }
func (m *scriptedMethods) Insert(extidx.Server, extidx.IndexInfo, int64, types.Value) error {
	return nil
}
func (m *scriptedMethods) Delete(extidx.Server, extidx.IndexInfo, int64, types.Value) error {
	return nil
}
func (m *scriptedMethods) Update(extidx.Server, extidx.IndexInfo, int64, types.Value, types.Value) error {
	return nil
}

func (m *scriptedMethods) Start(extidx.Server, extidx.IndexInfo, extidx.OperatorCall) (extidx.ScanState, error) {
	m.fetches = 0
	return extidx.StateValue{}, nil
}

func (m *scriptedMethods) Fetch(_ extidx.Server, st extidx.ScanState, _ int) (extidx.FetchResult, extidx.ScanState, error) {
	if m.fetches >= len(m.batches) {
		return extidx.FetchResult{Done: true}, st, nil
	}
	res := m.batches[m.fetches]
	m.fetches++
	return res, st, nil
}

func (m *scriptedMethods) Close(extidx.Server, extidx.ScanState) error {
	m.closes++
	return nil
}

// recordSink captures ancillary publications in consumption order.
type recordSink struct {
	labels []int64
	vals   []types.Value
}

func (s *recordSink) SetAncillary(label int64, v types.Value) {
	s.labels = append(s.labels, label)
	s.vals = append(s.vals, v)
}

func propertyHeap(t *testing.T, n int) (*storage.Heap, []int64) {
	t.Helper()
	p := storage.NewPager(storage.NewMemBackend(), 32)
	h, err := storage.CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]int64, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(types.EncodeRow(nil, []types.Value{types.Int(int64(i))}))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid.Int64()
	}
	return h, rids
}

func domainScanRowIDs(t *testing.T, rows []Row) []int64 {
	t.Helper()
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].Int64()
	}
	return out
}

func TestDomainScanBatchEdges(t *testing.T) {
	h, rids := propertyHeap(t, 6)
	cases := []struct {
		name    string
		batches []extidx.FetchResult
		want    []int64 // expected row values, in order
		fetches int     // Fetch calls the scan must make — and no more
	}{
		{
			name: "empty-mid-stream",
			batches: []extidx.FetchResult{
				{RIDs: rids[0:2]},
				{}, // empty but not Done: scan must keep fetching
				{RIDs: rids[2:3], Done: true},
			},
			want:    []int64{0, 1, 2},
			fetches: 3,
		},
		{
			name: "done-with-nonempty-final-batch",
			batches: []extidx.FetchResult{
				{RIDs: rids[0:3]},
				{RIDs: rids[3:6], Done: true}, // no trailing null-rowid Fetch
			},
			want:    []int64{0, 1, 2, 3, 4, 5},
			fetches: 2,
		},
		{
			name: "exact-boundary",
			batches: []extidx.FetchResult{
				{RIDs: rids[0:4]}, // exactly BatchSize
				{Done: true},      // classic null-rowid end-of-scan
			},
			want:    []int64{0, 1, 2, 3},
			fetches: 2,
		},
		{
			name:    "immediately-done",
			batches: []extidx.FetchResult{{Done: true}},
			want:    nil,
			fetches: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, perRow := range []bool{false, true} {
				m := &scriptedMethods{batches: tc.batches}
				scan := &DomainScan{Methods: m, Heap: h, BatchSize: 4, PerRow: perRow}
				rows, err := Drain(scan)
				if err != nil {
					t.Fatalf("perRow=%v: %v", perRow, err)
				}
				got := domainScanRowIDs(t, rows)
				if fmt.Sprint(got) != fmt.Sprint(tc.want) {
					t.Errorf("perRow=%v: rows %v, want %v", perRow, got, tc.want)
				}
				if m.fetches != tc.fetches {
					t.Errorf("perRow=%v: %d Fetch calls, want %d", perRow, m.fetches, tc.fetches)
				}
				if m.closes != 1 {
					t.Errorf("perRow=%v: Close called %d times", perRow, m.closes)
				}
			}
		})
	}
}

// TestDomainScanAncillaryPublishing checks that consuming a chunk row by
// row publishes each row's ancillary value to the sink — including NULL
// padding when a batch carries no ancillary data — on both the chunk and
// RowAdapter paths.
func TestDomainScanAncillaryPublishing(t *testing.T) {
	h, rids := propertyHeap(t, 4)
	batches := []extidx.FetchResult{
		{RIDs: rids[0:2], Ancillary: []types.Value{types.Num(0.5), types.Num(1.5)}},
		{RIDs: rids[2:4], Done: true}, // no ancillary: padded with NULLs
	}
	for _, mode := range []string{"chunk", "rows"} {
		sink := &recordSink{}
		scan := &DomainScan{
			Methods:   &scriptedMethods{batches: batches},
			Heap:      h,
			BatchSize: 2,
			Label:     7,
			Sink:      sink,
		}
		var err error
		if mode == "chunk" {
			_, err = drainWith(scan, 2)
		} else {
			_, err = DrainRows(scan)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(sink.vals) != 4 {
			t.Fatalf("%s: %d ancillary publications, want 4", mode, len(sink.vals))
		}
		for i, l := range sink.labels {
			if l != 7 {
				t.Errorf("%s: publication %d has label %d, want 7", mode, i, l)
			}
		}
		if sink.vals[0].Float() != 0.5 || sink.vals[1].Float() != 1.5 {
			t.Errorf("%s: ancillary values %v", mode, sink.vals[:2])
		}
		if !sink.vals[2].IsNull() || !sink.vals[3].IsNull() {
			t.Errorf("%s: missing NULL padding: %v", mode, sink.vals[2:])
		}
	}
}
