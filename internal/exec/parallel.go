// Morsel-driven parallel execution. A morsel is one independently
// executable slice of a scan — a heap page range, or one partition of a
// partitioned ODCI index scan — packaged as an Iterator pipeline
// (optionally with Filter/Project/partial-aggregate stages stacked on
// top). Exchange fans N worker goroutines out over a shared morsel
// source and funnels their result chunks back to the single consuming
// goroutine, so everything above the exchange stays a plain serial
// iterator.
//
// Chunk ownership across the worker/consumer handoff follows one rule,
// statically checked by the vetx chunkalias analyzer's send rule: a
// chunk sent on the exchange channel must be freshly allocated by the
// sender, which never touches it again. Because rows appended to a
// chunk never alias chunk-owned storage (the PR-5 batch contract), the
// receiving goroutine may keep the rows without copying.
package exec

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// MorselSource hands out the next morsel pipeline, or nil when the scan
// is exhausted. It is called from worker goroutines concurrently and
// must be safe for concurrent use; the returned iterator is owned (run
// and closed) by the pulling worker.
type MorselSource func() (Iterator, error)

// NewMorselQueue returns a source handing out n lazily built morsels in
// index order. The builder runs on the pulling worker's goroutine, so
// per-morsel materialization (page-range decode, for instance) is
// itself parallel work. Builders hold no resources before they run, so
// morsels never pulled need no cleanup.
func NewMorselQueue(n int, build func(i int) (Iterator, error)) MorselSource {
	var next atomic.Int64
	return func() (Iterator, error) {
		i := next.Add(1) - 1
		if i >= int64(n) {
			return nil, nil
		}
		return build(int(i))
	}
}

// NewIteratorQueue returns a source handing out pre-built iterators —
// morsels that already hold resources, like ODCI scan partitions opened
// by StartParallel — plus a cleanup function closing every iterator the
// source never handed to a worker. Wire the cleanup to Exchange.OnClose
// so partitions a cancelled or never-run exchange left untouched still
// get their ODCIIndexClose.
func NewIteratorQueue(its []Iterator) (MorselSource, func() error) {
	var next atomic.Int64
	src := func() (Iterator, error) {
		i := next.Add(1) - 1
		if i >= int64(len(its)) {
			return nil, nil
		}
		return its[i], nil
	}
	cleanup := func() error {
		start := next.Swap(int64(len(its)))
		if start < 0 {
			start = 0
		}
		var errs []error
		for i := start; i < int64(len(its)); i++ {
			errs = append(errs, its[i].Close())
		}
		return errors.Join(errs...)
	}
	return src, cleanup
}

// PageRanges splits a heap page list into contiguous ranges of at most
// rangePages pages — the morsel granularity of a parallel heap scan.
func PageRanges(pages []storage.PageID, rangePages int) [][]storage.PageID {
	if rangePages < 1 {
		rangePages = 1
	}
	var out [][]storage.PageID
	for len(pages) > rangePages {
		out = append(out, pages[:rangePages])
		pages = pages[rangePages:]
	}
	if len(pages) > 0 {
		out = append(out, pages)
	}
	return out
}

// Exchange runs Workers goroutines that pull morsel pipelines from
// Source, drain each pipeline chunk by chunk, and push the chunks into
// a bounded channel the consuming goroutine reads through NextBatch.
// Row order across morsels is nondeterministic; the planner keeps
// order-sensitive operators (Sort, Limit, joins) above the exchange,
// where they see the usual serial iterator.
//
// Error and cancel rules: the first worker error is recorded and stops
// the exchange (remaining workers wind down at their next send or
// morsel boundary); the consumer sees the error on its next NextBatch,
// and once surfaced it is sticky. Close is deterministic regardless of
// how much was consumed: it cancels the workers, drains the channel
// until the last worker has exited, runs OnClose, and merges the
// per-worker trace nodes into Node.
type Exchange struct {
	// Source hands out morsel pipelines to workers (required).
	Source MorselSource
	// Workers is the worker goroutine count (min 1).
	Workers int
	// BatchSize sizes worker-produced chunks (<=0: DefaultChunkSize).
	BatchSize int
	// OnClose, when set, runs once during Close after the workers have
	// exited — the cleanup hook for morsel state the workers never
	// pulled (see NewIteratorQueue). It runs even if the exchange never
	// started, which is what releases pre-opened scan partitions when a
	// plan is built and closed without executing (EXPLAIN).
	OnClose func() error
	// Stats, when set, receives exchange/morsel/busy counters.
	Stats *obs.ExecStats
	// Waits, when set, receives each worker's chunk-handoff time as
	// WaitExchangeWorkerIdle: the interval a worker spends blocked on
	// the output channel waiting for the consumer (backpressure).
	Waits *obs.WaitStats
	// Node, when set, is this operator's trace node: the per-worker
	// sub-nodes (rows, batches, morsels, busy time accumulated without
	// sharing) are merged into it at Close. The node's own Rows/Nanos
	// stay consumer-side (an enclosing Instrument), which is what keeps
	// EXPLAIN ANALYZE wall times truthful under parallelism.
	Node *obs.OpNode

	started bool
	closed  bool
	out     chan *Chunk
	done    chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup

	mu          sync.Mutex // guards err
	err         error
	workerNodes []*obs.OpNode

	sticky error // error already surfaced to the consumer
}

// NextBatch implements Iterator. The received chunk's slices are
// appended into c; the sender allocated the chunk for this handoff and
// has dropped it, so no copy of the rows is needed.
func (e *Exchange) NextBatch(c *Chunk) error {
	c.Reset()
	if e.sticky != nil {
		return e.sticky
	}
	if !e.started {
		e.start()
	}
	if err := e.takeErr(); err != nil {
		return e.surface(err)
	}
	ck, ok := <-e.out
	if !ok {
		if err := e.takeErr(); err != nil {
			return e.surface(err)
		}
		return nil // all workers done: EOS
	}
	c.Rows = append(c.Rows, ck.Rows...)
	c.RIDs = append(c.RIDs, ck.RIDs...)
	c.Anc = append(c.Anc, ck.Anc...)
	c.Label, c.Sink = ck.Label, ck.Sink
	return nil
}

// surface makes a worker error the consumer's result: cancel the
// remaining workers, discard buffered chunks, and return it (sticky).
func (e *Exchange) surface(err error) error {
	e.sticky = err
	e.cancel()
	for range e.out {
	}
	return err
}

func (e *Exchange) start() {
	n := e.Workers
	if n < 1 {
		n = 1
	}
	e.started = true
	e.out = make(chan *Chunk, 2*n)
	e.done = make(chan struct{})
	e.workerNodes = make([]*obs.OpNode, n)
	if e.Stats != nil {
		e.Stats.ExchangeStarted()
	}
	for i := 0; i < n; i++ {
		e.workerNodes[i] = &obs.OpNode{}
		e.wg.Add(1)
		go e.worker(e.workerNodes[i])
	}
	// Dedicated closer: the consumer learns all workers have exited by
	// the channel closing, without blocking any worker's last send.
	go func() {
		e.wg.Wait()
		close(e.out)
	}()
}

func (e *Exchange) worker(node *obs.OpNode) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		default:
		}
		it, err := e.Source()
		if err != nil {
			e.fail(err)
			return
		}
		if it == nil {
			return
		}
		node.Morsels++
		if e.Stats != nil {
			e.Stats.MorselDispatched()
		}
		if err := e.runMorsel(it, node); err != nil {
			e.fail(err)
			return
		}
	}
}

// runMorsel drains one morsel pipeline, sending each non-empty chunk to
// the consumer. The iterator is closed on every exit path.
func (e *Exchange) runMorsel(it Iterator, node *obs.OpNode) error {
	batch := e.BatchSize
	if batch <= 0 {
		batch = DefaultChunkSize
	}
	for {
		ck := NewChunk(batch)
		start := time.Now()
		err := it.NextBatch(ck)
		busy := time.Since(start).Nanoseconds()
		node.Nanos += busy
		if e.Stats != nil {
			e.Stats.AddWorkerBusy(busy)
		}
		if err != nil {
			return errors.Join(err, it.Close())
		}
		if ck.Len() == 0 {
			return it.Close()
		}
		node.Rows += int64(ck.Len())
		node.Batches++
		// The handoff is the worker's idle time: with a slow consumer the
		// bounded channel fills and the send blocks. Every send is timed
		// (per-chunk, so the cost is amortized over the batch) — the class
		// must register even when the consumer keeps up, or a dead
		// recording path would be indistinguishable from a fast consumer.
		aw := e.Waits.StartWait(obs.WaitExchangeWorkerIdle)
		select {
		case e.out <- ck: // ownership of ck transfers to the consumer
			aw.Done()
		case <-e.done:
			aw.Done()
			return it.Close()
		}
	}
}

// fail records the first worker error and cancels the exchange.
func (e *Exchange) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.cancel()
}

func (e *Exchange) cancel() {
	e.stop.Do(func() { close(e.done) })
}

func (e *Exchange) takeErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close implements Iterator: cancel workers, drain the channel until
// the last worker has exited (every pulled morsel is closed by its
// worker on the way out), release unpulled morsels via OnClose, and
// merge worker trace nodes. Idempotent; a worker error the consumer
// never observed surfaces here.
func (e *Exchange) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.started {
		e.cancel()
		// Draining to channel close synchronizes with wg.Wait in the
		// closer goroutine: after this loop no worker is running.
		for range e.out {
		}
	}
	var errs []error
	if e.OnClose != nil {
		errs = append(errs, e.OnClose())
		e.OnClose = nil
	}
	if e.Node != nil && e.workerNodes != nil {
		e.Node.Parallel = len(e.workerNodes)
		e.Node.Workers = append(e.Node.Workers, e.workerNodes...)
		e.workerNodes = nil
	}
	if err := e.takeErr(); err != nil && !errors.Is(e.sticky, err) {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
