package exec

import (
	"fmt"
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// fakeEnv provides a function registry for expression tests.
type fakeEnv struct {
	fns map[string]func([]types.Value) (types.Value, error)
	anc map[int64]types.Value
}

func (e fakeEnv) CallFunction(name string, args []types.Value) (types.Value, bool, error) {
	if f, ok := e.fns[name]; ok {
		v, err := f(args)
		return v, true, err
	}
	return types.Null(), false, nil
}

func (e fakeEnv) CallOperator(string, []types.Value) (types.Value, bool, error) {
	return types.Null(), false, nil
}

func (e fakeEnv) AncillaryValue(label int64) (types.Value, bool) {
	v, ok := e.anc[label]
	return v, ok
}

func (e fakeEnv) IsAncillaryOp(name string) (string, bool) {
	if name == "Score" {
		return "Contains", true
	}
	return "", false
}

func compileExpr(t *testing.T, src string, schema *Schema, env Env, params []types.Value) Compiled {
	t.Helper()
	st, err := sql.Parse("SELECT " + src + " FROM dual")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	e := st.(*sql.Select).Items[0].Expr
	c, err := Compile(e, schema, env, params)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func evalStr(t *testing.T, src string, row Row, schema *Schema) types.Value {
	t.Helper()
	env := fakeEnv{fns: map[string]func([]types.Value) (types.Value, error){
		"double": func(args []types.Value) (types.Value, error) { return types.Num(args[0].Float() * 2), nil },
	}}
	c := compileExpr(t, src, schema, env, nil)
	v, err := c(row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprEvaluation(t *testing.T) {
	schema := &Schema{Cols: []SchemaCol{{Qualifier: "t", Name: "a"}, {Qualifier: "t", Name: "b"}}}
	row := Row{types.Num(6), types.Str("hi")}
	cases := []struct {
		src  string
		want types.Value
	}{
		{"1 + 2 * 3", types.Num(7)},
		{"(1 + 2) * 3", types.Num(9)},
		{"a - 1", types.Num(5)},
		{"-a", types.Num(-6)},
		{"a = 6", types.Bool(true)},
		{"a != 6", types.Bool(false)},
		{"a > 5 AND b = 'hi'", types.Bool(true)},
		{"a < 5 OR b = 'hi'", types.Bool(true)},
		{"NOT a = 6", types.Bool(false)},
		{"a BETWEEN 5 AND 7", types.Bool(true)},
		{"a NOT BETWEEN 5 AND 7", types.Bool(false)},
		{"a IN (1, 6, 9)", types.Bool(true)},
		{"a IN (1, 2)", types.Bool(false)},
		{"b IS NULL", types.Bool(false)},
		{"b IS NOT NULL", types.Bool(true)},
		{"b LIKE 'h%'", types.Bool(true)},
		{"b LIKE '_i'", types.Bool(true)},
		{"b LIKE 'x%'", types.Bool(false)},
		{"b || '!'", types.Str("hi!")},
		{"double(a)", types.Num(12)},
		{"t.a + 1", types.Num(7)},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, row, schema)
		if !types.Identical(got, c.want) {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestExprNullSemantics(t *testing.T) {
	schema := &Schema{Cols: []SchemaCol{{Name: "n"}}}
	row := Row{types.Null()}
	for _, src := range []string{"n = 1", "n + 1", "n BETWEEN 1 AND 2", "n IN (1,2)", "-n"} {
		got := evalStr(t, src, row, schema)
		if !got.IsNull() {
			t.Errorf("%q with NULL = %s, want NULL", src, got)
		}
	}
	// Three-valued AND/OR.
	if got := evalStr(t, "n = 1 AND 1 = 2", row, schema); !types.Identical(got, types.Bool(false)) {
		t.Errorf("NULL AND FALSE = %s", got)
	}
	if got := evalStr(t, "n = 1 OR 1 = 1", row, schema); !types.Identical(got, types.Bool(true)) {
		t.Errorf("NULL OR TRUE = %s", got)
	}
	if got := evalStr(t, "n = 1 OR 1 = 2", row, schema); !got.IsNull() {
		t.Errorf("NULL OR FALSE = %s", got)
	}
	if got := evalStr(t, "n IS NULL", row, schema); !types.Identical(got, types.Bool(true)) {
		t.Errorf("IS NULL = %s", got)
	}
}

func TestExprErrors(t *testing.T) {
	schema := &Schema{Cols: []SchemaCol{{Name: "a"}}}
	st, _ := sql.Parse("SELECT nope FROM t")
	if _, err := Compile(st.(*sql.Select).Items[0].Expr, schema, fakeEnv{}, nil); err == nil {
		t.Error("unknown column compiled")
	}
	// Ambiguous unqualified column.
	amb := &Schema{Cols: []SchemaCol{{Qualifier: "x", Name: "a"}, {Qualifier: "y", Name: "a"}}}
	st, _ = sql.Parse("SELECT a FROM t")
	if _, err := Compile(st.(*sql.Select).Items[0].Expr, amb, fakeEnv{}, nil); err == nil {
		t.Error("ambiguous column compiled")
	}
	// Division by zero errors at evaluation time.
	c := compileExpr(t, "1 / (a - 1)", schema, fakeEnv{}, nil)
	if _, err := c(Row{types.Num(1)}); err == nil {
		t.Error("division by zero succeeded")
	}
	// Unknown function errors at evaluation time.
	c = compileExpr(t, "mystery(a)", schema, fakeEnv{fns: map[string]func([]types.Value) (types.Value, error){}}, nil)
	if _, err := c(Row{types.Num(1)}); err == nil {
		t.Error("unknown function call succeeded")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l", false}, // no % — length must match
		{"hello", "h__l_x", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestBindParams(t *testing.T) {
	schema := &Schema{}
	st, _ := sql.Parse("SELECT ? + :x FROM t")
	c, err := Compile(st.(*sql.Select).Items[0].Expr, schema, fakeEnv{}, []types.Value{types.Num(2), types.Num(3)})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c(nil)
	if v.Float() != 5 {
		t.Errorf("bind sum = %s", v)
	}
	// Out-of-range bind is a compile error.
	if _, err := Compile(st.(*sql.Select).Items[0].Expr, schema, fakeEnv{}, []types.Value{types.Num(1)}); err == nil {
		t.Error("missing bind accepted")
	}
}

func TestAncillaryExpr(t *testing.T) {
	env := fakeEnv{anc: map[int64]types.Value{1: types.Num(42)}}
	st, _ := sql.Parse("SELECT Score(1) FROM t")
	c, err := Compile(st.(*sql.Select).Items[0].Expr, &Schema{}, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c(nil)
	if v.Float() != 42 {
		t.Errorf("Score(1) = %s", v)
	}
	st, _ = sql.Parse("SELECT Score(9) FROM t")
	c, _ = Compile(st.(*sql.Select).Items[0].Expr, &Schema{}, env, nil)
	v, _ = c(nil)
	if !v.IsNull() {
		t.Errorf("Score(9) = %s, want NULL", v)
	}
}

// ---------------------------------------------------------------------------
// Iterators

func sliceIter(rows ...Row) Iterator { return &Slice{Rows: rows} }

func TestFilterProjectLimit(t *testing.T) {
	it := &Limit{
		N: 2,
		Child: &Project{
			Exprs: []Compiled{func(r Row) (types.Value, error) { return types.Num(r[0].Float() * 10), nil }},
			Child: &Filter{
				Pred:  func(r Row) (types.Value, error) { return types.Bool(r[0].Float() > 1), nil },
				Child: sliceIter(Row{types.Num(1)}, Row{types.Num(2)}, Row{types.Num(3)}, Row{types.Num(4)}),
			},
		},
	}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Float() != 20 || rows[1][0].Float() != 30 {
		t.Errorf("pipeline = %v", rows)
	}
}

func TestSortAndDistinct(t *testing.T) {
	it := &Sort{
		Keys: []SortKey{{Expr: func(r Row) (types.Value, error) { return r[0], nil }, Desc: true}},
		Child: &Distinct{Child: sliceIter(
			Row{types.Num(2)}, Row{types.Num(1)}, Row{types.Num(2)}, Row{types.Num(3)},
		)},
	}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Float() != 3 || rows[2][0].Float() != 1 {
		t.Errorf("sorted distinct = %v", rows)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	outer := sliceIter(Row{types.Num(1)}, Row{types.Num(2)})
	join := &NestedLoopJoin{
		Outer: outer,
		Inner: func(o Row) (Iterator, error) {
			// Two inner rows per outer row, tagged with the outer value.
			v := o[0].Float()
			return sliceIter(Row{types.Num(v * 10)}, Row{types.Num(v * 100)}), nil
		},
	}
	rows, err := Drain(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(rows[0]) != 2 || rows[3][1].Float() != 200 {
		t.Errorf("join = %v", rows)
	}
}

func TestHashAggregate(t *testing.T) {
	rows := []Row{
		{types.Str("a"), types.Num(1)},
		{types.Str("a"), types.Num(3)},
		{types.Str("b"), types.Num(5)},
		{types.Str("b"), types.Null()}, // NULL ignored by aggregates
	}
	agg := &HashAggregate{
		Child:   sliceIter(rows...),
		GroupBy: []Compiled{func(r Row) (types.Value, error) { return r[0], nil }},
		Specs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggSum, Arg: func(r Row) (types.Value, error) { return r[1], nil }},
			{Kind: AggMin, Arg: func(r Row) (types.Value, error) { return r[1], nil }},
			{Kind: AggMax, Arg: func(r Row) (types.Value, error) { return r[1], nil }},
			{Kind: AggAvg, Arg: func(r Row) (types.Value, error) { return r[1], nil }},
		},
	}
	out, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %v", out)
	}
	a := out[0]
	if a[0].Text() != "a" || a[1].Int64() != 2 || a[2].Float() != 4 || a[3].Float() != 1 || a[4].Float() != 3 || a[5].Float() != 2 {
		t.Errorf("group a = %v", a)
	}
	b := out[1]
	if b[1].Int64() != 2 || b[2].Float() != 5 || b[5].Float() != 5 {
		t.Errorf("group b = %v", b)
	}
}

func TestHashAggregateEmptyGlobal(t *testing.T) {
	agg := &HashAggregate{
		Child: sliceIter(),
		Specs: []AggSpec{{Kind: AggCountStar}, {Kind: AggSum, Arg: func(Row) (types.Value, error) { return types.Num(1), nil }}},
	}
	out, err := Drain(agg)
	if err != nil || len(out) != 1 {
		t.Fatalf("out = %v, %v", out, err)
	}
	if out[0][0].Int64() != 0 || !out[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", out[0])
	}
}

func TestRIDFetch(t *testing.T) {
	p := storage.NewPager(storage.NewMemBackend(), 32)
	h, _ := storage.CreateHeap(p)
	var rids []int64
	for i := 0; i < 5; i++ {
		rid, _ := h.Insert(types.EncodeRow(nil, []types.Value{types.Int(int64(i))}))
		rids = append(rids, rid.Int64())
	}
	it := &RIDFetch{Heap: h, Src: SliceRIDSource([]int64{rids[3], rids[1]})}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int64() != 3 || rows[1][0].Int64() != 1 {
		t.Errorf("rid fetch = %v", rows)
	}
	// RID pseudo-column appended.
	if rows[0][1].Int64() != rids[3] {
		t.Error("ROWID column missing")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := &Schema{Cols: []SchemaCol{
		{Qualifier: "e", Name: "id"},
		{Qualifier: "d", Name: "id"},
		{Qualifier: "e", Name: "name"},
	}}
	if i, err := s.Resolve("d", "id"); err != nil || i != 1 {
		t.Errorf("qualified resolve = %d, %v", i, err)
	}
	if i, err := s.Resolve("", "name"); err != nil || i != 2 {
		t.Errorf("unqualified resolve = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "id"); err == nil {
		t.Error("ambiguous resolve succeeded")
	}
	if _, err := s.Resolve("x", "id"); err == nil {
		t.Error("bad qualifier resolve succeeded")
	}
	joined := Concat(s, &Schema{Cols: []SchemaCol{{Qualifier: "z", Name: "v"}}})
	if i, err := joined.Resolve("z", "v"); err != nil || i != 3 {
		t.Errorf("concat resolve = %d, %v", i, err)
	}
}

func TestTruthy(t *testing.T) {
	cases := map[string]bool{}
	_ = cases
	if Truthy(types.Null()) || Truthy(types.Num(0)) || Truthy(types.Bool(false)) || Truthy(types.Str("x")) {
		t.Error("false positives")
	}
	if !Truthy(types.Num(1)) || !Truthy(types.Num(-2)) || !Truthy(types.Bool(true)) {
		t.Error("false negatives")
	}
}

func TestDrainClosesOnce(t *testing.T) {
	// Close must be idempotent for all combinators over a Slice.
	its := []Iterator{
		&Filter{Child: sliceIter(), Pred: func(Row) (types.Value, error) { return types.Bool(true), nil }},
		&Project{Child: sliceIter()},
		&Limit{Child: sliceIter(), N: 1},
		&Sort{Child: sliceIter()},
		&Distinct{Child: sliceIter()},
	}
	for i, it := range its {
		if _, err := Drain(it); err != nil {
			t.Errorf("iterator %d drain: %v", i, err)
		}
		if err := it.Close(); err != nil {
			t.Errorf("iterator %d double close: %v", i, err)
		}
	}
}

func BenchmarkFilterPipeline(b *testing.B) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{types.Num(float64(i))}
	}
	pred := func(r Row) (types.Value, error) { return types.Bool(int(r[0].Float())%2 == 0), nil }
	b.Run("chunk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := &Filter{Child: &Slice{Rows: rows}, Pred: pred}
			c := NewChunk(0)
			n := 0
			for {
				if err := it.NextBatch(c); err != nil {
					b.Fatal(err)
				}
				if c.Len() == 0 {
					break
				}
				n += c.Len()
			}
			if n != 500 {
				b.Fatal(fmt.Sprint("bad count ", n))
			}
		}
	})
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := &RowAdapter{Child: &Filter{Child: &Slice{Rows: rows}, Pred: pred}}
			n := 0
			for {
				r, err := a.Next()
				if err != nil {
					b.Fatal(err)
				}
				if r == nil {
					break
				}
				n++
			}
			if n != 500 {
				b.Fatal(fmt.Sprint("bad count ", n))
			}
		}
	})
}

// BenchmarkRIDFetchPath is the row-adapter vs chunk comparison on the
// table-access stage, where the batch protocol pays off: row mode does
// one pager pin/unpin per row, chunk mode one page-sorted batched read
// per chunk.
func BenchmarkRIDFetchPath(b *testing.B) {
	p := storage.NewPager(storage.NewMemBackend(), 512)
	h, err := storage.CreateHeap(p)
	if err != nil {
		b.Fatal(err)
	}
	const n = 8192
	rids := make([]int64, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(types.EncodeRow(nil, []types.Value{types.Int(int64(i)), types.Str("payload")}))
		if err != nil {
			b.Fatal(err)
		}
		rids[i] = rid.Int64()
	}
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := &RIDFetch{Heap: h, Src: SliceRIDSource(rids), PerRow: true}
			rows, err := DrainRows(it)
			if err != nil || len(rows) != n {
				b.Fatal(len(rows), err)
			}
		}
	})
	for _, batch := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("chunk-%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := &RIDFetch{Heap: h, Src: SliceRIDSource(rids)}
				c := NewChunk(batch)
				got := 0
				for {
					if err := it.NextBatch(c); err != nil {
						b.Fatal(err)
					}
					if c.Len() == 0 {
						break
					}
					got += c.Len()
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
				if got != n {
					b.Fatal("bad count ", got)
				}
			}
		})
	}
}
