// Package exec implements the engine's batch-first executor: row
// schemas, a compiling expression evaluator, and the chunk-at-a-time
// operators the planner assembles — table scans, filters, projections,
// sorts, joins, RID lookups, and the pipelined domain-index scan that
// drives a cartridge's ODCIIndexStart/Fetch/Close routines as a row
// source. Operators exchange bounded Chunks of rows rather than single
// tuples, so an ODCI Fetch batch flows through the plan tree intact; a
// RowAdapter restores row-at-a-time access where a caller needs it.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Row is one tuple flowing through the executor.
type Row = []types.Value

// SchemaCol names one column of an iterator's output, optionally
// qualified by the table alias it came from.
type SchemaCol struct {
	Qualifier string // table name or alias, may be ""
	Name      string
}

// Schema describes the columns of rows produced by an iterator.
type Schema struct {
	Cols []SchemaCol
}

// RowIDColumn is the name of the pseudo-column carrying a row's RID.
// Table scans append it to every row, like Oracle's ROWID.
const RowIDColumn = "ROWID"

// Resolve returns the position of the (possibly qualified) column name.
// Unqualified names must be unambiguous across qualifiers.
func (s *Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("exec: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qualifier != "" {
			return 0, fmt.Errorf("exec: unknown column %s.%s", qualifier, name)
		}
		return 0, fmt.Errorf("exec: unknown column %q", name)
	}
	return found, nil
}

// Concat merges two schemas (for joins).
func Concat(a, b *Schema) *Schema {
	out := &Schema{Cols: make([]SchemaCol, 0, len(a.Cols)+len(b.Cols))}
	out.Cols = append(out.Cols, a.Cols...)
	out.Cols = append(out.Cols, b.Cols...)
	return out
}

// Iterator is the batch executor interface. NextBatch resets c and
// fills it with the next run of rows; a chunk left empty signals end of
// stream, so producers must internally skip empty mid-stream batches.
// Close releases resources and is safe to call more than once.
type Iterator interface {
	NextBatch(c *Chunk) error
	Close() error
}
