package types

import "strings"

// Compare orders two non-NULL values of the same comparable kind.
// It returns (-1|0|+1, true) when the pair is comparable, and (0, false)
// when either side is NULL or the kinds are incompatible — the SQL
// "unknown" outcome. Numbers compare numerically, strings
// lexicographically (byte order, as Oracle does with BINARY sorting),
// booleans with FALSE < TRUE, LOB locators by id, and arrays
// element-wise (shorter prefix first). Objects are not ordered.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindNumber, KindLOB:
		switch {
		case a.num < b.num:
			return -1, true
		case a.num > b.num:
			return 1, true
		}
		return 0, true
	case KindString:
		return strings.Compare(a.str, b.str), true
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, true
		case a.b && !b.b:
			return 1, true
		}
		return 0, true
	case KindArray:
		n := len(a.arr)
		if len(b.arr) < n {
			n = len(b.arr)
		}
		for i := 0; i < n; i++ {
			c, ok := Compare(a.arr[i], b.arr[i])
			if !ok {
				return 0, false
			}
			if c != 0 {
				return c, true
			}
		}
		switch {
		case len(a.arr) < len(b.arr):
			return -1, true
		case len(a.arr) > len(b.arr):
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under SQL semantics
// (NULL equals nothing, including NULL). Objects compare by type name and
// element-wise attribute equality.
func Equal(a, b Value) bool {
	if a.kind == KindObject && b.kind == KindObject {
		if !strings.EqualFold(a.obj.TypeName, b.obj.TypeName) || len(a.obj.Attrs) != len(b.obj.Attrs) {
			return false
		}
		for i := range a.obj.Attrs {
			if !Equal(a.obj.Attrs[i], b.obj.Attrs[i]) {
				return false
			}
		}
		return true
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Identical reports whether two values are indistinguishable, treating
// NULL as identical to NULL. It is the equality used by storage-level
// round-trip checks and tests, not by SQL predicates.
func Identical(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	if a.kind != b.kind {
		return false
	}
	if a.kind == KindObject {
		if !strings.EqualFold(a.obj.TypeName, b.obj.TypeName) || len(a.obj.Attrs) != len(b.obj.Attrs) {
			return false
		}
		for i := range a.obj.Attrs {
			if !Identical(a.obj.Attrs[i], b.obj.Attrs[i]) {
				return false
			}
		}
		return true
	}
	if a.kind == KindArray {
		if len(a.arr) != len(b.arr) {
			return false
		}
		for i := range a.arr {
			if !Identical(a.arr[i], b.arr[i]) {
				return false
			}
		}
		return true
	}
	return Equal(a, b)
}

// Less is a total order used for sorting rows: NULLs sort last, mixed
// kinds sort by kind id, and otherwise Compare decides. It exists so that
// ORDER BY produces a deterministic order even on heterogeneous input.
func Less(a, b Value) bool {
	if a.kind == KindNull {
		return false // NULLs last
	}
	if b.kind == KindNull {
		return true
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	c, ok := Compare(a, b)
	return ok && c < 0
}
