package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindNumber: "NUMBER",
		KindString: "VARCHAR2",
		KindBool:   "BOOLEAN",
		KindLOB:    "LOB",
		KindObject: "OBJECT",
		KindArray:  "VARRAY",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"VARCHAR2", KindString},
		{"varchar", KindString},
		{" Integer ", KindNumber},
		{"NUMBER", KindNumber},
		{"BOOLEAN", KindBool},
		{"BLOB", KindLOB},
		{"VARRAY", KindArray},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("GEOMETRYZZZ"); err == nil {
		t.Error("ParseKind accepted unknown type name")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Fatalf("zero Value should be NULL, got %s", v)
	}
}

func TestAccessors(t *testing.T) {
	if Num(3.5).Float() != 3.5 {
		t.Error("Num/Float mismatch")
	}
	if Int(42).Int64() != 42 {
		t.Error("Int/Int64 mismatch")
	}
	if Str("abc").Text() != "abc" {
		t.Error("Str/Text mismatch")
	}
	if !Bool(true).Truth() || Bool(false).Truth() || Null().Truth() {
		t.Error("Truth semantics wrong")
	}
	if LOB(7).LOBID() != 7 || Num(7).LOBID() != 0 {
		t.Error("LOBID semantics wrong")
	}
	o := Obj("POINT", Num(1), Num(2))
	if o.Object() == nil || o.Object().TypeName != "POINT" || len(o.Object().Attrs) != 2 {
		t.Error("object accessors wrong")
	}
	a := Arr(Str("x"), Str("y"))
	if len(a.Elems()) != 2 || a.Elems()[1].Text() != "y" {
		t.Error("array accessors wrong")
	}
	if Num(1).Object() != nil || Num(1).Elems() != nil {
		t.Error("cross-kind accessors should return zero values")
	}
}

func TestValueString(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Num(2.5), "2.5"},
		{Str("hi"), "hi"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{LOB(9), "LOB(9)"},
		{Obj("PT", Num(1), Num(2)), "PT(1, 2)"},
		{Arr(Num(1), Str("a")), "VARRAY(1, a)"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestCompareBasics(t *testing.T) {
	cmp := func(a, b Value) int {
		c, ok := Compare(a, b)
		if !ok {
			t.Fatalf("Compare(%s,%s) not comparable", a, b)
		}
		return c
	}
	if cmp(Num(1), Num(2)) != -1 || cmp(Num(2), Num(1)) != 1 || cmp(Num(2), Num(2)) != 0 {
		t.Error("number comparison wrong")
	}
	if cmp(Str("a"), Str("b")) != -1 || cmp(Str("b"), Str("b")) != 0 {
		t.Error("string comparison wrong")
	}
	if cmp(Bool(false), Bool(true)) != -1 {
		t.Error("bool comparison wrong")
	}
	if cmp(Arr(Num(1)), Arr(Num(1), Num(2))) != -1 {
		t.Error("array prefix comparison wrong")
	}
}

func TestCompareNullAndMixed(t *testing.T) {
	if _, ok := Compare(Null(), Num(1)); ok {
		t.Error("NULL comparison should be unknown")
	}
	if _, ok := Compare(Num(1), Str("1")); ok {
		t.Error("mixed-kind comparison should be unknown")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL must not equal NULL under SQL semantics")
	}
	if !Identical(Null(), Null()) {
		t.Error("NULL must be Identical to NULL")
	}
}

func TestEqualObjects(t *testing.T) {
	a := Obj("PT", Num(1), Str("x"))
	b := Obj("pt", Num(1), Str("x"))
	c := Obj("PT", Num(1), Str("y"))
	if !Equal(a, b) {
		t.Error("case-insensitive object type equality failed")
	}
	if Equal(a, c) {
		t.Error("objects with different attrs reported equal")
	}
}

func TestLessTotalOrder(t *testing.T) {
	vs := []Value{Null(), Str("b"), Num(3), Num(1), Str("a")}
	SortValues(vs)
	// Numbers sort before strings (kind order), NULL last.
	want := []Value{Num(1), Num(3), Str("a"), Str("b"), Null()}
	for i := range vs {
		if !Identical(vs[i], want[i]) {
			t.Fatalf("sorted[%d] = %s, want %s", i, vs[i], want[i])
		}
	}
}

func TestTypeDescValidate(t *testing.T) {
	td := &TypeDesc{
		Name:      "POINT",
		AttrNames: []string{"X", "Y"},
		AttrKinds: []Kind{KindNumber, KindNumber},
	}
	if td.AttrIndex("y") != 1 || td.AttrIndex("z") != -1 {
		t.Error("AttrIndex wrong")
	}
	if err := td.Validate(Obj("POINT", Num(1), Num(2))); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	if err := td.Validate(Obj("POINT", Num(1), Num(2), Num(3))); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := td.Validate(Obj("POINT", Num(1), Str("x"))); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := td.Validate(Obj("POINT", Num(1), Null())); err != nil {
		t.Errorf("NULL attribute rejected: %v", err)
	}
	if err := td.Validate(Num(1)); err == nil {
		t.Error("non-object accepted")
	}
}

// genValue builds a pseudo-random scalar value from quick-check inputs.
func genValue(sel uint8, f float64, s string, b bool) Value {
	switch sel % 5 {
	case 0:
		return Null()
	case 1:
		if math.IsNaN(f) {
			f = 0
		}
		return Num(f)
	case 2:
		return Str(s)
	case 3:
		return Bool(b)
	default:
		return LOB(int64(f))
	}
}

func TestQuickCompareAntisymmetry(t *testing.T) {
	prop := func(s1, s2 uint8, f1, f2 float64, a, b string, b1, b2 bool) bool {
		x := genValue(s1, f1, a, b1)
		y := genValue(s2, f2, b, b2)
		cxy, ok1 := Compare(x, y)
		cyx, ok2 := Compare(y, x)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return cxy == -cyx
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyOrderMatchesCompare(t *testing.T) {
	prop := func(f1, f2 float64, s1, s2 string) bool {
		if math.IsNaN(f1) || math.IsNaN(f2) {
			return true
		}
		// Numbers.
		k1 := EncodeKey(nil, Num(f1))
		k2 := EncodeKey(nil, Num(f2))
		c, _ := Compare(Num(f1), Num(f2))
		if sign(bytesCompare(k1, k2)) != sign(c) {
			return false
		}
		// Strings.
		k1 = EncodeKey(nil, Str(s1))
		k2 = EncodeKey(nil, Str(s2))
		c, _ = Compare(Str(s1), Str(s2))
		return sign(bytesCompare(k1, k2)) == sign(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return sign(len(a) - len(b))
}

func TestKeyNullSortsLast(t *testing.T) {
	kn := EncodeKey(nil, Null())
	for _, v := range []Value{Num(math.MaxFloat64), Str("\xff\xff"), Bool(true), LOB(math.MaxInt64)} {
		if bytesCompare(EncodeKey(nil, v), kn) >= 0 {
			t.Errorf("key for %s does not sort before NULL key", v)
		}
	}
}

func TestCompositeKeyOrder(t *testing.T) {
	k1 := CompositeKey(Str("abc"), Num(1))
	k2 := CompositeKey(Str("abc"), Num(2))
	k3 := CompositeKey(Str("abd"), Num(0))
	if bytesCompare(k1, k2) >= 0 || bytesCompare(k2, k3) >= 0 {
		t.Error("composite keys out of order")
	}
	// Prefix safety: "ab" < "abc" even though one is a prefix.
	if bytesCompare(CompositeKey(Str("ab")), CompositeKey(Str("abc"))) >= 0 {
		t.Error("prefix string keys out of order")
	}
	// Embedded zero bytes must not break ordering.
	if bytesCompare(CompositeKey(Str("a\x00b")), CompositeKey(Str("a\x00c"))) >= 0 {
		t.Error("embedded-zero string keys out of order")
	}
}
