package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	rows := [][]Value{
		{},
		{Null()},
		{Num(0), Num(-1.5), Num(math.MaxFloat64), Num(math.SmallestNonzeroFloat64)},
		{Str(""), Str("hello"), Str("emb\x00zero"), Str("日本語")},
		{Bool(true), Bool(false)},
		{LOB(0), LOB(-5), LOB(1 << 40)},
		{Obj("POINT", Num(3), Num(4))},
		{Obj("NESTED", Obj("PT", Num(1)), Arr(Str("a")))},
		{Arr(), Arr(Num(1), Str("two"), Null())},
		{Num(1), Str("mixed"), Null(), Bool(true), Arr(Num(2))},
	}
	for i, row := range rows {
		enc := EncodeRow(nil, row)
		dec, n, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: decode error: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("row %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if len(dec) != len(row) {
			t.Fatalf("row %d: got %d cols, want %d", i, len(dec), len(row))
		}
		for j := range row {
			if !Identical(dec[j], row[j]) {
				t.Errorf("row %d col %d: got %s, want %s", i, j, dec[j], row[j])
			}
		}
	}
}

func TestDecodeRowConcatenated(t *testing.T) {
	r1 := []Value{Num(1), Str("a")}
	r2 := []Value{Num(2), Str("b")}
	buf := EncodeRow(nil, r1)
	buf = EncodeRow(buf, r2)
	d1, n, err := DecodeRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := DecodeRow(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if !Identical(d1[1], Str("a")) || !Identical(d2[1], Str("b")) {
		t.Error("concatenated rows decoded wrong")
	}
}

func TestDecodeRowCorrupt(t *testing.T) {
	good := EncodeRow(nil, []Value{Str("hello"), Num(42)})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeRow(good[:cut]); err == nil {
			// A truncation that still parses must at least not panic; but
			// truncating inside a value should error. cut==1 may decode a
			// shorter valid prefix only if the header says 0 cols, which it
			// does not here.
			t.Errorf("truncated row (len %d) decoded without error", cut)
		}
	}
	if _, _, err := DecodeRow(nil); err == nil {
		t.Error("empty buffer decoded")
	}
	if _, _, err := DecodeRow([]byte{0x01, 0xEE}); err == nil {
		t.Error("unknown tag decoded")
	}
}

func TestQuickRowRoundTrip(t *testing.T) {
	prop := func(f float64, s string, b bool, n int8, sel uint8) bool {
		if math.IsNaN(f) {
			f = 0
		}
		row := []Value{
			genValue(sel, f, s, b),
			Num(float64(n)),
			Str(s),
			Arr(Num(f), Str(s), Bool(b)),
			Obj("T", Str(s), Null()),
		}
		enc := EncodeRow(nil, row)
		dec, consumed, err := DecodeRow(enc)
		if err != nil || consumed != len(enc) || len(dec) != len(row) {
			return false
		}
		for i := range row {
			if !Identical(dec[i], row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNaNNumberRoundTrip(t *testing.T) {
	enc := EncodeRow(nil, []Value{Num(math.NaN())})
	dec, _, err := DecodeRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(dec[0].Float()) {
		t.Error("NaN did not round-trip")
	}
}

func BenchmarkEncodeRow(b *testing.B) {
	row := []Value{Num(12345), Str("benchmark row with a medium string"), Bool(true), Arr(Num(1), Num(2), Num(3))}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeRow(buf[:0], row)
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	row := []Value{Num(12345), Str("benchmark row with a medium string"), Bool(true), Arr(Num(1), Num(2), Num(3))}
	enc := EncodeRow(nil, row)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRow(enc); err != nil {
			b.Fatal(err)
		}
	}
}
