package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary row codec. Rows ([]Value) are encoded as a count followed by
// tag-length-value entries. The format is self-describing so heap pages,
// index payloads and LOB-resident index blocks all share it.
//
//	row     := uvarint(ncols) value*
//	value   := tag payload
//	tag     := byte(Kind)
//	NUMBER  := 8-byte big-endian float bits
//	STRING  := uvarint(len) bytes
//	BOOL    := byte(0|1)
//	LOB     := varint(id)
//	OBJECT  := uvarint(len(name)) name uvarint(nattrs) value*
//	ARRAY   := uvarint(nelems) value*

// EncodeRow appends the encoding of row to dst and returns the result.
func EncodeRow(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = encodeValue(dst, v)
	}
	return dst
}

func encodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindNumber:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.num))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindLOB:
		dst = binary.AppendVarint(dst, int64(v.num))
	case KindObject:
		dst = binary.AppendUvarint(dst, uint64(len(v.obj.TypeName)))
		dst = append(dst, v.obj.TypeName...)
		dst = binary.AppendUvarint(dst, uint64(len(v.obj.Attrs)))
		for _, a := range v.obj.Attrs {
			dst = encodeValue(dst, a)
		}
	case KindArray:
		dst = binary.AppendUvarint(dst, uint64(len(v.arr)))
		for _, e := range v.arr {
			dst = encodeValue(dst, e)
		}
	}
	return dst
}

// DecodeRow decodes a row previously produced by EncodeRow. It returns the
// row and the number of bytes consumed.
func DecodeRow(src []byte) ([]Value, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: corrupt row header")
	}
	if n > uint64(len(src)) {
		return nil, 0, fmt.Errorf("types: implausible column count %d", n)
	}
	off := sz
	row := make([]Value, n)
	for i := range row {
		v, consumed, err := decodeValue(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: column %d: %w", i, err)
		}
		row[i] = v
		off += consumed
	}
	return row, off, nil
}

func decodeValue(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("truncated value")
	}
	k := Kind(src[0])
	off := 1
	switch k {
	case KindNull:
		return Null(), off, nil
	case KindNumber:
		if len(src) < off+8 {
			return Value{}, 0, fmt.Errorf("truncated NUMBER")
		}
		bits := binary.BigEndian.Uint64(src[off:])
		return Num(math.Float64frombits(bits)), off + 8, nil
	case KindString:
		n, sz := binary.Uvarint(src[off:])
		if sz <= 0 || uint64(len(src)) < uint64(off+sz)+n {
			return Value{}, 0, fmt.Errorf("truncated VARCHAR2")
		}
		off += sz
		return Str(string(src[off : off+int(n)])), off + int(n), nil
	case KindBool:
		if len(src) < off+1 {
			return Value{}, 0, fmt.Errorf("truncated BOOLEAN")
		}
		return Bool(src[off] != 0), off + 1, nil
	case KindLOB:
		id, sz := binary.Varint(src[off:])
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("truncated LOB locator")
		}
		return LOB(id), off + sz, nil
	case KindObject:
		n, sz := binary.Uvarint(src[off:])
		if sz <= 0 || uint64(len(src)) < uint64(off+sz)+n {
			return Value{}, 0, fmt.Errorf("truncated object type name")
		}
		off += sz
		name := string(src[off : off+int(n)])
		off += int(n)
		nattrs, sz := binary.Uvarint(src[off:])
		if sz <= 0 || nattrs > uint64(len(src)) {
			return Value{}, 0, fmt.Errorf("truncated object attr count")
		}
		off += sz
		attrs := make([]Value, nattrs)
		for i := range attrs {
			v, consumed, err := decodeValue(src[off:])
			if err != nil {
				return Value{}, 0, err
			}
			attrs[i] = v
			off += consumed
		}
		return Obj(name, attrs...), off, nil
	case KindArray:
		nelems, sz := binary.Uvarint(src[off:])
		if sz <= 0 || nelems > uint64(len(src)) {
			return Value{}, 0, fmt.Errorf("truncated array length")
		}
		off += sz
		elems := make([]Value, nelems)
		for i := range elems {
			v, consumed, err := decodeValue(src[off:])
			if err != nil {
				return Value{}, 0, err
			}
			elems[i] = v
			off += consumed
		}
		return Arr(elems...), off, nil
	default:
		return Value{}, 0, fmt.Errorf("unknown value tag %d", src[0])
	}
}

// EncodeKey encodes a single value as an order-preserving byte key: for
// values a, b of the same kind, Compare(a,b) < 0 iff EncodeKey(a) sorts
// before EncodeKey(b) bytewise. This is what B+-tree and IOT keys use.
// NULLs sort after everything (Oracle default). Strings are suffixed with
// a 0x00 terminator after escaping embedded zeros so that prefixes order
// correctly.
func EncodeKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0xFF)
	case KindNumber:
		bits := math.Float64bits(v.num)
		// Flip so that negative floats order below positives bytewise.
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		dst = append(dst, 0x10)
		return binary.BigEndian.AppendUint64(dst, bits)
	case KindString:
		dst = append(dst, 0x20)
		for i := 0; i < len(v.str); i++ {
			c := v.str[i]
			if c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, 0x00, 0x00)
	case KindBool:
		if v.b {
			return append(dst, 0x30, 1)
		}
		return append(dst, 0x30, 0)
	case KindLOB:
		dst = append(dst, 0x40)
		return binary.BigEndian.AppendUint64(dst, uint64(int64(v.num))^(1<<63))
	case KindArray:
		dst = append(dst, 0x50)
		for _, e := range v.arr {
			dst = append(dst, 0x01)
			dst = EncodeKey(dst, e)
		}
		return append(dst, 0x00)
	default:
		// Objects are not orderable; give them a stable bucket so maps of
		// keys still work, and rely on RID tiebreaks.
		return append(dst, 0x60)
	}
}

// CompositeKey encodes several values into one order-preserving key.
func CompositeKey(vs ...Value) []byte {
	var dst []byte
	for _, v := range vs {
		dst = EncodeKey(dst, v)
	}
	return dst
}
