// Package types implements the SQL value system of the engine: typed
// values (NULL, NUMBER, VARCHAR2, BOOLEAN, LOB locators, OBJECT instances
// and VARRAY collections), three-valued comparison semantics, and a compact
// binary codec used by the storage layer and the index implementations.
//
// The set of kinds mirrors the data types used throughout the paper:
// scalar columns (NUMBER, VARCHAR2), object type columns (OBJECT),
// collection columns (ARRAY, for VARRAY/nested tables) and LOB columns.
package types

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	// KindNumber is the NUMBER type (stored as float64; integral values
	// round-trip exactly up to 2^53).
	KindNumber
	// KindString is the VARCHAR2 type.
	KindString
	// KindBool is the BOOLEAN type returned by operators and predicates.
	KindBool
	// KindLOB is a large-object locator referencing out-of-line data
	// managed by the LOB store (see internal/loblib).
	KindLOB
	// KindObject is an instance of a user-defined object type.
	KindObject
	// KindArray is a VARRAY / nested-table collection value.
	KindArray
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindNumber:
		return "NUMBER"
	case KindString:
		return "VARCHAR2"
	case KindBool:
		return "BOOLEAN"
	case KindLOB:
		return "LOB"
	case KindObject:
		return "OBJECT"
	case KindArray:
		return "VARRAY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind. It accepts the spellings used
// in the paper's examples (VARCHAR, VARCHAR2, INTEGER, NUMBER, ...).
func ParseKind(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "NUMBER", "INTEGER", "INT", "FLOAT", "DOUBLE":
		return KindNumber, nil
	case "VARCHAR", "VARCHAR2", "CHAR", "TEXT", "STRING", "CLOB":
		return KindString, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	case "LOB", "BLOB":
		return KindLOB, nil
	case "OBJECT":
		return KindObject, nil
	case "VARRAY", "ARRAY":
		return KindArray, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Object is an instance of a user-defined object type: a type name plus a
// fixed list of attribute values. Attribute order is positional and matches
// the registered TypeDesc.
type Object struct {
	TypeName string
	Attrs    []Value
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	num  float64
	str  string
	b    bool
	obj  *Object
	arr  []Value
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Num returns a NUMBER value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns a NUMBER value holding an integer.
func Int(i int64) Value { return Value{kind: KindNumber, num: float64(i)} }

// Str returns a VARCHAR2 value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Bool returns a BOOLEAN value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// LOB returns a LOB locator value referencing the given LOB id.
func LOB(id int64) Value { return Value{kind: KindLOB, num: float64(id)} }

// Obj returns an OBJECT value.
func Obj(typeName string, attrs ...Value) Value {
	return Value{kind: KindObject, obj: &Object{TypeName: typeName, Attrs: attrs}}
}

// Arr returns a VARRAY value with the given elements.
func Arr(elems ...Value) Value {
	return Value{kind: KindArray, arr: elems}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Float returns the NUMBER payload; it is 0 for non-numbers.
func (v Value) Float() float64 { return v.num }

// Int64 returns the NUMBER payload truncated to an integer.
func (v Value) Int64() int64 { return int64(v.num) }

// Text returns the VARCHAR2 payload; it is "" for non-strings.
func (v Value) Text() string { return v.str }

// Truth returns the BOOLEAN payload; NULL and non-booleans are false.
func (v Value) Truth() bool { return v.kind == KindBool && v.b }

// LOBID returns the LOB locator id, or 0 if the value is not a LOB.
func (v Value) LOBID() int64 {
	if v.kind != KindLOB {
		return 0
	}
	return int64(v.num)
}

// Object returns the object payload, or nil.
func (v Value) Object() *Object {
	if v.kind != KindObject {
		return nil
	}
	return v.obj
}

// Elems returns the collection elements, or nil for non-arrays. The
// returned slice must not be mutated.
func (v Value) Elems() []Value {
	if v.kind != KindArray {
		return nil
	}
	return v.arr
}

// String renders the value for display (REPL output, errors, tests).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindNumber:
		if v.num == math.Trunc(v.num) && math.Abs(v.num) < 1e15 {
			return strconv.FormatInt(int64(v.num), 10)
		}
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindString:
		return v.str
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case KindLOB:
		return fmt.Sprintf("LOB(%d)", int64(v.num))
	case KindObject:
		parts := make([]string, len(v.obj.Attrs))
		for i, a := range v.obj.Attrs {
			parts[i] = a.String()
		}
		return v.obj.TypeName + "(" + strings.Join(parts, ", ") + ")"
	case KindArray:
		parts := make([]string, len(v.arr))
		for i, e := range v.arr {
			parts[i] = e.String()
		}
		return "VARRAY(" + strings.Join(parts, ", ") + ")"
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// TypeDesc describes a user-defined object type: its name and attribute
// names/kinds. It lives in the catalog; the types package only defines the
// shape so that values can be validated against it.
type TypeDesc struct {
	Name      string
	AttrNames []string
	AttrKinds []Kind
}

// AttrIndex returns the positional index of the named attribute
// (case-insensitive), or -1.
func (td *TypeDesc) AttrIndex(name string) int {
	for i, n := range td.AttrNames {
		if strings.EqualFold(n, name) {
			return i
		}
	}
	return -1
}

// Validate checks that an object value conforms to the descriptor.
func (td *TypeDesc) Validate(v Value) error {
	o := v.Object()
	if o == nil {
		return fmt.Errorf("types: value %s is not an object", v)
	}
	if !strings.EqualFold(o.TypeName, td.Name) {
		return fmt.Errorf("types: object of type %s where %s expected", o.TypeName, td.Name)
	}
	if len(o.Attrs) != len(td.AttrKinds) {
		return fmt.Errorf("types: object %s has %d attrs, want %d", td.Name, len(o.Attrs), len(td.AttrKinds))
	}
	for i, a := range o.Attrs {
		if a.IsNull() {
			continue
		}
		if a.Kind() != td.AttrKinds[i] {
			return fmt.Errorf("types: attr %s of %s has kind %s, want %s",
				td.AttrNames[i], td.Name, a.Kind(), td.AttrKinds[i])
		}
	}
	return nil
}

// SortValues sorts values in ascending Compare order, NULLs last (Oracle's
// default ordering).
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool {
		return Less(vs[i], vs[j])
	})
}
