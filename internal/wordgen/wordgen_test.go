package wordgen

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 1000).Document(50)
	b := New(42, 1000).Document(50)
	if a != b {
		t.Error("same seed produced different documents")
	}
	c := New(43, 1000).Document(50)
	if a == c {
		t.Error("different seeds produced identical documents")
	}
}

func TestDocumentShape(t *testing.T) {
	g := New(7, 500)
	doc := g.Document(30)
	words := strings.Fields(doc)
	if len(words) != 30 {
		t.Fatalf("words = %d", len(words))
	}
	for _, w := range words {
		if !strings.HasPrefix(w, "w") {
			t.Fatalf("bad token %q", w)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(1, 2000)
	counts := map[string]int{}
	for _, d := range g.Corpus(500, 40) {
		for _, w := range strings.Fields(d) {
			counts[w]++
		}
	}
	// The most common token should dominate a mid-rank token heavily.
	if counts[Word(0)] < 10*counts[Word(200)]+1 {
		t.Errorf("no Zipf skew: rank0=%d rank200=%d", counts[Word(0)], counts[Word(200)])
	}
	// Rare words exist but are rare.
	rare := g.RareWord(0)
	if counts[rare] > counts[Word(0)]/10 {
		t.Errorf("rare word too common: %d", counts[rare])
	}
}

func TestDocumentWith(t *testing.T) {
	g := New(3, 100)
	doc := g.DocumentWith(10, "needleterm", "otherterm")
	if !strings.Contains(doc, "needleterm") || !strings.Contains(doc, "otherterm") {
		t.Error("extra tokens missing")
	}
	if g.DocumentWith(5) == "" {
		t.Error("empty extra list broke generation")
	}
}

func TestWordNaming(t *testing.T) {
	if Word(3) != "w00003" {
		t.Errorf("Word(3) = %q", Word(3))
	}
	g := New(1, 100)
	if g.CommonWord(0) != Word(0) || g.RareWord(0) != Word(99) {
		t.Error("common/rare word ranks wrong")
	}
}
