// Package wordgen generates synthetic document corpora with Zipfian token
// frequencies. The paper's text experiments ran on real document sets we
// do not have; a Zipf-distributed vocabulary preserves the property that
// matters to an inverted index — a few very common tokens and a long tail
// of rare ones — so query selectivity spans the same range.
package wordgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generator produces deterministic pseudo-random documents.
type Generator struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab int
}

// New returns a generator over a vocabulary of vocab tokens, seeded
// deterministically.
func New(seed int64, vocab int) *Generator {
	if vocab < 2 {
		vocab = 2
	}
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		rng:   rng,
		zipf:  rand.NewZipf(rng, 1.2, 1, uint64(vocab-1)),
		vocab: vocab,
	}
}

// Word returns the token with the given frequency rank (0 = most common).
func Word(rank int) string { return fmt.Sprintf("w%05d", rank) }

// RareWord returns a token from the rare end of the vocabulary (rank
// counted back from the tail), for low-selectivity queries.
func (g *Generator) RareWord(back int) string { return Word(g.vocab - 1 - back) }

// CommonWord returns a token from the common end (rank 0 is the most
// frequent), for high-selectivity queries.
func (g *Generator) CommonWord(rank int) string { return Word(rank) }

// Document returns a document of n Zipf-sampled tokens.
func (g *Generator) Document(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(Word(int(g.zipf.Uint64())))
	}
	return sb.String()
}

// DocumentWith returns a document of n sampled tokens guaranteed to
// contain each of the given extra tokens once.
func (g *Generator) DocumentWith(n int, extra ...string) string {
	doc := g.Document(n)
	if len(extra) == 0 {
		return doc
	}
	return doc + " " + strings.Join(extra, " ")
}

// Corpus returns nDocs documents of wordsPerDoc tokens each.
func (g *Generator) Corpus(nDocs, wordsPerDoc int) []string {
	out := make([]string, nDocs)
	for i := range out {
		out[i] = g.Document(wordsPerDoc)
	}
	return out
}
