// Package txn provides the engine's transaction facilities: per-transaction
// undo logs with savepoints (statement-level atomicity and rollback),
// database events (handlers fired at commit/rollback, the mechanism §5 of
// the paper proposes for keeping externally-stored index data consistent),
// and a table-level lock manager.
//
// Because domain index data stored inside the database is modified through
// the same heap/B-tree primitives as base tables, its changes land on the
// same undo log and roll back together with the base table — the paper's
// "transactional semantics are automatically ensured" property. Index data
// stored outside the database gets no such treatment; registering commit /
// rollback event handlers is the escape hatch.
package txn

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Undoer reverses one logged change. Implementations exist in the storage
// structures (heap undo, B-tree undo, LOB undo) and are pushed onto the
// transaction as changes happen.
type Undoer interface {
	Undo() error
}

// UndoFunc adapts a closure to the Undoer interface.
type UndoFunc func() error

// Undo implements Undoer.
func (f UndoFunc) Undo() error { return f() }

// State is the lifecycle state of a transaction.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	RolledBack
)

// Txn is a single transaction: an undo log plus commit/rollback hooks.
// A Txn is not safe for concurrent use; the session owning it serializes.
type Txn struct {
	ID    int64
	mgr   *Manager
	undo  []Undoer
	state State
	// Per-transaction event handlers, in addition to the manager-level
	// ones. Index implementations with external stores attach these while
	// the transaction runs (§5 of the paper).
	onCommit   []func()
	onRollback []func()
	// forceDurable makes the commit sink write a commit record even when
	// the transaction dirtied no pages (DDL mutates only the in-memory
	// dictionary, which rides in the commit record's snapshot).
	forceDurable bool
}

// ForceDurable marks the transaction as requiring a durable commit
// record even if it dirtied no pages.
func (t *Txn) ForceDurable() { t.forceDurable = true }

// OnCommit attaches a handler fired if (and only if) this transaction
// commits.
func (t *Txn) OnCommit(fn func()) { t.onCommit = append(t.onCommit, fn) }

// OnRollback attaches a handler fired if (and only if) this transaction
// rolls back.
func (t *Txn) OnRollback(fn func()) { t.onRollback = append(t.onRollback, fn) }

// Savepoint marks the current undo position; RollbackTo(sp) undoes
// everything logged after it. The executor sets a savepoint before each
// statement so a failed statement rolls back atomically without killing
// the transaction (Oracle's statement-level atomicity).
type Savepoint int

// Manager creates transactions and owns the database-event registry.
type Manager struct {
	mu         sync.Mutex
	nextID     int64
	onCommit   []func(txID int64)
	onRollback []func(txID int64)
	commitSink func(txID int64, forceDurable bool) error
	undoScope  func(txID int64) (exit func())

	// Lifecycle counters (atomic: Stats snapshots race with sessions).
	begins    obs.Counter
	commits   obs.Counter
	rollbacks obs.Counter
}

// Stats is an inert snapshot of transaction lifecycle counts. A commit
// whose durability sink fails counts as a rollback, not a commit —
// exactly the acknowledgement the client saw.
type Stats struct {
	Begins    int64
	Commits   int64
	Rollbacks int64
}

// Stats returns a snapshot of the lifecycle counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begins:    m.begins.Load(),
		Commits:   m.commits.Load(),
		Rollbacks: m.rollbacks.Load(),
	}
}

// ResetStats zeroes the lifecycle counters (benchmark phases).
func (m *Manager) ResetStats() {
	m.begins.Store(0)
	m.commits.Store(0)
	m.rollbacks.Store(0)
}

// SetCommitSink installs the durability hook run by every Commit before
// the transaction is finalized or acknowledged. The engine points it at
// the WAL: append the transaction's page images and a commit record,
// then fsync. If the sink fails, the commit does not happen — the
// transaction is rolled back and the error returned to the caller.
func (m *Manager) SetCommitSink(fn func(txID int64, forceDurable bool) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commitSink = fn
}

func (m *Manager) sink() func(int64, bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitSink
}

// SetUndoScope installs a hook bracketing every undo replay (RollbackTo
// and Rollback). The engine points it at its mutation window so undo —
// which restores page content — is serialized against concurrent
// writers' commit sweeps: without it, a sweep could log a page while an
// aborting transaction is half-way through restoring it. The hook must
// be re-entrant per transaction (a statement that fails inside its own
// mutation window rolls back inside that window).
func (m *Manager) SetUndoScope(fn func(txID int64) (exit func())) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.undoScope = fn
}

func (m *Manager) scope() func(int64) func() {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.undoScope
}

// NewManager returns a transaction manager.
func NewManager() *Manager { return &Manager{nextID: 1} }

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.mu.Unlock()
	m.begins.Inc()
	return &Txn{ID: id, mgr: m}
}

// OnCommit registers a database event handler invoked after every
// successful commit. Indextypes that keep index data outside the database
// register handlers here to make their external stores transactional (§5).
func (m *Manager) OnCommit(fn func(txID int64)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onCommit = append(m.onCommit, fn)
}

// OnRollback registers a database event handler invoked after every
// rollback.
func (m *Manager) OnRollback(fn func(txID int64)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRollback = append(m.onRollback, fn)
}

func (m *Manager) commitHandlers() []func(int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]func(int64), len(m.onCommit))
	copy(out, m.onCommit)
	return out
}

func (m *Manager) rollbackHandlers() []func(int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]func(int64), len(m.onRollback))
	copy(out, m.onRollback)
	return out
}

// State returns the transaction's lifecycle state.
func (t *Txn) State() State { return t.state }

// Record pushes an undo entry. It panics if the transaction is finished —
// that is always an engine bug, not a user error.
func (t *Txn) Record(u Undoer) {
	if t.state != Active {
		panic("txn: Record on finished transaction")
	}
	t.undo = append(t.undo, u)
}

// UndoDepth reports how many undo entries are logged (tests use it).
func (t *Txn) UndoDepth() int { return len(t.undo) }

// Savepoint returns a marker for the current undo position.
func (t *Txn) Savepoint() Savepoint { return Savepoint(len(t.undo)) }

// RollbackTo undoes, in reverse order, everything logged after sp.
func (t *Txn) RollbackTo(sp Savepoint) error {
	if t.state != Active {
		return fmt.Errorf("txn: rollback-to on finished transaction")
	}
	if int(sp) > len(t.undo) {
		return fmt.Errorf("txn: savepoint %d beyond undo log (%d)", sp, len(t.undo))
	}
	if len(t.undo) > int(sp) {
		if scope := t.mgr.scope(); scope != nil {
			exit := scope(t.ID)
			defer exit()
		}
	}
	var firstErr error
	for i := len(t.undo) - 1; i >= int(sp); i-- {
		if err := t.undo[i].Undo(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.undo = t.undo[:sp]
	return firstErr
}

// Commit finishes the transaction: it runs the durability sink (WAL
// append + fsync) and only then discards undo and fires commit events.
// A sink failure rolls the transaction back — an unacknowledged commit
// must leave no trace, in memory or on disk.
func (t *Txn) Commit() error {
	if t.state != Active {
		return fmt.Errorf("txn: commit on finished transaction")
	}
	if sink := t.mgr.sink(); sink != nil {
		if err := sink(t.ID, t.forceDurable); err != nil {
			if rbErr := t.Rollback(); rbErr != nil {
				return fmt.Errorf("txn: commit durability failed: %w (rollback also failed: %v)", err, rbErr)
			}
			return fmt.Errorf("txn: commit durability failed, transaction rolled back: %w", err)
		}
	}
	t.state = Committed
	t.undo = nil
	t.mgr.commits.Inc()
	for _, fn := range t.onCommit {
		fn()
	}
	for _, fn := range t.mgr.commitHandlers() {
		fn(t.ID)
	}
	return nil
}

// Rollback undoes every logged change in reverse order and fires rollback
// events. It returns the first undo error but continues undoing.
func (t *Txn) Rollback() error {
	if t.state != Active {
		return fmt.Errorf("txn: rollback on finished transaction")
	}
	err := t.RollbackTo(0)
	t.state = RolledBack
	t.mgr.rollbacks.Inc()
	for _, fn := range t.onRollback {
		fn()
	}
	for _, fn := range t.mgr.rollbackHandlers() {
		fn(t.ID)
	}
	return err
}

// LockManager hands out table-level shared/exclusive locks. Statements
// declare every object they touch up front and the manager acquires the
// locks in sorted name order, which makes deadlock impossible.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex

	// waits, when set, receives contended acquisitions as WaitTableLock
	// events. Written once at wiring time (SetWaitStats), before
	// concurrent use; nil is safe.
	waits *obs.WaitStats
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[string]*sync.RWMutex)}
}

// SetWaitStats routes contended table-lock acquisitions into the engine
// wait table. Call once at wiring time, before concurrent use.
func (lm *LockManager) SetWaitStats(w *obs.WaitStats) { lm.waits = w }

func (lm *LockManager) get(name string) *sync.RWMutex {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l, ok := lm.locks[name]
	if !ok {
		l = &sync.RWMutex{}
		lm.locks[name] = l
	}
	return l
}

// Acquire locks each named object (shared by default, exclusive for names
// in the exclusive set) in sorted order and returns a release function.
func (lm *LockManager) Acquire(names []string, exclusive map[string]bool) (release func()) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	// De-duplicate, keeping exclusive if requested anywhere.
	uniq := sorted[:0]
	for i, n := range sorted {
		if i == 0 || sorted[i-1] != n {
			uniq = append(uniq, n)
		}
	}
	type held struct {
		l  *sync.RWMutex
		ex bool
	}
	hs := make([]held, 0, len(uniq))
	for _, n := range uniq {
		l := lm.get(n)
		if exclusive[n] {
			// TryLock keeps the uncontended path free of timing calls; only
			// a lost race starts a timed WaitTableLock interval.
			if !l.TryLock() {
				aw := lm.waits.StartWait(obs.WaitTableLock)
				l.Lock()
				aw.Done()
			}
			hs = append(hs, held{l, true})
		} else {
			if !l.TryRLock() {
				aw := lm.waits.StartWait(obs.WaitTableLock)
				l.RLock()
				aw.Done()
			}
			hs = append(hs, held{l, false})
		}
	}
	//vetx:ignore lockbalance -- lock ownership transfers to the returned release closure; every caller defers it
	return func() {
		for i := len(hs) - 1; i >= 0; i-- {
			if hs[i].ex {
				hs[i].l.Unlock()
			} else {
				hs[i].l.RUnlock()
			}
		}
	}
}
