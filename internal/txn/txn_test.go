package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUndoOrderIsReverse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		tx.Record(UndoFunc(func() error { order = append(order, i); return nil }))
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Errorf("undo order = %v, want [3 2 1]", order)
	}
	if tx.State() != RolledBack {
		t.Error("state not RolledBack")
	}
}

func TestSavepointPartialRollback(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var undone []string
	tx.Record(UndoFunc(func() error { undone = append(undone, "a"); return nil }))
	sp := tx.Savepoint()
	tx.Record(UndoFunc(func() error { undone = append(undone, "b"); return nil }))
	tx.Record(UndoFunc(func() error { undone = append(undone, "c"); return nil }))
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if len(undone) != 2 || undone[0] != "c" || undone[1] != "b" {
		t.Errorf("partial undo = %v, want [c b]", undone)
	}
	if tx.State() != Active {
		t.Error("transaction should remain active after RollbackTo")
	}
	if tx.UndoDepth() != 1 {
		t.Errorf("undo depth = %d, want 1", tx.UndoDepth())
	}
	// Full rollback undoes the remainder.
	tx.Rollback()
	if len(undone) != 3 || undone[2] != "a" {
		t.Errorf("final undo = %v", undone)
	}
}

func TestCommitDiscardsUndoAndFiresEvents(t *testing.T) {
	m := NewManager()
	var committed, rolled []int64
	m.OnCommit(func(id int64) { committed = append(committed, id) })
	m.OnRollback(func(id int64) { rolled = append(rolled, id) })

	tx := m.Begin()
	ran := false
	tx.Record(UndoFunc(func() error { ran = true; return nil }))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("undo ran on commit")
	}
	if len(committed) != 1 || committed[0] != tx.ID {
		t.Errorf("commit events = %v", committed)
	}

	tx2 := m.Begin()
	tx2.Rollback()
	if len(rolled) != 1 || rolled[0] != tx2.ID {
		t.Errorf("rollback events = %v", rolled)
	}
	if tx2.ID == tx.ID {
		t.Error("transaction ids not unique")
	}
}

func TestFinishedTransactionRejectsUse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Commit(); err == nil {
		t.Error("double commit allowed")
	}
	if err := tx.Rollback(); err == nil {
		t.Error("rollback after commit allowed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Record after commit did not panic")
		}
	}()
	tx.Record(UndoFunc(func() error { return nil }))
}

func TestRollbackCollectsFirstError(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	wantErr := errors.New("undo failure")
	var last bool
	tx.Record(UndoFunc(func() error { last = true; return nil }))
	tx.Record(UndoFunc(func() error { return errors.New("earlier-recorded error, masked") }))
	// Undo runs in reverse order, so this last-recorded entry fails first
	// and its error is the one reported.
	tx.Record(UndoFunc(func() error { return wantErr }))
	err := tx.Rollback()
	if !errors.Is(err, wantErr) {
		t.Errorf("Rollback error = %v, want %v", err, wantErr)
	}
	if !last {
		t.Error("rollback stopped at first error instead of continuing")
	}
}

func TestRollbackToBadSavepoint(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if err := tx.RollbackTo(Savepoint(5)); err == nil {
		t.Error("rollback to bogus savepoint allowed")
	}
}

func TestLockManagerExclusion(t *testing.T) {
	lm := NewLockManager()
	rel := lm.Acquire([]string{"t1"}, map[string]bool{"t1": true})
	acquired := make(chan struct{})
	go func() {
		rel2 := lm.Acquire([]string{"t1"}, map[string]bool{"t1": true})
		close(acquired)
		rel2()
	}()
	select {
	case <-acquired:
		t.Fatal("second exclusive lock acquired while first held")
	case <-time.After(30 * time.Millisecond):
	}
	rel()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("second lock never acquired after release")
	}
}

func TestLockManagerSharedConcurrency(t *testing.T) {
	lm := NewLockManager()
	var wg sync.WaitGroup
	inside := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel := lm.Acquire([]string{"t"}, nil)
			inside <- struct{}{}
			time.Sleep(20 * time.Millisecond)
			rel()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("shared locks did not run concurrently")
	}
	if len(inside) != 2 {
		t.Error("both readers should have entered")
	}
}

func TestLockManagerNoSelfDeadlockOnDuplicates(t *testing.T) {
	lm := NewLockManager()
	done := make(chan struct{})
	go func() {
		rel := lm.Acquire([]string{"a", "a", "b", "a"}, map[string]bool{"a": true})
		rel()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("duplicate names deadlocked the acquirer")
	}
}

func TestLockManagerManyTablesStress(t *testing.T) {
	lm := NewLockManager()
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Different goroutines request overlapping sets in different
			// orders; sorted acquisition must prevent deadlock.
			set := []string{names[i%4], names[(i+1)%4]}
			ex := map[string]bool{}
			if i%2 == 0 {
				ex[set[0]] = true
			}
			rel := lm.Acquire(set, ex)
			time.Sleep(time.Millisecond)
			rel()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stress workload deadlocked")
	}
}
