// Package sql implements the engine's SQL dialect: the lexer, the AST and
// a recursive-descent parser. The dialect covers everything the paper's
// examples use — ordinary DDL/DML/queries plus the extensibility DDL the
// paper introduces: CREATE OPERATOR, CREATE INDEXTYPE, and
// CREATE INDEX ... INDEXTYPE IS ... PARAMETERS ('...').
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol  // punctuation and operators: ( ) , . + - * / = < > <= >= != <>
	TokKeyword // recognized SQL keyword (uppercased in Text)
	TokBind    // bind parameter: ?  or :name
)

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "DROP": true, "TRUNCATE": true, "ALTER": true,
	"ON": true, "INDEXTYPE": true, "IS": true, "PARAMETERS": true, "OPERATOR": true,
	"BINDING": true, "RETURN": true, "USING": true, "FOR": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DISTINCT": true, "AS": true, "LIKE": true, "BETWEEN": true, "IN": true,
	"GROUP": true, "BITMAP": true, "HASH": true, "UNIQUE": true, "TYPE": true,
	"OBJECT": true, "ANCILLARY": true, "TO": true, "WITH": true, "STATS": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "REBUILD": true, "ANALYZE": true,
	"EXPLAIN": true, "PLAN": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "HAVING": true, "FUNCTION": true, "VARRAY": true,
}

// Lex tokenizes the input, returning the token stream or a positioned
// error.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*': // block comment
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at offset %d", i)
			}
			i += end + 4
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' && !seenDot) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			// Exponent.
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && input[j] >= '0' && input[j] <= '9' {
					i = j
					for i < n && input[i] >= '0' && input[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, Token{TokIdent, input[i : i+j], start})
			i += j + 1
		case c == '?':
			toks = append(toks, Token{TokBind, "?", i})
			i++
		case c == ':' && i+1 < n && isIdentStart(rune(input[i+1])):
			start := i
			i++
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, Token{TokBind, input[start:i], start})
		default:
			start := i
			// Multi-char operators.
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "!=", "<>", "||":
					toks = append(toks, Token{TokSymbol, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '.', '+', '-', '*', '/', '=', '<', '>', ';':
				toks = append(toks, Token{TokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '#'
}
