package sql

import (
	"strings"

	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed expression.
type Expr interface{ expr() }

// ---------------------------------------------------------------------------
// Expressions

// Literal is a constant value.
type Literal struct{ Value types.Value }

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct{ Table, Name string }

// Bind is a bind parameter (? positional, or :name).
type Bind struct {
	Pos  int    // 0-based position among binds
	Name string // without colon; "" for positional ?
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= != < <= > >=), logic (AND OR), LIKE, or string concat (||).
type Binary struct {
	Op   string
	L, R Expr
}

// Between is x BETWEEN lo AND hi (inclusive).
type Between struct {
	X      Expr
	Lo, Hi Expr
	Not    bool
}

// InList is x IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a function call, a user-defined operator invocation, or an
// aggregate. The parser cannot distinguish functions from operators; the
// planner resolves the name against the catalog.
type Call struct {
	Name string
	Args []Expr
	Star bool // COUNT(*)
}

func (Literal) expr()   {}
func (ColumnRef) expr() {}
func (Bind) expr()      {}
func (Unary) expr()     {}
func (Binary) expr()    {}
func (Between) expr()   {}
func (InList) expr()    {}
func (IsNull) expr()    {}
func (Call) expr()      {}

// ---------------------------------------------------------------------------
// Queries

// SelectItem is one entry of a select list.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool   // bare *
	Table string // t.* when Star and Table set
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement (single table or comma-join).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// ---------------------------------------------------------------------------
// DML

// Insert is INSERT INTO t [(cols)] VALUES (...), (...), ...
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// Update is UPDATE t SET c=e, ... [WHERE p].
type Update struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// Delete is DELETE FROM t [WHERE p].
type Delete struct {
	Table string
	Where Expr
}

// ---------------------------------------------------------------------------
// DDL

// ColumnDef is one column of CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string // raw type name: NUMBER, VARCHAR2, or an object/array type
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// TruncateTable is TRUNCATE TABLE name.
type TruncateTable struct{ Name string }

// IndexKind distinguishes the built-in index schemes and domain indexes.
type IndexKind int

// Index kinds.
const (
	IndexBTree IndexKind = iota
	IndexHash
	IndexBitmap
	IndexDomain
)

// CreateIndex is CREATE [BITMAP|HASH|UNIQUE] INDEX n ON t(col)
// [INDEXTYPE IS it [PARAMETERS ('...')]].
type CreateIndex struct {
	Name      string
	Table     string
	Column    string
	Kind      IndexKind
	Unique    bool
	IndexType string // for IndexDomain
	Params    string
}

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

// AlterIndex is ALTER INDEX name PARAMETERS ('...') | REBUILD.
type AlterIndex struct {
	Name    string
	Params  string
	Rebuild bool
}

// OperatorBinding is one BINDING (argtypes) RETURN type USING func clause.
type OperatorBinding struct {
	ArgTypes   []string
	ReturnType string
	FuncName   string
}

// CreateOperator is the paper's CREATE OPERATOR statement.
type CreateOperator struct {
	Name        string
	Bindings    []OperatorBinding
	AncillaryTo string // non-empty for ancillary operators such as Score
}

// DropOperator is DROP OPERATOR name.
type DropOperator struct{ Name string }

// OperatorSig names an operator with its argument types, as listed in
// CREATE INDEXTYPE ... FOR op(t1, t2).
type OperatorSig struct {
	Name     string
	ArgTypes []string
}

// CreateIndexType is the paper's CREATE INDEXTYPE statement. The USING
// clause names an IndexMethods implementation registered with the engine
// (the Go analogue of the ODCIIndex object type).
type CreateIndexType struct {
	Name    string
	For     []OperatorSig
	Using   string
	StatsBy string // optional WITH STATS name
}

// DropIndexType is DROP INDEXTYPE name.
type DropIndexType struct{ Name string }

// CreateType is CREATE TYPE name AS OBJECT (attr type, ...).
type CreateType struct {
	Name  string
	Attrs []ColumnDef
}

// Txn control statements.
type (
	// BeginStmt is BEGIN.
	BeginStmt struct{}
	// CommitStmt is COMMIT.
	CommitStmt struct{}
	// RollbackStmt is ROLLBACK.
	RollbackStmt struct{}
)

// ExplainStmt is EXPLAIN PLAN FOR <select> (plan and candidate access
// paths as text rows) or, with Analyze set, EXPLAIN ANALYZE <select>
// (execute the query and report estimated vs actual rows and time per
// operator).
type ExplainStmt struct {
	Query   *Select
	Analyze bool
}

// AnalyzeTable is ANALYZE TABLE name: refresh optimizer statistics for
// the table, its built-in indexes, and (via StatsCollector) its domain
// indexes.
type AnalyzeTable struct{ Name string }

func (*Select) stmt()          {}
func (*Insert) stmt()          {}
func (*Update) stmt()          {}
func (*Delete) stmt()          {}
func (*CreateTable) stmt()     {}
func (*DropTable) stmt()       {}
func (*TruncateTable) stmt()   {}
func (*CreateIndex) stmt()     {}
func (*DropIndex) stmt()       {}
func (*AlterIndex) stmt()      {}
func (*CreateOperator) stmt()  {}
func (*DropOperator) stmt()    {}
func (*CreateIndexType) stmt() {}
func (*DropIndexType) stmt()   {}
func (*CreateType) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}
func (*ExplainStmt) stmt()     {}
func (*AnalyzeTable) stmt()    {}

// Norm uppercases an identifier for case-insensitive catalog lookups.
func Norm(s string) string { return strings.ToUpper(s) }
