package sql

import (
	"strconv"
	"strings"

	"repro/internal/types"
)

// Print renders a statement back to SQL text such that re-parsing the
// output yields an AST deeply equal to the input. It is the inverse the
// fuzzer holds the parser to (FuzzParse): parse → Print → parse must be
// the identity on ASTs. The output is canonical, not source-preserving —
// expressions come back fully parenthesized, `<>` as `!=`, keywords
// uppercase, schema qualifiers (which the parser drops) omitted.
func Print(st Statement) string {
	var b strings.Builder
	printStmt(&b, st)
	return b.String()
}

// printIdent writes an identifier, quoting it whenever the bare spelling
// would not re-lex to the identical TokIdent/soft-keyword token: empty
// names, names with characters outside the identifier charset, and names
// whose uppercase collides with a keyword. Quoted identifiers cannot
// contain a double quote, but no parser-produced name can: the lexer
// never includes '"' in any identifier token.
func printIdent(b *strings.Builder, name string) {
	if bareIdent(name) {
		b.WriteString(name)
		return
	}
	b.WriteByte('"')
	b.WriteString(name)
	b.WriteByte('"')
}

func bareIdent(name string) bool {
	if name == "" || keywords[strings.ToUpper(name)] {
		return false
	}
	// Iterate bytes, not runes: the lexer consumes identifiers one byte at
	// a time, so a multi-byte letter only lexes bare if each of its bytes
	// passes the identifier test individually.
	for i := 0; i < len(name); i++ {
		r := rune(name[i])
		if i == 0 {
			if !isIdentStart(r) {
				return false
			}
		} else if !isIdentPart(r) {
			return false
		}
	}
	return true
}

func printString(b *strings.Builder, s string) {
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(s, "'", "''"))
	b.WriteByte('\'')
}

func printLiteral(b *strings.Builder, v types.Value) {
	switch v.Kind() {
	case types.KindNull:
		b.WriteString("NULL")
	case types.KindBool:
		if v.Truth() {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case types.KindNumber:
		// Parsed numbers are unsigned finite floats; 'g' with -1 precision
		// round-trips exactly through ParseFloat and stays inside the
		// lexer's number grammar (digits, one dot, optional e±exponent).
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case types.KindString:
		printString(b, v.Text())
	default:
		// Unreachable from Parse; keep the printer total.
		printString(b, v.String())
	}
}

// printExpr writes an expression. Composite nodes are parenthesized, so
// operator precedence and associativity never change on re-parse; the
// parser treats parentheses as pure grouping (no AST node), so the extra
// parens are invisible to the round-trip.
func printExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case Literal:
		printLiteral(b, x.Value)
	case ColumnRef:
		if x.Table != "" {
			printIdent(b, x.Table)
			b.WriteByte('.')
		}
		printIdent(b, x.Name)
	case Bind:
		if x.Name == "" {
			b.WriteByte('?')
		} else {
			b.WriteByte(':')
			b.WriteString(x.Name)
		}
	case Call:
		printIdent(b, x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a)
		}
		b.WriteByte(')')
	case Unary:
		b.WriteByte('(')
		if x.Op == "NOT" {
			b.WriteString("NOT ")
		} else {
			b.WriteString(x.Op)
		}
		printExpr(b, x.X)
		b.WriteByte(')')
	case Binary:
		b.WriteByte('(')
		printExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		printExpr(b, x.R)
		b.WriteByte(')')
	case Between:
		b.WriteByte('(')
		printExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		printExpr(b, x.Lo)
		b.WriteString(" AND ")
		printExpr(b, x.Hi)
		b.WriteByte(')')
	case InList:
		b.WriteByte('(')
		printExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, it := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, it)
		}
		b.WriteString("))")
	case IsNull:
		b.WriteByte('(')
		printExpr(b, x.X)
		b.WriteString(" IS ")
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL)")
	default:
		b.WriteString("/*unknown expr*/")
	}
}

func printStmt(b *strings.Builder, st Statement) {
	switch s := st.(type) {
	case *Select:
		printSelect(b, s)
	case *Insert:
		b.WriteString("INSERT INTO ")
		printIdent(b, s.Table)
		if len(s.Cols) > 0 {
			b.WriteString(" (")
			for i, c := range s.Cols {
				if i > 0 {
					b.WriteString(", ")
				}
				printIdent(b, c)
			}
			b.WriteByte(')')
		}
		b.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('(')
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				printExpr(b, e)
			}
			b.WriteByte(')')
		}
	case *Update:
		b.WriteString("UPDATE ")
		printIdent(b, s.Table)
		b.WriteString(" SET ")
		for i := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			printIdent(b, s.Cols[i])
			b.WriteString(" = ")
			printExpr(b, s.Exprs[i])
		}
		if s.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, s.Where)
		}
	case *Delete:
		b.WriteString("DELETE FROM ")
		printIdent(b, s.Table)
		if s.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, s.Where)
		}
	case *CreateTable:
		b.WriteString("CREATE TABLE ")
		printIdent(b, s.Name)
		b.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			printIdent(b, c.Name)
			b.WriteByte(' ')
			printIdent(b, c.TypeName)
		}
		b.WriteByte(')')
	case *DropTable:
		b.WriteString("DROP TABLE ")
		printIdent(b, s.Name)
	case *TruncateTable:
		b.WriteString("TRUNCATE TABLE ")
		printIdent(b, s.Name)
	case *CreateIndex:
		b.WriteString("CREATE ")
		switch {
		case s.Unique:
			b.WriteString("UNIQUE ")
		case s.Kind == IndexBitmap:
			b.WriteString("BITMAP ")
		case s.Kind == IndexHash:
			b.WriteString("HASH ")
		}
		b.WriteString("INDEX ")
		printIdent(b, s.Name)
		b.WriteString(" ON ")
		printIdent(b, s.Table)
		b.WriteString(" (")
		printIdent(b, s.Column)
		b.WriteByte(')')
		if s.Kind == IndexDomain {
			b.WriteString(" INDEXTYPE IS ")
			printIdent(b, s.IndexType)
			if s.Params != "" {
				b.WriteString(" PARAMETERS (")
				printString(b, s.Params)
				b.WriteByte(')')
			}
		}
	case *DropIndex:
		b.WriteString("DROP INDEX ")
		printIdent(b, s.Name)
	case *AlterIndex:
		b.WriteString("ALTER INDEX ")
		printIdent(b, s.Name)
		if s.Rebuild {
			b.WriteString(" REBUILD")
		} else {
			b.WriteString(" PARAMETERS (")
			printString(b, s.Params)
			b.WriteByte(')')
		}
	case *CreateOperator:
		b.WriteString("CREATE OPERATOR ")
		printIdent(b, s.Name)
		b.WriteByte(' ')
		for i, bd := range s.Bindings {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("BINDING (")
			for j, t := range bd.ArgTypes {
				if j > 0 {
					b.WriteString(", ")
				}
				printIdent(b, t)
			}
			b.WriteString(") RETURN ")
			printIdent(b, bd.ReturnType)
			b.WriteString(" USING ")
			printIdent(b, bd.FuncName)
		}
		if s.AncillaryTo != "" {
			b.WriteString(" ANCILLARY TO ")
			printIdent(b, s.AncillaryTo)
		}
	case *DropOperator:
		b.WriteString("DROP OPERATOR ")
		printIdent(b, s.Name)
	case *CreateIndexType:
		b.WriteString("CREATE INDEXTYPE ")
		printIdent(b, s.Name)
		b.WriteString(" FOR ")
		for i, sig := range s.For {
			if i > 0 {
				b.WriteString(", ")
			}
			printIdent(b, sig.Name)
			b.WriteByte('(')
			for j, t := range sig.ArgTypes {
				if j > 0 {
					b.WriteString(", ")
				}
				printIdent(b, t)
			}
			b.WriteByte(')')
		}
		b.WriteString(" USING ")
		printIdent(b, s.Using)
		if s.StatsBy != "" {
			b.WriteString(" WITH STATS ")
			printIdent(b, s.StatsBy)
		}
	case *DropIndexType:
		b.WriteString("DROP INDEXTYPE ")
		printIdent(b, s.Name)
	case *CreateType:
		b.WriteString("CREATE TYPE ")
		printIdent(b, s.Name)
		b.WriteString(" AS OBJECT (")
		for i, a := range s.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			printIdent(b, a.Name)
			b.WriteByte(' ')
			printIdent(b, a.TypeName)
		}
		b.WriteByte(')')
	case *BeginStmt:
		b.WriteString("BEGIN")
	case *CommitStmt:
		b.WriteString("COMMIT")
	case *RollbackStmt:
		b.WriteString("ROLLBACK")
	case *AnalyzeTable:
		b.WriteString("ANALYZE TABLE ")
		printIdent(b, s.Name)
	case *ExplainStmt:
		if s.Analyze {
			b.WriteString("EXPLAIN ANALYZE ")
		} else {
			b.WriteString("EXPLAIN PLAN FOR ")
		}
		printSelect(b, s.Query)
	default:
		b.WriteString("/*unknown statement*/")
	}
}

func printSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Table != "":
			printIdent(b, it.Table)
			b.WriteString(".*")
		case it.Star:
			b.WriteByte('*')
		default:
			printExpr(b, it.Expr)
			if it.Alias != "" {
				b.WriteString(" AS ")
				printIdent(b, it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		printIdent(b, tr.Name)
		if tr.Alias != "" {
			b.WriteByte(' ')
			printIdent(b, tr.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		printExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		printExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, oi := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, oi.Expr)
			if oi.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(s.Limit))
	}
}
