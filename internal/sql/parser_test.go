package sql

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(12345)) }

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s', 3.5e2 FROM t -- comment\nWHERE x >= :lang")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "3.5e2", "FROM", "t", "WHERE", "x", ">=", ":lang", ""}
	if len(texts) != len(want) {
		t.Fatalf("texts = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != TokString || kinds[5] != TokNumber || kinds[11] != TokBind {
		t.Errorf("kinds wrong: %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "/* unterminated", "a @ b", `"unclosed`} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) succeeded", bad)
		}
	}
}

func TestParsePaperExamples(t *testing.T) {
	// Every SQL statement that appears in the paper must parse.
	examples := []string{
		`CREATE TABLE Employees(name VARCHAR(128), id INTEGER, resume VARCHAR2(1024))`,
		`CREATE INDEX ResumeTextIndex ON Employees(resume) INDEXTYPE IS TextIndexType`,
		`SELECT * FROM Employees WHERE Contains(resume, 'Oracle AND UNIX')`,
		`CREATE OPERATOR Ordsys.Contains BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING TextContains`,
		`CREATE INDEXTYPE TextIndexType FOR Contains(VARCHAR2, VARCHAR2) USING TextIndexMethods`,
		`CREATE INDEX ResumeTextIndex ON Employees(resume) INDEXTYPE IS TextIndexType PARAMETERS (':Language English :Ignore the a an')`,
		`ALTER INDEX ResumeTextIndex PARAMETERS (':Ignore COBOL')`,
		`SELECT * FROM Employees WHERE Contains(resume, 'Oracle') AND id = 100`,
		`SELECT * FROM docs WHERE Contains(resume, 'Oracle')`,
		`SELECT d.* FROM docs d, results r WHERE d.rowid = r.rid`,
		`SELECT r.gid, p.gid FROM roads r, parks p WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')`,
		`SELECT DISTINCT r.gid, p.gid FROM roads_sdoindex r, parks_sdoindex p
		 WHERE (r.grpcode = p.grpcode)
		   AND (r.sdo_code BETWEEN p.sdo_code AND p.sdo_maxcode
		     OR p.sdo_code BETWEEN r.sdo_code AND r.sdo_maxcode)
		   AND (Relate(r.gid, p.gid, 'OVERLAPS') = 'TRUE')`,
		`SELECT * FROM Employees WHERE Contains(Hobbies, 'Skiing')`,
	}
	for _, src := range examples {
		mustParse(t, src)
	}
}

func TestParseSelectShape(t *testing.T) {
	st := mustParse(t, `SELECT name, id * 2 AS double_id FROM Employees e
		WHERE id >= 10 AND name LIKE 'A%' ORDER BY id DESC LIMIT 5`)
	sel := st.(*Select)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "double_id" {
		t.Errorf("items wrong: %+v", sel.Items)
	}
	if sel.From[0].Name != "Employees" || sel.From[0].Alias != "e" {
		t.Errorf("from wrong: %+v", sel.From)
	}
	if sel.Where == nil || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 5 {
		t.Error("where/order/limit wrong")
	}
	b, ok := sel.Where.(Binary)
	if !ok || b.Op != "AND" {
		t.Errorf("where = %#v", sel.Where)
	}
}

func TestParseAggregates(t *testing.T) {
	st := mustParse(t, `SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 3`)
	sel := st.(*Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having missing")
	}
	c := sel.Items[1].Expr.(Call)
	if c.Name != "COUNT" || !c.Star {
		t.Errorf("COUNT(*) parsed as %+v", c)
	}
}

func TestParseInsertForms(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	ins := st.(*Insert)
	if len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	st = mustParse(t, `INSERT INTO t VALUES (NULL, TRUE, -3.5, ?)`)
	ins = st.(*Insert)
	row := ins.Rows[0]
	if !row[0].(Literal).Value.IsNull() {
		t.Error("NULL literal wrong")
	}
	if !row[1].(Literal).Value.Truth() {
		t.Error("TRUE literal wrong")
	}
	u := row[2].(Unary)
	if u.Op != "-" || u.X.(Literal).Value.Float() != 3.5 {
		t.Error("negative literal wrong")
	}
	if _, ok := row[3].(Bind); !ok {
		t.Error("bind wrong")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := mustParse(t, `UPDATE Employees SET resume = 'new resume', id = id + 1 WHERE name = 'bob'`)
	upd := st.(*Update)
	if len(upd.Cols) != 2 || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}
	st = mustParse(t, `DELETE FROM Employees WHERE Contains(resume, 'COBOL')`)
	del := st.(*Delete)
	if del.Table != "Employees" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
}

func TestParseCreateIndexVariants(t *testing.T) {
	ci := mustParse(t, `CREATE BITMAP INDEX bi ON t(c)`).(*CreateIndex)
	if ci.Kind != IndexBitmap {
		t.Error("bitmap kind wrong")
	}
	ci = mustParse(t, `CREATE HASH INDEX hi ON t(c)`).(*CreateIndex)
	if ci.Kind != IndexHash {
		t.Error("hash kind wrong")
	}
	ci = mustParse(t, `CREATE UNIQUE INDEX ui ON t(c)`).(*CreateIndex)
	if !ci.Unique || ci.Kind != IndexBTree {
		t.Error("unique b-tree wrong")
	}
	ci = mustParse(t, `CREATE INDEX di ON t(c) INDEXTYPE IS SomeType PARAMETERS ('p1 p2')`).(*CreateIndex)
	if ci.Kind != IndexDomain || ci.IndexType != "SomeType" || ci.Params != "p1 p2" {
		t.Errorf("domain index = %+v", ci)
	}
}

func TestParseCreateOperatorAncillary(t *testing.T) {
	co := mustParse(t, `CREATE OPERATOR Score BINDING (NUMBER) RETURN NUMBER USING ScoreFunc ANCILLARY TO Contains`).(*CreateOperator)
	if co.AncillaryTo != "Contains" {
		t.Errorf("ancillary = %+v", co)
	}
	co = mustParse(t, `CREATE OPERATOR Eq BINDING (NUMBER, NUMBER) RETURN BOOLEAN USING f1, BINDING (VARCHAR2, VARCHAR2) RETURN BOOLEAN USING f2`).(*CreateOperator)
	if len(co.Bindings) != 2 || co.Bindings[1].FuncName != "f2" {
		t.Errorf("bindings = %+v", co.Bindings)
	}
}

func TestParseCreateIndexTypeMultiOp(t *testing.T) {
	cit := mustParse(t, `CREATE INDEXTYPE SpatialIT FOR Sdo_Relate(OBJECT, OBJECT, VARCHAR2), Sdo_Within(OBJECT, NUMBER) USING SpatialMethods WITH STATS SpatialStats`).(*CreateIndexType)
	if len(cit.For) != 2 || cit.For[1].Name != "Sdo_Within" || cit.Using != "SpatialMethods" || cit.StatsBy != "SpatialStats" {
		t.Errorf("indextype = %+v", cit)
	}
}

func TestParseCreateType(t *testing.T) {
	ct := mustParse(t, `CREATE TYPE Point AS OBJECT (x NUMBER, y NUMBER)`).(*CreateType)
	if ct.Name != "Point" || len(ct.Attrs) != 2 {
		t.Errorf("type = %+v", ct)
	}
}

func TestParseMiscStatements(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT;").(*CommitStmt); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Error("ROLLBACK")
	}
	if st := mustParse(t, "TRUNCATE TABLE t").(*TruncateTable); st.Name != "t" {
		t.Error("TRUNCATE")
	}
	ai := mustParse(t, "ALTER INDEX i REBUILD").(*AlterIndex)
	if !ai.Rebuild {
		t.Error("REBUILD")
	}
	ex := mustParse(t, "EXPLAIN PLAN FOR SELECT * FROM t WHERE a = 1").(*ExplainStmt)
	if ex.Query == nil || ex.Analyze {
		t.Error("EXPLAIN")
	}
	ea := mustParse(t, "EXPLAIN ANALYZE SELECT * FROM t WHERE a = 1").(*ExplainStmt)
	if ea.Query == nil || !ea.Analyze {
		t.Error("EXPLAIN ANALYZE")
	}
	// Bare EXPLAIN (no PLAN FOR / ANALYZE) is accepted, not analyzing.
	if st := mustParse(t, "EXPLAIN SELECT * FROM t").(*ExplainStmt); st.Analyze {
		t.Error("bare EXPLAIN must not analyze")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT 1 + 2 * 3 FROM t").(*Select)
	b := sel.Items[0].Expr.(Binary)
	if b.Op != "+" {
		t.Fatalf("top op = %s", b.Op)
	}
	if b.R.(Binary).Op != "*" {
		t.Error("* should bind tighter than +")
	}

	sel = mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Select)
	ob := sel.Where.(Binary)
	if ob.Op != "OR" || ob.R.(Binary).Op != "AND" {
		t.Error("AND should bind tighter than OR")
	}

	sel = mustParse(t, "SELECT * FROM t WHERE NOT a = 1 AND b = 2").(*Select)
	ab := sel.Where.(Binary)
	if ab.Op != "AND" {
		t.Fatalf("NOT scope wrong: %#v", sel.Where)
	}
	if _, ok := ab.L.(Unary); !ok {
		t.Error("NOT should bind tighter than AND")
	}
}

func TestParseInBetweenIsNull(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a IN (1,2,3) AND b NOT BETWEEN 1 AND 5 AND c IS NOT NULL").(*Select)
	and1 := sel.Where.(Binary)
	and2 := and1.L.(Binary)
	if _, ok := and2.L.(InList); !ok {
		t.Errorf("IN parse: %#v", and2.L)
	}
	bt, ok := and2.R.(Between)
	if !ok || !bt.Not {
		t.Errorf("NOT BETWEEN parse: %#v", and2.R)
	}
	isn, ok := and1.R.(IsNull)
	if !ok || !isn.Not {
		t.Errorf("IS NOT NULL parse: %#v", and1.R)
	}
}

func TestParseBindNumbering(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t VALUES (?, :name, ?)").(*Insert)
	row := ins.Rows[0]
	if row[0].(Bind).Pos != 0 || row[1].(Bind).Pos != 1 || row[2].(Bind).Pos != 2 {
		t.Error("bind positions wrong")
	}
	if row[1].(Bind).Name != "name" {
		t.Error("named bind wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t",
		"CREATE TABLE t",
		"CREATE INDEX i ON t",
		"CREATE OPERATOR o",
		"CREATE INDEXTYPE it FOR",
		"SELECT * FROM t; garbage",
		"GRANT ALL",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestLiteralKinds(t *testing.T) {
	sel := mustParse(t, "SELECT 42, 'str', NULL, TRUE FROM t").(*Select)
	vals := []types.Value{
		sel.Items[0].Expr.(Literal).Value,
		sel.Items[1].Expr.(Literal).Value,
		sel.Items[2].Expr.(Literal).Value,
		sel.Items[3].Expr.(Literal).Value,
	}
	if vals[0].Kind() != types.KindNumber || vals[1].Kind() != types.KindString ||
		!vals[2].IsNull() || vals[3].Kind() != types.KindBool {
		t.Errorf("literal kinds = %v", vals)
	}
}

// TestParserNeverPanics feeds random mutations of valid statements and
// raw random bytes to the parser; it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT a, b FROM t WHERE x = 1 AND Contains(c, 'q', 1) ORDER BY a DESC LIMIT 3`,
		`CREATE INDEX i ON t(c) INDEXTYPE IS X PARAMETERS (':a b')`,
		`CREATE OPERATOR o BINDING (NUMBER) RETURN NUMBER USING f ANCILLARY TO p`,
		`INSERT INTO t (a, b) VALUES (1, 'x'), (?, :n)`,
		`UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2 OR c IN (1,2,3)`,
		`ANALYZE TABLE t`,
	}
	rng := newTestRand()
	tryParse := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		Parse(src)
	}
	for _, seed := range seeds {
		for trial := 0; trial < 400; trial++ {
			b := []byte(seed)
			for k := 0; k < 1+rng.Intn(4); k++ {
				switch rng.Intn(3) {
				case 0: // delete a byte
					if len(b) > 1 {
						i := rng.Intn(len(b))
						b = append(b[:i], b[i+1:]...)
					}
				case 1: // replace with random printable
					if len(b) > 0 {
						b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
					}
				case 2: // duplicate a slice
					if len(b) > 2 {
						i := rng.Intn(len(b) - 1)
						j := i + 1 + rng.Intn(len(b)-i-1)
						b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
					}
				}
			}
			tryParse(string(b))
		}
	}
	// Raw random bytes.
	for trial := 0; trial < 500; trial++ {
		b := make([]byte, rng.Intn(60))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		tryParse(string(b))
	}
}
