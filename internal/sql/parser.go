package sql

import (
	"fmt"
	"strconv"

	"repro/internal/types"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.cur().Text)
	}
	return st, nil
}

type parser struct {
	toks  []Token
	pos   int
	src   string
	binds int
}

func (p *parser) cur() Token { return p.toks[p.pos] }

// next consumes and returns the current token. The EOF sentinel is never
// consumed: unterminated constructs (e.g. `VARCHAR2(` at end of input)
// would otherwise walk the position past the token slice and panic on
// the next peek.
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k TokKind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) accept(k TokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind, text string) (Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return Token{}, p.errf("expected %s, found %q", want, p.cur().Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	// Non-reserved usage: allow keywords that commonly double as names.
	if t.Kind == TokIdent || (t.Kind == TokKeyword && softKeyword[t.Text]) {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

// softKeyword lists keywords that may also appear as identifiers
// (column/function names used in the paper, like COUNT as an aggregate).
var softKeyword = map[string]bool{
	"TYPE": true, "STATS": true, "OBJECT": true, "PLAN": true, "HASH": true,
	"BITMAP": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "VARRAY": true,
}

// qualifiedName parses name or schema.name, returning the final segment
// prefixed (schema names are accepted and folded into the object name,
// matching the paper's Ordsys.Contains style without a full schema system).
func (p *parser) qualifiedName() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.accept(TokSymbol, ".") {
		second, err := p.ident()
		if err != nil {
			return "", err
		}
		return second, nil // schema prefix accepted and dropped
	}
	return first, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(TokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(TokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(TokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.at(TokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(TokKeyword, "DROP"):
		return p.dropStmt()
	case p.at(TokKeyword, "TRUNCATE"):
		p.next()
		if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &TruncateTable{Name: name}, nil
	case p.at(TokKeyword, "ALTER"):
		return p.alterStmt()
	case p.accept(TokKeyword, "BEGIN"):
		return &BeginStmt{}, nil
	case p.accept(TokKeyword, "COMMIT"):
		return &CommitStmt{}, nil
	case p.accept(TokKeyword, "ROLLBACK"):
		return &RollbackStmt{}, nil
	case p.at(TokKeyword, "ANALYZE"):
		p.next()
		if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &AnalyzeTable{Name: name}, nil
	case p.at(TokKeyword, "EXPLAIN"):
		p.next()
		analyze := p.accept(TokKeyword, "ANALYZE")
		if !analyze {
			p.accept(TokKeyword, "PLAN")
			p.accept(TokKeyword, "FOR")
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel.(*Select), Analyze: analyze}, nil
	default:
		return nil, p.errf("unsupported statement starting with %q", p.cur().Text)
	}
}

// ---------------------------------------------------------------------------
// SELECT

func (p *parser) selectStmt() (Statement, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(TokKeyword, "DISTINCT")

	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		tr := TableRef{Name: name}
		if p.cur().Kind == TokIdent {
			tr.Alias = p.next().Text
		}
		sel.From = append(sel.From, tr)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				oi.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, oi)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.cur().Kind == TokIdent && p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// ---------------------------------------------------------------------------
// DML

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.accept(TokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	upd := &Update{Table: name}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.Cols = append(upd.Cols, c)
		upd.Exprs = append(upd.Exprs, e)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// ---------------------------------------------------------------------------
// DDL

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.accept(TokKeyword, "TABLE"):
		return p.createTable()
	case p.at(TokKeyword, "INDEX"), p.at(TokKeyword, "UNIQUE"), p.at(TokKeyword, "BITMAP"), p.at(TokKeyword, "HASH"):
		return p.createIndex()
	case p.accept(TokKeyword, "OPERATOR"):
		return p.createOperator()
	case p.accept(TokKeyword, "INDEXTYPE"):
		return p.createIndexType()
	case p.accept(TokKeyword, "TYPE"):
		return p.createType()
	default:
		return nil, p.errf("unsupported CREATE %q", p.cur().Text)
	}
}

func (p *parser) typeName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	// Swallow length specs like VARCHAR2(1024) and NUMBER(10,2).
	if p.accept(TokSymbol, "(") {
		depth := 1
		for depth > 0 {
			t := p.next()
			if t.Kind == TokEOF {
				return "", p.errf("unterminated type length spec")
			}
			if t.Kind == TokSymbol && t.Text == "(" {
				depth++
			}
			if t.Kind == TokSymbol && t.Text == ")" {
				depth--
			}
		}
	}
	return name, nil
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.typeName()
		if err != nil {
			return nil, err
		}
		ct.Cols = append(ct.Cols, ColumnDef{Name: col, TypeName: tn})
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) createIndex() (Statement, error) {
	ci := &CreateIndex{Kind: IndexBTree}
	switch {
	case p.accept(TokKeyword, "UNIQUE"):
		ci.Unique = true
	case p.accept(TokKeyword, "BITMAP"):
		ci.Kind = IndexBitmap
	case p.accept(TokKeyword, "HASH"):
		ci.Kind = IndexHash
	}
	if _, err := p.expect(TokKeyword, "INDEX"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ci.Name = name
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	tbl, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ci.Table = tbl
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci.Column = col
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "INDEXTYPE") {
		if _, err := p.expect(TokKeyword, "IS"); err != nil {
			return nil, err
		}
		it, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		ci.Kind = IndexDomain
		ci.IndexType = it
		if p.accept(TokKeyword, "PARAMETERS") {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			s, err := p.expect(TokString, "")
			if err != nil {
				return nil, err
			}
			ci.Params = s.Text
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
		}
	}
	return ci, nil
}

func (p *parser) createOperator() (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	co := &CreateOperator{Name: name}
	for {
		if _, err := p.expect(TokKeyword, "BINDING"); err != nil {
			return nil, err
		}
		var b OperatorBinding
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			b.ArgTypes = append(b.ArgTypes, tn)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "RETURN"); err != nil {
			return nil, err
		}
		rt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		b.ReturnType = rt
		if _, err := p.expect(TokKeyword, "USING"); err != nil {
			return nil, err
		}
		fn, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		b.FuncName = fn
		co.Bindings = append(co.Bindings, b)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "ANCILLARY") {
		if _, err := p.expect(TokKeyword, "TO"); err != nil {
			return nil, err
		}
		to, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		co.AncillaryTo = to
	}
	return co, nil
}

func (p *parser) createIndexType() (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	cit := &CreateIndexType{Name: name}
	if _, err := p.expect(TokKeyword, "FOR"); err != nil {
		return nil, err
	}
	for {
		opName, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		sig := OperatorSig{Name: opName}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			sig.ArgTypes = append(sig.ArgTypes, tn)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		cit.For = append(cit.For, sig)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "USING"); err != nil {
		return nil, err
	}
	using, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	cit.Using = using
	if p.accept(TokKeyword, "WITH") {
		if _, err := p.expect(TokKeyword, "STATS"); err != nil {
			return nil, err
		}
		sb, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		cit.StatsBy = sb
	}
	return cit, nil
}

func (p *parser) createType() (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "OBJECT"); err != nil {
		return nil, err
	}
	ct := &CreateType{Name: name}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		an, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.typeName()
		if err != nil {
			return nil, err
		}
		ct.Attrs = append(ct.Attrs, ColumnDef{Name: an, TypeName: tn})
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(TokKeyword, "TABLE"):
		n, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: n}, nil
	case p.accept(TokKeyword, "INDEX"):
		n, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: n}, nil
	case p.accept(TokKeyword, "OPERATOR"):
		n, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &DropOperator{Name: n}, nil
	case p.accept(TokKeyword, "INDEXTYPE"):
		n, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &DropIndexType{Name: n}, nil
	default:
		return nil, p.errf("unsupported DROP %q", p.cur().Text)
	}
}

func (p *parser) alterStmt() (Statement, error) {
	p.next() // ALTER
	if _, err := p.expect(TokKeyword, "INDEX"); err != nil {
		return nil, err
	}
	n, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ai := &AlterIndex{Name: n}
	switch {
	case p.accept(TokKeyword, "REBUILD"):
		ai.Rebuild = true
	case p.accept(TokKeyword, "PARAMETERS"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		s, err := p.expect(TokString, "")
		if err != nil {
			return nil, err
		}
		ai.Params = s.Text
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected REBUILD or PARAMETERS")
	}
	return ai, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(TokKeyword, "IS") {
		not := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNull{X: l, Not: not}, nil
	}
	notPrefix := false
	if p.at(TokKeyword, "NOT") {
		// Lookahead for NOT BETWEEN / NOT IN / NOT LIKE.
		nt := p.toks[p.pos+1]
		if nt.Kind == TokKeyword && (nt.Text == "BETWEEN" || nt.Text == "IN" || nt.Text == "LIKE") {
			p.next()
			notPrefix = true
		}
	}
	switch {
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Between{X: l, Lo: lo, Hi: hi, Not: notPrefix}, nil
	case p.accept(TokKeyword, "IN"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return InList{X: l, List: list, Not: notPrefix}, nil
	case p.accept(TokKeyword, "LIKE"):
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		e := Expr(Binary{Op: "LIKE", L: l, R: r})
		if notPrefix {
			e = Unary{Op: "NOT", X: e}
		}
		return e, nil
	}
	t := p.cur()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<", ">", "<=", ">=", "!=", "<>":
			p.next()
			op := t.Text
			if op == "<>" {
				op = "!="
			}
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokSymbol || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.Text, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokSymbol || (t.Text != "*" && t.Text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.Text, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	p.accept(TokSymbol, "+")
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return Literal{Value: types.Num(f)}, nil
	case TokString:
		p.next()
		return Literal{Value: types.Str(t.Text)}, nil
	case TokBind:
		p.next()
		b := Bind{Pos: p.binds, Name: ""}
		if t.Text != "?" {
			b.Name = t.Text[1:]
		}
		p.binds++
		return b, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return Literal{Value: types.Null()}, nil
		case "TRUE":
			p.next()
			return Literal{Value: types.Bool(true)}, nil
		case "FALSE":
			p.next()
			return Literal{Value: types.Bool(false)}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG", "VARRAY":
			return p.callOrName()
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		return p.callOrName()
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.Text)
}

// callOrName parses: name | name.name | name(args) | name.name(args).
func (p *parser) callOrName() (Expr, error) {
	first := p.next().Text
	qualifier := ""
	name := first
	if p.accept(TokSymbol, ".") {
		second, err := p.ident()
		if err != nil {
			return nil, err
		}
		qualifier, name = first, second
	}
	if p.accept(TokSymbol, "(") {
		c := Call{Name: name}
		if p.accept(TokSymbol, "*") {
			c.Star = true
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return c, nil
		}
		if !p.accept(TokSymbol, ")") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, e)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	return ColumnRef{Table: qualifier, Name: name}, nil
}
