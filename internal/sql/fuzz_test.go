package sql

import (
	"reflect"
	"testing"
)

// parseSeeds is the fuzz seed corpus: every statement form the engine's
// own test suite and the shipped cartridges issue, plus expression
// variety (binds, quoted identifiers, exponents, operators at every
// precedence level). TestPrintRoundTrip runs the same corpus in normal
// test runs so the invariant does not depend on -fuzz being exercised.
var parseSeeds = []string{
	// DDL: tables and types.
	`CREATE TABLE Employees(name VARCHAR2, id NUMBER, resume VARCHAR2)`,
	`CREATE TABLE T(a NUMBER(10,2), b VARCHAR2(1024), c BOOLEAN)`,
	`CREATE TYPE Point AS OBJECT (x NUMBER, y NUMBER)`,
	`DROP TABLE Employees`,
	`TRUNCATE TABLE Employees`,
	`ANALYZE TABLE Employees`,
	// DDL: built-in and domain indexes.
	`CREATE INDEX EmpIdx ON Employees(id)`,
	`CREATE UNIQUE INDEX EmpIdx ON Employees(id)`,
	`CREATE BITMAP INDEX DeptIdx ON Employees(dept)`,
	`CREATE HASH INDEX EmpHash ON Employees(id)`,
	`CREATE INDEX ResumeTextIndex ON Employees(resume)
	 INDEXTYPE IS TextIndexType PARAMETERS (':Language English :Ignore the a an')`,
	`CREATE INDEX SpIdx ON Sites(loc) INDEXTYPE IS Ordsys.SpatialIndexType`,
	`DROP INDEX ResumeTextIndex`,
	`ALTER INDEX ResumeTextIndex REBUILD`,
	`ALTER INDEX ResumeTextIndex PARAMETERS (':Ignore of')`,
	// DDL: the paper's extensibility statements.
	`CREATE OPERATOR Contains BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING TextContainsFn`,
	`CREATE OPERATOR Score BINDING (NUMBER) RETURN NUMBER USING TextScoreFn ANCILLARY TO Contains`,
	`CREATE OPERATOR Eq BINDING (NUMBER, NUMBER) RETURN BOOLEAN USING EqN,
	 BINDING (VARCHAR2, VARCHAR2) RETURN BOOLEAN USING EqS`,
	`CREATE INDEXTYPE TextIndexType FOR Contains(VARCHAR2, VARCHAR2)
	 USING TextIndexMethods WITH STATS TextStatsMethods`,
	`CREATE INDEXTYPE XIT FOR Op1(NUMBER), Op2(VARCHAR2, NUMBER) USING M`,
	`DROP OPERATOR Contains`,
	`DROP INDEXTYPE TextIndexType`,
	// DML.
	`INSERT INTO Employees VALUES ('Joe', 100, 'Oracle and UNIX hacker')`,
	`INSERT INTO Employees (name, id) VALUES ('Joe', 100), ('Ann', 101)`,
	`INSERT INTO T VALUES (?, :name, NULL, TRUE, FALSE, 1.5e3, .25)`,
	`UPDATE Employees SET resume = 'java guru', id = id + 1 WHERE name = 'Joe'`,
	`UPDATE T SET a = ? WHERE b = :key`,
	`DELETE FROM Employees WHERE id BETWEEN 100 AND 200`,
	// Transactions and EXPLAIN.
	`BEGIN`,
	`COMMIT`,
	`ROLLBACK`,
	`EXPLAIN PLAN FOR SELECT name FROM Employees WHERE Contains(resume, 'UNIX') > 0`,
	`EXPLAIN ANALYZE SELECT name FROM Employees WHERE Contains(resume, 'UNIX') > 0`,
	// Queries.
	`SELECT * FROM Employees`,
	`SELECT e.* FROM Employees e`,
	`SELECT DISTINCT name, id * 2 AS double_id FROM Employees ORDER BY id DESC, name LIMIT 10`,
	`SELECT name FROM Employees WHERE Contains(resume, 'Oracle AND UNIX') > 0`,
	`SELECT name, Score(1) FROM Employees WHERE Contains(resume, 'Oracle', 1) > 0`,
	`SELECT COUNT(*), dept FROM Employees GROUP BY dept HAVING COUNT(*) > 3`,
	`SELECT SUM(sal), MIN(sal), MAX(sal), AVG(sal) FROM Emp`,
	`SELECT a FROM t WHERE NOT (a = 1 OR b != 2) AND c <> 3`,
	`SELECT a FROM t WHERE a LIKE 'x%' AND b NOT LIKE '_y'`,
	`SELECT a FROM t WHERE a IN (1, 2, 3) OR b NOT IN ('x', 'y')`,
	`SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL`,
	`SELECT a FROM t WHERE a NOT BETWEEN -5 AND +5`,
	`SELECT a || '-' || b, -a + b * c / d FROM t`,
	`SELECT t1.a, t2.b FROM t1, t2 x WHERE t1.id = x.id`,
	`SELECT "from", "select col" FROM "where" WHERE "from" = 1`,
	`SELECT Ordsys.Contains(resume, 'x') FROM Hr.Employees`,
	`SELECT a FROM t WHERE f() = g(1, 'two', :three)`,
	`SELECT 1e10, 1.5E-3, 0.5, 42 FROM dual`,
	`select name from employees where id = 7 -- trailing comment`,
	`SELECT /* block comment */ a FROM t;`,
}

// FuzzParse holds the parser to three invariants on any input:
//  1. Parse never panics (the fuzz runtime catches panics itself).
//  2. Anything that parses can be printed and re-parsed (Print output is
//     always valid SQL for valid ASTs).
//  3. Re-parsing the printed form yields a deeply equal AST — printing
//     loses nothing the engine can observe.
func FuzzParse(f *testing.F) {
	for _, seed := range parseSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return // invalid SQL is fine; only panics and round-trip losses are bugs
		}
		checkRoundTrip(t, input, st)
	})
}

// TestPrintRoundTrip runs the round-trip invariant over the seed corpus
// deterministically (plain `go test`, no -fuzz needed).
func TestPrintRoundTrip(t *testing.T) {
	for _, input := range parseSeeds {
		st, err := Parse(input)
		if err != nil {
			t.Fatalf("seed does not parse: %v\n%s", err, input)
		}
		checkRoundTrip(t, input, st)
	}
}

func checkRoundTrip(t *testing.T, input string, st Statement) {
	t.Helper()
	printed := Print(st)
	st2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed form does not re-parse: %v\ninput:   %q\nprinted: %q", err, input, printed)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("round-trip changed the AST\ninput:   %q\nprinted: %q\nbefore:  %#v\nafter:   %#v", input, printed, st, st2)
	}
	// The printer is a fixed point: printing the re-parsed AST must give
	// the same text (canonical form is stable).
	if again := Print(st2); again != printed {
		t.Fatalf("print not canonical\nfirst:  %q\nsecond: %q", printed, again)
	}
}
