package bitmapidx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveContains(t *testing.T) {
	b := New()
	if b.Contains(42) {
		t.Error("empty bitmap contains 42")
	}
	if !b.Add(42) || b.Add(42) {
		t.Error("Add return values wrong")
	}
	if !b.Contains(42) || b.Count() != 1 {
		t.Error("42 not present after Add")
	}
	if !b.Remove(42) || b.Remove(42) {
		t.Error("Remove return values wrong")
	}
	if b.Contains(42) || b.Count() != 0 {
		t.Error("42 present after Remove")
	}
}

func TestSparseToDenseConversion(t *testing.T) {
	b := New()
	// Exceed the array threshold within a single container.
	for i := uint64(0); i < 5000; i++ {
		b.Add(i)
	}
	if b.Count() != 5000 {
		t.Fatalf("Count = %d", b.Count())
	}
	for i := uint64(0); i < 5000; i++ {
		if !b.Contains(i) {
			t.Fatalf("lost %d after densification", i)
		}
	}
	if b.Contains(5000) {
		t.Error("phantom member after densification")
	}
	// Ordered iteration across the conversion.
	want := uint64(0)
	b.Each(func(p uint64) bool {
		if p != want {
			t.Fatalf("Each out of order: got %d want %d", p, want)
		}
		want++
		return true
	})
}

func TestMultiContainer(t *testing.T) {
	b := New()
	positions := []uint64{0, 1, 65535, 65536, 1 << 20, 1 << 40, 1<<40 + 1}
	for _, p := range positions {
		b.Add(p)
	}
	got := b.Slice()
	if len(got) != len(positions) {
		t.Fatalf("Slice len = %d", len(got))
	}
	for i, p := range positions {
		if got[i] != p {
			t.Errorf("Slice[%d] = %d, want %d", i, got[i], p)
		}
	}
}

func TestSetOperations(t *testing.T) {
	a, b := New(), New()
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
	}
	for i := uint64(50); i < 150; i++ {
		b.Add(i)
	}
	if n := And(a, b).Count(); n != 50 {
		t.Errorf("And count = %d, want 50", n)
	}
	if n := Or(a, b).Count(); n != 150 {
		t.Errorf("Or count = %d, want 150", n)
	}
	if n := AndNot(a, b).Count(); n != 50 {
		t.Errorf("AndNot count = %d, want 50", n)
	}
	diff := AndNot(a, b)
	diff.Each(func(p uint64) bool {
		if p >= 50 {
			t.Errorf("AndNot contains %d", p)
		}
		return true
	})
}

func TestSerializeRoundTrip(t *testing.T) {
	b := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		b.Add(uint64(rng.Intn(1 << 22)))
	}
	// Force one dense container too.
	for i := uint64(0); i < 5000; i++ {
		b.Add(1<<30 + i)
	}
	enc := b.Serialize()
	dec, err := Deserialize(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Count() != b.Count() {
		t.Fatalf("Count mismatch: %d vs %d", dec.Count(), b.Count())
	}
	want := b.Slice()
	got := dec.Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	good := func() []byte {
		b := New()
		for i := uint64(0); i < 100; i++ {
			b.Add(i * 3)
		}
		return b.Serialize()
	}()
	for cut := 1; cut < len(good); cut += 7 {
		if _, err := Deserialize(good[:cut]); err == nil {
			t.Errorf("truncated bitmap (len %d) deserialized", cut)
		}
	}
}

func TestQuickModelAgreement(t *testing.T) {
	prop := func(ops []uint32) bool {
		b := New()
		model := map[uint64]bool{}
		for _, op := range ops {
			pos := uint64(op >> 2)
			switch op & 3 {
			case 0, 1:
				b.Add(pos)
				model[pos] = true
			case 2:
				b.Remove(pos)
				delete(model, pos)
			case 3:
				if b.Contains(pos) != model[pos] {
					return false
				}
			}
		}
		if b.Count() != len(model) {
			return false
		}
		ok := true
		b.Each(func(p uint64) bool {
			if !model[p] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexLifecycle(t *testing.T) {
	x := NewIndex()
	x.Insert([]byte("red"), 1)
	x.Insert([]byte("red"), 2)
	x.Insert([]byte("blue"), 3)
	if x.Cardinality() != 2 {
		t.Errorf("Cardinality = %d", x.Cardinality())
	}
	if bm := x.Lookup([]byte("red")); bm == nil || bm.Count() != 2 {
		t.Error("red bitmap wrong")
	}
	if x.Lookup([]byte("green")) != nil {
		t.Error("phantom value")
	}
	x.Delete([]byte("red"), 1)
	x.Delete([]byte("red"), 2)
	if x.Cardinality() != 1 {
		t.Error("empty value bitmap not pruned")
	}
	// Deleting from a missing value must be a no-op.
	x.Delete([]byte("green"), 9)
}

func BenchmarkBitmapAdd(b *testing.B) {
	bm := New()
	for i := 0; i < b.N; i++ {
		bm.Add(uint64(i))
	}
}

func BenchmarkBitmapAnd(b *testing.B) {
	x, y := New(), New()
	for i := uint64(0); i < 100000; i++ {
		if i%2 == 0 {
			x.Add(i)
		}
		if i%3 == 0 {
			y.Add(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(x, y)
	}
}
