// Package bitmapidx implements the engine's built-in bitmap index for
// low-cardinality columns, the second native indexing scheme the paper
// names alongside B-trees. Row sets are held in compressed bitmaps
// (roaring-style: 64 Ki-row containers stored as sorted arrays while
// sparse and as raw bitsets once dense), keyed by the packed int64 form of
// the row's RID.
package bitmapidx

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

const (
	containerBits  = 16
	containerSpan  = 1 << containerBits
	arrayThreshold = 4096 // entries; above this an array converts to a bitset
)

// container holds 2^16 consecutive row positions, as either a sorted
// uint16 array (sparse) or a 1 KiWord bitset (dense).
type container struct {
	array  []uint16
	bitset []uint64 // len 1024 when non-nil
}

func (c *container) add(lo uint16) bool {
	if c.bitset != nil {
		w, b := lo>>6, uint64(1)<<(lo&63)
		if c.bitset[w]&b != 0 {
			return false
		}
		c.bitset[w] |= b
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= lo })
	if i < len(c.array) && c.array[i] == lo {
		return false
	}
	c.array = append(c.array, 0)
	copy(c.array[i+1:], c.array[i:])
	c.array[i] = lo
	if len(c.array) > arrayThreshold {
		c.toBitset()
	}
	return true
}

func (c *container) remove(lo uint16) bool {
	if c.bitset != nil {
		w, b := lo>>6, uint64(1)<<(lo&63)
		if c.bitset[w]&b == 0 {
			return false
		}
		c.bitset[w] &^= b
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= lo })
	if i >= len(c.array) || c.array[i] != lo {
		return false
	}
	c.array = append(c.array[:i], c.array[i+1:]...)
	return true
}

func (c *container) contains(lo uint16) bool {
	if c.bitset != nil {
		return c.bitset[lo>>6]&(uint64(1)<<(lo&63)) != 0
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= lo })
	return i < len(c.array) && c.array[i] == lo
}

func (c *container) count() int {
	if c.bitset != nil {
		n := 0
		for _, w := range c.bitset {
			n += bits.OnesCount64(w)
		}
		return n
	}
	return len(c.array)
}

func (c *container) toBitset() {
	bs := make([]uint64, containerSpan/64)
	for _, lo := range c.array {
		bs[lo>>6] |= uint64(1) << (lo & 63)
	}
	c.bitset = bs
	c.array = nil
}

func (c *container) each(hi uint64, fn func(uint64) bool) bool {
	if c.bitset != nil {
		for w, word := range c.bitset {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(hi<<containerBits | uint64(w<<6+b)) {
					return false
				}
				word &= word - 1
			}
		}
		return true
	}
	for _, lo := range c.array {
		if !fn(hi<<containerBits | uint64(lo)) {
			return false
		}
	}
	return true
}

// Bitmap is a compressed set of uint64 row positions.
type Bitmap struct {
	his  []uint64 // sorted container keys
	cons []*container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

func (b *Bitmap) find(hi uint64) (int, bool) {
	i := sort.Search(len(b.his), func(i int) bool { return b.his[i] >= hi })
	return i, i < len(b.his) && b.his[i] == hi
}

// Add inserts pos; it reports whether pos was newly added.
func (b *Bitmap) Add(pos uint64) bool {
	hi, lo := pos>>containerBits, uint16(pos&(containerSpan-1))
	i, ok := b.find(hi)
	if !ok {
		b.his = append(b.his, 0)
		copy(b.his[i+1:], b.his[i:])
		b.his[i] = hi
		b.cons = append(b.cons, nil)
		copy(b.cons[i+1:], b.cons[i:])
		b.cons[i] = &container{}
	}
	return b.cons[i].add(lo)
}

// Remove deletes pos; it reports whether pos was present.
func (b *Bitmap) Remove(pos uint64) bool {
	hi, lo := pos>>containerBits, uint16(pos&(containerSpan-1))
	i, ok := b.find(hi)
	if !ok {
		return false
	}
	removed := b.cons[i].remove(lo)
	if removed && b.cons[i].count() == 0 {
		b.his = append(b.his[:i], b.his[i+1:]...)
		b.cons = append(b.cons[:i], b.cons[i+1:]...)
	}
	return removed
}

// Contains reports whether pos is in the set.
func (b *Bitmap) Contains(pos uint64) bool {
	hi, lo := pos>>containerBits, uint16(pos&(containerSpan-1))
	i, ok := b.find(hi)
	return ok && b.cons[i].contains(lo)
}

// Count returns the cardinality of the set.
func (b *Bitmap) Count() int {
	n := 0
	for _, c := range b.cons {
		n += c.count()
	}
	return n
}

// Each calls fn for every position in ascending order until fn returns
// false.
func (b *Bitmap) Each(fn func(pos uint64) bool) {
	for i, c := range b.cons {
		if !c.each(b.his[i], fn) {
			return
		}
	}
}

// Slice returns the set as a sorted slice (tests and small results).
func (b *Bitmap) Slice() []uint64 {
	out := make([]uint64, 0, b.Count())
	b.Each(func(p uint64) bool { out = append(out, p); return true })
	return out
}

// And returns the intersection of two bitmaps.
func And(a, b *Bitmap) *Bitmap {
	out := New()
	small, big := a, b
	if small.Count() > big.Count() {
		small, big = big, small
	}
	small.Each(func(p uint64) bool {
		if big.Contains(p) {
			out.Add(p)
		}
		return true
	})
	return out
}

// Or returns the union of two bitmaps.
func Or(a, b *Bitmap) *Bitmap {
	out := New()
	a.Each(func(p uint64) bool { out.Add(p); return true })
	b.Each(func(p uint64) bool { out.Add(p); return true })
	return out
}

// AndNot returns a \ b.
func AndNot(a, b *Bitmap) *Bitmap {
	out := New()
	a.Each(func(p uint64) bool {
		if !b.Contains(p) {
			out.Add(p)
		}
		return true
	})
	return out
}

// Serialize encodes the bitmap for storage inside a heap or LOB.
func (b *Bitmap) Serialize() []byte {
	out := binary.AppendUvarint(nil, uint64(len(b.his)))
	for i, hi := range b.his {
		out = binary.AppendUvarint(out, hi)
		c := b.cons[i]
		if c.bitset != nil {
			out = append(out, 1)
			for _, w := range c.bitset {
				out = binary.BigEndian.AppendUint64(out, w)
			}
		} else {
			out = append(out, 0)
			out = binary.AppendUvarint(out, uint64(len(c.array)))
			for _, lo := range c.array {
				out = binary.BigEndian.AppendUint16(out, lo)
			}
		}
	}
	return out
}

// Deserialize decodes a bitmap produced by Serialize.
func Deserialize(src []byte) (*Bitmap, error) {
	b := New()
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("bitmapidx: corrupt header")
	}
	off := sz
	for i := uint64(0); i < n; i++ {
		hi, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("bitmapidx: corrupt container key")
		}
		off += sz
		if off >= len(src) {
			return nil, fmt.Errorf("bitmapidx: truncated container")
		}
		kind := src[off]
		off++
		c := &container{}
		if kind == 1 {
			if len(src) < off+containerSpan/8 {
				return nil, fmt.Errorf("bitmapidx: truncated bitset")
			}
			c.bitset = make([]uint64, containerSpan/64)
			for w := range c.bitset {
				c.bitset[w] = binary.BigEndian.Uint64(src[off:])
				off += 8
			}
		} else {
			cnt, sz := binary.Uvarint(src[off:])
			if sz <= 0 || len(src) < off+sz+int(cnt)*2 {
				return nil, fmt.Errorf("bitmapidx: truncated array")
			}
			off += sz
			c.array = make([]uint16, cnt)
			for j := range c.array {
				c.array[j] = binary.BigEndian.Uint16(src[off:])
				off += 2
			}
		}
		b.his = append(b.his, hi)
		b.cons = append(b.cons, c)
	}
	return b, nil
}

// Index is a bitmap index: one bitmap per distinct column value. It lives
// in memory and is rebuilt from the base table on open; Serialize/
// Deserialize support checkpointing it.
type Index struct {
	maps map[string]*Bitmap // key: order-preserving encoded column value
}

// NewIndex returns an empty bitmap index.
func NewIndex() *Index { return &Index{maps: make(map[string]*Bitmap)} }

// Insert records that the row at pos has the given (encoded) value.
func (x *Index) Insert(valueKey []byte, pos uint64) {
	bm, ok := x.maps[string(valueKey)]
	if !ok {
		bm = New()
		x.maps[string(valueKey)] = bm
	}
	bm.Add(pos)
}

// Delete removes the row at pos from the value's bitmap.
func (x *Index) Delete(valueKey []byte, pos uint64) {
	if bm, ok := x.maps[string(valueKey)]; ok {
		bm.Remove(pos)
		if bm.Count() == 0 {
			delete(x.maps, string(valueKey))
		}
	}
}

// Lookup returns the bitmap for the value (nil when absent).
func (x *Index) Lookup(valueKey []byte) *Bitmap {
	return x.maps[string(valueKey)]
}

// Cardinality returns the number of distinct values.
func (x *Index) Cardinality() int { return len(x.maps) }

// Each visits every (value key, bitmap) pair (persistence).
func (x *Index) Each(fn func(key []byte, bm *Bitmap)) {
	for k, bm := range x.maps {
		fn([]byte(k), bm)
	}
}
