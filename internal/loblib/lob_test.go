package loblib

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/storage"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"lob":  NewLOBStore(storage.NewPager(storage.NewMemBackend(), 128)),
		"file": NewFileStore_(fs),
	}
}

// NewFileStore_ is an identity helper so both stores share one test body.
func NewFileStore_(fs *FileStore) Store { return fs }

func TestBlobReadWriteBothStores(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id, err := s.Create()
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Open(id)
			if err != nil {
				t.Fatal(err)
			}
			data := []byte("hello, large object world")
			if _, err := b.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := b.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read back %q", got)
			}
			if n, _ := b.Length(); n != int64(len(data)) {
				t.Errorf("Length = %d", n)
			}
			// Overwrite in the middle.
			b.WriteAt([]byte("LARGE"), 7)
			b.ReadAt(got, 0)
			if string(got) != "hello, LARGE object world" {
				t.Errorf("after overwrite: %q", got)
			}
			// Partial read at offset.
			part := make([]byte, 5)
			if _, err := b.ReadAt(part, 7); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(part) != "LARGE" {
				t.Errorf("offset read = %q", part)
			}
		})
	}
}

func TestBlobMultiPageAndSparseWrite(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Create()
			b, _ := s.Open(id)
			// Write spanning several pages.
			big := bytes.Repeat([]byte("0123456789abcdef"), 3000) // 48000 bytes
			if _, err := b.WriteAt(big, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(big))
			if _, err := b.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, big) {
				t.Fatal("multi-page data corrupted")
			}
			// Write past the end creates a hole that reads as zeros.
			if _, err := b.WriteAt([]byte("tail"), int64(len(big))+10000); err != nil {
				t.Fatal(err)
			}
			hole := make([]byte, 100)
			if _, err := b.ReadAt(hole, int64(len(big))+5000); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			for _, c := range hole {
				if c != 0 {
					t.Fatal("hole not zero-filled")
				}
			}
		})
	}
}

func TestBlobTruncate(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Create()
			b, _ := s.Open(id)
			b.WriteAt(bytes.Repeat([]byte("z"), 20000), 0)
			if err := b.Truncate(100); err != nil {
				t.Fatal(err)
			}
			if n, _ := b.Length(); n != 100 {
				t.Fatalf("Length after truncate = %d", n)
			}
			// Growing again must expose zeros, not stale data.
			if err := b.Truncate(20000); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 50)
			if _, err := b.ReadAt(buf, 150); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			for _, c := range buf {
				if c != 0 {
					t.Fatal("stale data visible after truncate-regrow")
				}
			}
		})
	}
}

func TestReadPastEOF(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Create()
			b, _ := s.Open(id)
			b.WriteAt([]byte("abc"), 0)
			buf := make([]byte, 10)
			n, err := b.ReadAt(buf, 0)
			if n != 3 || err != io.EOF {
				t.Errorf("short read = %d, %v; want 3, EOF", n, err)
			}
			if _, err := b.ReadAt(buf, 100); err != io.EOF {
				t.Errorf("read past EOF err = %v", err)
			}
		})
	}
}

func TestLOBDeleteFreesPages(t *testing.T) {
	p := storage.NewPager(storage.NewMemBackend(), 128)
	s := NewLOBStore(p)
	id, _ := s.Create()
	b, _ := s.Open(id)
	b.WriteAt(bytes.Repeat([]byte("x"), 100000), 0)
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(id); err == nil {
		t.Error("deleted LOB still opens")
	}
	if err := s.Delete(id); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestStatsTracking(t *testing.T) {
	fsDir := t.TempDir()
	fs, _ := NewFileStore(fsDir, false)
	id, _ := fs.Create()
	b, _ := fs.Open(id)
	b.WriteAt([]byte("12345"), 0)
	b.ReadAt(make([]byte, 5), 0)
	st := fs.Stats()
	if st.WriteOps != 1 || st.ReadOps != 1 || st.BytesWritten != 5 || st.BytesRead != 5 {
		t.Errorf("file stats = %+v", st)
	}
	if st.PhysicalWrites != 1 {
		t.Errorf("file PhysicalWrites = %d, want 1 (write-through)", st.PhysicalWrites)
	}

	p := storage.NewPager(storage.NewMemBackend(), 128)
	ls := NewLOBStore(p)
	id, _ = ls.Create()
	lb, _ := ls.Open(id)
	lb.WriteAt([]byte("12345"), 0)
	st = ls.Stats()
	if st.WriteOps != 1 {
		t.Errorf("lob WriteOps = %d", st.WriteOps)
	}
	if st.PhysicalWrites != 0 {
		t.Errorf("lob PhysicalWrites = %d, want 0 before flush", st.PhysicalWrites)
	}
	ls.ResetStats()
	if ls.Stats().WriteOps != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestRandomizedBlobAgainstBuffer(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			id, _ := s.Create()
			b, _ := s.Open(id)
			model := make([]byte, 0, 1<<16)
			for step := 0; step < 300; step++ {
				off := int64(rng.Intn(40000))
				n := rng.Intn(3000)
				data := make([]byte, n)
				rng.Read(data)
				if _, err := b.WriteAt(data, off); err != nil {
					t.Fatal(err)
				}
				if int(off)+n > len(model) {
					model = append(model, make([]byte, int(off)+n-len(model))...)
				}
				copy(model[off:], data)

				if ln, _ := b.Length(); ln != int64(len(model)) {
					t.Fatalf("step %d: Length = %d, model %d", step, ln, len(model))
				}
				if step%25 == 24 {
					got := make([]byte, len(model))
					if _, err := b.ReadAt(got, 0); err != nil && err != io.EOF {
						t.Fatal(err)
					}
					if !bytes.Equal(got, model) {
						t.Fatalf("step %d: contents diverged", step)
					}
				}
			}
		})
	}
}

func TestRangeLockSharedAndExclusive(t *testing.T) {
	lt := NewRangeLockTable()
	// Two shared locks on overlapping ranges coexist.
	lt.Lock(1, 100, 0, 10, false)
	if !lt.TryLock(1, 101, 5, 10, false) {
		t.Fatal("shared locks should not conflict")
	}
	// Exclusive conflicts with shared overlap.
	if lt.TryLock(1, 102, 8, 4, true) {
		t.Fatal("exclusive lock granted over shared overlap")
	}
	// Non-overlapping exclusive is fine.
	if !lt.TryLock(1, 102, 50, 10, true) {
		t.Fatal("disjoint exclusive lock denied")
	}
	// Different LOB entirely independent.
	if !lt.TryLock(2, 103, 0, 100, true) {
		t.Fatal("lock table leaked across LOB ids")
	}
	if lt.HeldCount(1) != 3 {
		t.Errorf("HeldCount = %d", lt.HeldCount(1))
	}
	// Same owner may stack overlapping locks (re-entrancy); [0,5) overlaps
	// only owner 100's own shared lock.
	if !lt.TryLock(1, 100, 0, 5, true) {
		t.Error("same-owner upgrade denied")
	}
}

func TestRangeLockBlocksUntilRelease(t *testing.T) {
	lt := NewRangeLockTable()
	lt.Lock(1, 1, 0, 100, true)
	got := make(chan struct{})
	go func() {
		lt.Lock(1, 2, 50, 10, true)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("conflicting lock acquired immediately")
	case <-time.After(30 * time.Millisecond):
	}
	if err := lt.Unlock(1, 1, 0, 100, true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("blocked lock never woke")
	}
	if err := lt.Unlock(1, 9, 0, 5, false); err == nil {
		t.Error("unlock of unheld range succeeded")
	}
}
