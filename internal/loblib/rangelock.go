package loblib

import (
	"fmt"
	"sync"
)

// RangeLockTable implements byte-range locking over LOBs: the concurrency
// mechanism §5 of the paper proposes for treating a LOB as a page-based
// store with finer-grained locking than the row lock covering the whole
// LOB. Locks are identified by (lob id, [off, off+n)) and may be shared
// or exclusive; conflicting requests block until the conflict clears.
type RangeLockTable struct {
	mu   sync.Mutex
	cond *sync.Cond
	held map[int64][]rangeLock
}

type rangeLock struct {
	off, end  int64
	exclusive bool
	owner     int64 // opaque owner token
}

// NewRangeLockTable returns an empty lock table.
func NewRangeLockTable() *RangeLockTable {
	t := &RangeLockTable{held: make(map[int64][]rangeLock)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func overlaps(a, b rangeLock) bool { return a.off < b.end && b.off < a.end }

func conflicts(a, b rangeLock) bool {
	if !overlaps(a, b) {
		return false
	}
	if a.owner == b.owner {
		return false
	}
	return a.exclusive || b.exclusive
}

// Lock blocks until the byte range [off, off+n) of the LOB can be held
// with the requested mode by owner, then records it.
func (t *RangeLockTable) Lock(lobID, owner, off, n int64, exclusive bool) {
	req := rangeLock{off: off, end: off + n, exclusive: exclusive, owner: owner}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		ok := true
		for _, h := range t.held[lobID] {
			if conflicts(h, req) {
				ok = false
				break
			}
		}
		if ok {
			t.held[lobID] = append(t.held[lobID], req)
			return
		}
		t.cond.Wait()
	}
}

// TryLock attempts the lock without blocking; it reports success.
func (t *RangeLockTable) TryLock(lobID, owner, off, n int64, exclusive bool) bool {
	req := rangeLock{off: off, end: off + n, exclusive: exclusive, owner: owner}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.held[lobID] {
		if conflicts(h, req) {
			return false
		}
	}
	t.held[lobID] = append(t.held[lobID], req)
	return true
}

// Unlock releases a previously acquired range lock.
func (t *RangeLockTable) Unlock(lobID, owner, off, n int64, exclusive bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	hs := t.held[lobID]
	for i, h := range hs {
		if h.owner == owner && h.off == off && h.end == off+n && h.exclusive == exclusive {
			t.held[lobID] = append(hs[:i], hs[i+1:]...)
			if len(t.held[lobID]) == 0 {
				delete(t.held, lobID)
			}
			t.cond.Broadcast()
			return nil
		}
	}
	return fmt.Errorf("loblib: unlock of a range not held: lob %d [%d,%d)", lobID, off, off+n)
}

// HeldCount reports the number of locks currently held on the LOB.
func (t *RangeLockTable) HeldCount(lobID int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held[lobID])
}
