// Package loblib implements large objects (LOBs): out-of-line byte
// streams stored in database pages and manipulated through a file-like
// interface (ReadAt / WriteAt / Truncate), which is how the chemistry
// cartridge of the paper migrated its file-based index into the database
// with "minimal changes to the index management software".
//
// The package also provides FileStore, an equivalent store backed by
// operating-system files, so that the E5 experiment can compare the
// paper's "file-based index" against its LOB-based replacement behind one
// interface, and a byte-range lock table implementing the finer-grained
// concurrency control that §5 of the paper proposes for LOB-resident
// index structures.
package loblib

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/storage"
)

// Blob is the file-like handle shared by LOB- and file-backed stores.
type Blob interface {
	io.ReaderAt
	io.WriterAt
	// Length returns the current byte length.
	Length() (int64, error)
	// Truncate sets the length, extending with zeros or discarding data.
	Truncate(size int64) error
}

// Stats counts operations against a store; the E5 benchmark reads these
// to reproduce the paper's "minimizes intermediate write operations"
// claim.
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	// PhysicalWrites counts writes that reached durable media immediately
	// (file stores write through; LOB stores defer to buffer-pool
	// eviction/flush, so this stays low until a checkpoint).
	PhysicalWrites int64
}

// Store is the common interface of LOB and file blob stores.
type Store interface {
	Create() (int64, error)
	Open(id int64) (Blob, error)
	Delete(id int64) error
	Stats() Stats
	ResetStats()
}

// ---------------------------------------------------------------------------
// LOBStore: pager-backed LOBs.

type lobEntry struct {
	pages  []storage.PageID
	length int64
}

// LOBStore keeps LOBs in database pages, one chunk per page. All LOB data
// flows through the shared buffer pool, so it participates in the
// engine's caching and deferred write-back exactly as the paper describes.
type LOBStore struct {
	mu     sync.Mutex
	pager  *storage.Pager
	lobs   map[int64]*lobEntry
	nextID int64
	stats  Stats
	locks  *RangeLockTable
}

// NewLOBStore returns an empty LOB store over the pager.
func NewLOBStore(p *storage.Pager) *LOBStore {
	return &LOBStore{
		pager:  p,
		lobs:   make(map[int64]*lobEntry),
		nextID: 1,
		locks:  NewRangeLockTable(),
	}
}

// Create allocates an empty LOB and returns its locator id.
func (s *LOBStore) Create() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.lobs[id] = &lobEntry{}
	return id, nil
}

// Open returns a handle on the LOB with the given locator.
func (s *LOBStore) Open(id int64) (Blob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.lobs[id]
	if !ok {
		return nil, fmt.Errorf("loblib: no LOB with locator %d", id)
	}
	return &lobHandle{store: s, entry: e}, nil
}

// Delete frees the LOB's pages and its locator.
func (s *LOBStore) Delete(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.lobs[id]
	if !ok {
		return fmt.Errorf("loblib: no LOB with locator %d", id)
	}
	for _, pg := range e.pages {
		s.pager.Free(pg)
	}
	delete(s.lobs, id)
	return nil
}

// Stats implements Store.
func (s *LOBStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	// Physical writes for LOB data are whatever the pager wrote back.
	st.PhysicalWrites = s.pager.Stats().Writes
	return st
}

// ResetStats implements Store.
func (s *LOBStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
	s.pager.ResetStats()
}

// Locks exposes the byte-range lock table for LOB-resident index
// structures (§5's proposed concurrency mechanism).
func (s *LOBStore) Locks() *RangeLockTable { return s.locks }

// DirEntry is the serializable directory record of one LOB.
type DirEntry struct {
	ID     int64
	Pages  []storage.PageID
	Length int64
}

// Snapshot exports the LOB directory for persistence.
func (s *LOBStore) Snapshot() []DirEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DirEntry, 0, len(s.lobs))
	for id, e := range s.lobs {
		out = append(out, DirEntry{ID: id, Pages: append([]storage.PageID(nil), e.pages...), Length: e.length})
	}
	return out
}

// Restore replaces the LOB directory from a snapshot (database reopen).
func (s *LOBStore) Restore(entries []DirEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lobs = make(map[int64]*lobEntry, len(entries))
	s.nextID = 1
	for _, e := range entries {
		s.lobs[e.ID] = &lobEntry{pages: append([]storage.PageID(nil), e.Pages...), length: e.Length}
		if e.ID >= s.nextID {
			s.nextID = e.ID + 1
		}
	}
}

type lobHandle struct {
	store *LOBStore
	entry *lobEntry
}

func (h *lobHandle) Length() (int64, error) {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	return h.entry.length, nil
}

func (h *lobHandle) Truncate(size int64) error {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("loblib: negative truncate size")
	}
	need := int((size + storage.PageSize - 1) / storage.PageSize)
	for len(h.entry.pages) > need {
		last := h.entry.pages[len(h.entry.pages)-1]
		h.store.pager.Free(last)
		h.entry.pages = h.entry.pages[:len(h.entry.pages)-1]
	}
	for len(h.entry.pages) < need {
		pg, err := h.store.pager.NewPage()
		if err != nil {
			return err
		}
		h.store.pager.Unpin(pg, true)
		h.entry.pages = append(h.entry.pages, pg.ID)
	}
	if size < h.entry.length && size%storage.PageSize != 0 {
		// Zero the tail of the last page beyond the new length.
		idx := int(size / storage.PageSize)
		pg, err := h.store.pager.Fetch(h.entry.pages[idx])
		if err != nil {
			return err
		}
		for i := size % storage.PageSize; i < storage.PageSize; i++ {
			pg.Data[i] = 0
		}
		h.store.pager.Unpin(pg, true)
	}
	h.entry.length = size
	return nil
}

func (h *lobHandle) ReadAt(p []byte, off int64) (int, error) {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	h.store.stats.ReadOps++
	if off < 0 {
		return 0, fmt.Errorf("loblib: negative offset")
	}
	if off >= h.entry.length {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && off < h.entry.length {
		idx := int(off / storage.PageSize)
		inPage := int(off % storage.PageSize)
		pg, err := h.store.pager.Fetch(h.entry.pages[idx])
		if err != nil {
			return n, err
		}
		avail := storage.PageSize - inPage
		if rem := h.entry.length - off; int64(avail) > rem {
			avail = int(rem)
		}
		c := copy(p[n:], pg.Data[inPage:inPage+avail])
		h.store.pager.Unpin(pg, false)
		n += c
		off += int64(c)
	}
	h.store.stats.BytesRead += int64(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *lobHandle) WriteAt(p []byte, off int64) (int, error) {
	h.store.mu.Lock()
	h.store.stats.WriteOps++
	h.store.stats.BytesWritten += int64(len(p))
	end := off + int64(len(p))
	// Extend page list as needed (without zero-filling intermediate data;
	// fresh pages are already zeroed).
	need := int((end + storage.PageSize - 1) / storage.PageSize)
	for len(h.entry.pages) < need {
		pg, err := h.store.pager.NewPage()
		if err != nil {
			h.store.mu.Unlock()
			return 0, err
		}
		h.store.pager.Unpin(pg, true)
		h.entry.pages = append(h.entry.pages, pg.ID)
	}
	if end > h.entry.length {
		h.entry.length = end
	}
	n := 0
	for n < len(p) {
		idx := int(off / storage.PageSize)
		inPage := int(off % storage.PageSize)
		pg, err := h.store.pager.Fetch(h.entry.pages[idx])
		if err != nil {
			h.store.mu.Unlock()
			return n, err
		}
		c := copy(pg.Data[inPage:], p[n:])
		h.store.pager.Unpin(pg, true)
		n += c
		off += int64(c)
	}
	h.store.mu.Unlock()
	return n, nil
}

// ---------------------------------------------------------------------------
// FileStore: blobs as operating-system files (the pre-migration world of
// the chemistry cartridge). Writes go straight to the file system — these
// are the "intermediate write operations" the LOB design avoids.

// FileStore keeps each blob in its own file under dir.
type FileStore struct {
	mu     sync.Mutex
	dir    string
	nextID int64
	stats  Stats
	sync   bool // fsync after each write, modelling conservative index code
}

// NewFileStore returns a file-backed blob store rooted at dir. When
// syncEveryWrite is set, every WriteAt is followed by an fsync, the way
// crash-safe file-based index implementations behave.
func NewFileStore(dir string, syncEveryWrite bool) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, nextID: 1, sync: syncEveryWrite}, nil
}

func (s *FileStore) path(id int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("blob-%d.dat", id))
}

// Create implements Store.
func (s *FileStore) Create() (int64, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	f, err := os.Create(s.path(id))
	if err != nil {
		return 0, err
	}
	return id, f.Close()
}

// Open implements Store.
func (s *FileStore) Open(id int64) (Blob, error) {
	f, err := os.OpenFile(s.path(id), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("loblib: %w", err)
	}
	return &fileHandle{store: s, f: f}, nil
}

// Delete implements Store.
func (s *FileStore) Delete(id int64) error {
	return os.Remove(s.path(id))
}

// Stats implements Store.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

type fileHandle struct {
	store *FileStore
	f     *os.File
}

func (h *fileHandle) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.f.ReadAt(p, off)
	h.store.mu.Lock()
	h.store.stats.ReadOps++
	h.store.stats.BytesRead += int64(n)
	h.store.mu.Unlock()
	return n, err
}

func (h *fileHandle) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.f.WriteAt(p, off)
	h.store.mu.Lock()
	h.store.stats.WriteOps++
	h.store.stats.BytesWritten += int64(n)
	h.store.stats.PhysicalWrites++
	h.store.mu.Unlock()
	if err == nil && h.store.sync {
		err = h.f.Sync()
	}
	return n, err
}

func (h *fileHandle) Length() (int64, error) {
	st, err := h.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (h *fileHandle) Truncate(size int64) error { return h.f.Truncate(size) }

// Close releases the underlying file (LOB handles need no close).
func (h *fileHandle) Close() error { return h.f.Close() }
