package vetx

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis. Test files (_test.go) are excluded: the contracts vetx
// enforces are production-code contracts, and test helpers intentionally
// discard errors.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// Types and Info are nil when type checking failed (Load reports the
	// failure as an error); syntactic analyzers still run.
	Types *types.Package
	Info  *types.Info
}

// Load discovers, parses, and type-checks the packages matched by the
// patterns (Go-style: a directory, or dir/... for a recursive match)
// relative to the module root. It is intentionally stdlib-only: imports
// are resolved with the source importer, so no pre-built export data or
// external tooling is required.
func Load(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("vetx: %s: %w", dir, err)
		}
		var files []*ast.File
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("vetx: parse: %w", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{ImportPath: ipath, Dir: dir, Fset: fset, Files: files}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(ipath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("vetx: typecheck %s: %w", ipath, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// modulePath reads the module path from go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("vetx: %w (run from a module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vetx: no module line in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vetx: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves ./... style patterns into package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		recursive := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		base := p
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(filepath.Clean(base))
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(filepath.Clean(path))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
