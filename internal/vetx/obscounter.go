package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Obscounter returns the obscounter analyzer: inside the observability
// package (internal/obs), live aggregate types — structs whose name ends
// in "Stats" — must keep their numbers in Counter/Histogram fields so
// every update goes through the atomic helpers and stays race-free. An
// unexported bare numeric field in such a struct, or a direct
// assignment/increment of one, bypasses that discipline and silently
// reintroduces data races under concurrent sessions.
//
// Exported plain numeric fields are exempt: by the obs package's own
// convention they only appear in inert per-item slices of snapshots
// (e.g. CallbackStats inside ODCISnapshot), which are single-goroutine
// copies, not live aggregates.
func Obscounter() *Analyzer {
	return &Analyzer{
		Name:      "obscounter",
		Doc:       "obs live aggregates (*Stats) must count through Counter/Histogram, not bare numeric fields",
		NeedTypes: true,
		Run:       runObscounter,
	}
}

// obscounterScope reports whether the import path is the obs package (or
// a sub-package of it).
func obscounterScope(path string) bool {
	return strings.Contains(path+"/", "/internal/obs/")
}

func runObscounter(pkg *Package) []Finding {
	if !obscounterScope(pkg.ImportPath) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.TypeSpec:
				out = append(out, obscounterFields(pkg, s)...)
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					return true
				}
				for _, lh := range s.Lhs {
					out = append(out, obscounterWrite(pkg, lh)...)
				}
			case *ast.IncDecStmt:
				out = append(out, obscounterWrite(pkg, s.X)...)
			}
			return true
		})
	}
	return out
}

// obscounterFields flags unexported bare numeric fields declared in a
// live aggregate struct.
func obscounterFields(pkg *Package, spec *ast.TypeSpec) []Finding {
	if !strings.HasSuffix(spec.Name.Name, "Stats") {
		return nil
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return nil
	}
	var out []Finding
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.IsExported() {
				continue
			}
			obj, found := pkg.Info.Defs[name]
			if !found || !isBareNumeric(obj.Type()) {
				continue
			}
			out = append(out, Finding{
				Analyzer: "obscounter",
				Pos:      pkg.Fset.Position(name.Pos()),
				Message: fmt.Sprintf("live aggregate %s holds bare numeric field %s (%s); use obs.Counter or obs.Histogram so updates stay atomic",
					spec.Name.Name, name.Name, obj.Type()),
			})
		}
	}
	return out
}

// obscounterWrite flags an assignment or ++/-- target that is an
// unexported bare numeric field of a live aggregate struct.
func obscounterWrite(pkg *Package, target ast.Expr) []Finding {
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selInfo, found := pkg.Info.Selections[sel]
	if !found || selInfo.Kind() != types.FieldVal {
		return nil
	}
	fld, ok := selInfo.Obj().(*types.Var)
	if !ok || fld.Exported() || !isBareNumeric(fld.Type()) {
		return nil
	}
	named := namedRecv(selInfo.Recv())
	if named == nil || !strings.HasSuffix(named.Obj().Name(), "Stats") {
		return nil
	}
	if p := named.Obj().Pkg(); p == nil || !obscounterScope(p.Path()) {
		return nil
	}
	return []Finding{{
		Analyzer: "obscounter",
		Pos:      pkg.Fset.Position(target.Pos()),
		Message: fmt.Sprintf("direct write to %s.%s bypasses the atomic helpers; make the field an obs.Counter/Histogram and use Inc/Add/Observe",
			named.Obj().Name(), fld.Name()),
	}}
}

// isBareNumeric reports whether the type's underlying representation is a
// plain machine number (integer or float) — the shapes obs.Counter and
// obs.Histogram exist to replace.
func isBareNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}
