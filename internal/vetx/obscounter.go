package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Obscounter returns the obscounter analyzer: inside the observability
// package (internal/obs), live aggregate types — structs whose name ends
// in "Stats" — must keep their numbers in Counter/Histogram fields so
// every update goes through the atomic helpers and stays race-free. An
// unexported bare numeric field in such a struct, or a direct
// assignment/increment of one, bypasses that discipline and silently
// reintroduces data races under concurrent sessions.
//
// Exported plain numeric fields are exempt: by the obs package's own
// convention they only appear in inert per-item slices of snapshots
// (e.g. CallbackStats inside ODCISnapshot), which are single-goroutine
// copies, not live aggregates.
//
// Outside internal/obs the analyzer enforces the wait-event discipline
// instead: a site that measures blocked time with a raw time.Since and
// feeds it into a wait-named obs.Counter bypasses the wait-event table
// — the interval never reaches the per-class {count,total,max} rows or
// the duration histogram, so `\waits` and the smoke check go blind to
// it. Such sites must time the interval through
// obs.WaitStats.StartWait/Done (whose Done returns the nanos for any
// legacy gauge that still wants them).
func Obscounter() *Analyzer {
	return &Analyzer{
		Name:      "obscounter",
		Doc:       "obs live aggregates (*Stats) must count through Counter/Histogram, not bare numeric fields; wait gauges must record through WaitStats.StartWait",
		NeedTypes: true,
		Run:       runObscounter,
	}
}

// obscounterScope reports whether the import path is the obs package (or
// a sub-package of it).
func obscounterScope(path string) bool {
	return strings.Contains(path+"/", "/internal/obs/")
}

func runObscounter(pkg *Package) []Finding {
	if !obscounterScope(pkg.ImportPath) {
		return obscounterWaitBypass(pkg)
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.TypeSpec:
				out = append(out, obscounterFields(pkg, s)...)
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					return true
				}
				for _, lh := range s.Lhs {
					out = append(out, obscounterWrite(pkg, lh)...)
				}
			case *ast.IncDecStmt:
				out = append(out, obscounterWrite(pkg, s.X)...)
			}
			return true
		})
	}
	return out
}

// obscounterWaitBypass flags calls of the shape
//
//	<x>.<somethingWait*>.Add( … time.Since(…) … )
//
// outside internal/obs, where the field is an obs.Counter whose name
// contains "wait": the blocked interval is being measured by hand and
// poured into a gauge, bypassing the wait-event table. The fix is to
// time the interval with obs.WaitStats.StartWait/Done and feed the
// returned nanos to any legacy gauge.
func obscounterWaitBypass(pkg *Package) []Finding {
	if pkg.Info == nil {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || method.Sel.Name != "Add" || len(call.Args) != 1 {
				return true
			}
			fieldSel, ok := method.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, found := pkg.Info.Selections[fieldSel]
			if !found || selInfo.Kind() != types.FieldVal {
				return true
			}
			fld := selInfo.Obj()
			if !strings.Contains(strings.ToLower(fld.Name()), "wait") ||
				!isObsCounter(fld.Type()) || !containsTimeSince(pkg, call.Args[0]) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "obscounter",
				Pos:      pkg.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("wait gauge %s fed a raw time.Since interval, bypassing the wait-event table; time the wait with obs.WaitStats.StartWait/Done and feed Done's result to the gauge",
					fld.Name()),
			})
			return true
		})
	}
	return out
}

// isObsCounter reports whether t is the Counter type of internal/obs.
func isObsCounter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Counter" && obj.Pkg() != nil && obscounterScope(obj.Pkg().Path())
}

// containsTimeSince reports whether the expression's subtree calls
// time.Since.
func containsTimeSince(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Since" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}

// obscounterFields flags unexported bare numeric fields declared in a
// live aggregate struct.
func obscounterFields(pkg *Package, spec *ast.TypeSpec) []Finding {
	if !strings.HasSuffix(spec.Name.Name, "Stats") {
		return nil
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return nil
	}
	var out []Finding
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.IsExported() {
				continue
			}
			obj, found := pkg.Info.Defs[name]
			if !found || !isBareNumeric(obj.Type()) {
				continue
			}
			out = append(out, Finding{
				Analyzer: "obscounter",
				Pos:      pkg.Fset.Position(name.Pos()),
				Message: fmt.Sprintf("live aggregate %s holds bare numeric field %s (%s); use obs.Counter or obs.Histogram so updates stay atomic",
					spec.Name.Name, name.Name, obj.Type()),
			})
		}
	}
	return out
}

// obscounterWrite flags an assignment or ++/-- target that is an
// unexported bare numeric field of a live aggregate struct.
func obscounterWrite(pkg *Package, target ast.Expr) []Finding {
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selInfo, found := pkg.Info.Selections[sel]
	if !found || selInfo.Kind() != types.FieldVal {
		return nil
	}
	fld, ok := selInfo.Obj().(*types.Var)
	if !ok || fld.Exported() || !isBareNumeric(fld.Type()) {
		return nil
	}
	named := namedRecv(selInfo.Recv())
	if named == nil || !strings.HasSuffix(named.Obj().Name(), "Stats") {
		return nil
	}
	if p := named.Obj().Pkg(); p == nil || !obscounterScope(p.Path()) {
		return nil
	}
	return []Finding{{
		Analyzer: "obscounter",
		Pos:      pkg.Fset.Position(target.Pos()),
		Message: fmt.Sprintf("direct write to %s.%s bypasses the atomic helpers; make the field an obs.Counter/Histogram and use Inc/Add/Observe",
			named.Obj().Name(), fld.Name()),
	}}
}

// isBareNumeric reports whether the type's underlying representation is a
// plain machine number (integer or float) — the shapes obs.Counter and
// obs.Histogram exist to replace.
func isBareNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}
