package vetx

import (
	"fmt"
	"go/ast"
	"strings"
)

// CallbackContract returns the callbackcontract analyzer, which enforces
// the ODCIIndex callback error contract on cartridge packages
// (internal/cartridge/...): indextype routines are invoked implicitly by
// the engine in the middle of DML and scans, so a failure must surface as
// an error return that the engine can convert into statement-level
// rollback — a panic would rip through the executor with locks held and
// transactions half-applied. Concretely:
//
//   - cartridge non-test code must not call panic;
//   - any method whose first parameter is an extidx.Server (i.e. an
//     ODCIIndex-style callback entry point) must declare error as its
//     final result.
func CallbackContract() *Analyzer {
	return &Analyzer{
		Name: "callbackcontract",
		Doc:  "cartridge callbacks must propagate errors and never panic",
		Run:  runCallbackContract,
	}
}

func runCallbackContract(pkg *Package) []Finding {
	if !strings.Contains(pkg.ImportPath, "/cartridge/") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isPanicCall(x) {
					out = append(out, Finding{
						Analyzer: "callbackcontract",
						Pos:      pkg.Fset.Position(x.Pos()),
						Message:  "cartridge code must return errors, not panic: the engine converts callback errors into statement rollback",
					})
				}
			case *ast.FuncDecl:
				if f := checkCallbackSignature(pkg, x); f != nil {
					out = append(out, *f)
				}
			}
			return true
		})
	}
	return out
}

// checkCallbackSignature flags callback entry points (first parameter of a
// Server type) that do not return error last.
func checkCallbackSignature(pkg *Package, fd *ast.FuncDecl) *Finding {
	if fd.Recv == nil || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil
	}
	if !isServerParam(fd.Type.Params.List[0].Type) {
		return nil
	}
	res := fd.Type.Results
	if res != nil && len(res.List) > 0 {
		last := res.List[len(res.List)-1].Type
		if id, ok := last.(*ast.Ident); ok && id.Name == "error" {
			return nil
		}
	}
	f := Finding{
		Analyzer: "callbackcontract",
		Pos:      pkg.Fset.Position(fd.Pos()),
		Message:  fmt.Sprintf("callback method %s takes a Server but does not return error as its final result", fd.Name.Name),
	}
	return &f
}

// isServerParam matches `extidx.Server` (any package alias) or a bare
// `Server` identifier.
func isServerParam(t ast.Expr) bool {
	switch x := t.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "Server"
	case *ast.Ident:
		return x.Name == "Server"
	}
	return false
}
