// Package vetx is the repo's codebase-specific static-analysis framework:
// a stdlib-only (go/parser + go/ast + go/types) driver plus analyzers that
// mechanically enforce the correctness protocols every cartridge depends
// on — the lock discipline, the pager pin/unpin protocol, the ODCIIndex
// callback error contract, and the storage layering rules. The same
// contracts are checked dynamically by the `invariants` build tag (see
// internal/storage and internal/btree); vetx is the static half.
//
// Run it as `go run ./cmd/vetx ./...`. A finding can be suppressed with an
// inline directive on the offending line or the line above it:
//
//	//vetx:ignore <analyzer>[,<analyzer>...] -- <justification>
//
// The justification is mandatory; a directive without one is itself
// reported. See DESIGN.md "Static analysis & invariants" for the
// contracts each analyzer enforces.
package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded package, or — when RunProgram
// is set — over the whole-program call graph built from every loaded
// package at once.
type Analyzer struct {
	Name string
	Doc  string
	// NeedTypes marks analyzers that require type information; the driver
	// skips them (with an error finding) when type checking failed.
	NeedTypes bool
	Run       func(pkg *Package) []Finding
	// RunProgram marks an interprocedural analyzer: it receives the call
	// graph over all packages (see BuildProgram) instead of one package at
	// a time. Exactly one of Run and RunProgram is set.
	RunProgram func(prog *Program) []Finding
}

// DefaultAnalyzers returns the full analyzer suite with the repo's
// production configuration.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		LockBalance(),
		PinBalance(),
		ErrAudit(),
		Obscounter(),
		CallbackContract(),
		Batchcontract(),
		Layering(DefaultLayeringConfig()),
		LockOrder(),
		CallbackUnderLock(),
		ChunkAlias(),
		AtomicMix(),
	}
}

// Run applies the analyzers to every package, filters suppressed findings,
// and returns the survivors sorted by position. Malformed suppression
// directives are reported as findings of the pseudo-analyzer "vetx", and so
// is any directive that suppressed nothing (it names only analyzers in the
// running set, yet no finding matched — dead suppressions rot).
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	// Suppressions are collected globally: program-level analyzers emit
	// findings across package boundaries, and unused-directive detection
	// must see the full run either way.
	sup := &suppressions{byLine: map[string]map[string]*directive{}}
	for _, pkg := range pkgs {
		out = append(out, sup.collect(pkg)...)
	}

	var programAnalyzers []*Analyzer
	for _, an := range analyzers {
		if an.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, an)
			continue
		}
		for _, pkg := range pkgs {
			if an.NeedTypes && pkg.Info == nil {
				continue
			}
			for _, f := range an.Run(pkg) {
				if !sup.suppressed(an.Name, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	if len(programAnalyzers) > 0 {
		prog := BuildProgram(pkgs)
		for _, an := range programAnalyzers {
			for _, f := range an.RunProgram(prog) {
				if !sup.suppressed(an.Name, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}

	out = append(out, sup.unused(analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ---------------------------------------------------------------------------
// Suppression directives

const ignoreDirective = "//vetx:ignore"

// directive is one parsed //vetx:ignore comment; used tracks whether it
// actually suppressed a finding this run.
type directive struct {
	pos   token.Position
	names map[string]bool // "all" suppresses every analyzer
	used  bool
}

type suppressions struct {
	// byLine maps file:line to the directives covering that line.
	byLine map[string]map[string]*directive
	all    []*directive
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	set := s.byLine[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	if set == nil {
		return false
	}
	hit := false
	for _, d := range []*directive{set[analyzer], set["all"]} {
		if d != nil {
			d.used = true
			hit = true
		}
	}
	return hit
}

// unused reports directives that suppressed nothing. Only directives whose
// named analyzers were all part of this run are judged — a partial run
// (single-analyzer fixture tests, cmd/vetx with a subset) can't tell
// whether another analyzer would have matched. "all" directives are never
// reported; they are judged only by the full suite.
func (s *suppressions) unused(analyzers []*Analyzer) []Finding {
	running := map[string]bool{}
	for _, an := range analyzers {
		running[an.Name] = true
	}
	var out []Finding
	for _, d := range s.all {
		if d.used || d.names["all"] {
			continue
		}
		covered := true
		for n := range d.names {
			if !running[n] {
				covered = false
				break
			}
		}
		if covered {
			out = append(out, Finding{
				Analyzer: "vetx",
				Pos:      d.pos,
				Message:  "vetx:ignore directive suppresses nothing; remove it",
			})
		}
	}
	return out
}

// collect scans file comments for //vetx:ignore directives. A directive
// suppresses findings on its own line (trailing comment) and on the
// following line (standalone comment above the code). Malformed directives
// are returned as findings.
func (s *suppressions) collect(pkg *Package) []Finding {
	var malformed []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				names, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					malformed = append(malformed, Finding{
						Analyzer: "vetx",
						Pos:      pos,
						Message:  "vetx:ignore directive without a justification (use //vetx:ignore <analyzer> -- <reason>)",
					})
					continue
				}
				set := map[string]bool{}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
				if len(set) == 0 {
					malformed = append(malformed, Finding{
						Analyzer: "vetx",
						Pos:      pos,
						Message:  "vetx:ignore directive names no analyzer",
					})
					continue
				}
				d := &directive{pos: pos, names: set}
				s.all = append(s.all, d)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if s.byLine[key] == nil {
						s.byLine[key] = map[string]*directive{}
					}
					for n := range set {
						s.byLine[key][n] = d
					}
				}
			}
		}
	}
	return malformed
}

// ---------------------------------------------------------------------------
// Small AST helpers shared by analyzers

// exprString renders simple receiver expressions (identifiers and selector
// chains) to a stable key; anything more exotic renders positionally.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.BasicLit:
		return x.Value
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}

// isPanicCall reports whether the call is the builtin panic.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// funcBodies yields every function body in the file — declarations and
// literals — exactly once each. Analyzers that do per-function flow
// analysis iterate these and must not descend into nested literals
// themselves.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}
