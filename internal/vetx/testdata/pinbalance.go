// Fixture for the pinbalance analyzer: a miniature of the pager pin
// protocol. Lines expected to be flagged carry a "// want:<analyzer>"
// marker.
package fixture

type page struct {
	ID   int
	Data []byte
}

type pool struct{}

func (p *pool) Fetch(id int) (*page, error) { return nil, nil }
func (p *pool) NewPage() (*page, error)     { return nil, nil }
func (p *pool) Unpin(pg *page, dirty bool)  {}
func inspect(pg *page) error                { return nil }

// LinearOK: fetch, use, unpin.
func LinearOK(p *pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	_ = pg.Data
	p.Unpin(pg, false)
	return nil
}

// DeferOK: deferred unpin covers every path.
func DeferOK(p *pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	defer p.Unpin(pg, true)
	return nil
}

// ClosureDeferOK: unpin inside a deferred closure.
func ClosureDeferOK(p *pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	defer func() {
		p.Unpin(pg, true)
	}()
	return nil
}

// EarlyReturnBad leaks the pin on the early return.
func EarlyReturnBad(p *pool, c bool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	if c {
		return nil // want:pinbalance
	}
	p.Unpin(pg, false)
	return nil
}

// ReassignedErrBad: the err != nil guard below belongs to inspect, not to
// Fetch — the pin exists and leaks on that return.
func ReassignedErrBad(p *pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	err = inspect(pg)
	if err != nil {
		return err // want:pinbalance
	}
	p.Unpin(pg, true)
	return nil
}

// DiscardBad throws the pinned page away.
func DiscardBad(p *pool) {
	_, _ = p.Fetch(1) // want:pinbalance
}

// TransferOK returns the pinned page: ownership moves to the caller,
// exactly like Pager.Fetch itself.
func TransferOK(p *pool) (*page, error) {
	pg, err := p.Fetch(1)
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// NewPageFallthroughBad allocates and never unpins.
func NewPageFallthroughBad(p *pool) {
	pg, err := p.NewPage()
	if err != nil {
		return
	}
	_ = pg
} // want:pinbalance

// LoopOK pins and unpins on each iteration.
func LoopOK(p *pool, ids []int) error {
	for _, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			return err
		}
		p.Unpin(pg, false)
	}
	return nil
}

// BranchReleaseOK unpins on each terminating path.
func BranchReleaseOK(p *pool, c bool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	if c {
		p.Unpin(pg, false)
		return nil
	}
	if err := inspect(pg); err != nil {
		p.Unpin(pg, false)
		return err
	}
	p.Unpin(pg, true)
	return nil
}

// SuppressedOK: sanctioned pin handoff with justification.
func SuppressedOK(p *pool, sink func(*page)) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	sink(pg)
	//vetx:ignore pinbalance -- fixture: sink takes over the pin
	return nil
}
