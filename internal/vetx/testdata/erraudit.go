// Fixture for the erraudit analyzer. The test typechecks this file (it
// needs type info to see which results are errors) under an import path
// containing /internal/. Flagged lines carry a "// want:<analyzer>"
// marker.
package errfix

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error        { return nil }
func twoVals() (int, error) { return 0, nil }
func answer() int           { return 42 }

// BareCallBad drops the error by calling mayFail as a statement.
func BareCallBad() {
	mayFail() // want:erraudit
}

// BlankAssignBad discards the error into the blank identifier.
func BlankAssignBad() {
	_ = mayFail() // want:erraudit
}

// MultiBlankBad keeps the value but blanks the error.
func MultiBlankBad() int {
	n, _ := twoVals() // want:erraudit
	return n
}

// HandledOK checks every error.
func HandledOK() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := twoVals()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// PrintFamilyOK: fmt print calls and Builder writes are conventionally
// unchecked and documented never to fail.
func PrintFamilyOK() string {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "x %d\n", 1)
	var b strings.Builder
	b.WriteString("ok")
	return b.String()
}

// DeferGoOK: deferred and go'd calls cannot observe the error without a
// wrapper; they are accepted idiom.
func DeferGoOK() {
	defer mayFail()
	go mayFail()
}

// NonErrorOK: discarding non-error values is not erraudit's business.
func NonErrorOK() {
	_ = answer()
	answer()
}

// SuppressedOK shows the sanctioned discard with a justification.
func SuppressedOK() {
	//vetx:ignore erraudit -- fixture: best-effort cleanup, failure is benign
	mayFail()
}
