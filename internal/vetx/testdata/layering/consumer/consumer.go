// Fixture consumer package for the layering analyzer test: it sits
// outside the allowed layer and calls the restricted pager/heap protocol
// directly. Flagged lines carry a "// want:<analyzer>" marker.
package consumer

import "fixture/storage"

// Bad drives the pin protocol and mutates the heap from outside the
// storage/engine layer.
func Bad(p *storage.Pager, h *storage.Heap) error {
	pg, err := p.Fetch(1) // want:layering
	if err != nil {
		return err
	}
	p.Unpin(pg, false)                       // want:layering
	if _, err := h.Insert(nil); err != nil { // want:layering
		return err
	}
	return nil
}

// ReadOK only uses unrestricted read accessors.
func ReadOK(p *storage.Pager, h *storage.Heap) error {
	_ = p.Stats()
	_, err := h.Get(0)
	return err
}

// SuppressedOK shows a justified exception.
func SuppressedOK(p *storage.Pager) {
	//vetx:ignore layering -- fixture: dump tool needs raw page access
	pg, err := p.Fetch(2)
	if err != nil {
		return
	}
	//vetx:ignore layering -- fixture: dump tool needs raw page access
	p.Unpin(pg, false)
}
