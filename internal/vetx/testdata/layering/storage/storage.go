// Fixture storage package for the layering analyzer test: a miniature of
// internal/storage's restricted surface. The test typechecks it under the
// import path "fixture/storage".
package storage

type PageID uint32

type Page struct {
	Data []byte
}

type Pager struct{}

func (p *Pager) Fetch(id PageID) (*Page, error) { return nil, nil }
func (p *Pager) Unpin(pg *Page, dirty bool)     {}
func (p *Pager) Stats() int                     { return 0 }

type Heap struct{}

func (h *Heap) Insert(rec []byte) (int, error) { return 0, nil }
func (h *Heap) Get(rid int) ([]byte, error)    { return nil, nil }
