// Fixture for the callbackcontract analyzer. The test registers it under
// an import path containing /cartridge/ (the analyzer only fires there).
// Parse-only: the extidx qualifier below is never resolved. Flagged lines
// carry a "// want:<analyzer>" marker.
package cartfix

// Server stands in for extidx.Server.
type Server interface {
	Anything()
}

type Methods struct{}

// GoodCreate is a well-formed callback: Server first, error last.
func (m *Methods) GoodCreate(srv Server, name string) error { return nil }

// BadNoError is a callback entry point without an error result: the
// engine would have no channel to turn its failure into a rollback.
func (m *Methods) BadNoError(srv Server, name string) { // want:callbackcontract
}

// BadSelector uses the qualified Server form and still lacks the error.
func (m *Methods) BadSelector(srv extidx.Server) { // want:callbackcontract
}

// BadPanic propagates failure the forbidden way.
func (m *Methods) BadPanic(srv Server) error {
	panic("boom") // want:callbackcontract
}

// NotCallback takes no Server, so no signature requirement applies.
func (m *Methods) NotCallback(name string) {}

func helperOK(n int) int { return n + 1 }

// SuppressedPanic shows the escape hatch for a provably unreachable panic.
func (m *Methods) SuppressedPanic(srv Server) error {
	//vetx:ignore callbackcontract -- fixture: unreachable by construction
	panic("unreachable")
}
