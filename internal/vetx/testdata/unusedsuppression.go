// Fixture for unused-suppression detection. One directive earns its keep
// (it hides a real lockbalance finding), one names a running analyzer but
// suppresses nothing, and one names an analyzer outside the run set (not
// judged: a partial run can't know whether it would have matched).
package supfix

import "sync"

type T struct {
	mu sync.Mutex
}

// used: the missing Unlock below is a genuine lockbalance finding,
// reported at the closing brace.
func (t *T) leaky() {
	t.mu.Lock()
	//vetx:ignore lockbalance -- fixture: exercising a used suppression
}

// unused: balanced code, nothing to suppress.
//vetx:ignore lockbalance -- fixture: UNUSED directive with no matching finding
func (t *T) balanced() {
	t.mu.Lock()
	t.mu.Unlock()
}

// not judged: erraudit is not part of this run.
//vetx:ignore erraudit -- fixture: names an analyzer outside the run set
func (t *T) other() {}
