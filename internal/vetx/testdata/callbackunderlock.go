// Fixture for the callbackunderlock analyzer: cartridge callbacks (calls
// through an ODCI boundary interface) must not run under an engine mutex,
// including when the lock was taken by a caller further up the chain.
package cbulfix

import "sync"

// IndexMethods stands in for the extidx boundary interface; detection is
// by interface name, so the fixture declares its own.
type IndexMethods interface {
	Start() error
}

type Runner struct {
	mu sync.Mutex
	im IndexMethods
}

// bad invokes the callback with mu held.
func (r *Runner) bad() {
	r.mu.Lock()
	r.im.Start() // want:callbackunderlock
	r.mu.Unlock()
}

// good releases before the callback.
func (r *Runner) good() {
	r.mu.Lock()
	r.mu.Unlock()
	r.im.Start()
}

// outer holds mu across inner, which invokes the callback: the lock is
// held two frames up.
func (r *Runner) outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner()
}

func (r *Runner) inner() {
	r.im.Start() // want:callbackunderlock
}

// spawn hands the callback to a fresh goroutine: the goroutine does not
// inherit the caller's locks.
func (r *Runner) spawn() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go r.im.Start()
}
