// Fixture for the batchcontract analyzer. Parsed (not compiled) by the
// tests under the import path repro/internal/exec.
package exec

type Row []int

type Chunk struct{ Rows []Row }

type heapT struct{}

func (heapT) Get(rid int64) ([]byte, error)      { return nil, nil }
func (heapT) GetBatchFunc(rids []int64, fn func(int, []byte) error) error { return nil }

type cacheT struct{}

func (cacheT) Get(k int64) ([]byte, error) { return nil, nil }

// legacyScan still speaks row-at-a-time Volcano: Next/Close with no
// NextBatch. This no longer satisfies exec.Iterator.
type legacyScan struct{ pos int }

func (l *legacyScan) Next() (Row, error) { // want:batchcontract
	l.pos++
	return nil, nil
}

func (l *legacyScan) Close() error { return nil }

// batchScan is the sanctioned shape: NextBatch + Close.
type batchScan struct{}

func (b *batchScan) NextBatch(c *Chunk) error { return nil }
func (b *batchScan) Close() error             { return nil }

// adapterScan keeps a row-mode Next alongside NextBatch (RowAdapter
// pattern) — allowed.
type adapterScan struct{}

func (a *adapterScan) Next() (Row, error)     { return nil, nil }
func (a *adapterScan) NextBatch(c *Chunk) error { return nil }
func (a *adapterScan) Close() error           { return nil }

// notAnIterator has a two-result Next but no Close; it is not an
// operator, so rule 1 leaves it alone.
type notAnIterator struct{}

func (notAnIterator) Next() (Row, error) { return nil, nil }

type fetchOp struct{ Heap heapT }

// perRowFetch re-serializes a batch into one heap pin per row.
func perRowFetch(op fetchOp, rids []int64) error {
	for _, rid := range rids {
		if _, err := op.Heap.Get(rid); err != nil { // want:batchcontract
			return err
		}
	}
	return nil
}

// nestedFetch exercises the nested-loop dedup: the call sits in two
// enclosing loops but must be reported once.
func nestedFetch(heap heapT, groups [][]int64) {
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			heap.Get(g[i]) // want:batchcontract
		}
	}
}

// singleFetch calls Get straight-line (per-row baseline helper) — clean.
func singleFetch(op fetchOp, rid int64) ([]byte, error) { return op.Heap.Get(rid) }

// batchedFetch uses the page-sorted batch read inside its loop — clean.
func batchedFetch(heap heapT, batches [][]int64) error {
	for _, rids := range batches {
		if err := heap.GetBatchFunc(rids, func(i int, img []byte) error { return nil }); err != nil {
			return err
		}
	}
	return nil
}

// cacheLoop calls Get on a non-heap receiver in a loop — clean.
func cacheLoop(c cacheT, keys []int64) {
	for _, k := range keys {
		c.Get(k)
	}
}
