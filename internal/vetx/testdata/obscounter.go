// Fixture for the obscounter analyzer. The test typechecks this file
// under an import path inside internal/obs: live aggregates (structs
// named *Stats) must count through Counter/Histogram fields, never bare
// unexported numerics. Flagged lines carry a "// want:<analyzer>"
// marker.
package obs

import "sync/atomic"

// Counter stands in for the real obs.Counter: the helper wrapper every
// live-aggregate field is supposed to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// WaitStats stands in for the real wait-event table; the obswait
// fixture's compliant sites record through it.
type WaitStats struct{ total Counter }

// ActiveWait is the in-flight wait handle StartWait returns.
type ActiveWait struct{ w *WaitStats }

// StartWait begins timing a wait.
func (w *WaitStats) StartWait(class int) ActiveWait { return ActiveWait{w: w} }

// Done finishes the wait and returns its nanos.
func (a ActiveWait) Done() int64 {
	if a.w != nil {
		a.w.total.Inc()
	}
	return 1
}

// ScanStats is a live aggregate that wrongly mixes bare numeric fields
// in with its counters.
type ScanStats struct {
	starts  Counter
	fetches int64   // want:obscounter
	ratio   float64 // want:obscounter
}

// RecordBad updates the bare fields directly — every write is a race
// under concurrent sessions.
func (s *ScanStats) RecordBad(n int64) {
	s.fetches++          // want:obscounter
	s.fetches += n       // want:obscounter
	s.ratio = float64(n) // want:obscounter
}

// RecordOK goes through the helper.
func (s *ScanStats) RecordOK() {
	s.starts.Inc()
}

// ScanSnapshot is an inert copy: plain exported fields are the point of
// a snapshot, and the type name does not claim to be a live aggregate.
type ScanSnapshot struct {
	Starts  int64
	Fetches int64
}

// SliceStats mirrors CallbackStats: a Stats-named per-item slice of a
// snapshot. Its fields are exported plain numerics — an inert copy, so
// reads and writes need no atomics.
type SliceStats struct {
	Calls int64
	Nanos int64
}

// merge folds one snapshot slice into another; exported-field writes on
// snapshot types are legitimate.
func merge(dst *SliceStats, src SliceStats) {
	dst.Calls += src.Calls
	dst.Nanos += src.Nanos
}

// legacyStats shows the sanctioned escape hatch with a justification.
type legacyStats struct {
	//vetx:ignore obscounter -- fixture: grandfathered single-goroutine gauge
	gauge int64
}

// touch keeps the suppressed field (and the type) referenced.
func touch(l *legacyStats) int64 { return l.gauge }
