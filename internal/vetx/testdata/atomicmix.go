// Fixture for the atomicmix analyzer: once a field or package variable is
// touched through function-style sync/atomic, every access must be.
package atomfix

import "sync/atomic"

type Counter struct {
	hits  int64
	plain int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Get() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *Counter) Race() int64 {
	return c.hits // want:atomicmix
}

// plain is never touched atomically: ordinary access is fine.
func (c *Counter) Bump() {
	c.plain++
}

var total int64

func AddTotal(d int64) {
	atomic.AddInt64(&total, d)
}

func ReadTotal() int64 {
	return total // want:atomicmix
}
