// Fixture for the obscounter wait-bypass rule. The test typechecks this
// file under an import path OUTSIDE internal/obs (an engine-layer
// package): a site that measures blocked time with a raw time.Since and
// pours it into a wait-named obs.Counter bypasses the wait-event table
// and must instead time the interval through WaitStats.StartWait/Done.
package enginefix

import (
	"time"

	"repro/internal/obs"
)

// gate mirrors the engine's admission bookkeeping: wait-named legacy
// gauges of type obs.Counter.
type gate struct {
	admitWaits     obs.Counter
	admitWaitNanos obs.Counter
	fetches        obs.Counter
}

// badAcquire hand-times the blocked interval and feeds it straight to
// the gauge — the wait never reaches the per-class table.
func (g *gate) badAcquire() {
	start := time.Now()
	g.admitWaits.Inc()
	g.admitWaitNanos.Add(time.Since(start).Nanoseconds()) // want:obscounter
}

// goodAcquire times the wait through the table; Done returns the nanos
// so the legacy gauge still gets fed, from the same measurement.
func (g *gate) goodAcquire(w *obs.WaitStats) {
	aw := w.StartWait(0)
	n := aw.Done()
	g.admitWaits.Inc()
	g.admitWaitNanos.Add(n)
}

// notAWaitField feeds time.Since into a counter that is not a wait
// gauge — out of the rule's scope (it is not blocked time).
func (g *gate) notAWaitField(start time.Time) {
	g.fetches.Add(time.Since(start).Nanoseconds())
}

// suppressed shows the sanctioned escape hatch.
func (g *gate) suppressed(start time.Time) {
	//vetx:ignore obscounter -- fixture: grandfathered hand-timed gauge
	g.admitWaitNanos.Add(time.Since(start).Nanoseconds())
}
