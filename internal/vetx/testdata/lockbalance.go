// Fixture for the lockbalance analyzer. Lines expected to be flagged
// carry a "// want:<analyzer>" marker; the test compares marker lines
// against finding lines.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// DeferOK: the canonical pattern.
func (g *guarded) DeferOK() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// LinearOK: explicit unlock before fall-through.
func (g *guarded) LinearOK() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// EarlyReturnBad leaks the lock on the early return.
func (g *guarded) EarlyReturnBad(c bool) int {
	g.mu.Lock()
	if c {
		return g.n // want:lockbalance
	}
	g.mu.Unlock()
	return 0
}

// BranchesOK releases on every path.
func (g *guarded) BranchesOK(c bool) int {
	g.mu.Lock()
	if c {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

// MismatchBad pairs RLock with Unlock, so the read lock is never
// released (and the write side is spuriously unlocked).
func (g *guarded) MismatchBad() {
	g.rw.RLock()
	g.rw.Unlock()
} // want:lockbalance

// RWOk pairs reader and writer correctly.
func (g *guarded) RWOk() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// LoopBad acquires inside a loop and returns without releasing.
func (g *guarded) LoopBad(xs []int) int {
	for range xs {
		g.mu.Lock()
	}
	return g.n // want:lockbalance
}

// SwitchBad leaks on one case arm only.
func (g *guarded) SwitchBad(k int) int {
	g.mu.Lock()
	switch k {
	case 0:
		g.mu.Unlock()
		return 0
	case 1:
		return 1 // want:lockbalance
	}
	g.mu.Unlock()
	return 2
}

// ClosureDeferOK releases through a deferred closure.
func (g *guarded) ClosureDeferOK() int {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	return g.n
}

// ClosureEscapeNotCredited: an unlock inside a non-deferred closure does
// not release the lock at the point of definition.
func (g *guarded) ClosureEscapeNotCredited() func() {
	g.mu.Lock()
	release := func() { g.mu.Unlock() }
	return release // want:lockbalance
}

// SuppressedOK shows the sanctioned escape hatch for intentional
// lock-ownership transfer.
func (g *guarded) SuppressedOK() func() {
	g.mu.Lock()
	//vetx:ignore lockbalance -- fixture: ownership transfers to the returned closure
	return func() { g.mu.Unlock() }
}

// MalformedDirective: a suppression without justification is itself
// reported (and does not suppress).
func (g *guarded) MalformedDirective() func() {
	g.mu.Lock()
	//vetx:ignore lockbalance // want:vetx
	return func() { g.mu.Unlock() } // want:lockbalance
}
