// Fixture for the lockorder analyzer: a seeded two-mutex cycle reached
// interprocedurally, an observed edge contradicting a declared order, and
// a malformed directive. Locks h and i are acquired in a consistent order
// everywhere and must stay silent.
package lockordfix

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
	x sync.Mutex
	y sync.Mutex
	h sync.Mutex
	i sync.RWMutex
}

// f acquires a and reaches b through helper: edge a -> b.
func (s *S) f() {
	s.a.Lock()
	s.helper()
	s.a.Unlock()
}

func (s *S) helper() {
	s.b.Lock() // want:lockorder  (cycle witness: b taken with a held via f)
	s.b.Unlock()
}

// g acquires in the opposite order: edge b -> a closes the cycle.
func (s *S) g() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

//vetx:lockorder lockordfix.S.x < lockordfix.S.y

// hOrder violates the declared x < y order.
func (s *S) hOrder() {
	s.y.Lock()
	s.x.Lock() // want:lockorder
	s.x.Unlock()
	s.y.Unlock()
}

//vetx:lockorder malformed, no less-than, want:lockorder

// consistent nests h then i everywhere: no finding.
func (s *S) consistent() {
	s.h.Lock()
	defer s.h.Unlock()
	s.i.RLock()
	defer s.i.RUnlock()
}

func (s *S) consistent2() {
	s.h.Lock()
	s.i.Lock()
	s.i.Unlock()
	s.h.Unlock()
}
