// Fixture for the chunkalias analyzer: a *Chunk parameter is caller-owned
// and recycled, so the callee must not retain the pointer or its
// Rows/RIDs/Anc slices past return. Individual Rows are safe to keep.
package chunkfix

type Row struct{ V int }

type Chunk struct {
	Rows []Row
	RIDs []int64
}

type Op struct {
	ch    *Chunk
	saved []Row
	rids  map[int]([]int64)
	cb    func() int
	last  Row
}

func (o *Op) NextBatch(c *Chunk) {
	o.ch = c // want:chunkalias
	o.saved = c.Rows // want:chunkalias
	rows := c.Rows
	o.saved = rows[:1] // want:chunkalias
	o.rids[0] = c.RIDs // want:chunkalias
	o.cb = func() int { return len(rows) } // want:chunkalias
	go consume(c.Rows) // want:chunkalias

	// All legal: append copies, single rows are never recycled, and
	// writes into the chunk are the producer filling it.
	o.saved = append(o.saved, c.Rows...)
	o.last = c.Rows[0]
	c.Rows = c.Rows[:0]
	c.RIDs = append(c.RIDs, 7)
	local := c
	_ = local
}

// SendBatch exercises the exchange-handoff rule: the caller-owned chunk
// (or a local alias, or its slices) must never cross a channel; a chunk
// freshly allocated by the sender may.
func (o *Op) SendBatch(c *Chunk, out chan *Chunk, rowsCh chan []Row) {
	out <- c // want:chunkalias
	rowsCh <- c.Rows // want:chunkalias
	alias := c
	out <- alias // want:chunkalias

	// Legal: the sender allocates a fresh chunk for the handoff and
	// never touches it again (the Exchange worker pattern).
	ck := &Chunk{Rows: append([]Row(nil), c.Rows...)}
	out <- ck
}

// NoChunk has no *Chunk parameter; field stores of its own buffers are its
// business.
func (o *Op) NoChunk(rows []Row) {
	o.saved = rows
}

func consume(rows []Row) {}
