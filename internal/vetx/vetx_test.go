package vetx

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: each testdata file marks the lines an analyzer must flag
// with a trailing "// want:<analyzer>" comment. The test runs the analyzer
// through Run (so suppression directives are exercised too) and compares
// the (line, analyzer) set of findings against the markers.

var wantRe = regexp.MustCompile(`want:([a-z]+)`)

// parseFixture parses testdata files into a Package without type info.
func parseFixture(t *testing.T, importPath string, filenames ...string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		path := filepath.Join("testdata", fn)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	return &Package{ImportPath: importPath, Dir: "testdata", Fset: fset, Files: files}
}

// typecheckFixture fills in Types/Info using the given importer.
func typecheckFixture(t *testing.T, pkg *Package, imp types.Importer) {
	t.Helper()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.ImportPath, pkg.Fset, pkg.Files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkg.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// markers collects the expected (line -> analyzer set) map from want
// comments.
func markers(pkg *Package) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ms := wantRe.FindAllStringSubmatch(c.Text, -1)
				if len(ms) == 0 {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if out[line] == nil {
					out[line] = map[string]bool{}
				}
				for _, m := range ms {
					out[line][m[1]] = true
				}
			}
		}
	}
	return out
}

// checkFindings runs the analyzer via Run and diffs findings against
// markers.
func checkFindings(t *testing.T, pkg *Package, an *Analyzer) {
	t.Helper()
	want := markers(pkg)
	got := map[int]map[string]bool{}
	for _, f := range Run([]*Package{pkg}, []*Analyzer{an}) {
		if got[f.Pos.Line] == nil {
			got[f.Pos.Line] = map[string]bool{}
		}
		got[f.Pos.Line][f.Analyzer] = true
		if !want[f.Pos.Line][f.Analyzer] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, names := range want {
		for name := range names {
			if !got[line][name] {
				t.Errorf("missing %s finding at line %d", name, line)
			}
		}
	}
}

func TestLockBalance(t *testing.T) {
	pkg := parseFixture(t, "fixture/lockfix", "lockbalance.go")
	checkFindings(t, pkg, LockBalance())
}

func TestPinBalance(t *testing.T) {
	pkg := parseFixture(t, "fixture/pinfix", "pinbalance.go")
	checkFindings(t, pkg, PinBalance())
}

func TestErrAudit(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/errfix", "erraudit.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	checkFindings(t, pkg, ErrAudit())
}

func TestErrAuditSkipsNonInternal(t *testing.T) {
	pkg := parseFixture(t, "example.com/public/errfix", "erraudit.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	if fs := ErrAudit().Run(pkg); len(fs) != 0 {
		t.Errorf("erraudit flagged non-internal package: %v", fs)
	}
}

func TestObscounter(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/obs", "obscounter.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	checkFindings(t, pkg, Obscounter())
}

func TestObscounterSkipsOtherPackages(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/exec", "obscounter.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	if fs := Obscounter().Run(pkg); len(fs) != 0 {
		t.Errorf("obscounter fired outside internal/obs: %v", fs)
	}
}

// fallbackImporter tries the map first (fixture packages), then the
// source importer (stdlib).
type fallbackImporter struct {
	m    mapImporter
	next types.Importer
}

func (f fallbackImporter) Import(path string) (*types.Package, error) {
	if p, err := f.m.Import(path); err == nil {
		return p, nil
	}
	return f.next.Import(path)
}

// obswaitFixture typechecks the wait-bypass fixture (an engine-layer
// package) against the fixture obs package.
func obswaitFixture(t *testing.T, importPath string) *Package {
	t.Helper()
	obsPkg := parseFixture(t, "repro/internal/obs", "obscounter.go")
	typecheckFixture(t, obsPkg, importer.ForCompiler(obsPkg.Fset, "source", nil))
	pkg := parseFixture(t, importPath, "obswait.go")
	typecheckFixture(t, pkg, fallbackImporter{
		m:    mapImporter{"repro/internal/obs": obsPkg.Types},
		next: importer.ForCompiler(pkg.Fset, "source", nil),
	})
	return pkg
}

func TestObscounterWaitBypass(t *testing.T) {
	checkFindings(t, obswaitFixture(t, "repro/internal/enginefix"), Obscounter())
}

// TestObscounterWaitBypassSkipsObs: the rule polices consumers of the
// wait table, not the obs package itself (whose own internals
// legitimately handle raw durations).
func TestObscounterWaitBypassSkipsObs(t *testing.T) {
	pkg := obswaitFixture(t, "repro/internal/obs/enginefix")
	for _, f := range Obscounter().Run(pkg) {
		if strings.Contains(f.Message, "wait gauge") {
			t.Errorf("wait-bypass rule fired inside internal/obs: %v", f)
		}
	}
}

func TestCallbackContract(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/cartridge/cartfix", "callbackcontract.go")
	checkFindings(t, pkg, CallbackContract())
}

func TestCallbackContractSkipsNonCartridge(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/exec", "callbackcontract.go")
	if fs := CallbackContract().Run(pkg); len(fs) != 0 {
		t.Errorf("callbackcontract fired outside cartridge packages: %v", fs)
	}
}

func TestBatchcontract(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/exec", "batchcontract.go")
	checkFindings(t, pkg, Batchcontract())
}

func TestBatchcontractSkipsNonExec(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/engine", "batchcontract.go")
	if fs := Batchcontract().Run(pkg); len(fs) != 0 {
		t.Errorf("batchcontract fired outside internal/exec: %v", fs)
	}
}

func TestLockOrder(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/lockordfix", "lockorder.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	checkFindings(t, pkg, LockOrder())
}

// TestLockOrderCycleMessage pins the acceptance-critical behavior: the
// seeded two-mutex cycle is reported as a deadlock candidate with both
// acquisition paths.
func TestLockOrderCycleMessage(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/lockordfix", "lockorder.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	var cycle *Finding
	for _, f := range Run([]*Package{pkg}, []*Analyzer{LockOrder()}) {
		if strings.Contains(f.Message, "deadlock candidate") {
			f := f
			cycle = &f
		}
	}
	if cycle == nil {
		t.Fatal("seeded a->b->a cycle not reported")
	}
	for _, want := range []string{
		"lockordfix.S.a -> lockordfix.S.b -> lockordfix.S.a",
		"in (*S).helper",
		"in (*S).g",
	} {
		if !strings.Contains(cycle.Message, want) {
			t.Errorf("cycle message missing %q:\n%s", want, cycle.Message)
		}
	}
}

func TestCallbackUnderLock(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/cbulfix", "callbackunderlock.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	checkFindings(t, pkg, CallbackUnderLock())
}

func TestChunkAlias(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/chunkfix", "chunkalias.go")
	checkFindings(t, pkg, ChunkAlias())
}

func TestAtomicMix(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/atomfix", "atomicmix.go")
	typecheckFixture(t, pkg, importer.ForCompiler(pkg.Fset, "source", nil))
	checkFindings(t, pkg, AtomicMix())
}

// TestUnusedSuppression: a directive that suppresses nothing is itself a
// finding — but only when every analyzer it names took part in the run.
func TestUnusedSuppression(t *testing.T) {
	pkg := parseFixture(t, "repro/internal/supfix", "unusedsuppression.go")
	var got []Finding
	for _, f := range Run([]*Package{pkg}, []*Analyzer{LockBalance()}) {
		if f.Analyzer == "vetx" && strings.Contains(f.Message, "suppresses nothing") {
			got = append(got, f)
		}
	}
	if len(got) != 1 {
		t.Fatalf("want exactly one unused-suppression finding, got %v", got)
	}
	if got[0].Pos.Line != unusedSuppressionLine(t, pkg) {
		t.Errorf("unused-suppression finding at line %d, want %d", got[0].Pos.Line, unusedSuppressionLine(t, pkg))
	}
}

// unusedSuppressionLine finds the fixture line marked "UNUSED" so the test
// doesn't hard-code line numbers.
func unusedSuppressionLine(t *testing.T, pkg *Package) int {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "UNUSED") {
					return pkg.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	t.Fatal("no UNUSED marker in fixture")
	return 0
}

// mapImporter resolves fixture import paths to pre-typechecked packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("fixture importer: unknown path %q", path)
}

func layeringFixture(t *testing.T) (*Package, LayeringConfig) {
	t.Helper()
	stor := parseFixture(t, "fixture/storage", filepath.Join("layering", "storage", "storage.go"))
	typecheckFixture(t, stor, nil)

	cons := parseFixture(t, "fixture/consumer", filepath.Join("layering", "consumer", "consumer.go"))
	typecheckFixture(t, cons, mapImporter{"fixture/storage": stor.Types})

	cfg := LayeringConfig{
		StoragePath: "fixture/storage",
		Restricted: map[string]map[string]bool{
			"Pager": set("Fetch", "Unpin"),
			"Heap":  set("Insert"),
		},
		Allowed: set("fixture/storage"),
	}
	return cons, cfg
}

func TestLayering(t *testing.T) {
	cons, cfg := layeringFixture(t)
	checkFindings(t, cons, Layering(cfg))
}

func TestLayeringAllowedPackage(t *testing.T) {
	cons, cfg := layeringFixture(t)
	cfg.Allowed["fixture/consumer"] = true
	if fs := Layering(cfg).Run(cons); len(fs) != 0 {
		t.Errorf("layering flagged an allowed package: %v", fs)
	}
}

// TestRepoClean is the self-test: the production analyzer suite must come
// back clean on the repository itself (every real violation fixed or
// carrying a justified suppression). Skipped in -short: it typechecks the
// whole module.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	for _, f := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("%s", f)
	}
}
