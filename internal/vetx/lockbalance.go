package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
)

// LockBalance returns the lockbalance analyzer: every mutex acquisition
// (`x.Lock()` / `x.RLock()`) must be released on every path out of the
// function — either by a matching `defer x.Unlock()` / `defer
// x.RUnlock()`, or by an explicit unlock before each return. The engine's
// lock discipline (DESIGN.md "Static analysis & invariants") forbids
// holding a table or structure lock across a return unless ownership is
// explicitly transferred, in which case the site carries a vetx:ignore
// justification.
//
// The analysis is a per-function abstract interpretation over the
// statement tree: branches fork the held-lock set and merge with union,
// loops widen once, and a return (or function-end fall-through) with a
// non-empty, non-deferred held set is reported. Locks released inside a
// non-deferred closure are not credited to the enclosing function.
func LockBalance() *Analyzer {
	return &Analyzer{
		Name: "lockbalance",
		Doc:  "mutex Lock/RLock must be deferred-unlocked or unlocked on every return path",
		Run:  runLockBalance,
	}
}

// lock keys are "W:<recv>" or "R:<recv>" so Lock pairs with Unlock and
// RLock with RUnlock.
func lockKey(kind byte, recv ast.Expr) string {
	return string(kind) + ":" + exprString(recv)
}

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// classifyLockCall recognizes zero-argument Lock/RLock/Unlock/RUnlock
// method calls.
func classifyLockCall(call *ast.CallExpr) (key string, op lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", opNone
	}
	switch sel.Sel.Name {
	case "Lock":
		return lockKey('W', sel.X), opAcquire
	case "RLock":
		return lockKey('R', sel.X), opAcquire
	case "Unlock":
		return lockKey('W', sel.X), opRelease
	case "RUnlock":
		return lockKey('R', sel.X), opRelease
	}
	return "", opNone
}

type lockChecker struct {
	pkg      *Package
	findings []Finding
	// deferred accumulates keys discharged by defer statements; a defer
	// seen anywhere in the function discharges its key (slightly
	// conservative for defers inside branches, which is the safe
	// direction for false positives).
	deferred map[string]bool
}

func runLockBalance(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			c := &lockChecker{pkg: pkg, deferred: map[string]bool{}}
			exit, terminated := c.block(body.List, map[string]token.Pos{})
			if !terminated {
				c.reportHeld(exit, body.Rbrace, "function falls through")
			}
			out = append(out, c.findings...)
		})
	}
	return out
}

func (c *lockChecker) reportHeld(held map[string]token.Pos, at token.Pos, what string) {
	for key, acq := range held {
		if c.deferred[key] {
			continue
		}
		acqPos := c.pkg.Fset.Position(acq)
		c.findings = append(c.findings, Finding{
			Analyzer: "lockbalance",
			Pos:      c.pkg.Fset.Position(at),
			Message: fmt.Sprintf("%s still holding %s acquired at line %d (defer the unlock or release it on this path)",
				what, key[2:]+lockVerb(key), acqPos.Line),
		})
	}
}

func lockVerb(key string) string {
	if key[0] == 'R' {
		return ".RLock()"
	}
	return ".Lock()"
}

// block interprets a statement list; it returns the held set at
// fall-through and whether every path through the list terminates
// (return/panic) before falling through.
func (c *lockChecker) block(stmts []ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	for _, st := range stmts {
		var term bool
		held, term = c.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (c *lockChecker) stmt(st ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := classifyLockCall(call); op == opAcquire {
				held[key] = call.Pos()
			} else if op == opRelease {
				delete(held, key)
			}
			if isPanicCall(call) {
				return held, true
			}
		}
	case *ast.DeferStmt:
		for _, key := range deferredLockReleases(s.Call) {
			c.deferred[key] = true
		}
	case *ast.ReturnStmt:
		c.reportHeld(held, s.Pos(), "return")
		return held, true
	case *ast.BlockStmt:
		return c.block(s.List, held)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		thenExit, thenTerm := c.block(s.Body.List, copyHeld(held))
		elseExit, elseTerm := held, false
		if s.Else != nil {
			elseExit, elseTerm = c.stmt(s.Else, copyHeld(held))
		}
		return mergeExits(thenExit, thenTerm, elseExit, elseTerm)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		bodyExit, _ := c.block(s.Body.List, copyHeld(held))
		return unionHeld(held, bodyExit), false
	case *ast.RangeStmt:
		bodyExit, _ := c.block(s.Body.List, copyHeld(held))
		return unionHeld(held, bodyExit), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		return c.clauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held)
		}
		return c.clauses(s.Body.List, held)
	case *ast.SelectStmt:
		return c.clauses(s.Body.List, held)
	case *ast.BranchStmt:
		// break/continue/goto: the rest of this block is unreachable on
		// this path; loop widening already accounts for the held state.
		return held, true
	}
	return held, false
}

// clauses merges switch/select case bodies: the exit set is the union of
// all non-terminating case exits, plus the entry set when no default
// clause guarantees a case runs.
func (c *lockChecker) clauses(list []ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	hasDefault := false
	allTerm := true
	merged := map[string]token.Pos{}
	for _, cl := range list {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			body = cc.Body
		default:
			continue
		}
		exit, term := c.block(body, copyHeld(held))
		if !term {
			allTerm = false
			merged = unionHeld(merged, exit)
		}
	}
	if !hasDefault {
		merged = unionHeld(merged, held)
		allTerm = false
	}
	return merged, allTerm
}

// deferredLockReleases extracts the lock keys a deferred call discharges:
// either a direct `defer x.Unlock()` or unlock calls inside a deferred
// closure body.
func deferredLockReleases(call *ast.CallExpr) []string {
	if key, op := classifyLockCall(call); op == opRelease {
		return []string{key}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok {
			if key, op := classifyLockCall(inner); op == opRelease {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func unionHeld(a, b map[string]token.Pos) map[string]token.Pos {
	out := copyHeld(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func mergeExits(a map[string]token.Pos, aTerm bool, b map[string]token.Pos, bTerm bool) (map[string]token.Pos, bool) {
	switch {
	case aTerm && bTerm:
		return map[string]token.Pos{}, true
	case aTerm:
		return b, false
	case bTerm:
		return a, false
	default:
		return unionHeld(a, b), false
	}
}
