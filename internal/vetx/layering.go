package vetx

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LayeringConfig parameterizes the layering analyzer: which package owns
// the restricted storage types, which methods of those types are the
// protected protocol surface, and which packages form the storage layer
// that may touch it.
type LayeringConfig struct {
	// StoragePath is the import path of the package defining the
	// restricted types.
	StoragePath string
	// Restricted maps type name -> protected method set.
	Restricted map[string]map[string]bool
	// Allowed is the set of import paths permitted to call the protected
	// methods (the storage layer itself plus the engine/txn layer that
	// coordinates it).
	Allowed map[string]bool
}

// DefaultLayeringConfig is the repo's production layering rule: only the
// storage substrate packages and the engine/txn coordination layer may
// drive the pager pin protocol or mutate heaps directly. Everything else
// — the executor, the cartridges, benches, tools — must go through those
// layers (cartridges through SQL server callbacks, the executor through
// read-only Heap accessors), which is exactly the property that gives
// domain indexes transactional semantics "for free" (DESIGN.md §2.5).
func DefaultLayeringConfig() LayeringConfig {
	return LayeringConfig{
		StoragePath: "repro/internal/storage",
		Restricted: map[string]map[string]bool{
			// The full pin protocol: pinning from the wrong layer can
			// bypass lock-manager serialization even if nothing is
			// mutated.
			"Pager": set("Fetch", "NewPage", "Unpin", "Free", "FlushAll", "Close"),
			// Heap mutations only; Get/Scan/Count stay open for readers
			// like the executor.
			"Heap": set("Insert", "InsertAt", "Update", "Delete", "Truncate", "Drop"),
		},
		Allowed: set(
			"repro/internal/storage",
			"repro/internal/btree",
			"repro/internal/iot",
			"repro/internal/hashidx",
			"repro/internal/loblib",
			"repro/internal/catalog",
			"repro/internal/engine",
			"repro/internal/txn",
		),
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Layering returns the layering analyzer for a configuration.
func Layering(cfg LayeringConfig) *Analyzer {
	return &Analyzer{
		Name:      "layering",
		Doc:       "only storage-layer packages may call pager/heap protocol methods",
		NeedTypes: true,
		Run:       func(pkg *Package) []Finding { return runLayering(pkg, cfg) },
	}
}

func runLayering(pkg *Package, cfg LayeringConfig) []Finding {
	if cfg.Allowed[pkg.ImportPath] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, found := pkg.Info.Selections[sel]
			if !found || selInfo.Kind() != types.MethodVal {
				return true
			}
			named := namedRecv(selInfo.Recv())
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != cfg.StoragePath {
				return true
			}
			methods, restrictedType := cfg.Restricted[named.Obj().Name()]
			if !restrictedType || !methods[sel.Sel.Name] {
				return true
			}
			out = append(out, Finding{
				Analyzer: "layering",
				Pos:      pkg.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s.%s is storage-layer protocol; %s must go through the engine/storage layer (cartridges via server callbacks)",
					named.Obj().Name(), sel.Sel.Name, pkg.ImportPath),
			})
			return true
		})
	}
	return out
}
