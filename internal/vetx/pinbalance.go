package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
)

// PinBalance returns the pinbalance analyzer: every buffer-pool page
// acquisition — `pg, err := p.Fetch(id)` or `pg, err := p.NewPage()` —
// pins a frame that the same function must release with `Unpin(pg, ...)`
// on every path, transfer to its caller by returning the page, or
// discharge with a deferred unpin. A leaked pin permanently wires a frame
// into the buffer pool; under pin pressure the pool then grows without
// bound (see Pager.evictIfFullLocked), which is why the `invariants`
// build tag also checks for leaked pins at Pager.Close.
//
// The one flow fact the checker understands beyond lockbalance-style
// branch merging: a return inside `if err != nil { ... }` guarding the
// most recent acquisition with that error variable is the acquisition's
// own failure path, where no pin exists.
func PinBalance() *Analyzer {
	return &Analyzer{
		Name: "pinbalance",
		Doc:  "pages pinned via Fetch/NewPage must be Unpinned on every path",
		Run:  runPinBalance,
	}
}

type pinInfo struct {
	pos     token.Pos
	errName string // the error variable assigned alongside the page
}

type pinChecker struct {
	pkg      *Package
	findings []Finding
	deferred map[string]bool
}

func runPinBalance(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			c := &pinChecker{pkg: pkg, deferred: map[string]bool{}}
			exit, terminated := c.block(body.List, map[string]pinInfo{}, nil)
			if !terminated {
				c.reportHeld(exit, body.Rbrace, nil, "function falls through")
			}
			out = append(out, c.findings...)
		})
	}
	return out
}

// pinAcquisition recognizes `pg, err := X.Fetch(id)` / `pg, err :=
// X.NewPage()` and returns the page and error variable names.
func pinAcquisition(s *ast.AssignStmt) (pageVar, errVar string, pos token.Pos, ok bool) {
	if len(s.Lhs) != 2 || len(s.Rhs) != 1 {
		return "", "", 0, false
	}
	call, isCall := s.Rhs[0].(*ast.CallExpr)
	if !isCall {
		return "", "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", 0, false
	}
	switch {
	case sel.Sel.Name == "Fetch" && len(call.Args) == 1:
	case sel.Sel.Name == "NewPage" && len(call.Args) == 0:
	default:
		return "", "", 0, false
	}
	pv, okP := s.Lhs[0].(*ast.Ident)
	ev, okE := s.Lhs[1].(*ast.Ident)
	if !okP || !okE {
		return "", "", 0, false
	}
	return pv.Name, ev.Name, call.Pos(), true
}

// pinRelease recognizes `X.Unpin(pg, ...)` and returns the page variable.
func pinRelease(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Unpin" || len(call.Args) == 0 {
		return "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

func (c *pinChecker) reportHeld(held map[string]pinInfo, at token.Pos, exempt map[string]bool, what string) {
	for name, info := range held {
		if c.deferred[name] || (exempt != nil && exempt[name]) {
			continue
		}
		acq := c.pkg.Fset.Position(info.pos)
		c.findings = append(c.findings, Finding{
			Analyzer: "pinbalance",
			Pos:      c.pkg.Fset.Position(at),
			Message: fmt.Sprintf("%s with page %q pinned at line %d still pinned (Unpin it, defer the unpin, or return the page to transfer ownership)",
				what, name, acq.Line),
		})
	}
}

// block interprets a statement list. exempt carries the page variables
// whose acquisition is known to have failed on this path (err != nil
// guard), so the pin does not exist.
func (c *pinChecker) block(stmts []ast.Stmt, held map[string]pinInfo, exempt map[string]bool) (map[string]pinInfo, bool) {
	for _, st := range stmts {
		var term bool
		held, term = c.stmt(st, held, exempt)
		if term {
			return held, true
		}
	}
	return held, false
}

func (c *pinChecker) stmt(st ast.Stmt, held map[string]pinInfo, exempt map[string]bool) (map[string]pinInfo, bool) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		// Any write to a variable dissolves its association with earlier
		// acquisitions' error results: after `n, err := parse(...)`, a
		// following `if err != nil` no longer guards the Fetch above it,
		// so a return in that branch must still unpin.
		assigned := map[string]bool{}
		for _, lh := range s.Lhs {
			if id, ok := lh.(*ast.Ident); ok {
				assigned[id.Name] = true
			}
		}
		for name, info := range held {
			if info.errName != "" && assigned[info.errName] {
				info.errName = ""
				held[name] = info
			}
		}
		if pageVar, errVar, pos, ok := pinAcquisition(s); ok {
			if pageVar == "_" {
				c.findings = append(c.findings, Finding{
					Analyzer: "pinbalance",
					Pos:      c.pkg.Fset.Position(pos),
					Message:  "pinned page assigned to _ can never be unpinned",
				})
				return held, false
			}
			held[pageVar] = pinInfo{pos: pos, errName: errVar}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok := pinRelease(call); ok {
				delete(held, name)
			}
			if isPanicCall(call) {
				return held, true
			}
		}
	case *ast.DeferStmt:
		for _, name := range deferredPinReleases(s.Call) {
			c.deferred[name] = true
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if name, ok := bareIdent(res); ok {
				// Ownership transfers to the caller (the Pager.Fetch
				// pattern itself: the pinned page is the return value).
				delete(held, name)
			}
		}
		c.reportHeld(held, s.Pos(), exempt, "return")
		return held, true
	case *ast.BlockStmt:
		return c.block(s.List, held, exempt)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held, exempt)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held, exempt)
		}
		thenExempt := exempt
		if errName, ok := errNotNilCond(s.Cond); ok {
			if page, ok := latestAcquisitionFor(held, errName); ok {
				thenExempt = copyExempt(exempt)
				thenExempt[page] = true
			}
		}
		thenExit, thenTerm := c.block(s.Body.List, copyPins(held), thenExempt)
		elseExit, elseTerm := held, false
		if s.Else != nil {
			elseExit, elseTerm = c.stmt(s.Else, copyPins(held), exempt)
		}
		return mergePinExits(thenExit, thenTerm, elseExit, elseTerm)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held, exempt)
		}
		bodyExit, _ := c.block(s.Body.List, copyPins(held), exempt)
		return unionPins(held, bodyExit), false
	case *ast.RangeStmt:
		bodyExit, _ := c.block(s.Body.List, copyPins(held), exempt)
		return unionPins(held, bodyExit), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held, exempt)
		}
		return c.clauses(s.Body.List, held, exempt)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = c.stmt(s.Init, held, exempt)
		}
		return c.clauses(s.Body.List, held, exempt)
	case *ast.SelectStmt:
		return c.clauses(s.Body.List, held, exempt)
	case *ast.BranchStmt:
		return held, true
	}
	return held, false
}

func (c *pinChecker) clauses(list []ast.Stmt, held map[string]pinInfo, exempt map[string]bool) (map[string]pinInfo, bool) {
	hasDefault := false
	allTerm := true
	merged := map[string]pinInfo{}
	for _, cl := range list {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			body = cc.Body
		default:
			continue
		}
		exit, term := c.block(body, copyPins(held), exempt)
		if !term {
			allTerm = false
			merged = unionPins(merged, exit)
		}
	}
	if !hasDefault {
		merged = unionPins(merged, held)
		allTerm = false
	}
	return merged, allTerm
}

// deferredPinReleases extracts page variables unpinned by a deferred call:
// `defer p.Unpin(pg, d)` or unpin calls inside a deferred closure.
func deferredPinReleases(call *ast.CallExpr) []string {
	if name, ok := pinRelease(call); ok {
		return []string{name}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok {
			if name, ok := pinRelease(inner); ok {
				names = append(names, name)
			}
		}
		return true
	})
	return names
}

// bareIdent unwraps parens/& and reports whether the expression is a plain
// identifier.
func bareIdent(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// errNotNilCond matches the `err != nil` guard.
func errNotNilCond(cond ast.Expr) (string, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return "", false
	}
	id, ok := bin.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if nilIdent, ok := bin.Y.(*ast.Ident); !ok || nilIdent.Name != "nil" {
		return "", false
	}
	return id.Name, true
}

// latestAcquisitionFor finds the most recently acquired held page whose
// acquisition assigned the given error variable.
func latestAcquisitionFor(held map[string]pinInfo, errName string) (string, bool) {
	var best string
	var bestPos token.Pos = -1
	for name, info := range held {
		if info.errName == errName && info.pos > bestPos {
			best, bestPos = name, info.pos
		}
	}
	return best, bestPos >= 0
}

func copyPins(m map[string]pinInfo) map[string]pinInfo {
	out := make(map[string]pinInfo, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyExempt(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func unionPins(a, b map[string]pinInfo) map[string]pinInfo {
	out := copyPins(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func mergePinExits(a map[string]pinInfo, aTerm bool, b map[string]pinInfo, bTerm bool) (map[string]pinInfo, bool) {
	switch {
	case aTerm && bTerm:
		return map[string]pinInfo{}, true
	case aTerm:
		return b, false
	case bTerm:
		return a, false
	default:
		return unionPins(a, b), false
	}
}
