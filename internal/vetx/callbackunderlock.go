package vetx

import (
	"fmt"
	"sort"
	"strings"
)

// CallbackUnderLock returns the callbackunderlock analyzer: no ODCI
// cartridge callback (a method call through the extidx boundary interfaces
// IndexMethods / StatsMethods / StatsCollector) may execute while an
// engine or storage mutex is held. Cartridge code is user code — it can
// block, call back into the engine, or take arbitrarily long, and holding
// an internal lock across it is the classic extensible-indexing deadlock.
//
// The check is interprocedural: a callback three frames below the function
// that took the lock is still flagged, with the full hold chain printed.
// `go` statements break propagation (the goroutine does not inherit the
// caller's locks).
func CallbackUnderLock() *Analyzer {
	return &Analyzer{
		Name:       "callbackunderlock",
		Doc:        "ODCI cartridge callbacks must not be invoked while an engine/storage mutex is held",
		NeedTypes:  true,
		RunProgram: runCallbackUnderLock,
	}
}

func runCallbackUnderLock(prog *Program) []Finding {
	var out []Finding
	keys := make([]string, 0, len(prog.Funcs))
	for k := range prog.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := prog.Funcs[k]
		for i := range f.Calls {
			site := &f.Calls[i]
			if !site.Boundary || site.Go {
				continue
			}
			held := prog.HeldAt(f, site)
			if len(held) == 0 {
				continue
			}
			chains := make([]string, 0, len(held))
			for _, lock := range held {
				chains = append(chains, fmt.Sprintf("%s %s", lock, prog.HoldChain(f, lock, site.Held)))
			}
			out = append(out, Finding{
				Analyzer: "callbackunderlock",
				Pos:      f.Pkg.Fset.Position(site.Pos),
				Message: fmt.Sprintf("cartridge callback %s invoked with %s held in %s",
					site.BoundaryName, strings.Join(chains, "; "), f.Name),
			})
		}
	}
	return out
}
