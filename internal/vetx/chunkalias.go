package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
)

// ChunkAlias returns the chunkalias analyzer: it enforces the exec.Chunk
// ownership contract that the parallel executor depends on. A chunk passed
// into a function (the NextBatch(dst *Chunk) pattern) is caller-owned and
// reused: the callee may fill it, but must not retain the *Chunk itself or
// its top-level slices (Rows, RIDs, Anc) past return — Reset truncates
// them in place, so a stored alias silently observes the next batch.
//
// Flagged: storing the chunk pointer or a chunk-derived slice into a
// struct field or package variable, directly or through a local alias, or
// capturing one in a closure that is itself stored, or sending one on a
// channel (the exchange-handoff rule: a chunk crossing a channel must be
// freshly allocated by the sender, never the caller-owned parameter the
// consumer is about to Reset). Retaining individual Row values is legal
// (chunks never reuse row storage), so c.Rows[i] and
// append(dst, c.Rows...) are fine; so are writes INTO the chunk
// (c.Rows = ... is how producers fill it).
//
// The check is syntactic and applies to any function with a *Chunk
// parameter, so cartridge packages implementing batch iterators get it
// too.
func ChunkAlias() *Analyzer {
	return &Analyzer{
		Name: "chunkalias",
		Doc:  "a *Chunk parameter and its Rows/RIDs/Anc slices must not be retained across return",
		Run:  runChunkAlias,
	}
}

// chunkSliceFields are the Chunk fields whose backing arrays are reused
// across batches.
var chunkSliceFields = map[string]bool{"Rows": true, "RIDs": true, "Anc": true}

func runChunkAlias(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := chunkParams(fd.Type)
			if len(params) == 0 {
				continue
			}
			c := &chunkAliasChecker{pkg: pkg, derived: params}
			ast.Inspect(fd.Body, c.visit)
			out = append(out, c.findings...)
		}
	}
	return out
}

// chunkParams returns the names of parameters with type *Chunk or
// *exec.Chunk.
func chunkParams(ft *ast.FuncType) map[string]bool {
	out := map[string]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		var name string
		switch t := star.X.(type) {
		case *ast.Ident:
			name = t.Name
		case *ast.SelectorExpr:
			name = t.Sel.Name
		}
		if name != "Chunk" {
			continue
		}
		for _, id := range field.Names {
			if id.Name != "_" {
				out[id.Name] = true
			}
		}
	}
	return out
}

type chunkAliasChecker struct {
	pkg *Package
	// derived names the local identifiers aliasing the chunk or one of
	// its reused slices (starting with the parameters themselves).
	derived  map[string]bool
	findings []Finding
}

func (c *chunkAliasChecker) visit(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.GoStmt:
		// A goroutine outlives the NextBatch call by construction; any
		// chunk-derived capture escapes.
		if c.capturesDerived(st.Call) {
			c.report(st.Pos(), "chunk-derived value captured by goroutine outliving the batch; copy it first")
		}
	case *ast.SendStmt:
		// A channel send hands the value to another goroutine (the
		// Exchange worker/consumer handoff); a caller-owned chunk or
		// slice crossing it outlives the batch on the receiving side.
		if c.isDerived(st.Value) {
			c.report(st.Pos(), fmt.Sprintf("%s sent on a channel publishes caller-owned chunk memory to another goroutine; send a freshly allocated chunk instead",
				exprString(st.Value)))
		}
	}
	return true
}

// assign flags stores of chunk-derived values to non-local destinations
// and tracks new local aliases.
func (c *chunkAliasChecker) assign(st *ast.AssignStmt) {
	// Parallel assignment only pairs up 1:1; the multi-value forms
	// (x, err := f()) have call RHS, never chunk-derived.
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		rhs := st.Rhs[i]
		if !c.isDerived(rhs) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name != "_" {
				c.derived[l.Name] = true
			}
		case *ast.SelectorExpr:
			// Writing INTO the chunk is the producer filling it; writing a
			// chunk-derived value into anything else retains it.
			if !c.isDerived(l.X) {
				c.report(st.Pos(), fmt.Sprintf("%s stored to %s retains caller-owned chunk memory across return; copy it",
					exprString(rhs), exprString(l)))
			}
		case *ast.IndexExpr:
			if !c.isDerived(l.X) {
				c.report(st.Pos(), fmt.Sprintf("%s stored into %s retains caller-owned chunk memory across return; copy it",
					exprString(rhs), exprString(l.X)))
			}
		}
	}
}

// isDerived reports whether e aliases the chunk or one of its reused
// top-level slices.
func (c *chunkAliasChecker) isDerived(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return c.derived[x.Name]
	case *ast.SelectorExpr:
		// c.Rows / c.RIDs / c.Anc share the chunk's backing arrays. Other
		// selectors (c.Label, c.Sink) are values.
		return chunkSliceFields[x.Sel.Name] && c.isDerived(x.X)
	case *ast.SliceExpr:
		// rows[:n] still aliases the backing array.
		return c.isDerived(x.X)
	case *ast.ParenExpr:
		return c.isDerived(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() == "&" && c.isDerived(x.X)
	case *ast.FuncLit:
		// A closure holding a chunk-derived variable is itself derived:
		// storing it to a field stores the alias.
		found := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.derived[id.Name] {
				found = true
			}
			return !found
		})
		return found
	}
	// IndexExpr (c.Rows[i]: a single Row, safe to retain), CallExpr
	// (append copies into a new or operator-owned array), and literals
	// are not derived.
	return false
}

// capturesDerived reports whether the go-statement call references a
// chunk-derived identifier (callee closure or arguments).
func (c *chunkAliasChecker) capturesDerived(call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.derived[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

func (c *chunkAliasChecker) report(pos token.Pos, msg string) {
	c.findings = append(c.findings, Finding{
		Analyzer: "chunkalias",
		Pos:      c.pkg.Fset.Position(pos),
		Message:  msg,
	})
}
