package vetx

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder returns the lockorder analyzer: it builds the global lock-order
// graph from the interprocedural call graph — an edge A → B whenever lock B
// is acquired (anywhere in the program, through any call chain) while A is
// held — and reports:
//
//   - any cycle in the observed graph as a deadlock candidate, printing
//     the conflicting acquisition paths;
//   - any observed edge that contradicts a declared order directive
//     `//vetx:lockorder A < B` (A must be acquired before B);
//   - contradictory or malformed lockorder directives themselves.
//
// Lock identity is the package-qualified struct field or package variable
// ("storage.Pager.mu", "engine.gateMu"); locks on locals are out of scope
// (the LockManager's table locks are deadlock-free by sorted acquisition).
// Same-identity re-acquisition is also out of scope: two *instances* of a
// type may legitimately nest, and instance aliasing is beyond a static
// field-level identity.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:       "lockorder",
		Doc:        "the global mutex acquisition graph must be acyclic and match //vetx:lockorder declarations",
		NeedTypes:  true,
		RunProgram: runLockOrder,
	}
}

// lockEdge is one observed A-held-while-acquiring-B event with its witness.
type lockEdge struct {
	from, to string
	// node/acquire locate the B acquisition that created the edge.
	node    *FuncNode
	acquire LockAcquire
}

// runLockOrder computes observed edges, checks directives, and reports
// cycles.
func runLockOrder(prog *Program) []Finding {
	var out []Finding
	edges := observedLockEdges(prog)

	decl, declFindings := collectLockOrderDirectives(prog)
	out = append(out, declFindings...)

	// Observed edge contradicting a declared order.
	for _, e := range edges {
		if decl[e.to][e.from] {
			out = append(out, Finding{
				Analyzer: "lockorder",
				Pos:      e.node.Pkg.Fset.Position(e.acquire.Pos),
				Message: fmt.Sprintf("%s acquired while %s is held (%s), but //vetx:lockorder declares %s < %s",
					e.to, e.from, prog.HoldChain(e.node, e.from, e.acquire.HeldBefore), e.to, e.from),
			})
		}
	}

	out = append(out, lockOrderCycles(prog, edges)...)
	return out
}

// observedLockEdges walks every acquire site and emits one edge per
// (held, acquired) pair, first witness kept.
func observedLockEdges(prog *Program) []lockEdge {
	seen := map[string]bool{}
	var edges []lockEdge
	keys := make([]string, 0, len(prog.Funcs))
	for k := range prog.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := prog.Funcs[k]
		for _, acq := range f.Acquires {
			held := map[string]bool{}
			for l := range acq.HeldBefore {
				held[l] = true
			}
			for l := range f.EntryHeld {
				held[l] = true
			}
			for from := range held {
				if from == acq.Lock {
					continue // instance aliasing: out of scope
				}
				ek := from + "\x00" + acq.Lock
				if seen[ek] {
					continue
				}
				seen[ek] = true
				edges = append(edges, lockEdge{from: from, to: acq.Lock, node: f, acquire: acq})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	return edges
}

// lockOrderCycles finds cycles in the observed edge graph and reports each
// once, with the acquisition path behind every edge of the cycle.
func lockOrderCycles(prog *Program, edges []lockEdge) []Finding {
	adj := map[string]map[string]*lockEdge{}
	for i := range edges {
		e := &edges[i]
		if adj[e.from] == nil {
			adj[e.from] = map[string]*lockEdge{}
		}
		adj[e.from][e.to] = e
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []Finding
	reported := map[string]bool{}
	// DFS from each node; a back edge to a node on the current stack is a
	// cycle. Small graphs (a handful of long-lived locks) keep this cheap.
	for _, start := range nodes {
		var stack []string
		onStack := map[string]int{}
		var dfs func(n string)
		dfs = func(n string) {
			onStack[n] = len(stack)
			stack = append(stack, n)
			next := make([]string, 0, len(adj[n]))
			for m := range adj[n] {
				next = append(next, m)
			}
			sort.Strings(next)
			for _, m := range next {
				if at, ok := onStack[m]; ok {
					cycle := append([]string(nil), stack[at:]...)
					if f := reportCycle(prog, adj, cycle, reported); f != nil {
						out = append(out, *f)
					}
					continue
				}
				dfs(m)
			}
			stack = stack[:len(stack)-1]
			delete(onStack, n)
		}
		dfs(start)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Message < out[j].Message })
	return out
}

// reportCycle renders one cycle (deduplicated by its sorted lock set) with
// every edge's acquisition witness.
func reportCycle(prog *Program, adj map[string]map[string]*lockEdge, cycle []string, reported map[string]bool) *Finding {
	canon := append([]string(nil), cycle...)
	sort.Strings(canon)
	key := strings.Join(canon, ",")
	if reported[key] {
		return nil
	}
	reported[key] = true

	var paths []string
	var pos token.Position
	for i, from := range cycle {
		to := cycle[(i+1)%len(cycle)]
		e := adj[from][to]
		if e == nil {
			continue
		}
		p := e.node.Pkg.Fset.Position(e.acquire.Pos)
		if i == 0 {
			pos = p
		}
		paths = append(paths, fmt.Sprintf("%s acquired at %s in %s with %s held (%s)",
			to, trimPos(p), e.node.Name, from, prog.HoldChain(e.node, from, e.acquire.HeldBefore)))
	}
	f := Finding{
		Analyzer: "lockorder",
		Pos:      pos,
		Message: fmt.Sprintf("deadlock candidate: lock-order cycle %s; %s",
			strings.Join(append(cycle, cycle[0]), " -> "), strings.Join(paths, "; ")),
	}
	return &f
}

// ---------------------------------------------------------------------------
// //vetx:lockorder directives

const lockOrderDirective = "//vetx:lockorder"

// collectLockOrderDirectives parses `//vetx:lockorder A < B` comments from
// every file and checks the declared set itself for contradictions
// (including declaration cycles).
func collectLockOrderDirectives(prog *Program) (map[string]map[string]bool, []Finding) {
	decl := map[string]map[string]bool{} // decl[A][B]: A declared before B
	declPos := map[string]token.Position{}
	var out []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, lockOrderDirective) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, lockOrderDirective)
					a, b, ok := strings.Cut(rest, "<")
					a, b = strings.TrimSpace(a), strings.TrimSpace(b)
					if !ok || a == "" || b == "" || strings.ContainsAny(b, "<") {
						out = append(out, Finding{
							Analyzer: "lockorder",
							Pos:      pos,
							Message:  "malformed lockorder directive (use //vetx:lockorder pkg.Type.field < pkg.Type.field)",
						})
						continue
					}
					if a == b {
						out = append(out, Finding{
							Analyzer: "lockorder",
							Pos:      pos,
							Message:  fmt.Sprintf("lockorder directive orders %s against itself", a),
						})
						continue
					}
					if decl[b][a] {
						out = append(out, Finding{
							Analyzer: "lockorder",
							Pos:      pos,
							Message: fmt.Sprintf("lockorder directive %s < %s contradicts an earlier %s < %s declaration",
								a, b, b, a),
						})
						continue
					}
					if decl[a] == nil {
						decl[a] = map[string]bool{}
					}
					decl[a][b] = true
					declPos[a+"<"+b] = pos
				}
			}
		}
	}
	// Declaration cycles beyond direct contradictions (A<B, B<C, C<A).
	out = append(out, declaredOrderCycles(decl, declPos)...)
	return decl, out
}

// declaredOrderCycles detects cycles in the declared order relation.
func declaredOrderCycles(decl map[string]map[string]bool, declPos map[string]token.Position) []Finding {
	var out []Finding
	nodes := make([]string, 0, len(decl))
	for n := range decl {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	reported := map[string]bool{}
	for _, start := range nodes {
		var stack []string
		onStack := map[string]int{}
		var dfs func(n string)
		dfs = func(n string) {
			onStack[n] = len(stack)
			stack = append(stack, n)
			next := make([]string, 0, len(decl[n]))
			for m := range decl[n] {
				next = append(next, m)
			}
			sort.Strings(next)
			for _, m := range next {
				if at, ok := onStack[m]; ok {
					cycle := append([]string(nil), stack[at:]...)
					canon := append([]string(nil), cycle...)
					sort.Strings(canon)
					key := strings.Join(canon, ",")
					if !reported[key] && len(cycle) > 2 { // 2-cycles already reported at parse
						reported[key] = true
						pos := declPos[cycle[0]+"<"+cycle[1]]
						out = append(out, Finding{
							Analyzer: "lockorder",
							Pos:      pos,
							Message: fmt.Sprintf("lockorder directives form a cycle: %s",
								strings.Join(append(cycle, cycle[0]), " < ")),
						})
					}
					continue
				}
				dfs(m)
			}
			stack = stack[:len(stack)-1]
			delete(onStack, n)
		}
		dfs(start)
	}
	return out
}
