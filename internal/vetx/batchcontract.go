package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Batchcontract returns the batchcontract analyzer: inside the executor
// package (internal/exec), operator types must speak the chunk protocol
// and keep heap access batched. Two rules:
//
//  1. A type that looks like a legacy row iterator — it declares
//     Next() (row, error) and Close() but no NextBatch — no longer
//     satisfies exec.Iterator; the batch-first refactor requires every
//     operator to implement NextBatch (RowAdapter keeps both, which is
//     the sanctioned shape).
//  2. A batch operator must not call Heap.Get inside a per-row loop:
//     that re-serializes a chunk into one pager pin per row, which is
//     exactly the cost the page-sorted Heap.GetBatchFunc exists to
//     avoid. Single-row helpers (per-row baseline modes) may call Get
//     straight-line; loops must go through the batched read.
func Batchcontract() *Analyzer {
	return &Analyzer{
		Name: "batchcontract",
		Doc:  "exec operators must implement NextBatch and must not call Heap.Get in per-row loops",
		Run:  runBatchcontract,
	}
}

// batchcontractScope reports whether the import path is the executor
// package (or a sub-package of it).
func batchcontractScope(path string) bool {
	return strings.Contains(path+"/", "/internal/exec/")
}

func runBatchcontract(pkg *Package) []Finding {
	if !batchcontractScope(pkg.ImportPath) {
		return nil
	}
	var out []Finding
	out = append(out, batchcontractIterators(pkg)...)
	out = append(out, batchcontractLoops(pkg)...)
	return out
}

// batchcontractIterators flags legacy row-iterator shapes (rule 1).
func batchcontractIterators(pkg *Package) []Finding {
	// First pass: every method name declared per receiver type.
	methods := map[string]map[string]bool{}
	forEachMethod(pkg, func(recv string, fd *ast.FuncDecl) {
		if methods[recv] == nil {
			methods[recv] = map[string]bool{}
		}
		methods[recv][fd.Name.Name] = true
	})
	// Second pass: flag Next() (T, error)-shaped methods on types that
	// also have Close but never gained NextBatch.
	var out []Finding
	forEachMethod(pkg, func(recv string, fd *ast.FuncDecl) {
		if fd.Name.Name != "Next" || !isRowNextShape(fd.Type) {
			return
		}
		ms := methods[recv]
		if !ms["Close"] || ms["NextBatch"] {
			return
		}
		out = append(out, Finding{
			Analyzer: "batchcontract",
			Pos:      pkg.Fset.Position(fd.Name.Pos()),
			Message: fmt.Sprintf("%s declares row-at-a-time Next/Close but no NextBatch; exec.Iterator is chunk-based — implement NextBatch(*Chunk) error (or wrap with RowAdapter)",
				recv),
		})
	})
	return out
}

// forEachMethod calls fn for every method declaration in the package with
// its receiver type name (pointer stripped).
func forEachMethod(pkg *Package, fn func(recv string, fd *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if name := recvTypeName(fd.Recv.List[0].Type); name != "" {
				fn(name, fd)
			}
		}
	}
}

// recvTypeName extracts the named type of a method receiver.
func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(x.X)
	}
	return ""
}

// isRowNextShape matches the legacy iterator signature: no parameters,
// exactly two results with error last.
func isRowNextShape(ft *ast.FuncType) bool {
	if ft.Params != nil && len(ft.Params.List) > 0 {
		return false
	}
	if ft.Results == nil {
		return false
	}
	n := 0
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	if n != 2 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// batchcontractLoops flags Heap.Get calls inside for/range loops (rule 2).
func batchcontractLoops(pkg *Package) []Finding {
	var out []Finding
	seen := map[token.Pos]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Get" {
					return true
				}
				recv := strings.ToLower(exprString(sel.X))
				if !strings.Contains(recv, "heap") || seen[call.Pos()] {
					return true
				}
				seen[call.Pos()] = true
				out = append(out, Finding{
					Analyzer: "batchcontract",
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("%s.Get inside a per-row loop pins one page per row; collect the batch's RIDs and use Heap.GetBatchFunc (page-sorted, one pin per page)",
						exprString(sel.X)),
				})
				return true
			})
			return true
		})
	}
	return out
}
