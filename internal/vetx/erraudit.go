package vetx

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrAudit returns the erraudit analyzer: in non-test code under
// internal/, an error result must not be discarded — neither assigned to
// the blank identifier nor dropped by calling an error-returning function
// as a bare statement. The engine substrate surfaces corruption and
// callback failures exclusively through error returns (the ODCIIndex
// contract forbids panics), so a swallowed error is a swallowed corruption
// report.
//
// Deferred and `go` calls are exempt (the value is unobtainable there
// without a wrapper, and `defer f.Close()` style cleanup is accepted
// idiom). Print-family calls whose error is universally ignored
// (fmt.Print*/Fprint* and (*strings.Builder)/(*bytes.Buffer) writes,
// which are documented never to fail) are also exempt.
func ErrAudit() *Analyzer {
	return &Analyzer{
		Name:      "erraudit",
		Doc:       "error results in non-test internal code must be handled, not discarded",
		NeedTypes: true,
		Run:       runErrAudit,
	}
}

func runErrAudit(pkg *Package) []Finding {
	if !strings.Contains(pkg.ImportPath+"/", "/internal/") {
		return nil
	}
	var out []Finding
	errType := types.Universe.Lookup("error").Type()
	isErr := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || erraiAllowedCall(pkg, call) {
					return true
				}
				tv, ok := pkg.Info.Types[call]
				if !ok {
					return true
				}
				if errPositions(tv.Type, isErr) > 0 {
					out = append(out, Finding{
						Analyzer: "erraudit",
						Pos:      pkg.Fset.Position(call.Pos()),
						Message:  fmt.Sprintf("error result of %s is discarded by calling it as a statement", calleeName(call)),
					})
				}
			case *ast.AssignStmt:
				out = append(out, blankErrAssigns(pkg, s, isErr)...)
			}
			return true
		})
	}
	return out
}

// errPositions counts error components in a result type (a bare error or a
// tuple containing errors).
func errPositions(t types.Type, isErr func(types.Type) bool) int {
	if isErr(t) {
		return 1
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return 0
	}
	n := 0
	for i := 0; i < tup.Len(); i++ {
		if isErr(tup.At(i).Type()) {
			n++
		}
	}
	return n
}

// blankErrAssigns flags `_` targets whose corresponding value is an error.
func blankErrAssigns(pkg *Package, s *ast.AssignStmt, isErr func(types.Type) bool) []Finding {
	var out []Finding
	report := func(e ast.Expr) {
		out = append(out, Finding{
			Analyzer: "erraudit",
			Pos:      pkg.Fset.Position(e.Pos()),
			Message:  "error result assigned to _ (handle it or justify the discard)",
		})
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value form: a, _ := f().
		tv, ok := pkg.Info.Types[s.Rhs[0]]
		if !ok {
			return nil
		}
		tup, ok := tv.Type.(*types.Tuple)
		if !ok {
			return nil
		}
		if call, isCall := s.Rhs[0].(*ast.CallExpr); isCall && erraiAllowedCall(pkg, call) {
			return nil
		}
		for i, lh := range s.Lhs {
			if id, isID := lh.(*ast.Ident); isID && id.Name == "_" && i < tup.Len() && isErr(tup.At(i).Type()) {
				report(lh)
			}
		}
		return out
	}
	for i, lh := range s.Lhs {
		id, isID := lh.(*ast.Ident)
		if !isID || id.Name != "_" || i >= len(s.Rhs) {
			continue
		}
		if call, isCall := s.Rhs[i].(*ast.CallExpr); isCall && erraiAllowedCall(pkg, call) {
			continue
		}
		if tv, ok := pkg.Info.Types[s.Rhs[i]]; ok && isErr(tv.Type) {
			report(lh)
		}
	}
	return out
}

// erraiAllowedCall exempts the print/builder family whose errors are
// ignored by universal Go convention (and, for Builder/Buffer/hash,
// documented to be impossible).
func erraiAllowedCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// fmt.Print / Printf / Println, and Fprint* to sinks that cannot fail:
	// os.Stdout/os.Stderr by convention, strings.Builder/bytes.Buffer by
	// documented guarantee.
	if pkgID, isID := sel.X.(*ast.Ident); isID {
		if obj, found := pkg.Info.Uses[pkgID]; found {
			if pn, isPkg := obj.(*types.PkgName); isPkg && pn.Imported().Path() == "fmt" {
				if strings.HasPrefix(name, "Print") {
					return true
				}
				if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
					if exprString(call.Args[0]) == "os.Stdout" || exprString(call.Args[0]) == "os.Stderr" {
						return true
					}
					if tv, ok := pkg.Info.Types[call.Args[0]]; ok && isInfallibleSink(tv.Type) {
						return true
					}
				}
			}
		}
	}
	if selInfo, found := pkg.Info.Selections[sel]; found && selInfo.Kind() == types.MethodVal {
		// Methods on *strings.Builder / *bytes.Buffer never return a
		// non-nil error (package docs guarantee it).
		if named := namedRecv(selInfo.Recv()); named != nil {
			if p := named.Obj().Pkg(); p != nil {
				full := p.Path() + "." + named.Obj().Name()
				if full == "strings.Builder" || full == "bytes.Buffer" {
					return true
				}
				// hash.Hash documents that Write never returns an error;
				// this covers the concrete digest types (hash/fnv,
				// crypto/sha256, ...) called through their package path.
				if name == "Write" && (p.Path() == "hash" || strings.HasPrefix(p.Path(), "hash/") || strings.HasPrefix(p.Path(), "crypto/")) {
					return true
				}
			}
		}
	}
	return false
}

// isInfallibleSink reports whether the type is (a pointer to)
// strings.Builder or bytes.Buffer.
func isInfallibleSink(t types.Type) bool {
	named := namedRecv(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// calleeName renders the called function for messages.
func calleeName(call *ast.CallExpr) string {
	return exprString(call.Fun)
}

// namedRecv strips pointers from a receiver type down to its named type.
func namedRecv(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
