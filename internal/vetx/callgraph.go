package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of vetx: a types-aware call graph
// over every loaded package plus a "locks held at call site" dataflow that
// the whole-program analyzers (lockorder, callbackunderlock) consume.
//
// The design is deliberately modest — it is a contract checker, not a
// verifier:
//
//   - Nodes are declared functions and methods (plus each function
//     literal as an anonymous root: a literal's callers are usually
//     dynamic, so it inherits no caller context).
//   - Edges come from static calls and method calls resolved through
//     types.Info. Calls through an interface conservatively fan out to
//     every in-repo concrete method with the same name and signature.
//     Calls through function-typed values (fields, parameters) are not
//     resolved.
//   - Lock identity is the package-qualified struct field or package
//     variable (`storage.Pager.mu`, `engine.gateMu`). Locks on local
//     variables are untracked: the global ordering contract is about
//     long-lived structure locks, and table locks handed out by the
//     LockManager are already deadlock-free by sorted acquisition.
//   - The per-function dataflow is a linear source-order scan reusing
//     lockbalance's acquire/release recognition: Lock/RLock/TryLock add
//     the lock to the held set, Unlock/RUnlock remove it, a *deferred*
//     unlock keeps it held to the end of the function. TryLock is
//     treated as a successful acquire (the fallible branch returns
//     without the lock, which the linear scan models as release-on-
//     return being someone else's problem — lockbalance's).
//   - Held sets propagate down call edges to a fixed point: if f calls g
//     with A held, every acquire and call inside g also happens under A.
//     `go` statements do not propagate (a spawned goroutine does not
//     hold its parent's locks). Locks that *escape* a function (the
//     ownership-transfer closures that carry lockbalance ignore
//     directives) deliberately do not flow back up to callers.
type Program struct {
	Packages []*Package
	// Funcs maps canonical function keys ("pkg/path.(Recv).Name") to
	// their nodes, function literals included.
	Funcs map[string]*FuncNode
	// lockAcquirePos remembers one acquire position per lock identity,
	// for rendering witnesses whose provenance chain bottoms out.
	lockAcquirePos map[string]token.Position
}

// FuncNode is one function in the call graph with its lock events.
type FuncNode struct {
	Key  string
	Pkg  *Package
	Name string // display name, e.g. "(*Pager).Fetch" or "func@pager.go:100"
	Pos  token.Pos

	// Acquires are the lock acquisition sites in source order, each with
	// the intra-procedurally held set at that point.
	Acquires []LockAcquire
	// Calls are the resolved call sites in source order.
	Calls []CallSite

	// EntryHeld is filled by the interprocedural fixpoint: locks some
	// caller chain holds around every invocation of this function, with
	// the provenance edge that first introduced each lock.
	EntryHeld map[string]CallerEdge
}

// LockAcquire is one Lock/RLock/TryLock site.
type LockAcquire struct {
	Lock string
	Pos  token.Pos
	// HeldBefore maps the locks already held intra-procedurally at this
	// acquire to their acquire positions.
	HeldBefore map[string]token.Pos
}

// CallSite is one resolved call with the lock context around it.
type CallSite struct {
	Pos token.Pos
	// Callees holds the canonical keys this site may invoke (more than
	// one for interface fan-out). Empty for unresolvable dynamic calls.
	Callees []string
	// Held maps locks held intra-procedurally at this site to their
	// acquire positions.
	Held map[string]token.Pos
	// Go marks `go f()` sites: the callee runs without the caller's locks.
	Go bool
	// Boundary marks calls through the ODCI cartridge boundary
	// (extidx.IndexMethods / StatsMethods / StatsCollector): user code.
	Boundary     bool
	BoundaryName string
}

// CallerEdge records which caller, at which call site, first propagated a
// lock into a function's entry set.
type CallerEdge struct {
	Caller *FuncNode
	Pos    token.Pos
}

// BuildProgram constructs the call graph and runs the held-locks fixpoint
// over every type-checked package. Packages without type information are
// skipped (the driver reports the type-check failure separately).
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages:       pkgs,
		Funcs:          map[string]*FuncNode{},
		lockAcquirePos: map[string]token.Position{},
	}
	b := &graphBuilder{
		prog:        prog,
		impls:       map[string][]implEntry{},
		typeMethods: map[string]map[string]bool{},
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		b.collectDecls(pkg)
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		b.scanBodies(pkg)
	}
	b.resolveInterfaceCalls()
	prog.propagateHeld()
	return prog
}

// ---------------------------------------------------------------------------
// Node collection

type graphBuilder struct {
	prog *Program
	// impls maps "method|signature" to the concrete methods bearing it,
	// for interface fan-out.
	impls map[string][]implEntry
	// typeMethods maps a receiver type key ("pkg/path.Type") to the
	// name|signature strings of its full pointer method set, so fan-out
	// can require whole-interface satisfaction, not just one matching
	// method. String comparison sidesteps the separate type-check
	// universes Load creates per package.
	typeMethods map[string]map[string]bool
	// pending interface call sites awaiting fan-out resolution.
	pending []pendingIfaceCall
}

// implEntry is one concrete method candidate for interface dispatch.
type implEntry struct {
	key  string // funcKey of the method
	recv string // receiver type key into typeMethods
}

// pendingIfaceCall addresses a call site by node and index (not pointer:
// the Calls slice is still growing while sites are queued).
type pendingIfaceCall struct {
	node    *FuncNode
	index   int
	nameSig string
	// ifaceMethods is the name|signature set of the interface being
	// dispatched through; a candidate type must carry all of them.
	ifaceMethods map[string]bool
}

// funcKey canonicalizes a *types.Func to a node key that is stable across
// the separate type-check universes Load creates per package.
func funcKey(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if name := recvNamedTypeName(sig.Recv().Type()); name != "" {
			return pkgPath + ".(" + name + ")." + fn.Name()
		}
	}
	return pkgPath + "." + fn.Name()
}

// concreteRecv extracts the non-interface named type behind a (possibly
// pointer) receiver.
func concreteRecv(t types.Type) *types.Named {
	n := namedRecv(t)
	if n == nil || types.IsInterface(n) || n.Obj().Pkg() == nil {
		return nil
	}
	return n
}

// methodSetStrings renders a type's full method set (promoted methods
// included) as name|signature strings comparable across type-check
// universes.
func methodSetStrings(t types.Type) map[string]bool {
	out := map[string]bool{}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if fn, ok := ms.At(i).Obj().(*types.Func); ok {
			out[nameSig(fn)] = true
		}
	}
	return out
}

// recvNamedTypeName extracts the bare named-type name of a receiver.
func recvNamedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// nameSig builds the interface-dispatch matching key: method name plus the
// receiver-less signature rendered with full package paths, so signatures
// from different type-check universes compare equal.
func nameSig(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	q := func(p *types.Package) string { return p.Path() }
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return fn.Name() + "|" + types.TypeString(noRecv, q)
}

// collectDecls registers every declared function/method and every function
// literal of a package as graph nodes, and indexes concrete methods for
// interface fan-out.
func (b *graphBuilder) collectDecls(pkg *Package) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := funcKey(obj)
			node := &FuncNode{
				Key:       key,
				Pkg:       pkg,
				Name:      displayName(obj),
				Pos:       fd.Pos(),
				EntryHeld: map[string]CallerEdge{},
			}
			b.prog.Funcs[key] = node
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if named := concreteRecv(sig.Recv().Type()); named != nil {
					recvKey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
					if _, ok := b.typeMethods[recvKey]; !ok {
						b.typeMethods[recvKey] = methodSetStrings(types.NewPointer(named))
					}
					b.impls[nameSig(obj)] = append(b.impls[nameSig(obj)], implEntry{key: key, recv: recvKey})
				}
			}
		}
		// Function literals: anonymous roots keyed by position.
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			pos := pkg.Fset.Position(lit.Pos())
			key := fmt.Sprintf("%s.func@%s:%d:%d", pkg.ImportPath, shortFile(pos.Filename), pos.Line, pos.Column)
			b.prog.Funcs[key] = &FuncNode{
				Key:       key,
				Pkg:       pkg,
				Name:      fmt.Sprintf("func@%s:%d", shortFile(pos.Filename), pos.Line),
				Pos:       lit.Pos(),
				EntryHeld: map[string]CallerEdge{},
			}
			return true
		})
	}
}

func displayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			return "(*" + recvNamedTypeName(p.Elem()) + ")." + fn.Name()
		}
		return "(" + recvNamedTypeName(t) + ")." + fn.Name()
	}
	return fn.Name()
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ---------------------------------------------------------------------------
// Body scanning: lock events + call sites

// scanBodies fills Acquires and Calls for every node of a package.
func (b *graphBuilder) scanBodies(pkg *Package) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if node := b.prog.Funcs[funcKey(obj)]; node != nil {
				b.scanBody(pkg, node, fd.Body)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			pos := pkg.Fset.Position(lit.Pos())
			key := fmt.Sprintf("%s.func@%s:%d:%d", pkg.ImportPath, shortFile(pos.Filename), pos.Line, pos.Column)
			if node := b.prog.Funcs[key]; node != nil {
				b.scanBody(pkg, node, lit.Body)
			}
			return true
		})
	}
}

// scanBody does the linear source-order lock dataflow over one function
// body, recording acquire sites and call sites with held-set snapshots.
// Nested function literals are separate nodes and are not descended into.
func (b *graphBuilder) scanBody(pkg *Package, node *FuncNode, body *ast.BlockStmt) {
	held := map[string]token.Pos{}
	deferredCalls := map[*ast.CallExpr]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate node
		case *ast.DeferStmt:
			deferredCalls[x.Call] = true
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.CallExpr:
			b.visitCall(pkg, node, x, held, deferredCalls[x], goCalls[x])
		}
		return true
	}
	ast.Inspect(body, visit)
	// Record a node-level sample acquire position per lock for witness
	// rendering when provenance bottoms out in this function.
	for _, a := range node.Acquires {
		if _, ok := b.prog.lockAcquirePos[a.Lock]; !ok {
			b.prog.lockAcquirePos[a.Lock] = pkg.Fset.Position(a.Pos)
		}
	}
}

// lockMethodOp classifies mutex method names, TryLock variants included.
func lockMethodOp(name string) (op lockOp, kind byte) {
	switch name {
	case "Lock", "TryLock":
		return opAcquire, 'W'
	case "RLock", "TryRLock":
		return opAcquire, 'R'
	case "Unlock":
		return opRelease, 'W'
	case "RUnlock":
		return opRelease, 'R'
	}
	return opNone, 0
}

func (b *graphBuilder) visitCall(pkg *Package, node *FuncNode, call *ast.CallExpr, held map[string]token.Pos, deferred, isGo bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if isSel && len(call.Args) == 0 {
		if op, _ := lockMethodOp(sel.Sel.Name); op != opNone {
			if !isMutexMethod(pkg, sel) {
				return
			}
			id := lockIdentity(pkg, sel.X)
			if id == "" {
				return // local or unidentifiable: untracked
			}
			switch op {
			case opAcquire:
				node.Acquires = append(node.Acquires, LockAcquire{
					Lock:       id,
					Pos:        call.Pos(),
					HeldBefore: copyHeld(held),
				})
				held[id] = call.Pos()
			case opRelease:
				if !deferred {
					delete(held, id)
				}
			}
			return
		}
	}
	// Ordinary call: resolve callees.
	site := CallSite{Pos: call.Pos(), Held: copyHeld(held), Go: isGo}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
			site.Callees = []string{funcKey(fn)}
		}
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[fun]; s != nil && s.Kind() == types.MethodVal {
			fn, ok := s.Obj().(*types.Func)
			if !ok {
				break
			}
			if types.IsInterface(s.Recv()) {
				// Interface dispatch: fan out later, once every concrete
				// method in the program is indexed.
				if ifn := ifaceTypeName(s.Recv()); ifn != "" {
					if isODCIBoundaryInterface(ifn) {
						site.Boundary = true
						site.BoundaryName = ifn + "." + fn.Name()
					}
				}
				node.Calls = append(node.Calls, site)
				b.pending = append(b.pending, pendingIfaceCall{
					node:         node,
					index:        len(node.Calls) - 1,
					nameSig:      nameSig(fn),
					ifaceMethods: methodSetStrings(s.Recv()),
				})
				return
			}
			site.Callees = []string{funcKey(fn)}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			// Qualified call: otherpkg.Func(...).
			site.Callees = []string{funcKey(fn)}
		}
	}
	if len(site.Callees) == 0 && !site.Boundary {
		return // dynamic call we cannot resolve; nothing to record
	}
	node.Calls = append(node.Calls, site)
}

// ifaceTypeName names the (possibly pointed-to) named interface type.
func ifaceTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isODCIBoundaryInterface reports whether the interface is the cartridge
// side of the ODCI boundary — the interfaces whose implementations are
// user (cartridge) code the engine invokes implicitly. Server is excluded:
// it is the opposite direction (cartridge calling back into the engine).
func isODCIBoundaryInterface(name string) bool {
	switch name {
	case "IndexMethods", "StatsMethods", "StatsCollector":
		return true
	}
	return false
}

// isMutexMethod confirms via types that a Lock-shaped call really targets
// sync.Mutex/RWMutex (directly or through a field of those types), not an
// unrelated method that happens to be called Lock.
func isMutexMethod(pkg *Package, sel *ast.SelectorExpr) bool {
	s := pkg.Info.Selections[sel]
	if s == nil {
		// Qualified or unresolvable selector: not a method value on a
		// mutex field.
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// lockIdentity renders the package-qualified identity of the mutex
// expression: "pkg.Type.field" for struct fields, "pkg.var" for package
// variables, "" for locals and anything unidentifiable.
func lockIdentity(pkg *Package, x ast.Expr) string {
	switch e := x.(type) {
	case *ast.ParenExpr:
		return lockIdentity(pkg, e.X)
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			field := s.Obj()
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + field.Name()
			}
			return ""
		}
		// Qualified package-level var: otherpkg.someMu.
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return "" // local variable: untracked
	}
	return ""
}

// resolveInterfaceCalls fans pending interface call sites out to every
// concrete method whose receiver type satisfies the whole dispatched
// interface (method-set inclusion by signature strings) — matching one
// method by name alone would weld unrelated implementations together
// wherever two interfaces share a method like Sync() error.
func (b *graphBuilder) resolveInterfaceCalls() {
	for _, p := range b.pending {
		site := &p.node.Calls[p.index]
		for _, ie := range b.impls[p.nameSig] {
			if satisfiesAll(b.typeMethods[ie.recv], p.ifaceMethods) {
				site.Callees = append(site.Callees, ie.key)
			}
		}
	}
	b.pending = nil
}

// satisfiesAll reports whether the candidate method set carries every
// required interface method.
func satisfiesAll(have map[string]bool, required map[string]bool) bool {
	for m := range required {
		if !have[m] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Interprocedural held-set propagation

// propagateHeld pushes caller-held locks down call edges to a fixed point.
func (p *Program) propagateHeld() {
	work := make([]*FuncNode, 0, len(p.Funcs))
	for _, n := range p.Funcs {
		work = append(work, n)
	}
	// Deterministic seed order keeps provenance (and thus messages) stable.
	sort.Slice(work, func(i, j int) bool { return work[i].Key < work[j].Key })
	queued := map[string]bool{}
	for _, n := range work {
		queued[n.Key] = true
	}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		queued[f.Key] = false
		for i := range f.Calls {
			site := &f.Calls[i]
			if site.Go {
				continue // goroutine: caller's locks are not held there
			}
			for _, calleeKey := range site.Callees {
				g := p.Funcs[calleeKey]
				if g == nil || g == f {
					continue
				}
				changed := false
				add := func(lock string) {
					if _, ok := g.EntryHeld[lock]; !ok {
						g.EntryHeld[lock] = CallerEdge{Caller: f, Pos: site.Pos}
						changed = true
					}
				}
				for lock := range site.Held {
					add(lock)
				}
				for lock := range f.EntryHeld {
					add(lock)
				}
				if changed && !queued[g.Key] {
					queued[g.Key] = true
					work = append(work, g)
				}
			}
		}
	}
}

// HeldAt returns every lock held at a call site — the intra-procedural
// set plus the caller-propagated entry set.
func (p *Program) HeldAt(f *FuncNode, site *CallSite) []string {
	set := map[string]bool{}
	for l := range site.Held {
		set[l] = true
	}
	for l := range f.EntryHeld {
		set[l] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// HoldChain renders how lock became held around an event inside f: either
// "acquired at <pos>" (intra) or a caller chain "via <f> ← <g> …".
func (p *Program) HoldChain(f *FuncNode, lock string, intra map[string]token.Pos) string {
	if pos, ok := intra[lock]; ok {
		return fmt.Sprintf("acquired at %s in %s", p.fposition(f, pos), f.Name)
	}
	var steps []string
	cur := f
	for hops := 0; hops < 32; hops++ {
		edge, ok := cur.EntryHeld[lock]
		if !ok || edge.Caller == nil {
			break
		}
		steps = append(steps, fmt.Sprintf("%s (call at %s)", edge.Caller.Name, p.fposition(edge.Caller, edge.Pos)))
		// Did the caller hold it intra-procedurally at that site?
		if sitePos, found := callerIntraHeld(edge.Caller, edge.Pos, lock); found {
			steps = append(steps, fmt.Sprintf("acquired at %s", p.fposition(edge.Caller, sitePos)))
			break
		}
		cur = edge.Caller
	}
	if len(steps) == 0 {
		if pos, ok := p.lockAcquirePos[lock]; ok {
			return fmt.Sprintf("acquired at %s", trimPos(pos))
		}
		return "held by a caller"
	}
	return "held via " + strings.Join(steps, " ← ")
}

// callerIntraHeld finds the acquire position of lock in caller's intra
// held set at the given call site.
func callerIntraHeld(caller *FuncNode, sitePos token.Pos, lock string) (token.Pos, bool) {
	for i := range caller.Calls {
		if caller.Calls[i].Pos == sitePos {
			pos, ok := caller.Calls[i].Held[lock]
			return pos, ok
		}
	}
	return token.NoPos, false
}

func (p *Program) fposition(f *FuncNode, pos token.Pos) string {
	return trimPos(f.Pkg.Fset.Position(pos))
}

// trimPos renders file:line with the directory stripped: witness chains
// cite several positions and full paths would drown the message.
func trimPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
}
