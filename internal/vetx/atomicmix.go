package vetx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix returns the atomicmix analyzer: a variable or struct field
// accessed through the function-style sync/atomic API (atomic.AddInt64,
// atomic.LoadUint32, ...) anywhere in a package must be accessed that way
// everywhere — one plain read or write racing an atomic one is still a
// data race, and the mixed pattern usually means someone forgot which
// discipline the field uses. (The typed atomics — atomic.Int64 et al. —
// make mixing impossible and are preferred; this catches the legacy form.)
//
// The check is per package: atomics are an implementation detail of the
// owning package, and unexported fields can't leak. Initialization in a
// constructor counts as a plain access too — the contract here is "always
// atomic", which composite literals satisfy by zero value.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name:      "atomicmix",
		Doc:       "a field accessed via sync/atomic must not also be accessed plainly",
		NeedTypes: true,
		Run:       runAtomicMix,
	}
}

func runAtomicMix(pkg *Package) []Finding {
	// Pass 1: objects passed by address to function-style sync/atomic
	// calls, plus the source ranges of those arguments (so pass 2 can
	// tell an atomic operand from a plain access).
	atomicObjs := map[types.Object]token.Position{}
	type span struct{ lo, hi token.Pos }
	var atomicArgs []span
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedObject(pkg, addr.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = pkg.Fset.Position(addr.X.Pos())
				}
				atomicArgs = append(atomicArgs, span{addr.Pos(), addr.End()})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicArgs {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: every other use of those objects is a plain access.
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			atomicAt, tracked := atomicObjs[obj]
			if !tracked || inAtomicArg(id.Pos()) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "atomicmix",
				Pos:      pkg.Fset.Position(id.Pos()),
				Message: fmt.Sprintf("%s is accessed with sync/atomic at %s but plainly here; every access must be atomic",
					id.Name, trimPos(atomicAt)),
			})
			return true
		})
	}
	return out
}

// addressedObject resolves the variable or field behind an &-operand:
// x.f (field selection) or x (variable).
func addressedObject(pkg *Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Package-qualified var (pkg.Var).
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.ParenExpr:
		return addressedObject(pkg, x.X)
	case *ast.IndexExpr:
		// &xs[i]: element identity is dynamic; track the slice/array
		// object itself would over-approximate — skip.
	}
	return nil
}
