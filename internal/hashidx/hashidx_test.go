package hashidx

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func newIdx(t testing.TB) (*Index, *storage.Pager) {
	t.Helper()
	p := storage.NewPager(storage.NewMemBackend(), 512)
	x, err := Create(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	return x, p
}

func TestInsertLookup(t *testing.T) {
	x, _ := newIdx(t)
	if err := x.Insert([]byte("alice"), []byte("r1")); err != nil {
		t.Fatal(err)
	}
	x.Insert([]byte("alice"), []byte("r2"))
	x.Insert([]byte("bob"), []byte("r3"))

	vals, err := x.Lookup([]byte("alice"))
	if err != nil || len(vals) != 2 {
		t.Fatalf("Lookup(alice) = %v, %v", vals, err)
	}
	vals, _ = x.Lookup([]byte("carol"))
	if len(vals) != 0 {
		t.Errorf("Lookup(carol) = %v", vals)
	}
	if n, _ := x.Count(); n != 3 {
		t.Errorf("Count = %d", n)
	}
}

func TestDeleteExactPair(t *testing.T) {
	x, _ := newIdx(t)
	x.Insert([]byte("k"), []byte("v1"))
	x.Insert([]byte("k"), []byte("v2"))
	ok, err := x.Delete([]byte("k"), []byte("v1"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, _ := x.Delete([]byte("k"), []byte("v1")); ok {
		t.Error("second delete of same pair succeeded")
	}
	vals, _ := x.Lookup([]byte("k"))
	if len(vals) != 1 || string(vals[0]) != "v2" {
		t.Errorf("after delete, Lookup = %v", vals)
	}
}

func TestManyKeysAcrossBuckets(t *testing.T) {
	x, _ := newIdx(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := x.Insert([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 1, 999, n - 1} {
		vals, err := x.Lookup([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || len(vals) != 1 || string(vals[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Lookup(key-%d) = %v, %v", i, vals, err)
		}
	}
}

func TestTruncateAndReuse(t *testing.T) {
	x, _ := newIdx(t)
	for i := 0; i < 500; i++ {
		x.Insert([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if err := x.Truncate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := x.Count(); n != 0 {
		t.Errorf("Count after truncate = %d", n)
	}
	x.Insert([]byte("fresh"), []byte("v"))
	if vals, _ := x.Lookup([]byte("fresh")); len(vals) != 1 {
		t.Error("index unusable after truncate")
	}
}

func TestOpenReattach(t *testing.T) {
	p := storage.NewPager(storage.NewMemBackend(), 512)
	x, err := Create(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		x.Insert([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	x2, err := Open(p, x.DirPage())
	if err != nil {
		t.Fatal(err)
	}
	vals, err := x2.Lookup([]byte("k500"))
	if err != nil || len(vals) != 1 || string(vals[0]) != "v500" {
		t.Fatalf("reopened Lookup = %v, %v", vals, err)
	}
}

func TestCreateRejectsHugeDirectory(t *testing.T) {
	p := storage.NewPager(storage.NewMemBackend(), 64)
	if _, err := Create(p, 1<<20); err == nil {
		t.Error("oversized directory accepted")
	}
}

func TestRandomizedModel(t *testing.T) {
	x, _ := newIdx(t)
	rng := rand.New(rand.NewSource(5))
	model := map[string]map[string]int{} // key -> val -> count
	key := func() string { return fmt.Sprintf("k%d", rng.Intn(200)) }
	val := func() string { return fmt.Sprintf("v%d", rng.Intn(10)) }
	for step := 0; step < 4000; step++ {
		k, v := key(), val()
		switch rng.Intn(3) {
		case 0, 1:
			if err := x.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			if model[k] == nil {
				model[k] = map[string]int{}
			}
			model[k][v]++
		case 2:
			ok, err := x.Delete([]byte(k), []byte(v))
			if err != nil {
				t.Fatal(err)
			}
			want := model[k][v] > 0
			if ok != want {
				t.Fatalf("step %d: Delete(%s,%s) = %v, want %v", step, k, v, ok, want)
			}
			if ok {
				model[k][v]--
			}
		}
		if step%500 == 499 {
			for k, vs := range model {
				got, err := x.Lookup([]byte(k))
				if err != nil {
					t.Fatal(err)
				}
				counts := map[string]int{}
				for _, g := range got {
					counts[string(g)]++
				}
				for v, want := range vs {
					if counts[v] != want {
						t.Fatalf("step %d: key %s val %s count %d, want %d", step, k, v, counts[v], want)
					}
				}
			}
		}
	}
}

func BenchmarkHashLookup(b *testing.B) {
	p := storage.NewPager(storage.NewMemBackend(), 4096)
	x, _ := Create(p, 1024)
	for i := 0; i < 100000; i++ {
		x.Insert([]byte(fmt.Sprintf("key-%d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vals, _ := x.Lookup([]byte(fmt.Sprintf("key-%d", i%100000))); len(vals) != 1 {
			b.Fatal("miss")
		}
	}
}
