// Package hashidx implements a page-backed chained hash index, the
// engine's built-in equality access method (the paper's "Hashed Index"
// baseline). Keys are arbitrary byte strings; duplicates are allowed, so a
// secondary index simply stores (column-key → RID) pairs.
package hashidx

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/storage"
)

// Index is a static-directory chained hash index. It is not safe for
// concurrent use.
type Index struct {
	pager   *storage.Pager
	dir     storage.PageID // directory page listing bucket heads
	buckets []*storage.Heap
	nb      int
}

// DefaultBuckets is the directory size used when 0 is passed to Create.
const DefaultBuckets = 256

// Create allocates a hash index with nb bucket chains (DefaultBuckets
// when nb <= 0).
func Create(p *storage.Pager, nb int) (*Index, error) {
	if nb <= 0 {
		nb = DefaultBuckets
	}
	maxDir := (storage.PageSize - 8) / 4
	if nb > maxDir {
		return nil, fmt.Errorf("hashidx: %d buckets exceeds directory capacity %d", nb, maxDir)
	}
	idx := &Index{pager: p, nb: nb}
	dirPg, err := p.NewPage()
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(dirPg.Data[0:4], uint32(nb))
	for i := 0; i < nb; i++ {
		h, err := storage.CreateHeap(p)
		if err != nil {
			p.Unpin(dirPg, true)
			return nil, err
		}
		idx.buckets = append(idx.buckets, h)
		binary.BigEndian.PutUint32(dirPg.Data[8+i*4:12+i*4], uint32(h.FirstPage()))
	}
	idx.dir = dirPg.ID
	p.Unpin(dirPg, true)
	return idx, nil
}

// Open reattaches to an index created earlier, given its directory page.
func Open(p *storage.Pager, dir storage.PageID) (*Index, error) {
	pg, err := p.Fetch(dir)
	if err != nil {
		return nil, err
	}
	nb := int(binary.BigEndian.Uint32(pg.Data[0:4]))
	heads := make([]storage.PageID, nb)
	for i := 0; i < nb; i++ {
		heads[i] = storage.PageID(binary.BigEndian.Uint32(pg.Data[8+i*4 : 12+i*4]))
	}
	p.Unpin(pg, false)
	idx := &Index{pager: p, dir: dir, nb: nb}
	for _, head := range heads {
		h, err := storage.OpenHeap(p, head)
		if err != nil {
			return nil, err
		}
		idx.buckets = append(idx.buckets, h)
	}
	return idx, nil
}

// DirPage returns the page identifying this index for Open.
func (x *Index) DirPage() storage.PageID { return x.dir }

func (x *Index) bucketOf(key []byte) *storage.Heap {
	h := fnv.New32a()
	h.Write(key)
	return x.buckets[int(h.Sum32())%x.nb]
}

func encodeEntry(key, val []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(key)))
	out = append(out, key...)
	return append(out, val...)
}

func decodeEntry(rec []byte) (key, val []byte, err error) {
	kl, sz := binary.Uvarint(rec)
	if sz <= 0 || uint64(len(rec)-sz) < kl {
		return nil, nil, fmt.Errorf("hashidx: corrupt entry")
	}
	return rec[sz : sz+int(kl)], rec[sz+int(kl):], nil
}

// Insert adds a (key, val) pair. Duplicate pairs are stored as given.
func (x *Index) Insert(key, val []byte) error {
	_, err := x.bucketOf(key).Insert(encodeEntry(key, val))
	return err
}

// Lookup returns every value stored under key.
func (x *Index) Lookup(key []byte) ([][]byte, error) {
	var out [][]byte
	err := x.bucketOf(key).Scan(func(_ storage.RID, rec []byte) (bool, error) {
		k, v, err := decodeEntry(rec)
		if err != nil {
			return false, err
		}
		if bytes.Equal(k, key) {
			out = append(out, append([]byte(nil), v...))
		}
		return true, nil
	})
	return out, err
}

// Delete removes one entry exactly matching (key, val); it reports
// whether a matching entry existed.
func (x *Index) Delete(key, val []byte) (bool, error) {
	var target storage.RID
	found := false
	err := x.bucketOf(key).Scan(func(rid storage.RID, rec []byte) (bool, error) {
		k, v, err := decodeEntry(rec)
		if err != nil {
			return false, err
		}
		if bytes.Equal(k, key) && bytes.Equal(v, val) {
			target, found = rid, true
			return false, nil
		}
		return true, nil
	})
	if err != nil || !found {
		return false, err
	}
	return true, x.bucketOf(key).Delete(target)
}

// Truncate empties the index.
func (x *Index) Truncate() error {
	dirPg, err := x.pager.Fetch(x.dir)
	if err != nil {
		return err
	}
	for i, b := range x.buckets {
		if err := b.Truncate(); err != nil {
			x.pager.Unpin(dirPg, true)
			return err
		}
		binary.BigEndian.PutUint32(dirPg.Data[8+i*4:12+i*4], uint32(b.FirstPage()))
	}
	x.pager.Unpin(dirPg, true)
	return nil
}

// Drop releases every page of the index.
func (x *Index) Drop() {
	for _, b := range x.buckets {
		b.Drop()
	}
	x.pager.Free(x.dir)
	x.buckets = nil
}

// Count returns the number of stored entries.
func (x *Index) Count() (int, error) {
	total := 0
	for _, b := range x.buckets {
		n, err := b.Count()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
