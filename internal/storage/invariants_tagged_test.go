//go:build invariants

package storage

import "testing"

// TestCloseWithPinnedPagePanics proves the invariants build turns a pin
// leak into a loud failure at Close instead of a silently wired frame.
func TestCloseWithPinnedPagePanics(t *testing.T) {
	p := NewPager(NewMemBackend(), 8)
	pg, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Close with a pinned page did not panic under -tags invariants")
			}
		}()
		p.Close()
	}()
	// Release the pin and close for real.
	p.Unpin(pg, false)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
