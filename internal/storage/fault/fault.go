// Package fault wraps the storage backend and WAL sink with
// deterministic failure injection, so crash recovery is exercised by a
// scripted crash-point matrix instead of luck.
//
// The model is a volatile write cache over durable media, which is what
// a real OS page cache plus disk gives you:
//
//   - Page writes and log appends land in a volatile overlay.
//   - Sync applies the overlay to the wrapped ("durable") backend/sink.
//   - A simulated power loss (Crash) discards everything volatile; a
//     power loss *during* a sync applies a prefix of the overlay and can
//     tear the page or log record it stopped in — the torn-write
//     artifact recovery must detect by checksum.
//
// Every fault-eligible operation (page write, page-space sync, log
// append, log sync, log reset) increments a shared deterministic
// counter; a Plan maps counter values to actions. Running a workload
// once with an empty plan counts the total ops; re-running it with
// CrashAt(i) for each i sweeps every crash point.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// ErrInjected is returned by an operation the plan says fails (the
// device stays alive; the engine sees an I/O error).
var ErrInjected = errors.New("fault: injected I/O error")

// ErrCrashed is returned by every operation after a simulated power
// loss. The harness reopens from the durable state when it sees it.
var ErrCrashed = errors.New("fault: simulated power loss")

// Action is what the plan does when the op counter hits a point.
type Action int

// Actions.
const (
	// Fail makes the operation return ErrInjected without doing
	// anything; the device keeps working afterwards.
	Fail Action = iota
	// Crash simulates power loss before the operation takes effect:
	// nothing volatile survives, every later op returns ErrCrashed.
	Crash
	// CrashTorn is Crash during the operation: a sync applies a prefix
	// of its pending writes and tears the one it stopped in (half new
	// bytes, half old); an append tears its record. Non-tearable ops
	// degrade to plain Crash.
	CrashTorn
)

// Injector carries the op counter and the fault plan, shared by the
// backend and sink wrappers of one simulated device.
type Injector struct {
	mu      sync.Mutex
	ops     int
	plan    map[int]Action
	crashed bool
}

// NewInjector returns an injector with an empty plan (counts ops, never
// faults).
func NewInjector() *Injector { return &Injector{plan: map[int]Action{}} }

// Set schedules an action at the given 1-based op index.
func (in *Injector) Set(op int, a Action) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan[op] = a
	return in
}

// Ops reports how many fault-eligible operations have happened.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether power loss has been simulated.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// CrashNow simulates power loss at this instant, independent of the op
// plan: everything volatile is lost and every later operation returns
// ErrCrashed. Scenario tests use it to crash at a state of their
// choosing (e.g. with a transaction left open) rather than at the Nth
// operation.
func (in *Injector) CrashNow() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashed = true
}

// step advances the op counter and returns the action to take: actNone,
// or the injected fault. It is called once per fault-eligible op.
type stepResult int

const (
	actNone stepResult = iota
	actFail
	actCrash
	actCrashTorn
)

func (in *Injector) step() stepResult {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return actCrash
	}
	in.ops++
	switch a, ok := in.plan[in.ops]; {
	case !ok:
		return actNone
	case a == Fail:
		return actFail
	case a == CrashTorn:
		in.crashed = true
		return actCrashTorn
	default:
		in.crashed = true
		return actCrash
	}
}

// ---------------------------------------------------------------------------
// Backend wrapper

// Backend wraps a storage.Backend with a volatile write overlay and
// fault injection. The wrapped backend always holds exactly the durable
// state; after a crash, reopen the database directly on it.
type Backend struct {
	mu    sync.Mutex
	inj   *Injector
	inner storage.Backend
	// overlay holds volatile page writes; allocs counts volatile page
	// allocations beyond inner.NumPages().
	overlay map[storage.PageID][]byte
	allocs  storage.PageID
}

// NewBackend wraps inner with fault injection driven by inj.
func NewBackend(inj *Injector, inner storage.Backend) *Backend {
	return &Backend{inj: inj, inner: inner, overlay: map[storage.PageID][]byte{}}
}

// ReadPage implements storage.Backend: overlay first, then durable.
func (b *Backend) ReadPage(id storage.PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.inj.Crashed() {
		return ErrCrashed
	}
	if pg, ok := b.overlay[id]; ok {
		copy(buf, pg)
		return nil
	}
	return b.inner.ReadPage(id, buf)
}

// WritePage implements storage.Backend; the write is volatile until the
// next Sync.
func (b *Backend) WritePage(id storage.PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.inj.step() {
	case actFail:
		return ErrInjected
	case actCrash, actCrashTorn:
		return ErrCrashed
	}
	if id >= b.inner.NumPages()+b.allocs {
		return fmt.Errorf("fault: write of unallocated page %d", id)
	}
	b.overlay[id] = append([]byte(nil), buf[:storage.PageSize]...)
	return nil
}

// Allocate implements storage.Backend; the extension is volatile until
// the next Sync.
func (b *Backend) Allocate() (storage.PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.inj.Crashed() {
		return 0, ErrCrashed
	}
	id := b.inner.NumPages() + b.allocs
	b.allocs++
	b.overlay[id] = make([]byte, storage.PageSize)
	return id, nil
}

// NumPages implements storage.Backend.
func (b *Backend) NumPages() storage.PageID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inner.NumPages() + b.allocs
}

// Sync implements storage.Backend: applies the overlay to the durable
// backend in page order, then syncs it. A crash here applies a prefix
// and may tear the page it stopped in.
func (b *Backend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	act := b.inj.step()
	if act == actFail {
		return ErrInjected
	}
	var ids []storage.PageID
	for id := range b.overlay {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	apply := len(ids)
	torn := false
	switch act {
	case actCrash:
		return ErrCrashed // nothing pending becomes durable
	case actCrashTorn:
		apply = len(ids) / 2
		torn = apply < len(ids) // tear the next page after the prefix
	}
	for i := 0; i < apply; i++ {
		if err := b.applyLocked(ids[i], b.overlay[ids[i]]); err != nil {
			return err
		}
	}
	if torn {
		id := ids[apply]
		img := append([]byte(nil), b.overlay[id]...)
		if id < b.inner.NumPages() {
			// Half the new image over the old durable half: a torn write.
			old := make([]byte, storage.PageSize)
			if err := b.inner.ReadPage(id, old); err != nil {
				return err
			}
			copy(img[storage.PageSize/2:], old[storage.PageSize/2:])
		} else {
			for i := storage.PageSize / 2; i < storage.PageSize; i++ {
				img[i] = 0
			}
		}
		if err := b.applyLocked(id, img); err != nil {
			return err
		}
	}
	if act == actCrashTorn {
		return ErrCrashed
	}
	b.overlay = map[storage.PageID][]byte{}
	b.allocs = 0
	return b.inner.Sync()
}

// applyLocked writes one page durably, extending the inner page space
// when the page was volatile-allocated.
func (b *Backend) applyLocked(id storage.PageID, img []byte) error {
	for b.inner.NumPages() <= id {
		if _, err := b.inner.Allocate(); err != nil {
			return err
		}
	}
	return b.inner.WritePage(id, img)
}

// Close implements storage.Backend. The inner backend stays open so the
// harness can reopen the durable state.
func (b *Backend) Close() error {
	if b.inj.Crashed() {
		return ErrCrashed
	}
	return nil
}

// ---------------------------------------------------------------------------
// WAL sink wrapper

// Sink wraps a storage.WALSink with volatile-append and fault
// injection; appended bytes reach the durable sink only at Sync.
type Sink struct {
	mu      sync.Mutex
	inj     *Injector
	inner   storage.WALSink
	pending []byte
}

// NewSink wraps inner with fault injection driven by inj.
func NewSink(inj *Injector, inner storage.WALSink) *Sink {
	return &Sink{inj: inj, inner: inner}
}

// Append implements storage.WALSink; the bytes are volatile until Sync.
func (s *Sink) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.inj.step() {
	case actFail:
		return ErrInjected
	case actCrash, actCrashTorn:
		return ErrCrashed
	}
	s.pending = append(s.pending, p...)
	return nil
}

// Sync implements storage.WALSink: pushes pending bytes to the durable
// sink and syncs it. A crash here makes a prefix durable — torn mid-
// record when the plan says CrashTorn, which record checksums must
// catch at recovery.
func (s *Sink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.inj.step() {
	case actFail:
		return ErrInjected
	case actCrash:
		return ErrCrashed
	case actCrashTorn:
		half := s.pending[:len(s.pending)/2]
		if len(half) > 0 {
			if err := s.inner.Append(half); err != nil {
				return err
			}
			if err := s.inner.Sync(); err != nil {
				return err
			}
		}
		return ErrCrashed
	}
	if len(s.pending) > 0 {
		if err := s.inner.Append(s.pending); err != nil {
			return err
		}
		s.pending = nil
	}
	return s.inner.Sync()
}

// Contents implements storage.WALSink (durable plus pending volatile
// bytes, the view a live process has of its own log).
func (s *Sink) Contents() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inj.Crashed() {
		return nil, ErrCrashed
	}
	durable, err := s.inner.Contents()
	if err != nil {
		return nil, err
	}
	return append(durable, s.pending...), nil
}

// Truncate implements storage.WALSink: volatile bytes past n are
// dropped, and when n cuts into the durable prefix the inner sink is
// truncated too.
func (s *Sink) Truncate(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.inj.step() {
	case actFail:
		return ErrInjected
	case actCrash, actCrashTorn:
		return ErrCrashed
	}
	durable, err := s.inner.Contents()
	if err != nil {
		return err
	}
	if d := int64(len(durable)); n <= d {
		s.pending = nil
		return s.inner.Truncate(n)
	} else if keep := n - d; keep < int64(len(s.pending)) {
		s.pending = s.pending[:keep]
	}
	return nil
}

// Reset implements storage.WALSink (the post-checkpoint truncation).
func (s *Sink) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.inj.step() {
	case actFail:
		return ErrInjected
	case actCrash, actCrashTorn:
		return ErrCrashed
	}
	s.pending = nil
	return s.inner.Reset()
}

// Close implements storage.WALSink; the inner sink stays open for
// post-crash reopening.
func (s *Sink) Close() error {
	if s.inj.Crashed() {
		return ErrCrashed
	}
	return nil
}
