package storage

import (
	"bytes"
	"fmt"
	"testing"
)

// fill returns n deterministic bytes seeded by tag.
func fill(tag byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag + byte(i%13)
	}
	return p
}

func TestSegmentedAppendSpansSegments(t *testing.T) {
	s := NewMemSegmentedSink(16)
	defer s.Close()
	var want []byte
	for i := 0; i < 7; i++ {
		p := fill(byte(i), 11) // never aligned with the 16-byte capacity
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p...)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("contents mismatch: got %d bytes want %d", len(got), len(want))
	}
	live, free := s.Segments()
	if wantLive := (len(want) + 15) / 16; live != wantLive || free != 0 {
		t.Fatalf("segments = (%d live, %d free), want (%d, 0)", live, free, wantLive)
	}
}

func TestSegmentedFileReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileSegmentedSink(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(7, 100)
	if err := s.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileSegmentedSink(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reopened contents mismatch: got %d bytes want %d", len(got), len(want))
	}
	// Appending after reopen continues the same chain.
	more := fill(9, 40)
	if err := s2.Append(more); err != nil {
		t.Fatal(err)
	}
	got, err = s2.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte{}, want...), more...)) {
		t.Fatal("append after reopen lost bytes")
	}
}

func TestSegmentedTruncateRetiresTail(t *testing.T) {
	s := NewMemSegmentedSink(16)
	defer s.Close()
	data := fill(3, 80) // 5 full segments
	if err := s.Append(data); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-segment-2: keep 2 full + 1 partial, retire 2.
	if err := s.Truncate(40); err != nil {
		t.Fatal(err)
	}
	got, err := s.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:40]) {
		t.Fatal("truncated contents mismatch")
	}
	live, free := s.Segments()
	if live != 3 || free != 2 {
		t.Fatalf("segments = (%d live, %d free), want (3, 2)", live, free)
	}
	// Appends resume from the truncation point and recycle freed slots.
	if err := s.Append(fill(5, 50)); err != nil {
		t.Fatal(err)
	}
	live, free = s.Segments()
	if live != 6 || free != 0 {
		t.Fatalf("after regrow: (%d live, %d free), want (6, 0)", live, free)
	}
}

func TestSegmentedTruncateAtBoundary(t *testing.T) {
	s := NewMemSegmentedSink(16)
	defer s.Close()
	data := fill(1, 48)
	if err := s.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(32); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Contents()
	if !bytes.Equal(got, data[:32]) {
		t.Fatal("boundary truncate mismatch")
	}
	if live, free := s.Segments(); live != 2 || free != 1 {
		t.Fatalf("segments = (%d, %d), want (2, 1)", live, free)
	}
	if err := s.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Contents(); len(got) != 0 {
		t.Fatal("truncate(0) left bytes")
	}
}

func TestSegmentedResetRecyclesSlots(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileSegmentedSink(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 5; round++ {
		if err := s.Append(fill(byte(round), 60)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Contents(); len(got) != 0 {
			t.Fatalf("round %d: reset left %d bytes", round, len(got))
		}
	}
	// Steady state reuses slots: the pool never exceeds one round's worth
	// (4 data segments) plus the fresh head.
	live, free := s.Segments()
	if total := live + free; total > 5 {
		t.Fatalf("slot pool grew to %d segments; recycling is broken", total)
	}
}

func TestSegmentedResetSupersedesOldChainOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileSegmentedSink(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	old := fill(2, 60)
	if err := s.Append(old); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	fresh := fill(8, 10)
	if err := s.Append(fresh); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopen must select the post-Reset epoch even though most of the
	// old chain's segments still hold their old headers and payloads.
	s2, err := OpenFileSegmentedSink(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("reopen selected wrong chain: got %d bytes want %d", len(got), len(fresh))
	}
}

func TestSegmentedOpenIgnoresHeadlessAndTornSegments(t *testing.T) {
	m := &memSegMedium{slots: map[int]*memSegSlot{}}
	s, err := newSegmentedSink(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(fill(4, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the chain head: recovery must treat the whole medium as
	// free segments (empty log), not replay a headless suffix.
	head := m.slots[0]
	head.buf[5] ^= 0xFF // inside the epoch field, breaks the CRC
	s2, err := newSegmentedSink(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Contents(); len(got) != 0 {
		t.Fatalf("torn head: selected %d bytes, want empty log", len(got))
	}
	if live, free := s2.Segments(); live != 0 || free != 3 {
		t.Fatalf("segments = (%d, %d), want (0, 3)", live, free)
	}
}

func TestSegmentedOpenStopsAtShortMidChainSegment(t *testing.T) {
	m := &memSegMedium{slots: map[int]*memSegSlot{}}
	s, err := newSegmentedSink(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(fill(6, 48)); err != nil { // 3 full segments
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Shear bytes off segment 1's payload: the chain must end there, and
	// segment 2 must not be concatenated after a hole.
	m.slots[1].buf = m.slots[1].buf[:segHeaderSize+9]
	s2, err := newSegmentedSink(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.Contents()
	if len(got) != 16+9 {
		t.Fatalf("chain length %d, want %d", len(got), 16+9)
	}
	if live, free := s2.Segments(); live != 2 || free != 1 {
		t.Fatalf("segments = (%d, %d), want (2, 1)", live, free)
	}
}

func TestSegmentedWALIntegration(t *testing.T) {
	// The segmented sink must be a drop-in WALSink: run a WAL
	// append/replay cycle over it, including a mid-stream record that
	// straddles a segment boundary.
	var _ WALSink = (*SegmentedSink)(nil)
	sink := NewMemSegmentedSink(64)
	w := NewWAL(sink, 0, 0)
	b := NewMemBackend()
	ids := make([]PageID, 3)
	for i := range ids {
		id, err := b.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		if err := w.AppendPage(id, fill(byte(i), PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendCommit(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := ReplayWAL(b, sink)
	if err != nil {
		t.Fatal(err)
	}
	if info.Commits != 1 || info.PagesApplied != len(ids) {
		t.Fatalf("replay = %d commits / %d pages, want 1 / %d", info.Commits, info.PagesApplied, len(ids))
	}
	for i, id := range ids {
		got := make([]byte, PageSize)
		if err := b.ReadPage(id, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(byte(i), PageSize)) {
			t.Fatalf("page %d not recovered", id)
		}
	}
	sink.Close()
}

func TestSegmentedTruncateOutOfRange(t *testing.T) {
	s := NewMemSegmentedSink(16)
	defer s.Close()
	if err := s.Append(fill(0, 10)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{-1, 11} {
		if err := s.Truncate(n); err == nil {
			t.Fatalf("Truncate(%d) succeeded on a 10-byte log", n)
		}
	}
}

func TestSegmentedFileReopenAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileSegmentedSink(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := fill(1, 70)
	if err := s.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(20); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileSegmentedSink(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.Contents()
	if !bytes.Equal(got, data[:20]) {
		t.Fatalf("reopen after truncate: got %d bytes want 20", len(got))
	}
	// The retired segments' headers were invalidated, so they sit on the
	// free list rather than extending the chain.
	if live, free := s2.Segments(); live != 2 || free != 3 {
		t.Fatalf("segments = (%d, %d), want (2, 3)", live, free)
	}
}

func TestSegmentedManyEpochs(t *testing.T) {
	// Epochs must survive many reset cycles with interleaved reopens.
	dir := t.TempDir()
	for round := 0; round < 4; round++ {
		s, err := OpenFileSegmentedSink(dir, 16)
		if err != nil {
			t.Fatal(err)
		}
		want := fill(byte(round), 25)
		if got, _ := s.Contents(); len(got) != 0 && round > 0 {
			t.Fatalf("round %d: reopen saw %d stale bytes", round, len(got))
		}
		if err := s.Append(want); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkSegmentedAppend(b *testing.B) {
	s := NewMemSegmentedSink(DefaultWALSegmentBytes)
	defer s.Close()
	p := fill(0, 4096)
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(p); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			if err := s.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = fmt.Sprintf
}
