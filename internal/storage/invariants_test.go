package storage

import (
	"bytes"
	"testing"
)

func TestValidatePage(t *testing.T) {
	d := make([]byte, PageSize)
	initPage(d)
	if err := validatePage(d); err != nil {
		t.Fatalf("empty page: %v", err)
	}

	s1, err := pageInsert(d, []byte("first record"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pageInsert(d, bytes.Repeat([]byte("x"), 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := validatePage(d); err != nil {
		t.Fatalf("page with two records: %v", err)
	}

	// dataStart colliding with the slot array.
	saveDS := pageDataStart(d)
	setPageDataStart(d, pageHeaderSize-2)
	if err := validatePage(d); err == nil {
		t.Error("corrupt dataStart not detected")
	}
	setPageDataStart(d, saveDS)

	// Slot data hanging off the end of the page.
	off1, len1 := slotOffLen(d, s1)
	setSlot(d, s1, PageSize-4, 8)
	if err := validatePage(d); err == nil {
		t.Error("out-of-bounds slot not detected")
	}
	setSlot(d, s1, off1, len1)

	// Two slots claiming overlapping data.
	off2, len2 := slotOffLen(d, s2)
	setSlot(d, s2, off1, len1)
	if err := validatePage(d); err == nil {
		t.Error("overlapping slots not detected")
	}
	setSlot(d, s2, off2, len2)

	// An empty slot must be fully zeroed.
	if err := pageDelete(d, s1); err != nil {
		t.Fatal(err)
	}
	setSlot(d, s1, 17, 0)
	if err := validatePage(d); err == nil {
		t.Error("non-zero empty slot not detected")
	}
	setSlot(d, s1, 0, 0)

	if err := validatePage(d); err != nil {
		t.Fatalf("restored page: %v", err)
	}
}

func TestPinnedPages(t *testing.T) {
	p := NewPager(NewMemBackend(), 8)
	if got := p.PinnedPages(); len(got) != 0 {
		t.Fatalf("fresh pager reports pinned pages %v", got)
	}
	a, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	got := p.PinnedPages()
	if len(got) != 2 || got[0] != a.ID || got[1] != b.ID {
		t.Fatalf("PinnedPages = %v, want [%d %d]", got, a.ID, b.ID)
	}
	p.Unpin(a, false)
	p.Unpin(b, false)
	if got := p.PinnedPages(); len(got) != 0 {
		t.Fatalf("after unpin, PinnedPages = %v", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
