//go:build invariants

package storage

// invariantsEnabled compiles in the runtime structural checks: slotted
// heap-page validation after every mutation and the pin-leak check at
// Pager.Close. CI runs the race suite with `-tags invariants`; default
// builds compile the checks away entirely.
const invariantsEnabled = true
