package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted-page layout (heap pages and IOT/B+-tree nodes share the same
// low-level slot machinery):
//
//	bytes 0..3   next page id in the owning object's chain (InvalidPage = end)
//	bytes 4..5   number of slots
//	bytes 6..7   dataStart: lowest byte offset used by tuple data
//	bytes 8..    slot array, 4 bytes per slot: offset u16, length u16
//	...free...
//	dataStart..  tuple data, growing downward from PageSize
//
// An empty slot has offset == 0 and length == 0 (offset 0 can never hold
// data because the header occupies it).

const (
	pageHeaderSize = 8
	slotSize       = 4
)

// MaxRecordSize is the largest record a slotted page can hold. Larger
// payloads must go through the LOB store.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

func pageNext(d []byte) PageID       { return PageID(binary.BigEndian.Uint32(d[0:4])) }
func setPageNext(d []byte, n PageID) { binary.BigEndian.PutUint32(d[0:4], uint32(n)) }

func pageNSlots(d []byte) int       { return int(binary.BigEndian.Uint16(d[4:6])) }
func setPageNSlots(d []byte, n int) { binary.BigEndian.PutUint16(d[4:6], uint16(n)) }

func pageDataStart(d []byte) int       { return int(binary.BigEndian.Uint16(d[6:8])) }
func setPageDataStart(d []byte, n int) { binary.BigEndian.PutUint16(d[6:8], uint16(n)) }

// initPage formats a zeroed buffer as an empty slotted page.
func initPage(d []byte) {
	setPageNext(d, InvalidPage)
	setPageNSlots(d, 0)
	setPageDataStart(d, PageSize)
}

func slotOffLen(d []byte, slot int) (off, length int) {
	base := pageHeaderSize + slot*slotSize
	return int(binary.BigEndian.Uint16(d[base : base+2])),
		int(binary.BigEndian.Uint16(d[base+2 : base+4]))
}

func setSlot(d []byte, slot, off, length int) {
	base := pageHeaderSize + slot*slotSize
	binary.BigEndian.PutUint16(d[base:base+2], uint16(off))
	binary.BigEndian.PutUint16(d[base+2:base+4], uint16(length))
}

// pageFreeSpace returns the bytes available for one more record reusing an
// existing empty slot (reuseSlot >= 0) or needing a fresh slot entry.
func pageFreeSpace(d []byte) (free int, reuseSlot int) {
	n := pageNSlots(d)
	reuseSlot = -1
	for s := 0; s < n; s++ {
		if off, l := slotOffLen(d, s); off == 0 && l == 0 {
			reuseSlot = s
			break
		}
	}
	slotEnd := pageHeaderSize + n*slotSize
	free = pageDataStart(d) - slotEnd
	if reuseSlot < 0 {
		free -= slotSize
	}
	if free < 0 {
		free = 0
	}
	return free, reuseSlot
}

// pageLiveBytes returns the total size of live tuple data (for deciding
// whether compaction would make an insert fit).
func pageLiveBytes(d []byte) int {
	total := 0
	for s, n := 0, pageNSlots(d); s < n; s++ {
		_, l := slotOffLen(d, s)
		total += l
	}
	return total
}

// pageCompact rewrites tuple data contiguously at the end of the page,
// updating slot offsets. Slot numbers (and therefore RIDs) are preserved.
func pageCompact(d []byte) {
	n := pageNSlots(d)
	type ent struct{ slot, off, len int }
	var live []ent
	for s := 0; s < n; s++ {
		off, l := slotOffLen(d, s)
		if l > 0 {
			live = append(live, ent{s, off, l})
		}
	}
	tmp := make([]byte, 0, PageSize)
	// Copy tuples out, then lay them back from the end.
	offs := make([]int, len(live))
	for i, e := range live {
		offs[i] = len(tmp)
		tmp = append(tmp, d[e.off:e.off+e.len]...)
	}
	pos := PageSize
	for i := len(live) - 1; i >= 0; i-- {
		e := live[i]
		pos -= e.len
		copy(d[pos:pos+e.len], tmp[offs[i]:offs[i]+e.len])
		setSlot(d, e.slot, pos, e.len)
	}
	setPageDataStart(d, pos)
}

// pageInsert places rec into the page, returning the slot used. It fails
// with errPageFull when the record does not fit even after compaction.
var errPageFull = fmt.Errorf("storage: page full")

func pageInsert(d, rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d (store large data in LOBs)", len(rec), MaxRecordSize)
	}
	free, reuse := pageFreeSpace(d)
	if free < len(rec) {
		// Try compaction: dead tuple space is reclaimable.
		needSlot := slotSize
		if reuse >= 0 {
			needSlot = 0
		}
		slotEnd := pageHeaderSize + pageNSlots(d)*slotSize
		if PageSize-slotEnd-pageLiveBytes(d)-needSlot >= len(rec) {
			pageCompact(d)
			free, reuse = pageFreeSpace(d)
		}
	}
	if free < len(rec) {
		return 0, errPageFull
	}
	slot := reuse
	if slot < 0 {
		slot = pageNSlots(d)
		setPageNSlots(d, slot+1)
	}
	pos := pageDataStart(d) - len(rec)
	copy(d[pos:pos+len(rec)], rec)
	setPageDataStart(d, pos)
	setSlot(d, slot, pos, len(rec))
	if invariantsEnabled {
		mustValidPage(d, "insert")
	}
	return slot, nil
}

// pageRead returns the record bytes stored at slot, or nil if the slot is
// empty. The returned slice aliases the page buffer.
func pageRead(d []byte, slot int) ([]byte, error) {
	if slot < 0 || slot >= pageNSlots(d) {
		return nil, fmt.Errorf("storage: slot %d out of range", slot)
	}
	off, l := slotOffLen(d, slot)
	if l == 0 {
		return nil, nil
	}
	return d[off : off+l], nil
}

// pageDelete clears the slot; the tuple space is reclaimed lazily by
// compaction.
func pageDelete(d []byte, slot int) error {
	if slot < 0 || slot >= pageNSlots(d) {
		return fmt.Errorf("storage: slot %d out of range", slot)
	}
	setSlot(d, slot, 0, 0)
	if invariantsEnabled {
		mustValidPage(d, "delete")
	}
	return nil
}

// pageReplace overwrites the record at slot with rec if it fits in the
// page (possibly after compaction); it reports whether it succeeded.
func pageReplace(d []byte, slot int, rec []byte) (bool, error) {
	if slot < 0 || slot >= pageNSlots(d) {
		return false, fmt.Errorf("storage: slot %d out of range", slot)
	}
	off, l := slotOffLen(d, slot)
	if l == 0 {
		return false, fmt.Errorf("storage: replacing empty slot %d", slot)
	}
	if len(rec) <= l {
		// Shrinking or equal: rewrite in place at the tail of the old region.
		pos := off + l - len(rec)
		copy(d[pos:pos+len(rec)], rec)
		setSlot(d, slot, pos, len(rec))
		if invariantsEnabled {
			mustValidPage(d, "replace")
		}
		return true, nil
	}
	// Growing: delete then insert within the same page if possible.
	setSlot(d, slot, 0, 0)
	slotEnd := pageHeaderSize + pageNSlots(d)*slotSize
	if PageSize-slotEnd-pageLiveBytes(d) >= len(rec) && len(rec) <= MaxRecordSize {
		pageCompact(d)
		pos := pageDataStart(d) - len(rec)
		copy(d[pos:pos+len(rec)], rec)
		setPageDataStart(d, pos)
		setSlot(d, slot, pos, len(rec))
		if invariantsEnabled {
			mustValidPage(d, "replace-grow")
		}
		return true, nil
	}
	// Restore the old record so the caller can forward it elsewhere.
	setSlot(d, slot, off, l)
	if invariantsEnabled {
		mustValidPage(d, "replace-restore")
	}
	return false, nil
}
