package storage

import (
	"fmt"
	"sort"
)

// Runtime structural invariants. validatePage is always compiled (tests
// call it directly); the mutation hooks in page.go and the Close-time
// pin-leak check in pager.go run it only when the `invariants` build tag
// sets invariantsEnabled. These are the dynamic half of the contracts the
// static analyzers in internal/vetx enforce at compile time.

// validatePage checks the slotted-page structural invariants:
//
//   - the slot array and dataStart do not overlap and stay in bounds;
//   - every live slot lies entirely within [dataStart, PageSize);
//   - an empty slot is fully zeroed (offset 0 cannot hold data);
//   - no two live slots overlap.
func validatePage(d []byte) error {
	if len(d) != PageSize {
		return fmt.Errorf("page buffer is %d bytes, want %d", len(d), PageSize)
	}
	n := pageNSlots(d)
	slotEnd := pageHeaderSize + n*slotSize
	ds := pageDataStart(d)
	if slotEnd > ds {
		return fmt.Errorf("slot array (%d slots, ends at %d) overlaps data start %d", n, slotEnd, ds)
	}
	if ds > PageSize {
		return fmt.Errorf("data start %d beyond page size %d", ds, PageSize)
	}
	type span struct{ slot, off, end int }
	var live []span
	for s := 0; s < n; s++ {
		off, l := slotOffLen(d, s)
		if l == 0 {
			if off != 0 {
				return fmt.Errorf("empty slot %d has non-zero offset %d", s, off)
			}
			continue
		}
		if off < ds || off+l > PageSize {
			return fmt.Errorf("slot %d data [%d,%d) outside data region [%d,%d)", s, off, off+l, ds, PageSize)
		}
		live = append(live, span{s, off, off + l})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].off < live[j].off })
	for i := 1; i < len(live); i++ {
		if live[i].off < live[i-1].end {
			return fmt.Errorf("slot %d data [%d,%d) overlaps slot %d data ending at %d",
				live[i].slot, live[i].off, live[i].end, live[i-1].slot, live[i-1].end)
		}
	}
	return nil
}

// mustValidPage panics on a violated page invariant; it is called from
// mutation paths behind invariantsEnabled, where a bad page means the
// mutation itself corrupted the layout.
func mustValidPage(d []byte, op string) {
	if err := validatePage(d); err != nil {
		panic(fmt.Sprintf("storage: page invariant violated after %s: %v", op, err))
	}
}
