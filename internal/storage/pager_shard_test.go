package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stampPage fills a page's bytes with a value derived from (id, version)
// so any cross-page or stale-version mixup is visible in full.
func stampPage(data []byte, id PageID, version int) {
	b := byte(uint32(id)*31 + uint32(version)*7 + 1)
	for i := range data {
		data[i] = b
	}
}

func checkStamp(t *testing.T, data []byte, id PageID, version int, ctx string) {
	t.Helper()
	want := byte(uint32(id)*31 + uint32(version)*7 + 1)
	for i, got := range data {
		if got != want {
			t.Fatalf("%s: page %d byte %d = %#x, want %#x (version %d)", ctx, id, i, got, want, version)
		}
	}
}

// TestShardedPagerPropertyVsOracle drives the sharded pager with random
// pin/unpin/dirty/free/flush scripts and checks it against a flat-map
// oracle: the oracle records each page's latest written version, and
// every fetch must observe exactly that version regardless of which
// shard the page hashed to or how many times eviction cycled it through
// the backend. Capacity is far below the working set, so the clock hand
// evicts constantly.
func TestShardedPagerPropertyVsOracle(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				p := NewPagerShards(NewMemBackend(), 16, shards)
				oracle := map[PageID]int{} // id -> latest version
				freed := map[PageID]bool{}
				var ids []PageID

				liveIDs := func() []PageID {
					out := ids[:0:0]
					for _, id := range ids {
						if !freed[id] {
							out = append(out, id)
						}
					}
					return out
				}

				for op := 0; op < 2000; op++ {
					switch k := rng.Intn(100); {
					case k < 25: // allocate a new page
						pg, err := p.NewPage()
						if err != nil {
							t.Fatal(err)
						}
						v := 1
						stampPage(pg.Data, pg.ID, v)
						p.Unpin(pg, true)
						if freed[pg.ID] {
							freed[pg.ID] = false // recycled from the free list
						} else {
							ids = append(ids, pg.ID)
						}
						oracle[pg.ID] = v
					case k < 75: // fetch, verify, maybe rewrite
						live := liveIDs()
						if len(live) == 0 {
							continue
						}
						id := live[rng.Intn(len(live))]
						pg, err := p.Fetch(id)
						if err != nil {
							t.Fatal(err)
						}
						checkStamp(t, pg.Data, id, oracle[id], "fetch")
						if rng.Intn(2) == 0 {
							oracle[id]++
							stampPage(pg.Data, id, oracle[id])
							p.Unpin(pg, true)
						} else {
							p.Unpin(pg, false)
						}
					case k < 85: // free an unpinned page
						live := liveIDs()
						if len(live) == 0 {
							continue
						}
						id := live[rng.Intn(len(live))]
						p.Free(id)
						freed[id] = true
						delete(oracle, id)
					case k < 95: // spot-check counter invariants
						s := p.Stats()
						if s.Fetches != s.Hits+s.Misses {
							t.Fatalf("stats: fetches=%d != hits+misses=%d", s.Fetches, s.Hits+s.Misses)
						}
					default:
						if err := p.FlushAll(); err != nil {
							t.Fatal(err)
						}
						if n := p.DirtyCount(); n != 0 {
							t.Fatalf("DirtyCount=%d after FlushAll", n)
						}
					}
				}

				// Final sweep: every live page must read back its oracle
				// version after a full flush.
				if err := p.FlushAll(); err != nil {
					t.Fatal(err)
				}
				for _, id := range liveIDs() {
					pg, err := p.Fetch(id)
					if err != nil {
						t.Fatal(err)
					}
					checkStamp(t, pg.Data, id, oracle[id], "final")
					p.Unpin(pg, false)
				}
				if leaked := p.PinnedPages(); len(leaked) > 0 {
					t.Fatalf("pinned pages at end of script: %v", leaked)
				}
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestShardedPagerConcurrentHammer exercises the lockless pin/unpin fast
// paths under -race: goroutines fetch and release a shared hot set (all
// clean) while others dirty their own disjoint pages. Afterwards the
// pool must balance exactly: no pins at rest, consistent counters, and a
// dirty count matching the writers' page sets.
func TestShardedPagerConcurrentHammer(t *testing.T) {
	const (
		readers  = 8
		writers  = 4
		hotPages = 32
		loops    = 2000
	)
	p := NewPagerShards(NewMemBackend(), hotPages+writers+8, 8)
	defer func() {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	hot := make([]PageID, hotPages)
	for i := range hot {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		hot[i] = pg.ID
		p.Unpin(pg, false)
	}
	own := make([]PageID, writers)
	for w := range own {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		own[w] = pg.ID
		p.Unpin(pg, false)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < loops; i++ {
				id := hot[rng.Intn(len(hot))]
				pg, err := p.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if pg.ID != id {
					errs <- fmt.Errorf("fetched %d, got frame for %d", id, pg.ID)
					return
				}
				p.Unpin(pg, false)
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < loops/4; i++ {
				pg, err := p.Fetch(own[w])
				if err != nil {
					errs <- err
					return
				}
				pg.Data[0] = byte(i)
				p.Unpin(pg, true)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if leaked := p.PinnedPages(); len(leaked) > 0 {
		t.Fatalf("pinned pages after hammer: %v", leaked)
	}
	s := p.Stats()
	if s.Fetches != s.Hits+s.Misses {
		t.Fatalf("stats: fetches=%d != hits+misses=%d", s.Fetches, s.Hits+s.Misses)
	}
	per := p.ShardStats()
	var sum int64
	for _, sh := range per {
		sum += sh.Fetches
	}
	if sum != s.Fetches {
		t.Fatalf("per-shard fetches sum %d != aggregate %d", sum, s.Fetches)
	}
	// Writers' pages may have been cleaned by eviction write-back; the
	// dirty count must never exceed the writers' page count and must
	// reach zero after a flush.
	if n := p.DirtyCount(); n < 0 || n > int64(writers) {
		t.Fatalf("DirtyCount=%d after hammer, want 0..%d", n, writers)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if n := p.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount=%d after FlushAll", n)
	}
}

// TestShardedPagerAllDirtyBackpressure pins the satellite contract for
// an all-dirty shard under no-steal: eviction finds no victim, the pool
// grows past its target instead of blocking, a zero-duration
// CheckpointBackpressure wait is recorded, and the pressure callback
// fires so the background checkpointer can clean frames.
func TestShardedPagerAllDirtyBackpressure(t *testing.T) {
	p := NewPagerShards(NewMemBackend(), 8, 1)
	defer func() {
		_ = p.CloseDiscard()
	}()
	p.SetNoSteal(true)
	pokes := 0
	p.SetPressure(func() { pokes++ })
	// Dirty more frames than the pool's capacity: under no-steal none may
	// be written back, so every insertion past the target must grow the
	// shard and signal backpressure.
	for i := 0; i < 12; i++ {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		stampPage(pg.Data, pg.ID, 1)
		p.Unpin(pg, true)
	}
	if pokes == 0 {
		t.Fatal("all-dirty pool grew without signalling checkpoint backpressure")
	}
	if n := p.DirtyCount(); n != 12 {
		t.Fatalf("DirtyCount=%d, want 12 (no-steal must not write back)", n)
	}
	s := p.Stats()
	if s.Writes != 0 || s.Evictions != 0 {
		t.Fatalf("no-steal all-dirty pool wrote back or evicted: %+v", s)
	}
}
