package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// Write-ahead redo log. The engine's durability story is redo-only,
// physical (page-image) logging with a no-steal buffer pool:
//
//   - While a transaction runs, its changes live only in buffer-pool
//     frames (the pool never evicts dirty frames while a WAL is
//     attached, so uncommitted data cannot reach the page file).
//   - At commit, the full image of every page dirtied since it was last
//     logged is appended to the WAL, followed by a commit record, and
//     the log is fsynced before the commit is acknowledged.
//   - At checkpoint, dirty pages are written to the page file, the file
//     is fsynced, and only then is the WAL truncated.
//
// Recovery replays the log front to back: page images accumulate in a
// pending set and are applied to the page file only when their commit
// record is reached, so a transaction whose commit record never made it
// to disk disappears entirely. Every record carries a CRC32-C checksum
// and a strictly increasing sequence number; the first record that fails
// either check ends replay — a torn append at the log tail (the classic
// power-loss artifact) is thereby ignored rather than misapplied.

// WALSink is the append-only byte store underneath the WAL. It is
// deliberately minimal so fault-injection wrappers can model power loss
// (discarding appended-but-unsynced bytes) and torn appends.
type WALSink interface {
	// Append adds p at the current end of the log.
	Append(p []byte) error
	// Sync makes all appended bytes durable.
	Sync() error
	// Contents returns the entire durable+appended log image. It is
	// called once, at recovery, before any Append.
	Contents() ([]byte, error)
	// Truncate discards every byte at offset n and beyond and makes the
	// truncation durable. Recovery uses it to cut a torn tail back to the
	// intact record prefix (so later appends stay readable), and the
	// engine uses it to discard a suspect tail after a failed append or
	// sync (so an unacknowledged commit record can never replay).
	Truncate(n int64) error
	// Reset discards the whole log (after a checkpoint made it
	// redundant) and makes the truncation durable.
	Reset() error
	// Close releases sink resources.
	Close() error
}

// MemWALSink is an in-memory log, used for in-memory databases under
// test harnesses (fault wrappers give it power-loss semantics).
type MemWALSink struct {
	buf []byte
}

// NewMemWALSink returns an empty in-memory WAL sink.
func NewMemWALSink() *MemWALSink { return &MemWALSink{} }

// Append implements WALSink.
func (m *MemWALSink) Append(p []byte) error {
	m.buf = append(m.buf, p...)
	return nil
}

// Sync implements WALSink.
func (m *MemWALSink) Sync() error { return nil }

// Contents implements WALSink.
func (m *MemWALSink) Contents() ([]byte, error) {
	return append([]byte(nil), m.buf...), nil
}

// Truncate implements WALSink.
func (m *MemWALSink) Truncate(n int64) error {
	if n < 0 || n > int64(len(m.buf)) {
		return fmt.Errorf("storage: wal truncate to %d outside log of %d bytes", n, len(m.buf))
	}
	m.buf = m.buf[:n]
	return nil
}

// Reset implements WALSink.
func (m *MemWALSink) Reset() error {
	m.buf = m.buf[:0]
	return nil
}

// Close implements WALSink.
func (m *MemWALSink) Close() error { return nil }

// FileWALSink is a log stored in a single appended-to file.
type FileWALSink struct {
	f   *os.File
	off int64
}

// OpenFileWALSink opens (creating if needed) a file-backed WAL.
func OpenFileWALSink(path string) (*FileWALSink, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return &FileWALSink{f: f, off: st.Size()}, nil
}

// Append implements WALSink.
func (s *FileWALSink) Append(p []byte) error {
	if _, err := s.f.WriteAt(p, s.off); err != nil {
		// A short write leaves garbage past off, but off itself stays on
		// the record boundary: Contents() never reads the partial bytes
		// and the next append (if any) overwrites them.
		return err
	}
	s.off += int64(len(p))
	return nil
}

// Sync implements WALSink.
func (s *FileWALSink) Sync() error { return s.f.Sync() }

// Contents implements WALSink.
func (s *FileWALSink) Contents() ([]byte, error) {
	buf := make([]byte, s.off)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// Truncate implements WALSink.
func (s *FileWALSink) Truncate(n int64) error {
	if err := s.f.Truncate(n); err != nil {
		return err
	}
	s.off = n
	return s.f.Sync()
}

// Reset implements WALSink.
func (s *FileWALSink) Reset() error {
	return s.Truncate(0)
}

// Close implements WALSink.
func (s *FileWALSink) Close() error { return s.f.Close() }

// Record kinds.
const (
	walRecPage   = 1 // payload: page id (4) + page image (PageSize)
	walRecCommit = 2 // payload: txn id (8) + snapshot length (4) + snapshot bytes
)

// walHeaderSize is the fixed per-record header: payload length (4),
// CRC32-C over kind+seq+payload (4), kind (1), sequence number (8).
const walHeaderSize = 4 + 4 + 1 + 8

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WAL appends checksummed redo records to a sink, with group commit:
// appends are serialized by the caller (the engine's walMu — the short
// "append mutex" committers hold only while copying their batch into the
// log), while Sync/SyncShared run a leader/follower protocol so that
// concurrent committers share one fsync. Internal cursor state is
// guarded by gmu so the sync path can run concurrently with appends.
type WAL struct {
	sink WALSink

	// gmu guards the log cursor (seq/size), the durability horizon
	// (synced/syncedSeq), and the group-commit epoch state below. It is
	// held only for bookkeeping — never across the sink fsync, which is
	// what lets appenders make progress while a leader's fsync is in
	// flight.
	gmu      sync.Mutex
	syncDone *sync.Cond // broadcast when a sync epoch completes or fails

	// seq/size are the sequence number and byte length of the log
	// including every append so far; synced/syncedSeq are their values at
	// the last successful sync. TruncateToSynced cuts the log back to the
	// synced point after a failed append or sync, so records whose
	// durability is unknown can never be replayed.
	seq       uint64
	size      int64
	synced    int64
	syncedSeq uint64

	// syncing marks a leader's fsync in flight; followers wait on
	// syncDone. syncErr poisons the WAL after a failed sync: every
	// committer in (or after) the failed batch gets the error, because
	// none of their records are known durable. unsyncedCommits counts
	// commit records appended since the last epoch began — the size of
	// the batch the next leader's fsync will cover.
	syncing         bool
	syncErr         error
	unsyncedCommits int64

	// Cumulative log-traffic counters, folded into storage.Stats by
	// AddStats. Atomic (obs.Counter) because snapshots race with the
	// append path: appends run under the engine's walMu, but AddStats is
	// called by any session reading DB.PagerStats or DB.Metrics.
	recs    obs.Counter
	pages   obs.Counter
	commits obs.Counter
	bytes   obs.Counter
	syncs   obs.Counter
	// grouped counts commit records made durable through sync epochs;
	// grouped/syncs is the commits-per-fsync ratio the W1 bench asserts
	// on. groupSizes is the distribution of batch sizes (commit records
	// per fsync epoch).
	grouped    obs.Counter
	groupSizes obs.Histogram

	// waits/flight, when set, receive SyncShared blocked time
	// (WaitWALGroupFsync) and one EvGroupFsync flight event per covering
	// fsync epoch. Written once at wiring time (SetObs), before
	// concurrent use; nil is safe.
	waits  *obs.WaitStats
	flight *obs.FlightRecorder
}

// NewWAL returns a WAL writer over sink, continuing after the given
// sequence number and byte length (both 0 for a fresh or truncated log;
// recovery passes RecoveryInfo.LastSeq and RecoveryInfo.IntactBytes).
func NewWAL(sink WALSink, lastSeq uint64, size int64) *WAL {
	w := &WAL{sink: sink, seq: lastSeq, size: size, synced: size, syncedSeq: lastSeq}
	w.syncDone = sync.NewCond(&w.gmu)
	return w
}

// SetObs routes group-commit blocked time into the engine wait table
// and fsync epochs into the flight recorder. Call once at wiring time,
// before concurrent use.
func (w *WAL) SetObs(waits *obs.WaitStats, flight *obs.FlightRecorder) {
	w.waits = waits
	w.flight = flight
}

func (w *WAL) append(kind byte, payload []byte) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	seq := w.seq + 1
	rec := make([]byte, walHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	rec[8] = kind
	binary.BigEndian.PutUint64(rec[9:17], seq)
	copy(rec[walHeaderSize:], payload)
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], walCRC))
	if err := w.sink.Append(rec); err != nil {
		return err
	}
	w.seq = seq
	w.size += int64(len(rec))
	w.recs.Inc()
	w.bytes.Add(int64(len(rec)))
	return nil
}

// LogSize returns the current log length in bytes — the durability
// target a committer passes to SyncShared after appending its batch.
func (w *WAL) LogSize() int64 {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	return w.size
}

// AddStats folds the WAL's cumulative traffic counters into s, so one
// storage.Stats snapshot covers page and log I/O together.
func (w *WAL) AddStats(s *Stats) {
	s.WALRecords += w.recs.Load()
	s.WALPages += w.pages.Load()
	s.WALCommits += w.commits.Load()
	s.WALBytes += w.bytes.Load()
	s.WALSyncs += w.syncs.Load()
	s.WALGroupedCommits += w.grouped.Load()
}

// ResetStats zeroes the traffic counters (benchmark phases); the log
// itself is untouched.
func (w *WAL) ResetStats() {
	w.recs.Store(0)
	w.pages.Store(0)
	w.commits.Store(0)
	w.bytes.Store(0)
	w.syncs.Store(0)
	w.grouped.Store(0)
	w.groupSizes.Reset()
}

// AppendPage logs the full image of one page.
func (w *WAL) AppendPage(id PageID, data []byte) error {
	payload := make([]byte, 4+PageSize)
	binary.BigEndian.PutUint32(payload[0:4], uint32(id))
	copy(payload[4:], data[:PageSize])
	if err := w.append(walRecPage, payload); err != nil {
		return err
	}
	w.pages.Inc()
	return nil
}

// AppendCommit logs a commit record carrying the transaction id and a
// serialized dictionary snapshot (the engine's volatile metadata — row
// counts, bitmap indexes, the LOB directory — rides along so recovery
// restores it without a checkpoint).
func (w *WAL) AppendCommit(txID int64, snapshot []byte) error {
	payload := make([]byte, 8+4+len(snapshot))
	binary.BigEndian.PutUint64(payload[0:8], uint64(txID))
	binary.BigEndian.PutUint32(payload[8:12], uint32(len(snapshot)))
	copy(payload[12:], snapshot)
	if err := w.append(walRecCommit, payload); err != nil {
		return err
	}
	w.gmu.Lock()
	w.unsyncedCommits++
	w.gmu.Unlock()
	w.commits.Inc()
	return nil
}

// Sync makes all appended records durable; a commit is acknowledged only
// after its Sync returns. It is the serial entry point to the group
// protocol: equivalent to SyncShared at the current log end.
func (w *WAL) Sync() error {
	w.gmu.Lock()
	target := w.size
	w.gmu.Unlock()
	return w.SyncShared(target)
}

// SyncShared makes the log durable at least up to target (a LogSize
// taken after the caller's batch was appended), sharing fsyncs between
// concurrent committers: the first committer to arrive while no sync is
// in flight becomes the leader and fsyncs everything appended so far;
// committers that arrive during that fsync wait for the epoch to finish
// and usually find their batch already covered (follower path — their
// commit cost no fsync of its own). A failed fsync poisons the whole
// batch: every waiter (and every later caller) gets the error, because
// none of their records are known durable; the engine then marks the
// WAL broken and truncates the suspect tail.
func (w *WAL) SyncShared(target int64) error {
	// The whole call is one WaitWALGroupFsync interval: a leader's time
	// is its fsync, a follower's is the wait for a covering epoch —
	// either way the committer was blocked on log durability.
	aw := w.waits.StartWait(obs.WaitWALGroupFsync)
	defer aw.Done()
	w.gmu.Lock()
	defer w.gmu.Unlock()
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.synced >= target {
			return nil // covered by a leader's fsync (or already durable)
		}
		if !w.syncing {
			break // become the leader for the next epoch
		}
		w.syncDone.Wait()
	}
	w.syncing = true
	upTo, upToSeq := w.size, w.seq
	batch := w.unsyncedCommits
	w.unsyncedCommits = 0
	w.gmu.Unlock()
	fsyncStart := time.Now()
	err := w.sink.Sync() // the one shared fsync; no locks held
	fsyncNanos := time.Since(fsyncStart).Nanoseconds()
	w.gmu.Lock()
	w.syncing = false
	if err != nil {
		w.syncErr = err
		w.syncDone.Broadcast()
		return err
	}
	w.synced, w.syncedSeq = upTo, upToSeq
	w.syncs.Inc()
	if batch > 0 {
		w.grouped.Add(batch)
		w.groupSizes.Observe(batch)
		w.flight.Record(obs.EvGroupFsync, batch, fsyncNanos, "")
	}
	w.syncDone.Broadcast()
	return nil
}

// GroupSizes returns the distribution of commit-batch sizes (commit
// records covered per fsync epoch).
func (w *WAL) GroupSizes() obs.HistogramSnapshot { return w.groupSizes.Snapshot() }

// TruncateToSynced discards every byte appended after the last
// successful sync. The engine calls it when an append or sync fails: the
// suspect tail — which may or may not have reached durable media — is
// cut off, so a commit record the client was never acknowledged for
// cannot be replayed as committed after reopening. An in-flight sync
// epoch is waited out first, so the truncation point reflects that
// epoch's outcome (a successful fsync keeps its batch; a failed one
// leaves the horizon where it was and the whole batch is cut).
// Idempotent. Callers must serialize against appends (the engine holds
// walMu).
func (w *WAL) TruncateToSynced() error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	for w.syncing {
		w.syncDone.Wait()
	}
	if w.size == w.synced {
		return nil
	}
	if err := w.sink.Truncate(w.synced); err != nil {
		return err
	}
	w.size = w.synced
	w.seq = w.syncedSeq
	w.unsyncedCommits = 0
	return nil
}

// Reset truncates the log after a checkpoint made it redundant.
func (w *WAL) Reset() error {
	if err := w.sink.Reset(); err != nil {
		return err
	}
	w.gmu.Lock()
	w.seq, w.syncedSeq = 0, 0
	w.size, w.synced = 0, 0
	w.unsyncedCommits = 0
	w.gmu.Unlock()
	return nil
}

// Close closes the underlying sink.
func (w *WAL) Close() error { return w.sink.Close() }

// RecoveryInfo reports what WAL replay did.
type RecoveryInfo struct {
	// Records is the number of intact records read.
	Records int
	// Commits is the number of commit records applied.
	Commits int
	// PagesApplied counts page images written to the backend.
	PagesApplied int
	// PagesRepaired counts applied pages whose prior backend content
	// differed from the logged image — torn or lost page writes that the
	// replay corrected.
	PagesRepaired int
	// TornTail is true when the log ended in a truncated or
	// checksum-corrupt record (ignored, as designed).
	TornTail bool
	// DiscardedPages counts page images belonging to transactions whose
	// commit record never reached the log (their effects are dropped).
	DiscardedPages int
	// LastSeq is the sequence number of the last intact record; the WAL
	// writer continues after it until the post-recovery checkpoint
	// truncates the log.
	LastSeq uint64
	// IntactBytes is the byte length of the intact record prefix. When a
	// torn tail followed it, replay truncated the sink to this length, so
	// records appended after recovery are contiguous with readable ones
	// and a second replay can reach them.
	IntactBytes int64
	// Snapshot is the dictionary snapshot of the newest applied commit,
	// nil when the log held no commits (the page-file snapshot chain is
	// then authoritative).
	Snapshot []byte
}

// ReplayWAL applies every committed page image in the log to the backend
// and returns the newest committed dictionary snapshot. The backend is
// synced before return, so a crash during recovery just replays again.
// A torn or corrupt tail ends replay and is truncated off the sink, so
// everything appended afterwards — notably the post-recovery
// checkpoint's records — stays reachable by a later replay.
func ReplayWAL(b Backend, sink WALSink) (RecoveryInfo, error) {
	var info RecoveryInfo
	log, err := sink.Contents()
	if err != nil {
		return info, fmt.Errorf("storage: read wal: %w", err)
	}
	pending := make(map[PageID][]byte)
	pendingOrder := []PageID{}
	off := 0
scan:
	for off < len(log) {
		if len(log)-off < walHeaderSize {
			break
		}
		payloadLen := int(binary.BigEndian.Uint32(log[off : off+4]))
		if len(log)-off-walHeaderSize < payloadLen {
			break
		}
		rec := log[off : off+walHeaderSize+payloadLen]
		wantCRC := binary.BigEndian.Uint32(rec[4:8])
		if crc32.Checksum(rec[8:], walCRC) != wantCRC {
			break
		}
		kind := rec[8]
		seq := binary.BigEndian.Uint64(rec[9:17])
		if seq != info.LastSeq+1 {
			// A stale record from a previous log generation (or garbage
			// that happened to checksum); stop here.
			break
		}
		payload := rec[walHeaderSize:]
		switch kind {
		case walRecPage:
			if payloadLen != 4+PageSize {
				break scan
			}
			id := PageID(binary.BigEndian.Uint32(payload[0:4]))
			if _, ok := pending[id]; !ok {
				pendingOrder = append(pendingOrder, id)
			}
			pending[id] = payload[4 : 4+PageSize]
		case walRecCommit:
			if payloadLen < 12 {
				break scan
			}
			snapLen := int(binary.BigEndian.Uint32(payload[8:12]))
			if len(payload)-12 < snapLen {
				break scan
			}
			if err := applyPending(b, pending, pendingOrder, &info); err != nil {
				return info, err
			}
			pending = make(map[PageID][]byte)
			pendingOrder = pendingOrder[:0]
			info.Commits++
			if snapLen > 0 {
				info.Snapshot = append([]byte(nil), payload[12:12+snapLen]...)
			}
		default:
			break scan
		}
		info.LastSeq = seq
		info.Records++
		off += walHeaderSize + payloadLen
	}
	info.TornTail = off < len(log)
	info.IntactBytes = int64(off)
	info.DiscardedPages = len(pending)
	if info.TornTail {
		if err := sink.Truncate(info.IntactBytes); err != nil {
			return info, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	if info.PagesApplied > 0 {
		if err := b.Sync(); err != nil {
			return info, fmt.Errorf("storage: sync after wal replay: %w", err)
		}
	}
	return info, nil
}

// applyPending writes one committed batch of page images to the backend,
// extending the page space as needed and counting repairs (pages whose
// on-disk bytes disagreed with the committed image).
func applyPending(b Backend, pending map[PageID][]byte, order []PageID, info *RecoveryInfo) error {
	for _, id := range order {
		img := pending[id]
		for b.NumPages() <= id {
			if _, err := b.Allocate(); err != nil {
				return fmt.Errorf("storage: wal replay allocate to page %d: %w", id, err)
			}
		}
		cur := make([]byte, PageSize)
		if err := b.ReadPage(id, cur); err != nil {
			return fmt.Errorf("storage: wal replay read page %d: %w", id, err)
		}
		if crc32.Checksum(cur, walCRC) != crc32.Checksum(img, walCRC) {
			info.PagesRepaired++
		}
		if err := b.WritePage(id, img); err != nil {
			return fmt.Errorf("storage: wal replay write page %d: %w", id, err)
		}
		info.PagesApplied++
	}
	return nil
}
