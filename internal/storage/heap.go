package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// RID identifies a row in a heap: the page it lives on and its slot. RIDs
// are stable across in-place updates; updates that no longer fit leave a
// forwarding stub behind so the original RID keeps working — this is what
// lets domain indexes store RIDs durably, exactly as the paper's index
// maintenance protocol assumes.
type RID struct {
	Page PageID
	Slot uint16
}

// Nil is the zero RID used as "no row" (page InvalidPage).
var NilRID = RID{Page: InvalidPage}

// IsNil reports whether the RID is the sentinel "no row" value.
func (r RID) IsNil() bool { return r.Page == InvalidPage }

// Int64 packs the RID into an int64 for transport inside Values.
func (r RID) Int64() int64 { return int64(r.Page)<<16 | int64(r.Slot) }

// RIDFromInt64 unpacks a RID packed by Int64.
func RIDFromInt64(v int64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

// String renders the RID like Oracle's ROWID pseudo-column.
func (r RID) String() string { return fmt.Sprintf("RID(%d.%d)", r.Page, r.Slot) }

// Record flags: a record in a heap page is a flag byte followed by payload.
const (
	recData      = 0 // payload is the row image
	recForward   = 1 // payload is the 6-byte RID of the relocated row
	recRelocated = 2 // payload is the row image, but the canonical RID is elsewhere
)

// Heap is a slotted-page heap table. It is not itself synchronized; the
// lock manager serializes access at the table level above it.
type Heap struct {
	pager *Pager
	first PageID
	pages []PageID
	// freeBytes approximates per-page free space to direct inserts.
	freeBytes map[PageID]int
}

// CreateHeap allocates an empty heap.
func CreateHeap(p *Pager) (*Heap, error) {
	pg, err := p.NewPage()
	if err != nil {
		return nil, err
	}
	initPage(pg.Data)
	p.Unpin(pg, true)
	h := &Heap{pager: p, first: pg.ID, pages: []PageID{pg.ID}, freeBytes: map[PageID]int{}}
	h.freeBytes[pg.ID] = PageSize - pageHeaderSize
	return h, nil
}

// OpenHeap reattaches to a heap previously created with CreateHeap, by
// walking its page chain from the first page.
func OpenHeap(p *Pager, first PageID) (*Heap, error) {
	h := &Heap{pager: p, first: first, freeBytes: map[PageID]int{}}
	for id := first; id != InvalidPage; {
		pg, err := p.Fetch(id)
		if err != nil {
			return nil, err
		}
		h.pages = append(h.pages, id)
		free, _ := pageFreeSpace(pg.Data)
		h.freeBytes[id] = free
		next := pageNext(pg.Data)
		p.Unpin(pg, false)
		id = next
	}
	return h, nil
}

// FirstPage returns the head of the heap's page chain (persisted in the
// catalog so the heap can be reopened).
func (h *Heap) FirstPage() PageID { return h.first }

// NumPages returns the number of pages the heap occupies.
func (h *Heap) NumPages() int { return len(h.pages) }

// Drop releases every page of the heap back to the pager.
func (h *Heap) Drop() {
	for _, id := range h.pages {
		h.pager.Free(id)
	}
	h.pages = nil
	h.freeBytes = map[PageID]int{}
	h.first = InvalidPage
}

// Truncate drops all pages except a fresh first page.
func (h *Heap) Truncate() error {
	for _, id := range h.pages {
		h.pager.Free(id)
	}
	pg, err := h.pager.NewPage()
	if err != nil {
		return err
	}
	initPage(pg.Data)
	h.pager.Unpin(pg, true)
	h.first = pg.ID
	h.pages = []PageID{pg.ID}
	h.freeBytes = map[PageID]int{pg.ID: PageSize - pageHeaderSize}
	return nil
}

// Insert stores a row image and returns its RID.
func (h *Heap) Insert(row []byte) (RID, error) {
	rec := make([]byte, 1+len(row))
	rec[0] = recData
	copy(rec[1:], row)
	return h.insertRecord(rec)
}

func (h *Heap) insertRecord(rec []byte) (RID, error) {
	// Try the most recently appended pages first, then any page with room.
	for i := len(h.pages) - 1; i >= 0 && i >= len(h.pages)-2; i-- {
		if rid, ok, err := h.tryInsertOn(h.pages[i], rec); err != nil || ok {
			return rid, err
		}
	}
	for _, id := range h.pages {
		if h.freeBytes[id] >= len(rec)+slotSize {
			if rid, ok, err := h.tryInsertOn(id, rec); err != nil || ok {
				return rid, err
			}
		}
	}
	// Grow the heap.
	pg, err := h.pager.NewPage()
	if err != nil {
		return NilRID, err
	}
	initPage(pg.Data)
	slot, err := pageInsert(pg.Data, rec)
	if err != nil {
		h.pager.Unpin(pg, false)
		return NilRID, err
	}
	free, _ := pageFreeSpace(pg.Data)
	h.freeBytes[pg.ID] = free
	h.pager.Unpin(pg, true)
	// Link at the end of the chain.
	last := h.pages[len(h.pages)-1]
	lp, err := h.pager.Fetch(last)
	if err != nil {
		return NilRID, err
	}
	setPageNext(lp.Data, pg.ID)
	h.pager.Unpin(lp, true)
	h.pages = append(h.pages, pg.ID)
	return RID{Page: pg.ID, Slot: uint16(slot)}, nil
}

func (h *Heap) tryInsertOn(id PageID, rec []byte) (RID, bool, error) {
	pg, err := h.pager.Fetch(id)
	if err != nil {
		return NilRID, false, err
	}
	slot, err := pageInsert(pg.Data, rec)
	if err == errPageFull {
		free, _ := pageFreeSpace(pg.Data)
		h.freeBytes[id] = free
		h.pager.Unpin(pg, false)
		return NilRID, false, nil
	}
	if err != nil {
		h.pager.Unpin(pg, false)
		return NilRID, false, err
	}
	free, _ := pageFreeSpace(pg.Data)
	h.freeBytes[id] = free
	h.pager.Unpin(pg, true)
	return RID{Page: id, Slot: uint16(slot)}, true, nil
}

// InsertAt restores a row image at a specific RID whose slot must be
// currently empty. The transaction layer uses it to undo deletes while
// preserving RIDs; reverse-order undo guarantees the slot and the space
// are free again by the time it runs.
func (h *Heap) InsertAt(rid RID, row []byte) error {
	rec := make([]byte, 1+len(row))
	rec[0] = recData
	copy(rec[1:], row)
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer func() {
		free, _ := pageFreeSpace(pg.Data)
		h.freeBytes[rid.Page] = free
		h.pager.Unpin(pg, true)
	}()
	if int(rid.Slot) >= pageNSlots(pg.Data) {
		return fmt.Errorf("storage: InsertAt slot %d beyond page slot count", rid.Slot)
	}
	if off, l := slotOffLen(pg.Data, int(rid.Slot)); off != 0 || l != 0 {
		return fmt.Errorf("storage: InsertAt target %s is occupied", rid)
	}
	slotEnd := pageHeaderSize + pageNSlots(pg.Data)*slotSize
	if PageSize-slotEnd-pageLiveBytes(pg.Data) < len(rec) {
		return fmt.Errorf("storage: no room to restore row at %s", rid)
	}
	pageCompact(pg.Data)
	pos := pageDataStart(pg.Data) - len(rec)
	copy(pg.Data[pos:pos+len(rec)], rec)
	setPageDataStart(pg.Data, pos)
	setSlot(pg.Data, int(rid.Slot), pos, len(rec))
	return nil
}

// resolve follows at most one forwarding hop and returns the RID holding
// the actual row image plus that image's payload.
func (h *Heap) resolve(rid RID) (RID, []byte, error) {
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return NilRID, nil, err
	}
	rec, err := pageRead(pg.Data, int(rid.Slot))
	if err != nil || rec == nil {
		h.pager.Unpin(pg, false)
		if err == nil {
			err = fmt.Errorf("storage: no row at %s", rid)
		}
		return NilRID, nil, err
	}
	if rec[0] == recForward {
		target := RID{
			Page: PageID(binary.BigEndian.Uint32(rec[1:5])),
			Slot: binary.BigEndian.Uint16(rec[5:7]),
		}
		h.pager.Unpin(pg, false)
		tp, err := h.pager.Fetch(target.Page)
		if err != nil {
			return NilRID, nil, err
		}
		trec, err := pageRead(tp.Data, int(target.Slot))
		if err != nil || trec == nil || trec[0] != recRelocated {
			h.pager.Unpin(tp, false)
			if err == nil {
				err = fmt.Errorf("storage: dangling forward at %s", rid)
			}
			return NilRID, nil, err
		}
		out := append([]byte(nil), trec[1:]...)
		h.pager.Unpin(tp, false)
		return target, out, nil
	}
	out := append([]byte(nil), rec[1:]...)
	h.pager.Unpin(pg, false)
	return rid, out, nil
}

// Get returns a copy of the row image at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	_, row, err := h.resolve(rid)
	return row, err
}

// GetBatchFunc reads the row images for a batch of RIDs, calling fn once
// per input with i the index into rids. The batch is visited in
// (page, slot) order through an index permutation, so each page is
// pinned once per run of RIDs on it instead of once per row; fn is
// therefore invoked in page order, not input order — callers restore
// input order by writing into slot i. The image passed to fn is only
// valid for the duration of the call (it may alias the pinned page).
// Forwarded rows are resolved after their home page is unpinned, since
// the hop pins the target page itself.
func (h *Heap) GetBatchFunc(rids []RID, fn func(i int, img []byte) error) error {
	if len(rids) == 0 {
		return nil
	}
	perm := make([]int, len(rids))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ra, rb := rids[perm[a]], rids[perm[b]]
		if ra.Page != rb.Page {
			return ra.Page < rb.Page
		}
		return ra.Slot < rb.Slot
	})
	var forwards []int
	for k := 0; k < len(perm); {
		page := rids[perm[k]].Page
		pg, err := h.pager.Fetch(page)
		if err != nil {
			return err
		}
		for ; k < len(perm) && rids[perm[k]].Page == page; k++ {
			i := perm[k]
			rid := rids[i]
			rec, err := pageRead(pg.Data, int(rid.Slot))
			if err == nil && rec == nil {
				err = fmt.Errorf("storage: no row at %s", rid)
			}
			if err != nil {
				h.pager.Unpin(pg, false)
				return err
			}
			if rec[0] == recForward {
				forwards = append(forwards, i)
				continue
			}
			if err := fn(i, rec[1:]); err != nil {
				h.pager.Unpin(pg, false)
				return err
			}
		}
		h.pager.Unpin(pg, false)
	}
	for _, i := range forwards {
		_, img, err := h.resolve(rids[i])
		if err != nil {
			return err
		}
		if err := fn(i, img); err != nil {
			return err
		}
	}
	return nil
}

// GetBatch returns copies of the row images for rids, in input order,
// using the page-sorted batched read.
func (h *Heap) GetBatch(rids []RID) ([][]byte, error) {
	out := make([][]byte, len(rids))
	err := h.GetBatchFunc(rids, func(i int, img []byte) error {
		out[i] = append([]byte(nil), img...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes the row at rid (following forwarding).
func (h *Heap) Delete(rid RID) error {
	home, _, err := h.resolve(rid)
	if err != nil {
		return err
	}
	if home != rid {
		// Clear the relocated copy first.
		if err := h.clearSlot(home); err != nil {
			return err
		}
	}
	return h.clearSlot(rid)
}

func (h *Heap) clearSlot(rid RID) error {
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = pageDelete(pg.Data, int(rid.Slot))
	if err == nil {
		free, _ := pageFreeSpace(pg.Data)
		h.freeBytes[rid.Page] = free
	}
	h.pager.Unpin(pg, err == nil)
	return err
}

// Update replaces the row image at rid, preserving the RID. If the new
// image does not fit where the row lives, the row is relocated and a
// forwarding stub is left at the original RID.
func (h *Heap) Update(rid RID, row []byte) error {
	home, _, err := h.resolve(rid)
	if err != nil {
		return err
	}
	rec := make([]byte, 1+len(row))
	if home == rid {
		rec[0] = recData
	} else {
		rec[0] = recRelocated
	}
	copy(rec[1:], row)
	pg, err := h.pager.Fetch(home.Page)
	if err != nil {
		return err
	}
	ok, err := pageReplace(pg.Data, int(home.Slot), rec)
	if err != nil {
		h.pager.Unpin(pg, false)
		return err
	}
	if ok {
		free, _ := pageFreeSpace(pg.Data)
		h.freeBytes[home.Page] = free
		h.pager.Unpin(pg, true)
		return nil
	}
	h.pager.Unpin(pg, false)
	// Relocate: store the image elsewhere flagged recRelocated, then point
	// the original slot at it.
	rec[0] = recRelocated
	target, err := h.insertRecord(rec)
	if err != nil {
		return err
	}
	var fwd [7]byte
	fwd[0] = recForward
	binary.BigEndian.PutUint32(fwd[1:5], uint32(target.Page))
	binary.BigEndian.PutUint16(fwd[5:7], target.Slot)
	// Clear whatever lives at the original chain (home may differ from rid
	// when re-forwarding; the old relocated copy must be dropped).
	if home != rid {
		if err := h.clearSlot(home); err != nil {
			return err
		}
	}
	pg, err = h.pager.Fetch(rid.Page)
	if err != nil {
		return err
	}
	ok, err = pageReplace(pg.Data, int(rid.Slot), fwd[:])
	if err == nil && !ok {
		err = fmt.Errorf("storage: cannot shrink slot %s to forwarding stub", rid)
	}
	h.pager.Unpin(pg, err == nil)
	return err
}

// Scan calls fn for every row in the heap in physical order, passing the
// row's canonical RID and a copy of its image. fn returning false stops
// the scan early.
func (h *Heap) Scan(fn func(rid RID, row []byte) (bool, error)) error {
	return h.ScanPages(h.pages, fn)
}

// PageList returns a copy of the heap's page chain in physical order.
// Splitting it into ranges and handing each range to ScanPages is how a
// parallel scan partitions the heap into page-range morsels: every live
// row is reported by exactly one range, because a row's canonical slot
// (its stub, for forwarded rows) lives on exactly one page and relocated
// copies are never reported directly.
func (h *Heap) PageList() []PageID {
	return append([]PageID(nil), h.pages...)
}

// ScanPages is Scan restricted to the given pages (each must belong to
// this heap). Concurrent ScanPages calls over disjoint ranges are safe:
// the scan only reads, and page pins are mediated by the pager.
func (h *Heap) ScanPages(pages []PageID, fn func(rid RID, row []byte) (bool, error)) error {
	for _, id := range pages {
		pg, err := h.pager.Fetch(id)
		if err != nil {
			return err
		}
		n := pageNSlots(pg.Data)
		type item struct {
			rid RID
			row []byte
		}
		var items []item
		for s := 0; s < n; s++ {
			rec, err := pageRead(pg.Data, s)
			if err != nil {
				h.pager.Unpin(pg, false)
				return err
			}
			if rec == nil || rec[0] == recRelocated {
				continue // relocated copies are reported via their stub
			}
			rid := RID{Page: id, Slot: uint16(s)}
			if rec[0] == recForward {
				items = append(items, item{rid: rid, row: nil})
				continue
			}
			items = append(items, item{rid: rid, row: append([]byte(nil), rec[1:]...)})
		}
		h.pager.Unpin(pg, false)
		for _, it := range items {
			row := it.row
			if row == nil {
				var err error
				_, row, err = h.resolve(it.rid)
				if err != nil {
					return err
				}
			}
			keep, err := fn(it.rid, row)
			if err != nil {
				return err
			}
			if !keep {
				return nil
			}
		}
	}
	return nil
}

// Count returns the number of live rows (forward stubs count once).
func (h *Heap) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) (bool, error) { n++; return true, nil })
	return n, err
}
