package storage

import (
	"errors"
	"testing"
)

// walPage builds a deterministic page image.
func walPage(fill byte) []byte {
	img := make([]byte, PageSize)
	for i := range img {
		img[i] = fill
	}
	return img
}

// appendCommitted logs one page image plus a commit record and syncs.
func appendCommitted(t *testing.T, w *WAL, id PageID, fill byte) {
	t.Helper()
	if err := w.AppendPage(id, walPage(fill)); err != nil {
		t.Fatalf("AppendPage: %v", err)
	}
	if err := w.AppendCommit(1, nil); err != nil {
		t.Fatalf("AppendCommit: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// TestWALTornTailTruncatedOnReplay covers the recovery/append seam: after
// replay observes a torn tail, the sink must hold exactly the intact
// prefix, so records appended post-recovery are contiguous with readable
// ones and a second replay reaches them.
func TestWALTornTailTruncatedOnReplay(t *testing.T) {
	sink := NewMemWALSink()
	w := NewWAL(sink, 0, 0)
	appendCommitted(t, w, 0, 0xAA)

	// Tear the log: append a page record and chop it in half, the classic
	// power-loss artifact.
	if err := w.AppendPage(1, walPage(0xBB)); err != nil {
		t.Fatal(err)
	}
	b := NewMemBackend()
	full, _ := sink.Contents()
	torn := full[:len(full)-PageSize/2]
	sink2 := NewMemWALSink()
	if err := sink2.Append(torn); err != nil {
		t.Fatal(err)
	}

	info, err := ReplayWAL(b, sink2)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	if !info.TornTail {
		t.Fatal("replay did not notice the torn tail")
	}
	after, _ := sink2.Contents()
	if int64(len(after)) != info.IntactBytes {
		t.Fatalf("sink holds %d bytes after replay, want intact prefix of %d", len(after), info.IntactBytes)
	}

	// Post-recovery appends must land right after the intact prefix and be
	// reachable by a second replay (pre-fix they sat beyond the torn bytes
	// and every later replay stopped short of them).
	w2 := NewWAL(sink2, info.LastSeq, info.IntactBytes)
	appendCommitted(t, w2, 2, 0xCC)

	b2 := NewMemBackend()
	info2, err := ReplayWAL(b2, sink2)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if info2.TornTail {
		t.Fatalf("second replay still sees a torn tail: %+v", info2)
	}
	if info2.Commits != 2 {
		t.Fatalf("second replay applied %d commits, want 2 (the post-recovery one included)", info2.Commits)
	}
	got := make([]byte, PageSize)
	if err := b2.ReadPage(2, got); err != nil {
		t.Fatalf("page 2 not applied: %v", err)
	}
	if got[0] != 0xCC {
		t.Fatalf("page 2 byte 0 = %#x, want 0xCC", got[0])
	}
}

// TestWALTruncateToSynced covers the failed-commit seam: bytes appended
// after the last successful Sync are discarded, so a commit record whose
// sync failed cannot be replayed as committed.
func TestWALTruncateToSynced(t *testing.T) {
	sink := NewMemWALSink()
	w := NewWAL(sink, 0, 0)
	appendCommitted(t, w, 0, 0x11)
	synced, _ := sink.Contents()

	// A commit whose records were appended but never synced.
	if err := w.AppendPage(1, walPage(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCommit(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateToSynced(); err != nil {
		t.Fatalf("TruncateToSynced: %v", err)
	}
	if err := w.TruncateToSynced(); err != nil {
		t.Fatalf("TruncateToSynced is not idempotent: %v", err)
	}
	now, _ := sink.Contents()
	if len(now) != len(synced) {
		t.Fatalf("log holds %d bytes after truncation, want the synced %d", len(now), len(synced))
	}

	info, err := ReplayWAL(NewMemBackend(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if info.Commits != 1 || info.TornTail {
		t.Fatalf("replay after truncation: %+v, want exactly the synced commit", info)
	}

	// The writer keeps going from the synced sequence number: a fresh
	// append after truncation must still replay.
	appendCommitted(t, w, 3, 0x33)
	info, err = ReplayWAL(NewMemBackend(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if info.Commits != 2 || info.TornTail {
		t.Fatalf("replay after post-truncation append: %+v, want 2 commits", info)
	}
}

// TestWALSinkTruncateBounds pins MemWALSink.Truncate's contract.
func TestWALSinkTruncateBounds(t *testing.T) {
	sink := NewMemWALSink()
	if err := sink.Append([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := sink.Truncate(4); err != nil {
		t.Fatal(err)
	}
	c, _ := sink.Contents()
	if string(c) != "abcd" {
		t.Fatalf("contents = %q, want abcd", c)
	}
	if err := sink.Truncate(10); err == nil {
		t.Fatal("truncate beyond log length did not error")
	}
	if err := sink.Truncate(-1); err == nil {
		t.Fatal("negative truncate did not error")
	}
}

// errSink fails every operation; ReplayWAL must surface the read error.
type errSink struct{ MemWALSink }

func (errSink) Contents() ([]byte, error) { return nil, errors.New("boom") }

func TestWALReplayReadError(t *testing.T) {
	if _, err := ReplayWAL(NewMemBackend(), &errSink{}); err == nil {
		t.Fatal("replay swallowed the sink read error")
	}
}
