package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// walPage builds a deterministic page image.
func walPage(fill byte) []byte {
	img := make([]byte, PageSize)
	for i := range img {
		img[i] = fill
	}
	return img
}

// appendCommitted logs one page image plus a commit record and syncs.
func appendCommitted(t *testing.T, w *WAL, id PageID, fill byte) {
	t.Helper()
	if err := w.AppendPage(id, walPage(fill)); err != nil {
		t.Fatalf("AppendPage: %v", err)
	}
	if err := w.AppendCommit(1, nil); err != nil {
		t.Fatalf("AppendCommit: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// TestWALTornTailTruncatedOnReplay covers the recovery/append seam: after
// replay observes a torn tail, the sink must hold exactly the intact
// prefix, so records appended post-recovery are contiguous with readable
// ones and a second replay reaches them.
func TestWALTornTailTruncatedOnReplay(t *testing.T) {
	sink := NewMemWALSink()
	w := NewWAL(sink, 0, 0)
	appendCommitted(t, w, 0, 0xAA)

	// Tear the log: append a page record and chop it in half, the classic
	// power-loss artifact.
	if err := w.AppendPage(1, walPage(0xBB)); err != nil {
		t.Fatal(err)
	}
	b := NewMemBackend()
	full, _ := sink.Contents()
	torn := full[:len(full)-PageSize/2]
	sink2 := NewMemWALSink()
	if err := sink2.Append(torn); err != nil {
		t.Fatal(err)
	}

	info, err := ReplayWAL(b, sink2)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	if !info.TornTail {
		t.Fatal("replay did not notice the torn tail")
	}
	after, _ := sink2.Contents()
	if int64(len(after)) != info.IntactBytes {
		t.Fatalf("sink holds %d bytes after replay, want intact prefix of %d", len(after), info.IntactBytes)
	}

	// Post-recovery appends must land right after the intact prefix and be
	// reachable by a second replay (pre-fix they sat beyond the torn bytes
	// and every later replay stopped short of them).
	w2 := NewWAL(sink2, info.LastSeq, info.IntactBytes)
	appendCommitted(t, w2, 2, 0xCC)

	b2 := NewMemBackend()
	info2, err := ReplayWAL(b2, sink2)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if info2.TornTail {
		t.Fatalf("second replay still sees a torn tail: %+v", info2)
	}
	if info2.Commits != 2 {
		t.Fatalf("second replay applied %d commits, want 2 (the post-recovery one included)", info2.Commits)
	}
	got := make([]byte, PageSize)
	if err := b2.ReadPage(2, got); err != nil {
		t.Fatalf("page 2 not applied: %v", err)
	}
	if got[0] != 0xCC {
		t.Fatalf("page 2 byte 0 = %#x, want 0xCC", got[0])
	}
}

// TestWALTruncateToSynced covers the failed-commit seam: bytes appended
// after the last successful Sync are discarded, so a commit record whose
// sync failed cannot be replayed as committed.
func TestWALTruncateToSynced(t *testing.T) {
	sink := NewMemWALSink()
	w := NewWAL(sink, 0, 0)
	appendCommitted(t, w, 0, 0x11)
	synced, _ := sink.Contents()

	// A commit whose records were appended but never synced.
	if err := w.AppendPage(1, walPage(0x22)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCommit(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateToSynced(); err != nil {
		t.Fatalf("TruncateToSynced: %v", err)
	}
	if err := w.TruncateToSynced(); err != nil {
		t.Fatalf("TruncateToSynced is not idempotent: %v", err)
	}
	now, _ := sink.Contents()
	if len(now) != len(synced) {
		t.Fatalf("log holds %d bytes after truncation, want the synced %d", len(now), len(synced))
	}

	info, err := ReplayWAL(NewMemBackend(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if info.Commits != 1 || info.TornTail {
		t.Fatalf("replay after truncation: %+v, want exactly the synced commit", info)
	}

	// The writer keeps going from the synced sequence number: a fresh
	// append after truncation must still replay.
	appendCommitted(t, w, 3, 0x33)
	info, err = ReplayWAL(NewMemBackend(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if info.Commits != 2 || info.TornTail {
		t.Fatalf("replay after post-truncation append: %+v, want 2 commits", info)
	}
}

// TestWALSinkTruncateBounds pins MemWALSink.Truncate's contract.
func TestWALSinkTruncateBounds(t *testing.T) {
	sink := NewMemWALSink()
	if err := sink.Append([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := sink.Truncate(4); err != nil {
		t.Fatal(err)
	}
	c, _ := sink.Contents()
	if string(c) != "abcd" {
		t.Fatalf("contents = %q, want abcd", c)
	}
	if err := sink.Truncate(10); err == nil {
		t.Fatal("truncate beyond log length did not error")
	}
	if err := sink.Truncate(-1); err == nil {
		t.Fatal("negative truncate did not error")
	}
}

// errSink fails every operation; ReplayWAL must surface the read error.
type errSink struct{ MemWALSink }

func (errSink) Contents() ([]byte, error) { return nil, errors.New("boom") }

func TestWALReplayReadError(t *testing.T) {
	if _, err := ReplayWAL(NewMemBackend(), &errSink{}); err == nil {
		t.Fatal("replay swallowed the sink read error")
	}
}

// ---------------------------------------------------------------------------
// Group commit

// txScript is one transaction of the group-commit property test: a set
// of page writes appended as a contiguous batch (page images + commit
// record), exactly what the engine logs under its append mutex.
type txScript struct {
	id   int64
	ids  []PageID
	fill map[PageID]byte
	end  int64 // log offset just past this batch's commit record
}

func makeTxScripts(rng *rand.Rand, k, numPages int) []*txScript {
	txs := make([]*txScript, k)
	for i := range txs {
		fill := map[PageID]byte{}
		for j, n := 0, 1+rng.Intn(3); j < n; j++ {
			fill[PageID(rng.Intn(numPages))] = byte(rng.Intn(256))
		}
		ids := make([]PageID, 0, len(fill))
		for id := range fill {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		txs[i] = &txScript{id: int64(i + 1), ids: ids, fill: fill}
	}
	return txs
}

func appendTxBatch(t *testing.T, w *WAL, tx *txScript) {
	t.Helper()
	for _, id := range tx.ids {
		if err := w.AppendPage(id, walPage(tx.fill[id])); err != nil {
			t.Fatalf("AppendPage: %v", err)
		}
	}
	if err := w.AppendCommit(tx.id, nil); err != nil {
		t.Fatalf("AppendCommit: %v", err)
	}
}

// checkReplayedState asserts the backend holds exactly the model's page
// contents (checking a leading and middle byte of each full-page image).
func checkReplayedState(t *testing.T, label string, b Backend, model map[PageID]byte) {
	t.Helper()
	buf := make([]byte, PageSize)
	for id, fill := range model {
		if err := b.ReadPage(id, buf); err != nil {
			t.Fatalf("%s: page %d unreadable after replay: %v", label, id, err)
		}
		if buf[0] != fill || buf[PageSize/2] != fill {
			t.Fatalf("%s: page %d = %#x/%#x, want fill %#x",
				label, id, buf[0], buf[PageSize/2], fill)
		}
	}
}

// TestWALGroupCommitInterleavingEquivalence is the group-commit property
// test: seeded random interleavings of commit batches — several batches
// appended back to back, then one shared fsync for the whole group —
// must replay to exactly the page state of the equivalent serial
// schedule (same commit order, one fsync per commit), which in turn must
// match a trivial last-writer-wins model. Then every prefix of the
// grouped log (torn tails inside a group batch included) must replay to
// exactly the transactions whose commit record the prefix fully
// contains, truncating the tear cleanly.
func TestWALGroupCommitInterleavingEquivalence(t *testing.T) {
	const numPages = 8
	for seed := int64(1); seed <= 16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(5)
		txs := makeTxScripts(rng, k, numPages)
		order := rng.Perm(k)

		// Grouped schedule: batches enter the log in `order`, a random
		// run of consecutive batches sharing one fsync.
		sink := NewMemWALSink()
		w := NewWAL(sink, 0, 0)
		for i := 0; i < k; {
			g := 1 + rng.Intn(3)
			if i+g > k {
				g = k - i
			}
			for j := i; j < i+g; j++ {
				tx := txs[order[j]]
				appendTxBatch(t, w, tx)
				tx.end = w.LogSize()
			}
			if err := w.SyncShared(w.LogSize()); err != nil {
				t.Fatalf("seed %d: SyncShared: %v", seed, err)
			}
			i += g
		}
		if gs := w.GroupSizes(); gs.Count == 0 || gs.Sum != int64(k) {
			t.Fatalf("seed %d: group histogram observed %d commits over %d syncs, want %d commits",
				seed, gs.Sum, gs.Count, k)
		}

		// Serial schedule: same commit order, one fsync per commit.
		sinkSerial := NewMemWALSink()
		ws := NewWAL(sinkSerial, 0, 0)
		for _, oi := range order {
			appendTxBatch(t, ws, txs[oi])
			if err := ws.Sync(); err != nil {
				t.Fatalf("seed %d: serial Sync: %v", seed, err)
			}
		}

		model := map[PageID]byte{}
		for _, oi := range order {
			for id, fill := range txs[oi].fill {
				model[id] = fill
			}
		}
		bGroup, bSerial := NewMemBackend(), NewMemBackend()
		infoG, err := ReplayWAL(bGroup, sink)
		if err != nil {
			t.Fatalf("seed %d: grouped replay: %v", seed, err)
		}
		infoS, err := ReplayWAL(bSerial, sinkSerial)
		if err != nil {
			t.Fatalf("seed %d: serial replay: %v", seed, err)
		}
		if infoG.Commits != k || infoS.Commits != k {
			t.Fatalf("seed %d: grouped replay %d commits, serial %d, want %d",
				seed, infoG.Commits, infoS.Commits, k)
		}
		checkReplayedState(t, fmt.Sprintf("seed %d grouped", seed), bGroup, model)
		checkReplayedState(t, fmt.Sprintf("seed %d serial", seed), bSerial, model)

		// Torn tails: cut the grouped log at random byte offsets, many of
		// them mid-record or mid-group, and replay the prefix.
		full, _ := sink.Contents()
		for trial := 0; trial < 10; trial++ {
			cut := rng.Intn(len(full) + 1)
			sinkTorn := NewMemWALSink()
			if err := sinkTorn.Append(full[:cut]); err != nil {
				t.Fatal(err)
			}
			bTorn := NewMemBackend()
			info, err := ReplayWAL(bTorn, sinkTorn)
			if err != nil {
				t.Fatalf("seed %d cut %d: torn replay: %v", seed, cut, err)
			}
			wantCommits := 0
			modelTorn := map[PageID]byte{}
			for _, oi := range order {
				tx := txs[oi]
				if tx.end <= int64(cut) {
					wantCommits++
					for id, fill := range tx.fill {
						modelTorn[id] = fill
					}
				}
			}
			if info.Commits != wantCommits {
				t.Fatalf("seed %d cut %d: replayed %d commits, want %d (batch boundaries %v)",
					seed, cut, info.Commits, wantCommits, txs)
			}
			after, _ := sinkTorn.Contents()
			if int64(len(after)) != info.IntactBytes {
				t.Fatalf("seed %d cut %d: sink holds %d bytes after replay, want intact prefix %d",
					seed, cut, len(after), info.IntactBytes)
			}
			checkReplayedState(t, fmt.Sprintf("seed %d cut %d", seed, cut), bTorn, modelTorn)
		}
	}
}

// TestWALSharedSyncConcurrent drives the leader/follower protocol with
// genuinely concurrent committers: G goroutines append their batches
// under a short mutex (the engine's walMu) and call SyncShared. Every
// call must return nil, every commit must replay, and the fsync count
// must not exceed the commit count (at least one shared sync under
// contention is overwhelmingly likely but not guaranteed, so only the
// grouped-commit accounting is asserted exactly).
func TestWALSharedSyncConcurrent(t *testing.T) {
	const writers = 16
	sink := NewMemWALSink()
	w := NewWAL(sink, 0, 0)
	var appendMu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			appendMu.Lock()
			tx := &txScript{
				id:   int64(g + 1),
				ids:  []PageID{PageID(g)},
				fill: map[PageID]byte{PageID(g): byte(g + 1)},
			}
			appendTxBatch(t, w, tx)
			target := w.LogSize()
			appendMu.Unlock()
			errs[g] = w.SyncShared(target)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: SyncShared: %v", g, err)
		}
	}
	var st Stats
	w.AddStats(&st)
	if st.WALGroupedCommits != writers {
		t.Fatalf("grouped commits = %d, want %d", st.WALGroupedCommits, writers)
	}
	if st.WALSyncs > writers || st.WALSyncs == 0 {
		t.Fatalf("syncs = %d, want 1..%d", st.WALSyncs, writers)
	}
	b := NewMemBackend()
	info, err := ReplayWAL(b, sink)
	if err != nil {
		t.Fatal(err)
	}
	if info.Commits != writers {
		t.Fatalf("replayed %d commits, want %d", info.Commits, writers)
	}
}
