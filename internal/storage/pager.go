// Package storage implements the engine's page store: a pager with a
// buffer pool over a memory- or file-backed page space, and slotted-page
// heap tables with stable row identifiers (RIDs).
//
// All persistent structures (heaps, B+-trees, index-organized tables, LOB
// chunks) allocate pages from one shared pager, so buffer-pool statistics
// account for every logical I/O in the system. That is what lets the
// benchmark harness reproduce the paper's "reduced I/O because of no
// temporary result table" claim quantitatively.
package storage

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/obs"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 8192

// PageID identifies a page within the page space. InvalidPage (the zero
// value is valid; we reserve the all-ones value) marks "no page".
type PageID uint32

// InvalidPage is the nil page id used to terminate page chains.
const InvalidPage PageID = 0xFFFFFFFF

// Backend is the raw page space underneath the buffer pool.
type Backend interface {
	// ReadPage fills buf (len PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the page contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the page space by one page and returns its id.
	Allocate() (PageID, error)
	// NumPages reports the current size of the page space in pages.
	NumPages() PageID
	// Sync flushes the backend to durable storage where applicable.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// MemBackend is an in-memory page space.
type MemBackend struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemBackend returns an empty in-memory page space.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// ReadPage implements Backend.
func (m *MemBackend) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Backend.
func (m *MemBackend) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(m.pages[id], buf)
	return nil
}

// Allocate implements Backend.
func (m *MemBackend) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := PageID(len(m.pages))
	if id == InvalidPage {
		return 0, fmt.Errorf("storage: page space exhausted")
	}
	m.pages = append(m.pages, make([]byte, PageSize))
	return id, nil
}

// NumPages implements Backend.
func (m *MemBackend) NumPages() PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return PageID(len(m.pages))
}

// Sync implements Backend.
func (m *MemBackend) Sync() error { return nil }

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// FileBackend is a page space stored in a single operating-system file,
// page i at byte offset i*PageSize.
type FileBackend struct {
	mu sync.Mutex
	f  *os.File
	n  PageID
}

// OpenFileBackend opens (creating if needed) a file-backed page space.
func OpenFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	if st.Size()%PageSize != 0 {
		return nil, errors.Join(
			fmt.Errorf("storage: %s has size %d, not a multiple of the page size", path, st.Size()),
			f.Close())
	}
	return &FileBackend{f: f, n: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Backend.
func (fb *FileBackend) ReadPage(id PageID, buf []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if id >= fb.n {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	_, err := fb.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Backend.
func (fb *FileBackend) WritePage(id PageID, buf []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if id >= fb.n {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	_, err := fb.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Allocate implements Backend.
func (fb *FileBackend) Allocate() (PageID, error) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	id := fb.n
	if id == InvalidPage {
		return 0, fmt.Errorf("storage: page space exhausted")
	}
	var zero [PageSize]byte
	if _, err := fb.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, err
	}
	fb.n++
	return id, nil
}

// NumPages implements Backend.
func (fb *FileBackend) NumPages() PageID {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.n
}

// Sync implements Backend.
func (fb *FileBackend) Sync() error { return fb.f.Sync() }

// Close implements Backend.
func (fb *FileBackend) Close() error { return fb.f.Close() }

// Stats counts logical and physical page traffic through the pager and,
// since the WAL became part of the durability path, write-ahead-log
// traffic as well: one snapshot covers every byte the storage layer
// moves. Pager snapshots fill the page fields; WAL.AddStats folds the
// log fields in (the engine's PagerStats does both).
type Stats struct {
	Fetches   int64 // logical page requests
	Hits      int64 // served from the buffer pool
	Misses    int64 // required a backend read
	Writes    int64 // dirty pages written back to the backend
	Evictions int64 // pages evicted to make room
	Allocs    int64 // new pages allocated

	WALRecords int64 // redo records appended (pages + commits)
	WALPages   int64 // page-image records appended
	WALCommits int64 // commit records appended
	WALBytes   int64 // bytes appended to the log
	WALSyncs   int64 // log fsyncs
	// WALGroupedCommits counts commit records made durable through the
	// group-commit protocol (SyncShared epochs); WALGroupedCommits /
	// WALSyncs is the commits-per-fsync ratio the W1 bench asserts on.
	WALGroupedCommits int64

	// LockWaits / LockWaitNanos count contended acquisitions of the
	// pager mutex and the total time spent blocked on them. The single
	// pool-wide mutex is the chokepoint parallel scans are expected to
	// hit first (see ROADMAP: sharded buffer pool); these make it
	// measurable before that PR lands. Uncontended acquisitions cost
	// nothing and count nothing.
	LockWaits     int64
	LockWaitNanos int64
}

// HitRate returns the buffer-pool hit fraction (0 with no fetches).
func (s Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// Page is a pinned buffer-pool frame. Data is the full page image; callers
// must mark the frame dirty through Pager.Unpin when they modify it.
type Page struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	// logged records that the current dirty image has been appended to
	// the WAL; a later modification clears it so the page is re-logged
	// at the next commit.
	logged bool
	// owner is the id of the uncommitted transaction whose modifications
	// the current dirty image carries, 0 for none. It is set when a
	// mutation window (PushWriter) dirties the frame and cleared when the
	// owning transaction's commit sweep logs it or ReleaseOwner runs at
	// transaction end. A frame with owner 0 that is still dirty is an
	// "orphan": its content is committed-equivalent (system writes, or a
	// rolled-back transaction's restored image), so any commit may sweep
	// it. The per-frame owner is what lets the commit sweep log exactly
	// the committing transaction's write set while other transactions
	// have modifications in flight.
	owner int64
	elem  *list.Element // position in LRU when unpinned
}

// ErrWriteConflict is reported (via TakeConflict) when a mutation window
// dirties a frame that another uncommitted transaction already owns.
// First dirtier wins: the second transaction's statement must abort and
// roll back, and may be retried after the owner finishes.
var ErrWriteConflict = errors.New("storage: page write conflict")

// Pager is the buffer pool: it caches up to capacity page frames over a
// Backend, tracking pins, dirty state, and I/O statistics. All methods are
// safe for concurrent use.
type Pager struct {
	mu       sync.Mutex
	backend  Backend
	capacity int
	frames   map[PageID]*Page
	lru      *list.List // of PageID, front = most recent, only unpinned pages
	stats    pagerCounters

	freeList []PageID // pages released by dropped objects, reusable

	// noSteal, set when a WAL governs the backend, forbids evicting
	// dirty frames: uncommitted changes must never reach the page file,
	// or a crash would surface them with no undo log to remove them.
	// Dirty frames then stay resident until FlushAll (checkpoint).
	noSteal bool

	// curOwner / curUndo identify the mutation window currently allowed
	// to dirty frames: Unpin attributes newly dirtied frames to curOwner
	// (owner 0 = system writes, which stay orphans). In undo mode the
	// restored content is committed-equivalent, so ownership is left
	// untouched and no conflicts are recorded. The engine serializes
	// mutation windows (one writer mutates page content at a time), which
	// is what makes a single current-owner pair sufficient.
	curOwner int64
	curUndo  bool
	// conflict holds the first cross-transaction dirtying observed in the
	// current window; TakeConflict consumes it at statement end.
	conflict error

	// waits, when set, receives contended-latch intervals as
	// WaitPagerLatch events. Written once at wiring time (SetWaitStats),
	// read outside p.mu on the contended path; nil is safe.
	waits *obs.WaitStats
}

// NewPager creates a buffer pool with the given frame capacity (minimum 8)
// over the backend.
func NewPager(b Backend, capacity int) *Pager {
	if capacity < 8 {
		capacity = 8
	}
	return &Pager{
		backend:  b,
		capacity: capacity,
		frames:   make(map[PageID]*Page),
		lru:      list.New(),
	}
}

// pagerCounters are the pager's live I/O counters. Each field is an
// atomic obs.Counter so Stats/ResetStats never race with increments even
// if a future code path bumps one outside p.mu; the increments themselves
// all run under p.mu, which is what makes the locked snapshot in Stats a
// consistent cut across fields.
type pagerCounters struct {
	fetches   obs.Counter
	hits      obs.Counter
	misses    obs.Counter
	writes    obs.Counter
	evictions obs.Counter
	allocs    obs.Counter

	// lockWaits/lockWaitNanos are incremented *outside* p.mu (in lock,
	// after losing the TryLock race), which the atomic Counter type makes
	// safe; they are therefore only eventually consistent with the
	// under-mu counters above, which is fine for a contention gauge.
	lockWaits     obs.Counter
	lockWaitNanos obs.Counter
}

// lock acquires p.mu on a hot path, counting contended acquisitions and
// the time spent blocked. The TryLock fast path keeps the uncontended
// cost at a single atomic CAS — identical to a plain Lock — so serial
// workloads pay nothing for the gauge.
func (p *Pager) lock() {
	if p.mu.TryLock() {
		return
	}
	aw := p.waits.StartWait(obs.WaitPagerLatch)
	p.mu.Lock()
	n := aw.Done() // records WaitPagerLatch when wired; always measures
	p.stats.lockWaits.Inc()
	p.stats.lockWaitNanos.Add(n)
	//vetx:ignore lockbalance -- acquisition helper: every caller defers p.mu.Unlock()
}

// SetWaitStats routes contended-latch waits into the engine wait table.
// Call once at wiring time, before concurrent use.
func (p *Pager) SetWaitStats(w *obs.WaitStats) { p.waits = w }

// Stats returns a snapshot of the pager's I/O counters. The snapshot is
// taken under the pager mutex — the same lock every increment runs under
// — so the fields form a consistent cut: the invariants build verifies
// fetches == hits + misses on every snapshot.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Fetches:   p.stats.fetches.Load(),
		Hits:      p.stats.hits.Load(),
		Misses:    p.stats.misses.Load(),
		Writes:    p.stats.writes.Load(),
		Evictions: p.stats.evictions.Load(),
		Allocs:    p.stats.allocs.Load(),

		LockWaits:     p.stats.lockWaits.Load(),
		LockWaitNanos: p.stats.lockWaitNanos.Load(),
	}
	if invariantsEnabled && s.Fetches != s.Hits+s.Misses {
		panic(fmt.Sprintf("storage: inconsistent pager stats snapshot: fetches=%d hits=%d misses=%d", s.Fetches, s.Hits, s.Misses))
	}
	return s
}

// ResetStats zeroes the I/O counters (used between benchmark phases).
// Like Stats, it runs under the pager mutex so a reset cannot interleave
// with a statement's increments and tear the counters relative to each
// other.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.fetches.Store(0)
	p.stats.hits.Store(0)
	p.stats.misses.Store(0)
	p.stats.writes.Store(0)
	p.stats.evictions.Store(0)
	p.stats.allocs.Store(0)
	p.stats.lockWaits.Store(0)
	p.stats.lockWaitNanos.Store(0)
}

// Fetch pins the page in the pool, reading it from the backend on a miss.
// The caller must Unpin it when done.
func (p *Pager) Fetch(id PageID) (*Page, error) {
	p.lock()
	defer p.mu.Unlock()
	p.stats.fetches.Inc()
	if pg, ok := p.frames[id]; ok {
		p.stats.hits.Inc()
		p.pinLocked(pg)
		return pg, nil
	}
	p.stats.misses.Inc()
	if err := p.evictIfFullLocked(); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: make([]byte, PageSize), pins: 1}
	if err := p.backend.ReadPage(id, pg.Data); err != nil {
		return nil, err
	}
	p.frames[id] = pg
	return pg, nil
}

// NewPage allocates a fresh zeroed page (reusing freed pages when
// available), pins it, and returns it marked dirty.
func (p *Pager) NewPage() (*Page, error) {
	p.lock()
	defer p.mu.Unlock()
	var id PageID
	if n := len(p.freeList); n > 0 {
		id = p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
	} else {
		var err error
		id, err = p.backend.Allocate()
		if err != nil {
			return nil, err
		}
	}
	p.stats.allocs.Inc()
	if err := p.evictIfFullLocked(); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: make([]byte, PageSize), pins: 1, dirty: true}
	if !p.curUndo {
		pg.owner = p.curOwner
	}
	p.frames[id] = pg
	return pg, nil
}

// Unpin releases one pin; dirty records that the caller modified the page.
func (p *Pager) Unpin(pg *Page, dirty bool) {
	p.lock()
	defer p.mu.Unlock()
	if dirty {
		pg.dirty = true
		pg.logged = false
		if p.curOwner != 0 && !p.curUndo {
			switch pg.owner {
			case 0:
				pg.owner = p.curOwner
			case p.curOwner:
				// already ours
			default:
				if p.conflict == nil {
					p.conflict = fmt.Errorf("%w: page %d is modified by uncommitted transaction %d", ErrWriteConflict, pg.ID, pg.owner)
				}
			}
		}
	}
	pg.pins--
	if pg.pins < 0 {
		panic("storage: page unpinned more times than pinned")
	}
	if pg.pins == 0 {
		pg.elem = p.lru.PushFront(pg.ID)
	}
}

// Free returns a page to the allocator for reuse. The page must be
// unpinned; its contents are discarded.
func (p *Pager) Free(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pg, ok := p.frames[id]; ok {
		if pg.pins > 0 {
			panic("storage: freeing a pinned page")
		}
		if pg.elem != nil {
			p.lru.Remove(pg.elem)
		}
		delete(p.frames, id)
	}
	p.freeList = append(p.freeList, id)
}

// SetNoSteal switches the pool to a no-steal eviction policy: dirty
// frames are never written back outside FlushAll. The engine enables it
// when a WAL governs the backend (redo-only logging is correct only if
// uncommitted changes cannot reach the page file).
func (p *Pager) SetNoSteal(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.noSteal = on
}

// PushWriter opens a mutation window: until the returned restore runs,
// frames dirtied through Unpin/NewPage are attributed to owner (0 =
// system writes, left as orphans). undo marks the window as replaying an
// undo log — restored content is committed-equivalent, so ownership is
// left untouched and cross-transaction dirtying is not a conflict.
// Windows nest (callback sessions, statement-level rollback inside a
// statement); restore reinstates the enclosing window's attribution.
// The engine serializes mutation windows, so at most one owner is
// current at a time.
func (p *Pager) PushWriter(owner int64, undo bool) (restore func()) {
	p.mu.Lock()
	prevOwner, prevUndo := p.curOwner, p.curUndo
	p.curOwner, p.curUndo = owner, undo
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		p.curOwner, p.curUndo = prevOwner, prevUndo
		p.mu.Unlock()
	}
}

// TakeConflict returns and clears the first cross-transaction write
// conflict recorded since the last call (nil when the window's writes
// were clean). The statement executor consults it before committing:
// a non-nil result means the statement dirtied another uncommitted
// transaction's frame and must roll back.
func (p *Pager) TakeConflict() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.conflict
	p.conflict = nil
	return err
}

// ReleaseOwner orphans every frame owned by the transaction: called when
// it finishes (commit or rollback). After a commit the sweep has already
// logged and disowned its frames, so this is a safety net; after a
// rollback the undo log has restored committed-equivalent content, so
// the frames become orphans sweepable by any later commit.
func (p *Pager) ReleaseOwner(owner int64) {
	if owner == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pg := range p.frames {
		if pg.owner == owner {
			pg.owner = 0
		}
	}
}

// PagesOwnedBy returns the sorted ids of frames the transaction owns —
// its current write set (tests and invariants).
func (p *Pager) PagesOwnedBy(owner int64) []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []PageID
	for id, pg := range p.frames {
		if pg.owner == owner && owner != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OwnedPages returns the sorted ids of frames owned by any uncommitted
// transaction. Checkpoints require it to be empty: every owner must have
// committed or rolled back before dirty pages may reach the page file.
func (p *Pager) OwnedPages() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []PageID
	for id, pg := range p.frames {
		if pg.owner != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AppendUnloggedFor appends to w the image of every unlogged dirty frame
// in the committing transaction's write set — frames it owns, plus
// orphans (owner 0), whose content is committed-equivalent by
// construction (superblock initialization, snapshot-chain writes,
// rolled-back transactions' restored images). Swept frames are marked
// logged and disowned. Frames owned by other uncommitted transactions
// are skipped: that is the per-transaction write-set contract that lets
// concurrent writers commit without logging each other's in-flight
// changes. Returns how many pages were appended.
func (p *Pager) AppendUnloggedFor(w *WAL, owner int64) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Deterministic order makes crash points reproducible.
	var ids []PageID
	for id, pg := range p.frames {
		if pg.dirty && !pg.logged && (pg.owner == owner || pg.owner == 0) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pg := p.frames[id]
		if err := w.AppendPage(id, pg.Data); err != nil {
			return 0, err
		}
		pg.logged = true
		pg.owner = 0
	}
	return len(ids), nil
}

// FlushAll writes every dirty frame back to the backend and syncs it.
func (p *Pager) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Deterministic order makes crash points in fault-injecting backends
	// reproducible run to run.
	var ids []PageID
	for id, pg := range p.frames {
		if pg.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pg := p.frames[id]
		if invariantsEnabled && p.noSteal && pg.owner != 0 {
			panic(fmt.Sprintf("storage: flushing page %d owned by uncommitted transaction %d", id, pg.owner))
		}
		if err := p.backend.WritePage(pg.ID, pg.Data); err != nil {
			return err
		}
		p.stats.writes.Inc()
		pg.dirty = false
		pg.logged = false
		pg.owner = 0
	}
	return p.backend.Sync()
}

// Close flushes and closes the underlying backend. A flush failure does
// not skip the backend close; the errors are folded together.
func (p *Pager) Close() error {
	if invariantsEnabled {
		if leaked := p.PinnedPages(); len(leaked) > 0 {
			panic(fmt.Sprintf("storage: pager closed with %d pinned page(s) %v: pin leak", len(leaked), leaked))
		}
	}
	return errors.Join(p.FlushAll(), p.backend.Close())
}

// CloseDiscard closes the backend without flushing the buffer pool. The
// engine uses it when a checkpoint could not run safely (an open write
// transaction, or a broken WAL): under redo-only logging, flushing would
// push pages with no undo to the page file, so the pool is dropped and
// the next Open recovers committed state from the log instead.
func (p *Pager) CloseDiscard() error {
	return p.backend.Close()
}

// PinnedPages returns the ids of frames whose pin count is non-zero,
// sorted. A non-empty result at quiesce points (statement boundaries,
// Close) means some code path leaked a pin; the invariants build panics
// on it at Close.
func (p *Pager) PinnedPages() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []PageID
	for id, pg := range p.frames {
		if pg.pins > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (p *Pager) pinLocked(pg *Page) {
	if pg.pins == 0 && pg.elem != nil {
		p.lru.Remove(pg.elem)
		pg.elem = nil
	}
	pg.pins++
}

// evictIfFullLocked makes room for one more frame by evicting the
// least-recently-used unpinned page, writing it back if dirty. If every
// frame is pinned the pool grows past capacity rather than failing,
// matching the behaviour of real pools under pin pressure.
func (p *Pager) evictIfFullLocked() error {
	if len(p.frames) < p.capacity {
		return nil
	}
	back := p.lru.Back()
	if p.noSteal {
		// Walk towards the front for the least-recently-used *clean*
		// page; dirty pages must not be stolen to the backend before the
		// checkpoint writes them (redo-only WAL). If every unpinned page
		// is dirty the pool grows until the next FlushAll.
		for back != nil && p.frames[back.Value.(PageID)].dirty {
			back = back.Prev()
		}
	}
	if back == nil {
		return nil // all pinned (or all dirty under no-steal); allow growth
	}
	id := back.Value.(PageID)
	p.lru.Remove(back)
	victim := p.frames[id]
	victim.elem = nil
	if victim.dirty {
		if err := p.backend.WritePage(victim.ID, victim.Data); err != nil {
			return err
		}
		p.stats.writes.Inc()
	}
	delete(p.frames, id)
	p.stats.evictions.Inc()
	return nil
}
