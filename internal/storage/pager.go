// Package storage implements the engine's page store: a pager with a
// buffer pool over a memory- or file-backed page space, and slotted-page
// heap tables with stable row identifiers (RIDs).
//
// All persistent structures (heaps, B+-trees, index-organized tables, LOB
// chunks) allocate pages from one shared pager, so buffer-pool statistics
// account for every logical I/O in the system. That is what lets the
// benchmark harness reproduce the paper's "reduced I/O because of no
// temporary result table" claim quantitatively.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 8192

// PageID identifies a page within the page space. InvalidPage (the zero
// value is valid; we reserve the all-ones value) marks "no page".
type PageID uint32

// InvalidPage is the nil page id used to terminate page chains.
const InvalidPage PageID = 0xFFFFFFFF

// Backend is the raw page space underneath the buffer pool.
type Backend interface {
	// ReadPage fills buf (len PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the page contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the page space by one page and returns its id.
	Allocate() (PageID, error)
	// NumPages reports the current size of the page space in pages.
	NumPages() PageID
	// Sync flushes the backend to durable storage where applicable.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// MemBackend is an in-memory page space.
type MemBackend struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemBackend returns an empty in-memory page space.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// ReadPage implements Backend.
func (m *MemBackend) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Backend.
func (m *MemBackend) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(m.pages[id], buf)
	return nil
}

// Allocate implements Backend.
func (m *MemBackend) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := PageID(len(m.pages))
	if id == InvalidPage {
		return 0, fmt.Errorf("storage: page space exhausted")
	}
	m.pages = append(m.pages, make([]byte, PageSize))
	return id, nil
}

// NumPages implements Backend.
func (m *MemBackend) NumPages() PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return PageID(len(m.pages))
}

// Sync implements Backend.
func (m *MemBackend) Sync() error { return nil }

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// FileBackend is a page space stored in a single operating-system file,
// page i at byte offset i*PageSize.
type FileBackend struct {
	mu sync.Mutex
	f  *os.File
	n  PageID
}

// OpenFileBackend opens (creating if needed) a file-backed page space.
func OpenFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	if st.Size()%PageSize != 0 {
		return nil, errors.Join(
			fmt.Errorf("storage: %s has size %d, not a multiple of the page size", path, st.Size()),
			f.Close())
	}
	return &FileBackend{f: f, n: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Backend.
func (fb *FileBackend) ReadPage(id PageID, buf []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if id >= fb.n {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	_, err := fb.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Backend.
func (fb *FileBackend) WritePage(id PageID, buf []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if id >= fb.n {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	_, err := fb.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Allocate implements Backend.
func (fb *FileBackend) Allocate() (PageID, error) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	id := fb.n
	if id == InvalidPage {
		return 0, fmt.Errorf("storage: page space exhausted")
	}
	var zero [PageSize]byte
	if _, err := fb.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, err
	}
	fb.n++
	return id, nil
}

// NumPages implements Backend.
func (fb *FileBackend) NumPages() PageID {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.n
}

// Sync implements Backend.
func (fb *FileBackend) Sync() error { return fb.f.Sync() }

// Close implements Backend.
func (fb *FileBackend) Close() error { return fb.f.Close() }

// Stats counts logical and physical page traffic through the pager and,
// since the WAL became part of the durability path, write-ahead-log
// traffic as well: one snapshot covers every byte the storage layer
// moves. Pager snapshots fill the page fields; WAL.AddStats folds the
// log fields in (the engine's PagerStats does both).
type Stats struct {
	Fetches   int64 // logical page requests
	Hits      int64 // served from the buffer pool
	Misses    int64 // required a backend read
	Writes    int64 // dirty pages written back to the backend
	Evictions int64 // pages evicted to make room
	Allocs    int64 // new pages allocated

	WALRecords int64 // redo records appended (pages + commits)
	WALPages   int64 // page-image records appended
	WALCommits int64 // commit records appended
	WALBytes   int64 // bytes appended to the log
	WALSyncs   int64 // log fsyncs
	// WALGroupedCommits counts commit records made durable through the
	// group-commit protocol (SyncShared epochs); WALGroupedCommits /
	// WALSyncs is the commits-per-fsync ratio the W1 bench asserts on.
	WALGroupedCommits int64

	// LockWaits / LockWaitNanos count contended acquisitions of pager
	// shard latches and the total time spent blocked on them. The pool is
	// sharded by page-id hash precisely so parallel scans stop convoying
	// here; these counters (and the per-shard WaitPagerLatch events) are
	// the before/after evidence. Uncontended acquisitions cost nothing
	// and count nothing.
	LockWaits     int64
	LockWaitNanos int64
}

// HitRate returns the buffer-pool hit fraction (0 with no fetches).
func (s Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// ShardStats is one buffer-pool shard's slice of the pool counters,
// exposed so a hot shard (hash skew, one scorching page chain) is
// visible in \stats instead of averaged away.
type ShardStats struct {
	Fetches   int64
	Hits      int64
	Misses    int64
	Writes    int64
	Evictions int64
}

// HitRate returns the shard's buffer-pool hit fraction (0 with no
// fetches).
func (s ShardStats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// Page is a pinned buffer-pool frame. Data is the full page image; callers
// must mark the frame dirty through Pager.Unpin when they modify it.
type Page struct {
	ID   PageID
	Data []byte

	// pins is the pin count. Atomic so pinning a resident frame (Fetch
	// hit, under the shard's read lock) and releasing a clean pin (no
	// shard lock at all) never serialize on the shard latch; the clock
	// evictor reads it under the shard's write lock, which excludes both
	// paths mid-flight.
	pins atomic.Int32
	// ref is the clock-eviction reference bit, set on every pin/unpin
	// and cleared by the sweeping hand (second-chance).
	ref atomic.Bool
	// slot is the frame's index in its shard's clock slice (swap-remove
	// bookkeeping). Guarded by the shard's write lock.
	slot int
	// dirty/logged/owner are guarded by the owning shard's write lock.
	dirty bool
	// logged records that the current dirty image has been appended to
	// the WAL; a later modification clears it so the page is re-logged
	// at the next commit.
	logged bool
	// owner is the id of the uncommitted transaction whose modifications
	// the current dirty image carries, 0 for none. It is set when a
	// mutation window (PushWriter) dirties the frame and cleared when the
	// owning transaction's commit sweep logs it or ReleaseOwner runs at
	// transaction end. A frame with owner 0 that is still dirty is an
	// "orphan": its content is committed-equivalent (system writes, or a
	// rolled-back transaction's restored image), so any commit may sweep
	// it. The per-frame owner is what lets the commit sweep log exactly
	// the committing transaction's write set while other transactions
	// have modifications in flight.
	owner int64
}

// ErrWriteConflict is reported (via TakeConflict) when a mutation window
// dirties a frame that another uncommitted transaction already owns.
// First dirtier wins: the second transaction's statement must abort and
// roll back, and may be retried after the owner finishes.
var ErrWriteConflict = errors.New("storage: page write conflict")

// writerCtx is the current mutation window's attribution: frames dirtied
// while it is installed belong to owner (0 = system writes, which stay
// orphans); undo marks committed-equivalent restores that must not
// change ownership or record conflicts. One atomic pointer replaces the
// old under-mutex pair: the engine serializes mutation windows, so a
// plain swap in PushWriter is enough, and the dirty-unpin path reads it
// without extra locking.
type writerCtx struct {
	owner int64
	undo  bool
}

// pagerShard is one hash slice of the buffer pool: its own frame table,
// its own clock, its own latch. The RWMutex split is what the fetch path
// depends on: a hit takes the latch shared (frame lookup + atomic pin),
// so resident-page traffic from parallel scan workers proceeds
// concurrently; only misses, dirty unpins, eviction, and the sweeps take
// it exclusively.
type pagerShard struct {
	mu     sync.RWMutex
	frames map[PageID]*Page
	clock  []*Page // every resident frame; hand sweeps for victims
	hand   int

	// Per-shard I/O counters (atomic, incremented while holding mu in
	// either mode; Stats write-locks every shard, which drains in-flight
	// holders and makes the cross-field snapshot a consistent cut).
	fetches   obs.Counter
	hits      obs.Counter
	misses    obs.Counter
	writes    obs.Counter
	evictions obs.Counter
}

// Pager is the buffer pool: it caches up to capacity page frames over a
// Backend, sharded by page-id hash. All methods are safe for concurrent
// use.
type Pager struct {
	backend  Backend
	capacity int
	shards   []pagerShard
	shardCap int // per-shard frame target (capacity / len(shards), min 1)

	// allocMu guards the free list and backend page allocation. It never
	// nests with a shard latch: NewPage allocates first, then inserts;
	// Free removes first, then releases the id.
	allocMu  sync.Mutex
	freeList []PageID // pages released by dropped objects, reusable

	// Pool-level counters, outside any shard (eventually consistent with
	// the per-shard set, which is fine — no invariant ties them).
	allocs        obs.Counter
	lockWaits     obs.Counter
	lockWaitNanos obs.Counter

	// dirtyPages tracks resident dirty frames pool-wide: the background
	// checkpointer's watermark. Maintained at every clean<->dirty
	// transition under the owning shard's write lock.
	dirtyPages atomic.Int64

	// noSteal, set when a WAL governs the backend, forbids evicting
	// dirty frames: uncommitted changes must never reach the page file,
	// or a crash would surface them with no undo log to remove them.
	// Dirty frames then stay resident until FlushAll (checkpoint).
	noSteal atomic.Bool

	// writer is the current mutation window (see writerCtx). Never nil.
	writer atomic.Pointer[writerCtx]

	// conflictMu guards conflict, the first cross-transaction dirtying
	// observed in the current window; TakeConflict consumes it at
	// statement end. Always acquired inside a shard latch (declared in
	// the engine's lock-order directives).
	conflictMu sync.Mutex
	conflict   error

	// waits, when set, receives contended-latch intervals as
	// WaitPagerLatch events (aux "shard=N") and pool-growth events as
	// WaitCheckpointBackpressure. Written once at wiring time
	// (SetWaitStats); nil is safe.
	waits *obs.WaitStats
	// pressure, when set, is called (without any pager lock beyond the
	// growing shard's) each time a shard must grow past its frame target
	// because every unpinned frame is dirty under no-steal — the signal
	// that only a checkpoint can shrink the pool. It must not block and
	// must not re-enter the pager.
	pressure atomic.Pointer[func()]
	// auxes holds the preformatted "shard=N" flight payloads so the
	// contended-latch path allocates nothing.
	auxes []string
}

// DefaultPagerShards is the buffer-pool shard count used when the caller
// does not choose one. Deterministic (not GOMAXPROCS-derived) so fault
// injection op counts and eviction order reproduce across machines.
const DefaultPagerShards = 8

// NewPager creates a buffer pool with the given frame capacity (minimum
// 8) over the backend, with DefaultPagerShards shards.
func NewPager(b Backend, capacity int) *Pager {
	return NewPagerShards(b, capacity, 0)
}

// NewPagerShards is NewPager with an explicit shard count (<= 0 means
// DefaultPagerShards). The capacity is a pool-wide frame target split
// evenly across shards; a shard whose resident set is entirely pinned or
// dirty-under-no-steal grows past its share rather than failing.
func NewPagerShards(b Backend, capacity, shards int) *Pager {
	if capacity < 8 {
		capacity = 8
	}
	if shards <= 0 {
		shards = DefaultPagerShards
	}
	shardCap := capacity / shards
	if shardCap < 1 {
		shardCap = 1
	}
	p := &Pager{
		backend:  b,
		capacity: capacity,
		shards:   make([]pagerShard, shards),
		shardCap: shardCap,
		auxes:    make([]string, shards),
	}
	for i := range p.shards {
		p.shards[i].frames = make(map[PageID]*Page)
		p.auxes[i] = fmt.Sprintf("shard=%d", i)
	}
	p.writer.Store(&writerCtx{})
	return p
}

// shardIndex hashes a page id onto a shard (Fibonacci multiplicative
// hash — neighbouring ids land on different shards, so a sequential heap
// scan spreads instead of convoying).
func (p *Pager) shardIndex(id PageID) int {
	return int((uint32(id) * 0x9E3779B1) % uint32(len(p.shards)))
}

// lockShard acquires a shard latch exclusively on a hot path, counting
// contended acquisitions and the time spent blocked. The TryLock fast
// path keeps the uncontended cost at a single atomic CAS, so serial
// workloads pay nothing for the gauge.
func (p *Pager) lockShard(i int) *pagerShard {
	sh := &p.shards[i]
	if sh.mu.TryLock() {
		return sh
	}
	start := time.Now()
	sh.mu.Lock()
	n := time.Since(start).Nanoseconds()
	p.waits.RecordAux(obs.WaitPagerLatch, n, p.auxes[i])
	p.lockWaits.Inc()
	p.lockWaitNanos.Add(n)
	//vetx:ignore lockbalance -- acquisition helper: every caller pairs it with sh.mu.Unlock()
	return sh
}

// rlockShard is lockShard for the shared (fetch-hit) path.
func (p *Pager) rlockShard(i int) *pagerShard {
	sh := &p.shards[i]
	if sh.mu.TryRLock() {
		return sh
	}
	start := time.Now()
	sh.mu.RLock()
	n := time.Since(start).Nanoseconds()
	p.waits.RecordAux(obs.WaitPagerLatch, n, p.auxes[i])
	p.lockWaits.Inc()
	p.lockWaitNanos.Add(n)
	//vetx:ignore lockbalance -- acquisition helper: every caller pairs it with sh.mu.RUnlock()
	return sh
}

// SetWaitStats routes contended-latch waits into the engine wait table.
// Call once at wiring time, before concurrent use.
func (p *Pager) SetWaitStats(w *obs.WaitStats) { p.waits = w }

// SetPressure installs the checkpointer poke called when a shard grows
// because all of its unpinned frames are dirty under no-steal. fn must
// be non-blocking and must not call back into the pager.
func (p *Pager) SetPressure(fn func()) { p.pressure.Store(&fn) }

// NumShards reports the shard count (benchmarks and tests).
func (p *Pager) NumShards() int { return len(p.shards) }

// DirtyCount reports the number of resident dirty frames — the
// background checkpointer's dirty-page watermark input.
func (p *Pager) DirtyCount() int64 { return p.dirtyPages.Load() }

// Stats returns a snapshot of the pager's I/O counters. Every shard is
// write-locked (in index order) while the per-shard counters are read,
// which drains any in-flight fetch mid-increment — the fields form a
// consistent cut, and the invariants build verifies fetches == hits +
// misses on every snapshot.
func (p *Pager) Stats() Stats {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
	s := Stats{
		Allocs:        p.allocs.Load(),
		LockWaits:     p.lockWaits.Load(),
		LockWaitNanos: p.lockWaitNanos.Load(),
	}
	for i := range p.shards {
		sh := &p.shards[i]
		s.Fetches += sh.fetches.Load()
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Writes += sh.writes.Load()
		s.Evictions += sh.evictions.Load()
	}
	for i := len(p.shards) - 1; i >= 0; i-- {
		p.shards[i].mu.Unlock()
	}
	if invariantsEnabled && s.Fetches != s.Hits+s.Misses {
		panic(fmt.Sprintf("storage: inconsistent pager stats snapshot: fetches=%d hits=%d misses=%d", s.Fetches, s.Hits, s.Misses))
	}
	//vetx:ignore lockbalance -- lock-all-shards snapshot: the descending loop above released every shard latch
	return s
}

// ShardStats snapshots the per-shard counters (one entry per shard, in
// shard order) so hit-rate skew across shards is observable. Each shard
// is read under its own latch; the slice is not a cross-shard consistent
// cut, which a skew report does not need.
func (p *Pager) ShardStats() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i := range p.shards {
		sh := p.rlockShard(i)
		out[i] = ShardStats{
			Fetches:   sh.fetches.Load(),
			Hits:      sh.hits.Load(),
			Misses:    sh.misses.Load(),
			Writes:    sh.writes.Load(),
			Evictions: sh.evictions.Load(),
		}
		sh.mu.RUnlock()
	}
	return out
}

// ResetStats zeroes the I/O counters (used between benchmark phases).
// Like Stats, it write-locks every shard so a reset cannot interleave
// with a statement's increments and tear the counters relative to each
// other.
func (p *Pager) ResetStats() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.fetches.Store(0)
		sh.hits.Store(0)
		sh.misses.Store(0)
		sh.writes.Store(0)
		sh.evictions.Store(0)
	}
	p.allocs.Store(0)
	p.lockWaits.Store(0)
	p.lockWaitNanos.Store(0)
	for i := len(p.shards) - 1; i >= 0; i-- {
		p.shards[i].mu.Unlock()
	}
	//vetx:ignore lockbalance -- lock-all-shards reset: the descending loop above released every shard latch
}

// Fetch pins the page in the pool, reading it from the backend on a miss.
// The caller must Unpin it when done. The resident path runs under the
// shard's shared latch with an atomic pin — concurrent hits on one shard
// (and on different shards) do not serialize.
func (p *Pager) Fetch(id PageID) (*Page, error) {
	idx := p.shardIndex(id)
	sh := p.rlockShard(idx)
	if pg, ok := sh.frames[id]; ok {
		sh.fetches.Inc()
		sh.hits.Inc()
		pg.pins.Add(1)
		pg.ref.Store(true)
		sh.mu.RUnlock()
		return pg, nil
	}
	sh.mu.RUnlock()

	sh = p.lockShard(idx)
	defer sh.mu.Unlock()
	sh.fetches.Inc()
	if pg, ok := sh.frames[id]; ok {
		// Another goroutine brought it in between our two lockings.
		sh.hits.Inc()
		pg.pins.Add(1)
		pg.ref.Store(true)
		return pg, nil
	}
	sh.misses.Inc()
	if err := p.evictIfFullLocked(sh); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: make([]byte, PageSize)}
	pg.pins.Store(1)
	pg.ref.Store(true)
	if err := p.backend.ReadPage(id, pg.Data); err != nil {
		return nil, err
	}
	p.insertLocked(sh, pg)
	return pg, nil
}

// NewPage allocates a fresh zeroed page (reusing freed pages when
// available), pins it, and returns it marked dirty.
func (p *Pager) NewPage() (*Page, error) {
	p.allocMu.Lock()
	var id PageID
	if n := len(p.freeList); n > 0 {
		id = p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		p.allocMu.Unlock()
	} else {
		var err error
		id, err = p.backend.Allocate()
		p.allocMu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	p.allocs.Inc()
	sh := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	if err := p.evictIfFullLocked(sh); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: make([]byte, PageSize), dirty: true}
	pg.pins.Store(1)
	pg.ref.Store(true)
	if w := p.writer.Load(); !w.undo {
		pg.owner = w.owner
	}
	p.dirtyPages.Add(1)
	p.insertLocked(sh, pg)
	return pg, nil
}

// Unpin releases one pin; dirty records that the caller modified the page.
// A clean unpin touches no lock at all: the ref bit and pin count are
// atomic, and the frame cannot be evicted concurrently because eviction
// holds the shard latch exclusively and rechecks the pin count there.
func (p *Pager) Unpin(pg *Page, dirty bool) {
	if !dirty {
		pg.ref.Store(true)
		if pg.pins.Add(-1) < 0 {
			panic("storage: page unpinned more times than pinned")
		}
		return
	}
	sh := p.lockShard(p.shardIndex(pg.ID))
	defer sh.mu.Unlock()
	if !pg.dirty {
		p.dirtyPages.Add(1)
	}
	pg.dirty = true
	pg.logged = false
	if w := p.writer.Load(); w.owner != 0 && !w.undo {
		switch pg.owner {
		case 0:
			pg.owner = w.owner
		case w.owner:
			// already ours
		default:
			p.conflictMu.Lock()
			if p.conflict == nil {
				p.conflict = fmt.Errorf("%w: page %d is modified by uncommitted transaction %d", ErrWriteConflict, pg.ID, pg.owner)
			}
			p.conflictMu.Unlock()
		}
	}
	pg.ref.Store(true)
	if pg.pins.Add(-1) < 0 {
		panic("storage: page unpinned more times than pinned")
	}
}

// Free returns a page to the allocator for reuse. The page must be
// unpinned; its contents are discarded.
func (p *Pager) Free(id PageID) {
	sh := p.lockShard(p.shardIndex(id))
	if pg, ok := sh.frames[id]; ok {
		if pg.pins.Load() > 0 {
			sh.mu.Unlock()
			panic("storage: freeing a pinned page")
		}
		if pg.dirty {
			p.dirtyPages.Add(-1)
		}
		p.removeLocked(sh, pg)
	}
	sh.mu.Unlock()
	p.allocMu.Lock()
	p.freeList = append(p.freeList, id)
	p.allocMu.Unlock()
}

// SetNoSteal switches the pool to a no-steal eviction policy: dirty
// frames are never written back outside FlushAll. The engine enables it
// when a WAL governs the backend (redo-only logging is correct only if
// uncommitted changes cannot reach the page file).
func (p *Pager) SetNoSteal(on bool) { p.noSteal.Store(on) }

// PushWriter opens a mutation window: until the returned restore runs,
// frames dirtied through Unpin/NewPage are attributed to owner (0 =
// system writes, left as orphans). undo marks the window as replaying an
// undo log — restored content is committed-equivalent, so ownership is
// left untouched and cross-transaction dirtying is not a conflict.
// Windows nest (callback sessions, statement-level rollback inside a
// statement); restore reinstates the enclosing window's attribution.
// The engine serializes mutation windows, so at most one owner is
// current at a time — which is what makes the plain pointer swap safe.
func (p *Pager) PushWriter(owner int64, undo bool) (restore func()) {
	prev := p.writer.Swap(&writerCtx{owner: owner, undo: undo})
	return func() { p.writer.Store(prev) }
}

// TakeConflict returns and clears the first cross-transaction write
// conflict recorded since the last call (nil when the window's writes
// were clean). The statement executor consults it before committing:
// a non-nil result means the statement dirtied another uncommitted
// transaction's frame and must roll back.
func (p *Pager) TakeConflict() error {
	p.conflictMu.Lock()
	defer p.conflictMu.Unlock()
	err := p.conflict
	p.conflict = nil
	return err
}

// ReleaseOwner orphans every frame owned by the transaction: called when
// it finishes (commit or rollback). After a commit the sweep has already
// logged and disowned its frames, so this is a safety net; after a
// rollback the undo log has restored committed-equivalent content, so
// the frames become orphans sweepable by any later commit.
func (p *Pager) ReleaseOwner(owner int64) {
	if owner == 0 {
		return
	}
	for i := range p.shards {
		sh := p.lockShard(i)
		for _, pg := range sh.frames {
			if pg.owner == owner {
				pg.owner = 0
			}
		}
		sh.mu.Unlock()
	}
}

// PagesOwnedBy returns the sorted ids of frames the transaction owns —
// its current write set (tests and invariants).
func (p *Pager) PagesOwnedBy(owner int64) []PageID {
	if owner == 0 {
		return nil
	}
	var ids []PageID
	for i := range p.shards {
		sh := p.rlockShard(i)
		for id, pg := range sh.frames {
			if pg.owner == owner {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OwnedPages returns the sorted ids of frames owned by any uncommitted
// transaction. Checkpoints require it to be empty: every owner must have
// committed or rolled back before dirty pages may reach the page file.
func (p *Pager) OwnedPages() []PageID {
	var ids []PageID
	for i := range p.shards {
		sh := p.rlockShard(i)
		for id, pg := range sh.frames {
			if pg.owner != 0 {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AppendUnloggedFor appends to w the image of every unlogged dirty frame
// in the committing transaction's write set — frames it owns, plus
// orphans (owner 0), whose content is committed-equivalent by
// construction (superblock initialization, snapshot-chain writes,
// rolled-back transactions' restored images). Swept frames are marked
// logged and disowned. Frames owned by other uncommitted transactions
// are skipped: that is the per-transaction write-set contract that lets
// concurrent writers commit without logging each other's in-flight
// changes. Returns how many pages were appended.
//
// The sweep runs inside the committing transaction's mutation window, so
// no frame's dirty/logged/owner state changes under it; the two-phase
// shape (collect across shards, then log in one globally sorted pass)
// keeps the append order — and therefore every fault-injection op count
// — identical to the single-latch pager's.
func (p *Pager) AppendUnloggedFor(w *WAL, owner int64) (int, error) {
	// Deterministic order makes crash points reproducible.
	var ids []PageID
	for i := range p.shards {
		sh := p.rlockShard(i)
		for id, pg := range sh.frames {
			if pg.dirty && !pg.logged && (pg.owner == owner || pg.owner == 0) {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	appended := 0
	for _, id := range ids {
		sh := p.lockShard(p.shardIndex(id))
		pg, ok := sh.frames[id]
		if !ok || !pg.dirty || pg.logged || (pg.owner != owner && pg.owner != 0) {
			sh.mu.Unlock()
			continue // state moved between the phases; not ours to log
		}
		err := w.AppendPage(id, pg.Data)
		if err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		pg.logged = true
		pg.owner = 0
		sh.mu.Unlock()
		appended++
	}
	return appended, nil
}

// FlushAll writes every dirty frame back to the backend and syncs it.
// Callers guarantee quiescence of writers (Checkpoint holds admission
// exclusively), so the two-phase sweep cannot race a new dirtying of the
// frames it collected.
func (p *Pager) FlushAll() error {
	// Deterministic order makes crash points in fault-injecting backends
	// reproducible run to run.
	var ids []PageID
	for i := range p.shards {
		sh := p.rlockShard(i)
		for id, pg := range sh.frames {
			if pg.dirty {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sh := p.lockShard(p.shardIndex(id))
		pg, ok := sh.frames[id]
		if !ok || !pg.dirty {
			sh.mu.Unlock()
			continue
		}
		if invariantsEnabled && p.noSteal.Load() && pg.owner != 0 {
			sh.mu.Unlock()
			panic(fmt.Sprintf("storage: flushing page %d owned by uncommitted transaction %d", id, pg.owner))
		}
		err := p.backend.WritePage(pg.ID, pg.Data)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.writes.Inc()
		pg.dirty = false
		pg.logged = false
		pg.owner = 0
		p.dirtyPages.Add(-1)
		sh.mu.Unlock()
	}
	return p.backend.Sync()
}

// Close flushes and closes the underlying backend. A flush failure does
// not skip the backend close; the errors are folded together.
func (p *Pager) Close() error {
	if invariantsEnabled {
		if leaked := p.PinnedPages(); len(leaked) > 0 {
			panic(fmt.Sprintf("storage: pager closed with %d pinned page(s) %v: pin leak", len(leaked), leaked))
		}
	}
	return errors.Join(p.FlushAll(), p.backend.Close())
}

// CloseDiscard closes the backend without flushing the buffer pool. The
// engine uses it when a checkpoint could not run safely (an open write
// transaction, or a broken WAL): under redo-only logging, flushing would
// push pages with no undo to the page file, so the pool is dropped and
// the next Open recovers committed state from the log instead.
func (p *Pager) CloseDiscard() error {
	return p.backend.Close()
}

// PinnedPages returns the ids of frames whose pin count is non-zero,
// sorted. A non-empty result at quiesce points (statement boundaries,
// Close) means some code path leaked a pin; the invariants build panics
// on it at Close.
func (p *Pager) PinnedPages() []PageID {
	var ids []PageID
	for i := range p.shards {
		sh := p.rlockShard(i)
		for id, pg := range sh.frames {
			if pg.pins.Load() > 0 {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// insertLocked adds a frame to the shard's table and clock. Caller holds
// sh.mu exclusively.
func (p *Pager) insertLocked(sh *pagerShard, pg *Page) {
	pg.slot = len(sh.clock)
	sh.clock = append(sh.clock, pg)
	sh.frames[pg.ID] = pg
}

// removeLocked deletes a frame from the shard's table and clock
// (swap-remove; O(1)). Caller holds sh.mu exclusively.
func (p *Pager) removeLocked(sh *pagerShard, pg *Page) {
	last := len(sh.clock) - 1
	moved := sh.clock[last]
	sh.clock[pg.slot] = moved
	moved.slot = pg.slot
	sh.clock[last] = nil
	sh.clock = sh.clock[:last]
	if sh.hand > last {
		sh.hand = 0
	}
	delete(sh.frames, pg.ID)
}

// evictIfFullLocked makes room for one more frame in the shard using
// clock (second-chance) eviction: the hand sweeps the resident set,
// clearing reference bits and skipping pinned frames; the first
// unreferenced, unpinned (and, under no-steal, clean) frame is the
// victim, written back if dirty. Caller holds sh.mu exclusively.
//
// When no victim exists the shard grows past its target instead of
// failing. If the blocker is dirt — unpinned frames that no-steal
// forbids stealing — growth is not silent: a CheckpointBackpressure
// wait is recorded and the checkpointer is poked, because only a
// checkpoint can clean those frames and shrink the pool again. (This
// replaces the old single-pool pager's unbounded "grows until the next
// FlushAll" note.)
func (p *Pager) evictIfFullLocked(sh *pagerShard) error {
	if len(sh.frames) < p.shardCap {
		return nil
	}
	noSteal := p.noSteal.Load()
	dirtyBlocked := false
	for scanned := 2 * len(sh.clock); scanned > 0; scanned-- {
		if sh.hand >= len(sh.clock) {
			sh.hand = 0
		}
		pg := sh.clock[sh.hand]
		if pg.pins.Load() > 0 {
			sh.hand++
			continue
		}
		if noSteal && pg.dirty {
			dirtyBlocked = true
			sh.hand++
			continue
		}
		if pg.ref.Swap(false) {
			sh.hand++
			continue // second chance
		}
		if pg.dirty {
			if err := p.backend.WritePage(pg.ID, pg.Data); err != nil {
				return err
			}
			sh.writes.Inc()
			p.dirtyPages.Add(-1)
		}
		p.removeLocked(sh, pg)
		sh.evictions.Inc()
		return nil
	}
	if dirtyBlocked {
		// All-dirty shard under no-steal: grow, but loudly — the
		// checkpointer is the only path back under the target.
		p.waits.Record(obs.WaitCheckpointBackpressure, 0)
		if fn := p.pressure.Load(); fn != nil {
			(*fn)()
		}
	}
	return nil // all pinned (or all dirty under no-steal); allow growth
}
