package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newTestPager(t *testing.T, capacity int) *Pager {
	t.Helper()
	return NewPager(NewMemBackend(), capacity)
}

func TestPagerFetchUnallocated(t *testing.T) {
	p := newTestPager(t, 16)
	if _, err := p.Fetch(0); err == nil {
		t.Fatal("fetch of unallocated page succeeded")
	}
}

func TestPagerNewPageAndFetch(t *testing.T) {
	p := newTestPager(t, 16)
	pg, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	pg.Data[100] = 0xAB
	id := pg.ID
	p.Unpin(pg, true)

	pg2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if pg2.Data[100] != 0xAB {
		t.Error("page contents lost")
	}
	p.Unpin(pg2, false)

	st := p.Stats()
	if st.Hits != 1 || st.Fetches != 1 {
		t.Errorf("stats = %+v, want 1 fetch / 1 hit", st)
	}
}

func TestPagerEvictionWritesBack(t *testing.T) {
	b := NewMemBackend()
	p := NewPager(b, 8)
	var ids []PageID
	for i := 0; i < 20; i++ {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data[0] = byte(i)
		ids = append(ids, pg.ID)
		p.Unpin(pg, true)
	}
	// Early pages must have been evicted and written back.
	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite small pool")
	}
	for i, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data[0] != byte(i) {
			t.Errorf("page %d data = %d, want %d", id, pg.Data[0], i)
		}
		p.Unpin(pg, false)
	}
}

func TestPagerFreeReuse(t *testing.T) {
	p := newTestPager(t, 16)
	pg, _ := p.NewPage()
	id := pg.ID
	p.Unpin(pg, false)
	p.Free(id)
	pg2, _ := p.NewPage()
	if pg2.ID != id {
		t.Errorf("freed page not reused: got %d want %d", pg2.ID, id)
	}
	p.Unpin(pg2, false)
}

func TestPagerUnpinPanicsOnDouble(t *testing.T) {
	p := newTestPager(t, 16)
	pg, _ := p.NewPage()
	p.Unpin(pg, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	p.Unpin(pg, false)
}

func TestFileBackendPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fb, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(fb, 8)
	pg, _ := p.NewPage()
	copy(pg.Data, []byte("persist me"))
	id := pg.ID
	p.Unpin(pg, true)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if fb2.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", fb2.NumPages())
	}
	p2 := NewPager(fb2, 8)
	pg2, err := p2.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(pg2.Data, []byte("persist me")) {
		t.Error("data not persisted")
	}
	p2.Unpin(pg2, false)
}

func TestSlottedPageBasics(t *testing.T) {
	d := make([]byte, PageSize)
	initPage(d)
	s1, err := pageInsert(d, []byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pageInsert(d, []byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("slots collide")
	}
	r1, _ := pageRead(d, s1)
	r2, _ := pageRead(d, s2)
	if string(r1) != "alpha" || string(r2) != "beta" {
		t.Fatalf("read back %q %q", r1, r2)
	}
	if err := pageDelete(d, s1); err != nil {
		t.Fatal(err)
	}
	if r, _ := pageRead(d, s1); r != nil {
		t.Error("deleted slot still readable")
	}
	// The empty slot gets reused.
	s3, err := pageInsert(d, []byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("slot not reused: got %d want %d", s3, s1)
	}
}

func TestSlottedPageCompaction(t *testing.T) {
	d := make([]byte, PageSize)
	initPage(d)
	big := bytes.Repeat([]byte("x"), 2000)
	var slots []int
	for {
		s, err := pageInsert(d, big)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 3 {
		t.Fatalf("only %d records fit", len(slots))
	}
	// Delete every other record; dead space is fragmented.
	for i := 0; i < len(slots); i += 2 {
		pageDelete(d, slots[i])
	}
	// A record larger than any single hole must still fit via compaction.
	bigger := bytes.Repeat([]byte("y"), 3000)
	s, err := pageInsert(d, bigger)
	if err != nil {
		t.Fatalf("compaction failed to make room: %v", err)
	}
	r, _ := pageRead(d, s)
	if !bytes.Equal(r, bigger) {
		t.Error("record corrupted by compaction")
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		r, _ := pageRead(d, slots[i])
		if !bytes.Equal(r, big) {
			t.Errorf("slot %d corrupted by compaction", slots[i])
		}
	}
}

func TestPageReplaceShrinkGrow(t *testing.T) {
	d := make([]byte, PageSize)
	initPage(d)
	s, _ := pageInsert(d, []byte("0123456789"))
	ok, err := pageReplace(d, s, []byte("abc"))
	if !ok || err != nil {
		t.Fatalf("shrink replace failed: %v %v", ok, err)
	}
	r, _ := pageRead(d, s)
	if string(r) != "abc" {
		t.Fatalf("after shrink: %q", r)
	}
	ok, err = pageReplace(d, s, bytes.Repeat([]byte("z"), 500))
	if !ok || err != nil {
		t.Fatalf("grow replace failed: %v %v", ok, err)
	}
	r, _ = pageRead(d, s)
	if len(r) != 500 || r[0] != 'z' {
		t.Fatalf("after grow: len %d", len(r))
	}
}

func TestHeapInsertGetDelete(t *testing.T) {
	p := newTestPager(t, 64)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("row one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || string(got) != "row one" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Error("Get after delete succeeded")
	}
	if n, _ := h.Count(); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
}

func TestHeapManyRowsMultiPage(t *testing.T) {
	p := newTestPager(t, 64)
	h, _ := CreateHeap(p)
	const n = 5000
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("row-%06d-%s", i, bytes.Repeat([]byte("p"), i%50))))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if h.NumPages() < 2 {
		t.Fatal("expected multi-page heap")
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		want := fmt.Sprintf("row-%06d-", i)
		if !bytes.HasPrefix(got, []byte(want)) {
			t.Fatalf("row %d corrupted: %q", i, got[:20])
		}
	}
	count, err := h.Count()
	if err != nil || count != n {
		t.Fatalf("Count = %d, %v; want %d", count, err, n)
	}
}

func TestHeapUpdateInPlaceAndForwarded(t *testing.T) {
	p := newTestPager(t, 64)
	h, _ := CreateHeap(p)
	rid, _ := h.Insert([]byte("short"))
	// Fill the page so a grown update cannot stay in place.
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(bytes.Repeat([]byte("f"), 500)); err != nil {
			t.Fatal(err)
		}
	}
	// In-place (shrink).
	if err := h.Update(rid, []byte("sm")); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Get(rid)
	if string(got) != "sm" {
		t.Fatalf("after shrink update: %q", got)
	}
	// Force relocation with a large image; the page holding rid is full.
	big := bytes.Repeat([]byte("G"), 7000)
	if err := h.Update(rid, big); err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after relocating update: len %d err %v", len(got), err)
	}
	// Update again through the forward, forcing a re-relocation.
	big2 := bytes.Repeat([]byte("H"), 7500)
	if err := h.Update(rid, big2); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Get(rid)
	if !bytes.Equal(got, big2) {
		t.Fatal("re-forwarded row corrupted")
	}
	// Scan must yield the row exactly once, at its original RID.
	seen := 0
	h.Scan(func(r RID, row []byte) (bool, error) {
		if bytes.Equal(row, big2) {
			seen++
			if r != rid {
				t.Errorf("forwarded row reported at %v, want %v", r, rid)
			}
		}
		return true, nil
	})
	if seen != 1 {
		t.Errorf("forwarded row seen %d times in scan", seen)
	}
	// Delete through the forward.
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Error("forwarded row still readable after delete")
	}
}

func TestHeapGetBatch(t *testing.T) {
	p := newTestPager(t, 64)
	h, _ := CreateHeap(p)
	const n = 300
	rids := make([]RID, n)
	imgs := make([][]byte, n)
	for i := 0; i < n; i++ {
		imgs[i] = []byte(fmt.Sprintf("row-%04d-%s", i, bytes.Repeat([]byte("x"), i%40)))
		rid, err := h.Insert(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	// Relocate a few rows so the batch read crosses forwarding pointers.
	forwarded := []int{5, 17, 250}
	for _, i := range forwarded {
		imgs[i] = bytes.Repeat([]byte("F"), 6000)
		if err := h.Update(rids[i], imgs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// A shuffled multiset of RIDs, including duplicates and the forwarded
	// rows: the callback must see each request at its ORIGINAL index with
	// the right image, whatever page order the read actually used.
	rng := rand.New(rand.NewSource(42))
	req := make([]int, 0, 120)
	for i := 0; i < 100; i++ {
		req = append(req, rng.Intn(n))
	}
	req = append(req, 5, 5, 17, 250) // duplicates + all forwarded rows
	batch := make([]RID, len(req))
	for i, idx := range req {
		batch[i] = rids[idx]
	}

	got := make([][]byte, len(req))
	if err := h.GetBatchFunc(batch, func(i int, img []byte) error {
		if got[i] != nil {
			return fmt.Errorf("index %d delivered twice", i)
		}
		got[i] = append([]byte(nil), img...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, idx := range req {
		if !bytes.Equal(got[i], imgs[idx]) {
			t.Fatalf("batch[%d] (row %d): got %d bytes, want %d", i, idx, len(got[i]), len(imgs[idx]))
		}
	}
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("batch read leaked pins: %v", pinned)
	}

	// GetBatch (copying wrapper) restores input order.
	copies, err := h.GetBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range req {
		if !bytes.Equal(copies[i], imgs[idx]) {
			t.Fatalf("GetBatch[%d]: wrong image", i)
		}
	}

	// The page-sorted batch read must pin each page once per run instead
	// of once per row: fetching many same-page rows costs far fewer
	// logical page requests than per-row Get.
	p.ResetStats()
	if _, err := h.GetBatch(rids[:64]); err != nil {
		t.Fatal(err)
	}
	batchFetches := p.Stats().Fetches
	p.ResetStats()
	for _, rid := range rids[:64] {
		if _, err := h.Get(rid); err != nil {
			t.Fatal(err)
		}
	}
	rowFetches := p.Stats().Fetches
	if batchFetches*2 > rowFetches {
		t.Errorf("batch read cost %d page fetches vs %d per-row; expected well under half", batchFetches, rowFetches)
	}

	// Empty batch is a no-op.
	if err := h.GetBatchFunc(nil, func(int, []byte) error {
		t.Error("callback on empty batch")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A deleted row fails the whole batch, with no leaked pins.
	if err := h.Delete(rids[30]); err != nil {
		t.Fatal(err)
	}
	if err := h.GetBatchFunc([]RID{rids[1], rids[30]}, func(int, []byte) error { return nil }); err == nil {
		t.Error("batch read of deleted row succeeded")
	}
	if pinned := p.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("failed batch read leaked pins: %v", pinned)
	}
}

func TestHeapTruncate(t *testing.T) {
	p := newTestPager(t, 64)
	h, _ := CreateHeap(p)
	for i := 0; i < 1000; i++ {
		h.Insert(bytes.Repeat([]byte("t"), 100))
	}
	if err := h.Truncate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Count(); n != 0 {
		t.Errorf("Count after truncate = %d", n)
	}
	if h.NumPages() != 1 {
		t.Errorf("NumPages after truncate = %d", h.NumPages())
	}
	if _, err := h.Insert([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOpenReattach(t *testing.T) {
	p := newTestPager(t, 256)
	h, _ := CreateHeap(p)
	var rids []RID
	for i := 0; i < 2000; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("persisted-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	h2, err := OpenHeap(p, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumPages() != h.NumPages() {
		t.Errorf("reopened heap has %d pages, want %d", h2.NumPages(), h.NumPages())
	}
	got, err := h2.Get(rids[1500])
	if err != nil || string(got) != "persisted-1500" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestHeapRejectsOversizeRecord(t *testing.T) {
	p := newTestPager(t, 16)
	h, _ := CreateHeap(p)
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Error("oversize record accepted")
	}
}

func TestRIDInt64RoundTrip(t *testing.T) {
	prop := func(page uint32, slot uint16) bool {
		r := RID{Page: PageID(page), Slot: slot}
		return RIDFromInt64(r.Int64()) == r
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestHeapRandomizedModel runs a random workload against the heap and an
// in-memory model map, checking full agreement after every 500 steps.
func TestHeapRandomizedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := newTestPager(t, 32)
	h, _ := CreateHeap(p)
	model := map[RID][]byte{}
	var live []RID

	randRow := func() []byte {
		n := rng.Intn(600)
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for step := 0; step < 6000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // insert
			row := randRow()
			rid, err := h.Insert(row)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("step %d: RID %v reused while live", step, rid)
			}
			model[rid] = row
			live = append(live, rid)
		case op < 8: // update
			i := rng.Intn(len(live))
			row := randRow()
			if err := h.Update(live[i], row); err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			model[live[i]] = row
		default: // delete
			i := rng.Intn(len(live))
			rid := live[i]
			if err := h.Delete(rid); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, rid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%500 == 499 {
			seen := map[RID]bool{}
			err := h.Scan(func(rid RID, row []byte) (bool, error) {
				want, ok := model[rid]
				if !ok {
					return false, fmt.Errorf("scan yielded unknown rid %v", rid)
				}
				if !bytes.Equal(row, want) {
					return false, fmt.Errorf("rid %v: data mismatch", rid)
				}
				if seen[rid] {
					return false, fmt.Errorf("rid %v yielded twice", rid)
				}
				seen[rid] = true
				return true, nil
			})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if len(seen) != len(model) {
				t.Fatalf("step %d: scan saw %d rows, model has %d", step, len(seen), len(model))
			}
		}
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	p := NewPager(NewMemBackend(), 1024)
	h, _ := CreateHeap(p)
	row := bytes.Repeat([]byte("r"), 120)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	p := NewPager(NewMemBackend(), 4096)
	h, _ := CreateHeap(p)
	row := bytes.Repeat([]byte("r"), 120)
	for i := 0; i < 10000; i++ {
		h.Insert(row)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		h.Scan(func(RID, []byte) (bool, error) { n++; return true, nil })
		if n != 10000 {
			b.Fatal("bad count")
		}
	}
}
