package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Segmented WAL storage. The log the WAL writer sees is still one
// logical append-only byte stream — the record framing, replay, and
// torn-tail repair in wal.go are unchanged — but underneath, the stream
// is striped across fixed-size segments: logical bytes
// [i*segCap, (i+1)*segCap) live in the payload of chain segment i.
// Records spanning a boundary simply continue in the next segment.
//
// Each segment starts with a small header naming the chain it belongs
// to: a magic number, the chain epoch, the segment's index within the
// chain, and a CRC over the three. Recovery selects the chain with the
// highest epoch whose index-0 segment is present and readable, walks it
// while indexes are contiguous and every non-final segment is full, and
// concatenates the payloads — everything else on disk is a free segment
// awaiting recycling.
//
// Epochs are what make checkpoint truncation cheap: Reset does not
// delete or rewrite the old log, it durably activates an empty index-0
// segment with epoch+1 (one header write + one fsync), which supersedes
// the old chain at selection time. The old chain's segments go on the
// free list and are recycled — header rewritten in place — as the new
// chain grows, so a steady-state workload reuses the same files forever
// instead of growing one.
//
// Crash-safety of recycling rests on two ordering rules:
//
//   - Reset reuses the *old chain's index-0 slot first* (when there is
//     one). If the header rewrite tears, the old chain has lost its
//     head and no chain is selectable — recovery sees an empty log,
//     which is exactly the state the just-completed checkpoint made
//     durable. A torn rewrite of any *other* old slot could instead
//     leave a readable prefix of the old chain, and replaying a prefix
//     of a superseded log would regress pages; reusing the head slot
//     first makes that window impossible.
//   - After Reset returns, the new epoch's head is durable, so the
//     max-epoch rule ignores the old chain no matter how recycling
//     mangles it from then on.
//
// Truncate (TruncateToSynced, torn-tail repair) is segment-aware: the
// partial segment is file-truncated and the fully-retired segments past
// it have their headers durably invalidated before they are freed, so a
// discarded suspect tail can never rejoin the chain.

const (
	segMagic = 0x53454731 // "SEG1"
	// segHeaderSize is the fixed segment header: magic (4), epoch (8),
	// index (8), CRC32-C over the previous three (4).
	segHeaderSize = 4 + 8 + 8 + 4
)

// segSlot is one physical segment store (a file, or a memory buffer in
// tests): header bytes at offset 0, payload from segHeaderSize on.
type segSlot interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Size() (int64, error)
	Close() error
}

// segMedium owns a numbered set of slots.
type segMedium interface {
	// List returns the existing slot numbers.
	List() ([]int, error)
	// Open opens slot n, creating it empty if absent.
	Open(n int) (segSlot, error)
	// SyncDir makes slot creations durable (directory fsync).
	SyncDir() error
	// Close releases medium-level resources (slots are closed by the
	// sink).
	Close() error
}

// segment is one live or free member of the pool.
type segment struct {
	slot    segSlot
	slotID  int
	epoch   uint64
	index   uint64
	payload int64 // payload bytes written (file size - header)
	dirty   bool  // has appends/header writes not yet fsynced
}

// SegmentedSink implements WALSink over fixed-size recycled segments.
type SegmentedSink struct {
	mu       sync.Mutex
	medium   segMedium
	segCap   int64
	epoch    uint64 // epoch of the live chain (or last seen, when empty)
	live     []*segment
	free     []*segment
	size     int64 // logical log length
	nextSlot int
	mkdirty  bool // a slot file was created since the last SyncDir
}

// DefaultWALSegmentBytes is the payload capacity of one WAL segment when
// the caller does not choose one (4 MiB — large enough that a segment
// holds hundreds of page images, small enough that a handful of segments
// cover a checkpoint interval).
const DefaultWALSegmentBytes = 4 << 20

// OpenFileSegmentedSink opens (creating if needed) a segmented WAL in
// the given directory, one file per segment. segBytes is the payload
// capacity per segment (<= 0 means DefaultWALSegmentBytes); it must be
// the same across opens of the same directory.
func OpenFileSegmentedSink(dir string, segBytes int64) (*SegmentedSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create wal dir %s: %w", dir, err)
	}
	return newSegmentedSink(&fileSegMedium{dir: dir}, segBytes)
}

// NewMemSegmentedSink returns an in-memory segmented WAL (crash harnesses
// put a fault.Sink on top and treat this as the durable medium).
func NewMemSegmentedSink(segBytes int64) *SegmentedSink {
	s, err := newSegmentedSink(&memSegMedium{slots: map[int]*memSegSlot{}}, segBytes)
	if err != nil {
		panic(err) // the memory medium cannot fail to open
	}
	return s
}

func newSegmentedSink(m segMedium, segBytes int64) (*SegmentedSink, error) {
	if segBytes <= 0 {
		segBytes = DefaultWALSegmentBytes
	}
	s := &SegmentedSink{medium: m, segCap: segBytes}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// open scans the medium, selects the live chain, and files everything
// else as free.
func (s *SegmentedSink) open() error {
	slots, err := s.medium.List()
	if err != nil {
		return err
	}
	sort.Ints(slots)
	type cand struct{ seg *segment }
	byEpoch := map[uint64]map[uint64]*segment{}
	var all []*segment
	maxEpoch := uint64(0)
	for _, n := range slots {
		slot, err := s.medium.Open(n)
		if err != nil {
			return err
		}
		if n >= s.nextSlot {
			s.nextSlot = n + 1
		}
		seg := &segment{slot: slot, slotID: n}
		all = append(all, seg)
		size, err := slot.Size()
		if err != nil {
			return err
		}
		if size < segHeaderSize {
			continue // headerless: free
		}
		var hdr [segHeaderSize]byte
		if _, err := slot.ReadAt(hdr[:], 0); err != nil {
			return err
		}
		if binary.BigEndian.Uint32(hdr[0:4]) != segMagic ||
			binary.BigEndian.Uint32(hdr[20:24]) != crc32.Checksum(hdr[0:20], walCRC) {
			continue // torn or stale header: free
		}
		seg.epoch = binary.BigEndian.Uint64(hdr[4:12])
		seg.index = binary.BigEndian.Uint64(hdr[12:20])
		seg.payload = size - segHeaderSize
		if seg.payload > s.segCap {
			seg.payload = s.segCap
		}
		if seg.epoch > maxEpoch {
			maxEpoch = seg.epoch
		}
		if byEpoch[seg.epoch] == nil {
			byEpoch[seg.epoch] = map[uint64]*segment{}
		}
		if byEpoch[seg.epoch][seg.index] == nil { // duplicates: first (lowest slot) wins
			byEpoch[seg.epoch][seg.index] = seg
		}
	}
	s.epoch = maxEpoch
	// The live chain is the highest epoch owning an index-0 segment,
	// walked while indexes are contiguous and every non-final segment is
	// full.
	var chainEpoch uint64
	haveChain := false
	for e, m := range byEpoch {
		if m[0] != nil && (!haveChain || e > chainEpoch) {
			chainEpoch, haveChain = e, true
		}
	}
	inChain := map[*segment]bool{}
	if haveChain {
		m := byEpoch[chainEpoch]
		for i := uint64(0); ; i++ {
			seg := m[i]
			if seg == nil {
				break
			}
			if len(s.live) > 0 {
				prev := s.live[len(s.live)-1]
				if prev.payload != s.segCap {
					break // a short non-final segment ends the chain
				}
			}
			s.live = append(s.live, seg)
			inChain[seg] = true
		}
		for _, seg := range s.live {
			s.size += seg.payload
		}
		s.epoch = chainEpoch
		if s.epoch < maxEpoch {
			// Defensive: stale higher-epoch fragments without a head can
			// never be selected, but keep our epoch above them anyway.
			s.epoch = maxEpoch
		}
	}
	for _, seg := range all {
		if !inChain[seg] {
			s.free = append(s.free, seg)
		}
	}
	return nil
}

// writeHeaderLocked stamps seg's header for (epoch, index) and truncates
// its payload to empty.
func (s *SegmentedSink) writeHeaderLocked(seg *segment, epoch, index uint64) error {
	if err := seg.slot.Truncate(segHeaderSize); err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], segMagic)
	binary.BigEndian.PutUint64(hdr[4:12], epoch)
	binary.BigEndian.PutUint64(hdr[12:20], index)
	binary.BigEndian.PutUint32(hdr[20:24], crc32.Checksum(hdr[0:20], walCRC))
	if _, err := seg.slot.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	seg.epoch, seg.index, seg.payload, seg.dirty = epoch, index, 0, true
	return nil
}

// activateLocked appends the next segment to the live chain, recycling
// the head of the free list or creating a fresh slot. Starting a new
// chain (index 0) bumps the epoch so the chain supersedes everything
// already on disk.
func (s *SegmentedSink) activateLocked() (*segment, error) {
	index := uint64(len(s.live))
	epoch := s.epoch
	if index == 0 {
		epoch = s.epoch + 1
	}
	var seg *segment
	if len(s.free) > 0 {
		seg = s.free[0]
		s.free = s.free[1:]
	} else {
		slot, err := s.medium.Open(s.nextSlot)
		if err != nil {
			return nil, err
		}
		seg = &segment{slot: slot, slotID: s.nextSlot}
		s.nextSlot++
		s.mkdirty = true
	}
	if err := s.writeHeaderLocked(seg, epoch, index); err != nil {
		s.free = append(s.free, seg) // keep the slot tracked for Close
		return nil, err
	}
	s.epoch = epoch
	s.live = append(s.live, seg)
	return seg, nil
}

// Append implements WALSink: the bytes extend the logical stream,
// spilling into freshly activated segments as segments fill.
func (s *SegmentedSink) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(p) > 0 {
		var seg *segment
		if n := len(s.live); n > 0 && s.live[n-1].payload < s.segCap {
			seg = s.live[n-1]
		} else {
			var err error
			if seg, err = s.activateLocked(); err != nil {
				return err
			}
		}
		n := s.segCap - seg.payload
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		if _, err := seg.slot.WriteAt(p[:n], segHeaderSize+seg.payload); err != nil {
			return err
		}
		seg.payload += n
		seg.dirty = true
		s.size += n
		p = p[n:]
	}
	return nil
}

// Sync implements WALSink: fsync every segment dirtied since the last
// sync, and the directory when segment files were created.
func (s *SegmentedSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *SegmentedSink) syncLocked() error {
	for _, seg := range s.live {
		if !seg.dirty {
			continue
		}
		if err := seg.slot.Sync(); err != nil {
			return err
		}
		seg.dirty = false
	}
	if s.mkdirty {
		if err := s.medium.SyncDir(); err != nil {
			return err
		}
		s.mkdirty = false
	}
	return nil
}

// Contents implements WALSink: the live chain's payloads, concatenated.
func (s *SegmentedSink) Contents() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, s.size)
	off := int64(0)
	for _, seg := range s.live {
		if _, err := seg.slot.ReadAt(buf[off:off+seg.payload], segHeaderSize); err != nil {
			return nil, fmt.Errorf("storage: read wal segment %d: %w", seg.slotID, err)
		}
		off += seg.payload
	}
	return buf, nil
}

// Truncate implements WALSink, segment-aware: the segment holding logical
// offset n is file-truncated, and every later segment is retired — its
// header durably invalidated so the discarded tail can never rejoin the
// chain — before going on the free list.
func (s *SegmentedSink) Truncate(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 || n > s.size {
		return fmt.Errorf("storage: wal truncate to %d outside log of %d bytes", n, s.size)
	}
	if n == s.size {
		return nil
	}
	// keep = number of live segments that survive (the last one possibly
	// partial). n == 0 retires everything.
	keep := int(n / s.segCap)
	part := n % s.segCap
	if part > 0 {
		keep++
	}
	retired := s.live[keep:]
	s.live = s.live[:keep]
	if part > 0 {
		last := s.live[keep-1]
		if err := last.slot.Truncate(segHeaderSize + part); err != nil {
			return err
		}
		last.payload = part
		if err := last.slot.Sync(); err != nil {
			return err
		}
		last.dirty = false
	}
	for _, seg := range retired {
		if err := s.invalidateLocked(seg); err != nil {
			return err
		}
		s.free = append(s.free, seg)
	}
	s.size = n
	return nil
}

// invalidateLocked durably destroys seg's header so it can never be
// selected as part of a chain again.
func (s *SegmentedSink) invalidateLocked(seg *segment) error {
	if err := seg.slot.Truncate(0); err != nil {
		return err
	}
	if err := seg.slot.Sync(); err != nil {
		return err
	}
	seg.epoch, seg.index, seg.payload, seg.dirty = 0, 0, 0, false
	return nil
}

// Reset implements WALSink (the post-checkpoint truncation): retire the
// whole chain and durably activate an empty index-0 segment of the next
// epoch, reusing the old chain's head slot first (see the package
// comment for why that ordering is load-bearing).
func (s *SegmentedSink) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.live
	s.live = nil
	s.size = 0
	if len(old) > 0 {
		// Old head first in the free list, so activateLocked recycles it.
		s.free = append(append([]*segment{old[0]}, old[1:]...), s.free...)
	}
	seg, err := s.activateLocked()
	if err != nil {
		return err
	}
	// The new chain must be durably selectable before Reset returns:
	// every byte of the old log is redundant only because the checkpoint
	// that called us already flushed the page file.
	if err := seg.slot.Sync(); err != nil {
		return err
	}
	seg.dirty = false
	if s.mkdirty {
		if err := s.medium.SyncDir(); err != nil {
			return err
		}
		s.mkdirty = false
	}
	return nil
}

// Close implements WALSink.
func (s *SegmentedSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, seg := range append(append([]*segment{}, s.live...), s.free...) {
		if err := seg.slot.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.medium.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Segments reports the live-chain and free-pool sizes (tests, \stats).
func (s *SegmentedSink) Segments() (live, free int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live), len(s.free)
}

// ---------------------------------------------------------------------------
// File medium

// fileSegMedium stores one segment per file ("%06d.seg") in a directory.
type fileSegMedium struct {
	dir string
}

func (m *fileSegMedium) List() ([]int, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "%06d.seg", &n); err == nil {
			out = append(out, n)
		}
	}
	return out, nil
}

func (m *fileSegMedium) Open(n int) (segSlot, error) {
	f, err := os.OpenFile(filepath.Join(m.dir, fmt.Sprintf("%06d.seg", n)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return (*fileSegSlot)(f), nil
}

func (m *fileSegMedium) SyncDir() error {
	d, err := os.Open(m.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (m *fileSegMedium) Close() error { return nil }

type fileSegSlot os.File

func (f *fileSegSlot) ReadAt(p []byte, off int64) (int, error)  { return (*os.File)(f).ReadAt(p, off) }
func (f *fileSegSlot) WriteAt(p []byte, off int64) (int, error) { return (*os.File)(f).WriteAt(p, off) }
func (f *fileSegSlot) Truncate(size int64) error                { return (*os.File)(f).Truncate(size) }
func (f *fileSegSlot) Sync() error                              { return (*os.File)(f).Sync() }
func (f *fileSegSlot) Close() error                             { return (*os.File)(f).Close() }
func (f *fileSegSlot) Size() (int64, error) {
	st, err := (*os.File)(f).Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---------------------------------------------------------------------------
// Memory medium

type memSegMedium struct {
	mu    sync.Mutex
	slots map[int]*memSegSlot
}

func (m *memSegMedium) List() ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for n := range m.slots {
		out = append(out, n)
	}
	return out, nil
}

func (m *memSegMedium) Open(n int) (segSlot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.slots[n]; ok {
		return s, nil
	}
	s := &memSegSlot{}
	m.slots[n] = s
	return s, nil
}

func (m *memSegMedium) SyncDir() error { return nil }
func (m *memSegMedium) Close() error   { return nil }

type memSegSlot struct {
	mu  sync.Mutex
	buf []byte
}

func (s *memSegSlot) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(s.buf)) {
		return 0, fmt.Errorf("storage: segment read [%d,%d) outside %d bytes", off, off+int64(len(p)), len(s.buf))
	}
	copy(p, s.buf[off:])
	return len(p), nil
}

func (s *memSegSlot) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(s.buf)) {
		grown := make([]byte, need)
		copy(grown, s.buf)
		s.buf = grown
	}
	copy(s.buf[off:], p)
	return len(p), nil
}

func (s *memSegSlot) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > int64(len(s.buf)) {
		grown := make([]byte, size)
		copy(grown, s.buf)
		s.buf = grown
		return nil
	}
	s.buf = s.buf[:size]
	return nil
}

func (s *memSegSlot) Sync() error { return nil }
func (s *memSegSlot) Close() error {
	return nil
}
func (s *memSegSlot) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.buf)), nil
}
