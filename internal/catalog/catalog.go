// Package catalog is the engine's data dictionary: tables, columns,
// indexes (built-in and domain), user-defined object types, operators and
// indextypes. The paper adds two schema-object classes to the classical
// dictionary — Operator and Indextype — and this package models both.
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bitmapidx"
	"repro/internal/btree"
	"repro/internal/hashidx"
	"repro/internal/storage"
	"repro/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind types.Kind
	// TypeName holds the object/array type name for OBJECT columns, or
	// the raw SQL type name otherwise.
	TypeName string
}

// Table is a base table: schema plus its heap storage and statistics.
type Table struct {
	Name     string
	Cols     []Column
	Heap     *storage.Heap
	RowCount int // maintained by the engine; input to the optimizer
	// Hidden marks engine-internal tables (index data tables create them
	// via callbacks; they are real tables but excluded from listings).
	Hidden bool
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// IndexKind enumerates the index implementations.
type IndexKind int

// Index kinds.
const (
	BTreeIndex IndexKind = iota
	HashIndex
	BitmapIndex
	DomainIndex
)

// String names the kind for plans and errors.
func (k IndexKind) String() string {
	switch k {
	case BTreeIndex:
		return "BTREE"
	case HashIndex:
		return "HASH"
	case BitmapIndex:
		return "BITMAP"
	case DomainIndex:
		return "DOMAIN"
	}
	return "?"
}

// Index is one index definition together with its storage handle. For a
// domain index the storage is owned by the indextype implementation (its
// index data tables / LOBs); the catalog only records the indextype name
// and parameter string.
type Index struct {
	Name   string
	Table  string
	Column string
	ColPos int
	Kind   IndexKind
	Unique bool

	BT *btree.BTree
	HX *hashidx.Index
	BM *bitmapidx.Index

	IndexType string // for DomainIndex
	Params    string

	// DistinctKeys is a maintained statistic for selectivity estimation.
	DistinctKeys int
	// HasRange, MinVal and MaxVal track the numeric value range of the
	// indexed column (grown on insert, conservatively stale on delete);
	// the optimizer derives range-predicate selectivity from them.
	HasRange       bool
	MinVal, MaxVal float64
}

// ObserveValue widens the index's numeric range statistic.
func (ix *Index) ObserveValue(v types.Value) {
	if v.Kind() != types.KindNumber {
		return
	}
	f := v.Float()
	if !ix.HasRange {
		ix.HasRange = true
		ix.MinVal, ix.MaxVal = f, f
		return
	}
	if f < ix.MinVal {
		ix.MinVal = f
	}
	if f > ix.MaxVal {
		ix.MaxVal = f
	}
}

// Binding is one signature of a user-defined operator with its functional
// implementation (a registered function name).
type Binding struct {
	ArgKinds   []types.Kind
	ReturnKind types.Kind
	FuncName   string
}

// Operator is a user-defined operator schema object.
type Operator struct {
	Name     string
	Bindings []Binding
	// AncillaryTo names the primary operator this operator is ancillary
	// to (e.g. Score is ancillary to Contains), or "".
	AncillaryTo string
}

// FindBinding returns the binding matching the argument kinds, trying an
// exact match first and falling back to an arity match (SQL's implicit
// conversions are not modelled).
func (o *Operator) FindBinding(argKinds []types.Kind) (*Binding, bool) {
	for i := range o.Bindings {
		b := &o.Bindings[i]
		if len(b.ArgKinds) != len(argKinds) {
			continue
		}
		match := true
		for j := range argKinds {
			if argKinds[j] != types.KindNull && b.ArgKinds[j] != argKinds[j] {
				match = false
				break
			}
		}
		if match {
			return b, true
		}
	}
	for i := range o.Bindings {
		if len(o.Bindings[i].ArgKinds) == len(argKinds) {
			return &o.Bindings[i], true
		}
	}
	return nil, false
}

// OpSig names an operator signature an indextype supports.
type OpSig struct {
	Name     string
	ArgKinds []types.Kind
}

// IndexType is the indextype schema object: the operators it supports and
// the names of the registered IndexMethods / StatsMethods implementations.
type IndexType struct {
	Name        string
	Ops         []OpSig
	MethodsName string
	StatsName   string
}

// Supports reports whether the indextype supports the named operator with
// the given arity.
func (it *IndexType) Supports(opName string, arity int) bool {
	for _, s := range it.Ops {
		if strings.EqualFold(s.Name, opName) && len(s.ArgKinds) == arity {
			return true
		}
	}
	return false
}

// Catalog is the data dictionary. All methods are safe for concurrent
// use; structural DDL is additionally serialized by the engine's lock
// manager.
type Catalog struct {
	mu         sync.RWMutex
	tables     map[string]*Table
	indexes    map[string]*Index
	byTable    map[string][]*Index
	operators  map[string]*Operator
	indextypes map[string]*IndexType
	typeDescs  map[string]*types.TypeDesc
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:     make(map[string]*Table),
		indexes:    make(map[string]*Index),
		byTable:    make(map[string][]*Index),
		operators:  make(map[string]*Operator),
		indextypes: make(map[string]*IndexType),
		typeDescs:  make(map[string]*types.TypeDesc),
	}
}

func key(name string) string { return strings.ToUpper(name) }

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, dup := c.tables[k]; dup {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	c.tables[k] = t
	return nil
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// DropTable removes a table, returning it and its indexes for storage
// teardown.
func (c *Catalog) DropTable(name string) (*Table, []*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	t, ok := c.tables[k]
	if !ok {
		return nil, nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	idxs := c.byTable[k]
	delete(c.tables, k)
	delete(c.byTable, k)
	for _, ix := range idxs {
		delete(c.indexes, key(ix.Name))
	}
	return t, idxs, nil
}

// Tables returns the visible table names (sorted listing is the caller's
// concern).
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// AddIndex registers an index.
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(ix.Name)
	if _, dup := c.indexes[k]; dup {
		return fmt.Errorf("catalog: index %s already exists", ix.Name)
	}
	tk := key(ix.Table)
	if _, ok := c.tables[tk]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", ix.Table)
	}
	c.indexes[k] = ix
	c.byTable[tk] = append(c.byTable[tk], ix)
	return nil
}

// Index looks an index up by name.
func (c *Catalog) Index(name string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[key(name)]
	return ix, ok
}

// DropIndex removes an index by name, returning it for teardown.
func (c *Catalog) DropIndex(name string) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	ix, ok := c.indexes[k]
	if !ok {
		return nil, fmt.Errorf("catalog: index %s does not exist", name)
	}
	delete(c.indexes, k)
	tk := key(ix.Table)
	list := c.byTable[tk]
	for i, other := range list {
		if other == ix {
			c.byTable[tk] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return ix, nil
}

// TableIndexes returns the indexes on a table.
func (c *Catalog) TableIndexes(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	list := c.byTable[key(table)]
	out := make([]*Index, len(list))
	copy(out, list)
	return out
}

// AddOperator registers a user-defined operator.
func (c *Catalog) AddOperator(op *Operator) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(op.Name)
	if _, dup := c.operators[k]; dup {
		return fmt.Errorf("catalog: operator %s already exists", op.Name)
	}
	c.operators[k] = op
	return nil
}

// Operator looks an operator up by name.
func (c *Catalog) Operator(name string) (*Operator, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	op, ok := c.operators[key(name)]
	return op, ok
}

// DropOperator removes an operator. It fails while any indextype still
// lists the operator, mirroring Oracle's dependency rules.
func (c *Catalog) DropOperator(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.operators[k]; !ok {
		return fmt.Errorf("catalog: operator %s does not exist", name)
	}
	for _, it := range c.indextypes {
		for _, sig := range it.Ops {
			if key(sig.Name) == k {
				return fmt.Errorf("catalog: operator %s is supported by indextype %s", name, it.Name)
			}
		}
	}
	delete(c.operators, k)
	return nil
}

// AddIndexType registers an indextype.
func (c *Catalog) AddIndexType(it *IndexType) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(it.Name)
	if _, dup := c.indextypes[k]; dup {
		return fmt.Errorf("catalog: indextype %s already exists", it.Name)
	}
	for _, sig := range it.Ops {
		if _, ok := c.operators[key(sig.Name)]; !ok {
			return fmt.Errorf("catalog: indextype %s references unknown operator %s", it.Name, sig.Name)
		}
	}
	c.indextypes[k] = it
	return nil
}

// IndexType looks an indextype up by name.
func (c *Catalog) IndexType(name string) (*IndexType, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	it, ok := c.indextypes[key(name)]
	return it, ok
}

// DropIndexType removes an indextype; it fails while domain indexes of
// the type exist.
func (c *Catalog) DropIndexType(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.indextypes[k]; !ok {
		return fmt.Errorf("catalog: indextype %s does not exist", name)
	}
	for _, ix := range c.indexes {
		if ix.Kind == DomainIndex && key(ix.IndexType) == k {
			return fmt.Errorf("catalog: indextype %s is used by index %s", name, ix.Name)
		}
	}
	delete(c.indextypes, k)
	return nil
}

// IndexTypesSupporting returns the indextypes that support the operator
// with the given arity — the optimizer's first question when it sees a
// user-operator predicate.
func (c *Catalog) IndexTypesSupporting(opName string, arity int) []*IndexType {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IndexType
	for _, it := range c.indextypes {
		if it.Supports(opName, arity) {
			out = append(out, it)
		}
	}
	return out
}

// OperatorNames lists registered operator names (persistence).
func (c *Catalog) OperatorNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.operators))
	for _, op := range c.operators {
		out = append(out, op.Name)
	}
	return out
}

// IndexTypeNames lists registered indextype names (persistence).
func (c *Catalog) IndexTypeNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.indextypes))
	for _, it := range c.indextypes {
		out = append(out, it.Name)
	}
	return out
}

// TypeDescNames lists registered object type names (persistence).
func (c *Catalog) TypeDescNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.typeDescs))
	for _, td := range c.typeDescs {
		out = append(out, td.Name)
	}
	return out
}

// AddTypeDesc registers a user-defined object type.
func (c *Catalog) AddTypeDesc(td *types.TypeDesc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(td.Name)
	if _, dup := c.typeDescs[k]; dup {
		return fmt.Errorf("catalog: type %s already exists", td.Name)
	}
	c.typeDescs[k] = td
	return nil
}

// TypeDesc looks an object type up by name.
func (c *Catalog) TypeDesc(name string) (*types.TypeDesc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	td, ok := c.typeDescs[key(name)]
	return td, ok
}
