package catalog

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func testTable(t *testing.T, c *Catalog, name string, cols ...Column) *Table {
	t.Helper()
	h, err := storage.CreateHeap(storage.NewPager(storage.NewMemBackend(), 16))
	if err != nil {
		t.Fatal(err)
	}
	tbl := &Table{Name: name, Cols: cols, Heap: h}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableLifecycle(t *testing.T) {
	c := New()
	tbl := testTable(t, c, "Emp", Column{Name: "id", Kind: types.KindNumber})
	if _, ok := c.Table("emp"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := c.AddTable(tbl); err == nil {
		t.Error("duplicate table accepted")
	}
	if got := len(c.Tables()); got != 1 {
		t.Errorf("Tables() = %d", got)
	}
	if _, _, err := c.DropTable("nope"); err == nil {
		t.Error("drop of missing table succeeded")
	}
	if _, _, err := c.DropTable("EMP"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("Emp"); ok {
		t.Error("table survives drop")
	}
}

func TestColIndex(t *testing.T) {
	c := New()
	tbl := testTable(t, c, "T",
		Column{Name: "Alpha", Kind: types.KindNumber},
		Column{Name: "Beta", Kind: types.KindString})
	if tbl.ColIndex("beta") != 1 || tbl.ColIndex("ALPHA") != 0 || tbl.ColIndex("gamma") != -1 {
		t.Error("ColIndex wrong")
	}
}

func TestIndexLifecycleAndDependencies(t *testing.T) {
	c := New()
	testTable(t, c, "T", Column{Name: "a", Kind: types.KindNumber})
	ix := &Index{Name: "T_A", Table: "T", Column: "a", Kind: BTreeIndex}
	if err := c.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(ix); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := c.AddIndex(&Index{Name: "X", Table: "missing"}); err == nil {
		t.Error("index on missing table accepted")
	}
	if got := len(c.TableIndexes("t")); got != 1 {
		t.Errorf("TableIndexes = %d", got)
	}
	// Dropping the table reports its indexes for teardown.
	_, idxs, err := c.DropTable("T")
	if err != nil || len(idxs) != 1 {
		t.Fatalf("DropTable idxs = %v, %v", idxs, err)
	}
	if _, ok := c.Index("T_A"); ok {
		t.Error("index survives table drop")
	}
}

func TestOperatorAndIndexTypeDependencies(t *testing.T) {
	c := New()
	op := &Operator{Name: "Contains", Bindings: []Binding{{
		ArgKinds: []types.Kind{types.KindString, types.KindString}, ReturnKind: types.KindNumber, FuncName: "f",
	}}}
	if err := c.AddOperator(op); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndexType(&IndexType{Name: "IT", Ops: []OpSig{{Name: "Missing", ArgKinds: nil}}}); err == nil {
		t.Error("indextype over missing operator accepted")
	}
	it := &IndexType{Name: "IT", MethodsName: "M",
		Ops: []OpSig{{Name: "Contains", ArgKinds: []types.Kind{types.KindString, types.KindString}}}}
	if err := c.AddIndexType(it); err != nil {
		t.Fatal(err)
	}
	// Operator cannot be dropped while the indextype lists it.
	if err := c.DropOperator("contains"); err == nil {
		t.Error("operator dropped while referenced")
	}
	// Indextype cannot be dropped while a domain index uses it.
	testTable(t, c, "T", Column{Name: "a", Kind: types.KindString})
	c.AddIndex(&Index{Name: "DI", Table: "T", Column: "a", Kind: DomainIndex, IndexType: "IT"})
	if err := c.DropIndexType("IT"); err == nil {
		t.Error("indextype dropped while used")
	}
	c.DropIndex("DI")
	if err := c.DropIndexType("IT"); err != nil {
		t.Error(err)
	}
	if err := c.DropOperator("Contains"); err != nil {
		t.Error(err)
	}
}

func TestFindBinding(t *testing.T) {
	op := &Operator{Name: "Op", Bindings: []Binding{
		{ArgKinds: []types.Kind{types.KindNumber, types.KindNumber}, FuncName: "nums"},
		{ArgKinds: []types.Kind{types.KindString, types.KindString}, FuncName: "strs"},
	}}
	b, ok := op.FindBinding([]types.Kind{types.KindString, types.KindString})
	if !ok || b.FuncName != "strs" {
		t.Error("exact match failed")
	}
	// NULL args match any binding positionally.
	b, ok = op.FindBinding([]types.Kind{types.KindNumber, types.KindNull})
	if !ok || b.FuncName != "nums" {
		t.Error("null-tolerant match failed")
	}
	// Arity fallback.
	b, ok = op.FindBinding([]types.Kind{types.KindBool, types.KindBool})
	if !ok {
		t.Error("arity fallback failed")
	}
	if _, ok := op.FindBinding([]types.Kind{types.KindNumber}); ok {
		t.Error("wrong arity matched")
	}
}

func TestIndexTypesSupporting(t *testing.T) {
	c := New()
	c.AddOperator(&Operator{Name: "Op1"})
	c.AddIndexType(&IndexType{Name: "A", Ops: []OpSig{{Name: "Op1", ArgKinds: make([]types.Kind, 2)}}})
	c.AddIndexType(&IndexType{Name: "B", Ops: []OpSig{{Name: "Op1", ArgKinds: make([]types.Kind, 3)}}})
	if got := c.IndexTypesSupporting("op1", 2); len(got) != 1 || got[0].Name != "A" {
		t.Errorf("IndexTypesSupporting = %v", got)
	}
	if got := c.IndexTypesSupporting("op1", 4); len(got) != 0 {
		t.Errorf("arity mismatch matched: %v", got)
	}
}

func TestObserveValue(t *testing.T) {
	ix := &Index{}
	ix.ObserveValue(types.Str("not a number"))
	if ix.HasRange {
		t.Error("string observed as range")
	}
	ix.ObserveValue(types.Num(5))
	ix.ObserveValue(types.Num(-3))
	ix.ObserveValue(types.Num(10))
	if !ix.HasRange || ix.MinVal != -3 || ix.MaxVal != 10 {
		t.Errorf("range = [%v, %v]", ix.MinVal, ix.MaxVal)
	}
}

func TestTypeDescRegistry(t *testing.T) {
	c := New()
	td := &types.TypeDesc{Name: "Point", AttrNames: []string{"x"}, AttrKinds: []types.Kind{types.KindNumber}}
	if err := c.AddTypeDesc(td); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTypeDesc(td); err == nil {
		t.Error("duplicate type accepted")
	}
	if _, ok := c.TypeDesc("POINT"); !ok {
		t.Error("case-insensitive type lookup failed")
	}
}
