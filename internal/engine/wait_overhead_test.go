package engine

import (
	"testing"
	"time"
)

// TestWaitAccountingOverhead pins the "cheap enough to leave on" claim:
// the same domain-query workload with wait-event recording on must run
// within a few percent of the same engine with recording disabled
// (Options.DisableWaitEvents). Recording a wait is a handful of atomic
// adds, so the two sides should be statistically indistinguishable; the
// bound only exists to catch an accidental lock, allocation, or
// syscall creeping onto the recording path.
//
// Methodology: interleaved rounds (enabled batch, disabled batch, …)
// with the minimum round time on each side — the minimum strips
// scheduler and GC noise, which is far larger than the effect being
// bounded. Skipped in -short and under the race detector, where every
// atomic is an instrumented call and timing means nothing.
func TestWaitAccountingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement: skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing measurement: meaningless under -race")
	}

	setup := func(disable bool) *Session {
		db, err := Open(Options{DisableWaitEvents: disable})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		m := &kwMethods{failNext: map[string]bool{}}
		s := setupKwCartridge(t, db, m)
		mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
		return s
	}
	enabled, disabled := setup(false), setup(true)

	const (
		queriesPerRound = 200
		rounds          = 6
		query           = `SELECT id FROM Docs WHERE HasKw(body, 'unix')`
	)
	batch := func(s *Session) time.Duration {
		start := time.Now()
		for i := 0; i < queriesPerRound; i++ {
			if _, err := s.Query(query); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Warm both sides (page cache, index state) before timing.
	batch(enabled)
	batch(disabled)

	const maxRatio = 1.03
	var lastOn, lastOff time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			// Alternate which side runs first so cache and GC drift do not
			// systematically charge one side.
			first, second := enabled, disabled
			if r%2 == 1 {
				first, second = disabled, enabled
			}
			d1, d2 := batch(first), batch(second)
			dOn, dOff := d1, d2
			if r%2 == 1 {
				dOn, dOff = d2, d1
			}
			if dOn < minOn {
				minOn = dOn
			}
			if dOff < minOff {
				minOff = dOff
			}
		}
		lastOn, lastOff = minOn, minOff
		// The millisecond of absolute slack keeps a sub-3%-of-nothing
		// wobble on a fast batch from failing the run.
		if float64(minOn) <= float64(minOff)*maxRatio+float64(time.Millisecond) {
			t.Logf("wait accounting overhead: enabled %v vs disabled %v per %d queries (%.2f%%)",
				minOn, minOff, queriesPerRound, (float64(minOn)/float64(minOff)-1)*100)
			return
		}
	}
	t.Errorf("wait-event recording overhead above %.0f%%: enabled %v vs disabled %v per %d queries",
		(maxRatio-1)*100, lastOn, lastOff, queriesPerRound)
}
