//go:build !race

package engine

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
