// Package engine ties the substrates into a working database: it owns the
// pager, transaction and lock managers, catalog, LOB store and the
// extensible-indexing registry, and implements SQL execution — DDL
// (including the paper's CREATE OPERATOR / CREATE INDEXTYPE / domain
// CREATE INDEX), DML with implicit index maintenance (built-in indexes
// and ODCIIndex callbacks), and cost-based query planning that can choose
// a domain index scan and drive it as a pipelined row source.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/extidx"
	"repro/internal/loblib"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Options configures Open.
type Options struct {
	// Path is the database file; empty means a fully in-memory database.
	Path string
	// CacheSizePages is the buffer-pool capacity (default 4096 pages,
	// i.e. 32 MiB).
	CacheSizePages int
	// Backend, when non-nil, overrides the page store (fault-injection
	// harnesses wrap a backend and pass it here; Path is then ignored for
	// the page space).
	Backend storage.Backend
	// WALSink, when non-nil, overrides the redo-log store. When nil, a
	// file database logs to Path+".wal" and an in-memory database runs
	// without a WAL (there is no durable medium to recover from) unless a
	// sink is injected.
	WALSink storage.WALSink
	// DisableWAL turns write-ahead logging off entirely, restoring the
	// pre-WAL behaviour (durability only at Checkpoint/Close).
	DisableWAL bool
	// DisableWaitEvents turns wait-event recording off (the per-class
	// table stays empty; StartWait sites still run but record nothing).
	// Exists for overhead A/B measurement — production leaves it off.
	DisableWaitEvents bool
	// FlightRecorderSize overrides the flight-recorder ring capacity
	// (rounded up to a power of two; default obs.DefaultFlightSize).
	FlightRecorderSize int
	// PagerShards is the buffer-pool shard count (pages are distributed
	// by page-id hash; each shard has its own latch and clock hand).
	// <= 0 means storage.DefaultPagerShards.
	PagerShards int
	// WALSegmentBytes is the payload capacity of one WAL segment when the
	// engine opens the default file-backed segmented log (<= 0 means
	// storage.DefaultWALSegmentBytes). Ignored when WALSink is injected.
	WALSegmentBytes int64
	// CheckpointWALBytes is the WAL-growth threshold that triggers the
	// background checkpointer (<= 0 means DefaultCheckpointWALBytes).
	CheckpointWALBytes int64
	// CheckpointDirtyPages is the dirty-frame watermark that triggers the
	// background checkpointer (<= 0 derives it from the cache size:
	// max(3/4 of the cache, 1024)).
	CheckpointDirtyPages int64
	// DisableBackgroundCheckpointer keeps checkpointing purely
	// foreground (Open recovery, explicit Checkpoint calls, Close) —
	// crash harnesses use this to keep WAL op counts deterministic.
	DisableBackgroundCheckpointer bool
}

// DB is one database instance.
type DB struct {
	pager *storage.Pager
	txns  *txn.Manager
	locks *txn.LockManager
	cat   *catalog.Catalog
	reg   *extidx.Registry
	lobs  *loblib.LOBStore
	ws    *extidx.Workspace

	parseMu    sync.Mutex
	parseCache map[string]sql.Statement

	// DefaultFetchBatch is the maxRows passed to ODCIIndexFetch (and the
	// chunk size of domain scans). 0 lets the planner pick a batch size
	// from the cardinality estimate (the paper's batch interface; E8 and
	// B1 sweep this).
	DefaultFetchBatch int

	// wal is the redo log, nil when logging is disabled. walMu serializes
	// commit-record appends and checkpoint truncation against each other.
	// walBroken is set after any failed log write: the log tail is then
	// suspect, so further commits are refused until the database is
	// reopened and recovers from the durable prefix. (The suspect tail
	// itself is truncated back to the last synced length at failure time,
	// so an unacknowledged commit record cannot replay as committed.)
	wal       *storage.WAL
	walMu     sync.Mutex
	walBroken bool
	recovery  storage.RecoveryInfo

	// ckpt is the background checkpointer (nil when no WAL governs the
	// database or the checkpointer is disabled). Set once in Open before
	// any session exists; Close drains it before checkpointing.
	ckpt *checkpointer

	// Write concurrency (WAL-governed databases). Three layers replace
	// the old single-writer gate:
	//
	//   - admission: an RWMutex taken shared by ordinary write
	//     transactions (from their first write statement until they
	//     finish) and exclusively by work whose uncommitted state rides
	//     wholesale in every commit record's dictionary snapshot — DDL,
	//     and DML on tables with bitmap or domain indexes (bitmap
	//     content, LOB directories). An exclusive holder is the only
	//     writer in flight, so its dictionary mutations can never leak
	//     into another transaction's commit snapshot. Checkpoint
	//     TryLocks it exclusively (ErrTxnOpen when writers are open).
	//   - mutMu: the mutation window. Page content is mutated only while
	//     holding it — write statement bodies, undo replay, and the
	//     commit sweep (AppendUnloggedFor + commit-record append) — so a
	//     sweep can never read a page another statement is half-way
	//     through modifying. The commit fsync runs OUTSIDE the window:
	//     that is what lets concurrent committers reach the WAL's
	//     group-commit protocol and share fsyncs. Re-entrant per
	//     transaction (mutOwner/mutDepth, guarded by mutStateMu):
	//     callback sessions and statement-level rollback nest inside
	//     their statement's window.
	//   - per-frame ownership in the pager (Page.owner): the window
	//     attributes dirtied frames to its transaction, the commit sweep
	//     logs only the committing transaction's frames (plus orphans),
	//     and a statement that dirties another uncommitted transaction's
	//     frame aborts with storage.ErrWriteConflict (first dirtier
	//     wins).
	//
	// The intended global acquisition order — admission first, then
	// table locks, the mutation window, the WAL append mutex, the pager
	// shard latches, the WAL group state, the log segments, backends
	// last — is declared below; the lockorder analyzer checks every
	// observed acquisition path against it and reports any cycle in the
	// whole-program lock graph. (Table locks are LockManager locals,
	// deadlock-free by sorted acquisition, and out of the analyzer's
	// scope; so are same-identity shard latches, which the pager only
	// nests in ascending shard order for consistent-cut snapshots.)
	//
	//vetx:lockorder engine.DB.admission < engine.DB.admitMu
	//vetx:lockorder engine.DB.admission < engine.DB.mutMu
	//vetx:lockorder engine.DB.mutMu < engine.DB.mutStateMu
	//vetx:lockorder engine.DB.mutMu < engine.DB.walMu
	//vetx:lockorder engine.DB.walMu < storage.WAL.gmu
	//vetx:lockorder engine.DB.walMu < storage.pagerShard.mu
	//vetx:lockorder storage.pagerShard.mu < storage.WAL.gmu
	//vetx:lockorder storage.pagerShard.mu < storage.Pager.conflictMu
	//vetx:lockorder storage.pagerShard.mu < storage.FileBackend.mu
	//vetx:lockorder storage.pagerShard.mu < storage.MemBackend.mu
	//vetx:lockorder storage.Pager.allocMu < storage.FileBackend.mu
	//vetx:lockorder storage.Pager.allocMu < storage.MemBackend.mu
	//vetx:lockorder storage.WAL.gmu < storage.SegmentedSink.mu
	//vetx:lockorder storage.SegmentedSink.mu < storage.memSegMedium.mu
	//vetx:lockorder storage.SegmentedSink.mu < storage.memSegSlot.mu
	admission sync.RWMutex
	admitMu   sync.Mutex         // guards admitted
	admitted  map[*txn.Txn]bool  // open write txns → exclusive?
	mutMu     sync.Mutex         // the mutation window
	mutStateMu sync.Mutex        // guards mutOwner/mutDepth
	mutOwner  int64              // txn holding the window (valid when mutDepth > 0)
	mutDepth  int                // re-entry depth of the window

	// Observability aggregates (see metrics.go). planner counts costed
	// plans and chosen path kinds; odci counts and times every callback
	// crossing the ODCI boundary (the registry's instrumented wrappers
	// feed it). The engine-level counters below are plain obs.Counters so
	// the untraced query path pays a handful of atomic adds and nothing
	// else.
	planner obs.PlannerStats
	odci    obs.ODCIStats

	// execStats aggregates parallel-execution activity: exchanges
	// started, morsels dispatched to workers, cumulative worker busy
	// time. Exchange operators feed it from worker goroutines (the
	// counters are atomic).
	execStats obs.ExecStats

	selects       obs.Counter // SELECTs executed (any session)
	tracedQueries obs.Counter // SELECTs run with a QueryTrace attached
	slowQueries   obs.Counter // traces handed to the slow-query hook

	// waits is the wait-event table: every blocking point — admission,
	// the mutation window, the WAL append mutex and group fsync, the
	// pager latch, table locks, exchange handoffs, the ODCI boundary —
	// records its blocked intervals here per class. conflicts counts
	// write-conflict aborts per table. flight is the always-on ring of
	// recent engine events (commits, group fsyncs, checkpoints,
	// conflicts, slow waits, DDL), dumped by the slow-query hook and
	// LeakCheck failures.
	waits     obs.WaitStats
	conflicts obs.ConflictStats
	flight    *obs.FlightRecorder

	// hookCfg holds the slow-query hook; atomic so the per-SELECT check
	// is a single pointer load when no hook is installed.
	hookCfg atomic.Pointer[slowHookCfg]
}

// slowHookCfg pairs the slow-query threshold with its callback.
type slowHookCfg struct {
	threshold time.Duration
	fn        func(*obs.QueryTrace)
}

// slowWaitThreshold is the blocked-time bound past which a wait also
// lands in the flight recorder as an EvSlowWait event. 10ms is an
// eternity for an in-memory lock and on the order of one slow fsync —
// long enough that ordinary contention stays out of the ring.
const slowWaitThreshold = 10 * time.Millisecond

// flightTailEvents is how many trailing flight-recorder events ride
// along with slow-query traces and LeakCheck failures.
const flightTailEvents = 16

// ErrWALBroken is returned by commits after a write-ahead-log write has
// failed; reopen the database to recover.
var ErrWALBroken = errors.New("engine: write-ahead log failed; reopen to recover")

// ErrTxnOpen is returned by Checkpoint (and therefore Close) when a
// write transaction is still open: flushing its uncommitted pages would
// durably commit them with no undo, so the checkpoint is refused.
var ErrTxnOpen = errors.New("engine: checkpoint refused: a write transaction is open")

// admitTxn grants t write admission for its remaining lifetime: shared
// for ordinary writes, exclusive when the transaction's uncommitted
// state would otherwise leak into other transactions' commit snapshots
// (DDL, bitmap-index or domain-index DML). The grant is released when
// the transaction commits or rolls back — including the rollback a
// failed commit sink triggers. A shared grant upgrades to exclusive by
// releasing and re-acquiring; the gap is safe against other writers
// because the transaction holds no other locks here and its page
// changes stay protected by frame ownership, and safe against
// checkpoints because the transaction stays in the admitted map for
// the whole gap — Checkpoint refuses (ErrTxnOpen) whenever that map is
// non-empty, even when its TryLock momentarily succeeds.
func (db *DB) admitTxn(t *txn.Txn, exclusive bool) {
	if db.wal == nil || t == nil {
		return
	}
	db.admitMu.Lock()
	ex, held := db.admitted[t]
	db.admitMu.Unlock()
	if held && (ex || !exclusive) {
		return
	}
	if held {
		db.admission.RUnlock() // upgrade: shared → exclusive
	}
	db.admitAcquire(exclusive)
	db.admitMu.Lock()
	db.admitted[t] = exclusive
	db.admitMu.Unlock()
	if !held {
		release := func() {
			// Orphan the transaction's frames before admission frees:
			// the instant admission is released a checkpoint may pass
			// TryLock, and it must never observe owner-attributed
			// frames. (The manager-level ReleaseOwner handler that runs
			// after the per-txn handlers is then a no-op for this
			// transaction.)
			db.pager.ReleaseOwner(t.ID)
			db.admitMu.Lock()
			wasEx := db.admitted[t]
			delete(db.admitted, t)
			db.admitMu.Unlock()
			if wasEx {
				db.admission.Unlock()
			} else {
				db.admission.RUnlock()
			}
		}
		t.OnCommit(release)
		t.OnRollback(release)
	}
}

// admitAcquire takes the admission lock in the requested mode, recording
// the acquisition (and its blocked time) as a wait event. Every
// acquisition is recorded, not just contended ones: the class count is
// the admission count the metrics report, and an uncontended Lock adds
// only the timing overhead to a path that is about to take a lock
// anyway.
func (db *DB) admitAcquire(exclusive bool) {
	class := obs.WaitAdmissionShared
	if exclusive {
		class = obs.WaitAdmissionExclusive
	}
	aw := db.waits.StartWait(class)
	if exclusive {
		db.admission.Lock()
	} else {
		db.admission.RLock()
	}
	aw.Done()
	//vetx:ignore lockbalance -- acquisition helper: callers pair it with admitRelease or transfer ownership
}

// admitRelease undoes one admitAcquire (statement-scoped autocommit
// grants).
func (db *DB) admitRelease(exclusive bool) {
	if exclusive {
		db.admission.Unlock()
	} else {
		db.admission.RUnlock()
	}
}

// needsExclusiveAdmission reports whether a write to the named tables
// must exclude concurrent committers: bitmap-index content and whatever
// domain-index cartridges keep outside the page space (LOB directories,
// dictionary-resident state) ride wholesale in every commit record's
// snapshot, so uncommitted changes to them must not be in flight while
// another transaction logs a snapshot.
func (db *DB) needsExclusiveAdmission(tables []string) bool {
	for _, tn := range tables {
		for _, ix := range db.cat.TableIndexes(sql.Norm(tn)) {
			if ix.Kind == catalog.BitmapIndex || ix.Kind == catalog.DomainIndex {
				return true
			}
		}
	}
	return false
}

// enterMutation opens (or re-enters) the mutation window for txID: the
// exclusive section in which page content may be mutated — statement
// bodies, undo replay, and the commit sweep. Frames dirtied inside the
// window are attributed to txID by the pager (undo mode leaves
// attribution untouched). The window deliberately excludes the commit
// fsync, so committers serialize only their in-memory work and share
// fsyncs through the WAL's group protocol. Re-entrant per transaction:
// callback sessions (same txn) and rollback inside a failing statement
// nest. Returns the paired exit.
func (db *DB) enterMutation(txID int64, undo bool) (exit func()) {
	if db.wal == nil {
		return func() {}
	}
	db.mutStateMu.Lock()
	if db.mutDepth > 0 && db.mutOwner == txID {
		db.mutDepth++
		db.mutStateMu.Unlock()
		restore := db.pager.PushWriter(txID, undo)
		return func() {
			restore()
			db.mutStateMu.Lock()
			db.mutDepth--
			db.mutStateMu.Unlock()
		}
	}
	db.mutStateMu.Unlock()
	aw := db.waits.StartWait(obs.WaitMutationWindow)
	db.mutMu.Lock()
	aw.Done()
	db.mutStateMu.Lock()
	db.mutOwner, db.mutDepth = txID, 1
	db.mutStateMu.Unlock()
	restore := db.pager.PushWriter(txID, undo)
	//vetx:ignore lockbalance -- window ownership transfers to the returned exit closure; every caller pairs it
	return func() {
		restore()
		db.mutStateMu.Lock()
		db.mutDepth = 0
		db.mutStateMu.Unlock()
		db.mutMu.Unlock()
	}
}

// RecoveryInfo reports what WAL replay did during Open (zero value when
// no WAL is configured or the log was empty).
func (db *DB) RecoveryInfo() storage.RecoveryInfo { return db.recovery }

// WALEnabled reports whether a write-ahead log governs this database.
func (db *DB) WALEnabled() bool { return db.wal != nil }

// FetchCalls reports the cumulative number of ODCIIndexFetch invocations,
// read from the ODCI boundary observer (every registry-resolved scan is
// instrumented; per-scan counts live on exec.DomainScan.Fetches).
func (db *DB) FetchCalls() int64 { return db.odci.Calls(obs.CbFetch) }

// ResetFetchCalls zeroes the ODCIIndexFetch counter.
func (db *DB) ResetFetchCalls() { db.odci.ResetCallback(obs.CbFetch) }

// Open creates or opens a database. When a WAL governs the page space
// (file databases by default, or any injected WALSink), Open first
// replays the log — applying every committed transaction's page images
// to the backend and discarding uncommitted ones — then checkpoints and
// truncates the log, so a crash during recovery simply replays again.
func Open(opts Options) (*DB, error) {
	backend := opts.Backend
	if backend == nil {
		if opts.Path == "" {
			backend = storage.NewMemBackend()
		} else {
			fb, err := storage.OpenFileBackend(opts.Path)
			if err != nil {
				return nil, err
			}
			backend = fb
		}
	}
	sink := opts.WALSink
	if sink == nil && !opts.DisableWAL && opts.Path != "" && opts.Backend == nil {
		// The default file log is a directory of fixed-size recycled
		// segments; a checkpoint retires segments back into the pool
		// instead of growing one append-only file.
		fs, err := storage.OpenFileSegmentedSink(opts.Path+".wal", opts.WALSegmentBytes)
		if err != nil {
			return nil, err
		}
		sink = fs
	}
	if opts.DisableWAL {
		sink = nil
	}
	var recovery storage.RecoveryInfo
	if sink != nil {
		info, err := storage.ReplayWAL(backend, sink)
		if err != nil {
			return nil, fmt.Errorf("engine: wal recovery: %w", err)
		}
		recovery = info
	}
	cache := opts.CacheSizePages
	if cache <= 0 {
		cache = 4096
	}
	pager := storage.NewPagerShards(backend, cache, opts.PagerShards)
	db := &DB{
		pager:             pager,
		txns:              txn.NewManager(),
		locks:             txn.NewLockManager(),
		cat:               catalog.New(),
		reg:               extidx.NewRegistry(),
		lobs:              loblib.NewLOBStore(pager),
		ws:                extidx.NewWorkspace(),
		parseCache:        make(map[string]sql.Statement),
		admitted:          make(map[*txn.Txn]bool),
		DefaultFetchBatch: 64,
		recovery:          recovery,
	}
	// Every IndexMethods/StatsMethods resolve from here on hands out an
	// instrumented wrapper feeding the per-callback counters.
	db.reg.SetObserver(&db.odci)
	// Wait-event and flight-recorder wiring: every layer that can block
	// reports into the one table, and the recorder is always on (its
	// idle cost is one pointer's worth of state per DB). All of this
	// happens before any session exists, so the plain-field stores are
	// safe.
	db.flight = obs.NewFlightRecorder(opts.FlightRecorderSize)
	db.waits.SetDisabled(opts.DisableWaitEvents)
	db.waits.SetSlowWaitThreshold(slowWaitThreshold)
	db.waits.AttachFlight(db.flight)
	db.odci.AttachWaits(&db.waits)
	pager.SetWaitStats(&db.waits)
	db.locks.SetWaitStats(&db.waits)
	db.txns.OnCommit(func(txID int64) { db.flight.Record(obs.EvCommit, txID, 0, "") })
	db.txns.OnRollback(func(txID int64) { db.flight.Record(obs.EvRollback, txID, 0, "") })
	if sink != nil {
		db.wal = storage.NewWAL(sink, recovery.LastSeq, recovery.IntactBytes)
		db.wal.SetObs(&db.waits, db.flight)
		// Redo-only logging is correct only if uncommitted changes never
		// reach the page file: no-steal buffer pool.
		pager.SetNoSteal(true)
	}
	if backend.NumPages() == 0 {
		if err := db.initSuperblock(); err != nil {
			return nil, err
		}
	} else if recovery.Snapshot != nil {
		// The newest committed dictionary snapshot rides in the WAL commit
		// record and supersedes the (possibly stale) page-0 snapshot chain.
		if err := db.applySnapshotBytes(recovery.Snapshot); err != nil {
			return nil, err
		}
	} else if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	if db.wal != nil {
		db.txns.SetCommitSink(db.logCommit)
		// Undo replay restores page content, so it must run inside the
		// mutation window — re-entrant when the statement that failed is
		// already holding it.
		db.txns.SetUndoScope(func(txID int64) func() {
			return db.enterMutation(txID, true)
		})
		// Whatever frames a finished transaction still owns become
		// orphans: a committed txn's frames were disowned by its sweep
		// (anything left was re-dirtied logging, i.e. committed content),
		// and a rolled-back txn's frames hold restored pre-images.
		// Transaction-scoped admissions orphan their frames earlier, in
		// the per-txn admission release (which must run before admission
		// frees — see admitTxn); this manager-level handler is the path
		// that covers statement-scoped (autocommit) writers, which hold
		// admission until after their transaction finishes.
		releaseOwner := func(txID int64) { db.pager.ReleaseOwner(txID) }
		db.txns.OnCommit(releaseOwner)
		db.txns.OnRollback(releaseOwner)
		if recovery.Records > 0 || recovery.TornTail {
			// Fold the replayed state into the page file and truncate the
			// log so it does not grow across restarts.
			if err := db.Checkpoint(); err != nil {
				return nil, fmt.Errorf("engine: post-recovery checkpoint: %w", err)
			}
		}
		// The background checkpointer starts last: everything it touches
		// is wired, and recovery's foreground checkpoint has already run.
		db.startCheckpointer(opts, cache)
	}
	return db, nil
}

// Close checkpoints (snapshot + flush + WAL truncation) and closes the
// database. Close attempts every cleanup step even when an earlier one
// fails, folding the errors together. When the checkpoint is refused or
// fails under a WAL (open write transaction, broken or partially
// flushed log), the buffer pool is discarded instead of flushed —
// flushing could push uncommitted or unlogged pages to the page file —
// and the next Open recovers committed state from the log.
func (db *DB) Close() error {
	// Drain the background checkpointer first: a checkpoint of its own in
	// flight holds admission, which would make the foreground checkpoint
	// below report ErrTxnOpen and wrongly discard the buffer pool.
	db.stopCheckpointer()
	err := db.Checkpoint()
	if err != nil && db.wal != nil {
		err = errors.Join(err, db.pager.CloseDiscard())
	} else {
		err = errors.Join(err, db.pager.Close())
	}
	if db.wal != nil {
		// One more attempt to cut a suspect tail left by a failed commit
		// whose truncation also failed; idempotent when already clean.
		db.walMu.Lock()
		err = errors.Join(err, db.wal.TruncateToSynced())
		db.walMu.Unlock()
		err = errors.Join(err, db.wal.Close())
	}
	return err
}

// logCommit is the transaction manager's commit sink: it appends the
// image of every page in the committing transaction's write set, then a
// commit record carrying the dictionary snapshot — both inside the
// mutation window and under the short WAL append mutex — and then makes
// the log durable through the WAL's shared-fsync protocol, outside both
// locks. Only after it returns nil is the commit acknowledged. A
// transaction that dirtied no pages skips the log entirely — unless it
// is forceDurable (DDL changes only the dictionary, which rides in the
// commit record).
func (db *DB) logCommit(txID int64, forceDurable bool) error {
	exit := db.enterMutation(txID, false)
	target, err := db.appendCommitBatch(txID, forceDurable)
	exit()
	if err != nil || target == 0 {
		return err
	}
	if err := db.wal.SyncShared(target); err != nil {
		// The whole batch is poisoned: this commit's durability is
		// unknown, so the WAL is marked broken and the suspect tail cut.
		db.walMu.Lock()
		err = db.failWAL(err)
		db.walMu.Unlock()
		return err
	}
	// The acknowledged commit may have pushed the log or the dirty-frame
	// count over a checkpoint threshold; let the background checkpointer
	// re-evaluate (coalesced, non-blocking).
	if db.ckpt != nil {
		db.ckpt.poke(false)
	}
	return nil
}

// appendCommitBatch appends the transaction's frame batch and commit
// record under walMu (the short append mutex concurrent committers
// serialize on) and returns the log length to sync up to — 0 when the
// transaction has nothing to log.
func (db *DB) appendCommitBatch(txID int64, forceDurable bool) (int64, error) {
	aw := db.waits.StartWait(obs.WaitWALAppend)
	db.walMu.Lock()
	aw.Done()
	defer db.walMu.Unlock()
	if db.walBroken {
		return 0, ErrWALBroken
	}
	n, err := db.pager.AppendUnloggedFor(db.wal, txID)
	if err != nil {
		return 0, db.failWAL(err)
	}
	if n == 0 && !forceDurable {
		return 0, nil
	}
	snap, err := db.snapshotBytes()
	if err != nil {
		return 0, db.failWAL(err)
	}
	if err := db.wal.AppendCommit(txID, snap); err != nil {
		return 0, db.failWAL(err)
	}
	return db.wal.LogSize(), nil
}

// failWAL poisons the WAL and cuts the log back to the last successfully
// synced length: the bytes past it may or may not have reached durable
// media, and a commit record the client is about to see fail must never
// replay as committed after reopening. If even the truncation fails,
// Close retries it; the poisoning stands either way. Callers hold walMu.
func (db *DB) failWAL(err error) error {
	db.walBroken = true
	if terr := db.wal.TruncateToSynced(); terr != nil {
		return errors.Join(err, fmt.Errorf("engine: discard suspect wal tail: %w", terr))
	}
	return err
}

// Registry exposes the extensible-indexing registry so cartridges can
// register their IndexMethods, StatsMethods and functions before issuing
// the SQL DDL that references them.
func (db *DB) Registry() *extidx.Registry { return db.reg }

// Catalog exposes the data dictionary (read-mostly: tools and tests).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// PagerStats returns buffer-pool I/O counters (benchmarks read these to
// reproduce the paper's logical-I/O claims), with the WAL counters
// folded in when a log governs the database.
func (db *DB) PagerStats() storage.Stats {
	s := db.pager.Stats()
	if db.wal != nil {
		db.wal.AddStats(&s)
	}
	return s
}

// ResetPagerStats zeroes the I/O and WAL counters.
func (db *DB) ResetPagerStats() {
	db.pager.ResetStats()
	if db.wal != nil {
		db.wal.ResetStats()
	}
}

// LeakCheck reports buffer-pool state that must not exist at rest (no
// statement executing, no write transaction open): pinned frames mean a
// pin leak, and owner-attributed dirty frames mean a finished
// transaction failed to disown its write set. Stress and invariants
// tests call it between workload phases.
func (db *DB) LeakCheck() error {
	if leaked := db.pager.PinnedPages(); len(leaked) > 0 {
		return db.withFlightDump(fmt.Errorf("engine: %d pinned page(s) at rest: %v", len(leaked), leaked))
	}
	if owned := db.pager.OwnedPages(); len(owned) > 0 {
		return db.withFlightDump(fmt.Errorf("engine: %d owner-attributed frame(s) at rest: %v", len(owned), owned))
	}
	return nil
}

// withFlightDump appends the tail of the flight recorder to a failure:
// the recent commits/rollbacks/conflicts are usually exactly the
// context needed to see which workload phase left the state behind.
func (db *DB) withFlightDump(err error) error {
	tail := flightTail(db.flight, flightTailEvents)
	if len(tail) == 0 {
		return err
	}
	lines := make([]string, len(tail))
	for i, e := range tail {
		lines[i] = "  " + e.String()
	}
	return fmt.Errorf("%w\nflight recorder (last %d events):\n%s", err, len(tail), strings.Join(lines, "\n"))
}

// flightTail returns the most recent n events, oldest first.
func flightTail(f *obs.FlightRecorder, n int) []obs.FlightEvent {
	evs := f.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// noteCheckpointBlocked records one refused checkpoint attempt: a
// zero-duration CheckpointBlocked wait (the caller was turned away, not
// parked) plus a flight event.
func (db *DB) noteCheckpointBlocked() {
	db.waits.Record(obs.WaitCheckpointBlocked, 0)
	db.flight.Record(obs.EvCheckpoint, 0, 0, "refused")
}

// noteWriteConflict records one transaction aborted by
// storage.ErrWriteConflict against the table whose statement hit it.
func (db *DB) noteWriteConflict(table string) {
	db.conflicts.RecordAbort(sql.Norm(table))
	db.flight.Record(obs.EvWriteConflict, 0, 0, sql.Norm(table))
}

// FlightRecorder exposes the always-on event ring (`\flight`, tests).
func (db *DB) FlightRecorder() *obs.FlightRecorder { return db.flight }

// Waits exposes the live wait-event table. External retry loops use it
// to record WaitWriteConflictBackoff around their backoff sleeps, so
// retry burden shows up in the same breakdown as engine-internal waits.
func (db *DB) Waits() *obs.WaitStats { return &db.waits }

// LOBStore exposes the database LOB store.
func (db *DB) LOBStore() *loblib.LOBStore { return db.lobs }

// TxnEvents exposes the database-event registry (§5): handlers fire on
// every commit/rollback in the database.
func (db *DB) TxnEvents() *txn.Manager { return db.txns }

// Workspace exposes the scan-context workspace (tests check for leaks).
func (db *DB) Workspace() *extidx.Workspace { return db.ws }

// Checkpoint snapshots the dictionary, flushes all dirty pages to the
// backend (making the on-disk image reopenable), and — once the page
// file is durably in sync — truncates the WAL, which the flush just made
// redundant. Checkpoint must not run while a write transaction is open:
// the flush writes every dirty page, and under redo-only logging an
// uncommitted page on disk would have no undo to remove it. That rule is
// enforced, not assumed — Checkpoint holds write admission exclusively
// for its whole run and returns ErrTxnOpen when any writer is admitted.
// TryLock alone is not sufficient: a transaction upgrading its shared
// admission to exclusive releases the lock entirely before re-acquiring,
// so Checkpoint additionally refuses while the admitted map is non-empty
// — the upgrader stays in the map across its release/re-acquire gap even
// though it momentarily holds no lock. With admission held and no
// transaction admitted, every frame owner has finished (commit sweeps
// disown on logging, admission release orphans the rest before letting
// go), so the owner-0 sweep below covers everything dirty.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return db.SaveSnapshot()
	}
	if !db.admission.TryLock() {
		db.noteCheckpointBlocked()
		return ErrTxnOpen
	}
	defer db.admission.Unlock()
	db.admitMu.Lock()
	open := len(db.admitted)
	db.admitMu.Unlock()
	if open > 0 {
		db.noteCheckpointBlocked()
		return ErrTxnOpen // a shared→exclusive upgrade is mid-gap
	}
	db.flight.Record(obs.EvCheckpoint, 0, 0, "")
	if invariantsEnabled {
		if owned := db.pager.OwnedPages(); len(owned) > 0 {
			panic(fmt.Sprintf("engine: checkpoint with admission held found owned frames %v", owned))
		}
	}
	exit := db.enterMutation(0, false)
	err := db.writeSnapshotChain()
	exit()
	if err != nil {
		return err
	}
	// Log the chain pages (and every orphan still unlogged) with a
	// commit record before the flush: a crash that tears the page file
	// mid-flush is then repaired by replay, chain included.
	if err := db.logCommit(0, true); err != nil {
		return err
	}
	if err := db.pager.FlushAll(); err != nil {
		return err
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.walBroken {
		return ErrWALBroken // never truncate a log we could not write
	}
	return db.wal.Reset()
}

func (db *DB) parse(text string) (sql.Statement, error) {
	db.parseMu.Lock()
	st, ok := db.parseCache[text]
	db.parseMu.Unlock()
	if ok {
		return st, nil
	}
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	db.parseMu.Lock()
	if len(db.parseCache) > 4096 { // bound the cache
		db.parseCache = make(map[string]sql.Statement)
	}
	db.parseCache[text] = st
	db.parseMu.Unlock()
	return st, nil
}

// resolveKind maps a SQL type name to a value kind, consulting the
// catalog for user-defined object types.
func (db *DB) resolveKind(typeName string) (types.Kind, string, error) {
	if _, ok := db.cat.TypeDesc(typeName); ok {
		return types.KindObject, typeName, nil
	}
	k, err := types.ParseKind(typeName)
	if err != nil {
		return types.KindNull, "", err
	}
	return k, typeName, nil
}

// fmtErr wraps an error with statement context.
func fmtErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", op, err)
}
