// Package engine ties the substrates into a working database: it owns the
// pager, transaction and lock managers, catalog, LOB store and the
// extensible-indexing registry, and implements SQL execution — DDL
// (including the paper's CREATE OPERATOR / CREATE INDEXTYPE / domain
// CREATE INDEX), DML with implicit index maintenance (built-in indexes
// and ODCIIndex callbacks), and cost-based query planning that can choose
// a domain index scan and drive it as a pipelined row source.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/extidx"
	"repro/internal/loblib"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Options configures Open.
type Options struct {
	// Path is the database file; empty means a fully in-memory database.
	Path string
	// CacheSizePages is the buffer-pool capacity (default 4096 pages,
	// i.e. 32 MiB).
	CacheSizePages int
}

// DB is one database instance.
type DB struct {
	pager *storage.Pager
	txns  *txn.Manager
	locks *txn.LockManager
	cat   *catalog.Catalog
	reg   *extidx.Registry
	lobs  *loblib.LOBStore
	ws    *extidx.Workspace

	parseMu    sync.Mutex
	parseCache map[string]sql.Statement

	// DefaultFetchBatch is the maxRows passed to ODCIIndexFetch when the
	// plan does not override it (the paper's batch interface; E8 sweeps
	// this).
	DefaultFetchBatch int

	// fetchCalls counts ODCIIndexFetch interface crossings across all
	// domain scans (batching instrumentation).
	fetchCalls int64
}

// FetchCalls reports the cumulative number of ODCIIndexFetch invocations.
func (db *DB) FetchCalls() int64 { return atomic.LoadInt64(&db.fetchCalls) }

// ResetFetchCalls zeroes the ODCIIndexFetch counter.
func (db *DB) ResetFetchCalls() { atomic.StoreInt64(&db.fetchCalls, 0) }

// Open creates or opens a database.
func Open(opts Options) (*DB, error) {
	var backend storage.Backend
	if opts.Path == "" {
		backend = storage.NewMemBackend()
	} else {
		fb, err := storage.OpenFileBackend(opts.Path)
		if err != nil {
			return nil, err
		}
		backend = fb
	}
	cache := opts.CacheSizePages
	if cache <= 0 {
		cache = 4096
	}
	pager := storage.NewPager(backend, cache)
	db := &DB{
		pager:             pager,
		txns:              txn.NewManager(),
		locks:             txn.NewLockManager(),
		cat:               catalog.New(),
		reg:               extidx.NewRegistry(),
		lobs:              loblib.NewLOBStore(pager),
		ws:                extidx.NewWorkspace(),
		parseCache:        make(map[string]sql.Statement),
		DefaultFetchBatch: 64,
	}
	if backend.NumPages() == 0 {
		if err := db.initSuperblock(); err != nil {
			return nil, err
		}
	} else if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	return db, nil
}

// Close snapshots the dictionary, flushes, and closes the database.
func (db *DB) Close() error {
	if err := db.SaveSnapshot(); err != nil {
		return err
	}
	return db.pager.Close()
}

// Registry exposes the extensible-indexing registry so cartridges can
// register their IndexMethods, StatsMethods and functions before issuing
// the SQL DDL that references them.
func (db *DB) Registry() *extidx.Registry { return db.reg }

// Catalog exposes the data dictionary (read-mostly: tools and tests).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// PagerStats returns buffer-pool I/O counters (benchmarks read these to
// reproduce the paper's logical-I/O claims).
func (db *DB) PagerStats() storage.Stats { return db.pager.Stats() }

// ResetPagerStats zeroes the I/O counters.
func (db *DB) ResetPagerStats() { db.pager.ResetStats() }

// LOBStore exposes the database LOB store.
func (db *DB) LOBStore() *loblib.LOBStore { return db.lobs }

// TxnEvents exposes the database-event registry (§5): handlers fire on
// every commit/rollback in the database.
func (db *DB) TxnEvents() *txn.Manager { return db.txns }

// Workspace exposes the scan-context workspace (tests check for leaks).
func (db *DB) Workspace() *extidx.Workspace { return db.ws }

// Checkpoint snapshots the dictionary and flushes all dirty pages to the
// backend, making the on-disk image reopenable.
func (db *DB) Checkpoint() error { return db.SaveSnapshot() }

func (db *DB) parse(text string) (sql.Statement, error) {
	db.parseMu.Lock()
	st, ok := db.parseCache[text]
	db.parseMu.Unlock()
	if ok {
		return st, nil
	}
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	db.parseMu.Lock()
	if len(db.parseCache) > 4096 { // bound the cache
		db.parseCache = make(map[string]sql.Statement)
	}
	db.parseCache[text] = st
	db.parseMu.Unlock()
	return st, nil
}

// resolveKind maps a SQL type name to a value kind, consulting the
// catalog for user-defined object types.
func (db *DB) resolveKind(typeName string) (types.Kind, string, error) {
	if _, ok := db.cat.TypeDesc(typeName); ok {
		return types.KindObject, typeName, nil
	}
	k, err := types.ParseKind(typeName)
	if err != nil {
		return types.KindNull, "", err
	}
	return k, typeName, nil
}

// fmtErr wraps an error with statement context.
func fmtErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", op, err)
}
