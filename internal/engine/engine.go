// Package engine ties the substrates into a working database: it owns the
// pager, transaction and lock managers, catalog, LOB store and the
// extensible-indexing registry, and implements SQL execution — DDL
// (including the paper's CREATE OPERATOR / CREATE INDEXTYPE / domain
// CREATE INDEX), DML with implicit index maintenance (built-in indexes
// and ODCIIndex callbacks), and cost-based query planning that can choose
// a domain index scan and drive it as a pipelined row source.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/extidx"
	"repro/internal/loblib"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Options configures Open.
type Options struct {
	// Path is the database file; empty means a fully in-memory database.
	Path string
	// CacheSizePages is the buffer-pool capacity (default 4096 pages,
	// i.e. 32 MiB).
	CacheSizePages int
	// Backend, when non-nil, overrides the page store (fault-injection
	// harnesses wrap a backend and pass it here; Path is then ignored for
	// the page space).
	Backend storage.Backend
	// WALSink, when non-nil, overrides the redo-log store. When nil, a
	// file database logs to Path+".wal" and an in-memory database runs
	// without a WAL (there is no durable medium to recover from) unless a
	// sink is injected.
	WALSink storage.WALSink
	// DisableWAL turns write-ahead logging off entirely, restoring the
	// pre-WAL behaviour (durability only at Checkpoint/Close).
	DisableWAL bool
}

// DB is one database instance.
type DB struct {
	pager *storage.Pager
	txns  *txn.Manager
	locks *txn.LockManager
	cat   *catalog.Catalog
	reg   *extidx.Registry
	lobs  *loblib.LOBStore
	ws    *extidx.Workspace

	parseMu    sync.Mutex
	parseCache map[string]sql.Statement

	// DefaultFetchBatch is the maxRows passed to ODCIIndexFetch (and the
	// chunk size of domain scans). 0 lets the planner pick a batch size
	// from the cardinality estimate (the paper's batch interface; E8 and
	// B1 sweep this).
	DefaultFetchBatch int

	// wal is the redo log, nil when logging is disabled. walMu serializes
	// commit-record appends and checkpoint truncation against each other.
	// walBroken is set after any failed log write: the log tail is then
	// suspect, so further commits are refused until the database is
	// reopened and recovers from the durable prefix. (The suspect tail
	// itself is truncated back to the last synced length at failure time,
	// so an unacknowledged commit record cannot replay as committed.)
	wal       *storage.WAL
	walMu     sync.Mutex
	walBroken bool
	recovery  storage.RecoveryInfo

	// writeGate admits one open writing transaction at a time when a WAL
	// governs the database. Redo-only commit logging sweeps every
	// unlogged dirty buffer frame under the committing transaction's
	// commit record (Pager.AppendUnlogged); that sweep equals the
	// committing transaction's write set only if no other transaction has
	// modifications in flight. Write statements acquire the gate before
	// taking any table lock (a gate waiter never holds table locks, so no
	// lock-order cycle exists) and hold it until their transaction
	// commits or rolls back. Checkpoint requires the gate to be free.
	// writeTxn, guarded by gateMu, identifies the holder so statements of
	// the same transaction (including callback sessions, which share it)
	// re-enter without blocking.
	//
	// The intended global acquisition order — gate first, then the WAL,
	// then the pager, backends last — is declared below; the lockorder
	// analyzer checks every observed acquisition path against it and
	// reports any cycle in the whole-program lock graph.
	//
	//vetx:lockorder engine.DB.writeGate < engine.DB.gateMu
	//vetx:lockorder engine.DB.writeGate < engine.DB.walMu
	//vetx:lockorder engine.DB.walMu < storage.Pager.mu
	//vetx:lockorder storage.Pager.mu < storage.FileBackend.mu
	//vetx:lockorder storage.Pager.mu < storage.MemBackend.mu
	writeGate sync.Mutex
	gateMu    sync.Mutex
	writeTxn  *txn.Txn

	// Observability aggregates (see metrics.go). planner counts costed
	// plans and chosen path kinds; odci counts and times every callback
	// crossing the ODCI boundary (the registry's instrumented wrappers
	// feed it). The engine-level counters below are plain obs.Counters so
	// the untraced query path pays a handful of atomic adds and nothing
	// else.
	planner obs.PlannerStats
	odci    obs.ODCIStats

	// execStats aggregates parallel-execution activity: exchanges
	// started, morsels dispatched to workers, cumulative worker busy
	// time. Exchange operators feed it from worker goroutines (the
	// counters are atomic).
	execStats obs.ExecStats

	selects       obs.Counter // SELECTs executed (any session)
	tracedQueries obs.Counter // SELECTs run with a QueryTrace attached
	slowQueries   obs.Counter // traces handed to the slow-query hook
	gateWaits     obs.Counter // write-gate acquisitions that could block
	gateWaitNanos obs.Counter // cumulative wall time spent acquiring it

	// hookCfg holds the slow-query hook; atomic so the per-SELECT check
	// is a single pointer load when no hook is installed.
	hookCfg atomic.Pointer[slowHookCfg]
}

// slowHookCfg pairs the slow-query threshold with its callback.
type slowHookCfg struct {
	threshold time.Duration
	fn        func(*obs.QueryTrace)
}

// ErrWALBroken is returned by commits after a write-ahead-log write has
// failed; reopen the database to recover.
var ErrWALBroken = errors.New("engine: write-ahead log failed; reopen to recover")

// ErrTxnOpen is returned by Checkpoint (and therefore Close) when a
// write transaction is still open: flushing its uncommitted pages would
// durably commit them with no undo, so the checkpoint is refused.
var ErrTxnOpen = errors.New("engine: checkpoint refused: a write transaction is open")

// acquireWriteGate blocks until t holds the database write gate, making
// the single-open-writer assumption behind the commit sweep real rather
// than assumed. Re-entrant per transaction (callback sessions share the
// invoking transaction). The gate is released when the transaction
// commits or rolls back — including the rollback a failed commit sink
// triggers.
func (db *DB) acquireWriteGate(t *txn.Txn) {
	if db.wal == nil || t == nil {
		return
	}
	db.gateMu.Lock()
	held := db.writeTxn == t
	db.gateMu.Unlock()
	if held {
		return
	}
	waitStart := time.Now()
	db.writeGate.Lock()
	db.gateWaits.Inc()
	db.gateWaitNanos.Add(time.Since(waitStart).Nanoseconds())
	db.gateMu.Lock()
	db.writeTxn = t
	db.gateMu.Unlock()
	release := func() {
		db.gateMu.Lock()
		db.writeTxn = nil
		db.gateMu.Unlock()
		db.writeGate.Unlock()
	}
	t.OnCommit(release)
	t.OnRollback(release)
	//vetx:ignore lockbalance -- gate ownership transfers to the transaction; commit/rollback handlers release it
}

// RecoveryInfo reports what WAL replay did during Open (zero value when
// no WAL is configured or the log was empty).
func (db *DB) RecoveryInfo() storage.RecoveryInfo { return db.recovery }

// WALEnabled reports whether a write-ahead log governs this database.
func (db *DB) WALEnabled() bool { return db.wal != nil }

// FetchCalls reports the cumulative number of ODCIIndexFetch invocations,
// read from the ODCI boundary observer (every registry-resolved scan is
// instrumented; per-scan counts live on exec.DomainScan.Fetches).
func (db *DB) FetchCalls() int64 { return db.odci.Calls(obs.CbFetch) }

// ResetFetchCalls zeroes the ODCIIndexFetch counter.
func (db *DB) ResetFetchCalls() { db.odci.ResetCallback(obs.CbFetch) }

// Open creates or opens a database. When a WAL governs the page space
// (file databases by default, or any injected WALSink), Open first
// replays the log — applying every committed transaction's page images
// to the backend and discarding uncommitted ones — then checkpoints and
// truncates the log, so a crash during recovery simply replays again.
func Open(opts Options) (*DB, error) {
	backend := opts.Backend
	if backend == nil {
		if opts.Path == "" {
			backend = storage.NewMemBackend()
		} else {
			fb, err := storage.OpenFileBackend(opts.Path)
			if err != nil {
				return nil, err
			}
			backend = fb
		}
	}
	sink := opts.WALSink
	if sink == nil && !opts.DisableWAL && opts.Path != "" && opts.Backend == nil {
		fs, err := storage.OpenFileWALSink(opts.Path + ".wal")
		if err != nil {
			return nil, err
		}
		sink = fs
	}
	if opts.DisableWAL {
		sink = nil
	}
	var recovery storage.RecoveryInfo
	if sink != nil {
		info, err := storage.ReplayWAL(backend, sink)
		if err != nil {
			return nil, fmt.Errorf("engine: wal recovery: %w", err)
		}
		recovery = info
	}
	cache := opts.CacheSizePages
	if cache <= 0 {
		cache = 4096
	}
	pager := storage.NewPager(backend, cache)
	db := &DB{
		pager:             pager,
		txns:              txn.NewManager(),
		locks:             txn.NewLockManager(),
		cat:               catalog.New(),
		reg:               extidx.NewRegistry(),
		lobs:              loblib.NewLOBStore(pager),
		ws:                extidx.NewWorkspace(),
		parseCache:        make(map[string]sql.Statement),
		DefaultFetchBatch: 64,
		recovery:          recovery,
	}
	// Every IndexMethods/StatsMethods resolve from here on hands out an
	// instrumented wrapper feeding the per-callback counters.
	db.reg.SetObserver(&db.odci)
	if sink != nil {
		db.wal = storage.NewWAL(sink, recovery.LastSeq, recovery.IntactBytes)
		// Redo-only logging is correct only if uncommitted changes never
		// reach the page file: no-steal buffer pool.
		pager.SetNoSteal(true)
	}
	if backend.NumPages() == 0 {
		if err := db.initSuperblock(); err != nil {
			return nil, err
		}
	} else if recovery.Snapshot != nil {
		// The newest committed dictionary snapshot rides in the WAL commit
		// record and supersedes the (possibly stale) page-0 snapshot chain.
		if err := db.applySnapshotBytes(recovery.Snapshot); err != nil {
			return nil, err
		}
	} else if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	if db.wal != nil {
		db.txns.SetCommitSink(db.logCommit)
		if recovery.Records > 0 || recovery.TornTail {
			// Fold the replayed state into the page file and truncate the
			// log so it does not grow across restarts.
			if err := db.Checkpoint(); err != nil {
				return nil, fmt.Errorf("engine: post-recovery checkpoint: %w", err)
			}
		}
	}
	return db, nil
}

// Close checkpoints (snapshot + flush + WAL truncation) and closes the
// database. Close attempts every cleanup step even when an earlier one
// fails, folding the errors together. When the checkpoint is refused or
// fails under a WAL (open write transaction, broken or partially
// flushed log), the buffer pool is discarded instead of flushed —
// flushing could push uncommitted or unlogged pages to the page file —
// and the next Open recovers committed state from the log.
func (db *DB) Close() error {
	err := db.Checkpoint()
	if err != nil && db.wal != nil {
		err = errors.Join(err, db.pager.CloseDiscard())
	} else {
		err = errors.Join(err, db.pager.Close())
	}
	if db.wal != nil {
		// One more attempt to cut a suspect tail left by a failed commit
		// whose truncation also failed; idempotent when already clean.
		db.walMu.Lock()
		err = errors.Join(err, db.wal.TruncateToSynced())
		db.walMu.Unlock()
		err = errors.Join(err, db.wal.Close())
	}
	return err
}

// logCommit is the transaction manager's commit sink: it appends the
// image of every page dirtied since it was last logged, then a commit
// record carrying the dictionary snapshot, and fsyncs the log. Only
// after it returns nil is the commit acknowledged. A transaction that
// dirtied no pages skips the log entirely — unless it is forceDurable
// (DDL changes only the dictionary, which rides in the commit record).
func (db *DB) logCommit(txID int64, forceDurable bool) error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.walBroken {
		return ErrWALBroken
	}
	// fail poisons the WAL and cuts the log back to the last successfully
	// synced length: the bytes past it may or may not have reached
	// durable media, and a commit record the client is about to see fail
	// must never replay as committed after reopening. If even the
	// truncation fails, Close retries it; the poisoning stands either way.
	fail := func(err error) error {
		db.walBroken = true
		if terr := db.wal.TruncateToSynced(); terr != nil {
			return errors.Join(err, fmt.Errorf("engine: discard suspect wal tail: %w", terr))
		}
		return err
	}
	n, err := db.pager.AppendUnlogged(db.wal)
	if err != nil {
		return fail(err)
	}
	if n == 0 && !forceDurable {
		return nil
	}
	snap, err := db.snapshotBytes()
	if err != nil {
		return fail(err)
	}
	if err := db.wal.AppendCommit(txID, snap); err != nil {
		return fail(err)
	}
	if err := db.wal.Sync(); err != nil {
		return fail(err)
	}
	return nil
}

// Registry exposes the extensible-indexing registry so cartridges can
// register their IndexMethods, StatsMethods and functions before issuing
// the SQL DDL that references them.
func (db *DB) Registry() *extidx.Registry { return db.reg }

// Catalog exposes the data dictionary (read-mostly: tools and tests).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// PagerStats returns buffer-pool I/O counters (benchmarks read these to
// reproduce the paper's logical-I/O claims), with the WAL counters
// folded in when a log governs the database.
func (db *DB) PagerStats() storage.Stats {
	s := db.pager.Stats()
	if db.wal != nil {
		db.wal.AddStats(&s)
	}
	return s
}

// ResetPagerStats zeroes the I/O and WAL counters.
func (db *DB) ResetPagerStats() {
	db.pager.ResetStats()
	if db.wal != nil {
		db.wal.ResetStats()
	}
}

// LOBStore exposes the database LOB store.
func (db *DB) LOBStore() *loblib.LOBStore { return db.lobs }

// TxnEvents exposes the database-event registry (§5): handlers fire on
// every commit/rollback in the database.
func (db *DB) TxnEvents() *txn.Manager { return db.txns }

// Workspace exposes the scan-context workspace (tests check for leaks).
func (db *DB) Workspace() *extidx.Workspace { return db.ws }

// Checkpoint snapshots the dictionary, flushes all dirty pages to the
// backend (making the on-disk image reopenable), and — once the page
// file is durably in sync — truncates the WAL, which the flush just made
// redundant. Checkpoint must not run while a write transaction is open:
// the flush writes every dirty page, and under redo-only logging an
// uncommitted page on disk would have no undo to remove it. That rule is
// enforced, not assumed — Checkpoint holds the write gate for its whole
// run and returns ErrTxnOpen when a writer has it.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return db.SaveSnapshot()
	}
	if !db.writeGate.TryLock() {
		return ErrTxnOpen
	}
	defer db.writeGate.Unlock()
	if err := db.writeSnapshotChain(); err != nil {
		return err
	}
	// Log the chain pages (and everything else still unlogged) with a
	// commit record before the flush: a crash that tears the page file
	// mid-flush is then repaired by replay, chain included.
	if err := db.logCommit(0, true); err != nil {
		return err
	}
	if err := db.pager.FlushAll(); err != nil {
		return err
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.walBroken {
		return ErrWALBroken // never truncate a log we could not write
	}
	return db.wal.Reset()
}

func (db *DB) parse(text string) (sql.Statement, error) {
	db.parseMu.Lock()
	st, ok := db.parseCache[text]
	db.parseMu.Unlock()
	if ok {
		return st, nil
	}
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	db.parseMu.Lock()
	if len(db.parseCache) > 4096 { // bound the cache
		db.parseCache = make(map[string]sql.Statement)
	}
	db.parseCache[text] = st
	db.parseMu.Unlock()
	return st, nil
}

// resolveKind maps a SQL type name to a value kind, consulting the
// catalog for user-defined object types.
func (db *DB) resolveKind(typeName string) (types.Kind, string, error) {
	if _, ok := db.cat.TypeDesc(typeName); ok {
		return types.KindObject, typeName, nil
	}
	k, err := types.ParseKind(typeName)
	if err != nil {
		return types.KindNull, "", err
	}
	return k, typeName, nil
}

// fmtErr wraps an error with statement context.
func fmtErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", op, err)
}
