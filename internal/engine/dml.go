package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/extidx"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// btreeEntryKey builds the B-tree key for a secondary index entry: the
// order-preserving column key, suffixed with the RID for non-unique
// indexes so duplicates coexist.
func btreeEntryKey(ix *catalog.Index, v types.Value, rid storage.RID) []byte {
	key := types.EncodeKey(nil, v)
	if !ix.Unique {
		key = append(key, 0x00)
		key = append(key, types.EncodeKey(nil, types.Int(rid.Int64()))...)
	}
	return key
}

// builtinIndexInsert adds an entry to a built-in index, recording undo on
// t when non-nil.
func (s *Session) builtinIndexInsert(ix *catalog.Index, v types.Value, rid storage.RID, t *txn.Txn) error {
	ix.ObserveValue(v)
	switch ix.Kind {
	case catalog.BTreeIndex:
		key := btreeEntryKey(ix, v, rid)
		if ix.Unique {
			if _, exists, err := ix.BT.Get(key); err != nil {
				return err
			} else if exists {
				return fmt.Errorf("engine: unique constraint violated on index %s (value %s)", ix.Name, v)
			}
		}
		val := types.EncodeRow(nil, []types.Value{types.Int(rid.Int64())})
		if err := ix.BT.Set(key, val); err != nil {
			return err
		}
		if t != nil {
			bt := ix.BT
			k := append([]byte(nil), key...)
			t.Record(txn.UndoFunc(func() error {
				_, err := bt.Delete(k)
				return err
			}))
		}
	case catalog.HashIndex:
		key := types.EncodeKey(nil, v)
		val := types.EncodeRow(nil, []types.Value{types.Int(rid.Int64())})
		if err := ix.HX.Insert(key, val); err != nil {
			return err
		}
		if t != nil {
			hx := ix.HX
			k, vv := append([]byte(nil), key...), append([]byte(nil), val...)
			t.Record(txn.UndoFunc(func() error {
				_, err := hx.Delete(k, vv)
				return err
			}))
		}
	case catalog.BitmapIndex:
		key := types.EncodeKey(nil, v)
		ix.BM.Insert(key, uint64(rid.Int64()))
		if t != nil {
			bm := ix.BM
			k := append([]byte(nil), key...)
			pos := uint64(rid.Int64())
			t.Record(txn.UndoFunc(func() error {
				bm.Delete(k, pos)
				return nil
			}))
		}
	}
	return nil
}

// builtinIndexDelete removes an entry from a built-in index, recording
// undo on t when non-nil.
func (s *Session) builtinIndexDelete(ix *catalog.Index, v types.Value, rid storage.RID, t *txn.Txn) error {
	switch ix.Kind {
	case catalog.BTreeIndex:
		key := btreeEntryKey(ix, v, rid)
		if _, err := ix.BT.Delete(key); err != nil {
			return err
		}
		if t != nil {
			bt := ix.BT
			k := append([]byte(nil), key...)
			val := types.EncodeRow(nil, []types.Value{types.Int(rid.Int64())})
			t.Record(txn.UndoFunc(func() error { return bt.Set(k, val) }))
		}
	case catalog.HashIndex:
		key := types.EncodeKey(nil, v)
		val := types.EncodeRow(nil, []types.Value{types.Int(rid.Int64())})
		if _, err := ix.HX.Delete(key, val); err != nil {
			return err
		}
		if t != nil {
			hx := ix.HX
			k, vv := append([]byte(nil), key...), append([]byte(nil), val...)
			t.Record(txn.UndoFunc(func() error { return hx.Insert(k, vv) }))
		}
	case catalog.BitmapIndex:
		key := types.EncodeKey(nil, v)
		ix.BM.Delete(key, uint64(rid.Int64()))
		if t != nil {
			bm := ix.BM
			k := append([]byte(nil), key...)
			pos := uint64(rid.Int64())
			t.Record(txn.UndoFunc(func() error { bm.Insert(k, pos); return nil }))
		}
	}
	return nil
}

// validateValue checks a value against a column definition.
func (s *Session) validateValue(tbl *catalog.Table, col catalog.Column, v types.Value) error {
	if v.IsNull() {
		return nil
	}
	switch col.Kind {
	case types.KindObject:
		td, ok := s.db.cat.TypeDesc(col.TypeName)
		if !ok {
			return fmt.Errorf("engine: column %s has unknown type %s", col.Name, col.TypeName)
		}
		return td.Validate(v)
	case types.KindArray:
		if v.Kind() != types.KindArray {
			return fmt.Errorf("engine: column %s expects VARRAY, got %s", col.Name, v.Kind())
		}
	default:
		if v.Kind() != col.Kind {
			return fmt.Errorf("engine: column %s expects %s, got %s", col.Name, col.Kind, v.Kind())
		}
	}
	return nil
}

// maintainDomainInsert invokes ODCIIndexInsert for every domain index on
// the affected column.
func (s *Session) maintainDomain(tbl *catalog.Table, fn func(m extidx.IndexMethods, srv extidx.Server, info extidx.IndexInfo, ix *catalog.Index) error) error {
	for _, ix := range s.db.cat.TableIndexes(tbl.Name) {
		if ix.Kind != catalog.DomainIndex {
			continue
		}
		m, _, err := s.indexMethodsFor(ix)
		if err != nil {
			return err
		}
		srv := s.server(extidx.ModeMaintenance, ix.Table)
		if err := fn(m, srv, infoFor(ix, tbl), ix); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) execInsert(x *sql.Insert, params []types.Value) (Result, error) {
	release := s.admitWrite(x.Table)
	defer release()
	unlock := s.lockTables(nil, []string{x.Table})
	defer unlock()
	tbl, ok := s.db.cat.Table(x.Table)
	if !ok {
		return Result{}, fmt.Errorf("engine: table %s does not exist", x.Table)
	}
	// Column mapping.
	colPos := make([]int, 0, len(tbl.Cols))
	if len(x.Cols) == 0 {
		for i := range tbl.Cols {
			colPos = append(colPos, i)
		}
	} else {
		for _, cn := range x.Cols {
			p := tbl.ColIndex(cn)
			if p < 0 {
				return Result{}, fmt.Errorf("engine: column %s does not exist in %s", cn, x.Table)
			}
			colPos = append(colPos, p)
		}
	}
	t, finish := s.begin()
	var inserted int64
	err := s.runWrite(t, finish, tbl.Name, func() error {
		emptySchema := &exec.Schema{}
		for _, rowExprs := range x.Rows {
			if len(rowExprs) != len(colPos) {
				return fmt.Errorf("engine: INSERT has %d values for %d columns", len(rowExprs), len(colPos))
			}
			row := make([]types.Value, len(tbl.Cols))
			for i, e := range rowExprs {
				c, err := exec.Compile(e, emptySchema, s, params)
				if err != nil {
					return err
				}
				v, err := c(nil)
				if err != nil {
					return err
				}
				p := colPos[i]
				if err := s.validateValue(tbl, tbl.Cols[p], v); err != nil {
					return err
				}
				row[p] = v
			}
			if err := s.insertRow(tbl, row, t); err != nil {
				return err
			}
			inserted++
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: inserted}, nil
}

// InsertRow inserts one fully-formed row programmatically (bypassing SQL
// parsing, used for object/collection values that have no literal syntax)
// with the same validation and index maintenance as INSERT.
func (s *Session) InsertRow(table string, row []types.Value) error {
	release := s.admitWrite(table)
	defer release()
	unlock := s.lockTables(nil, []string{table})
	defer unlock()
	tbl, ok := s.db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", table)
	}
	if len(row) != len(tbl.Cols) {
		return fmt.Errorf("engine: row has %d values for %d columns", len(row), len(tbl.Cols))
	}
	full := make([]types.Value, len(tbl.Cols))
	copy(full, row)
	for i := range full {
		if err := s.validateValue(tbl, tbl.Cols[i], full[i]); err != nil {
			return err
		}
	}
	t, finish := s.begin()
	return s.runWrite(t, finish, tbl.Name, func() error {
		return s.insertRow(tbl, full, t)
	})
}

// insertRow writes one row and maintains every index; it is also the
// entry point for programmatic inserts from the facade.
func (s *Session) insertRow(tbl *catalog.Table, row []types.Value, t *txn.Txn) error {
	img := types.EncodeRow(nil, row)
	rid, err := tbl.Heap.Insert(img)
	if err != nil {
		return err
	}
	heap := tbl.Heap
	t.Record(txn.UndoFunc(func() error {
		tbl.RowCount--
		return heap.Delete(rid)
	}))
	tbl.RowCount++
	for _, ix := range s.db.cat.TableIndexes(tbl.Name) {
		if ix.Kind == catalog.DomainIndex {
			continue
		}
		if err := s.builtinIndexInsert(ix, row[ix.ColPos], rid, t); err != nil {
			return err
		}
	}
	return s.maintainDomain(tbl, func(m extidx.IndexMethods, srv extidx.Server, info extidx.IndexInfo, ix *catalog.Index) error {
		if err := m.Insert(srv, info, rid.Int64(), row[ix.ColPos]); err != nil {
			return fmt.Errorf("ODCIIndexInsert(%s): %w", ix.Name, err)
		}
		return nil
	})
}

// matchTargets runs the WHERE clause over the table and returns matching
// (rid, row) pairs. Updates and deletes materialize their target list
// before mutating, so the scan is stable.
func (s *Session) matchTargets(tbl *catalog.Table, where sql.Expr, params []types.Value) ([]storage.RID, [][]types.Value, error) {
	schema := &exec.Schema{}
	for _, c := range tbl.Cols {
		schema.Cols = append(schema.Cols, exec.SchemaCol{Qualifier: tbl.Name, Name: c.Name})
	}
	schema.Cols = append(schema.Cols, exec.SchemaCol{Qualifier: tbl.Name, Name: exec.RowIDColumn})
	var pred exec.Compiled
	if where != nil {
		var err error
		pred, err = exec.Compile(where, schema, s, params)
		if err != nil {
			return nil, nil, err
		}
	}
	var rids []storage.RID
	var rows [][]types.Value
	err := tbl.Heap.Scan(func(rid storage.RID, img []byte) (bool, error) {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return false, err
		}
		if pred != nil {
			full := append(append([]types.Value(nil), row...), types.Int(rid.Int64()))
			v, err := pred(full)
			if err != nil {
				return false, err
			}
			if !exec.Truthy(v) {
				return true, nil
			}
		}
		rids = append(rids, rid)
		rows = append(rows, row)
		return true, nil
	})
	return rids, rows, err
}

func (s *Session) execUpdate(x *sql.Update, params []types.Value) (Result, error) {
	release := s.admitWrite(x.Table)
	defer release()
	unlock := s.lockTables(nil, []string{x.Table})
	defer unlock()
	tbl, ok := s.db.cat.Table(x.Table)
	if !ok {
		return Result{}, fmt.Errorf("engine: table %s does not exist", x.Table)
	}
	setPos := make([]int, len(x.Cols))
	for i, cn := range x.Cols {
		p := tbl.ColIndex(cn)
		if p < 0 {
			return Result{}, fmt.Errorf("engine: column %s does not exist in %s", cn, x.Table)
		}
		setPos[i] = p
	}
	schema := &exec.Schema{}
	for _, c := range tbl.Cols {
		schema.Cols = append(schema.Cols, exec.SchemaCol{Qualifier: tbl.Name, Name: c.Name})
	}
	schema.Cols = append(schema.Cols, exec.SchemaCol{Qualifier: tbl.Name, Name: exec.RowIDColumn})
	setExprs := make([]exec.Compiled, len(x.Exprs))
	for i, e := range x.Exprs {
		c, err := exec.Compile(e, schema, s, params)
		if err != nil {
			return Result{}, err
		}
		setExprs[i] = c
	}

	rids, rows, err := s.matchTargets(tbl, x.Where, params)
	if err != nil {
		return Result{}, err
	}
	t, finish := s.begin()
	var updated int64
	err = s.runWrite(t, finish, tbl.Name, func() error {
		for i, rid := range rids {
			oldRow := rows[i]
			full := append(append([]types.Value(nil), oldRow...), types.Int(rid.Int64()))
			newRow := append([]types.Value(nil), oldRow...)
			touched := map[int]bool{}
			for j, ce := range setExprs {
				v, err := ce(full)
				if err != nil {
					return err
				}
				p := setPos[j]
				if err := s.validateValue(tbl, tbl.Cols[p], v); err != nil {
					return err
				}
				newRow[p] = v
				touched[p] = true
			}
			// Maintain built-in indexes on touched columns.
			for _, ix := range s.db.cat.TableIndexes(tbl.Name) {
				if ix.Kind == catalog.DomainIndex || !touched[ix.ColPos] {
					continue
				}
				if types.Identical(oldRow[ix.ColPos], newRow[ix.ColPos]) {
					continue
				}
				if err := s.builtinIndexDelete(ix, oldRow[ix.ColPos], rid, t); err != nil {
					return err
				}
				if err := s.builtinIndexInsert(ix, newRow[ix.ColPos], rid, t); err != nil {
					return err
				}
			}
			// Write the new image (undo restores the old one).
			heap := tbl.Heap
			oldImg := types.EncodeRow(nil, oldRow)
			if err := heap.Update(rid, types.EncodeRow(nil, newRow)); err != nil {
				return err
			}
			rid := rid
			t.Record(txn.UndoFunc(func() error { return heap.Update(rid, oldImg) }))
			// Domain index maintenance with old and new values.
			err := s.maintainDomain(tbl, func(m extidx.IndexMethods, srv extidx.Server, info extidx.IndexInfo, ix *catalog.Index) error {
				if !touched[ix.ColPos] {
					return nil
				}
				if err := m.Update(srv, info, rid.Int64(), oldRow[ix.ColPos], newRow[ix.ColPos]); err != nil {
					return fmt.Errorf("ODCIIndexUpdate(%s): %w", ix.Name, err)
				}
				return nil
			})
			if err != nil {
				return err
			}
			updated++
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: updated}, nil
}

func (s *Session) execDelete(x *sql.Delete, params []types.Value) (Result, error) {
	release := s.admitWrite(x.Table)
	defer release()
	unlock := s.lockTables(nil, []string{x.Table})
	defer unlock()
	tbl, ok := s.db.cat.Table(x.Table)
	if !ok {
		return Result{}, fmt.Errorf("engine: table %s does not exist", x.Table)
	}
	rids, rows, err := s.matchTargets(tbl, x.Where, params)
	if err != nil {
		return Result{}, err
	}
	t, finish := s.begin()
	var deleted int64
	err = s.runWrite(t, finish, tbl.Name, func() error {
		for i, rid := range rids {
			oldRow := rows[i]
			for _, ix := range s.db.cat.TableIndexes(tbl.Name) {
				if ix.Kind == catalog.DomainIndex {
					continue
				}
				if err := s.builtinIndexDelete(ix, oldRow[ix.ColPos], rid, t); err != nil {
					return err
				}
			}
			heap := tbl.Heap
			oldImg := types.EncodeRow(nil, oldRow)
			if err := heap.Delete(rid); err != nil {
				return err
			}
			rid := rid
			t.Record(txn.UndoFunc(func() error {
				tbl.RowCount++
				return heap.InsertAt(rid, oldImg)
			}))
			tbl.RowCount--
			err := s.maintainDomain(tbl, func(m extidx.IndexMethods, srv extidx.Server, info extidx.IndexInfo, ix *catalog.Index) error {
				if err := m.Delete(srv, info, rid.Int64(), oldRow[ix.ColPos]); err != nil {
					return fmt.Errorf("ODCIIndexDelete(%s): %w", ix.Name, err)
				}
				return nil
			})
			if err != nil {
				return err
			}
			deleted++
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: deleted}, nil
}
