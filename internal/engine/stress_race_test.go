package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/types"
)

// TestConcurrentSessionsStress drives several sessions against one engine
// at once: writers run DML on the indexed base table (each statement
// fires the domain-index maintenance callbacks, which read and write the
// DR$ index-data tables through server callbacks), while readers
// interleave domain-index scans, full scans, and EXPLAINs of the same
// operator predicate. CI runs it under -race with -tags invariants, so it
// doubles as the detector for unsynchronized pager/heap access, leaked
// pins (checked when newDB's cleanup closes the pager), leaked workspace
// handles, and B+-tree structural corruption.
func TestConcurrentSessionsStress(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{}
	setup := setupKwCartridge(t, db, m)
	mustExec(t, setup, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)

	writers, readers, iters := 4, 4, 40
	if testing.Short() {
		writers, readers, iters = 2, 2, 10
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < iters; i++ {
				id := int64(100000 + w*10000 + i)
				body := fmt.Sprintf("stress unix oracle doc writer%d iter%d", w, i)
				if _, err := s.Exec(`INSERT INTO Docs VALUES (?, ?)`, types.Int(id), types.Str(body)); err != nil {
					errc <- fmt.Errorf("writer %d insert %d: %w", w, id, err)
					return
				}
				switch i % 4 {
				case 1:
					if _, err := s.Exec(`UPDATE Docs SET body = ? WHERE id = ?`,
						types.Str(fmt.Sprintf("rewritten kernel database writer%d iter%d", w, i)), types.Int(id)); err != nil {
						errc <- fmt.Errorf("writer %d update %d: %w", w, id, err)
						return
					}
				case 2:
					if _, err := s.Exec(`DELETE FROM Docs WHERE id = ?`, types.Int(id)); err != nil {
						errc <- fmt.Errorf("writer %d delete %d: %w", w, id, err)
						return
					}
				}
			}
		}(w)
	}

	keywords := []string{"unix", "oracle", "kernel", "database"}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < iters; i++ {
				kw := keywords[(r+i)%len(keywords)]
				// Domain-index scan through the ODCIIndex Start/Fetch/Close
				// callbacks.
				s.SetForcedPath(ForceDomainScan)
				rs, err := s.Query(`SELECT id FROM Docs WHERE HasKw(body, ?) = 1`, types.Str(kw))
				if err != nil {
					errc <- fmt.Errorf("reader %d domain scan %q: %w", r, kw, err)
					return
				}
				domainHits := len(rs.Rows)
				// Run the same predicate as a full scan too. The table can
				// change between the two statements (writers are live), so
				// equality is only asserted after the workers quiesce; here
				// both scans just have to succeed.
				s.SetForcedPath(ForceFullScan)
				rs, err = s.Query(`SELECT COUNT(*) FROM Docs WHERE HasKw(body, ?) = 1`, types.Str(kw))
				if err != nil {
					errc <- fmt.Errorf("reader %d full scan %q: %w", r, kw, err)
					return
				}
				if int(rs.Rows[0][0].Int64()) < 0 || domainHits < 0 {
					errc <- fmt.Errorf("reader %d got negative count", r)
					return
				}
				s.SetForcedPath(ForceAuto)
				if i%7 == 0 {
					if _, err := s.Query(`EXPLAIN SELECT id FROM Docs WHERE HasKw(body, ?) = 1`, types.Str(kw)); err != nil {
						errc <- fmt.Errorf("reader %d explain: %w", r, err)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Quiesced: no scan contexts may survive their statements.
	if live := db.Workspace().Live(); live != 0 {
		t.Errorf("workspace leaked %d scan handles", live)
	}

	// Deterministic final check: with writers quiesced, the domain index
	// and a full scan must agree exactly for every keyword.
	s := db.NewSession()
	for _, kw := range keywords {
		s.SetForcedPath(ForceDomainScan)
		idx := mustQuery(t, s, `SELECT COUNT(*) FROM Docs WHERE HasKw(body, ?) = 1`, types.Str(kw)).Rows[0][0].Int64()
		s.SetForcedPath(ForceFullScan)
		full := mustQuery(t, s, `SELECT COUNT(*) FROM Docs WHERE HasKw(body, ?) = 1`, types.Str(kw)).Rows[0][0].Int64()
		if idx != full {
			t.Errorf("keyword %q: domain index sees %d rows, full scan sees %d", kw, idx, full)
		}
	}
}
