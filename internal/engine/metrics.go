package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
)

// EngineStats is the engine-level slice of a Metrics snapshot.
type EngineStats struct {
	// Selects counts executed SELECT statements (including callback-
	// session queries issued by cartridge code).
	Selects int64
	// TracedQueries counts SELECTs that ran with a QueryTrace attached
	// (EXPLAIN ANALYZE, QueryTraced, or a slow-query hook).
	TracedQueries int64
	// SlowQueries counts traces handed to the slow-query hook.
	SlowQueries int64
	// AdmitWaits / AdmitWaitNanos count writer-admission acquisitions and
	// the cumulative wall time spent waiting to be admitted (shared for
	// ordinary DML, exclusive for DDL; see DB.admission).
	AdmitWaits     int64
	AdmitWaitNanos int64
	// MutWaits / MutWaitNanos count mutation-window entries and the
	// cumulative wall time spent waiting for the window (see DB.mutMu).
	MutWaits     int64
	MutWaitNanos int64
	// FetchCalls counts ODCIIndexFetch interface crossings observed by
	// domain scans (same counter as DB.FetchCalls).
	FetchCalls int64
	// BgCheckpoints counts checkpoints completed by the background
	// checkpointer; BgCheckpointSkips counts its attempts that were
	// refused (a writer was admitted) or failed.
	BgCheckpoints    int64
	BgCheckpointSkips int64
}

// WorkspaceStats is the scan-context workspace slice of a Metrics
// snapshot (§2.2.3 return-handle transport).
type WorkspaceStats struct {
	Live      int // handles currently parked (nonzero implies a leak at rest)
	HighWater int // maximum simultaneous handles
}

// Metrics is a full engine observability snapshot: every layer's
// counters in one inert struct. Collect it with DB.Metrics.
type Metrics struct {
	Pager storage.Stats
	// PagerShards is the per-shard buffer-pool breakdown (fetch/hit
	// counters per shard latch): skew across entries exposes a hot
	// shard that the aggregate hit rate would hide.
	PagerShards []storage.ShardStats
	Txn         txn.Stats
	Planner   obs.PlannerSnapshot
	ODCI      obs.ODCISnapshot
	Engine    EngineStats
	Exec      obs.ExecSnapshot
	Workspace WorkspaceStats
	// CommitGroups is the distribution of commits acknowledged per shared
	// fsync (group-commit batch sizes). Mean() > 1 means fsyncs are being
	// shared; zero-valued when no WAL governs the database.
	CommitGroups obs.HistogramSnapshot
	// Waits is the wait-event table: per-class blocked-time counts,
	// totals and maxima, plus the all-class duration histogram.
	Waits obs.WaitSnapshot
	// Conflicts counts write-conflict aborts, broken down per table.
	Conflicts obs.ConflictSnapshot
	// FlightEvents is the total number of events the flight recorder has
	// ever seen (a liveness gauge — the ring itself is read via
	// DB.FlightRecorder).
	FlightEvents int64
}

// Metrics snapshots every observability counter in the database.
func (db *DB) Metrics() Metrics {
	live, high := db.ws.Stats()
	waits := db.waits.Snapshot()
	admShared := waits.Classes[obs.WaitAdmissionShared.String()]
	admExcl := waits.Classes[obs.WaitAdmissionExclusive.String()]
	window := waits.Classes[obs.WaitMutationWindow.String()]
	var bgDone, bgSkip int64
	if db.ckpt != nil {
		bgDone = db.ckpt.checkpoints.Load()
		bgSkip = db.ckpt.skips.Load()
	}
	return Metrics{
		Pager:       db.PagerStats(),
		PagerShards: db.pager.ShardStats(),
		Txn:         db.txns.Stats(),
		Planner: db.planner.Snapshot(),
		ODCI:    db.odci.Snapshot(),
		Engine: EngineStats{
			Selects:       db.selects.Load(),
			TracedQueries: db.tracedQueries.Load(),
			SlowQueries:   db.slowQueries.Load(),
			// The legacy admission/window gauges are views over the wait
			// table: the class counts are the acquisition counts.
			AdmitWaits:     admShared.Count + admExcl.Count,
			AdmitWaitNanos: admShared.TotalNanos + admExcl.TotalNanos,
			MutWaits:          window.Count,
			MutWaitNanos:      window.TotalNanos,
			FetchCalls:        db.FetchCalls(),
			BgCheckpoints:     bgDone,
			BgCheckpointSkips: bgSkip,
		},
		Exec:         db.execStats.Snapshot(),
		Workspace:    WorkspaceStats{Live: live, HighWater: high},
		CommitGroups: db.commitGroups(),
		Waits:        waits,
		Conflicts:    db.conflicts.Snapshot(),
		FlightEvents: int64(db.flight.Len()),
	}
}

// minShardHitRate / maxShardHitRate bound the per-shard hit rates (the
// skew line in the \stats report).
func minShardHitRate(shards []storage.ShardStats) float64 {
	lo := 1.0
	for _, s := range shards {
		if r := s.HitRate(); r < lo {
			lo = r
		}
	}
	return lo
}

func maxShardHitRate(shards []storage.ShardStats) float64 {
	hi := 0.0
	for _, s := range shards {
		if r := s.HitRate(); r > hi {
			hi = r
		}
	}
	return hi
}

// commitGroups snapshots the WAL's group-size histogram (zero when no WAL
// governs the database).
func (db *DB) commitGroups() obs.HistogramSnapshot {
	if db.wal == nil {
		return obs.HistogramSnapshot{}
	}
	return db.wal.GroupSizes()
}

// ResetMetrics zeroes every observability counter (benchmark phases).
// The workspace high-water mark is not reset: it tracks the lifetime
// maximum, which leak checks rely on.
func (db *DB) ResetMetrics() {
	db.ResetPagerStats()
	db.txns.ResetStats()
	db.planner.Reset()
	db.odci.Reset()
	db.selects.Store(0)
	db.tracedQueries.Store(0)
	db.slowQueries.Store(0)
	db.waits.Reset()
	db.conflicts.Reset()
	db.execStats.Reset()
	db.ResetFetchCalls()
	if db.ckpt != nil {
		db.ckpt.checkpoints.Store(0)
		db.ckpt.skips.Store(0)
	}
}

// SetSlowQueryHook installs fn to receive the QueryTrace of every
// non-callback SELECT whose wall time reaches threshold. While a hook is
// installed every query is traced (candidates recorded, operators
// instrumented), so install it only when the overhead is acceptable.
// A nil fn removes the hook.
func (db *DB) SetSlowQueryHook(threshold time.Duration, fn func(*obs.QueryTrace)) {
	if fn == nil {
		db.hookCfg.Store(nil)
		return
	}
	db.hookCfg.Store(&slowHookCfg{threshold: threshold, fn: fn})
}

// Merge folds another snapshot into this one (benchrunner aggregates
// per-experiment snapshots this way). Counters add; the workspace gauges
// take the maximum.
func (m *Metrics) Merge(o Metrics) {
	m.Pager.Fetches += o.Pager.Fetches
	m.Pager.Hits += o.Pager.Hits
	m.Pager.Misses += o.Pager.Misses
	m.Pager.Writes += o.Pager.Writes
	m.Pager.Evictions += o.Pager.Evictions
	m.Pager.Allocs += o.Pager.Allocs
	m.Pager.WALRecords += o.Pager.WALRecords
	m.Pager.WALPages += o.Pager.WALPages
	m.Pager.WALCommits += o.Pager.WALCommits
	m.Pager.WALBytes += o.Pager.WALBytes
	m.Pager.WALSyncs += o.Pager.WALSyncs
	m.Pager.WALGroupedCommits += o.Pager.WALGroupedCommits
	m.Pager.LockWaits += o.Pager.LockWaits
	m.Pager.LockWaitNanos += o.Pager.LockWaitNanos
	for len(m.PagerShards) < len(o.PagerShards) {
		m.PagerShards = append(m.PagerShards, storage.ShardStats{})
	}
	for i := range o.PagerShards {
		m.PagerShards[i].Fetches += o.PagerShards[i].Fetches
		m.PagerShards[i].Hits += o.PagerShards[i].Hits
		m.PagerShards[i].Misses += o.PagerShards[i].Misses
		m.PagerShards[i].Writes += o.PagerShards[i].Writes
		m.PagerShards[i].Evictions += o.PagerShards[i].Evictions
	}
	m.Txn.Begins += o.Txn.Begins
	m.Txn.Commits += o.Txn.Commits
	m.Txn.Rollbacks += o.Txn.Rollbacks
	m.Planner.Merge(o.Planner)
	m.ODCI.Merge(o.ODCI)
	m.Engine.Selects += o.Engine.Selects
	m.Engine.TracedQueries += o.Engine.TracedQueries
	m.Engine.SlowQueries += o.Engine.SlowQueries
	m.Engine.AdmitWaits += o.Engine.AdmitWaits
	m.Engine.AdmitWaitNanos += o.Engine.AdmitWaitNanos
	m.Engine.MutWaits += o.Engine.MutWaits
	m.Engine.MutWaitNanos += o.Engine.MutWaitNanos
	m.Engine.FetchCalls += o.Engine.FetchCalls
	m.Engine.BgCheckpoints += o.Engine.BgCheckpoints
	m.Engine.BgCheckpointSkips += o.Engine.BgCheckpointSkips
	m.CommitGroups.Merge(o.CommitGroups)
	m.Exec.Merge(o.Exec)
	m.Waits.Merge(o.Waits)
	m.Conflicts.Merge(o.Conflicts)
	m.FlightEvents += o.FlightEvents
	if o.Workspace.Live > m.Workspace.Live {
		m.Workspace.Live = o.Workspace.Live
	}
	if o.Workspace.HighWater > m.Workspace.HighWater {
		m.Workspace.HighWater = o.Workspace.HighWater
	}
}

// String renders the snapshot as the sectioned report the \stats
// meta-command prints.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pager:   fetches=%d hits=%d misses=%d (hit rate %.1f%%)\n",
		m.Pager.Fetches, m.Pager.Hits, m.Pager.Misses, m.Pager.HitRate()*100)
	fmt.Fprintf(&b, "         writes=%d evictions=%d allocs=%d\n",
		m.Pager.Writes, m.Pager.Evictions, m.Pager.Allocs)
	fmt.Fprintf(&b, "         lockWaits=%d lockWaitTime=%s\n",
		m.Pager.LockWaits, time.Duration(m.Pager.LockWaitNanos).Round(time.Microsecond))
	if len(m.PagerShards) > 0 {
		fmt.Fprintf(&b, "shards:  %d · hit-rate skew %.1f%%..%.1f%%\n",
			len(m.PagerShards), minShardHitRate(m.PagerShards)*100, maxShardHitRate(m.PagerShards)*100)
		for i, s := range m.PagerShards {
			fmt.Fprintf(&b, "  shard %2d: fetches=%d hits=%d misses=%d writes=%d evictions=%d (hit rate %.1f%%)\n",
				i, s.Fetches, s.Hits, s.Misses, s.Writes, s.Evictions, s.HitRate()*100)
		}
	}
	fmt.Fprintf(&b, "wal:     records=%d pages=%d commits=%d bytes=%d syncs=%d\n",
		m.Pager.WALRecords, m.Pager.WALPages, m.Pager.WALCommits, m.Pager.WALBytes, m.Pager.WALSyncs)
	if m.Pager.WALSyncs > 0 {
		fmt.Fprintf(&b, "         groupedCommits=%d commitsPerFsync=%.2f\n",
			m.Pager.WALGroupedCommits, float64(m.Pager.WALGroupedCommits)/float64(m.Pager.WALSyncs))
	}
	if m.CommitGroups.Count > 0 {
		fmt.Fprintf(&b, "         commitGroups=%d meanGroupSize=%.2f\n",
			m.CommitGroups.Count, m.CommitGroups.Mean())
	}
	fmt.Fprintf(&b, "txn:     begins=%d commits=%d rollbacks=%d\n",
		m.Txn.Begins, m.Txn.Commits, m.Txn.Rollbacks)
	fmt.Fprintf(&b, "engine:  selects=%d traced=%d slow=%d fetchCalls=%d\n",
		m.Engine.Selects, m.Engine.TracedQueries, m.Engine.SlowQueries, m.Engine.FetchCalls)
	if m.Engine.BgCheckpoints != 0 || m.Engine.BgCheckpointSkips != 0 {
		fmt.Fprintf(&b, "         bgCheckpoints=%d bgCheckpointSkips=%d\n",
			m.Engine.BgCheckpoints, m.Engine.BgCheckpointSkips)
	}
	fmt.Fprintf(&b, "         admission waits=%d waitTime=%s window waits=%d waitTime=%s\n",
		m.Engine.AdmitWaits, time.Duration(m.Engine.AdmitWaitNanos).Round(time.Microsecond),
		m.Engine.MutWaits, time.Duration(m.Engine.MutWaitNanos).Round(time.Microsecond))
	fmt.Fprintf(&b, "exec:    %s\n", m.Exec.String())
	fmt.Fprintf(&b, "planner: plans=%d candidates=%d", m.Planner.Plans, m.Planner.Candidates)
	if len(m.Planner.ChosenByKind) > 0 {
		kinds := make([]string, 0, len(m.Planner.ChosenByKind))
		for k := range m.Planner.ChosenByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString(" chosen:")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, m.Planner.ChosenByKind[k])
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "workspace: live=%d highWater=%d\n", m.Workspace.Live, m.Workspace.HighWater)
	fmt.Fprintf(&b, "conflicts: %s\n", m.Conflicts.String())
	fmt.Fprintf(&b, "flight:  events=%d\n", m.FlightEvents)
	if len(m.Waits.Classes) > 0 {
		b.WriteString("waits (top by total time):\n")
		for _, line := range strings.Split(m.Waits.String(), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		fmt.Fprintf(&b, "  all-class histogram: waits=%d totalBlocked=%s\n",
			m.Waits.Durations.Count, time.Duration(m.Waits.Durations.Sum).Round(time.Microsecond))
	}
	if len(m.ODCI.Callbacks) > 0 {
		b.WriteString("odci callbacks:\n")
		for _, line := range strings.Split(strings.TrimRight(m.ODCI.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
