package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/extidx"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// Forced access paths (benchmark and test hooks; Oracle would use hints).
const (
	ForceAuto       = ""
	ForceFullScan   = "FULL"
	ForceDomainScan = "DOMAIN"
	ForceIndexScan  = "INDEX"
)

// ForcedPath overrides the optimizer's access-path choice for single-table
// queries, like an Oracle hint. Empty string restores cost-based choice.
func (s *Session) SetForcedPath(p string) { s.forced = p }

// splitConjuncts flattens the AND tree of a WHERE clause.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(sql.Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// constEval evaluates an expression that must not reference columns
// (literals, binds, arithmetic over them); ok=false if it references rows.
func (s *Session) constEval(e sql.Expr, params []types.Value) (types.Value, bool) {
	c, err := exec.Compile(e, &exec.Schema{}, s, params)
	if err != nil {
		return types.Null(), false
	}
	v, err := c(nil)
	if err != nil {
		return types.Null(), false
	}
	return v, true
}

// tableBinding is one FROM entry resolved against the catalog.
type tableBinding struct {
	ref    sql.TableRef
	tbl    *catalog.Table
	schema *exec.Schema
	alias  string // effective qualifier
}

func (s *Session) bindTable(ref sql.TableRef) (*tableBinding, error) {
	tbl, ok := s.db.cat.Table(ref.Name)
	if !ok {
		return nil, fmt.Errorf("engine: table %s does not exist", ref.Name)
	}
	alias := ref.Alias
	if alias == "" {
		alias = ref.Name
	}
	sch := &exec.Schema{}
	for _, c := range tbl.Cols {
		sch.Cols = append(sch.Cols, exec.SchemaCol{Qualifier: alias, Name: c.Name})
	}
	sch.Cols = append(sch.Cols, exec.SchemaCol{Qualifier: alias, Name: exec.RowIDColumn})
	return &tableBinding{ref: ref, tbl: tbl, schema: sch, alias: alias}, nil
}

// ---------------------------------------------------------------------------
// Predicate classification

// sargInfo is a sargable built-in predicate: col relop const.
type sargInfo struct {
	colName  string
	op       string // =, <, <=, >, >=
	value    types.Value
	loValue  types.Value // BETWEEN
	hiValue  types.Value
	isRange2 bool // two-sided range from BETWEEN
}

// classifySarg recognizes col-relop-const and BETWEEN forms on the given
// table binding.
func (s *Session) classifySarg(e sql.Expr, tb *tableBinding, params []types.Value) (sargInfo, bool) {
	flip := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
	if bt, ok := e.(sql.Between); ok && !bt.Not {
		cr, ok := bt.X.(sql.ColumnRef)
		if !ok || !s.refOnTable(cr, tb) {
			return sargInfo{}, false
		}
		lo, ok1 := s.constEval(bt.Lo, params)
		hi, ok2 := s.constEval(bt.Hi, params)
		if !ok1 || !ok2 {
			return sargInfo{}, false
		}
		return sargInfo{colName: cr.Name, op: "BETWEEN", loValue: lo, hiValue: hi, isRange2: true}, true
	}
	b, ok := e.(sql.Binary)
	if !ok {
		return sargInfo{}, false
	}
	op := b.Op
	if _, rel := flip[op]; !rel {
		return sargInfo{}, false
	}
	if cr, ok := b.L.(sql.ColumnRef); ok && s.refOnTable(cr, tb) {
		if v, cok := s.constEval(b.R, params); cok {
			return sargInfo{colName: cr.Name, op: op, value: v}, true
		}
	}
	if cr, ok := b.R.(sql.ColumnRef); ok && s.refOnTable(cr, tb) {
		if v, cok := s.constEval(b.L, params); cok {
			return sargInfo{colName: cr.Name, op: flip[op], value: v}, true
		}
	}
	return sargInfo{}, false
}

func (s *Session) refOnTable(cr sql.ColumnRef, tb *tableBinding) bool {
	if cr.Table != "" && !strings.EqualFold(cr.Table, tb.alias) {
		return false
	}
	return tb.tbl.ColIndex(cr.Name) >= 0 || strings.EqualFold(cr.Name, exec.RowIDColumn)
}

// opPredicate is a user-defined-operator predicate eligible for domain
// index evaluation: op(col, args...) relop bound.
type opPredicate struct {
	opName  string
	colName string
	args    []types.Value // non-column arguments (label removed)
	relop   extidx.CompareOp
	bound   types.Value
	label   int64
}

// classifyOpPred recognizes user-operator predicates in the forms
// op(col, ...), op(col, ...) relop const, and const relop op(col, ...).
func (s *Session) classifyOpPred(e sql.Expr, tb *tableBinding, params []types.Value) (opPredicate, bool) {
	call, relop, bound, ok := s.splitOpComparison(e, params)
	if !ok {
		return opPredicate{}, false
	}
	op, ok := s.db.cat.Operator(call.Name)
	if !ok || op.AncillaryTo != "" {
		return opPredicate{}, false
	}
	if len(call.Args) == 0 {
		return opPredicate{}, false
	}
	cr, ok := call.Args[0].(sql.ColumnRef)
	if !ok || !s.refOnTable(cr, tb) {
		return opPredicate{}, false
	}
	pred := opPredicate{opName: op.Name, colName: cr.Name, relop: relop, bound: bound}
	rest := call.Args[1:]
	// A trailing numeric literal beyond the binding arity is an ancillary
	// label (Contains(col, 'kw', 1) pairs with Score(1)).
	arity := len(call.Args)
	maxArity := 0
	for _, b := range op.Bindings {
		if len(b.ArgKinds) > maxArity {
			maxArity = len(b.ArgKinds)
		}
	}
	if arity == maxArity+1 && len(rest) > 0 {
		if lit, ok := rest[len(rest)-1].(sql.Literal); ok && lit.Value.Kind() == types.KindNumber {
			pred.label = lit.Value.Int64()
			rest = rest[:len(rest)-1]
		}
	}
	for _, a := range rest {
		v, cok := s.constEval(a, params)
		if !cok {
			return opPredicate{}, false // non-constant extra args: functional only
		}
		pred.args = append(pred.args, v)
	}
	return pred, true
}

// splitOpComparison separates an operator call from its return-value
// bound. A bare call means "operator is true", normalized to = 1 per the
// paper's footnote.
func (s *Session) splitOpComparison(e sql.Expr, params []types.Value) (sql.Call, extidx.CompareOp, types.Value, bool) {
	if c, ok := e.(sql.Call); ok {
		return c, extidx.CmpEQ, types.Num(1), true
	}
	b, ok := e.(sql.Binary)
	if !ok {
		return sql.Call{}, 0, types.Null(), false
	}
	rel := map[string]extidx.CompareOp{"=": extidx.CmpEQ, "<": extidx.CmpLT, "<=": extidx.CmpLE, ">": extidx.CmpGT, ">=": extidx.CmpGE}
	flip := map[extidx.CompareOp]extidx.CompareOp{extidx.CmpEQ: extidx.CmpEQ, extidx.CmpLT: extidx.CmpGT, extidx.CmpLE: extidx.CmpGE, extidx.CmpGT: extidx.CmpLT, extidx.CmpGE: extidx.CmpLE}
	ro, ok := rel[b.Op]
	if !ok {
		return sql.Call{}, 0, types.Null(), false
	}
	if c, ok := b.L.(sql.Call); ok {
		if v, cok := s.constEval(b.R, params); cok {
			return c, ro, v, true
		}
	}
	if c, ok := b.R.(sql.Call); ok {
		if v, cok := s.constEval(b.L, params); cok {
			return c, flip[ro], v, true
		}
	}
	return sql.Call{}, 0, types.Null(), false
}

// ---------------------------------------------------------------------------
// Access paths

type accessPath struct {
	kind     string
	desc     string
	cost     float64
	estRows  float64
	sel      float64 // predicate selectivity behind estRows; < 0 unknown
	batch    int     // fetch/chunk batch size picked for the scan; 0 = n/a
	consumed int     // index into conjuncts consumed by this path, -1 = none
	parallel int     // degree the access will run at; <= 1 serial
	build    func() (exec.Iterator, error)

	// Parallel eligibility — at most one is set. parHeap marks a full
	// scan splittable into page-range morsels; parDom carries what
	// buildParallelTableAccess needs to open partitioned ODCI scans on a
	// cartridge implementing extidx.ParallelMethods. Paths with neither
	// always build serially.
	parHeap *storage.Heap
	parDom  *domainParallel
}

// domainParallel is the parallel-eligibility record of a DOMAIN path:
// everything needed to open one ODCI scan partition per morsel outside
// the serial build closure.
type domainParallel struct {
	pm    extidx.ParallelMethods
	m     extidx.IndexMethods
	info  extidx.IndexInfo
	call  extidx.OperatorCall
	table string
	heap  *storage.Heap
	batch int
}

// pickFetchBatch chooses the ODCI Fetch batch size (= chunk size) for a
// domain scan: an explicit DB default wins; otherwise grow from 16 by
// doubling until the cardinality estimate is covered, capped at 2048 so
// a bad estimate cannot demand an unbounded batch.
func pickFetchBatch(dflt int, estRows float64) int {
	if dflt > 0 {
		return dflt
	}
	b := 16
	for float64(b) < estRows && b < 2048 {
		b *= 2
	}
	return b
}

// tableStats derives the optimizer inputs.
func tableStats(tbl *catalog.Table) (rows float64, pages float64) {
	rows = float64(tbl.RowCount)
	if rows < 1 {
		rows = 1
	}
	pages = float64(tbl.Heap.NumPages())
	if pages < 1 {
		pages = 1
	}
	return rows, pages
}

const cpuPerRow = 0.01 // full-scan per-row CPU (decode + predicate), in page-cost units

// fullScanPath is always available; conjuncts all become filters above it.
func (s *Session) fullScanPath(tb *tableBinding) accessPath {
	rows, pages := tableStats(tb.tbl)
	return accessPath{
		kind:     "FULL",
		desc:     fmt.Sprintf("TABLE ACCESS FULL %s", strings.ToUpper(tb.tbl.Name)),
		cost:     pages + rows*cpuPerRow,
		estRows:  rows,
		sel:      1,
		batch:    exec.DefaultChunkSize,
		consumed: -1,
		parHeap:  tb.tbl.Heap,
		build: func() (exec.Iterator, error) {
			return exec.NewHeapScan(tb.tbl.Heap)
		},
	}
}

func indexSelectivity(ix *catalog.Index, tbl *catalog.Table, sg sargInfo) float64 {
	rows, _ := tableStats(tbl)
	distinct := float64(ix.DistinctKeys)
	if ix.Kind == catalog.BitmapIndex && ix.BM != nil {
		distinct = float64(ix.BM.Cardinality())
	}
	if distinct <= 0 {
		if ix.Unique {
			distinct = rows
		} else {
			distinct = rows / 10
		}
		if distinct < 1 {
			distinct = 1
		}
	}
	switch sg.op {
	case "=":
		return 1 / distinct
	case "BETWEEN":
		if frac, ok := rangeFraction(ix, sg.loValue, sg.hiValue); ok {
			return frac
		}
		return 0.1
	case "<", "<=":
		if frac, ok := rangeFraction(ix, types.Num(ix.MinVal), sg.value); ok {
			return frac
		}
		return 0.3
	case ">", ">=":
		if frac, ok := rangeFraction(ix, sg.value, types.Num(ix.MaxVal)); ok {
			return frac
		}
		return 0.3
	default:
		return 0.3
	}
}

// rangeFraction estimates range-predicate selectivity from the index's
// observed numeric min/max, assuming a uniform value distribution.
func rangeFraction(ix *catalog.Index, lo, hi types.Value) (float64, bool) {
	if !ix.HasRange || lo.Kind() != types.KindNumber || hi.Kind() != types.KindNumber {
		return 0, false
	}
	span := ix.MaxVal - ix.MinVal
	if span <= 0 {
		return 1, true
	}
	l, h := lo.Float(), hi.Float()
	if l < ix.MinVal {
		l = ix.MinVal
	}
	if h > ix.MaxVal {
		h = ix.MaxVal
	}
	if h < l {
		return 0.0005, true
	}
	frac := (h - l) / span
	if frac < 0.0005 {
		frac = 0.0005
	}
	if frac > 1 {
		frac = 1
	}
	return frac, true
}

// builtinIndexPaths proposes B-tree / hash / bitmap access for sargable
// conjuncts.
func (s *Session) builtinIndexPaths(tb *tableBinding, conjuncts []sql.Expr, params []types.Value) []accessPath {
	var out []accessPath
	rows, _ := tableStats(tb.tbl)
	for ci, e := range conjuncts {
		sg, ok := s.classifySarg(e, tb, params)
		if !ok {
			continue
		}
		for _, ix := range s.db.cat.TableIndexes(tb.tbl.Name) {
			if !strings.EqualFold(ix.Column, sg.colName) {
				continue
			}
			ix := ix
			sg := sg
			ci := ci
			switch ix.Kind {
			case catalog.BTreeIndex:
				sel := indexSelectivity(ix, tb.tbl, sg)
				out = append(out, accessPath{
					kind:     "BTREE",
					desc:     fmt.Sprintf("INDEX %s SCAN %s (%s %s)", ix.Kind, strings.ToUpper(ix.Name), sg.colName, sg.op),
					cost:     3 + sel*rows*1.2,
					estRows:  sel * rows,
					sel:      sel,
					batch:    exec.DefaultChunkSize,
					consumed: ci,
					build:    func() (exec.Iterator, error) { return s.buildBTreeScan(tb, ix, sg) },
				})
			case catalog.HashIndex:
				if sg.op != "=" {
					continue
				}
				sel := indexSelectivity(ix, tb.tbl, sg)
				out = append(out, accessPath{
					kind:     "HASH",
					desc:     fmt.Sprintf("INDEX HASH LOOKUP %s (%s =)", strings.ToUpper(ix.Name), sg.colName),
					cost:     1.5 + sel*rows*1.1,
					estRows:  sel * rows,
					sel:      sel,
					batch:    exec.DefaultChunkSize,
					consumed: ci,
					build:    func() (exec.Iterator, error) { return s.buildHashScan(tb, ix, sg) },
				})
			case catalog.BitmapIndex:
				if sg.op != "=" {
					continue
				}
				sel := indexSelectivity(ix, tb.tbl, sg)
				out = append(out, accessPath{
					kind:     "BITMAP",
					desc:     fmt.Sprintf("BITMAP INDEX %s (%s =)", strings.ToUpper(ix.Name), sg.colName),
					cost:     1 + sel*rows*1.05,
					estRows:  sel * rows,
					sel:      sel,
					batch:    exec.DefaultChunkSize,
					consumed: ci,
					build:    func() (exec.Iterator, error) { return s.buildBitmapScan(tb, ix, sg) },
				})
			}
		}
	}
	return out
}

func (s *Session) buildBTreeScan(tb *tableBinding, ix *catalog.Index, sg sargInfo) (exec.Iterator, error) {
	var rids []int64
	emit := func(val []byte) error {
		row, _, err := types.DecodeRow(val)
		if err != nil {
			return err
		}
		rids = append(rids, row[0].Int64())
		return nil
	}
	var lo, hi types.Value
	loOpen, hiOpen := false, false
	switch sg.op {
	case "=":
		lo, hi = sg.value, sg.value
	case "BETWEEN":
		lo, hi = sg.loValue, sg.hiValue
	case "<":
		hi, hiOpen = sg.value, true
	case "<=":
		hi = sg.value
	case ">":
		lo, loOpen = sg.value, true
	case ">=":
		lo = sg.value
	}
	var start []byte
	if !lo.IsNull() {
		start = types.EncodeKey(nil, lo)
	}
	for it := ix.BT.Seek(start); it.Valid(); it.Next() {
		// Decode the column-value prefix by comparing against bounds; keys
		// are orderable byte strings, so bound checks work on prefixes.
		key := it.Key()
		if !lo.IsNull() && loOpen {
			pfx := types.EncodeKey(nil, lo)
			if len(key) >= len(pfx) && bytesEqual(key[:len(pfx)], pfx) {
				continue
			}
		}
		if !hi.IsNull() {
			pfx := types.EncodeKey(nil, hi)
			cmp := bytesCompare(keyPrefix(key, len(pfx)), pfx)
			if cmp > 0 || (hiOpen && cmp == 0) {
				break
			}
		}
		if err := emit(it.Value()); err != nil {
			return nil, err
		}
	}
	return &exec.RIDFetch{Heap: tb.tbl.Heap, Src: exec.SliceRIDSource(rids), PerRow: s.rowMode}, nil
}

func keyPrefix(key []byte, n int) []byte {
	if len(key) < n {
		return key
	}
	return key[:n]
}

func bytesEqual(a, b []byte) bool { return bytesCompare(a, b) == 0 }

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func (s *Session) buildHashScan(tb *tableBinding, ix *catalog.Index, sg sargInfo) (exec.Iterator, error) {
	vals, err := ix.HX.Lookup(types.EncodeKey(nil, sg.value))
	if err != nil {
		return nil, err
	}
	rids := make([]int64, 0, len(vals))
	for _, v := range vals {
		row, _, err := types.DecodeRow(v)
		if err != nil {
			return nil, err
		}
		rids = append(rids, row[0].Int64())
	}
	return &exec.RIDFetch{Heap: tb.tbl.Heap, Src: exec.SliceRIDSource(rids), PerRow: s.rowMode}, nil
}

func (s *Session) buildBitmapScan(tb *tableBinding, ix *catalog.Index, sg sargInfo) (exec.Iterator, error) {
	bm := ix.BM.Lookup(types.EncodeKey(nil, sg.value))
	var rids []int64
	if bm != nil {
		bm.Each(func(pos uint64) bool {
			rids = append(rids, int64(pos))
			return true
		})
	}
	return &exec.RIDFetch{Heap: tb.tbl.Heap, Src: exec.SliceRIDSource(rids), PerRow: s.rowMode}, nil
}

// domainPaths proposes domain index scans for user-operator conjuncts.
// This is §2.4.2: the predicate qualifies if the operator's first argument
// is a column with a domain index whose indextype supports the operator;
// the choice against other paths is made by cost, consulting the
// user-supplied ODCIStats routines when registered.
func (s *Session) domainPaths(tb *tableBinding, conjuncts []sql.Expr, params []types.Value) []accessPath {
	var out []accessPath
	rows, _ := tableStats(tb.tbl)
	for ci, e := range conjuncts {
		pred, ok := s.classifyOpPred(e, tb, params)
		if !ok {
			continue
		}
		for _, ix := range s.db.cat.TableIndexes(tb.tbl.Name) {
			if ix.Kind != catalog.DomainIndex || !strings.EqualFold(ix.Column, pred.colName) {
				continue
			}
			it, ok := s.db.cat.IndexType(ix.IndexType)
			if !ok || !it.Supports(pred.opName, len(pred.args)+1) {
				continue
			}
			m, _, err := s.indexMethodsFor(ix)
			if err != nil {
				continue
			}
			ix := ix
			pred := pred
			ci := ci
			call := extidx.OperatorCall{Name: pred.opName, Args: pred.args, Relop: pred.relop, Bound: pred.bound}
			info := infoFor(ix, tb.tbl)

			sel := 0.05
			cost := extidx.Cost{IO: 2 + sel*rows, CPU: sel * rows}
			if it.StatsName != "" {
				if sm, ok := s.db.reg.Stats(it.StatsName); ok {
					srv := s.server(extidx.ModeScan, ix.Table)
					if userSel, err := sm.Selectivity(srv, info, call); err == nil && userSel >= 0 && userSel <= 1 {
						sel = userSel
					}
					if userCost, err := sm.IndexCost(srv, info, call, sel); err == nil {
						cost = userCost
					} else {
						cost = extidx.Cost{IO: 2 + sel*rows, CPU: sel * rows}
					}
				}
			}
			batch := pickFetchBatch(s.db.DefaultFetchBatch, sel*rows)
			ap := accessPath{
				kind:     "DOMAIN",
				desc:     fmt.Sprintf("DOMAIN INDEX %s (%s via %s)", strings.ToUpper(ix.Name), pred.opName, ix.IndexType),
				cost:     cost.Total(),
				estRows:  sel * rows,
				sel:      sel,
				batch:    batch,
				consumed: ci,
				build: func() (exec.Iterator, error) {
					return &exec.DomainScan{
						Methods:   m,
						Server:    s.server(extidx.ModeScan, ix.Table),
						Info:      info,
						Call:      call,
						Heap:      tb.tbl.Heap,
						BatchSize: batch,
						Label:     pred.label,
						Sink:      s,
						PerRow:    s.rowMode,
					}, nil
				},
			}
			// Parallel-eligible only when the cartridge opts in via
			// ParallelMethods and the predicate carries no ancillary
			// label: ancillary values flow through the session's
			// unsynchronized per-row store, which worker goroutines
			// must not touch.
			if pm, ok := m.(extidx.ParallelMethods); ok && pred.label == 0 {
				ap.parDom = &domainParallel{
					pm: pm, m: m, info: info, call: call,
					table: ix.Table, heap: tb.tbl.Heap, batch: batch,
				}
			}
			out = append(out, ap)
		}
	}
	return out
}

// rowidPaths proposes direct row access for ROWID = <const> predicates
// (Oracle's TABLE ACCESS BY ROWID): the cheapest possible path.
func (s *Session) rowidPaths(tb *tableBinding, conjuncts []sql.Expr, params []types.Value) []accessPath {
	var out []accessPath
	for ci, e := range conjuncts {
		sg, ok := s.classifySarg(e, tb, params)
		if !ok || sg.op != "=" || !strings.EqualFold(sg.colName, exec.RowIDColumn) {
			continue
		}
		if sg.value.Kind() != types.KindNumber {
			continue
		}
		rid := sg.value.Int64()
		ci := ci
		out = append(out, accessPath{
			kind:     "ROWID",
			desc:     fmt.Sprintf("TABLE ACCESS BY ROWID %s", strings.ToUpper(tb.tbl.Name)),
			cost:     1,
			estRows:  1,
			sel:      -1,
			consumed: ci,
			build: func() (exec.Iterator, error) {
				// Tolerate a stale rowid: an equality probe on a row that
				// no longer exists yields zero rows, not an error.
				if _, err := tb.tbl.Heap.Get(storage.RIDFromInt64(rid)); err != nil {
					return &exec.Slice{}, nil
				}
				return &exec.RIDFetch{Heap: tb.tbl.Heap, Src: exec.SliceRIDSource([]int64{rid})}, nil
			},
		})
	}
	return out
}

// choosePath picks the cheapest path, honoring the forced-path override.
// Every invocation records the candidate count and winning kind into the
// database planner stats; when a query trace is active all candidates
// (with costs and selectivities) are appended to it with the winner
// marked.
func (s *Session) choosePath(tb *tableBinding, conjuncts []sql.Expr, params []types.Value) accessPath {
	full := s.fullScanPath(tb)
	paths := []accessPath{full}
	paths = append(paths, s.rowidPaths(tb, conjuncts, params)...)
	paths = append(paths, s.builtinIndexPaths(tb, conjuncts, params)...)
	paths = append(paths, s.domainPaths(tb, conjuncts, params)...)

	chosen := -1
	switch s.forced {
	case ForceFullScan:
		chosen = 0
	case ForceDomainScan:
		for i, p := range paths {
			if p.kind == "DOMAIN" {
				chosen = i
				break
			}
		}
	case ForceIndexScan:
		bi := 0
		for i, p := range paths {
			if p.kind != "FULL" && p.kind != "DOMAIN" && (paths[bi].kind == "FULL" || p.cost < paths[bi].cost) {
				bi = i
			}
		}
		if paths[bi].kind != "FULL" {
			chosen = bi
		}
	}
	if chosen < 0 {
		chosen = 0
		for i, p := range paths {
			if p.cost < paths[chosen].cost {
				chosen = i
			}
		}
	}
	s.db.planner.RecordPlan(len(paths), paths[chosen].kind)
	if s.trace != nil {
		for i, p := range paths {
			s.trace.Candidates = append(s.trace.Candidates, obs.PlanCandidate{
				Kind:        p.kind,
				Desc:        p.desc,
				Cost:        p.cost,
				EstRows:     p.estRows,
				Selectivity: p.sel,
				Batch:       p.batch,
				Chosen:      i == chosen,
			})
		}
	}
	return paths[chosen]
}

// buildTableAccess assembles the iterator for one table: chosen access
// path plus residual filters, returning also the chosen path for EXPLAIN.
// Always serial — joins and DML scans use it; the single-table SELECT
// branch goes through buildParallelTableAccess instead.
func (s *Session) buildTableAccess(tb *tableBinding, conjuncts []sql.Expr, params []types.Value) (exec.Iterator, accessPath, error) {
	path := s.choosePath(tb, conjuncts, params)
	it, err := s.assembleSerialAccess(tb, path, conjuncts, params)
	return it, path, err
}

// assembleSerialAccess builds the chosen path's iterator with residual
// filters stacked above it, all on the calling goroutine.
func (s *Session) assembleSerialAccess(tb *tableBinding, path accessPath, conjuncts []sql.Expr, params []types.Value) (exec.Iterator, error) {
	it, err := path.build()
	if err != nil {
		return nil, err
	}
	it = s.instrScan(it, path)
	residual := residualConjuncts(conjuncts, path.consumed)
	if len(residual) > 0 {
		pred, err := s.compileConjuncts(residual, tb.schema, params)
		if err != nil {
			return nil, errors.Join(err, it.Close())
		}
		it = &exec.Filter{Child: it, Pred: pred}
		it = s.instr(it, fmt.Sprintf("FILTER (%d predicates)", len(residual)), -1)
	}
	return it, nil
}

// residualConjuncts returns the conjuncts the access path did not
// consume — the predicates that must be filtered above the scan.
func residualConjuncts(conjuncts []sql.Expr, consumed int) []sql.Expr {
	var out []sql.Expr
	for i, e := range conjuncts {
		if i != consumed {
			out = append(out, e)
		}
	}
	return out
}

func (s *Session) compileConjuncts(conjuncts []sql.Expr, schema *exec.Schema, params []types.Value) (exec.Compiled, error) {
	comp := make([]exec.Compiled, len(conjuncts))
	for i, e := range conjuncts {
		c, err := exec.Compile(e, schema, s, params)
		if err != nil {
			return nil, err
		}
		comp[i] = c
	}
	return func(r exec.Row) (types.Value, error) {
		for _, c := range comp {
			v, err := c(r)
			if err != nil {
				return types.Null(), err
			}
			if !exec.Truthy(v) {
				return types.Bool(false), nil
			}
		}
		return types.Bool(true), nil
	}, nil
}

// exprRefsOnly reports whether every column reference in e resolves in
// schema.
func exprRefsOnly(e sql.Expr, schema *exec.Schema) bool {
	ok := true
	var walk func(sql.Expr)
	walk = func(x sql.Expr) {
		if !ok || x == nil {
			return
		}
		switch v := x.(type) {
		case sql.ColumnRef:
			if _, err := schema.Resolve(v.Table, v.Name); err != nil {
				ok = false
			}
		case sql.Unary:
			walk(v.X)
		case sql.Binary:
			walk(v.L)
			walk(v.R)
		case sql.Between:
			walk(v.X)
			walk(v.Lo)
			walk(v.Hi)
		case sql.InList:
			walk(v.X)
			for _, i := range v.List {
				walk(i)
			}
		case sql.IsNull:
			walk(v.X)
		case sql.Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}

// eqJoinKey recognizes outer.col = inner.col conjuncts for index
// nested-loop joins, returning the outer-side expr and inner column name.
func eqJoinKey(e sql.Expr, outerSchema *exec.Schema, inner *tableBinding) (sql.Expr, string, bool) {
	b, ok := e.(sql.Binary)
	if !ok || b.Op != "=" {
		return nil, "", false
	}
	try := func(outerSide, innerSide sql.Expr) (sql.Expr, string, bool) {
		cr, ok := innerSide.(sql.ColumnRef)
		if !ok {
			return nil, "", false
		}
		if cr.Table == "" || !strings.EqualFold(cr.Table, inner.alias) {
			return nil, "", false
		}
		if inner.tbl.ColIndex(cr.Name) < 0 && !strings.EqualFold(cr.Name, exec.RowIDColumn) {
			return nil, "", false
		}
		if !exprRefsOnly(outerSide, outerSchema) {
			return nil, "", false
		}
		return outerSide, cr.Name, true
	}
	if oe, col, ok := try(b.L, b.R); ok {
		return oe, col, ok
	}
	return try(b.R, b.L)
}

// planJoin builds a left-deep nested-loop join over the FROM list in the
// given order, pushing per-table conjuncts down and using inner indexes
// for equality join keys where available.
func (s *Session) planJoin(tbs []*tableBinding, conjuncts []sql.Expr, params []types.Value) (exec.Iterator, *exec.Schema, []string, error) {
	var descs []string
	// Two-table case: if an operator join predicate can use a domain
	// index only with the tables in the opposite order (the operator's
	// first argument is a column of the FROM-list's first table), swap
	// them so the domain index drives the inner side.
	if len(tbs) == 2 && s.forced != ForceFullScan {
		hasDomain := func(outer, inner *tableBinding) bool {
			for _, e := range conjuncts {
				if !exprRefsOnly(e, outer.schema) && !exprRefsOnly(e, inner.schema) {
					if _, ok := s.classifyDomainJoin(e, outer.schema, inner, params); ok {
						return true
					}
				}
			}
			return false
		}
		if !hasDomain(tbs[0], tbs[1]) && hasDomain(tbs[1], tbs[0]) {
			tbs[0], tbs[1] = tbs[1], tbs[0]
		} else if !hasDomain(tbs[0], tbs[1]) && !hasDomain(tbs[1], tbs[0]) {
			// Similarly prefer the order that gives the inner side an
			// equality key (index lookup or ROWID fetch) — e.g. the
			// rewritten pre-8i join `docs d, results r WHERE d.rowid =
			// r.rid` wants the small result table outside and direct row
			// fetches inside.
			hasEq := func(outer, inner *tableBinding) bool {
				for _, e := range conjuncts {
					if exprRefsOnly(e, outer.schema) || exprRefsOnly(e, inner.schema) {
						continue
					}
					_, colName, ok := eqJoinKey(e, outer.schema, inner)
					if !ok {
						continue
					}
					if strings.EqualFold(colName, exec.RowIDColumn) {
						return true
					}
					for _, ix := range s.db.cat.TableIndexes(inner.tbl.Name) {
						if strings.EqualFold(ix.Column, colName) &&
							(ix.Kind == catalog.BTreeIndex || ix.Kind == catalog.HashIndex) {
							return true
						}
					}
				}
				return false
			}
			if !hasEq(tbs[0], tbs[1]) && hasEq(tbs[1], tbs[0]) {
				tbs[0], tbs[1] = tbs[1], tbs[0]
			}
		}
	}
	// Partition conjuncts per table (those referencing only that table).
	used := make([]bool, len(conjuncts))
	perTable := make([][]sql.Expr, len(tbs))
	for ci, e := range conjuncts {
		for ti, tb := range tbs {
			if exprRefsOnly(e, tb.schema) {
				perTable[ti] = append(perTable[ti], e)
				used[ci] = true
				break
			}
		}
	}

	it, path, err := s.buildTableAccess(tbs[0], perTable[0], params)
	if err != nil {
		return nil, nil, nil, err
	}
	descs = append(descs, path.desc)
	curSchema := tbs[0].schema

	for ti := 1; ti < len(tbs); ti++ {
		inner := tbs[ti]
		joined := exec.Concat(curSchema, inner.schema)
		// Find join conjuncts usable now: reference joined schema, not yet
		// used, and not inner-only.
		var joinConj []sql.Expr
		for ci, e := range conjuncts {
			if used[ci] {
				continue
			}
			if exprRefsOnly(e, joined) {
				joinConj = append(joinConj, e)
				used[ci] = true
			}
		}
		// Look for an indexed equality key on the inner table; a ROWID
		// equality join becomes a direct row fetch per outer row.
		var keyExpr sql.Expr
		var keyIdx *catalog.Index
		keyRowid := false
		var residualJoin []sql.Expr
		for _, e := range joinConj {
			if keyIdx == nil && !keyRowid {
				if oe, colName, ok := eqJoinKey(e, curSchema, inner); ok {
					if strings.EqualFold(colName, exec.RowIDColumn) {
						keyExpr, keyRowid = oe, true
						continue
					}
					for _, ix := range s.db.cat.TableIndexes(inner.tbl.Name) {
						if strings.EqualFold(ix.Column, colName) && (ix.Kind == catalog.BTreeIndex || ix.Kind == catalog.HashIndex) {
							keyExpr, keyIdx = oe, ix
							break
						}
					}
					if keyIdx != nil {
						continue
					}
				}
			}
			residualJoin = append(residualJoin, e)
		}

		// When no equality key exists, look for a user-operator join
		// predicate evaluable through a domain index on the inner table:
		// op(inner.col, <outer exprs...>). The paper allows user-defined
		// operators as join conditions; this turns the join into a nested
		// loop with an inner domain-index scan per outer row.
		var domJoin *domainJoinSpec
		if keyIdx == nil {
			var kept []sql.Expr
			for _, e := range residualJoin {
				if domJoin == nil {
					if dj, ok := s.classifyDomainJoin(e, curSchema, inner, params); ok {
						domJoin = dj
						continue
					}
				}
				kept = append(kept, e)
			}
			residualJoin = kept
		}

		innerConj := perTable[ti]
		var innerFactory func(outer exec.Row) (exec.Iterator, error)
		if domJoin != nil {
			innerPred, err := s.compileConjuncts(innerConj, inner.schema, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			dj := domJoin
			innerFactory = func(outer exec.Row) (exec.Iterator, error) {
				args := make([]types.Value, len(dj.argExprs))
				for i, c := range dj.argExprs {
					v, err := c(outer)
					if err != nil {
						return nil, err
					}
					args[i] = v
				}
				var inIt exec.Iterator = &exec.DomainScan{
					Methods:   dj.methods,
					Server:    s.server(extidx.ModeScan, inner.tbl.Name),
					Info:      dj.info,
					Call:      extidx.OperatorCall{Name: dj.opName, Args: args, Relop: dj.relop, Bound: dj.bound},
					Heap:      inner.tbl.Heap,
					BatchSize: pickFetchBatch(s.db.DefaultFetchBatch, 0),
					PerRow:    s.rowMode,
				}
				if len(innerConj) > 0 {
					inIt = &exec.Filter{Child: inIt, Pred: innerPred}
				}
				return inIt, nil
			}
			descs = append(descs, fmt.Sprintf("NESTED LOOPS (DOMAIN INDEX %s ON %s via %s)",
				strings.ToUpper(dj.info.IndexName), strings.ToUpper(inner.tbl.Name), dj.opName))
		} else if keyRowid {
			keyC, err := exec.Compile(keyExpr, curSchema, s, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			innerPred, err := s.compileConjuncts(innerConj, inner.schema, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			heap := inner.tbl.Heap
			innerFactory = func(outer exec.Row) (exec.Iterator, error) {
				kv, err := keyC(outer)
				if err != nil {
					return nil, err
				}
				if kv.Kind() != types.KindNumber {
					return &exec.Slice{}, nil
				}
				rid := kv.Int64()
				if _, err := heap.Get(storage.RIDFromInt64(rid)); err != nil {
					return &exec.Slice{}, nil // stale rowid matches nothing
				}
				var inIt exec.Iterator = &exec.RIDFetch{Heap: heap, Src: exec.SliceRIDSource([]int64{rid})}
				if len(innerConj) > 0 {
					inIt = &exec.Filter{Child: inIt, Pred: innerPred}
				}
				return inIt, nil
			}
			descs = append(descs, fmt.Sprintf("NESTED LOOPS (BY ROWID ON %s)", strings.ToUpper(inner.tbl.Name)))
		} else if keyIdx != nil {
			keyC, err := exec.Compile(keyExpr, curSchema, s, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			innerPred, err := s.compileConjuncts(innerConj, inner.schema, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			ix := keyIdx
			innerFactory = func(outer exec.Row) (exec.Iterator, error) {
				kv, err := keyC(outer)
				if err != nil {
					return nil, err
				}
				var inIt exec.Iterator
				inIt, err = s.buildIndexEqLookup(inner, ix, kv)
				if err != nil {
					return nil, err
				}
				if len(innerConj) > 0 {
					inIt = &exec.Filter{Child: inIt, Pred: innerPred}
				}
				return inIt, nil
			}
			descs = append(descs, fmt.Sprintf("NESTED LOOPS (INDEX %s ON %s)", strings.ToUpper(keyIdx.Name), strings.ToUpper(inner.tbl.Name)))
		} else {
			descs = append(descs, fmt.Sprintf("NESTED LOOPS (FULL %s)", strings.ToUpper(inner.tbl.Name)))
			innerFactory = func(exec.Row) (exec.Iterator, error) {
				// The inner side replans per outer row at execution time;
				// suppress the trace so each row does not append fresh
				// operator nodes (the NESTED LOOPS node above accounts for
				// the whole inner side).
				saved := s.trace
				s.trace = nil
				inIt, _, err := s.buildTableAccess(inner, innerConj, params)
				s.trace = saved
				return inIt, err
			}
		}
		it = &exec.NestedLoopJoin{Outer: it, Inner: innerFactory}
		it = s.instr(it, descs[len(descs)-1], -1)
		if len(residualJoin) > 0 {
			pred, err := s.compileConjuncts(residualJoin, joined, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			it = &exec.Filter{Child: it, Pred: pred}
			it = s.instr(it, fmt.Sprintf("FILTER (%d join predicates)", len(residualJoin)), -1)
		}
		curSchema = joined
	}
	// Any conjunct not yet placed (e.g. referencing no table) filters at
	// the top.
	var rest []sql.Expr
	for ci, e := range conjuncts {
		if !used[ci] {
			rest = append(rest, e)
		}
	}
	if len(rest) > 0 {
		pred, err := s.compileConjuncts(rest, curSchema, params)
		if err != nil {
			return nil, nil, nil, errors.Join(err, it.Close())
		}
		it = &exec.Filter{Child: it, Pred: pred}
	}
	return it, curSchema, descs, nil
}

func (s *Session) buildIndexEqLookup(tb *tableBinding, ix *catalog.Index, v types.Value) (exec.Iterator, error) {
	sg := sargInfo{colName: ix.Column, op: "=", value: v}
	switch ix.Kind {
	case catalog.BTreeIndex:
		return s.buildBTreeScan(tb, ix, sg)
	case catalog.HashIndex:
		return s.buildHashScan(tb, ix, sg)
	default:
		return nil, fmt.Errorf("engine: index %s not usable for lookup", ix.Name)
	}
}

// domainJoinSpec captures an operator join predicate routed to an inner
// domain index.
type domainJoinSpec struct {
	opName   string
	info     extidx.IndexInfo
	methods  extidx.IndexMethods
	argExprs []exec.Compiled // evaluated against the outer row
	relop    extidx.CompareOp
	bound    types.Value
}

// classifyDomainJoin recognizes op(inner.col, outerExpr...) [relop const]
// conjuncts with a supporting domain index on the inner column.
func (s *Session) classifyDomainJoin(e sql.Expr, outerSchema *exec.Schema, inner *tableBinding, params []types.Value) (*domainJoinSpec, bool) {
	call, relop, bound, ok := s.splitOpComparison(e, params)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	op, ok := s.db.cat.Operator(call.Name)
	if !ok || op.AncillaryTo != "" {
		return nil, false
	}
	cr, ok := call.Args[0].(sql.ColumnRef)
	if !ok || !s.refOnTable(cr, inner) {
		return nil, false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, inner.alias) {
		return nil, false
	}
	// All other args must be computable from the outer row (or constants).
	rest := call.Args[1:]
	argExprs := make([]exec.Compiled, len(rest))
	for i, a := range rest {
		if !exprRefsOnly(a, outerSchema) {
			return nil, false
		}
		c, err := exec.Compile(a, outerSchema, s, params)
		if err != nil {
			return nil, false
		}
		argExprs[i] = c
	}
	for _, ix := range s.db.cat.TableIndexes(inner.tbl.Name) {
		if ix.Kind != catalog.DomainIndex || !strings.EqualFold(ix.Column, cr.Name) {
			continue
		}
		it, ok := s.db.cat.IndexType(ix.IndexType)
		if !ok || !it.Supports(op.Name, len(call.Args)) {
			continue
		}
		m, _, err := s.indexMethodsFor(ix)
		if err != nil {
			continue
		}
		return &domainJoinSpec{
			opName:   op.Name,
			info:     infoFor(ix, inner.tbl),
			methods:  m,
			argExprs: argExprs,
			relop:    relop,
			bound:    bound,
		}, true
	}
	return nil, false
}

// aggFns maps SQL aggregate names.
var aggFns = map[string]exec.AggKind{
	"COUNT": exec.AggCount, "SUM": exec.AggSum, "MIN": exec.AggMin,
	"MAX": exec.AggMax, "AVG": exec.AggAvg,
}

func isAggregate(e sql.Expr) bool {
	c, ok := e.(sql.Call)
	if !ok {
		return false
	}
	_, ok = aggFns[strings.ToUpper(c.Name)]
	return ok
}

// containsAggregate walks an expression for aggregate calls.
func containsAggregate(e sql.Expr) bool {
	found := false
	var walk func(sql.Expr)
	walk = func(x sql.Expr) {
		if found || x == nil {
			return
		}
		switch v := x.(type) {
		case sql.Call:
			if isAggregate(v) {
				found = true
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		case sql.Unary:
			walk(v.X)
		case sql.Binary:
			walk(v.L)
			walk(v.R)
		case sql.Between:
			walk(v.X)
			walk(v.Lo)
			walk(v.Hi)
		case sql.InList:
			walk(v.X)
			for _, i := range v.List {
				walk(i)
			}
		case sql.IsNull:
			walk(v.X)
		}
	}
	walk(e)
	return found
}

// rewriteForAgg replaces aggregate calls and group-by expressions inside e
// with references to the aggregate output schema (G<i>/A<j> columns).
// specs accumulates the aggregate list.
func rewriteForAgg(e sql.Expr, groupBy []sql.Expr, specs *[]sql.Call) sql.Expr {
	for i, g := range groupBy {
		if reflect.DeepEqual(e, g) {
			return sql.ColumnRef{Name: fmt.Sprintf("G%d", i)}
		}
	}
	if c, ok := e.(sql.Call); ok && isAggregate(c) {
		for j, sp := range *specs {
			if reflect.DeepEqual(sp, c) {
				return sql.ColumnRef{Name: fmt.Sprintf("A%d", j)}
			}
		}
		*specs = append(*specs, c)
		return sql.ColumnRef{Name: fmt.Sprintf("A%d", len(*specs)-1)}
	}
	switch v := e.(type) {
	case sql.Unary:
		v.X = rewriteForAgg(v.X, groupBy, specs)
		return v
	case sql.Binary:
		v.L = rewriteForAgg(v.L, groupBy, specs)
		v.R = rewriteForAgg(v.R, groupBy, specs)
		return v
	case sql.Between:
		v.X = rewriteForAgg(v.X, groupBy, specs)
		v.Lo = rewriteForAgg(v.Lo, groupBy, specs)
		v.Hi = rewriteForAgg(v.Hi, groupBy, specs)
		return v
	case sql.InList:
		v.X = rewriteForAgg(v.X, groupBy, specs)
		for i := range v.List {
			v.List[i] = rewriteForAgg(v.List[i], groupBy, specs)
		}
		return v
	case sql.IsNull:
		v.X = rewriteForAgg(v.X, groupBy, specs)
		return v
	}
	return e
}
