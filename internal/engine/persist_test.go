package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/types"
)

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.db")

	// Phase 1: build a schema with every index kind plus a domain index.
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE TABLE t(k NUMBER, cat VARCHAR2, v VARCHAR2)`)
	for i := 0; i < 300; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, ?, ?)`,
			types.Int(int64(i)), types.Str([]string{"a", "b", "c"}[i%3]),
			types.Str(strings.Repeat("x", i%20)))
	}
	mustExec(t, s, `CREATE INDEX t_k ON t(k)`)
	mustExec(t, s, `CREATE HASH INDEX t_v ON t(v)`)
	mustExec(t, s, `CREATE BITMAP INDEX t_cat ON t(cat)`)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
	mustExec(t, s, `CREATE TYPE Pt AS OBJECT (x NUMBER, y NUMBER)`)

	// LOB data persists too.
	lobID, err := db.LOBStore().Create()
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := db.LOBStore().Open(lobID)
	blob.WriteAt([]byte("persisted lob payload"), 0)

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reopen; cartridge implementations must be re-registered
	// (process state), everything else comes back from the snapshot.
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg := db2.Registry()
	if err := reg.RegisterFunction("HasKwFn", hasKwFn); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterFunction("KwScoreFn", kwScoreFn); err != nil {
		t.Fatal(err)
	}
	m2 := &kwMethods{failNext: map[string]bool{}}
	if err := reg.RegisterMethods("KwIndexMethods", m2); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterStats("KwStats", kwStats{m: m2}); err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession()

	// Table data and built-in indexes.
	rs := mustQuery(t, s2, `SELECT COUNT(*) FROM t`)
	if rs.Rows[0][0].Int64() != 300 {
		t.Fatalf("row count after reopen = %s", rs.Rows[0][0])
	}
	rs = mustQuery(t, s2, `SELECT COUNT(*) FROM t WHERE k = 123`)
	if rs.Rows[0][0].Int64() != 1 {
		t.Error("b-tree lookup after reopen failed")
	}
	ex := mustQuery(t, s2, `EXPLAIN PLAN FOR SELECT k FROM t WHERE k = 123`)
	if !strings.Contains(ex.Rows[0][0].Text(), "T_K") {
		t.Errorf("b-tree not used after reopen: %v", ex.Rows)
	}
	s2.SetForcedPath(ForceIndexScan)
	rs = mustQuery(t, s2, `SELECT COUNT(*) FROM t WHERE cat = 'b'`)
	if rs.Rows[0][0].Int64() != 100 {
		t.Errorf("bitmap count after reopen = %s", rs.Rows[0][0])
	}
	s2.SetForcedPath(ForceAuto)

	// Domain index: the index data table survived, the indextype resolves
	// against the re-registered methods, scans and maintenance work.
	s2.SetForcedPath(ForceDomainScan)
	rs = mustQuery(t, s2, `SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	if len(rs.Rows) != 2 {
		t.Fatalf("domain scan after reopen = %v", rs.Rows)
	}
	s2.SetForcedPath(ForceAuto)
	mustExec(t, s2, `INSERT INTO Docs VALUES (777, 'reopened unix box')`)
	s2.SetForcedPath(ForceDomainScan)
	rs = mustQuery(t, s2, `SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	if len(rs.Rows) != 3 {
		t.Errorf("maintenance after reopen = %v", rs.Rows)
	}
	s2.SetForcedPath(ForceAuto)

	// Object type registry.
	if _, ok := db2.Catalog().TypeDesc("Pt"); !ok {
		t.Error("object type lost")
	}

	// LOB contents.
	blob2, err := db2.LOBStore().Open(lobID)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 21)
	blob2.ReadAt(buf, 0)
	if string(buf) != "persisted lob payload" {
		t.Errorf("lob after reopen = %q", buf)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.db")
	// A page-aligned file with no superblock magic must be rejected.
	junk := make([]byte, 8192)
	if err := writeFile(path, junk); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: path}); err == nil {
		t.Error("foreign file opened as database")
	}
}

func TestCheckpointMakesImageReopenable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.db")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE c(v NUMBER)`)
	mustExec(t, s, `INSERT INTO c VALUES (1), (2)`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Reopen from the checkpointed image without Close.
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rs := mustQuery(t, db2.NewSession(), `SELECT COUNT(*) FROM c`)
	if rs.Rows[0][0].Int64() != 2 {
		t.Errorf("count after checkpoint-reopen = %s", rs.Rows[0][0])
	}
	db.Close()
}

// writeFile is a test helper.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
