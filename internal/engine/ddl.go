package engine

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bitmapidx"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/extidx"
	"repro/internal/hashidx"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// execDDL dispatches data-definition statements. DDL is auto-committed:
// an open explicit transaction is committed first (Oracle's implicit
// commit), except on callback sessions, which execute structural changes
// inside the invoking statement (index definition routines have no
// restrictions, §2.5).
// execDDL executes one DDL statement. A top-level DDL runs in its own
// transaction so everything a domain-index definition routine does
// through callback sessions (which share the invoking transaction)
// commits or rolls back with the statement; the commit is forced
// durable, since pure-dictionary DDL dirties no pages yet must survive a
// crash via the commit record's snapshot. Callback-session DDL joins the
// invoking statement's transaction instead.
func (s *Session) execDDL(st sql.Statement) error {
	if s.explicit && !s.isCallback {
		if err := s.Commit(); err != nil {
			return fmt.Errorf("engine: implicit commit before DDL: %w", err)
		}
	}
	if s.isCallback {
		return s.dispatchDDL(st)
	}
	t := s.db.txns.Begin()
	// DDL rewrites the dictionary, which every concurrent committer's
	// snapshot gob-encodes wholesale — so DDL admits exclusively, draining
	// all shared writers first. Admission comes before any table lock (the
	// implicit commit above already released any admission this session's
	// explicit transaction held), and the dispatch — catalog pages, whole
	// index builds through callback sessions sharing t — runs inside the
	// mutation window. Rollback happens inside the window too; the commit
	// runs after it exits, so its fsync never blocks the window.
	s.db.admitTxn(t, true)
	s.tx, s.explicit = t, true
	exit := s.db.enterMutation(t.ID, false)
	err := s.dispatchDDL(st)
	s.tx, s.explicit = nil, false
	if err != nil {
		rbErr := t.Rollback()
		exit()
		if rbErr != nil {
			return fmt.Errorf("%w (DDL rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	exit()
	t.ForceDurable()
	s.db.flight.Record(obs.EvDDL, t.ID, 0, ddlTag(st))
	return t.Commit()
}

// ddlTag names a DDL statement kind for the flight recorder, e.g.
// "CreateIndex" from *sql.CreateIndex.
func ddlTag(st sql.Statement) string {
	name := fmt.Sprintf("%T", st)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

func (s *Session) dispatchDDL(st sql.Statement) error {
	switch x := st.(type) {
	case *sql.CreateTable:
		return s.createTable(x)
	case *sql.DropTable:
		return s.dropTable(x)
	case *sql.TruncateTable:
		return s.truncateTable(x)
	case *sql.CreateIndex:
		return s.createIndex(x)
	case *sql.DropIndex:
		return s.dropIndex(x)
	case *sql.AlterIndex:
		return s.alterIndex(x)
	case *sql.CreateOperator:
		return s.createOperator(x)
	case *sql.DropOperator:
		return fmtErr("DROP OPERATOR", s.db.cat.DropOperator(x.Name))
	case *sql.CreateIndexType:
		return s.createIndexType(x)
	case *sql.DropIndexType:
		return fmtErr("DROP INDEXTYPE", s.db.cat.DropIndexType(x.Name))
	case *sql.CreateType:
		return s.createType(x)
	case *sql.AnalyzeTable:
		return s.analyzeTable(x)
	default:
		return fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// analyzeTable refreshes optimizer statistics: the table's row count,
// each built-in index's distinct-key count and numeric range, and — via
// the ODCIStatsCollect analogue — whatever statistics each domain index's
// indextype maintains.
func (s *Session) analyzeTable(x *sql.AnalyzeTable) error {
	unlock := s.lockTables([]string{x.Name}, nil)
	defer unlock()
	tbl, ok := s.db.cat.Table(x.Name)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", x.Name)
	}
	idxs := s.db.cat.TableIndexes(tbl.Name)
	distinct := make([]map[string]struct{}, len(idxs))
	for i := range distinct {
		distinct[i] = make(map[string]struct{})
	}
	rows := 0
	err := tbl.Heap.Scan(func(_ storage.RID, img []byte) (bool, error) {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return false, err
		}
		rows++
		for i, ix := range idxs {
			if ix.Kind == catalog.DomainIndex {
				continue
			}
			v := row[ix.ColPos]
			distinct[i][string(types.EncodeKey(nil, v))] = struct{}{}
			ix.ObserveValue(v)
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	tbl.RowCount = rows
	for i, ix := range idxs {
		if ix.Kind == catalog.DomainIndex {
			it, ok := s.db.cat.IndexType(ix.IndexType)
			if !ok || it.StatsName == "" {
				continue
			}
			sm, ok := s.db.reg.Stats(it.StatsName)
			if !ok {
				continue
			}
			if collector, ok := sm.(extidx.StatsCollector); ok {
				if err := collector.Collect(s.server(extidx.ModeScan, ix.Table), infoFor(ix, tbl)); err != nil {
					return fmt.Errorf("ODCIStatsCollect(%s): %w", ix.Name, err)
				}
			}
			continue
		}
		ix.DistinctKeys = len(distinct[i])
	}
	return nil
}

func (s *Session) createTable(x *sql.CreateTable) error {
	cols := make([]catalog.Column, len(x.Cols))
	for i, cd := range x.Cols {
		kind, tn, err := s.db.resolveKind(cd.TypeName)
		if err != nil {
			return fmt.Errorf("CREATE TABLE %s: column %s: %w", x.Name, cd.Name, err)
		}
		cols[i] = catalog.Column{Name: cd.Name, Kind: kind, TypeName: tn}
	}
	heap, err := storage.CreateHeap(s.db.pager)
	if err != nil {
		return err
	}
	t := &catalog.Table{Name: x.Name, Cols: cols, Heap: heap, Hidden: s.isCallback}
	if err := s.db.cat.AddTable(t); err != nil {
		heap.Drop()
		return err
	}
	return nil
}

func (s *Session) dropTable(x *sql.DropTable) error {
	unlock := s.lockTables(nil, []string{x.Name})
	defer unlock()
	// Drop domain indexes first so their Drop routines can still query the
	// catalog state they expect.
	for _, ix := range s.db.cat.TableIndexes(x.Name) {
		if err := s.teardownIndex(ix); err != nil {
			return err
		}
		if _, err := s.db.cat.DropIndex(ix.Name); err != nil {
			return err
		}
	}
	t, _, err := s.db.cat.DropTable(x.Name)
	if err != nil {
		return err
	}
	t.Heap.Drop()
	return nil
}

func (s *Session) truncateTable(x *sql.TruncateTable) error {
	unlock := s.lockTables(nil, []string{x.Name})
	defer unlock()
	t, ok := s.db.cat.Table(x.Name)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", x.Name)
	}
	if err := t.Heap.Truncate(); err != nil {
		return err
	}
	t.RowCount = 0
	for _, ix := range s.db.cat.TableIndexes(x.Name) {
		switch ix.Kind {
		case catalog.BTreeIndex:
			nt, err := btree.Create(s.db.pager)
			if err != nil {
				return err
			}
			ix.BT = nt
		case catalog.HashIndex:
			if err := ix.HX.Truncate(); err != nil {
				return err
			}
		case catalog.BitmapIndex:
			ix.BM = bitmapidx.NewIndex()
		case catalog.DomainIndex:
			// "When the corresponding table is truncated, the truncate
			// method specified as part of the indextype is invoked."
			m, _, err := s.indexMethodsFor(ix)
			if err != nil {
				return err
			}
			if err := m.Truncate(s.server(extidx.ModeDefinition, ix.Table), infoFor(ix, t)); err != nil {
				return fmt.Errorf("ODCIIndexTruncate(%s): %w", ix.Name, err)
			}
		}
	}
	return nil
}

func (s *Session) createIndex(x *sql.CreateIndex) error {
	unlock := s.lockTables(nil, []string{x.Table})
	defer unlock()
	t, ok := s.db.cat.Table(x.Table)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", x.Table)
	}
	pos := t.ColIndex(x.Column)
	if pos < 0 {
		return fmt.Errorf("engine: column %s does not exist in %s", x.Column, x.Table)
	}
	ix := &catalog.Index{
		Name:   x.Name,
		Table:  x.Table,
		Column: x.Column,
		ColPos: pos,
		Unique: x.Unique,
	}
	switch x.Kind {
	case sql.IndexBTree:
		ix.Kind = catalog.BTreeIndex
		bt, err := btree.Create(s.db.pager)
		if err != nil {
			return err
		}
		ix.BT = bt
	case sql.IndexHash:
		ix.Kind = catalog.HashIndex
		hx, err := hashidx.Create(s.db.pager, 0)
		if err != nil {
			return err
		}
		ix.HX = hx
	case sql.IndexBitmap:
		ix.Kind = catalog.BitmapIndex
		ix.BM = bitmapidx.NewIndex()
	case sql.IndexDomain:
		ix.Kind = catalog.DomainIndex
		it, ok := s.db.cat.IndexType(x.IndexType)
		if !ok {
			return fmt.Errorf("engine: indextype %s does not exist", x.IndexType)
		}
		ix.IndexType = it.Name
		ix.Params = x.Params
	}
	if err := s.db.cat.AddIndex(ix); err != nil {
		return err
	}
	// Build the index contents.
	if ix.Kind == catalog.DomainIndex {
		// "Oracle server invokes the routine corresponding to the create
		// index method in the indextype" — the routine itself populates
		// its index data tables, typically by querying the base table
		// through callbacks.
		m, _, err := s.indexMethodsFor(ix)
		if err != nil {
			_, derr := s.db.cat.DropIndex(ix.Name)
			return errors.Join(err, derr)
		}
		if err := m.Create(s.server(extidx.ModeDefinition, ix.Table), infoFor(ix, t)); err != nil {
			_, derr := s.db.cat.DropIndex(ix.Name)
			return errors.Join(fmt.Errorf("ODCIIndexCreate(%s): %w", ix.Name, err), derr)
		}
		return nil
	}
	// Built-in index backfill from the base table, gathering the
	// distinct-key statistic the optimizer uses for selectivity.
	distinct := make(map[string]struct{})
	err := t.Heap.Scan(func(rid storage.RID, img []byte) (bool, error) {
		row, _, err := types.DecodeRow(img)
		if err != nil {
			return false, err
		}
		distinct[string(types.EncodeKey(nil, row[pos]))] = struct{}{}
		if err := s.builtinIndexInsert(ix, row[pos], rid, nil); err != nil {
			return false, err
		}
		return true, nil
	})
	if err != nil {
		_, derr := s.db.cat.DropIndex(ix.Name)
		return errors.Join(err, derr, s.teardownIndex(ix))
	}
	ix.DistinctKeys = len(distinct)
	return nil
}

func (s *Session) dropIndex(x *sql.DropIndex) error {
	ix, ok := s.db.cat.Index(x.Name)
	if !ok {
		return fmt.Errorf("engine: index %s does not exist", x.Name)
	}
	unlock := s.lockTables(nil, []string{ix.Table})
	defer unlock()
	if err := s.teardownIndex(ix); err != nil {
		return err
	}
	_, err := s.db.cat.DropIndex(x.Name)
	return err
}

// teardownIndex releases index storage; for domain indexes it invokes
// ODCIIndexDrop.
func (s *Session) teardownIndex(ix *catalog.Index) error {
	switch ix.Kind {
	case catalog.DomainIndex:
		t, ok := s.db.cat.Table(ix.Table)
		if !ok {
			return fmt.Errorf("engine: table %s of index %s missing", ix.Table, ix.Name)
		}
		m, _, err := s.indexMethodsFor(ix)
		if err != nil {
			return err
		}
		if err := m.Drop(s.server(extidx.ModeDefinition, ix.Table), infoFor(ix, t)); err != nil {
			return fmt.Errorf("ODCIIndexDrop(%s): %w", ix.Name, err)
		}
	case catalog.HashIndex:
		ix.HX.Drop()
	case catalog.BTreeIndex:
		if err := ix.BT.Drop(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) alterIndex(x *sql.AlterIndex) error {
	ix, ok := s.db.cat.Index(x.Name)
	if !ok {
		return fmt.Errorf("engine: index %s does not exist", x.Name)
	}
	unlock := s.lockTables(nil, []string{ix.Table})
	defer unlock()
	t, _ := s.db.cat.Table(ix.Table)
	if ix.Kind != catalog.DomainIndex {
		if x.Rebuild {
			return nil // built-in rebuild is a no-op in this engine
		}
		return fmt.Errorf("engine: ALTER INDEX PARAMETERS applies to domain indexes")
	}
	m, _, err := s.indexMethodsFor(ix)
	if err != nil {
		return err
	}
	newParams := x.Params
	if x.Rebuild {
		newParams = ix.Params
	}
	if err := m.Alter(s.server(extidx.ModeDefinition, ix.Table), infoFor(ix, t), newParams); err != nil {
		return fmt.Errorf("ODCIIndexAlter(%s): %w", ix.Name, err)
	}
	ix.Params = newParams
	return nil
}

func (s *Session) createOperator(x *sql.CreateOperator) error {
	op := &catalog.Operator{Name: x.Name, AncillaryTo: x.AncillaryTo}
	for _, b := range x.Bindings {
		kinds := make([]types.Kind, len(b.ArgTypes))
		for i, tn := range b.ArgTypes {
			k, _, err := s.db.resolveKind(tn)
			if err != nil {
				return fmt.Errorf("CREATE OPERATOR %s: %w", x.Name, err)
			}
			kinds[i] = k
		}
		rk, _, err := s.db.resolveKind(b.ReturnType)
		if err != nil {
			return fmt.Errorf("CREATE OPERATOR %s: %w", x.Name, err)
		}
		if _, ok := s.db.reg.Function(b.FuncName); !ok {
			return fmt.Errorf("CREATE OPERATOR %s: functional implementation %s is not registered", x.Name, b.FuncName)
		}
		op.Bindings = append(op.Bindings, catalog.Binding{ArgKinds: kinds, ReturnKind: rk, FuncName: b.FuncName})
	}
	return s.db.cat.AddOperator(op)
}

func (s *Session) createIndexType(x *sql.CreateIndexType) error {
	it := &catalog.IndexType{Name: x.Name, MethodsName: x.Using, StatsName: x.StatsBy}
	for _, sig := range x.For {
		kinds := make([]types.Kind, len(sig.ArgTypes))
		for i, tn := range sig.ArgTypes {
			k, _, err := s.db.resolveKind(tn)
			if err != nil {
				return fmt.Errorf("CREATE INDEXTYPE %s: %w", x.Name, err)
			}
			kinds[i] = k
		}
		it.Ops = append(it.Ops, catalog.OpSig{Name: sig.Name, ArgKinds: kinds})
	}
	if _, ok := s.db.reg.Methods(x.Using); !ok {
		return fmt.Errorf("CREATE INDEXTYPE %s: index methods %s are not registered", x.Name, x.Using)
	}
	if x.StatsBy != "" {
		if _, ok := s.db.reg.Stats(x.StatsBy); !ok {
			return fmt.Errorf("CREATE INDEXTYPE %s: stats methods %s are not registered", x.Name, x.StatsBy)
		}
	}
	return s.db.cat.AddIndexType(it)
}

func (s *Session) createType(x *sql.CreateType) error {
	td := &types.TypeDesc{Name: x.Name}
	for _, a := range x.Attrs {
		k, _, err := s.db.resolveKind(a.TypeName)
		if err != nil {
			return fmt.Errorf("CREATE TYPE %s: %w", x.Name, err)
		}
		td.AttrNames = append(td.AttrNames, a.Name)
		td.AttrKinds = append(td.AttrKinds, k)
	}
	return s.db.cat.AddTypeDesc(td)
}
