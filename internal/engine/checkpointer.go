package engine

import (
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// checkpointer moves checkpointing off the commit path: a single
// background goroutine owns the "is it time yet" policy and calls the
// same DB.Checkpoint every caller uses, so the admission-map refusal
// rules are enforced for it exactly as for a foreground caller.
//
// It is edge-triggered, not polled. Commit acknowledgements and buffer-
// pool backpressure poke the trigger channel (non-blocking, capacity 1 —
// pokes coalesce); on each wake it re-evaluates the thresholds and
// checkpoints while one is exceeded. A checkpoint refused because a
// writer is admitted (ErrTxnOpen) is counted as a skip and simply waits
// for the next poke — the open writer's own commit is a guaranteed
// future poke, so no timer is needed and an idle database runs no code.
//
// Close drains it deterministically: stopCheckpointer closes stop and
// waits for done, after which no background checkpoint can be in flight
// and Close's own foreground checkpoint proceeds as before.
type checkpointer struct {
	db *DB

	// Thresholds: a checkpoint is due when the WAL has grown past
	// walBytes or the pool holds at least dirtyPages dirty frames.
	walBytes   int64
	dirtyPages int64

	// forced is set by backpressure (an all-dirty shard had to grow the
	// pool): the next evaluation is due regardless of thresholds.
	forced atomic.Bool

	trigger chan struct{}
	stop    chan struct{}
	done    chan struct{}
	stopped atomic.Bool

	checkpoints obs.Counter // background checkpoints completed
	skips       obs.Counter // attempts refused (writer admitted) or failed
}

// DefaultCheckpointWALBytes is the WAL-growth threshold past which the
// background checkpointer runs (64 MiB).
const DefaultCheckpointWALBytes = 64 << 20

// defaultCheckpointDirtyPages derives the dirty-page watermark from the
// pool capacity: three quarters of the cache (the no-steal pool must
// checkpoint before every frame is dirty), floored so tiny test caches
// do not checkpoint on every commit.
func defaultCheckpointDirtyPages(cachePages int) int64 {
	n := int64(cachePages) * 3 / 4
	if n < 1024 {
		n = 1024
	}
	return n
}

func newCheckpointer(db *DB, walBytes, dirtyPages int64) *checkpointer {
	c := &checkpointer{
		db:         db,
		walBytes:   walBytes,
		dirtyPages: dirtyPages,
		trigger:    make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go c.run()
	return c
}

// poke wakes the checkpointer to re-evaluate its thresholds. force
// additionally marks the next evaluation as due unconditionally (buffer-
// pool backpressure). Never blocks; safe from any goroutine, including
// under pager shard latches.
func (c *checkpointer) poke(force bool) {
	if force {
		c.forced.Store(true)
	}
	select {
	case c.trigger <- struct{}{}:
	default: // a wake is already pending; it will see the new state
	}
}

// due reports whether a checkpoint should run now, consuming a forced
// flag if one is set.
func (c *checkpointer) due() bool {
	if c.forced.Swap(false) {
		return true
	}
	if c.db.wal.LogSize() >= c.walBytes {
		return true
	}
	return c.db.pager.DirtyCount() >= c.dirtyPages
}

func (c *checkpointer) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.trigger:
		}
		for c.due() {
			err := c.db.Checkpoint()
			if err == nil {
				c.checkpoints.Inc()
				continue // re-check: commits may have landed meanwhile
			}
			c.skips.Inc()
			if errors.Is(err, ErrTxnOpen) {
				// An admitted writer blocked us. Its commit (or rollback's
				// following commit traffic) pokes again; restore the forced
				// flag so a backpressure-driven attempt is not lost.
				c.forced.Store(true)
			}
			// Any error ends this wake: ErrWALBroken and I/O errors are
			// surfaced by the foreground paths that caused them.
			break
		}
	}
}

// startCheckpointer wires and starts the background checkpointer
// (WAL-governed databases only, unless disabled by options).
func (db *DB) startCheckpointer(opts Options, cachePages int) {
	if db.wal == nil || opts.DisableBackgroundCheckpointer {
		return
	}
	walBytes := opts.CheckpointWALBytes
	if walBytes <= 0 {
		walBytes = DefaultCheckpointWALBytes
	}
	dirty := opts.CheckpointDirtyPages
	if dirty <= 0 {
		dirty = defaultCheckpointDirtyPages(cachePages)
	}
	db.ckpt = newCheckpointer(db, walBytes, dirty)
	// An all-dirty shard that had to grow past its frame target forces a
	// checkpoint: cleaning pages is the only way the no-steal pool can
	// shrink back to target.
	db.pager.SetPressure(func() { db.ckpt.poke(true) })
}

// stopCheckpointer drains the background checkpointer: after it returns,
// no background checkpoint is running or can start. Idempotent. The ckpt
// pointer stays set so a late poke from a straggling commit is a no-op
// channel nudge rather than a nil dereference.
func (db *DB) stopCheckpointer() {
	c := db.ckpt
	if c == nil || !c.stopped.CompareAndSwap(false, true) {
		return
	}
	close(c.stop)
	<-c.done
}
