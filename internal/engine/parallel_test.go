package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/extidx"
	"repro/internal/types"
)

// sortedRows renders a result set as sorted lines so serial and parallel
// executions compare as multisets: parallel plans without ORDER BY
// return rows in nondeterministic order.
func sortedRows(rs *ResultSet) []string {
	out := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		var b strings.Builder
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

func eqRows(t *testing.T, label string, serial, parallel *ResultSet) {
	t.Helper()
	a, b := sortedRows(serial), sortedRows(parallel)
	if len(a) != len(b) {
		t.Fatalf("%s: serial %d rows, parallel %d rows", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: row %d differs:\n  serial:   %s\n  parallel: %s", label, i, a[i], b[i])
		}
	}
}

// parallelFixture loads a table big enough to clear the planner's
// parallelMinRows floor and spread across many heap pages.
func parallelFixture(t testing.TB, db *DB) *Session {
	t.Helper()
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE Measures(id NUMBER, grp NUMBER, val NUMBER, pad VARCHAR2)`)
	pad := strings.Repeat("x", 120)
	mustExec(t, s, `BEGIN`)
	for i := 0; i < 4000; i++ {
		mustExec(t, s, `INSERT INTO Measures VALUES (?, ?, ?, ?)`,
			types.Int(int64(i)), types.Int(int64(i%7)), types.Num(float64(i%101)), types.Str(pad))
	}
	mustExec(t, s, `COMMIT`)
	return s
}

func TestParallelFullScanParity(t *testing.T) {
	db := newDB(t)
	s := parallelFixture(t, db)

	queries := []string{
		`SELECT id, grp, val FROM Measures`,
		`SELECT id, val FROM Measures WHERE val > 50`,
		`SELECT id FROM Measures WHERE grp = 3 AND val < 90`,
		`SELECT id, val FROM Measures WHERE val > 10 ORDER BY id LIMIT 25`,
	}
	for _, degree := range []int{2, 4, 8} {
		for _, q := range queries {
			s.SetParallel(1)
			serial := mustQuery(t, s, q)
			s.SetParallel(degree)
			parallel := mustQuery(t, s, q)
			eqRows(t, fmt.Sprintf("parallel=%d %s", degree, q), serial, parallel)
		}
	}
	s.SetParallel(1)
}

func TestParallelAggregateParity(t *testing.T) {
	db := newDB(t)
	s := parallelFixture(t, db)

	queries := []string{
		`SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) FROM Measures GROUP BY grp`,
		`SELECT COUNT(*), SUM(val), AVG(val) FROM Measures`,
		`SELECT grp, COUNT(*) FROM Measures WHERE val > 60 GROUP BY grp HAVING COUNT(*) > 10`,
		// Zero matching rows: a global aggregate still yields one row of
		// COUNT 0 / NULLs; a grouped aggregate yields none.
		`SELECT COUNT(*), SUM(val), MIN(val) FROM Measures WHERE val > 1000`,
		`SELECT grp, COUNT(*) FROM Measures WHERE val > 1000 GROUP BY grp`,
		`SELECT grp, AVG(val) FROM Measures GROUP BY grp ORDER BY grp`,
	}
	for _, q := range queries {
		s.SetParallel(1)
		serial := mustQuery(t, s, q)
		s.SetParallel(4)
		parallel := mustQuery(t, s, q)
		eqRows(t, q, serial, parallel)
	}
	s.SetParallel(1)
}

func TestParallelExplainShowsDegree(t *testing.T) {
	db := newDB(t)
	s := parallelFixture(t, db)
	s.SetParallel(4)

	q := `SELECT COUNT(*) FROM Measures WHERE val > 5`
	plan := flattenPlan(mustQuery(t, s, `EXPLAIN `+q))
	if !strings.Contains(plan, "parallel=") {
		t.Errorf("EXPLAIN missing parallel=:\n%s", plan)
	}

	plan = flattenPlan(mustQuery(t, s, `EXPLAIN ANALYZE `+q))
	if !strings.Contains(plan, "parallel=") {
		t.Errorf("EXPLAIN ANALYZE missing parallel=:\n%s", plan)
	}
	if !strings.Contains(plan, "worker ") {
		t.Errorf("EXPLAIN ANALYZE missing per-worker lines:\n%s", plan)
	}

	// Serial sessions must not mention parallelism at all.
	s.SetParallel(1)
	if plan = flattenPlan(mustQuery(t, s, `EXPLAIN ANALYZE `+q)); strings.Contains(plan, "parallel=") {
		t.Errorf("serial EXPLAIN ANALYZE mentions parallel:\n%s", plan)
	}
}

func TestParallelSmallTableStaysSerial(t *testing.T) {
	db := newDB(t)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE Tiny(id NUMBER)`)
	for i := 0; i < 20; i++ {
		mustExec(t, s, `INSERT INTO Tiny VALUES (?)`, types.Int(int64(i)))
	}
	s.SetParallel(8)
	if plan := flattenPlan(mustQuery(t, s, `EXPLAIN ANALYZE SELECT id FROM Tiny`)); strings.Contains(plan, "parallel=") {
		t.Errorf("tiny table went parallel:\n%s", plan)
	}
	if got := mustQuery(t, s, `SELECT COUNT(*) FROM Tiny`).Rows[0][0].Int64(); got != 20 {
		t.Errorf("count = %d", got)
	}
}

func flattenPlan(rs *ResultSet) string {
	var b strings.Builder
	for _, r := range rs.Rows {
		b.WriteString(r[0].Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Parallel domain scans

// kwParallelMethods extends the toy keyword cartridge with the optional
// ParallelMethods interface: the scan is evaluated eagerly and the rid
// list split into maxParts contiguous partitions.
type kwParallelMethods struct {
	kwMethods
	startParallelCalls int
}

func (m *kwParallelMethods) StartParallel(s extidx.Server, info extidx.IndexInfo, call extidx.OperatorCall, maxParts int) ([]extidx.ScanState, error) {
	st, err := m.Start(s, info, call)
	if err != nil {
		return nil, err
	}
	ks, err := m.state(s, st)
	if err != nil {
		return nil, err
	}
	m.startParallelCalls++
	if maxParts < 1 {
		maxParts = 1
	}
	per := (len(ks.rids) + maxParts - 1) / maxParts
	if per < 1 {
		per = 1
	}
	var parts []extidx.ScanState
	for lo := 0; lo < len(ks.rids); lo += per {
		hi := lo + per
		if hi > len(ks.rids) {
			hi = len(ks.rids)
		}
		parts = append(parts, extidx.StateValue{V: &kwState{rids: ks.rids[lo:hi], anc: ks.anc[lo:hi]}})
	}
	if len(parts) == 0 {
		parts = append(parts, extidx.StateValue{V: &kwState{}})
	}
	return parts, nil
}

// setupKwParallel registers the parallel-capable keyword cartridge under
// distinct names and loads a corpus large enough to parallelize.
func setupKwParallel(t testing.TB, db *DB, m *kwParallelMethods) *Session {
	t.Helper()
	reg := db.Registry()
	if err := reg.RegisterFunction("HasKwFn", hasKwFn); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterMethods("KwParMethods", m); err != nil {
		t.Fatal(err)
	}
	// Real selectivity stats matter here: without them the planner's
	// default 5% estimate would put the scan under the parallelMinRows
	// floor and the degree heuristic would keep it serial.
	if err := reg.RegisterStats("KwParStats", kwStats{m: &m.kwMethods}); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE OPERATOR HasKw BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING HasKwFn`)
	mustExec(t, s, `CREATE INDEXTYPE KwParIndexType FOR HasKw(VARCHAR2, VARCHAR2) USING KwParMethods WITH STATS KwParStats`)
	mustExec(t, s, `CREATE TABLE Corpus(id NUMBER, body VARCHAR2)`)
	mustExec(t, s, `BEGIN`)
	// 1800 rows, a third matching: the 600-row estimate clears the
	// parallelMinRows floor (512) while keeping the per-row index build
	// fast enough for the race-detector CI job.
	for i := 0; i < 1800; i++ {
		body := "common filler words"
		if i%3 == 0 {
			body = "needle in the haystack"
		}
		mustExec(t, s, `INSERT INTO Corpus VALUES (?, ?)`, types.Int(int64(i)), types.Str(body))
	}
	mustExec(t, s, `COMMIT`)
	mustExec(t, s, `CREATE INDEX CorpusKwIdx ON Corpus(body) INDEXTYPE IS KwParIndexType`)
	return s
}

func TestParallelDomainScan(t *testing.T) {
	db := newDB(t)
	m := &kwParallelMethods{}
	s := setupKwParallel(t, db, m)

	q := `SELECT id FROM Corpus WHERE HasKw(body, 'needle') = 1`
	s.SetForcedPath(ForceDomainScan)
	s.SetParallel(1)
	serial := mustQuery(t, s, q)
	if len(serial.Rows) != 600 {
		t.Fatalf("serial domain scan: %d rows", len(serial.Rows))
	}
	s.SetParallel(4)
	parallel := mustQuery(t, s, q)
	eqRows(t, "domain scan", serial, parallel)
	if m.startParallelCalls == 0 {
		t.Error("StartParallel never invoked")
	}

	// The per-scan degree reaches EXPLAIN ANALYZE, and the ODCI stats
	// record the StartParallel crossing.
	if plan := flattenPlan(mustQuery(t, s, `EXPLAIN ANALYZE `+q)); !strings.Contains(plan, "parallel=") {
		t.Errorf("parallel domain EXPLAIN ANALYZE missing parallel=:\n%s", plan)
	}
	if db.Metrics().ODCI.Callbacks["ODCIIndexStartParallel"].Calls == 0 {
		t.Error("ODCIIndexStartParallel not recorded in metrics")
	}

	// No scan partitions may outlive their statements.
	if live := db.Workspace().Live(); live != 0 {
		t.Errorf("workspace leaked %d handles", live)
	}
}

func TestParallelDomainScanSerialFallback(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)

	// kwMethods does not implement ParallelMethods: a parallel session
	// forcing the domain path must fall back to a serial domain scan.
	s.SetForcedPath(ForceDomainScan)
	s.SetParallel(4)
	q := `SELECT id FROM Docs WHERE HasKw(body, 'oracle') = 1`
	got := mustQuery(t, s, q)
	s.SetParallel(1)
	want := mustQuery(t, s, q)
	eqRows(t, "fallback", want, got)

	s.SetParallel(4)
	if plan := flattenPlan(mustQuery(t, s, `EXPLAIN ANALYZE `+q)); strings.Contains(plan, "parallel=") {
		t.Errorf("non-parallel cartridge still went parallel:\n%s", plan)
	}
}

// TestParallelReadersWriterStress runs parallel scans and aggregates on
// several reader sessions while a writer session commits batches through
// the write gate. CI runs it under -race with -tags invariants: the race
// detector checks the exchange handoff and pager lock paths, and the
// invariants build panics on pin leaks when newDB's cleanup closes the
// pager. Isolation here is statement-level (a SELECT holds its table
// read lock until drained), so the assertions are per-statement
// consistency — every aggregate within one parallel scan must describe
// the same set of rows — plus exact serial/parallel agreement once the
// writer quiesces.
func TestParallelReadersWriterStress(t *testing.T) {
	db := newDB(t)
	s := parallelFixture(t, db)
	s.SetParallel(1)

	readers, iters := 4, 30
	if testing.Short() {
		readers, iters = 2, 8
	}

	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		w := db.NewSession()
		for i := 0; i < iters; i++ {
			if _, err := w.Exec(`BEGIN`); err != nil {
				errc <- fmt.Errorf("writer begin: %w", err)
				return
			}
			base := 10000 + i*100
			for j := 0; j < 100; j++ {
				if _, err := w.Exec(`INSERT INTO Measures VALUES (?, ?, ?, ?)`,
					types.Int(int64(base+j)), types.Int(int64(j%7)), types.Num(float64(j)), types.Str("w")); err != nil {
					errc <- fmt.Errorf("writer insert: %w", err)
					return
				}
			}
			if _, err := w.Exec(`COMMIT`); err != nil {
				errc <- fmt.Errorf("writer commit: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := db.NewSession()
			s.SetParallel(2 + r%3)
			for i := 0; i < iters; i++ {
				rs, err := s.Query(`SELECT COUNT(*), COUNT(id), MIN(id), MAX(id) FROM Measures WHERE id >= 10000`)
				if err != nil {
					errc <- fmt.Errorf("reader %d count: %w", r, err)
					return
				}
				row := rs.Rows[0]
				if row[0].Int64() != row[1].Int64() {
					errc <- fmt.Errorf("reader %d torn scan: COUNT(*)=%d COUNT(id)=%d", r, row[0].Int64(), row[1].Int64())
					return
				}
				if row[0].Int64() > 0 && row[2].Int64() < 10000 {
					errc <- fmt.Errorf("reader %d scan leaked rows outside predicate: min id %d", r, row[2].Int64())
					return
				}
				if _, err := s.Query(`SELECT grp, COUNT(*), SUM(val) FROM Measures GROUP BY grp`); err != nil {
					errc <- fmt.Errorf("reader %d aggregate: %w", r, err)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Quiesced: every committed batch is fully visible, and serial and
	// parallel scans agree exactly.
	s.SetParallel(4)
	par := mustQuery(t, s, `SELECT COUNT(*) FROM Measures WHERE id >= 10000`).Rows[0][0].Int64()
	s.SetParallel(1)
	ser := mustQuery(t, s, `SELECT COUNT(*) FROM Measures WHERE id >= 10000`).Rows[0][0].Int64()
	if want := int64(iters * 100); ser != want || par != want {
		t.Errorf("post-quiesce counts: serial=%d parallel=%d want=%d", ser, par, want)
	}
	if live := db.Workspace().Live(); live != 0 {
		t.Errorf("workspace leaked %d handles", live)
	}
}
