package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

func openCkptDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Backend == nil {
		opts.Backend = storage.NewMemBackend()
	}
	if opts.WALSink == nil {
		opts.WALSink = storage.NewMemSegmentedSink(4096)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBackgroundCheckpointerRunsOnWALGrowth: with a one-byte WAL
// threshold every acknowledged commit makes a checkpoint due, so the
// background goroutine must run one and truncate the log — with no
// foreground Checkpoint call anywhere.
func TestBackgroundCheckpointerRunsOnWALGrowth(t *testing.T) {
	db := openCkptDB(t, Options{CheckpointWALBytes: 1})
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	s := db.NewSession()
	if _, err := s.Exec(`CREATE TABLE T(id NUMBER, v VARCHAR2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO T VALUES (1, 'x')`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a background checkpoint", func() bool {
		return db.ckpt.checkpoints.Load() >= 1
	})
	waitFor(t, "the WAL to be truncated", func() bool {
		return db.wal.LogSize() == 0
	})
	if got := db.Metrics().Engine.BgCheckpoints; got < 1 {
		t.Fatalf("Metrics.Engine.BgCheckpoints = %d, want >= 1", got)
	}
}

// TestBackgroundCheckpointerSkipsWhileWriterOpen: a forced poke while a
// write transaction is admitted must be refused (counted as a skip, the
// forced flag preserved), and the writer's own commit must then let the
// deferred checkpoint through.
func TestBackgroundCheckpointerSkipsWhileWriterOpen(t *testing.T) {
	db := openCkptDB(t, Options{CheckpointWALBytes: 1 << 40, CheckpointDirtyPages: 1 << 40})
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	s := db.NewSession()
	if _, err := s.Exec(`CREATE TABLE T(id NUMBER, v VARCHAR2)`); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO T VALUES (1, 'open')`); err != nil {
		t.Fatal(err)
	}
	db.ckpt.poke(true) // backpressure-style forced attempt
	waitFor(t, "the refused attempt to be counted", func() bool {
		return db.ckpt.skips.Load() >= 1
	})
	if got := db.ckpt.checkpoints.Load(); got != 0 {
		t.Fatalf("checkpoint ran with a writer admitted (%d)", got)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// The commit pokes; the preserved forced flag makes the attempt due
	// even though both thresholds are sky-high.
	waitFor(t, "the deferred checkpoint", func() bool {
		return db.ckpt.checkpoints.Load() >= 1
	})
	if got := db.Metrics().Engine.BgCheckpointSkips; got < 1 {
		t.Fatalf("Metrics.Engine.BgCheckpointSkips = %d, want >= 1", got)
	}
}

// TestBackgroundCheckpointerBackpressure: a transaction that dirties
// more frames than the no-steal pool can hold forces shards to grow,
// which must record CheckpointBackpressure waits and poke the
// checkpointer; once the transaction commits, the deferred checkpoint
// cleans the pool.
func TestBackgroundCheckpointerBackpressure(t *testing.T) {
	db := openCkptDB(t, Options{
		CacheSizePages:       16,
		PagerShards:          2,
		CheckpointWALBytes:   1 << 40,
		CheckpointDirtyPages: 1 << 40,
	})
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	s := db.NewSession()
	if _, err := s.Exec(`CREATE TABLE T(id NUMBER, v VARCHAR2)`); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("p", 2048) // ~4 rows per 8 KiB page
	for i := 0; i < 200; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s')`, i, payload)); err != nil {
			t.Fatal(err)
		}
	}
	bp := db.waits.Snapshot().Classes[obs.WaitCheckpointBackpressure.String()]
	if bp.Count == 0 {
		t.Fatal("an over-capacity no-steal transaction recorded no CheckpointBackpressure waits")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the backpressure-deferred checkpoint", func() bool {
		return db.ckpt.checkpoints.Load() >= 1
	})
	waitFor(t, "the pool to be cleaned", func() bool {
		return db.pager.DirtyCount() == 0
	})
}

// TestCheckpointerDisabled: with the background checkpointer off, heavy
// commit traffic past every threshold runs no checkpoint; Close still
// checkpoints in the foreground as before.
func TestCheckpointerDisabled(t *testing.T) {
	sink := storage.NewMemSegmentedSink(4096)
	db := openCkptDB(t, Options{
		WALSink:                       sink,
		CheckpointWALBytes:            1,
		CheckpointDirtyPages:          1,
		DisableBackgroundCheckpointer: true,
	})
	s := db.NewSession()
	if _, err := s.Exec(`CREATE TABLE T(id NUMBER, v VARCHAR2)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, 'x')`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.ckpt != nil {
		t.Fatal("checkpointer running although disabled")
	}
	if db.wal.LogSize() == 0 {
		t.Fatal("log empty mid-workload: something checkpointed")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointerCloseDrainsDeterministically: Close during a commit
// storm must drain the background goroutine, checkpoint, and leave media
// that reopen to exactly the committed rows.
func TestCheckpointerCloseDrainsDeterministically(t *testing.T) {
	backend := storage.NewMemBackend()
	sink := storage.NewMemSegmentedSink(1024)
	db := openCkptDB(t, Options{Backend: backend, WALSink: sink, CheckpointWALBytes: 1})
	s := db.NewSession()
	if _, err := s.Exec(`CREATE TABLE T(id NUMBER, v VARCHAR2)`); err != nil {
		t.Fatal(err)
	}
	const rows = 50
	for i := 0; i < rows; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, 'r%d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if !db.ckpt.stopped.Load() {
		t.Fatal("Close returned with the checkpointer still running")
	}

	db2, err := Open(Options{Backend: backend, WALSink: sink})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rs, err := db2.NewSession().Query(`SELECT id FROM T ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != rows {
		t.Fatalf("recovered %d rows, want %d", len(rs.Rows), rows)
	}
}
