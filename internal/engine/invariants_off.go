//go:build !invariants

package engine

// invariantsEnabled is false in default builds: the checks behind it are
// engine-level structural assertions (e.g. no owned frames survive into a
// checkpoint) too expensive or too fatal for production paths.
const invariantsEnabled = false
