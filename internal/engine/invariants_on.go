//go:build invariants

package engine

// invariantsEnabled compiles in the engine-level structural checks:
// frame-ownership accounting at checkpoint boundaries and the like.
const invariantsEnabled = true
