package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/extidx"
	"repro/internal/types"
)

func newDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t testing.TB, s *Session, text string, params ...types.Value) Result {
	t.Helper()
	r, err := s.Exec(text, params...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", text, err)
	}
	return r
}

func mustQuery(t testing.TB, s *Session, text string, params ...types.Value) *ResultSet {
	t.Helper()
	rs, err := s.Query(text, params...)
	if err != nil {
		t.Fatalf("Query(%s): %v", text, err)
	}
	return rs
}

func TestBasicTableLifecycle(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE Employees(name VARCHAR(128), id INTEGER, resume VARCHAR2(1024))`)
	mustExec(t, s, `INSERT INTO Employees VALUES ('alice', 1, 'Oracle and UNIX expert')`)
	mustExec(t, s, `INSERT INTO Employees (id, name) VALUES (2, 'bob')`)

	rs := mustQuery(t, s, `SELECT * FROM Employees ORDER BY id`)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if rs.Columns[0] != "NAME" || rs.Columns[2] != "RESUME" {
		t.Errorf("columns = %v", rs.Columns)
	}
	if rs.Rows[0][0].Text() != "alice" || !rs.Rows[1][2].IsNull() {
		t.Errorf("row data wrong: %v", rs.Rows)
	}

	r := mustExec(t, s, `UPDATE Employees SET resume = 'hired' WHERE name = 'bob'`)
	if r.RowsAffected != 1 {
		t.Errorf("update affected %d", r.RowsAffected)
	}
	rs = mustQuery(t, s, `SELECT resume FROM Employees WHERE name = 'bob'`)
	if rs.Rows[0][0].Text() != "hired" {
		t.Error("update not visible")
	}

	r = mustExec(t, s, `DELETE FROM Employees WHERE id = 1`)
	if r.RowsAffected != 1 {
		t.Errorf("delete affected %d", r.RowsAffected)
	}
	rs = mustQuery(t, s, `SELECT COUNT(*) FROM Employees`)
	if rs.Rows[0][0].Int64() != 1 {
		t.Errorf("count = %s", rs.Rows[0][0])
	}

	mustExec(t, s, `TRUNCATE TABLE Employees`)
	rs = mustQuery(t, s, `SELECT COUNT(*) FROM Employees`)
	if rs.Rows[0][0].Int64() != 0 {
		t.Error("truncate left rows")
	}
	mustExec(t, s, `DROP TABLE Employees`)
	if _, err := s.Query(`SELECT * FROM Employees`); err == nil {
		t.Error("dropped table still queryable")
	}
}

func TestExpressionsAndPredicates(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE nums(a NUMBER, b NUMBER, s VARCHAR2)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, s, `INSERT INTO nums VALUES (?, ?, ?)`,
			types.Int(int64(i)), types.Int(int64(i*i)), types.Str(fmt.Sprintf("str%d", i)))
	}
	rs := mustQuery(t, s, `SELECT a + b * 2, s || '!' FROM nums WHERE a = 3`)
	if rs.Rows[0][0].Float() != 21 || rs.Rows[0][1].Text() != "str3!" {
		t.Errorf("exprs = %v", rs.Rows[0])
	}
	rs = mustQuery(t, s, `SELECT a FROM nums WHERE a BETWEEN 3 AND 5 ORDER BY a DESC`)
	if len(rs.Rows) != 3 || rs.Rows[0][0].Int64() != 5 {
		t.Errorf("between = %v", rs.Rows)
	}
	rs = mustQuery(t, s, `SELECT a FROM nums WHERE a IN (2, 4, 99)`)
	if len(rs.Rows) != 2 {
		t.Errorf("in-list = %v", rs.Rows)
	}
	rs = mustQuery(t, s, `SELECT a FROM nums WHERE s LIKE 'str1%'`)
	if len(rs.Rows) != 2 { // str1, str10
		t.Errorf("like = %v", rs.Rows)
	}
	rs = mustQuery(t, s, `SELECT a FROM nums WHERE NOT (a < 9) OR a = 1 ORDER BY a`)
	if len(rs.Rows) != 3 { // 1, 9, 10
		t.Errorf("logic = %v", rs.Rows)
	}
	rs = mustQuery(t, s, `SELECT a FROM nums LIMIT 4`)
	if len(rs.Rows) != 4 {
		t.Errorf("limit = %d", len(rs.Rows))
	}
	// NULL semantics: comparisons with NULL never match.
	mustExec(t, s, `INSERT INTO nums (a) VALUES (100)`)
	rs = mustQuery(t, s, `SELECT a FROM nums WHERE b = b AND a = 100`)
	if len(rs.Rows) != 0 {
		t.Error("NULL = NULL matched")
	}
	rs = mustQuery(t, s, `SELECT a FROM nums WHERE b IS NULL`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int64() != 100 {
		t.Errorf("IS NULL = %v", rs.Rows)
	}
}

func TestAggregation(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE emp(dept VARCHAR2, salary NUMBER)`)
	for i, d := range []string{"eng", "eng", "eng", "sales", "sales", "hr"} {
		mustExec(t, s, `INSERT INTO emp VALUES (?, ?)`, types.Str(d), types.Int(int64(100*(i+1))))
	}
	rs := mustQuery(t, s, `SELECT dept, COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary)
		FROM emp GROUP BY dept ORDER BY dept`)
	if len(rs.Rows) != 3 {
		t.Fatalf("groups = %v", rs.Rows)
	}
	eng := rs.Rows[0]
	if eng[0].Text() != "eng" || eng[1].Int64() != 3 || eng[2].Float() != 600 ||
		eng[3].Float() != 200 || eng[4].Float() != 100 || eng[5].Float() != 300 {
		t.Errorf("eng row = %v", eng)
	}
	rs = mustQuery(t, s, `SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept`)
	if len(rs.Rows) != 2 {
		t.Errorf("having = %v", rs.Rows)
	}
	rs = mustQuery(t, s, `SELECT COUNT(*) FROM emp WHERE dept = 'none'`)
	if rs.Rows[0][0].Int64() != 0 {
		t.Error("global aggregate over empty input should yield 0")
	}
}

func TestJoins(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE dept(id NUMBER, dname VARCHAR2)`)
	mustExec(t, s, `CREATE TABLE emp(name VARCHAR2, dept_id NUMBER)`)
	mustExec(t, s, `INSERT INTO dept VALUES (1, 'eng'), (2, 'sales')`)
	mustExec(t, s, `INSERT INTO emp VALUES ('a', 1), ('b', 1), ('c', 2), ('d', 3)`)

	rs := mustQuery(t, s, `SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.id ORDER BY e.name`)
	if len(rs.Rows) != 3 {
		t.Fatalf("join rows = %v", rs.Rows)
	}
	if rs.Rows[0][1].Text() != "eng" || rs.Rows[2][1].Text() != "sales" {
		t.Errorf("join = %v", rs.Rows)
	}
	// Indexed inner: same result with a B-tree on dept.id.
	mustExec(t, s, `CREATE INDEX dept_id_ix ON dept(id)`)
	rs2 := mustQuery(t, s, `SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.id ORDER BY e.name`)
	if len(rs2.Rows) != 3 || rs2.Rows[0][1].Text() != "eng" {
		t.Errorf("indexed join = %v", rs2.Rows)
	}
	// rowid join (the pre-8i rewrite idiom from §3.2.1).
	mustExec(t, s, `CREATE TABLE results(rid NUMBER)`)
	base := mustQuery(t, s, `SELECT ROWID FROM emp WHERE dept_id = 1`)
	for _, r := range base.Rows {
		mustExec(t, s, `INSERT INTO results VALUES (?)`, r[0])
	}
	rs3 := mustQuery(t, s, `SELECT e.name FROM emp e, results r WHERE e.ROWID = r.rid ORDER BY e.name`)
	if len(rs3.Rows) != 2 || rs3.Rows[0][0].Text() != "a" {
		t.Errorf("rowid join = %v", rs3.Rows)
	}
}

func TestBuiltinIndexPathsAgree(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(k NUMBER, cat VARCHAR2, v VARCHAR2)`)
	for i := 0; i < 500; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, ?, ?)`,
			types.Int(int64(i)), types.Str(fmt.Sprintf("cat%d", i%5)), types.Str(fmt.Sprintf("v%d", i)))
	}
	mustExec(t, s, `CREATE INDEX t_k ON t(k)`)
	mustExec(t, s, `CREATE HASH INDEX t_v ON t(v)`)
	mustExec(t, s, `CREATE BITMAP INDEX t_cat ON t(cat)`)

	// Equality via each index kind agrees with a forced full scan.
	queries := []string{
		`SELECT k FROM t WHERE k = 123`,
		`SELECT k FROM t WHERE v = 'v321'`,
		`SELECT COUNT(*) FROM t WHERE cat = 'cat2'`,
		`SELECT k FROM t WHERE k BETWEEN 100 AND 110 ORDER BY k`,
		`SELECT k FROM t WHERE k >= 495 ORDER BY k`,
		`SELECT k FROM t WHERE k < 5 ORDER BY k`,
	}
	for _, q := range queries {
		auto := mustQuery(t, s, q)
		s.SetForcedPath(ForceFullScan)
		full := mustQuery(t, s, q)
		s.SetForcedPath(ForceAuto)
		if len(auto.Rows) != len(full.Rows) {
			t.Fatalf("%s: auto %d rows, full %d rows", q, len(auto.Rows), len(full.Rows))
		}
		for i := range auto.Rows {
			for j := range auto.Rows[i] {
				if !types.Identical(auto.Rows[i][j], full.Rows[i][j]) {
					t.Fatalf("%s: row %d differs", q, i)
				}
			}
		}
	}
	// The plans actually use the indexes.
	ex := mustQuery(t, s, `EXPLAIN PLAN FOR SELECT k FROM t WHERE k = 123`)
	if !strings.Contains(ex.Rows[0][0].Text(), "T_K") {
		t.Errorf("explain = %v", ex.Rows)
	}
	ex = mustQuery(t, s, `EXPLAIN PLAN FOR SELECT k FROM t WHERE v = 'v9'`)
	if !strings.Contains(ex.Rows[0][0].Text(), "HASH LOOKUP") {
		t.Errorf("explain = %v", ex.Rows)
	}
	// The bitmap predicate hits 20% of the table, so the optimizer rightly
	// prefers a full scan; force index access to check the bitmap path is
	// plumbed through EXPLAIN.
	s.SetForcedPath(ForceIndexScan)
	ex = mustQuery(t, s, `EXPLAIN PLAN FOR SELECT k FROM t WHERE cat = 'cat1'`)
	s.SetForcedPath(ForceAuto)
	if !strings.Contains(ex.Rows[0][0].Text(), "BITMAP") {
		t.Errorf("explain = %v", ex.Rows)
	}
}

func TestIndexMaintenanceOnDML(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(k NUMBER, v VARCHAR2)`)
	mustExec(t, s, `CREATE INDEX t_k ON t(k)`)
	for i := 0; i < 100; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, 'x')`, types.Int(int64(i%10)))
	}
	count := func(k int) int {
		rs := mustQuery(t, s, fmt.Sprintf(`SELECT COUNT(*) FROM t WHERE k = %d`, k))
		return int(rs.Rows[0][0].Int64())
	}
	if count(3) != 10 {
		t.Fatalf("count(3) = %d", count(3))
	}
	mustExec(t, s, `UPDATE t SET k = 99 WHERE k = 3`)
	if count(3) != 0 || count(99) != 10 {
		t.Errorf("after update: count(3)=%d count(99)=%d", count(3), count(99))
	}
	mustExec(t, s, `DELETE FROM t WHERE k = 99`)
	if count(99) != 0 {
		t.Errorf("after delete: count(99)=%d", count(99))
	}
}

func TestUniqueIndexEnforcement(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE u(id NUMBER, v VARCHAR2)`)
	mustExec(t, s, `CREATE UNIQUE INDEX u_id ON u(id)`)
	mustExec(t, s, `INSERT INTO u VALUES (1, 'a')`)
	if _, err := s.Exec(`INSERT INTO u VALUES (1, 'b')`); err == nil {
		t.Fatal("duplicate key accepted")
	}
	// Statement atomicity: multi-row insert with a late duplicate must
	// leave no partial rows.
	if _, err := s.Exec(`INSERT INTO u VALUES (2, 'c'), (3, 'd'), (1, 'dup')`); err == nil {
		t.Fatal("duplicate in batch accepted")
	}
	rs := mustQuery(t, s, `SELECT COUNT(*) FROM u`)
	if rs.Rows[0][0].Int64() != 1 {
		t.Errorf("partial batch persisted: count=%s", rs.Rows[0][0])
	}
}

func TestTransactions(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(v NUMBER)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2)`)
	mustExec(t, s, `UPDATE t SET v = 20 WHERE v = 2`)
	rs := mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if rs.Rows[0][0].Int64() != 2 {
		t.Fatal("uncommitted rows invisible to own session")
	}
	mustExec(t, s, `ROLLBACK`)
	rs = mustQuery(t, s, `SELECT COUNT(*) FROM t`)
	if rs.Rows[0][0].Int64() != 0 {
		t.Fatalf("rollback left %s rows", rs.Rows[0][0])
	}
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (7)`)
	mustExec(t, s, `COMMIT`)
	rs = mustQuery(t, s, `SELECT v FROM t`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int64() != 7 {
		t.Error("commit lost data")
	}
	// Rollback restores indexes too.
	mustExec(t, s, `CREATE INDEX t_v ON t(v)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `DELETE FROM t WHERE v = 7`)
	mustExec(t, s, `ROLLBACK`)
	rs = mustQuery(t, s, `SELECT v FROM t WHERE v = 7`)
	if len(rs.Rows) != 1 {
		t.Error("index not restored by rollback")
	}
}

func TestObjectAndCollectionColumns(t *testing.T) {
	db := newDB(t)
	s := db.NewSession()
	mustExec(t, s, `CREATE TYPE Point AS OBJECT (x NUMBER, y NUMBER)`)
	mustExec(t, s, `CREATE TABLE sites(name VARCHAR2, loc Point, tags VARRAY)`)

	ses := db.NewSession()
	if err := ses.InsertRow("sites", []types.Value{
		types.Str("hq"), types.Obj("Point", types.Num(1), types.Num(2)), types.Arr(types.Str("a"), types.Str("b")),
	}); err != nil {
		t.Fatal(err)
	}
	// Type validation rejects wrong shapes.
	if err := ses.InsertRow("sites", []types.Value{
		types.Str("bad"), types.Obj("Point", types.Num(1)), types.Null(),
	}); err == nil {
		t.Error("arity-violating object accepted")
	}
	rs := mustQuery(t, s, `SELECT loc, tags FROM sites WHERE name = 'hq'`)
	if rs.Rows[0][0].Object() == nil || len(rs.Rows[0][1].Elems()) != 2 {
		t.Errorf("object/array round trip: %v", rs.Rows[0])
	}
}

// ---------------------------------------------------------------------------
// A complete toy indextype (keyword index) exercising the whole framework.

// kwMethods implements extidx.IndexMethods for a HasKw(VARCHAR2, VARCHAR2)
// operator: it tokenizes the column on spaces and stores (token, rid)
// pairs in an index data table through SQL callbacks, exactly as §2.2.3
// prescribes.
type kwMethods struct {
	useHandle bool // exercise return-handle vs return-state
	failNext  map[string]bool
}

type kwState struct {
	rids []int64
	anc  []types.Value
}

func (m *kwMethods) dt(info extidx.IndexInfo) string { return info.DataTableName("KW") }

func (m *kwMethods) Create(s extidx.Server, info extidx.IndexInfo) error {
	if _, err := s.Exec(fmt.Sprintf(`CREATE TABLE %s(token VARCHAR2, rid NUMBER)`, m.dt(info))); err != nil {
		return err
	}
	if _, err := s.Exec(fmt.Sprintf(`CREATE INDEX %s_TOK ON %s(token)`, m.dt(info), m.dt(info))); err != nil {
		return err
	}
	rows, err := s.Query(fmt.Sprintf(`SELECT %s, ROWID FROM %s`, info.ColumnName, info.TableName))
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := m.indexOne(s, info, r[1].Int64(), r[0]); err != nil {
			return err
		}
	}
	return nil
}

func (m *kwMethods) indexOne(s extidx.Server, info extidx.IndexInfo, rid int64, val types.Value) error {
	if val.IsNull() {
		return nil
	}
	for _, tok := range strings.Fields(strings.ToLower(val.Text())) {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (?, ?)`, m.dt(info)),
			types.Str(tok), types.Int(rid)); err != nil {
			return err
		}
	}
	return nil
}

func (m *kwMethods) Alter(s extidx.Server, info extidx.IndexInfo, newParams string) error { return nil }

func (m *kwMethods) Truncate(s extidx.Server, info extidx.IndexInfo) error {
	_, err := s.Exec(fmt.Sprintf(`DELETE FROM %s`, m.dt(info)))
	return err
}

func (m *kwMethods) Drop(s extidx.Server, info extidx.IndexInfo) error {
	_, err := s.Exec(fmt.Sprintf(`DROP TABLE %s`, m.dt(info)))
	return err
}

func (m *kwMethods) Insert(s extidx.Server, info extidx.IndexInfo, rid int64, newVal types.Value) error {
	if m.failNext["insert"] {
		m.failNext["insert"] = false
		return fmt.Errorf("kw: injected insert failure")
	}
	return m.indexOne(s, info, rid, newVal)
}

func (m *kwMethods) Delete(s extidx.Server, info extidx.IndexInfo, rid int64, oldVal types.Value) error {
	_, err := s.Exec(fmt.Sprintf(`DELETE FROM %s WHERE rid = ?`, m.dt(info)), types.Int(rid))
	return err
}

func (m *kwMethods) Update(s extidx.Server, info extidx.IndexInfo, rid int64, oldVal, newVal types.Value) error {
	if err := m.Delete(s, info, rid, oldVal); err != nil {
		return err
	}
	return m.indexOne(s, info, rid, newVal)
}

func (m *kwMethods) Start(s extidx.Server, info extidx.IndexInfo, call extidx.OperatorCall) (extidx.ScanState, error) {
	if !call.WantsTrue() {
		return nil, fmt.Errorf("kw: only equality-to-1 predicates supported")
	}
	kw := strings.ToLower(call.Args[0].Text())
	rows, err := s.Query(fmt.Sprintf(`SELECT rid FROM %s WHERE token = ?`, m.dt(info)), types.Str(kw))
	if err != nil {
		return nil, err
	}
	st := &kwState{}
	seen := map[int64]bool{}
	for _, r := range rows {
		rid := r[0].Int64()
		if !seen[rid] {
			seen[rid] = true
			st.rids = append(st.rids, rid)
			st.anc = append(st.anc, types.Num(float64(len(kw)))) // toy score
		}
	}
	if m.useHandle {
		return s.Workspace().Alloc(st), nil
	}
	return extidx.StateValue{V: st}, nil
}

func (m *kwMethods) state(s extidx.Server, st extidx.ScanState) (*kwState, error) {
	switch v := st.(type) {
	case extidx.StateValue:
		return v.V.(*kwState), nil
	case extidx.StateHandle:
		e, err := s.Workspace().Get(v)
		if err != nil {
			return nil, err
		}
		return e.(*kwState), nil
	}
	return nil, fmt.Errorf("kw: bad state %T", st)
}

func (m *kwMethods) Fetch(s extidx.Server, st extidx.ScanState, maxRows int) (extidx.FetchResult, extidx.ScanState, error) {
	ks, err := m.state(s, st)
	if err != nil {
		return extidx.FetchResult{}, st, err
	}
	if maxRows <= 0 || maxRows > len(ks.rids) {
		maxRows = len(ks.rids)
	}
	res := extidx.FetchResult{
		RIDs:      ks.rids[:maxRows],
		Ancillary: ks.anc[:maxRows],
	}
	ks.rids = ks.rids[maxRows:]
	ks.anc = ks.anc[maxRows:]
	res.Done = len(ks.rids) == 0
	return res, st, nil
}

func (m *kwMethods) Close(s extidx.Server, st extidx.ScanState) error {
	if h, ok := st.(extidx.StateHandle); ok {
		s.Workspace().Free(h)
	}
	return nil
}

// kwStats implements extidx.StatsMethods by querying the index data table.
type kwStats struct{ m *kwMethods }

func (st kwStats) Selectivity(s extidx.Server, info extidx.IndexInfo, call extidx.OperatorCall) (float64, error) {
	kw := strings.ToLower(call.Args[0].Text())
	rows, err := s.Query(fmt.Sprintf(`SELECT COUNT(*) FROM %s WHERE token = ?`, st.m.dt(info)), types.Str(kw))
	if err != nil {
		return 0, err
	}
	n, err := s.RowCountEstimate(info.TableName)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	sel := rows[0][0].Float() / n
	if sel > 1 {
		sel = 1
	}
	return sel, nil
}

func (st kwStats) IndexCost(s extidx.Server, info extidx.IndexInfo, call extidx.OperatorCall, sel float64) (extidx.Cost, error) {
	n, err := s.RowCountEstimate(info.TableName)
	if err != nil {
		return extidx.Cost{}, err
	}
	rows := sel * n
	return extidx.Cost{IO: 2 + rows, CPU: rows}, nil
}

// hasKwFn is the functional implementation of the HasKw operator.
func hasKwFn(args []types.Value) (types.Value, error) {
	if len(args) < 2 || args[0].IsNull() || args[1].IsNull() {
		return types.Num(0), nil
	}
	kw := strings.ToLower(args[1].Text())
	for _, tok := range strings.Fields(strings.ToLower(args[0].Text())) {
		if tok == kw {
			return types.Num(1), nil
		}
	}
	return types.Num(0), nil
}

// kwScoreFn is required so the ancillary Score operator has a functional
// binding (never actually better than the index-provided value here).
func kwScoreFn(args []types.Value) (types.Value, error) { return types.Null(), nil }

func setupKwCartridge(t testing.TB, db *DB, m *kwMethods) *Session {
	t.Helper()
	reg := db.Registry()
	if err := reg.RegisterFunction("HasKwFn", hasKwFn); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterFunction("KwScoreFn", kwScoreFn); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterMethods("KwIndexMethods", m); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterStats("KwStats", kwStats{m: m}); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, `CREATE OPERATOR HasKw BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING HasKwFn`)
	mustExec(t, s, `CREATE OPERATOR KwScore BINDING (NUMBER) RETURN NUMBER USING KwScoreFn ANCILLARY TO HasKw`)
	mustExec(t, s, `CREATE INDEXTYPE KwIndexType FOR HasKw(VARCHAR2, VARCHAR2) USING KwIndexMethods WITH STATS KwStats`)
	mustExec(t, s, `CREATE TABLE Docs(id NUMBER, body VARCHAR2)`)
	docs := []string{
		"oracle unix database",
		"unix kernel hacking",
		"oracle spatial cartridge",
		"cooking recipes",
		"oracle oracle oracle",
	}
	for i, d := range docs {
		mustExec(t, s, `INSERT INTO Docs VALUES (?, ?)`, types.Int(int64(i+1)), types.Str(d))
	}
	// Filler documents make the table big enough that index scans beat
	// full scans on selective keywords, as in any realistic corpus.
	filler := "alpha beta gamma delta epsilon zeta eta theta iota kappa " +
		"lambda mu nu xi omicron pi rho sigma tau upsilon phi chi psi omega " +
		"one two three four five six seven eight nine ten eleven twelve"
	for i := 1000; i < 1200; i++ {
		mustExec(t, s, `INSERT INTO Docs VALUES (?, ?)`, types.Int(int64(i)), types.Str(filler))
	}
	return s
}

func TestDomainIndexLifecycle(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)

	// Functional evaluation works before any index exists.
	rs := mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'oracle') ORDER BY id`)
	if len(rs.Rows) != 3 {
		t.Fatalf("functional rows = %v", rs.Rows)
	}

	// Create the domain index; ODCIIndexCreate builds and populates the
	// index data table via callbacks.
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType PARAMETERS (':toy')`)
	dt := mustQuery(t, s, `SELECT COUNT(*) FROM DR$DOCKWIDX$KW`)
	if dt.Rows[0][0].Int64() == 0 {
		t.Fatal("index data table empty after create")
	}

	// The optimizer now routes the operator to a domain scan.
	ex := mustQuery(t, s, `EXPLAIN PLAN FOR SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	if !strings.Contains(ex.Rows[0][0].Text(), "DOMAIN INDEX DOCKWIDX") {
		t.Fatalf("explain = %v", ex.Rows)
	}
	rs = mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	if len(rs.Rows) != 2 || rs.Rows[0][0].Int64() != 1 || rs.Rows[1][0].Int64() != 2 {
		t.Fatalf("domain rows = %v", rs.Rows)
	}

	// Results agree with forced functional evaluation.
	s.SetForcedPath(ForceFullScan)
	full := mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	s.SetForcedPath(ForceAuto)
	if len(full.Rows) != len(rs.Rows) {
		t.Fatal("functional and indexed paths disagree")
	}

	// DML maintains the index implicitly.
	mustExec(t, s, `INSERT INTO Docs VALUES (6, 'fresh unix document')`)
	rs = mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	if len(rs.Rows) != 3 {
		t.Fatalf("after insert: %v", rs.Rows)
	}
	mustExec(t, s, `UPDATE Docs SET body = 'linux now' WHERE id = 6`)
	rs = mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	if len(rs.Rows) != 2 {
		t.Fatalf("after update: %v", rs.Rows)
	}
	rs = mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'linux')`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int64() != 6 {
		t.Fatalf("after update (new value): %v", rs.Rows)
	}
	mustExec(t, s, `DELETE FROM Docs WHERE id = 6`)
	rs = mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'linux')`)
	if len(rs.Rows) != 0 {
		t.Fatalf("after delete: %v", rs.Rows)
	}

	// ALTER INDEX PARAMETERS reaches ODCIIndexAlter.
	mustExec(t, s, `ALTER INDEX DocKwIdx PARAMETERS (':other')`)

	// TRUNCATE TABLE reaches ODCIIndexTruncate.
	mustExec(t, s, `TRUNCATE TABLE Docs`)
	dt = mustQuery(t, s, `SELECT COUNT(*) FROM DR$DOCKWIDX$KW`)
	if dt.Rows[0][0].Int64() != 0 {
		t.Fatal("truncate did not reach the domain index")
	}

	// DROP INDEX reaches ODCIIndexDrop (the data table disappears).
	mustExec(t, s, `DROP INDEX DocKwIdx`)
	if _, err := s.Query(`SELECT COUNT(*) FROM DR$DOCKWIDX$KW`); err == nil {
		t.Fatal("index data table survived drop")
	}
}

func TestDomainIndexTransactionalRollback(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)

	countKw := func(kw string) int {
		rs := mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, ?)`, types.Str(kw))
		return len(rs.Rows)
	}
	before := countKw("oracle")

	// §2.5: updates to index data share the transaction of the base-table
	// update; user abort rolls both back.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO Docs VALUES (100, 'oracle rollback test')`)
	if countKw("rollback") != 1 {
		t.Fatal("in-transaction index entry invisible")
	}
	mustExec(t, s, `ROLLBACK`)
	if countKw("rollback") != 0 {
		t.Error("rolled-back row still indexed")
	}
	if countKw("oracle") != before {
		t.Error("rollback corrupted index")
	}

	// Statement atomicity: a failing ODCIIndexInsert aborts the whole
	// statement, including the heap insert and earlier index rows.
	m.failNext["insert"] = true
	if _, err := s.Exec(`INSERT INTO Docs VALUES (101, 'doomed insert')`); err == nil {
		t.Fatal("failing maintenance did not fail the statement")
	}
	rs := mustQuery(t, s, `SELECT COUNT(*) FROM Docs WHERE id = 101`)
	if rs.Rows[0][0].Int64() != 0 {
		t.Error("heap insert survived failed index maintenance")
	}
}

func TestCallbackRestrictions(t *testing.T) {
	db := newDB(t)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE base(v VARCHAR2)`)

	// Maintenance mode: DDL rejected, base-table writes rejected, other
	// DML and queries allowed.
	maint := s.server(extidx.ModeMaintenance, "base")
	if _, err := maint.Exec(`CREATE TABLE x(v NUMBER)`); err == nil {
		t.Error("maintenance DDL allowed")
	}
	if _, err := maint.Exec(`INSERT INTO base VALUES ('boom')`); err == nil {
		t.Error("maintenance write to base table allowed")
	}
	if _, err := maint.Query(`SELECT COUNT(*) FROM base`); err != nil {
		t.Errorf("maintenance query rejected: %v", err)
	}

	// Scan mode: queries only.
	scan := s.server(extidx.ModeScan, "base")
	if _, err := scan.Exec(`INSERT INTO base VALUES ('x')`); err == nil {
		t.Error("scan-mode DML allowed")
	}
	if _, err := scan.Query(`SELECT COUNT(*) FROM base`); err != nil {
		t.Errorf("scan query rejected: %v", err)
	}

	// Definition mode: everything allowed.
	def := s.server(extidx.ModeDefinition, "base")
	if _, err := def.Exec(`CREATE TABLE defmade(v NUMBER)`); err != nil {
		t.Errorf("definition DDL rejected: %v", err)
	}
	if _, err := def.Exec(`INSERT INTO base VALUES ('ok')`); err != nil {
		t.Errorf("definition DML rejected: %v", err)
	}
}

func TestAncillaryOperator(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)

	// Contains-style label pairing: HasKw(body, 'oracle', 1) with
	// KwScore(1) exposes the scan's ancillary value (toy score = keyword
	// length). Ancillary data only exists on the index path, so force it.
	s.SetForcedPath(ForceDomainScan)
	defer s.SetForcedPath(ForceAuto)
	rs := mustQuery(t, s, `SELECT id, KwScore(1) FROM Docs WHERE HasKw(body, 'oracle', 1) ORDER BY id`)
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	for _, r := range rs.Rows {
		if r[1].Float() != 6 { // len("oracle")
			t.Errorf("score = %v", r[1])
		}
	}
}

func TestOptimizerChoosesCheaperPath(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	// Grow the table so costs separate cleanly.
	for i := 10; i < 400; i++ {
		body := "filler words here"
		if i%2 == 0 {
			body = "oracle " + body // 'oracle' is very common
		}
		mustExec(t, s, `INSERT INTO Docs VALUES (?, ?)`, types.Int(int64(i)), types.Str(body))
	}
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
	mustExec(t, s, `CREATE UNIQUE INDEX DocIdIdx ON Docs(id)`)

	// Rare keyword → domain scan wins.
	ex := mustQuery(t, s, `EXPLAIN PLAN FOR SELECT id FROM Docs WHERE HasKw(body, 'cooking')`)
	if !strings.Contains(ex.Rows[0][0].Text(), "DOMAIN INDEX") {
		t.Errorf("rare keyword plan = %v", ex.Rows)
	}

	// Keyword + unique id equality → B-tree on id is far cheaper; the
	// operator falls back to its functional implementation (the paper's
	// Contains(resume,'Oracle') AND id=100 example).
	ex = mustQuery(t, s, `EXPLAIN PLAN FOR SELECT id FROM Docs WHERE HasKw(body, 'oracle') AND id = 42`)
	if !strings.Contains(ex.Rows[0][0].Text(), "DOCIDIDX") {
		t.Errorf("id-equality plan = %v", ex.Rows)
	}
	rs := mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'oracle') AND id = 42`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int64() != 42 {
		t.Errorf("combined predicate rows = %v", rs.Rows)
	}

	// Very common keyword ('oracle' in ~half the table): full scan beats
	// the domain index under the user-supplied cost model.
	ex = mustQuery(t, s, `EXPLAIN PLAN FOR SELECT COUNT(*) FROM Docs WHERE HasKw(body, 'oracle')`)
	if !strings.Contains(ex.Rows[0][0].Text(), "TABLE ACCESS FULL") {
		t.Errorf("common keyword plan = %v", ex.Rows)
	}
}

func TestScanStateHandleVsValue(t *testing.T) {
	for _, useHandle := range []bool{false, true} {
		t.Run(fmt.Sprintf("handle=%v", useHandle), func(t *testing.T) {
			db := newDB(t)
			m := &kwMethods{useHandle: useHandle, failNext: map[string]bool{}}
			s := setupKwCartridge(t, db, m)
			mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
			rs := mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'oracle') ORDER BY id`)
			if len(rs.Rows) != 3 {
				t.Fatalf("rows = %v", rs.Rows)
			}
			if db.Workspace().Live() != 0 {
				t.Errorf("workspace leaked %d entries", db.Workspace().Live())
			}
		})
	}
}

func TestBatchedFetch(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	for i := 10; i < 200; i++ {
		mustExec(t, s, `INSERT INTO Docs VALUES (?, 'common word')`, types.Int(int64(i)))
	}
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
	db.DefaultFetchBatch = 16
	rs := mustQuery(t, s, `SELECT COUNT(*) FROM Docs WHERE HasKw(body, 'common')`)
	if rs.Rows[0][0].Int64() != 190 {
		t.Fatalf("count = %s", rs.Rows[0][0])
	}
}

func TestDropIndexTypeDependencyRules(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)

	if _, err := s.Exec(`DROP INDEXTYPE KwIndexType`); err == nil {
		t.Error("indextype dropped while an index uses it")
	}
	if _, err := s.Exec(`DROP OPERATOR HasKw`); err == nil {
		t.Error("operator dropped while an indextype lists it")
	}
	mustExec(t, s, `DROP INDEX DocKwIdx`)
	mustExec(t, s, `DROP INDEXTYPE KwIndexType`)
	mustExec(t, s, `DROP OPERATOR HasKw`)
}
