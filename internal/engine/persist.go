package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"repro/internal/bitmapidx"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/hashidx"
	"repro/internal/loblib"
	"repro/internal/storage"
	"repro/internal/types"
)

// Database persistence: page 0 is the superblock pointing at a chain of
// snapshot pages holding a gob-encoded image of the data dictionary (and
// the LOB directory). Heaps, B-trees, hash indexes and LOBs live in
// ordinary pages and only need their root/head references persisted;
// bitmap indexes are serialized wholesale into the snapshot.
//
// A snapshot is written on Checkpoint and Close; Open of a non-empty file
// loads it and reattaches every storage structure. Go-registered pieces
// (functions, IndexMethods) are process state: cartridges must be
// re-registered after reopen, exactly like loading a cartridge library
// at instance startup. Indextypes that keep state outside the database
// (the external R-tree) must be rebuilt, which is precisely the paper's
// §5 caveat about external index stores.

var superMagic = [8]byte{'E', 'X', 'D', 'B', 'S', 'N', 'A', 'P'}

const (
	snapPageHeader = 6 // next page id (4) + payload length (2)
	snapPayload    = storage.PageSize - snapPageHeader
)

// snapColumn mirrors catalog.Column for gob.
type snapColumn struct {
	Name     string
	Kind     uint8
	TypeName string
}

type snapTable struct {
	Name     string
	Cols     []snapColumn
	HeapHead storage.PageID
	RowCount int
	Hidden   bool
}

type snapIndex struct {
	Name         string
	Table        string
	Column       string
	ColPos       int
	Kind         int
	Unique       bool
	IndexType    string
	Params       string
	DistinctKeys int
	HasRange     bool
	MinVal       float64
	MaxVal       float64

	BTreeMeta storage.PageID
	HashDir   storage.PageID
	Bitmap    map[string][]byte // encoded value key -> serialized bitmap
}

type snapBinding struct {
	ArgKinds   []uint8
	ReturnKind uint8
	FuncName   string
}

type snapOperator struct {
	Name        string
	Bindings    []snapBinding
	AncillaryTo string
}

type snapOpSig struct {
	Name     string
	ArgKinds []uint8
}

type snapIndexType struct {
	Name        string
	Ops         []snapOpSig
	MethodsName string
	StatsName   string
}

type snapTypeDesc struct {
	Name      string
	AttrNames []string
	AttrKinds []uint8
}

type snapshot struct {
	Tables     []snapTable
	Indexes    []snapIndex
	Operators  []snapOperator
	IndexTypes []snapIndexType
	TypeDescs  []snapTypeDesc
	LOBs       []loblib.DirEntry
}

// initSuperblock formats page 0 of a fresh database.
func (db *DB) initSuperblock() error {
	pg, err := db.pager.NewPage()
	if err != nil {
		return err
	}
	if pg.ID != 0 {
		db.pager.Unpin(pg, false)
		return fmt.Errorf("engine: superblock allocated as page %d", pg.ID)
	}
	copy(pg.Data[0:8], superMagic[:])
	binary.BigEndian.PutUint32(pg.Data[8:12], uint32(storage.InvalidPage))
	db.pager.Unpin(pg, true)
	return nil
}

// snapshotBytes gob-encodes the current dictionary snapshot. The WAL
// commit protocol embeds it in every commit record so recovery restores
// volatile dictionary state (row counts, bitmap indexes, the LOB
// directory, committed DDL) without needing a checkpoint.
func (db *DB) snapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db.buildSnapshot()); err != nil {
		return nil, fmt.Errorf("engine: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// applySnapshotBytes decodes and applies a gob snapshot (the WAL
// recovery path; the page-0 chain path is loadSnapshot).
func (db *DB) applySnapshotBytes(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("engine: decode snapshot: %w", err)
	}
	return db.applySnapshot(snap)
}

// SaveSnapshot serializes the dictionary into the snapshot chain and
// flushes all dirty pages.
func (db *DB) SaveSnapshot() error {
	if err := db.writeSnapshotChain(); err != nil {
		return err
	}
	return db.pager.FlushAll()
}

// writeSnapshotChain serializes the dictionary into the page-0 snapshot
// chain, leaving the chain pages dirty in the buffer pool (the caller
// decides when they hit the backend: directly via FlushAll, or logged
// first by the WAL checkpoint protocol).
func (db *DB) writeSnapshotChain() error {
	data, err := db.snapshotBytes()
	if err != nil {
		return err
	}

	// Free the previous chain.
	pg, err := db.pager.Fetch(0)
	if err != nil {
		return err
	}
	old := storage.PageID(binary.BigEndian.Uint32(pg.Data[8:12]))
	db.pager.Unpin(pg, false)
	for id := old; id != storage.InvalidPage; {
		cp, err := db.pager.Fetch(id)
		if err != nil {
			return err
		}
		next := storage.PageID(binary.BigEndian.Uint32(cp.Data[0:4]))
		db.pager.Unpin(cp, false)
		db.pager.Free(id)
		id = next
	}

	// Write the new chain. Each page is unpinned within its own loop
	// iteration (the back-link is patched through a re-fetch, which hits
	// the buffer cache) so an allocation failure part-way through cannot
	// leak a pinned frame.
	head := storage.InvalidPage
	prev := storage.InvalidPage
	for off := 0; off < len(data) || off == 0; off += snapPayload {
		npg, err := db.pager.NewPage()
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint32(npg.Data[0:4], uint32(storage.InvalidPage))
		n := len(data) - off
		if n > snapPayload {
			n = snapPayload
		}
		binary.BigEndian.PutUint16(npg.Data[4:6], uint16(n))
		copy(npg.Data[snapPageHeader:], data[off:off+n])
		id := npg.ID
		db.pager.Unpin(npg, true)
		if prev != storage.InvalidPage {
			ppg, err := db.pager.Fetch(prev)
			if err != nil {
				return err
			}
			binary.BigEndian.PutUint32(ppg.Data[0:4], uint32(id))
			db.pager.Unpin(ppg, true)
		} else {
			head = id
		}
		prev = id
		if n < snapPayload {
			break
		}
	}
	pg, err = db.pager.Fetch(0)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(pg.Data[8:12], uint32(head))
	db.pager.Unpin(pg, true)
	return nil
}

func (db *DB) buildSnapshot() snapshot {
	var snap snapshot
	for _, t := range db.cat.Tables() {
		st := snapTable{
			Name: t.Name, HeapHead: t.Heap.FirstPage(),
			RowCount: t.RowCount, Hidden: t.Hidden,
		}
		for _, c := range t.Cols {
			st.Cols = append(st.Cols, snapColumn{Name: c.Name, Kind: uint8(c.Kind), TypeName: c.TypeName})
		}
		snap.Tables = append(snap.Tables, st)
		for _, ix := range db.cat.TableIndexes(t.Name) {
			si := snapIndex{
				Name: ix.Name, Table: ix.Table, Column: ix.Column, ColPos: ix.ColPos,
				Kind: int(ix.Kind), Unique: ix.Unique, IndexType: ix.IndexType,
				Params: ix.Params, DistinctKeys: ix.DistinctKeys,
				HasRange: ix.HasRange, MinVal: ix.MinVal, MaxVal: ix.MaxVal,
				BTreeMeta: storage.InvalidPage, HashDir: storage.InvalidPage,
			}
			switch ix.Kind {
			case catalog.BTreeIndex:
				si.BTreeMeta = ix.BT.MetaPage()
			case catalog.HashIndex:
				si.HashDir = ix.HX.DirPage()
			case catalog.BitmapIndex:
				si.Bitmap = serializeBitmapIndex(ix.BM)
			}
			snap.Indexes = append(snap.Indexes, si)
		}
	}
	for _, opName := range db.cat.OperatorNames() {
		op, _ := db.cat.Operator(opName)
		so := snapOperator{Name: op.Name, AncillaryTo: op.AncillaryTo}
		for _, b := range op.Bindings {
			sb := snapBinding{ReturnKind: uint8(b.ReturnKind), FuncName: b.FuncName}
			for _, k := range b.ArgKinds {
				sb.ArgKinds = append(sb.ArgKinds, uint8(k))
			}
			so.Bindings = append(so.Bindings, sb)
		}
		snap.Operators = append(snap.Operators, so)
	}
	for _, itName := range db.cat.IndexTypeNames() {
		it, _ := db.cat.IndexType(itName)
		sit := snapIndexType{Name: it.Name, MethodsName: it.MethodsName, StatsName: it.StatsName}
		for _, sig := range it.Ops {
			ss := snapOpSig{Name: sig.Name}
			for _, k := range sig.ArgKinds {
				ss.ArgKinds = append(ss.ArgKinds, uint8(k))
			}
			sit.Ops = append(sit.Ops, ss)
		}
		snap.IndexTypes = append(snap.IndexTypes, sit)
	}
	for _, tdName := range db.cat.TypeDescNames() {
		td, _ := db.cat.TypeDesc(tdName)
		std := snapTypeDesc{Name: td.Name, AttrNames: append([]string(nil), td.AttrNames...)}
		for _, k := range td.AttrKinds {
			std.AttrKinds = append(std.AttrKinds, uint8(k))
		}
		snap.TypeDescs = append(snap.TypeDescs, std)
	}
	snap.LOBs = db.lobs.Snapshot()
	return snap
}

// loadSnapshot reads the snapshot chain and rebuilds the dictionary.
func (db *DB) loadSnapshot() error {
	pg, err := db.pager.Fetch(0)
	if err != nil {
		return err
	}
	if !bytes.Equal(pg.Data[0:8], superMagic[:]) {
		db.pager.Unpin(pg, false)
		return fmt.Errorf("engine: not an extdb database (bad superblock magic)")
	}
	head := storage.PageID(binary.BigEndian.Uint32(pg.Data[8:12]))
	db.pager.Unpin(pg, false)
	if head == storage.InvalidPage {
		return nil // empty database
	}
	var data []byte
	for id := head; id != storage.InvalidPage; {
		cp, err := db.pager.Fetch(id)
		if err != nil {
			return err
		}
		next := storage.PageID(binary.BigEndian.Uint32(cp.Data[0:4]))
		n := int(binary.BigEndian.Uint16(cp.Data[4:6]))
		data = append(data, cp.Data[snapPageHeader:snapPageHeader+n]...)
		db.pager.Unpin(cp, false)
		id = next
	}
	return db.applySnapshotBytes(data)
}

func (db *DB) applySnapshot(snap snapshot) error {
	for _, st := range snap.Tables {
		heap, err := storage.OpenHeap(db.pager, st.HeapHead)
		if err != nil {
			return fmt.Errorf("engine: reopen heap of %s: %w", st.Name, err)
		}
		t := &catalog.Table{Name: st.Name, Heap: heap, RowCount: st.RowCount, Hidden: st.Hidden}
		for _, c := range st.Cols {
			t.Cols = append(t.Cols, catalog.Column{Name: c.Name, Kind: types.Kind(c.Kind), TypeName: c.TypeName})
		}
		if err := db.cat.AddTable(t); err != nil {
			return err
		}
	}
	for _, std := range snap.TypeDescs {
		td := &types.TypeDesc{Name: std.Name, AttrNames: std.AttrNames}
		for _, k := range std.AttrKinds {
			td.AttrKinds = append(td.AttrKinds, types.Kind(k))
		}
		if err := db.cat.AddTypeDesc(td); err != nil {
			return err
		}
	}
	for _, so := range snap.Operators {
		op := &catalog.Operator{Name: so.Name, AncillaryTo: so.AncillaryTo}
		for _, sb := range so.Bindings {
			b := catalog.Binding{ReturnKind: types.Kind(sb.ReturnKind), FuncName: sb.FuncName}
			for _, k := range sb.ArgKinds {
				b.ArgKinds = append(b.ArgKinds, types.Kind(k))
			}
			op.Bindings = append(op.Bindings, b)
		}
		if err := db.cat.AddOperator(op); err != nil {
			return err
		}
	}
	for _, sit := range snap.IndexTypes {
		it := &catalog.IndexType{Name: sit.Name, MethodsName: sit.MethodsName, StatsName: sit.StatsName}
		for _, ss := range sit.Ops {
			sig := catalog.OpSig{Name: ss.Name}
			for _, k := range ss.ArgKinds {
				sig.ArgKinds = append(sig.ArgKinds, types.Kind(k))
			}
			it.Ops = append(it.Ops, sig)
		}
		if err := db.cat.AddIndexType(it); err != nil {
			return err
		}
	}
	for _, si := range snap.Indexes {
		ix := &catalog.Index{
			Name: si.Name, Table: si.Table, Column: si.Column, ColPos: si.ColPos,
			Kind: catalog.IndexKind(si.Kind), Unique: si.Unique,
			IndexType: si.IndexType, Params: si.Params, DistinctKeys: si.DistinctKeys,
			HasRange: si.HasRange, MinVal: si.MinVal, MaxVal: si.MaxVal,
		}
		var err error
		switch ix.Kind {
		case catalog.BTreeIndex:
			ix.BT, err = btree.Open(db.pager, si.BTreeMeta)
		case catalog.HashIndex:
			ix.HX, err = hashidx.Open(db.pager, si.HashDir)
		case catalog.BitmapIndex:
			ix.BM, err = deserializeBitmapIndex(si.Bitmap)
		}
		if err != nil {
			return fmt.Errorf("engine: reopen index %s: %w", si.Name, err)
		}
		if err := db.cat.AddIndex(ix); err != nil {
			return err
		}
	}
	db.lobs.Restore(snap.LOBs)
	return nil
}

func serializeBitmapIndex(x *bitmapidx.Index) map[string][]byte {
	out := make(map[string][]byte)
	x.Each(func(key []byte, bm *bitmapidx.Bitmap) {
		out[string(key)] = bm.Serialize()
	})
	return out
}

func deserializeBitmapIndex(m map[string][]byte) (*bitmapidx.Index, error) {
	x := bitmapidx.NewIndex()
	for key, enc := range m {
		bm, err := bitmapidx.Deserialize(enc)
		if err != nil {
			return nil, err
		}
		bm.Each(func(pos uint64) bool {
			x.Insert([]byte(key), pos)
			return true
		})
	}
	return x, nil
}
