package engine

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/extidx"
	"repro/internal/types"
)

func TestConcurrentSessionsDisjointTables(t *testing.T) {
	db := newDB(t)
	setup := db.NewSession()
	for i := 0; i < 4; i++ {
		mustExec(t, setup, fmt.Sprintf(`CREATE TABLE t%d(v NUMBER)`, i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := db.NewSession()
			for j := 0; j < 200; j++ {
				if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t%d VALUES (?)`, i), types.Int(int64(j))); err != nil {
					errs <- err
					return
				}
			}
			rs, err := s.Query(fmt.Sprintf(`SELECT COUNT(*) FROM t%d`, i))
			if err != nil {
				errs <- err
				return
			}
			if rs.Rows[0][0].Int64() != 200 {
				errs <- fmt.Errorf("t%d count = %s", i, rs.Rows[0][0])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriterSameTable(t *testing.T) {
	db := newDB(t)
	setup := db.NewSession()
	mustExec(t, setup, `CREATE TABLE shared(v NUMBER)`)
	mustExec(t, setup, `INSERT INTO shared VALUES (1), (2), (3)`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, err := s.Query(`SELECT COUNT(*) FROM shared`)
				if err != nil {
					errs <- err
					return
				}
				// Writers only append; count is monotone >= 3.
				if rs.Rows[0][0].Int64() < 3 {
					errs <- fmt.Errorf("reader saw %s rows", rs.Rows[0][0])
					return
				}
			}
		}()
	}
	w := db.NewSession()
	for i := 0; i < 300; i++ {
		mustExec(t, w, `INSERT INTO shared VALUES (?)`, types.Int(int64(i)))
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	rs := mustQuery(t, w, `SELECT COUNT(*) FROM shared`)
	if rs.Rows[0][0].Int64() != 303 {
		t.Errorf("final count = %s", rs.Rows[0][0])
	}
}

func TestTxLOBUndo(t *testing.T) {
	db := newDB(t)
	s := db.NewSession()
	// Work through a callback server so LOB writes are transactional.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	srv := s.server(extidx.ModeDefinition, "")
	lobs := srv.LOBs()
	id, err := lobs.Create()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lobs.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("committed"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// Overwrite + truncate inside a rolled-back transaction must revert.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	srv = s.server(extidx.ModeDefinition, "")
	b2, err := srv.LOBs().Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.WriteAt([]byte("SCRIBBLE!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := b2.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}

	raw, err := db.LOBStore().Open(id)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := raw.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "committed" {
		t.Errorf("LOB after rollback = %q", buf)
	}
	if n, _ := raw.Length(); n != 9 {
		t.Errorf("LOB length after rollback = %d", n)
	}
	// A LOB created in a rolled-back transaction disappears.
	s.Begin()
	srv = s.server(extidx.ModeDefinition, "")
	tmpID, _ := srv.LOBs().Create()
	s.Rollback()
	if _, err := db.LOBStore().Open(tmpID); err == nil {
		t.Error("LOB created in rolled-back txn survived")
	}
}

func TestRowidAccessPath(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(v VARCHAR2)`)
	mustExec(t, s, `INSERT INTO t VALUES ('a'), ('b'), ('c')`)
	rows := mustQuery(t, s, `SELECT ROWID, v FROM t WHERE v = 'b'`)
	rid := rows.Rows[0][0]

	ex := mustQuery(t, s, `EXPLAIN PLAN FOR SELECT v FROM t WHERE ROWID = ?`, rid)
	if !strings.Contains(ex.Rows[0][0].Text(), "BY ROWID") {
		t.Errorf("plan = %v", ex.Rows)
	}
	rs := mustQuery(t, s, `SELECT v FROM t WHERE ROWID = ?`, rid)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text() != "b" {
		t.Errorf("rowid fetch = %v", rs.Rows)
	}
	// A stale rowid yields zero rows, not an error.
	mustExec(t, s, `DELETE FROM t WHERE v = 'b'`)
	rs = mustQuery(t, s, `SELECT v FROM t WHERE ROWID = ?`, rid)
	if len(rs.Rows) != 0 {
		t.Errorf("stale rowid matched %v", rs.Rows)
	}
}

func TestRowidJoinUsesDirectFetch(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE big(v NUMBER)`)
	for i := 0; i < 500; i++ {
		mustExec(t, s, `INSERT INTO big VALUES (?)`, types.Int(int64(i)))
	}
	mustExec(t, s, `CREATE TABLE picks(rid NUMBER)`)
	base := mustQuery(t, s, `SELECT ROWID FROM big WHERE v < 5`)
	for _, r := range base.Rows {
		mustExec(t, s, `INSERT INTO picks VALUES (?)`, r[0])
	}
	ex := mustQuery(t, s, `EXPLAIN PLAN FOR SELECT b.v FROM big b, picks p WHERE b.ROWID = p.rid`)
	var plan []string
	for _, r := range ex.Rows {
		plan = append(plan, r[0].Text())
	}
	joined := strings.Join(plan, "|")
	if !strings.Contains(joined, "BY ROWID ON BIG") {
		t.Errorf("plan = %v", plan)
	}
	rs := mustQuery(t, s, `SELECT b.v FROM big b, picks p WHERE b.ROWID = p.rid ORDER BY b.v`)
	if len(rs.Rows) != 5 || rs.Rows[4][0].Int64() != 4 {
		t.Errorf("rowid join = %v", rs.Rows)
	}
}

func TestOrderByNonSelectedExpression(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(a NUMBER, b NUMBER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)`)
	rs := mustQuery(t, s, `SELECT a FROM t ORDER BY b`)
	if len(rs.Columns) != 1 || rs.Columns[0] != "A" {
		t.Errorf("hidden sort column leaked: %v", rs.Columns)
	}
	got := []int64{rs.Rows[0][0].Int64(), rs.Rows[1][0].Int64(), rs.Rows[2][0].Int64()}
	if got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Errorf("order = %v", got)
	}
	// ORDER BY an alias.
	rs = mustQuery(t, s, `SELECT a * 10 AS tens FROM t ORDER BY tens DESC`)
	if rs.Rows[0][0].Float() != 30 {
		t.Errorf("alias order = %v", rs.Rows)
	}
	// ORDER BY expression also in the select list (matched, not duplicated).
	rs = mustQuery(t, s, `SELECT b FROM t ORDER BY b DESC LIMIT 1`)
	if rs.Rows[0][0].Float() != 30 {
		t.Errorf("matched order = %v", rs.Rows)
	}
}

func TestStatementErrors(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(a NUMBER)`)
	for _, bad := range []string{
		`SELECT * FROM missing`,
		`SELECT nope FROM t`,
		`INSERT INTO missing VALUES (1)`,
		`INSERT INTO t (nope) VALUES (1)`,
		`INSERT INTO t VALUES (1, 2)`,
		`UPDATE t SET nope = 1`,
		`DELETE FROM missing`,
		`CREATE INDEX i ON missing(a)`,
		`CREATE INDEX i ON t(nope)`,
		`DROP INDEX missing`,
		`CREATE INDEX di ON t(a) INDEXTYPE IS NoSuchType`,
		`CREATE TABLE t(a NUMBER)`, // duplicate
		`SELECT * FROM t WHERE a = 'x' AND`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("%q succeeded", bad)
		}
	}
	// Kind validation on insert.
	if _, err := s.Exec(`INSERT INTO t VALUES ('string-into-number')`); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestNamedBindParams(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(a NUMBER, b VARCHAR2)`)
	// Named binds are positional under the hood (:x is bind 0, :y bind 1).
	mustExec(t, s, `INSERT INTO t VALUES (:x, :y)`, types.Int(7), types.Str("seven"))
	rs := mustQuery(t, s, `SELECT b FROM t WHERE a = :val`, types.Int(7))
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text() != "seven" {
		t.Errorf("named binds = %v", rs.Rows)
	}
}

func TestSelectExpressionsOnly(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE one(v NUMBER)`)
	mustExec(t, s, `INSERT INTO one VALUES (1)`)
	rs := mustQuery(t, s, `SELECT 2 + 3, 'lit' FROM one`)
	if rs.Rows[0][0].Float() != 5 || rs.Rows[0][1].Text() != "lit" {
		t.Errorf("constant select = %v", rs.Rows)
	}
}

func TestDistinctAndMultiColumnOrder(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE t(a NUMBER, b VARCHAR2)`)
	mustExec(t, s, `INSERT INTO t VALUES (1,'x'), (1,'x'), (2,'x'), (1,'y')`)
	rs := mustQuery(t, s, `SELECT DISTINCT a, b FROM t ORDER BY a, b`)
	if len(rs.Rows) != 3 {
		t.Fatalf("distinct = %v", rs.Rows)
	}
	if rs.Rows[0][0].Int64() != 1 || rs.Rows[0][1].Text() != "x" ||
		rs.Rows[1][1].Text() != "y" || rs.Rows[2][0].Int64() != 2 {
		t.Errorf("order = %v", rs.Rows)
	}
}

func TestAnalyzeTable(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE TABLE a(k NUMBER)`)
	mustExec(t, s, `CREATE INDEX a_k ON a(k)`)
	// Stats are stale after bulk inserts (DistinctKeys collected at build
	// time over an empty table).
	for i := 0; i < 500; i++ {
		mustExec(t, s, `INSERT INTO a VALUES (?)`, types.Int(int64(i%50)))
	}
	ix, _ := db.Catalog().Index("a_k")
	if ix.DistinctKeys != 0 {
		t.Fatalf("pre-analyze DistinctKeys = %d", ix.DistinctKeys)
	}
	mustExec(t, s, `ANALYZE TABLE a`)
	if ix.DistinctKeys != 50 {
		t.Errorf("post-analyze DistinctKeys = %d, want 50", ix.DistinctKeys)
	}
	tbl, _ := db.Catalog().Table("a")
	if tbl.RowCount != 500 {
		t.Errorf("post-analyze RowCount = %d", tbl.RowCount)
	}
	// ANALYZE on a table with a domain index invokes StatsCollector when
	// implemented (kwStats does not implement it; just assert no error).
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
	mustExec(t, s, `ANALYZE TABLE Docs`)
	if _, err := s.Exec(`ANALYZE TABLE missing`); err == nil {
		t.Error("analyze of missing table succeeded")
	}
}

func TestThreeTableJoin(t *testing.T) {
	s := newDB(t).NewSession()
	mustExec(t, s, `CREATE TABLE region(rid NUMBER, rname VARCHAR2)`)
	mustExec(t, s, `CREATE TABLE dept(did NUMBER, region_id NUMBER, dname VARCHAR2)`)
	mustExec(t, s, `CREATE TABLE emp(name VARCHAR2, dept_id NUMBER)`)
	mustExec(t, s, `INSERT INTO region VALUES (1, 'west'), (2, 'east')`)
	mustExec(t, s, `INSERT INTO dept VALUES (10, 1, 'eng'), (20, 2, 'sales')`)
	mustExec(t, s, `INSERT INTO emp VALUES ('a', 10), ('b', 10), ('c', 20)`)
	mustExec(t, s, `CREATE INDEX dept_pk ON dept(did)`)
	mustExec(t, s, `CREATE INDEX region_pk ON region(rid)`)
	rs := mustQuery(t, s, `SELECT e.name, d.dname, r.rname
		FROM emp e, dept d, region r
		WHERE e.dept_id = d.did AND d.region_id = r.rid
		ORDER BY e.name`)
	if len(rs.Rows) != 3 {
		t.Fatalf("3-way join = %v", rs.Rows)
	}
	if rs.Rows[0][2].Text() != "west" || rs.Rows[2][2].Text() != "east" {
		t.Errorf("join values = %v", rs.Rows)
	}
	// With an extra filter on the last table.
	rs = mustQuery(t, s, `SELECT e.name FROM emp e, dept d, region r
		WHERE e.dept_id = d.did AND d.region_id = r.rid AND r.rname = 'west' ORDER BY e.name`)
	if len(rs.Rows) != 2 || rs.Rows[0][0].Text() != "a" {
		t.Errorf("filtered 3-way join = %v", rs.Rows)
	}
}
