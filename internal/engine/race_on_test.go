//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in; timing-
// sensitive tests (the wait-accounting overhead bound) skip themselves
// under -race, where every atomic costs an instrumented call.
const raceEnabled = true
