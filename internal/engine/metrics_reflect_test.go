package engine

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// These tests walk the Metrics struct with reflection so that adding an
// observability field without teaching Metrics.Merge and Metrics.String
// about it fails CI instead of silently dropping data in benchrunner
// aggregates or hiding the counter from \stats.

// fillLeaves sets every exported numeric leaf under v to a distinct
// nonzero value, creating one "K"-keyed entry per map and a single
// element per slice.
func fillLeaves(v reflect.Value, next *int64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).PkgPath != "" {
				continue // unexported: not part of the snapshot contract
			}
			fillLeaves(v.Field(i), next)
		}
	case reflect.Map:
		v.Set(reflect.MakeMap(v.Type()))
		elem := reflect.New(v.Type().Elem()).Elem()
		fillLeaves(elem, next)
		v.SetMapIndex(reflect.ValueOf("K").Convert(v.Type().Key()), elem)
	case reflect.Slice:
		elem := reflect.New(v.Type().Elem()).Elem()
		fillLeaves(elem, next)
		v.Set(reflect.Append(reflect.MakeSlice(v.Type(), 0, 1), elem))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next++
		v.SetInt(*next * 7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next++
		v.SetUint(uint64(*next * 7))
	case reflect.Float32, reflect.Float64:
		*next++
		v.SetFloat(float64(*next))
	}
}

// fixHistogramBounds rewrites every int64 field named UpperBound to a
// real histogram bucket bound: HistogramSnapshot.Merge re-buckets by
// bound and silently drops entries whose bound matches no bucket, so a
// filled snapshot must carry valid bounds to survive a merge. Maps are
// skipped — no histogram lives inside a map value today, and map
// elements are not settable in place.
func fixHistogramBounds(v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if f.PkgPath != "" {
				continue
			}
			if f.Name == "UpperBound" && v.Field(i).Kind() == reflect.Int64 {
				v.Field(i).SetInt(obs.BucketUpperBound(3))
				continue
			}
			fixHistogramBounds(v.Field(i))
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fixHistogramBounds(v.Index(i))
		}
	}
}

func filledMetrics() Metrics {
	var m Metrics
	var next int64
	fillLeaves(reflect.ValueOf(&m).Elem(), &next)
	fixHistogramBounds(reflect.ValueOf(&m).Elem())
	return m
}

// collectLeaves returns path -> value for every exported numeric leaf.
func collectLeaves(path string, v reflect.Value, out map[string]float64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if f.PkgPath != "" {
				continue
			}
			collectLeaves(path+"."+f.Name, v.Field(i), out)
		}
	case reflect.Map:
		keys := v.MapKeys()
		sort.Slice(keys, func(i, j int) bool { return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j]) })
		for _, k := range keys {
			collectLeaves(fmt.Sprintf("%s[%v]", path, k), v.MapIndex(k), out)
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			collectLeaves(fmt.Sprintf("%s[%d]", path, i), v.Index(i), out)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		out[path] = float64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		out[path] = float64(v.Uint())
	case reflect.Float32, reflect.Float64:
		out[path] = v.Float()
	}
}

// leafPaths lists the leaves of a filled Metrics in deterministic walk
// order (the order bumpLeaf visits them).
func leafPaths(m Metrics) []string {
	var paths []string
	var walk func(path string, v reflect.Value)
	walk = func(path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				f := v.Type().Field(i)
				if f.PkgPath != "" {
					continue
				}
				walk(path+"."+f.Name, v.Field(i))
			}
		case reflect.Map:
			keys := v.MapKeys()
			sort.Slice(keys, func(i, j int) bool { return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j]) })
			for _, k := range keys {
				walk(fmt.Sprintf("%s[%v]", path, k), v.MapIndex(k))
			}
		case reflect.Slice:
			for i := 0; i < v.Len(); i++ {
				walk(fmt.Sprintf("%s[%d]", path, i), v.Index(i))
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
			paths = append(paths, path)
		}
	}
	walk("Metrics", reflect.ValueOf(&m).Elem())
	return paths
}

// bumpLeaf adds a large delta to the target-th leaf in walk order
// (large, so values rendered as microsecond-rounded durations visibly
// change too). Map elements are copied, bumped, and stored back.
func bumpLeaf(v reflect.Value, target int, idx *int) bool {
	const delta = int64(1) << 32 // ~4.3 s when interpreted as nanos
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).PkgPath != "" {
				continue
			}
			if bumpLeaf(v.Field(i), target, idx) {
				return true
			}
		}
	case reflect.Map:
		keys := v.MapKeys()
		sort.Slice(keys, func(i, j int) bool { return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j]) })
		for _, k := range keys {
			elem := reflect.New(v.Type().Elem()).Elem()
			elem.Set(v.MapIndex(k))
			if bumpLeaf(elem, target, idx) {
				v.SetMapIndex(k, elem)
				return true
			}
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			if bumpLeaf(v.Index(i), target, idx) {
				return true
			}
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if *idx == target {
			v.SetInt(v.Int() + delta)
			*idx++
			return true
		}
		*idx++
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if *idx == target {
			v.SetUint(v.Uint() + uint64(delta))
			*idx++
			return true
		}
		*idx++
	case reflect.Float32, reflect.Float64:
		if *idx == target {
			v.SetFloat(v.Float() + float64(delta))
			*idx++
			return true
		}
		*idx++
	}
	return false
}

// TestMetricsMergeCoversEveryField: merging a fully-populated snapshot
// into a zero one must leave every numeric leaf nonzero. A zero leaf
// means the field was added to Metrics but not to Merge — benchrunner
// would silently drop it when aggregating per-experiment snapshots.
func TestMetricsMergeCoversEveryField(t *testing.T) {
	b := filledMetrics()
	want := map[string]float64{}
	collectLeaves("Metrics", reflect.ValueOf(&b).Elem(), want)
	if len(want) < 40 {
		t.Fatalf("walker found only %d leaves — reflection walk broken?", len(want))
	}

	var a Metrics
	a.Merge(b)
	got := map[string]float64{}
	collectLeaves("Metrics", reflect.ValueOf(&a).Elem(), got)
	for path := range want {
		v, ok := got[path]
		if !ok {
			t.Errorf("Metrics.Merge dropped %s entirely", path)
			continue
		}
		if v == 0 {
			t.Errorf("Metrics.Merge does not fold %s (still zero after merging a populated snapshot)", path)
		}
	}
}

// TestMetricsStringCoversEveryField: changing any numeric leaf of a
// fully-populated snapshot must change the rendered report. An
// invariant output means the field is invisible to \stats. Histogram
// bucket entries are exempt: only a histogram's Count/Sum render (the
// per-bucket distribution is detail String deliberately elides).
func TestMetricsStringCoversEveryField(t *testing.T) {
	base := filledMetrics()
	baseOut := base.String()
	paths := leafPaths(base)
	for target, path := range paths {
		if strings.Contains(path, ".Buckets[") {
			continue
		}
		m := filledMetrics()
		idx := 0
		if !bumpLeaf(reflect.ValueOf(&m).Elem(), target, &idx) {
			t.Fatalf("walker never reached leaf %d (%s)", target, path)
		}
		if m.String() == baseOut {
			t.Errorf("Metrics.String() does not render %s (output unchanged when it changes)", path)
		}
	}
}
