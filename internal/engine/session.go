package engine

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/catalog"
	"repro/internal/extidx"
	"repro/internal/loblib"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/types"
)

// Result reports the outcome of a non-query statement.
type Result struct {
	RowsAffected int64
}

// ResultSet is a fully materialized query result.
type ResultSet struct {
	Columns []string
	Rows    [][]types.Value
}

// Session is one client connection: it owns the current transaction (or
// runs in autocommit) and carries the per-row ancillary store used by
// ancillary operators. Sessions are not safe for concurrent use.
type Session struct {
	db       *DB
	tx       *txn.Txn
	explicit bool

	// Callback context: non-nil while this session is a callback session
	// handed to indextype routines.
	cbMode      extidx.CallbackMode
	cbBaseTable string // protected base table during maintenance
	isCallback  bool

	// anc holds ancillary values for the row currently being evaluated.
	anc map[int64]types.Value

	// noLock suppresses table locking (callback sessions run inside the
	// invoking statement, which already holds its locks).
	noLock bool

	// forced overrides the optimizer's access-path choice (test/bench
	// hook, see SetForcedPath).
	forced string

	// rowMode drains queries row-at-a-time through a RowAdapter and
	// degrades scans to per-row heap reads — the volcano baseline the
	// batch-sweep benchmark compares against (see SetRowMode).
	rowMode bool

	// parallel is the session's requested degree of parallelism for
	// eligible table accesses (see SetParallel). <= 1 means serial — the
	// default, so existing single-threaded behavior is opt-out of
	// nothing; the planner may still drop an eligible scan to serial
	// (small estimate, row mode, ancillary labels).
	parallel int

	// trace, while non-nil, is the active query trace: the planner
	// appends costed candidates to it and wraps operators in
	// exec.Instrument nodes. pendingTrace stages a trace for the next
	// runSelect (EXPLAIN ANALYZE and QueryTraced set it). Both are nil on
	// the untraced fast path.
	trace        *obs.QueryTrace
	pendingTrace *obs.QueryTrace
}

// NewSession opens a session on the database.
func (db *DB) NewSession() *Session {
	return &Session{db: db, anc: make(map[int64]types.Value)}
}

// DB returns the owning database.
func (s *Session) DB() *DB { return s.db }

// SetRowMode toggles row-at-a-time execution for this session: results
// are drained through a RowAdapter and scans do one heap read per row.
// It exists so benchmarks and tests can compare the volcano baseline
// against the batch path; normal sessions leave it off.
func (s *Session) SetRowMode(on bool) { s.rowMode = on }

// SetParallel sets the session's degree of parallelism for eligible
// table accesses. n <= 1 (1 is the default) keeps every plan serial.
// n > 1 lets the planner run full heap scans and partitioned domain
// scans behind an exchange with up to n workers, capped at GOMAXPROCS.
// n == 0 means "auto": use GOMAXPROCS. Parallel plans return rows in
// nondeterministic order unless the query has an ORDER BY; the degree
// actually chosen per scan appears as parallel=<n> in EXPLAIN output.
func (s *Session) SetParallel(n int) {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	s.parallel = n
}

// Parallel reports the session's requested degree of parallelism.
func (s *Session) Parallel() int {
	if s.parallel < 1 {
		return 1
	}
	return s.parallel
}

// ---------------------------------------------------------------------------
// Transaction plumbing

// begin returns the transaction to run a statement in and a finish
// function: in autocommit mode each statement gets its own transaction;
// inside BEGIN...COMMIT the session transaction is reused with a
// savepoint for statement atomicity.
func (s *Session) begin() (*txn.Txn, func(err error) error) {
	if s.explicit && s.tx != nil {
		sp := s.tx.Savepoint()
		return s.tx, func(err error) error {
			if err != nil {
				if rbErr := s.tx.RollbackTo(sp); rbErr != nil {
					return fmt.Errorf("%w (statement rollback also failed: %v)", err, rbErr)
				}
			}
			return err
		}
	}
	t := s.db.txns.Begin()
	s.tx = t
	return t, func(err error) error {
		s.tx = nil
		if err != nil {
			if rbErr := t.Rollback(); rbErr != nil {
				return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
			}
			return err
		}
		return t.Commit()
	}
}

// admitWrite admits the statement about to modify the named tables into
// the writer population, returning the statement-end release (a no-op
// when admission is transaction-scoped or not needed). It must run
// before the statement takes any table lock: admission waiters hold no
// locks, so the admission → table-lock order can never cycle.
//
//   - No WAL: the commit path does no frame sweep, no admission.
//   - Callback session: the invoking write statement's transaction is
//     already admitted.
//   - Explicit transaction: admission is acquired for the transaction
//     and released when it commits or rolls back (upgraded in place if
//     a later statement needs exclusive admission).
//   - Autocommit: the statement's transaction begins and commits inside
//     the statement, so admission spans the statement's duration.
//
// Ordinary DML admits shared — that is the whole point of group commit:
// many writers in flight, one fsync. DML on a table with a bitmap or
// domain index admits exclusive, because those maintenance paths mutate
// dictionary state that rides in every committer's snapshot (see
// needsExclusiveAdmission).
func (s *Session) admitWrite(tables ...string) func() {
	db := s.db
	if db.wal == nil || s.isCallback {
		return func() {}
	}
	exclusive := db.needsExclusiveAdmission(tables)
	if s.explicit && s.tx != nil {
		db.admitTxn(s.tx, exclusive)
		return func() {}
	}
	db.admitAcquire(exclusive)
	return func() { db.admitRelease(exclusive) }
}

// runWrite executes a write statement's mutation body inside the
// database's mutation window and settles the transaction with the
// correct window discipline:
//
//   - The body (and any statement-level rollback a failure triggers)
//     runs inside the window — page mutation and undo replay are
//     serialized against concurrent committers' sweeps.
//   - A successful finish runs outside the window, so an autocommit
//     fsync can group with other committers instead of convoying the
//     window behind the disk.
//
// The pager's pending write-conflict (another uncommitted transaction
// already owns a frame this statement dirtied) is consumed
// unconditionally at statement end — a body that fails for an unrelated
// reason after latching a conflict must not leave it behind to falsely
// abort the next statement. A clean body with a latched conflict aborts
// with storage.ErrWriteConflict; when both are set the body's own error
// wins. Every latched conflict — surfaced or masked by the body's own
// error — is counted against table, the statement's target, so W1-style
// runs see the retry burden per table.
func (s *Session) runWrite(t *txn.Txn, finish func(err error) error, table string, body func() error) error {
	db := s.db
	if db.wal == nil {
		return finish(body())
	}
	exit := db.enterMutation(t.ID, false)
	err := body()
	if cerr := db.pager.TakeConflict(); cerr != nil {
		db.noteWriteConflict(table)
		if err == nil {
			err = cerr
		}
	}
	if err != nil {
		err = finish(err) // rollback replays undo inside this window
		exit()
		return err
	}
	exit()
	return finish(nil)
}

// Begin starts an explicit transaction.
func (s *Session) Begin() error {
	if s.explicit {
		return fmt.Errorf("engine: transaction already open")
	}
	s.tx = s.db.txns.Begin()
	s.explicit = true
	return nil
}

// Commit commits the explicit transaction.
func (s *Session) Commit() error {
	if !s.explicit || s.tx == nil {
		return fmt.Errorf("engine: no open transaction")
	}
	err := s.tx.Commit()
	s.tx = nil
	s.explicit = false
	return err
}

// Rollback rolls the explicit transaction back.
func (s *Session) Rollback() error {
	if !s.explicit || s.tx == nil {
		return fmt.Errorf("engine: no open transaction")
	}
	err := s.tx.Rollback()
	s.tx = nil
	s.explicit = false
	return err
}

// InExplicitTxn reports whether a BEGIN block is open.
func (s *Session) InExplicitTxn() bool { return s.explicit }

// lockTables acquires statement locks (sorted, deadlock-free) unless this
// is a callback session.
func (s *Session) lockTables(read []string, write []string) func() {
	if s.noLock {
		return func() {}
	}
	var names []string
	ex := map[string]bool{}
	for _, r := range read {
		names = append(names, sql.Norm(r))
	}
	for _, w := range write {
		n := sql.Norm(w)
		names = append(names, n)
		ex[n] = true
	}
	return s.db.locks.Acquire(names, ex)
}

// ---------------------------------------------------------------------------
// Statement dispatch

// Exec runs any SQL statement, returning the affected-row count for DML.
func (s *Session) Exec(text string, params ...types.Value) (Result, error) {
	st, err := s.db.parse(text)
	if err != nil {
		return Result{}, err
	}
	switch x := st.(type) {
	case *sql.Select:
		rs, err := s.runSelect(x, params)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: int64(len(rs.Rows))}, nil
	case *sql.ExplainStmt:
		if x.Analyze {
			_, err := s.ExplainAnalyze(x.Query, params)
			return Result{}, err
		}
		_, err := s.Explain(x.Query, params)
		return Result{}, err
	case *sql.Insert:
		return s.execInsert(x, params)
	case *sql.Update:
		return s.execUpdate(x, params)
	case *sql.Delete:
		return s.execDelete(x, params)
	case *sql.BeginStmt:
		return Result{}, s.Begin()
	case *sql.CommitStmt:
		return Result{}, s.Commit()
	case *sql.RollbackStmt:
		return Result{}, s.Rollback()
	default:
		return Result{}, s.execDDL(st)
	}
}

// Query runs a SELECT (or EXPLAIN) and returns the materialized result.
func (s *Session) Query(text string, params ...types.Value) (*ResultSet, error) {
	st, err := s.db.parse(text)
	if err != nil {
		return nil, err
	}
	switch x := st.(type) {
	case *sql.Select:
		return s.runSelect(x, params)
	case *sql.ExplainStmt:
		if x.Analyze {
			return s.ExplainAnalyze(x.Query, params)
		}
		return s.Explain(x.Query, params)
	default:
		return nil, fmt.Errorf("engine: Query requires SELECT or EXPLAIN, got %T", st)
	}
}

// QueryTraced runs a SELECT with a query trace attached and returns the
// result set together with the trace (candidates, per-operator actuals,
// pager delta). It is the structured-API counterpart of EXPLAIN ANALYZE.
func (s *Session) QueryTraced(text string, params ...types.Value) (*ResultSet, *obs.QueryTrace, error) {
	st, err := s.db.parse(text)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, nil, fmt.Errorf("engine: QueryTraced requires SELECT, got %T", st)
	}
	tr := obs.NewQueryTrace(text)
	s.pendingTrace = tr
	rs, err := s.runSelect(sel, params)
	return rs, tr, err
}

// ---------------------------------------------------------------------------
// exec.Env implementation (functions, operators, ancillary data)

// CallFunction implements exec.Env.
func (s *Session) CallFunction(name string, args []types.Value) (types.Value, bool, error) {
	if fn, ok := s.db.reg.Function(name); ok {
		v, err := fn(args)
		return v, true, err
	}
	return types.Null(), false, nil
}

// CallOperator implements exec.Env: the functional evaluation of a
// user-defined operator (used whenever the optimizer does not route the
// predicate to a domain index scan).
func (s *Session) CallOperator(name string, args []types.Value) (types.Value, bool, error) {
	op, ok := s.db.cat.Operator(name)
	if !ok {
		return types.Null(), false, nil
	}
	kinds := make([]types.Kind, len(args))
	for i, a := range args {
		kinds[i] = a.Kind()
	}
	b, ok := op.FindBinding(kinds)
	if !ok {
		// Operator invocations may carry a trailing ancillary label; retry
		// without it.
		if len(args) > 0 && args[len(args)-1].Kind() == types.KindNumber {
			if b2, ok2 := op.FindBinding(kinds[:len(kinds)-1]); ok2 {
				b, ok, args = b2, true, args[:len(args)-1]
			}
		}
		if !ok {
			return types.Null(), true, fmt.Errorf("engine: no binding of operator %s for %d arguments", name, len(args))
		}
	}
	fn, found := s.db.reg.Function(b.FuncName)
	if !found {
		return types.Null(), true, fmt.Errorf("engine: operator %s bound to unregistered function %s", name, b.FuncName)
	}
	v, err := fn(args)
	return v, true, err
}

// AncillaryValue implements exec.Env.
func (s *Session) AncillaryValue(label int64) (types.Value, bool) {
	v, ok := s.anc[label]
	return v, ok
}

// SetAncillary implements exec.AncillarySink: domain scans publish
// per-row ancillary values here.
func (s *Session) SetAncillary(label int64, v types.Value) {
	s.anc[label] = v
}

// IsAncillaryOp implements exec.Env.
func (s *Session) IsAncillaryOp(name string) (string, bool) {
	op, ok := s.db.cat.Operator(name)
	if !ok || op.AncillaryTo == "" {
		return "", false
	}
	return op.AncillaryTo, true
}

// ---------------------------------------------------------------------------
// extidx.Server implementation (callback sessions)

// callbackSession derives a restricted session for indextype routines.
// It shares the invoking statement's transaction, so all SQL the routine
// executes lands in the same transaction and snapshot (§2.5).
func (s *Session) callbackSession(mode extidx.CallbackMode, baseTable string) *Session {
	return &Session{
		db:          s.db,
		tx:          s.tx,
		explicit:    true, // reuse invoking txn; never autocommit
		cbMode:      mode,
		cbBaseTable: sql.Norm(baseTable),
		isCallback:  true,
		noLock:      true,
		anc:         make(map[int64]types.Value),
	}
}

// Mode implements extidx.Server.
func (s *Session) Mode() extidx.CallbackMode { return s.cbMode }

// QueryCB is the extidx.Server Query method; it is named Query in the
// interface and implemented by the same Session type.
// (See Query above — callback restrictions are enforced in checkCallback.)

// checkCallback enforces the paper's callback restrictions before a
// statement executes on a callback session.
func (s *Session) checkCallback(st sql.Statement) error {
	if !s.isCallback {
		return nil
	}
	isQuery := false
	switch st.(type) {
	case *sql.Select, *sql.ExplainStmt:
		isQuery = true
	}
	switch s.cbMode {
	case extidx.ModeDefinition:
		return nil
	case extidx.ModeScan:
		if !isQuery {
			return fmt.Errorf("engine: index scan routines can only execute query statements (got %T)", st)
		}
		return nil
	case extidx.ModeMaintenance:
		switch x := st.(type) {
		case *sql.Select, *sql.ExplainStmt:
			return nil
		case *sql.Insert:
			return s.checkNotBase(x.Table)
		case *sql.Update:
			return s.checkNotBase(x.Table)
		case *sql.Delete:
			return s.checkNotBase(x.Table)
		default:
			return fmt.Errorf("engine: index maintenance routines cannot execute DDL (got %T)", st)
		}
	}
	return nil
}

func (s *Session) checkNotBase(table string) error {
	if sql.Norm(table) == s.cbBaseTable {
		return fmt.Errorf("engine: index maintenance routines cannot update the base table %s", s.cbBaseTable)
	}
	return nil
}

// serverFacade adapts a callback Session to extidx.Server. A separate
// type keeps the restricted Query/Exec signatures of the interface
// (variadic types.Value) distinct from the Session API.
type serverFacade struct {
	s *Session
}

// Mode implements extidx.Server.
func (f serverFacade) Mode() extidx.CallbackMode { return f.s.cbMode }

// Query implements extidx.Server.
func (f serverFacade) Query(text string, args ...types.Value) ([][]types.Value, error) {
	st, err := f.s.db.parse(text)
	if err != nil {
		return nil, err
	}
	if err := f.s.checkCallback(st); err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("engine: callback Query requires SELECT, got %T", st)
	}
	rs, err := f.s.runSelect(sel, args)
	if err != nil {
		return nil, err
	}
	return rs.Rows, nil
}

// Exec implements extidx.Server.
func (f serverFacade) Exec(text string, args ...types.Value) (int64, error) {
	st, err := f.s.db.parse(text)
	if err != nil {
		return 0, err
	}
	if err := f.s.checkCallback(st); err != nil {
		return 0, err
	}
	switch x := st.(type) {
	case *sql.Select:
		rs, err := f.s.runSelect(x, args)
		if err != nil {
			return 0, err
		}
		return int64(len(rs.Rows)), nil
	case *sql.Insert:
		r, err := f.s.execInsert(x, args)
		return r.RowsAffected, err
	case *sql.Update:
		r, err := f.s.execUpdate(x, args)
		return r.RowsAffected, err
	case *sql.Delete:
		r, err := f.s.execDelete(x, args)
		return r.RowsAffected, err
	default:
		if err := f.s.execDDL(st); err != nil {
			return 0, err
		}
		return 0, nil
	}
}

// LOBs implements extidx.Server, returning the transactional LOB view.
func (f serverFacade) LOBs() loblib.Store { return txLOBStore{s: f.s} }

// Workspace implements extidx.Server.
func (f serverFacade) Workspace() *extidx.Workspace { return f.s.db.ws }

// RowCountEstimate implements extidx.Server from the data dictionary.
func (f serverFacade) RowCountEstimate(table string) (float64, error) {
	t, ok := f.s.db.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("engine: table %s does not exist", table)
	}
	return float64(t.RowCount), nil
}

// OnTxnCommit implements extidx.Server.
func (f serverFacade) OnTxnCommit(fn func()) {
	if f.s.tx != nil {
		f.s.tx.OnCommit(fn)
	} else {
		fn() // no transaction: autocommit semantics, fire immediately
	}
}

// OnTxnRollback implements extidx.Server.
func (f serverFacade) OnTxnRollback(fn func()) {
	if f.s.tx != nil {
		f.s.tx.OnRollback(fn)
	}
}

// server builds the extidx.Server facade for a callback mode.
func (s *Session) server(mode extidx.CallbackMode, baseTable string) extidx.Server {
	return serverFacade{s: s.callbackSession(mode, baseTable)}
}

// CallbackServer exposes a callback session for tooling that drives
// indextype routines outside the engine's implicit invocation — e.g. the
// benchmark harness that replays the pre-8i two-step execution model.
func (s *Session) CallbackServer(mode extidx.CallbackMode, baseTable string) extidx.Server {
	return s.server(mode, baseTable)
}

// indexMethodsFor resolves the registered IndexMethods for a domain index.
func (s *Session) indexMethodsFor(ix *catalog.Index) (extidx.IndexMethods, *catalog.IndexType, error) {
	it, ok := s.db.cat.IndexType(ix.IndexType)
	if !ok {
		return nil, nil, fmt.Errorf("engine: indextype %s of index %s not found", ix.IndexType, ix.Name)
	}
	m, ok := s.db.reg.Methods(it.MethodsName)
	if !ok {
		return nil, nil, fmt.Errorf("engine: index methods %s not registered", it.MethodsName)
	}
	return m, it, nil
}

// infoFor builds the IndexInfo passed to ODCIIndex routines.
func infoFor(ix *catalog.Index, tbl *catalog.Table) extidx.IndexInfo {
	return extidx.IndexInfo{
		IndexName:  strings.ToUpper(ix.Name),
		TableName:  strings.ToUpper(ix.Table),
		ColumnName: strings.ToUpper(ix.Column),
		ColumnKind: tbl.Cols[ix.ColPos].Kind,
		Params:     ix.Params,
	}
}
