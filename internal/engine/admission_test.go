package engine

// Regression tests for the write-admission protocol around checkpoints:
// the shared→exclusive upgrade gap, stale write-conflict latches, and
// the frame-orphaning order at transaction end. Each test pins a bug a
// review found in the group-commit PR; the hammer variants also run in
// the race and invariants CI jobs.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// newWALDB opens an in-memory database governed by an in-memory WAL —
// the configuration in which write admission, frame ownership and the
// mutation window are all active.
func newWALDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{
		Backend:        storage.NewMemBackend(),
		WALSink:        storage.NewMemWALSink(),
		CacheSizePages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestCheckpointRefusedDuringAdmissionUpgradeGap pins the upgrade-gap
// guard: a transaction upgrading shared→exclusive admission releases
// the admission lock entirely before re-acquiring it, so Checkpoint's
// TryLock can succeed mid-upgrade while the transaction still owns
// uncommitted frames. The admitted-map entry is what must keep the
// checkpoint out. The test reproduces the gap state directly — the
// transaction registered as admitted while the admission lock is free —
// and requires Checkpoint to refuse with ErrTxnOpen.
func TestCheckpointRefusedDuringAdmissionUpgradeGap(t *testing.T) {
	db := newWALDB(t)
	tx := db.txns.Begin()
	db.admitMu.Lock()
	db.admitted[tx] = false
	db.admitMu.Unlock()
	if err := db.Checkpoint(); !errors.Is(err, ErrTxnOpen) {
		t.Fatalf("Checkpoint during upgrade gap: got %v, want ErrTxnOpen", err)
	}
	db.admitMu.Lock()
	delete(db.admitted, tx)
	db.admitMu.Unlock()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint with no writer admitted: %v", err)
	}
}

// TestStatementFailureClearsWriteConflict pins the conflict-latch
// lifecycle: a statement that dirties another transaction's frame and
// then fails for an unrelated reason must consume the latched conflict
// on its way out. Before the fix the latch survived into the pager and
// falsely aborted the next statement with ErrWriteConflict after the
// owning transaction had already committed.
func TestStatementFailureClearsWriteConflict(t *testing.T) {
	db := newWALDB(t)
	a, b := db.NewSession(), db.NewSession()
	mustExec(t, a, `CREATE TABLE T(k NUMBER, v VARCHAR2)`)

	// A opens a transaction and dirties T's heap tail page.
	mustExec(t, a, `BEGIN`)
	mustExec(t, a, `INSERT INTO T VALUES (1, 'one')`)

	// B's statement dirties the same page (latching a conflict, first
	// dirtier wins) and then fails on the second row's type check. The
	// reported error must be the type error, not the conflict.
	_, err := b.Exec(`INSERT INTO T VALUES (2, 'two'), ('bad', 'three')`)
	if err == nil {
		t.Fatal("mixed-row INSERT: expected a validation error")
	}
	if errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("mixed-row INSERT: body error displaced by latched conflict: %v", err)
	}

	// Once A finishes, B must succeed: a stale latch from the failed
	// statement would abort this with a phantom ErrWriteConflict. (No
	// statement runs in between — an intervening one would consume the
	// stale latch and mask the regression.)
	mustExec(t, a, `COMMIT`)
	if _, err := b.Exec(`INSERT INTO T VALUES (4, 'four')`); err != nil {
		t.Fatalf("INSERT after owner committed: %v (stale conflict latch?)", err)
	}
	rs := mustQuery(t, b, `SELECT k FROM T`)
	if n := len(rs.Rows); n != 2 {
		t.Fatalf("expected rows {1,4}, got %d rows", n)
	}

	// The conflict machinery itself must keep working: with a fresh
	// owner in flight, a clean statement on the same page is refused.
	mustExec(t, a, `BEGIN`)
	mustExec(t, a, `INSERT INTO T VALUES (5, 'five')`)
	if _, err := b.Exec(`INSERT INTO T VALUES (6, 'six')`); !errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("INSERT against open owner: got %v, want ErrWriteConflict", err)
	}
	mustExec(t, a, `COMMIT`)
}

// TestCheckpointVsWriterRaces hammers Checkpoint against explicit
// transactions that commit, roll back, and upgrade their admission
// (plain DML first, bitmap-indexed DML second) — the schedules in which
// a checkpoint could previously slip in during the upgrade gap or
// between admission release and frame orphaning. Under -tags invariants
// the owned-frames assertion in Checkpoint turns either regression into
// a panic; under -race the admitted-map bookkeeping is exercised for
// data races. Checkpoint may be refused (ErrTxnOpen) but must never
// fail otherwise, and the final state must account for every
// acknowledged commit.
func TestCheckpointVsWriterRaces(t *testing.T) {
	db := newWALDB(t)
	setup := db.NewSession()
	const writers = 4
	for w := 0; w < writers; w++ {
		mustExec(t, setup, fmt.Sprintf(`CREATE TABLE P%d(id NUMBER, val VARCHAR2)`, w))
		mustExec(t, setup, fmt.Sprintf(`CREATE TABLE B%d(id NUMBER, dept VARCHAR2)`, w))
		mustExec(t, setup, fmt.Sprintf(`CREATE BITMAP INDEX BIdx%d ON B%d(dept)`, w, w))
	}

	const iters = 150
	var writersWG, cpWG sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, writers+1)

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			s := db.NewSession()
			for i := 0; i < iters; i++ {
				if err := s.Begin(); err != nil {
					errc <- err
					return
				}
				// Shared admit, then upgrade to exclusive: the second
				// statement's table carries a bitmap index.
				_, err := s.Exec(fmt.Sprintf(`INSERT INTO P%d VALUES (%d, 'v')`, w, i))
				if err == nil {
					_, err = s.Exec(fmt.Sprintf(`INSERT INTO B%d VALUES (%d, 'd%d')`, w, i, i%3))
				}
				if err != nil && !errors.Is(err, storage.ErrWriteConflict) {
					errc <- err
					s.Rollback()
					return
				}
				if err != nil || i%3 == 0 {
					err = s.Rollback()
				} else {
					err = s.Commit()
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}

	cpWG.Add(1)
	go func() {
		defer cpWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil && !errors.Is(err, ErrTxnOpen) {
				errc <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()

	writersWG.Wait()
	close(stop)
	cpWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if err := db.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	// Every writer's P-table and B-table row counts must agree: each
	// committed transaction wrote exactly one row to each.
	check := db.NewSession()
	for w := 0; w < writers; w++ {
		p := mustQuery(t, check, fmt.Sprintf(`SELECT id FROM P%d`, w))
		b := mustQuery(t, check, fmt.Sprintf(`SELECT id FROM B%d`, w))
		if len(p.Rows) != len(b.Rows) {
			t.Fatalf("writer %d: %d plain rows vs %d bitmap rows", w, len(p.Rows), len(b.Rows))
		}
	}
}
