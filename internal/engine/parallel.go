package engine

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/extidx"
	"repro/internal/sql"
	"repro/internal/types"
)

// Parallel table access: the planner side of morsel-driven execution
// (exec.Exchange). A single-table SELECT whose session requested
// parallelism (SetParallel) and whose chosen path is parallel-eligible
// is built as N worker pipelines — scan morsel + residual filter +
// optional partial aggregate — behind an exchange; everything above the
// exchange (merge aggregate, projection, sort, limit) stays the usual
// serial iterator stack.

// parallelMinRows is the cardinality floor below which the planner
// refuses to parallelize: goroutine startup and chunk handoff cost more
// than serially scanning a few hundred rows.
const parallelMinRows = 512

// morselsPerWorker targets this many morsels per worker so fast workers
// steal the tail of the scan instead of idling (load balancing).
const morselsPerWorker = 4

// pathDegree returns the worker count the session will run path with:
// the session's requested degree, or 1 when the path is not
// parallel-eligible, the row estimate is small, or the session drains
// row-at-a-time. An explicit SetParallel(n) is honored as-is — the
// GOMAXPROCS cap applies only to auto mode (SetParallel(0)), so a
// degree-8 parity test behaves identically on a 1-core and a 64-core
// box.
func (s *Session) pathDegree(path accessPath) int {
	if s.parallel <= 1 || s.rowMode {
		return 1
	}
	if path.parHeap == nil && path.parDom == nil {
		return 1
	}
	if path.estRows < parallelMinRows {
		return 1
	}
	return s.parallel
}

// morselPages sizes heap-scan morsels: enough pages per range that each
// worker sees ~morselsPerWorker of them, never below one page.
func morselPages(nPages, degree int) int {
	per := nPages / (degree * morselsPerWorker)
	if per < 1 {
		per = 1
	}
	return per
}

// buildParallelTableAccess is buildTableAccess for the single-table
// SELECT branch: it chooses the access path, and when the session's
// degree and the path's eligibility allow, assembles it as an exchange
// over scan morsels. agg, when non-nil, is the query's compiled
// aggregation; if the access parallelizes, its partial half is pushed
// into the worker pipelines and aggPushed returns true — the caller
// must then stack the FromPartial merge above the returned iterator
// instead of the full aggregate.
func (s *Session) buildParallelTableAccess(tb *tableBinding, conjuncts []sql.Expr, params []types.Value, agg *aggPlan) (it exec.Iterator, path accessPath, aggPushed bool, err error) {
	path = s.choosePath(tb, conjuncts, params)
	degree := s.pathDegree(path)
	if degree <= 1 {
		it, err = s.assembleSerialAccess(tb, path, conjuncts, params)
		return it, path, false, err
	}
	path.parallel = degree
	s.markChosenParallel(degree)

	// Residual predicate and aggregate expressions are compiled once and
	// shared across workers: exec.Compiled closures are pure functions
	// of the row, so concurrent evaluation needs no synchronization.
	var pred exec.Compiled
	if residual := residualConjuncts(conjuncts, path.consumed); len(residual) > 0 {
		pred, err = s.compileConjuncts(residual, tb.schema, params)
		if err != nil {
			return nil, path, false, err
		}
	}
	wrap := func(m exec.Iterator) exec.Iterator {
		if pred != nil {
			m = &exec.Filter{Child: m, Pred: pred}
		}
		if agg != nil {
			// Per-morsel partial aggregate: each pipeline gets its own
			// instance (the hash table is operator state) over the
			// shared compiled expressions.
			m = &exec.HashAggregate{Child: m, GroupBy: agg.groupC, Specs: agg.specs, Partial: true}
		}
		return m
	}

	var src exec.MorselSource
	var onClose func() error
	switch {
	case path.parHeap != nil:
		pages := path.parHeap.PageList()
		ranges := exec.PageRanges(pages, morselPages(len(pages), degree))
		src = exec.NewMorselQueue(len(ranges), func(i int) (exec.Iterator, error) {
			hs, err := exec.NewHeapRangeScan(path.parHeap, ranges[i])
			if err != nil {
				return nil, err
			}
			return wrap(hs), nil
		})
	case path.parDom != nil:
		d := path.parDom
		var parts []extidx.ScanState
		parts, err = d.pm.StartParallel(s.server(extidx.ModeScan, d.table), d.info, d.call, degree)
		if err != nil {
			return nil, path, false, fmt.Errorf("ODCIIndexStartParallel(%s): %w", d.info.IndexName, err)
		}
		if len(parts) == 0 {
			src = exec.NewMorselQueue(0, nil)
			break
		}
		its := make([]exec.Iterator, len(parts))
		for i, p := range parts {
			// Each partition's Fetch/Close runs on whichever worker
			// pulls it; a fresh callback server per partition keeps the
			// ODCI boundary per-goroutine.
			its[i] = wrap(&exec.DomainScan{
				Methods:    d.m,
				Server:     s.server(extidx.ModeScan, d.table),
				Info:       d.info,
				Call:       d.call,
				Heap:       d.heap,
				BatchSize:  d.batch,
				Pre:        p,
				PreStarted: true,
			})
		}
		src, onClose = exec.NewIteratorQueue(its)
	}

	ex := &exec.Exchange{
		Source:    src,
		Workers:   degree,
		BatchSize: path.batch,
		OnClose:   onClose,
		Stats:     &s.db.execStats,
		Waits:     &s.db.waits,
	}
	return s.instrScan(ex, path), path, agg != nil, nil
}

// markChosenParallel back-patches the degree onto the candidate
// choosePath just recorded as chosen, so EXPLAIN's candidate listing
// shows parallel=<n> on the winning path. Candidates the planner did
// not choose keep Parallel == 0: no degree was ever committed for them.
func (s *Session) markChosenParallel(degree int) {
	if s.trace == nil {
		return
	}
	for i := len(s.trace.Candidates) - 1; i >= 0; i-- {
		if s.trace.Candidates[i].Chosen {
			s.trace.Candidates[i].Parallel = degree
			return
		}
	}
}
