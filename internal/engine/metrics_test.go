package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// kwSetup builds the keyword cartridge with its domain index in place —
// the workload every observability test below queries.
func kwSetup(t testing.TB) (*DB, *Session) {
	t.Helper()
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
	return db, s
}

func TestMetricsCoverEveryLayer(t *testing.T) {
	db, s := kwSetup(t)
	mustExec(t, s, `INSERT INTO Docs VALUES (50, 'indexed after create')`)
	mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	mustQuery(t, s, `SELECT COUNT(*) FROM Docs`)

	m := db.Metrics()
	if m.Pager.Fetches == 0 || m.Pager.Hits == 0 {
		t.Errorf("pager counters dead: %+v", m.Pager)
	}
	if m.Txn.Begins == 0 || m.Txn.Commits == 0 {
		t.Errorf("txn counters dead: %+v", m.Txn)
	}
	if m.Planner.Plans == 0 || m.Planner.Candidates == 0 {
		t.Errorf("planner counters dead: %+v", m.Planner)
	}
	if m.Planner.ChosenByKind["DOMAIN"] == 0 {
		t.Errorf("no DOMAIN plan recorded: %v", m.Planner.ChosenByKind)
	}
	if m.Engine.Selects == 0 {
		t.Errorf("engine counters dead: %+v", m.Engine)
	}
	cb := m.ODCI.Callbacks
	for _, name := range []string{"ODCIIndexCreate", "ODCIIndexInsert", "ODCIIndexStart",
		"ODCIIndexFetch", "ODCIIndexClose", "ODCIStatsSelectivity", "ODCIStatsIndexCost"} {
		if cb[name].Calls == 0 {
			t.Errorf("ODCI callback %s never counted (have %v)", name, cb)
		}
	}
	if cb["ODCIIndexFetch"].Nanos == 0 {
		t.Error("ODCIIndexFetch wall time not accumulated")
	}
	if m.ODCI.FetchBatch.Count == 0 {
		t.Error("fetch batch histogram empty")
	}
	if m.ODCI.StateValueScans == 0 {
		t.Errorf("scan transport split dead: %+v", m.ODCI)
	}

	// The rendered report mentions every section.
	out := m.String()
	for _, want := range []string{"pager:", "wal:", "txn:", "engine:", "planner:", "workspace:", "odci callbacks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Metrics.String() missing %q:\n%s", want, out)
		}
	}

	db.ResetMetrics()
	m = db.Metrics()
	if m.Engine.Selects != 0 || m.Txn.Commits != 0 || m.Planner.Plans != 0 ||
		len(m.ODCI.Callbacks) != 0 || m.Pager.Fetches != 0 {
		t.Errorf("ResetMetrics left residue: %+v", m)
	}
}

func TestWorkspaceMetricsHighWater(t *testing.T) {
	db := newDB(t)
	m := &kwMethods{failNext: map[string]bool{}, useHandle: true}
	s := setupKwCartridge(t, db, m)
	mustExec(t, s, `CREATE INDEX DocKwIdx ON Docs(body) INDEXTYPE IS KwIndexType`)
	mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix')`)

	ms := db.Metrics()
	if ms.Workspace.Live != 0 {
		t.Errorf("workspace handles leaked: live=%d", ms.Workspace.Live)
	}
	if ms.Workspace.HighWater == 0 {
		t.Error("workspace high-water never moved despite handle-transport scans")
	}
	if ms.ODCI.StateHandleScans == 0 {
		t.Errorf("handle transport not counted: %+v", ms.ODCI)
	}
}

func TestQueryTraced(t *testing.T) {
	_, s := kwSetup(t)
	rs, tr, err := s.QueryTraced(`SELECT id FROM Docs WHERE HasKw(body, 'unix') ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("nil trace")
	}
	if tr.Rows != int64(len(rs.Rows)) || tr.Rows != 2 {
		t.Fatalf("trace rows = %d, result rows = %d", tr.Rows, len(rs.Rows))
	}
	if tr.Elapsed <= 0 {
		t.Error("trace elapsed not measured")
	}
	c, ok := tr.ChosenCandidate()
	if !ok {
		t.Fatalf("no chosen candidate in %+v", tr.Candidates)
	}
	if c.Kind != "DOMAIN" {
		t.Errorf("chosen kind = %s, want DOMAIN", c.Kind)
	}
	// The domain candidate carries the ODCIStatsSelectivity result: 2 of
	// 205 documents contain "unix".
	if c.Selectivity <= 0 || c.Selectivity >= 0.5 {
		t.Errorf("domain selectivity = %v", c.Selectivity)
	}
	if len(tr.Candidates) < 2 {
		t.Errorf("expected FULL and DOMAIN candidates, got %+v", tr.Candidates)
	}
	// Operator nodes: root must have drained exactly the result rows; the
	// table access node must carry the estimate.
	if len(tr.Ops) == 0 {
		t.Fatal("no instrumented operators")
	}
	root := tr.Ops[len(tr.Ops)-1]
	if root.Desc != "SELECT STATEMENT" || root.Rows != 2 {
		t.Errorf("root op = %+v", root)
	}
	scan := tr.Ops[0]
	if scan.EstRows < 0 {
		t.Errorf("table access node lost its estimate: %+v", scan)
	}
	if tr.Pager.PagerFetches == 0 {
		t.Errorf("pager delta not attributed: %+v", tr.Pager)
	}

	// Non-select statements refuse tracing.
	if _, _, err := s.QueryTraced(`INSERT INTO Docs VALUES (99, 'x')`); err == nil {
		t.Error("QueryTraced accepted a non-select")
	}
}

func TestExplainListsCandidatePaths(t *testing.T) {
	_, s := kwSetup(t)
	rs := mustQuery(t, s, `EXPLAIN PLAN FOR SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	if !strings.Contains(rs.Rows[0][0].Text(), "DOMAIN INDEX DOCKWIDX") {
		t.Fatalf("row 0 is not the plan: %v", rs.Rows)
	}
	var text strings.Builder
	for _, r := range rs.Rows {
		text.WriteString(r[0].Text())
		text.WriteString("\n")
	}
	out := text.String()
	if !strings.Contains(out, "CANDIDATE ACCESS PATHS:") {
		t.Fatalf("EXPLAIN lost the candidate section:\n%s", out)
	}
	// Both the winner (marked *) and the rejected full scan appear, each
	// with a cost.
	if !strings.Contains(out, "* DOMAIN INDEX DOCKWIDX") {
		t.Errorf("winner not marked:\n%s", out)
	}
	if !strings.Contains(out, "TABLE ACCESS FULL DOCS") || strings.Count(out, "cost=") < 2 {
		t.Errorf("rejected path missing or uncosted:\n%s", out)
	}
}

func TestExplainAnalyze(t *testing.T) {
	_, s := kwSetup(t)
	rs := mustQuery(t, s, `EXPLAIN ANALYZE SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	if len(rs.Columns) != 1 || rs.Columns[0] != "EXPLAIN ANALYZE" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	var text strings.Builder
	for _, r := range rs.Rows {
		text.WriteString(r[0].Text())
		text.WriteString("\n")
	}
	out := text.String()
	for _, want := range []string{
		"SELECT STATEMENT",
		"DOMAIN INDEX DOCKWIDX",
		"est=",        // estimated rows present on the scan node
		"rows=2",      // actual rows measured
		"batch=",      // chosen Fetch batch size on the scan operator
		"batches=",    // non-empty chunks the scan produced
		"CANDIDATE ACCESS PATHS:",
		"rows returned: 2",
		"pager: fetches=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}

	// Errors surface instead of rendering a bogus trace.
	if _, err := s.Query(`EXPLAIN ANALYZE SELECT nope FROM Docs`); err == nil {
		t.Error("EXPLAIN ANALYZE swallowed a planning error")
	}
}

func TestSlowQueryHook(t *testing.T) {
	db, s := kwSetup(t)
	var got []*obs.QueryTrace
	db.SetSlowQueryHook(0, func(tr *obs.QueryTrace) { got = append(got, tr) })

	mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1 (callback-session queries must not leak through)", len(got))
	}
	tr := got[0]
	if tr.Rows != 2 || len(tr.Ops) == 0 || len(tr.Candidates) == 0 {
		t.Fatalf("hook trace incomplete: %+v", tr)
	}
	if !strings.Contains(tr.SQL, "HasKw") {
		t.Errorf("trace SQL = %q", tr.SQL)
	}

	m := db.Metrics()
	if m.Engine.SlowQueries != 1 || m.Engine.TracedQueries == 0 {
		t.Errorf("slow/traced counters: %+v", m.Engine)
	}

	// A threshold above the query time keeps the hook silent (but the
	// query still runs traced).
	db.SetSlowQueryHook(time.Hour, func(tr *obs.QueryTrace) { got = append(got, tr) })
	mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	if len(got) != 1 {
		t.Fatal("hook fired below threshold")
	}

	// Removing the hook stops tracing.
	db.SetSlowQueryHook(0, nil)
	before := db.Metrics().Engine.TracedQueries
	mustQuery(t, s, `SELECT id FROM Docs`)
	if after := db.Metrics().Engine.TracedQueries; after != before {
		t.Error("query still traced after hook removal")
	}
}

func TestTracedJoinAndAggregate(t *testing.T) {
	// Multi-operator plans (join + aggregate + order) must produce a
	// well-formed operator tree without per-inner-row node explosion.
	db := newDB(t)
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE a(id NUMBER, v VARCHAR2)`)
	mustExec(t, s, `CREATE TABLE b(id NUMBER, w VARCHAR2)`)
	for i := int64(1); i <= 20; i++ {
		mustExec(t, s, `INSERT INTO a VALUES (?, 'x')`, types.Int(i))
		mustExec(t, s, `INSERT INTO b VALUES (?, 'y')`, types.Int(i%5))
	}
	rs, tr, err := s.QueryTraced(`SELECT a.v, COUNT(*) FROM a, b WHERE a.id = b.id GROUP BY a.v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if len(tr.Ops) == 0 || len(tr.Ops) > 8 {
		t.Fatalf("operator tree wrong size (%d ops): %+v", len(tr.Ops), tr.Ops)
	}
	var haveJoin, haveAgg bool
	for _, op := range tr.Ops {
		if strings.Contains(op.Desc, "NESTED LOOPS") {
			haveJoin = true
		}
		if strings.Contains(op.Desc, "GROUP BY") {
			haveAgg = true
		}
	}
	if !haveJoin || !haveAgg {
		t.Errorf("join=%v agg=%v in ops %+v", haveJoin, haveAgg, tr.Ops)
	}
}

// BenchmarkDomainQueryUntraced / BenchmarkDomainQueryTraced measure the
// tracing overhead claim: with no trace attached (no EXPLAIN ANALYZE, no
// hook) a query's only observability cost is atomic counter increments,
// which must stay within noise (<2%) of an uninstrumented engine; the
// traced variant pays for candidate recording, per-operator timing and
// the pager snapshot delta. Compare:
//
//	go test -bench 'DomainQuery' -benchtime 2s ./internal/engine
func BenchmarkDomainQueryUntraced(b *testing.B) {
	_, s := kwSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(`SELECT id FROM Docs WHERE HasKw(body, 'unix')`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDomainQueryTraced(b *testing.B) {
	_, s := kwSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.QueryTraced(`SELECT id FROM Docs WHERE HasKw(body, 'unix')`); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUntracedQueryAllocatesNoTrace pins the fast-path property behind
// the <2% overhead claim structurally: without EXPLAIN ANALYZE or a
// hook, no QueryTrace is created and no operator is instrumented.
func TestUntracedQueryAllocatesNoTrace(t *testing.T) {
	db, s := kwSetup(t)
	db.ResetMetrics()
	mustQuery(t, s, `SELECT id FROM Docs WHERE HasKw(body, 'unix')`)
	m := db.Metrics()
	if m.Engine.TracedQueries != 0 {
		t.Fatalf("untraced query created a trace: %+v", m.Engine)
	}
	if m.Engine.Selects == 0 {
		t.Fatal("select counter dead")
	}
}

func TestWALAndAdmissionCountersFileBacked(t *testing.T) {
	// The WAL and writer admission only exist for file-backed databases;
	// the in-memory tests above cannot see these counters.
	db, err := Open(Options{Path: t.TempDir() + "/m.db"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := db.NewSession()
	mustExec(t, s, `CREATE TABLE t(id NUMBER)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	m := db.Metrics()
	if m.Pager.WALRecords == 0 || m.Pager.WALCommits == 0 || m.Pager.WALBytes == 0 {
		t.Errorf("wal counters dead: %+v", m.Pager)
	}
	if m.Engine.AdmitWaits == 0 {
		t.Errorf("writer admissions not counted: %+v", m.Engine)
	}
	if m.Engine.MutWaits == 0 {
		t.Errorf("mutation-window entries not counted: %+v", m.Engine)
	}
	if m.Pager.WALGroupedCommits == 0 {
		t.Errorf("grouped-commit counter dead: %+v", m.Pager)
	}
	if m.CommitGroups.Count == 0 || m.CommitGroups.Mean() < 1 {
		t.Errorf("commit-group histogram dead: %+v", m.CommitGroups)
	}
}
