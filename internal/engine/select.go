package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/types"
)

// runSelect plans and executes a SELECT, returning the materialized
// result set. The untraced path does no timing and allocates no trace
// structures — its only observability cost is a few atomic counter
// increments. A trace rides along when one is staged (EXPLAIN ANALYZE,
// QueryTraced) or when a slow-query hook is installed.
func (s *Session) runSelect(sel *sql.Select, params []types.Value) (*ResultSet, error) {
	s.db.selects.Inc()
	tr := s.pendingTrace
	s.pendingTrace = nil
	if tr == nil && !s.isCallback && s.db.hookCfg.Load() != nil {
		tr = obs.NewQueryTrace(sql.Print(sel))
	}
	if tr != nil {
		return s.runSelectTraced(sel, params, tr)
	}
	unlock := s.lockSelect(sel)
	defer unlock()
	it, schema, _, err := s.planSelect(sel, params)
	if err != nil {
		return nil, err
	}
	return s.drainResult(it, schema)
}

// drainResult materializes the pipeline's output. The default path pulls
// chunks straight out of the batch executor; row mode (SetRowMode) drains
// through a RowAdapter instead — the row-at-a-time baseline benchmarks
// compare against.
func (s *Session) drainResult(it exec.Iterator, schema *exec.Schema) (*ResultSet, error) {
	cols := make([]string, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i] = c.Name
	}
	var rows []exec.Row
	var err error
	if s.rowMode {
		rows, err = exec.DrainRows(it)
	} else {
		rows, err = exec.Drain(it)
	}
	if err != nil {
		return nil, err
	}
	out := make([][]types.Value, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return &ResultSet{Columns: cols, Rows: out}, nil
}

// runSelectTraced executes a SELECT with tr active: the planner records
// candidate paths into it and wraps operators in instrumented nodes, and
// the pager/WAL counter delta across the query is attributed to it. When
// a slow-query hook is installed and the query meets its threshold, the
// finished trace is handed to the hook (callback sessions never trigger
// it — their queries already ride inside a traced outer query).
func (s *Session) runSelectTraced(sel *sql.Select, params []types.Value, tr *obs.QueryTrace) (*ResultSet, error) {
	s.db.tracedQueries.Inc()
	before := s.db.PagerStats()
	wbefore := s.db.waits.Snapshot()
	start := time.Now()
	s.trace = tr
	defer func() { s.trace = nil }()

	rs, err := func() (*ResultSet, error) {
		unlock := s.lockSelect(sel)
		defer unlock()
		it, schema, _, err := s.planSelect(sel, params)
		if err != nil {
			return nil, err
		}
		return s.drainResult(it, schema)
	}()

	tr.Elapsed = time.Since(start)
	after := s.db.PagerStats()
	tr.Pager = obs.ResourceDelta{
		PagerFetches: after.Fetches - before.Fetches,
		PagerHits:    after.Hits - before.Hits,
		PagerMisses:  after.Misses - before.Misses,
		PagerWrites:  after.Writes - before.Writes,
		WALRecords:   after.WALRecords - before.WALRecords,
		WALBytes:     after.WALBytes - before.WALBytes,
		WALSyncs:     after.WALSyncs - before.WALSyncs,
	}
	// The wait delta across the query puts blocked time next to the
	// operator timings (same caveat as the pager delta: concurrent
	// sessions bleed in).
	tr.Waits = s.db.waits.Snapshot().Delta(wbefore)
	if err != nil {
		tr.Err = err.Error()
	} else {
		tr.Rows = int64(len(rs.Rows))
	}
	if cfg := s.db.hookCfg.Load(); cfg != nil && !s.isCallback && tr.Elapsed >= cfg.threshold {
		s.db.slowQueries.Inc()
		// A slow query's trace carries the recent engine events: what the
		// rest of the database was doing while this query crawled.
		tr.Flight = flightTail(s.db.flight, flightTailEvents)
		cfg.fn(tr)
	}
	return rs, err
}

// Explain returns the access-path decisions for a query as one-column
// rows, without returning query results: the plan description lines
// followed by every candidate access path the optimizer costed, the
// winner marked with '*'.
func (s *Session) Explain(sel *sql.Select, params []types.Value) (*ResultSet, error) {
	unlock := s.lockSelect(sel)
	defer unlock()
	// Attach a throwaway trace so choosePath records its candidates; the
	// plan is built but never executed.
	tr := obs.NewQueryTrace("")
	s.trace = tr
	defer func() { s.trace = nil }()
	it, _, descs, err := s.planSelect(sel, params)
	if err != nil {
		return nil, err
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: []string{"PLAN"}}
	for _, d := range descs {
		rs.Rows = append(rs.Rows, []types.Value{types.Str(d)})
	}
	if len(tr.Candidates) > 0 {
		rs.Rows = append(rs.Rows, []types.Value{types.Str("CANDIDATE ACCESS PATHS:")})
		for _, line := range obs.RenderCandidates(tr.Candidates) {
			rs.Rows = append(rs.Rows, []types.Value{types.Str(line)})
		}
	}
	return rs, nil
}

// ExplainAnalyze executes the query with a trace attached and renders
// the operator tree with estimated vs actual rows and per-operator wall
// time, the candidate access paths, and the query's pager/WAL footprint.
func (s *Session) ExplainAnalyze(sel *sql.Select, params []types.Value) (*ResultSet, error) {
	tr := obs.NewQueryTrace(sql.Print(sel))
	s.pendingTrace = tr
	if _, err := s.runSelect(sel, params); err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: []string{"EXPLAIN ANALYZE"}}
	for _, line := range tr.Render() {
		rs.Rows = append(rs.Rows, []types.Value{types.Str(line)})
	}
	return rs, nil
}

// lockSelect acquires read locks on every table a SELECT references,
// holding them until the result is drained.
func (s *Session) lockSelect(sel *sql.Select) func() {
	var readNames []string
	for _, tr := range sel.From {
		readNames = append(readNames, tr.Name)
	}
	return s.lockTables(readNames, nil)
}

// planSelect assembles the full iterator pipeline for a SELECT and
// returns it with the output schema and the plan description lines.
func (s *Session) planSelect(sel *sql.Select, params []types.Value) (exec.Iterator, *exec.Schema, []string, error) {
	if len(sel.From) == 0 {
		return nil, nil, nil, fmt.Errorf("engine: SELECT requires FROM")
	}
	tbs := make([]*tableBinding, len(sel.From))
	for i, tr := range sel.From {
		tb, err := s.bindTable(tr)
		if err != nil {
			return nil, nil, nil, err
		}
		tbs[i] = tb
	}
	conjuncts := splitConjuncts(sel.Where)

	// Aggregation is detected before the access path is built: a
	// parallel single-table access pushes the aggregate's partial half
	// into the exchange workers, so the compiled aggregate must exist
	// when the access is assembled.
	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	if sel.Having != nil {
		hasAgg = true
	}

	var it exec.Iterator
	var schema *exec.Schema
	var descs []string
	if len(tbs) == 1 {
		var agg *aggPlan
		if hasAgg {
			var err error
			agg, sel, err = s.compileAggregate(tbs[0].schema, sel, params)
			if err != nil {
				return nil, nil, nil, err
			}
		}
		var path accessPath
		var aggPushed bool
		var err error
		it, path, aggPushed, err = s.buildParallelTableAccess(tbs[0], conjuncts, params, agg)
		if err != nil {
			return nil, nil, nil, err
		}
		schema = tbs[0].schema
		costLine := fmt.Sprintf("  cost=%.2f estRows=%.1f", path.cost, path.estRows)
		if path.batch > 0 {
			costLine += fmt.Sprintf(" batch=%d", path.batch)
		}
		if path.parallel > 1 {
			costLine += fmt.Sprintf(" parallel=%d", path.parallel)
		}
		descs = []string{path.desc, costLine}
		if hasAgg {
			it = applyAggregate(it, agg, aggPushed)
			schema = agg.schema
			descs = append(descs, "HASH GROUP BY")
			it = s.instr(it, "HASH GROUP BY", -1)
		}
	} else {
		var err error
		it, schema, descs, err = s.planJoin(tbs, conjuncts, params)
		if err != nil {
			return nil, nil, nil, err
		}
		if hasAgg {
			it, schema, sel, err = s.buildAggregate(it, schema, sel, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			descs = append(descs, "HASH GROUP BY")
			it = s.instr(it, "HASH GROUP BY", -1)
		}
	}

	// Projection list.
	outSchema := &exec.Schema{}
	var exprs []exec.Compiled
	var itemExprs []sql.Expr // for ORDER BY matching (nil for star entries)
	for i, item := range sel.Items {
		if item.Star {
			for _, sc := range schema.Cols {
				if strings.EqualFold(sc.Name, exec.RowIDColumn) {
					continue
				}
				if item.Table != "" && !strings.EqualFold(sc.Qualifier, item.Table) {
					continue
				}
				cr := sql.ColumnRef{Table: sc.Qualifier, Name: sc.Name}
				c, err := exec.Compile(cr, schema, s, params)
				if err != nil {
					return nil, nil, nil, errors.Join(err, it.Close())
				}
				exprs = append(exprs, c)
				itemExprs = append(itemExprs, cr)
				outSchema.Cols = append(outSchema.Cols, exec.SchemaCol{Name: strings.ToUpper(sc.Name)})
			}
			continue
		}
		c, err := exec.Compile(item.Expr, schema, s, params)
		if err != nil {
			return nil, nil, nil, errors.Join(err, it.Close())
		}
		exprs = append(exprs, c)
		itemExprs = append(itemExprs, item.Expr)
		outSchema.Cols = append(outSchema.Cols, exec.SchemaCol{Name: itemName(item, i)})
	}

	// ORDER BY keys: match select items/aliases, else hidden columns.
	type orderRef struct {
		pos  int
		desc bool
	}
	var orders []orderRef
	hidden := 0
	for _, oi := range sel.OrderBy {
		pos := -1
		if cr, ok := oi.Expr.(sql.ColumnRef); ok && cr.Table == "" {
			for j := range outSchema.Cols {
				if strings.EqualFold(outSchema.Cols[j].Name, cr.Name) {
					pos = j
					break
				}
			}
		}
		if pos < 0 {
			for j, ie := range itemExprs {
				if ie != nil && reflect.DeepEqual(ie, oi.Expr) {
					pos = j
					break
				}
			}
		}
		if pos < 0 {
			if sel.Distinct {
				return nil, nil, nil, errors.Join(
					fmt.Errorf("engine: ORDER BY expression must appear in the select list with DISTINCT"),
					it.Close())
			}
			c, err := exec.Compile(oi.Expr, schema, s, params)
			if err != nil {
				return nil, nil, nil, errors.Join(err, it.Close())
			}
			exprs = append(exprs, c)
			pos = len(exprs) - 1
			outSchema.Cols = append(outSchema.Cols, exec.SchemaCol{Name: fmt.Sprintf("__ORD%d", hidden)})
			hidden++
		}
		orders = append(orders, orderRef{pos: pos, desc: oi.Desc})
	}

	it = &exec.Project{Child: it, Exprs: exprs}
	if sel.Distinct {
		it = &exec.Distinct{Child: it}
	}
	if len(orders) > 0 {
		keys := make([]exec.SortKey, len(orders))
		for i, o := range orders {
			pos := o.pos
			keys[i] = exec.SortKey{
				Expr: func(r exec.Row) (types.Value, error) { return r[pos], nil },
				Desc: o.desc,
			}
		}
		it = &exec.Sort{Child: it, Keys: keys}
		descs = append(descs, "SORT ORDER BY")
		it = s.instr(it, "SORT ORDER BY", -1)
	}
	if sel.Limit >= 0 {
		it = &exec.Limit{Child: it, N: sel.Limit}
	}
	if hidden > 0 {
		visible := len(outSchema.Cols) - hidden
		it = &exec.Project{Child: it, Exprs: identityExprs(visible)}
		outSchema = &exec.Schema{Cols: outSchema.Cols[:visible]}
	}
	it = s.instr(it, "SELECT STATEMENT", -1)
	return it, outSchema, descs, nil
}

// instr wraps it in an instrumented node attached to the active trace;
// with no trace it returns it unchanged (the untraced fast path).
func (s *Session) instr(it exec.Iterator, desc string, estRows float64) exec.Iterator {
	if s.trace == nil {
		return it
	}
	return &exec.Instrument{Child: it, Node: s.trace.Node(desc, estRows)}
}

// instrScan is instr for a table-access operator: the node additionally
// records the batch size and degree of parallelism the planner chose,
// so EXPLAIN ANALYZE shows batch=<n> (and parallel=<n>) per scan
// operator. For an exchange the node is also handed to the operator
// itself: the enclosing Instrument keeps consumer-side wall time and
// row counts on the node, while the exchange merges its per-worker
// sub-nodes (busy time, morsels) into it at Close.
func (s *Session) instrScan(it exec.Iterator, path accessPath) exec.Iterator {
	if s.trace == nil {
		return it
	}
	n := s.trace.Node(path.desc, path.estRows)
	n.BatchSize = path.batch
	if path.parallel > 1 {
		n.Parallel = path.parallel
		if ex, ok := it.(*exec.Exchange); ok {
			ex.Node = n
		}
	}
	return &exec.Instrument{Child: it, Node: n}
}

func identityExprs(n int) []exec.Compiled {
	out := make([]exec.Compiled, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = func(r exec.Row) (types.Value, error) { return r[i], nil }
	}
	return out
}

func itemName(item sql.SelectItem, i int) string {
	if item.Alias != "" {
		return strings.ToUpper(item.Alias)
	}
	switch e := item.Expr.(type) {
	case sql.ColumnRef:
		return strings.ToUpper(e.Name)
	case sql.Call:
		return strings.ToUpper(e.Name)
	default:
		return fmt.Sprintf("EXPR%d", i+1)
	}
}

// aggPlan is a compiled aggregation stage: group-key and aggregate
// expressions compiled against the input schema, the aggregate output
// schema (G<i>/A<j> columns), and the compiled HAVING filter over that
// output. compileAggregate produces it; applyAggregate stacks it on an
// iterator — as a whole serial HashAggregate, or as the FromPartial
// merge half when exchange workers already ran the partial half.
type aggPlan struct {
	groupC []exec.Compiled
	specs  []exec.AggSpec
	schema *exec.Schema
	having exec.Compiled
}

// buildAggregate inserts the HashAggregate stage and rewrites the select
// list, HAVING and ORDER BY to reference its output (G<i>/A<j> columns).
// It returns the rewritten Select (a copy) to keep the caller's pipeline
// logic uniform.
func (s *Session) buildAggregate(it exec.Iterator, schema *exec.Schema, sel *sql.Select, params []types.Value) (exec.Iterator, *exec.Schema, *sql.Select, error) {
	agg, out, err := s.compileAggregate(schema, sel, params)
	if err != nil {
		return nil, nil, nil, err
	}
	return applyAggregate(it, agg, false), agg.schema, out, nil
}

// applyAggregate stacks the aggregation stage on it. When the partial
// half already ran inside exchange workers (partial true), the operator
// becomes a FromPartial merge whose group keys are identity projections
// of the partial rows' leading key columns; otherwise it is the
// ordinary serial HashAggregate. The HAVING filter sits above either.
func applyAggregate(it exec.Iterator, agg *aggPlan, partial bool) exec.Iterator {
	ha := &exec.HashAggregate{Child: it, Specs: agg.specs}
	if partial {
		ha.GroupBy = identityExprs(len(agg.groupC))
		ha.FromPartial = true
	} else {
		ha.GroupBy = agg.groupC
	}
	var out exec.Iterator = ha
	if agg.having != nil {
		out = &exec.Filter{Child: out, Pred: agg.having}
	}
	return out
}

// compileAggregate compiles the aggregation stage against the input
// schema and rewrites the select list, HAVING and ORDER BY to reference
// its output, returning the rewritten Select (a copy).
func (s *Session) compileAggregate(schema *exec.Schema, sel *sql.Select, params []types.Value) (*aggPlan, *sql.Select, error) {
	// Compile group-by expressions against the input schema.
	groupC := make([]exec.Compiled, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		c, err := exec.Compile(g, schema, s, params)
		if err != nil {
			return nil, nil, err
		}
		groupC[i] = c
	}
	// Rewrite select items, HAVING, and ORDER BY; collect aggregate specs.
	var specs []sql.Call
	out := *sel
	out.Items = make([]sql.SelectItem, len(sel.Items))
	for i, item := range sel.Items {
		if item.Star {
			return nil, nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregation")
		}
		ni := item
		if ni.Alias == "" {
			// Preserve the user-visible column name (COUNT, SUM, dept, …)
			// across the rewrite to internal aggregate columns.
			ni.Alias = itemName(item, i)
		}
		ni.Expr = rewriteForAgg(item.Expr, sel.GroupBy, &specs)
		out.Items[i] = ni
	}
	var havingRewritten sql.Expr
	if sel.Having != nil {
		havingRewritten = rewriteForAgg(sel.Having, sel.GroupBy, &specs)
	}
	out.OrderBy = make([]sql.OrderItem, len(sel.OrderBy))
	for i, oi := range sel.OrderBy {
		out.OrderBy[i] = sql.OrderItem{Expr: rewriteForAgg(oi.Expr, sel.GroupBy, &specs), Desc: oi.Desc}
	}
	out.GroupBy = nil
	out.Having = nil

	// Build aggregate specs against the input schema.
	aggSpecs := make([]exec.AggSpec, len(specs))
	for j, c := range specs {
		kind := aggFns[strings.ToUpper(c.Name)]
		if c.Star {
			if kind != exec.AggCount {
				return nil, nil, fmt.Errorf("engine: %s(*) is not valid", c.Name)
			}
			aggSpecs[j] = exec.AggSpec{Kind: exec.AggCountStar}
			continue
		}
		if len(c.Args) != 1 {
			return nil, nil, fmt.Errorf("engine: aggregate %s takes one argument", c.Name)
		}
		ac, err := exec.Compile(c.Args[0], schema, s, params)
		if err != nil {
			return nil, nil, err
		}
		aggSpecs[j] = exec.AggSpec{Kind: kind, Arg: ac}
	}

	aggSchema := &exec.Schema{}
	for i := range sel.GroupBy {
		aggSchema.Cols = append(aggSchema.Cols, exec.SchemaCol{Name: fmt.Sprintf("G%d", i)})
	}
	for j := range specs {
		aggSchema.Cols = append(aggSchema.Cols, exec.SchemaCol{Name: fmt.Sprintf("A%d", j)})
	}
	plan := &aggPlan{groupC: groupC, specs: aggSpecs, schema: aggSchema}
	if havingRewritten != nil {
		pred, err := exec.Compile(havingRewritten, aggSchema, s, params)
		if err != nil {
			return nil, nil, err
		}
		plan.having = pred
	}
	return plan, &out, nil
}
